// Parameterized property sweeps across the stack: the same invariant
// checked over a family of workload parameters.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/base/rand.h"
#include "src/core/aegis.h"
#include "src/dpf/dpf.h"
#include "src/dpf/mpf.h"
#include "src/dpf/pathfinder.h"
#include "src/dpf/tcpip_filters.h"
#include "src/exos/ipc.h"
#include "src/exos/stride.h"
#include "src/net/wire.h"

namespace xok {
namespace {

// --- Pipe roundtrips across message sizes ---

class PipeSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PipeSizeSweep, MessagesSurviveIntact) {
  const size_t size = GetParam();
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "psz"});
  aegis::Aegis kernel(machine);
  exos::SharedBufferDesc desc;
  bool ready = false;
  exos::PipePeer writer_peer;
  exos::PipePeer reader_peer;
  constexpr hw::Vaddr kRingVa = 0x5000000;
  std::vector<uint8_t> message(size);
  for (size_t i = 0; i < size; ++i) {
    message[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  std::vector<uint8_t> received;

  exos::Process writer(kernel, [&](exos::Process& p) {
    desc = *exos::CreateSharedBuffer(p);
    ASSERT_EQ(exos::MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    ready = true;
    exos::PipeEndpoint out(p, kRingVa, writer_peer, false);
    for (int round = 0; round < 3; ++round) {
      ASSERT_EQ(out.WriteMessage(message), Status::kOk);
    }
  });
  exos::Process reader(kernel, [&](exos::Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(exos::MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    exos::PipeEndpoint in(p, kRingVa, reader_peer, false);
    for (int round = 0; round < 3; ++round) {
      std::vector<uint8_t> buf(size + 8);
      Result<uint32_t> len = in.ReadMessage(buf);
      ASSERT_TRUE(len.ok());
      ASSERT_EQ(*len, size);
      buf.resize(*len);
      received = buf;
      ASSERT_EQ(received, message);
    }
  });
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());
  writer_peer = {reader.id(), reader.env_cap()};
  reader_peer = {writer.id(), writer.env_cap()};
  kernel.Run();
}

INSTANTIATE_TEST_SUITE_P(Sizes, PipeSizeSweep,
                         ::testing::Values(0, 1, 3, 4, 5, 64, 555, 2048, 5000));

// --- Stride scheduler proportions across ticket ratios ---

using StrideParam = std::tuple<uint32_t, uint32_t, uint32_t>;

class StrideSweep : public ::testing::TestWithParam<StrideParam> {};

TEST_P(StrideSweep, AllocationsMatchTickets) {
  const auto [t0, t1, t2] = GetParam();
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "ssw"});
  aegis::Aegis kernel(machine);
  bool stop = false;
  std::array<std::unique_ptr<exos::Process>, 3> workers;
  for (int i = 0; i < 3; ++i) {
    workers[i] = std::make_unique<exos::Process>(
        kernel,
        [&stop](exos::Process& p) {
          while (!stop) {
            p.machine().Charge(p.kernel().slice_cycles() * 2);
          }
        },
        exos::Process::Options{.slices = 0, .demand_zero = true});
    ASSERT_TRUE(workers[i]->ok());
  }
  std::vector<uint64_t> allocations;
  constexpr uint32_t kSlices = 240;
  exos::Process sched(kernel, [&](exos::Process& p) {
    exos::StrideScheduler stride(p);
    stride.AddClient(workers[0]->id(), t0);
    stride.AddClient(workers[1]->id(), t1);
    stride.AddClient(workers[2]->id(), t2);
    stride.RunSlices(kSlices);
    allocations = stride.allocations();
    stop = true;
  });
  ASSERT_TRUE(sched.ok());
  kernel.Run();

  const double total = t0 + t1 + t2;
  const uint32_t tickets[3] = {t0, t1, t2};
  for (int i = 0; i < 3; ++i) {
    const double ideal = kSlices * tickets[i] / total;
    EXPECT_NEAR(static_cast<double>(allocations[i]), ideal, 3.0)
        << "client " << i << " tickets " << t0 << ":" << t1 << ":" << t2;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, StrideSweep,
                         ::testing::Values(StrideParam{1, 1, 1}, StrideParam{3, 2, 1},
                                           StrideParam{5, 3, 2}, StrideParam{10, 1, 1},
                                           StrideParam{7, 5, 4}, StrideParam{60, 30, 10}));

// --- VM correctness under TLB pressure, across working-set sizes ---

class WorkingSetSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorkingSetSweep, DataSurvivesCapacityMisses) {
  const int pages = GetParam();
  hw::Machine machine(
      hw::Machine::Config{.phys_pages = static_cast<uint32_t>(pages + 64), .name = "ws"});
  aegis::Aegis kernel(machine);
  exos::Process proc(kernel, [&](exos::Process& p) {
    constexpr hw::Vaddr kBase = 0x1000000;
    for (int i = 0; i < pages; ++i) {
      ASSERT_EQ(machine.StoreWord(kBase + i * hw::kPageBytes, 0xabc0 + i), Status::kOk);
    }
    // Random access pattern to defeat any residual locality.
    SplitMix64 rng(pages);
    for (int access = 0; access < pages * 4; ++access) {
      const int i = static_cast<int>(rng.NextBelow(pages));
      Result<uint32_t> v = machine.LoadWord(kBase + i * hw::kPageBytes);
      ASSERT_TRUE(v.ok());
      ASSERT_EQ(*v, 0xabc0u + i);
    }
    (void)p;
  });
  ASSERT_TRUE(proc.ok());
  kernel.Run();
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorkingSetSweep, ::testing::Values(1, 16, 63, 64, 65, 200, 400));

// --- Classifier agreement across filter-set sizes ---

class FilterCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(FilterCountSweep, EnginesAgreeAndDpfStaysCheapest) {
  const int n = GetParam();
  dpf::DpfEngine dpf_engine;
  dpf::MpfEngine mpf;
  dpf::PathfinderEngine pathfinder;
  for (int i = 0; i < n; ++i) {
    const auto spec = dpf::TcpConnectionFilter(10, 20, static_cast<uint16_t>(1000 + i),
                                               static_cast<uint16_t>(2000 + i));
    ASSERT_TRUE(dpf_engine.Insert(spec).ok());
    ASSERT_TRUE(mpf.Insert(spec).ok());
    ASSERT_TRUE(pathfinder.Insert(spec).ok());
  }
  SplitMix64 rng(n);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> frame(64, 0);
    net::PutBe16(frame, net::kEthTypeOff, net::kEthTypeIpv4);
    frame[net::kIpVersionIhlOff] = 0x45;
    frame[net::kIpProtoOff] = net::kIpProtoTcp;
    net::PutBe32(frame, net::kIpSrcOff, 10);
    net::PutBe32(frame, net::kIpDstOff, 20);
    const uint16_t conn = static_cast<uint16_t>(rng.NextBelow(n + 2));  // Sometimes no match.
    net::PutBe16(frame, net::kTcpSrcPortOff, 1000 + conn);
    net::PutBe16(frame, net::kTcpDstPortOff, 2000 + conn);
    const auto a = dpf_engine.Classify(frame);
    ASSERT_EQ(a, mpf.Classify(frame));
    ASSERT_EQ(a, pathfinder.Classify(frame));
  }
  if (n >= 4) {
    EXPECT_LT(dpf_engine.sim_cycles(), mpf.sim_cycles());
    EXPECT_LT(dpf_engine.sim_cycles(), pathfinder.sim_cycles());
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, FilterCountSweep, ::testing::Values(1, 2, 4, 8, 16, 32));

// --- Internet checksum properties across sizes ---

class CksumSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CksumSweep, AppendingChecksumVerifiesToZero) {
  const size_t size = GetParam();
  SplitMix64 rng(size);
  std::vector<uint8_t> data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  // Odd-length data is implicitly padded with a zero byte; append that pad
  // explicitly (it does not change the sum), then the checksum: the result
  // verifies to zero.
  if (size % 2 == 1) {
    std::vector<uint8_t> padded = data;
    padded.push_back(0);
    ASSERT_EQ(net::InternetChecksum(padded), net::InternetChecksum(data));
    data = std::move(padded);
  }
  const uint16_t cksum = net::InternetChecksum(data);
  data.push_back(static_cast<uint8_t>(cksum >> 8));
  data.push_back(static_cast<uint8_t>(cksum & 0xff));
  EXPECT_EQ(net::InternetChecksum(data), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CksumSweep,
                         ::testing::Values(0, 1, 2, 3, 20, 59, 60, 1000, 1471, 1472));

}  // namespace
}  // namespace xok
