// Edge cases and resource-exhaustion behaviour of the Aegis exokernel,
// plus the networking binding error paths.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/aegis.h"
#include "src/dpf/tcpip_filters.h"
#include "src/exos/udp.h"
#include "src/hw/nic.h"
#include "src/hw/world.h"

namespace xok::aegis {
namespace {

TEST(AegisEdge, PageExhaustionReportsNoResources) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 8, .name = "tiny"});
  Aegis kernel(machine);
  EnvSpec spec;
  spec.entry = [&] {
    std::vector<PageGrant> grants;
    for (;;) {
      Result<PageGrant> grant = kernel.SysAllocPage();
      if (!grant.ok()) {
        EXPECT_EQ(grant.status(), Status::kErrNoResources);
        break;
      }
      grants.push_back(*grant);
    }
    EXPECT_EQ(grants.size(), 8u);
    EXPECT_EQ(kernel.free_pages(), 0u);
    // Free one and allocation works again.
    ASSERT_EQ(kernel.SysDeallocPage(grants[0].page, grants[0].cap), Status::kOk);
    EXPECT_TRUE(kernel.SysAllocPage().ok());
  };
  ASSERT_TRUE(kernel.CreateEnv(std::move(spec)).ok());
  kernel.Run();
}

TEST(AegisEdge, SliceVectorExhaustionRejectsEnvCreation) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 64, .name = "slices"});
  Aegis::Config config;
  config.slice_count = 2;
  Aegis kernel(machine, config);
  EnvSpec a;
  a.entry = [] {};
  a.slices = 2;
  ASSERT_TRUE(kernel.CreateEnv(std::move(a)).ok());
  EnvSpec b;
  b.entry = [] {};
  b.slices = 1;
  EXPECT_EQ(kernel.CreateEnv(std::move(b)).status(), Status::kErrNoResources);
  kernel.Run();
}

TEST(AegisEdge, MaxEnvLimitEnforced) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 64, .name = "envs"});
  Aegis::Config config;
  config.max_envs = 2;
  config.slice_count = 8;
  Aegis kernel(machine, config);
  EnvSpec a;
  a.entry = [] {};
  EnvSpec b;
  b.entry = [] {};
  EnvSpec c;
  c.entry = [] {};
  ASSERT_TRUE(kernel.CreateEnv(std::move(a)).ok());
  ASSERT_TRUE(kernel.CreateEnv(std::move(b)).ok());
  EXPECT_EQ(kernel.CreateEnv(std::move(c)).status(), Status::kErrNoResources);
  kernel.Run();
}

TEST(AegisEdge, SysSleepWakesAfterRequestedCycles) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 64, .name = "sleep"});
  Aegis kernel(machine);
  uint64_t slept = 0;
  EnvSpec spec;
  spec.entry = [&] {
    const uint64_t t0 = machine.clock().now();
    kernel.SysSleep(100'000);
    slept = machine.clock().now() - t0;
  };
  ASSERT_TRUE(kernel.CreateEnv(std::move(spec)).ok());
  kernel.Run();
  EXPECT_GE(slept, 100'000u);
  EXPECT_LT(slept, 200'000u);
}

TEST(AegisEdge, FilterBindingWithoutNicUnsupported) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 64, .name = "nonic"});
  Aegis kernel(machine);
  EnvSpec spec;
  spec.entry = [&] {
    FilterBindSpec bind;
    bind.filter = dpf::UdpPortFilter(9);
    EXPECT_EQ(kernel.SysBindFilter(std::move(bind), cap::Capability{}).status(),
              Status::kErrUnsupported);
    std::vector<uint8_t> frame(60, 0);
    EXPECT_EQ(kernel.SysNetSend(frame), Status::kErrUnsupported);
  };
  ASSERT_TRUE(kernel.CreateEnv(std::move(spec)).ok());
  kernel.Run();
}

class AegisNetEdge : public ::testing::Test {
 protected:
  AegisNetEdge()
      : machine_(hw::Machine::Config{.phys_pages = 64, .name = "net"}),
        kernel_(machine_),
        nic_(machine_, 0xa) {
    wire_.Attach(&nic_);
    kernel_.AttachNic(&nic_);
  }

  hw::Machine machine_;
  Aegis kernel_;
  hw::Wire wire_;
  hw::Nic nic_;
};

TEST_F(AegisNetEdge, AshBindingRequiresRegion) {
  EnvSpec spec;
  spec.entry = [&] {
    vcode::Emitter e;
    e.Emit(vcode::Op::kAccept, 0, 0, 1);
    Result<ash::AshProgram> handler = ash::AshProgram::Make(e.Finish());
    ASSERT_TRUE(handler.ok());
    FilterBindSpec bind;
    bind.filter = dpf::UdpPortFilter(9);
    bind.handler = std::move(*handler);
    bind.region_pages = 0;  // Missing region.
    EXPECT_EQ(kernel_.SysBindFilter(std::move(bind), cap::Capability{}).status(),
              Status::kErrInvalidArgs);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(AegisNetEdge, RegionMustBeCallerOwned) {
  // Env B tries to bind an ASH over env A's page: denied.
  hw::PageId foreign = 0;
  cap::Capability foreign_cap;
  bool ready = false;
  EnvSpec a;
  a.entry = [&] {
    Result<PageGrant> grant = kernel_.SysAllocPage();
    ASSERT_TRUE(grant.ok());
    foreign = grant->page;
    foreign_cap = grant->cap;
    ready = true;
  };
  EnvSpec b;
  b.entry = [&] {
    while (!ready) {
      kernel_.SysYield();
    }
    vcode::Emitter e;
    e.Emit(vcode::Op::kAccept, 0, 0, 1);
    Result<ash::AshProgram> handler = ash::AshProgram::Make(e.Finish());
    ASSERT_TRUE(handler.ok());
    FilterBindSpec bind;
    bind.filter = dpf::UdpPortFilter(9);
    bind.handler = std::move(*handler);
    bind.region_first_page = foreign;
    bind.region_pages = 1;
    // Even with the genuine capability, the frame belongs to A.
    EXPECT_EQ(kernel_.SysBindFilter(std::move(bind), foreign_cap).status(),
              Status::kErrAccessDenied);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(a)).ok());
  ASSERT_TRUE(kernel_.CreateEnv(std::move(b)).ok());
  kernel_.Run();
}

TEST_F(AegisNetEdge, RecvFromForeignBindingDenied) {
  dpf::FilterId binding = 0;
  bool bound = false;
  EnvSpec a;
  a.entry = [&] {
    FilterBindSpec bind;
    bind.filter = dpf::UdpPortFilter(9);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(bind), cap::Capability{});
    ASSERT_TRUE(id.ok());
    binding = *id;
    bound = true;
  };
  EnvSpec b;
  b.entry = [&] {
    while (!bound) {
      kernel_.SysYield();
    }
    EXPECT_EQ(kernel_.SysRecvPacket(binding).status(), Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysUnbindFilter(binding), Status::kErrAccessDenied);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(a)).ok());
  ASSERT_TRUE(kernel_.CreateEnv(std::move(b)).ok());
  kernel_.Run();
}

TEST_F(AegisNetEdge, RecvOnEmptyQueueWouldBlock) {
  EnvSpec spec;
  spec.entry = [&] {
    FilterBindSpec bind;
    bind.filter = dpf::UdpPortFilter(9);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(bind), cap::Capability{});
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(kernel_.SysRecvPacket(*id).status(), Status::kErrWouldBlock);
    EXPECT_EQ(kernel_.SysUnbindFilter(*id), Status::kOk);
    EXPECT_EQ(kernel_.SysRecvPacket(*id).status(), Status::kErrNotFound);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(AegisNetEdge, DuplicateFilterBindingRejected) {
  EnvSpec spec;
  spec.entry = [&] {
    FilterBindSpec bind1;
    bind1.filter = dpf::UdpPortFilter(9);
    ASSERT_TRUE(kernel_.SysBindFilter(std::move(bind1), cap::Capability{}).ok());
    FilterBindSpec bind2;
    bind2.filter = dpf::UdpPortFilter(9);  // Would steal port 9's packets.
    EXPECT_EQ(kernel_.SysBindFilter(std::move(bind2), cap::Capability{}).status(),
              Status::kErrAlreadyExists);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST(AegisEdge, DonatedSliceKeepsDeadline) {
  // A directed yield donates the remainder: the target starts with the
  // donor's deadline armed, so donor + target together consume about one
  // slice, not two.
  hw::Machine machine(hw::Machine::Config{.phys_pages = 64, .name = "donate"});
  Aegis kernel(machine);
  EnvId spinner_id = kNoEnv;
  uint64_t spinner_ran_cycles = 0;
  bool stop = false;
  EnvSpec spinner;
  spinner.entry = [&] {
    const uint64_t t0 = machine.clock().now();
    while (!stop) {
      machine.Charge(hw::Instr(50));
    }
    spinner_ran_cycles = machine.clock().now() - t0;
  };
  EnvSpec donor;
  donor.entry = [&] {
    // Burn most of the slice, then donate the rest.
    machine.Charge(kernel.slice_cycles() - 2'000);
    kernel.SysYield(spinner_id);
    stop = true;  // Runs when the donor is next scheduled.
  };
  Result<EnvGrant> gs = kernel.CreateEnv(std::move(spinner));
  ASSERT_TRUE(gs.ok());
  spinner_id = gs->env;
  ASSERT_TRUE(kernel.CreateEnv(std::move(donor)).ok());
  kernel.Run();
  // The spinner got some CPU but far less than two slices before the
  // donor ran again (donation kept the short deadline).
  EXPECT_GT(spinner_ran_cycles, 0u);
}

TEST(AegisEdge, EpilogueOverrunsAreCounted) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 64, .name = "epi"});
  Aegis kernel(machine);
  EnvSpec hog;
  hog.handlers.timer_epilogue = [&] { machine.Charge(kEpilogueBudget * 4); };
  hog.entry = [&] { machine.Charge(kernel.slice_cycles() * 3); };
  EnvSpec other;
  other.entry = [&] { machine.Charge(kernel.slice_cycles() * 3); };
  ASSERT_TRUE(kernel.CreateEnv(std::move(hog)).ok());
  ASSERT_TRUE(kernel.CreateEnv(std::move(other)).ok());
  kernel.Run();
  // At least one slice-end fired for the hog and was flagged.
  // (Introspection via slices: both envs ran to completion regardless.)
  SUCCEED();
}

}  // namespace
}  // namespace xok::aegis
