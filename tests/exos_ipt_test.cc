// The extensible page-table structure (paper §7): the same process
// abstraction, the same Appel–Li-style behaviour, over an *inverted*
// page table the application chose instead of the default two-level one.
#include <gtest/gtest.h>

#include <map>

#include "src/base/rand.h"
#include "src/exos/inverted_page_table.h"
#include "src/exos/process.h"

namespace xok::exos {
namespace {

// --- The structure itself ---

TEST(InvertedPageTable, LookupMissesThenHits) {
  InvertedPageTable table(64);
  EXPECT_EQ(table.Lookup(0x123), nullptr);
  Pte& pte = table.LookupOrCreate(0x123);
  pte.present = true;
  pte.frame = 9;
  ASSERT_NE(table.Lookup(0x123), nullptr);
  EXPECT_EQ(table.Lookup(0x123)->frame, 9u);
}

TEST(InvertedPageTable, CollidingVpnsCoexist) {
  InvertedPageTable table(16);  // 32 slots: collisions are likely.
  for (hw::Vpn vpn = 0; vpn < 24; ++vpn) {
    table.LookupOrCreate(vpn).frame = vpn * 10;
  }
  for (hw::Vpn vpn = 0; vpn < 24; ++vpn) {
    ASSERT_NE(table.Lookup(vpn), nullptr) << vpn;
    EXPECT_EQ(table.Lookup(vpn)->frame, vpn * 10) << vpn;
  }
}

TEST(InvertedPageTable, FootprintScalesWithFramesNotAddressSpace) {
  // A sparse address space: 32 mappings scattered over 4 GB. The inverted
  // table's footprint is fixed by physical memory; the two-level table
  // pays a 4 KB L2 block per distinct 4 MB region touched.
  InvertedPageTable inverted(256);
  PageTable two_level;
  SplitMix64 rng(3);
  for (int i = 0; i < 32; ++i) {
    const hw::Vpn vpn = static_cast<hw::Vpn>(rng.Next() & 0xfffff);  // Anywhere in 32-bit.
    inverted.LookupOrCreate(vpn).present = true;
    two_level.LookupOrCreate(vpn).present = true;
  }
  // 512 slots * sizeof(Slot): tens of KB regardless of spread.
  EXPECT_LT(inverted.footprint_bytes(), 64u * 1024u);
}

TEST(InvertedPageTable, PropertyMatchesMapModel) {
  InvertedPageTable table(512);
  std::map<hw::Vpn, uint32_t> model;
  SplitMix64 rng(11);
  for (int step = 0; step < 5000; ++step) {
    const hw::Vpn vpn = static_cast<hw::Vpn>(rng.NextBelow(1 << 16));
    if (rng.NextBelow(2) == 0 && model.size() < 400) {
      const uint32_t frame = static_cast<uint32_t>(rng.Next());
      table.LookupOrCreate(vpn).frame = frame;
      model[vpn] = frame;
    } else {
      Pte* pte = table.Lookup(vpn);
      auto it = model.find(vpn);
      if (it == model.end()) {
        EXPECT_EQ(pte, nullptr);
      } else {
        ASSERT_NE(pte, nullptr);
        EXPECT_EQ(pte->frame, it->second);
      }
    }
  }
}

// --- The full VM stack over the inverted structure ---

class InvertedVmTest : public ::testing::Test {
 protected:
  InvertedVmTest()
      : machine_(hw::Machine::Config{.phys_pages = 512, .name = "ipt"}), kernel_(machine_) {}

  void RunInverted(std::function<void(Process&)> body) {
    Process proc(kernel_, std::move(body),
                 Process::Options{.slices = 1,
                                  .demand_zero = true,
                                  .page_table = PageTableKind::kInverted});
    ASSERT_TRUE(proc.ok());
    kernel_.Run();
  }

  hw::Machine machine_;
  aegis::Aegis kernel_;
};

TEST_F(InvertedVmTest, DemandPagingWorks) {
  RunInverted([&](Process& p) {
    EXPECT_EQ(p.vm().page_table_kind(), PageTableKind::kInverted);
    ASSERT_EQ(machine_.StoreWord(0x100000, 7), Status::kOk);
    EXPECT_EQ(*machine_.LoadWord(0x100000), 7u);
  });
}

TEST_F(InvertedVmTest, ProtectionTrapsAndDirtyBitsWork) {
  RunInverted([&](Process& p) {
    int traps = 0;
    ASSERT_EQ(p.vm().Map(0x200000, kProtWrite), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(0x200000, 5), Status::kOk);
    EXPECT_TRUE(*p.vm().Dirty(0x200000));
    p.vm().set_trap_handler([&](hw::Vaddr va, bool) {
      ++traps;
      return p.vm().Protect(va & ~hw::kPageMask, 1, kProtWrite) == Status::kOk;
    });
    ASSERT_EQ(p.vm().Protect(0x200000, 1, kProtNone), Status::kOk);
    EXPECT_EQ(*machine_.LoadWord(0x200000), 5u);
    EXPECT_EQ(traps, 1);
  });
}

TEST_F(InvertedVmTest, SparseAddressSpaceUsesLessTableMemoryThanTwoLevel) {
  size_t inverted_bytes = 0;
  RunInverted([&](Process& p) {
    SplitMix64 rng(9);
    for (int i = 0; i < 64; ++i) {
      // Scatter across the whole 32-bit space: one page per 4 MB region.
      const hw::Vaddr va = static_cast<hw::Vaddr>(rng.Next() & 0xffc00000u);
      (void)machine_.StoreWord(va, i);
    }
    inverted_bytes = p.vm().table_footprint_bytes();
  });

  hw::Machine machine2(hw::Machine::Config{.phys_pages = 512, .name = "tl"});
  aegis::Aegis kernel2(machine2);
  size_t two_level_bytes = 0;
  Process proc(kernel2, [&](Process& p) {
    SplitMix64 rng(9);
    for (int i = 0; i < 64; ++i) {
      const hw::Vaddr va = static_cast<hw::Vaddr>(rng.Next() & 0xffc00000u);
      (void)machine2.StoreWord(va, i);
    }
    two_level_bytes = p.vm().table_footprint_bytes();
  });
  ASSERT_TRUE(proc.ok());
  kernel2.Run();

  EXPECT_LT(inverted_bytes, two_level_bytes);
}

TEST_F(InvertedVmTest, RevocationPathWorksOverInvertedTable) {
  RunInverted([&](Process& p) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(p.vm().Map(0x300000 + i * hw::kPageBytes, kProtWrite), Status::kOk);
    }
    const uint32_t before = kernel_.free_pages();
    ASSERT_EQ(kernel_.RevokePages(p.id(), 3), Status::kOk);
    EXPECT_EQ(kernel_.free_pages(), before + 3);
  });
}

}  // namespace
}  // namespace xok::exos
