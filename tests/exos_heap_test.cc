#include "src/exos/heap.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/base/rand.h"

namespace xok::exos {
namespace {

constexpr hw::Vaddr kArena = 0x4000000;

class HeapTest : public ::testing::Test {
 protected:
  HeapTest()
      : machine_(hw::Machine::Config{.phys_pages = 512, .name = "heap"}), kernel_(machine_) {}

  void RunInProcess(std::function<void(Process&)> body) {
    Process proc(kernel_, std::move(body));
    ASSERT_TRUE(proc.ok());
    kernel_.Run();
  }

  hw::Machine machine_;
  aegis::Aegis kernel_;
};

TEST_F(HeapTest, AllocReturnsWritableMemory) {
  RunInProcess([&](Process& p) {
    Heap heap(p, kArena, 64 * 1024);
    Result<hw::Vaddr> ptr = heap.Alloc(100);
    ASSERT_TRUE(ptr.ok());
    ASSERT_EQ(machine_.StoreWord(*ptr, 0xfeed), Status::kOk);
    EXPECT_EQ(*machine_.LoadWord(*ptr), 0xfeedu);
    EXPECT_TRUE(heap.CheckConsistency());
  });
}

TEST_F(HeapTest, AllocationsDoNotOverlap) {
  RunInProcess([&](Process& p) {
    Heap heap(p, kArena, 64 * 1024);
    std::vector<hw::Vaddr> ptrs;
    for (int i = 0; i < 16; ++i) {
      Result<hw::Vaddr> ptr = heap.Alloc(32);
      ASSERT_TRUE(ptr.ok());
      ASSERT_EQ(machine_.StoreWord(*ptr, 0x100 + i), Status::kOk);
      ptrs.push_back(*ptr);
    }
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(*machine_.LoadWord(ptrs[i]), 0x100u + i);
    }
    EXPECT_EQ(heap.live_allocs(), 16u);
  });
}

TEST_F(HeapTest, FreeThenReuse) {
  RunInProcess([&](Process& p) {
    Heap heap(p, kArena, 4096);
    Result<hw::Vaddr> a = heap.Alloc(1000);
    Result<hw::Vaddr> b = heap.Alloc(1000);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(heap.Free(*a), Status::kOk);
    Result<hw::Vaddr> c = heap.Alloc(900);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*c, *a);  // First fit reuses the hole.
    EXPECT_TRUE(heap.CheckConsistency());
  });
}

TEST_F(HeapTest, CoalescingMakesLargeBlockAvailable) {
  RunInProcess([&](Process& p) {
    Heap heap(p, kArena, 4096);
    Result<hw::Vaddr> a = heap.Alloc(1000);
    Result<hw::Vaddr> b = heap.Alloc(1000);
    Result<hw::Vaddr> c = heap.Alloc(1000);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    // Without coalescing, a 2000-byte alloc would fail after freeing two
    // adjacent 1000-byte blocks.
    ASSERT_EQ(heap.Free(*b), Status::kOk);
    ASSERT_EQ(heap.Free(*a), Status::kOk);  // Coalesces forward into b.
    Result<hw::Vaddr> big = heap.Alloc(1900);
    ASSERT_TRUE(big.ok());
    EXPECT_TRUE(heap.CheckConsistency());
  });
}

TEST_F(HeapTest, ExhaustionReportsNoResources) {
  RunInProcess([&](Process& p) {
    Heap heap(p, kArena, 4096);
    EXPECT_FALSE(heap.Alloc(8000).ok());
    Result<hw::Vaddr> most = heap.Alloc(4000);
    ASSERT_TRUE(most.ok());
    EXPECT_EQ(heap.Alloc(500).status(), Status::kErrNoResources);
    ASSERT_EQ(heap.Free(*most), Status::kOk);
    EXPECT_TRUE(heap.Alloc(500).ok());
  });
}

TEST_F(HeapTest, DoubleFreeAndWildFreeRejected) {
  RunInProcess([&](Process& p) {
    Heap heap(p, kArena, 4096);
    Result<hw::Vaddr> a = heap.Alloc(64);
    ASSERT_TRUE(a.ok());
    ASSERT_EQ(heap.Free(*a), Status::kOk);
    EXPECT_EQ(heap.Free(*a), Status::kErrInvalidArgs);       // Double free.
    EXPECT_EQ(heap.Free(*a + 4), Status::kErrInvalidArgs);   // Interior.
    EXPECT_EQ(heap.Free(0x123), Status::kErrInvalidArgs);    // Wild.
    EXPECT_TRUE(heap.CheckConsistency());
  });
}

TEST_F(HeapTest, PropertyRandomAllocFreeKeepsDataAndStructureIntact) {
  RunInProcess([&](Process& p) {
    Heap heap(p, kArena, 128 * 1024);
    std::map<hw::Vaddr, std::pair<uint32_t, uint32_t>> live;  // ptr -> {size, stamp}.
    SplitMix64 rng(77);
    for (int step = 0; step < 600; ++step) {
      if (live.empty() || rng.NextBelow(5) < 3) {
        const uint32_t size = 8 + static_cast<uint32_t>(rng.NextBelow(700));  // >= 8: stamps must not overlap.
        Result<hw::Vaddr> ptr = heap.Alloc(size);
        if (!ptr.ok()) {
          continue;  // Full: acceptable.
        }
        const uint32_t stamp = static_cast<uint32_t>(rng.Next());
        // Stamp the first and last word of the payload.
        ASSERT_EQ(machine_.StoreWord(*ptr, stamp), Status::kOk);
        ASSERT_EQ(machine_.StoreWord(*ptr + ((size - 1) & ~3u), stamp ^ 1), Status::kOk);
        live[*ptr] = {size, stamp};
      } else {
        auto it = live.begin();
        std::advance(it, rng.NextBelow(live.size()));
        // Stamps must have survived every other operation.
        ASSERT_EQ(*machine_.LoadWord(it->first), it->second.second);
        ASSERT_EQ(*machine_.LoadWord(it->first + ((it->second.first - 1) & ~3u)),
                  it->second.second ^ 1);
        ASSERT_EQ(heap.Free(it->first), Status::kOk);
        live.erase(it);
      }
      if (step % 50 == 0) {
        ASSERT_TRUE(heap.CheckConsistency()) << "step " << step;
      }
    }
    EXPECT_TRUE(heap.CheckConsistency());
    EXPECT_EQ(heap.live_allocs(), live.size());
  });
}

}  // namespace
}  // namespace xok::exos
