#include <gtest/gtest.h>

#include <vector>

#include "src/hw/disk.h"
#include "src/hw/framebuffer.h"
#include "src/hw/machine.h"

namespace xok::hw {
namespace {

class RecordingKernel : public TrapSink {
 public:
  explicit RecordingKernel(Machine& machine) : priv_(machine.InstallKernel(this)) {}

  TrapOutcome OnException(TrapFrame&) override { return TrapOutcome::kSkip; }
  void OnInterrupt(InterruptSource source, uint64_t payload) override {
    events.push_back({source, payload});
  }

  PrivPort& priv_;
  std::vector<std::pair<InterruptSource, uint64_t>> events;
};

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest()
      : machine_(Machine::Config{.phys_pages = 16, .name = "dev"}),
        kernel_(machine_),
        fb_(machine_, 64, 48),
        disk_(machine_, 128) {}

  Machine machine_;
  RecordingKernel kernel_;
  Framebuffer fb_;
  Disk disk_;
};

TEST_F(DeviceTest, FramebufferRejectsWriteWithoutOwnership) {
  EXPECT_EQ(fb_.WritePixel(/*owner_tag=*/7, 3, 3, 0xff0000ff), Status::kErrAccessDenied);
  EXPECT_EQ(fb_.ReadPixel(3, 3), 0u);
}

TEST_F(DeviceTest, FramebufferAllowsOwnerWrites) {
  ASSERT_EQ(fb_.SetTileOwner(0, 0, 7), Status::kOk);
  EXPECT_EQ(fb_.WritePixel(7, 3, 3, 0xff0000ff), Status::kOk);
  EXPECT_EQ(fb_.ReadPixel(3, 3), 0xff0000ffu);
  // A different tag on the same tile is rejected (hardware tag check).
  EXPECT_EQ(fb_.WritePixel(8, 4, 4, 1), Status::kErrAccessDenied);
}

TEST_F(DeviceTest, FramebufferTileGranularity) {
  ASSERT_EQ(fb_.SetTileOwner(1, 0, 9), Status::kOk);  // Pixels x in [16,32), y in [0,16).
  EXPECT_EQ(fb_.WritePixel(9, 16, 0, 5), Status::kOk);
  EXPECT_EQ(fb_.WritePixel(9, 15, 0, 5), Status::kErrAccessDenied);  // Tile (0,0).
}

TEST_F(DeviceTest, FramebufferBoundsChecked) {
  EXPECT_EQ(fb_.WritePixel(7, 64, 0, 1), Status::kErrOutOfRange);
  EXPECT_EQ(fb_.SetTileOwner(99, 0, 1), Status::kErrOutOfRange);
}

TEST_F(DeviceTest, DiskWriteThenReadRoundTrips) {
  // Fill frame 2 with a pattern, write it to block 5, clear, read back.
  auto frame = machine_.mem().PageSpan(2);
  for (size_t i = 0; i < frame.size(); ++i) {
    frame[i] = static_cast<uint8_t>(i * 3);
  }
  Result<uint64_t> write_id = disk_.SubmitWrite(5, 2);
  ASSERT_TRUE(write_id.ok());
  machine_.WaitForInterrupt();
  ASSERT_EQ(kernel_.events.size(), 1u);
  EXPECT_EQ(kernel_.events[0].second, *write_id);
  ASSERT_TRUE(disk_.Complete(*write_id).ok());

  std::fill(frame.begin(), frame.end(), uint8_t{0});
  Result<uint64_t> read_id = disk_.SubmitRead(5, 2);
  ASSERT_TRUE(read_id.ok());
  machine_.WaitForInterrupt();
  ASSERT_TRUE(disk_.Complete(*read_id).ok());
  for (size_t i = 0; i < frame.size(); ++i) {
    ASSERT_EQ(frame[i], static_cast<uint8_t>(i * 3)) << "byte " << i;
  }
}

TEST_F(DeviceTest, DiskCompletionTakesAccessLatency) {
  const uint64_t before = machine_.clock().now();
  ASSERT_TRUE(disk_.SubmitRead(0, 0).ok());
  machine_.WaitForInterrupt();
  EXPECT_GE(machine_.clock().now() - before, kDiskAccessCycles);
}

TEST_F(DeviceTest, DiskRejectsOutOfRange) {
  EXPECT_FALSE(disk_.SubmitRead(128, 0).ok());   // Block out of range.
  EXPECT_FALSE(disk_.SubmitWrite(0, 999).ok());  // Frame out of range.
}

TEST_F(DeviceTest, DiskCompleteUnknownIdFails) {
  EXPECT_FALSE(disk_.Complete(12345).ok());
}

}  // namespace
}  // namespace xok::hw
