#include <gtest/gtest.h>

#include <vector>

#include "src/hw/disk.h"
#include "src/hw/framebuffer.h"
#include "src/hw/machine.h"

namespace xok::hw {
namespace {

class RecordingKernel : public TrapSink {
 public:
  explicit RecordingKernel(Machine& machine) : priv_(machine.InstallKernel(this)) {}

  TrapOutcome OnException(TrapFrame&) override { return TrapOutcome::kSkip; }
  void OnInterrupt(InterruptSource source, uint64_t payload) override {
    events.push_back({source, payload});
  }

  PrivPort& priv_;
  std::vector<std::pair<InterruptSource, uint64_t>> events;
};

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest()
      : machine_(Machine::Config{.phys_pages = 16, .name = "dev"}),
        kernel_(machine_),
        fb_(machine_, 64, 48),
        disk_(machine_, 128) {}

  Machine machine_;
  RecordingKernel kernel_;
  Framebuffer fb_;
  Disk disk_;
};

TEST_F(DeviceTest, FramebufferRejectsWriteWithoutOwnership) {
  EXPECT_EQ(fb_.WritePixel(/*owner_tag=*/7, 3, 3, 0xff0000ff), Status::kErrAccessDenied);
  EXPECT_EQ(fb_.ReadPixel(3, 3), 0u);
}

TEST_F(DeviceTest, FramebufferAllowsOwnerWrites) {
  ASSERT_EQ(fb_.SetTileOwner(0, 0, 7), Status::kOk);
  EXPECT_EQ(fb_.WritePixel(7, 3, 3, 0xff0000ff), Status::kOk);
  EXPECT_EQ(fb_.ReadPixel(3, 3), 0xff0000ffu);
  // A different tag on the same tile is rejected (hardware tag check).
  EXPECT_EQ(fb_.WritePixel(8, 4, 4, 1), Status::kErrAccessDenied);
}

TEST_F(DeviceTest, FramebufferTileGranularity) {
  ASSERT_EQ(fb_.SetTileOwner(1, 0, 9), Status::kOk);  // Pixels x in [16,32), y in [0,16).
  EXPECT_EQ(fb_.WritePixel(9, 16, 0, 5), Status::kOk);
  EXPECT_EQ(fb_.WritePixel(9, 15, 0, 5), Status::kErrAccessDenied);  // Tile (0,0).
}

TEST_F(DeviceTest, FramebufferBoundsChecked) {
  EXPECT_EQ(fb_.WritePixel(7, 64, 0, 1), Status::kErrOutOfRange);
  EXPECT_EQ(fb_.SetTileOwner(99, 0, 1), Status::kErrOutOfRange);
}

TEST_F(DeviceTest, DiskWriteThenReadRoundTrips) {
  // Fill frame 2 with a pattern, write it to block 5, clear, read back.
  auto frame = machine_.mem().PageSpan(2);
  for (size_t i = 0; i < frame.size(); ++i) {
    frame[i] = static_cast<uint8_t>(i * 3);
  }
  Result<uint64_t> write_id = disk_.SubmitWrite(5, 2);
  ASSERT_TRUE(write_id.ok());
  machine_.WaitForInterrupt();
  ASSERT_EQ(kernel_.events.size(), 1u);
  EXPECT_EQ(kernel_.events[0].second, *write_id);
  ASSERT_TRUE(disk_.Complete(*write_id).ok());

  std::fill(frame.begin(), frame.end(), uint8_t{0});
  Result<uint64_t> read_id = disk_.SubmitRead(5, 2);
  ASSERT_TRUE(read_id.ok());
  machine_.WaitForInterrupt();
  ASSERT_TRUE(disk_.Complete(*read_id).ok());
  for (size_t i = 0; i < frame.size(); ++i) {
    ASSERT_EQ(frame[i], static_cast<uint8_t>(i * 3)) << "byte " << i;
  }
}

TEST_F(DeviceTest, DiskCompletionTakesAccessLatency) {
  const uint64_t before = machine_.clock().now();
  ASSERT_TRUE(disk_.SubmitRead(0, 0).ok());
  machine_.WaitForInterrupt();
  EXPECT_GE(machine_.clock().now() - before, kDiskAccessCycles);
}

TEST_F(DeviceTest, DiskRejectsOutOfRange) {
  EXPECT_FALSE(disk_.SubmitRead(128, 0).ok());   // Block out of range.
  EXPECT_FALSE(disk_.SubmitWrite(0, 999).ok());  // Frame out of range.
}

TEST_F(DeviceTest, DiskCompleteUnknownIdFails) {
  EXPECT_FALSE(disk_.Complete(12345).ok());
}

// --- Volatile write buffer, barriers, power cuts ---

class DiskDurabilityTest : public DeviceTest {
 protected:
  // Submits one request and retires it at its completion interrupt.
  Result<Disk::Completion> Retire(Result<uint64_t> id) {
    if (!id.ok()) {
      return id.status();
    }
    machine_.WaitForInterrupt();
    return disk_.Complete(*id);
  }

  void FillFrame(PageId frame, uint8_t salt) {
    auto bytes = machine_.mem().PageSpan(frame);
    for (size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<uint8_t>(i * 3 + salt);
    }
  }
};

TEST_F(DiskDurabilityTest, WriteIsAcknowledgedButNotDurableUntilBarrier) {
  FillFrame(2, 1);
  ASSERT_TRUE(Retire(disk_.SubmitWrite(5, 2)).ok());
  EXPECT_EQ(disk_.buffered_blocks(), 1u);

  // The platter still has the old (zero) contents...
  std::vector<uint8_t> image = disk_.TakeImage();
  EXPECT_EQ(image[5 * kPageBytes], 0u);
  // ...but a read sees the acknowledged write (read-your-writes).
  auto frame3 = machine_.mem().PageSpan(3);
  ASSERT_TRUE(Retire(disk_.SubmitRead(5, 3)).ok());
  EXPECT_EQ(frame3[0], static_cast<uint8_t>(1));

  Result<Disk::Completion> barrier = Retire(disk_.SubmitBarrier());
  ASSERT_TRUE(barrier.ok());
  EXPECT_TRUE(barrier->barrier);
  EXPECT_EQ(disk_.buffered_blocks(), 0u);
  EXPECT_EQ(disk_.barriers_completed(), 1u);
  EXPECT_EQ(disk_.blocks_made_durable(), 1u);
  image = disk_.TakeImage();
  EXPECT_EQ(image[5 * kPageBytes], static_cast<uint8_t>(1));
}

TEST_F(DiskDurabilityTest, PowerCutLosesUnbarrieredWrites) {
  FillFrame(2, 9);
  ASSERT_TRUE(Retire(disk_.SubmitWrite(7, 2)).ok());
  disk_.PowerCut();
  EXPECT_TRUE(disk_.powered_off());
  EXPECT_EQ(disk_.buffered_blocks(), 0u);
  // The acknowledged-but-unbarriered write never reached the platter.
  std::vector<uint8_t> image = disk_.TakeImage();
  for (size_t i = 0; i < kPageBytes; ++i) {
    ASSERT_EQ(image[7 * kPageBytes + i], 0u) << "byte " << i;
  }
  // A dead device refuses further requests.
  EXPECT_EQ(disk_.SubmitRead(0, 0).status(), Status::kErrBadState);
  EXPECT_EQ(disk_.SubmitBarrier().status(), Status::kErrBadState);
}

TEST_F(DiskDurabilityTest, PowerCutTornWriteLandsPrefixOfNewWords) {
  // Barrier an "old" pattern home first, then buffer a "new" pattern and
  // cut power with the torn-write channel certain to fire.
  FillFrame(2, 10);
  ASSERT_TRUE(Retire(disk_.SubmitWrite(9, 2)).ok());
  ASSERT_TRUE(Retire(disk_.SubmitBarrier()).ok());
  FillFrame(2, 200);
  ASSERT_TRUE(Retire(disk_.SubmitWrite(9, 2)).ok());

  FaultPlan plan;
  plan.seed = 77;
  plan.disk_torn_per_mille = 1000;
  FaultInjector injector(plan);
  disk_.set_fault_injector(&injector);
  disk_.PowerCut();
  EXPECT_EQ(injector.blocks_torn(), 1u);

  // The block must now be a word-aligned prefix of the new pattern with
  // the old pattern beyond it — never a complete new block.
  std::vector<uint8_t> image = disk_.TakeImage();
  const uint8_t* block = &image[9 * kPageBytes];
  size_t boundary = 0;
  while (boundary < kPageBytes && block[boundary] == static_cast<uint8_t>(boundary * 3 + 200)) {
    ++boundary;
  }
  EXPECT_GT(boundary, 0u);
  EXPECT_LT(boundary, kPageBytes);
  EXPECT_EQ(boundary % 4, 0u);
  for (size_t i = boundary; i < kPageBytes; ++i) {
    ASSERT_EQ(block[i], static_cast<uint8_t>(i * 3 + 10)) << "byte " << i;
  }
}

TEST_F(DiskDurabilityTest, RestoreImageBootsOverSurvivingPlatter) {
  FillFrame(2, 33);
  ASSERT_TRUE(Retire(disk_.SubmitWrite(4, 2)).ok());
  ASSERT_TRUE(Retire(disk_.SubmitBarrier()).ok());
  const std::vector<uint8_t> image = disk_.TakeImage();

  Disk reborn(machine_, 128);
  EXPECT_EQ(reborn.RestoreImage(std::vector<uint8_t>(16)), Status::kErrInvalidArgs);
  ASSERT_EQ(reborn.RestoreImage(image), Status::kOk);
  EXPECT_FALSE(reborn.powered_off());
  auto frame3 = machine_.mem().PageSpan(3);
  std::fill(frame3.begin(), frame3.end(), uint8_t{0});
  Result<uint64_t> id = reborn.SubmitRead(4, 3);
  ASSERT_TRUE(id.ok());
  machine_.WaitForInterrupt();
  ASSERT_TRUE(reborn.Complete(*id).ok());
  EXPECT_EQ(frame3[0], static_cast<uint8_t>(33));
}

TEST_F(DiskDurabilityTest, CancelIfSparesBarrierRequests) {
  FillFrame(2, 5);
  Result<uint64_t> write_id = disk_.SubmitWrite(3, 2);
  Result<uint64_t> barrier_id = disk_.SubmitBarrier();
  ASSERT_TRUE(write_id.ok());
  ASSERT_TRUE(barrier_id.ok());
  // Teardown cancels every request touching frame 2 — the barrier (which
  // has no DMA frame) must survive it.
  const std::vector<uint64_t> cancelled = disk_.CancelIf([](PageId frame) { return frame == 2; });
  ASSERT_EQ(cancelled.size(), 1u);
  EXPECT_EQ(cancelled[0], *write_id);
  machine_.WaitForInterrupt();
  machine_.WaitForInterrupt();
  EXPECT_FALSE(disk_.Complete(*write_id).ok());    // Cancelled.
  Result<Disk::Completion> barrier = disk_.Complete(*barrier_id);
  ASSERT_TRUE(barrier.ok());
  EXPECT_TRUE(barrier->barrier);
}

}  // namespace
}  // namespace xok::hw
