// Cross-environment protection: the exokernel's security story asserted
// end-to-end. Different library operating systems share one Aegis; none
// can reach another's resources without a capability, even though every
// abstraction above the kernel is untrusted application code.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/aegis.h"
#include "src/exos/process.h"

namespace xok::aegis {
namespace {

class IsolationTest : public ::testing::Test {
 protected:
  IsolationTest()
      : machine_(hw::Machine::Config{.phys_pages = 256, .name = "iso"}), kernel_(machine_) {}

  hw::Machine machine_;
  Aegis kernel_;
};

TEST_F(IsolationTest, SameVaddrDifferentEnvsDifferentMemory) {
  // Two ExOS processes write different values at the SAME virtual address;
  // each reads back its own (ASIDs + distinct frames).
  constexpr hw::Vaddr kVa = 0x1000000;
  uint32_t a_read = 0;
  uint32_t b_read = 0;
  bool a_wrote = false;
  exos::Process a(kernel_, [&](exos::Process& p) {
    ASSERT_EQ(machine_.StoreWord(kVa, 0xaaaa), Status::kOk);
    a_wrote = true;
    p.kernel().SysYield();  // Let B write its own.
    a_read = machine_.LoadWord(kVa).value_or(0);
  });
  exos::Process b(kernel_, [&](exos::Process& p) {
    while (!a_wrote) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(machine_.StoreWord(kVa, 0xbbbb), Status::kOk);
    b_read = machine_.LoadWord(kVa).value_or(0);
  });
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  kernel_.Run();
  EXPECT_EQ(a_read, 0xaaaau);
  EXPECT_EQ(b_read, 0xbbbbu);
}

TEST_F(IsolationTest, StolenPageNumberIsUselessWithoutCapability) {
  // B learns A's physical page *number* (names are public in an exokernel!)
  // but without the capability it cannot create a binding to it.
  hw::PageId a_page = 0;
  bool ready = false;
  exos::Process a(kernel_, [&](exos::Process& p) {
    Result<PageGrant> grant = p.kernel().SysAllocPage();
    ASSERT_TRUE(grant.ok());
    a_page = grant->page;
    ASSERT_EQ(p.kernel().SysTlbWrite(0x2000000, grant->page, true, grant->cap), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(0x2000000, 0x5ec2e7), Status::kOk);
    ready = true;
  });
  exos::Process b(kernel_, [&](exos::Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    // Forge attempts: no capability, a self-minted one, and one for a
    // different resource.
    cap::Capability junk;
    EXPECT_EQ(p.kernel().SysTlbWrite(0x3000000, a_page, false, junk),
              Status::kErrAccessDenied);
    junk.resource = cap::ResourceId{cap::ResourceKind::kPhysPage, a_page};
    junk.rights = cap::kAllRights;
    junk.mac = 0x1234567890abcdefULL;
    EXPECT_EQ(p.kernel().SysTlbWrite(0x3000000, a_page, false, junk),
              Status::kErrAccessDenied);
    // B's own page capability does not transfer to A's page.
    Result<PageGrant> own = p.kernel().SysAllocPage();
    ASSERT_TRUE(own.ok());
    EXPECT_EQ(p.kernel().SysTlbWrite(0x3000000, a_page, false, own->cap),
              Status::kErrAccessDenied);
    // And the address B tried to map still faults to B's own demand-zero
    // path, not to A's data.
    EXPECT_EQ(machine_.LoadWord(0x3000000).value_or(0), 0u);
  });
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  kernel_.Run();
}

TEST_F(IsolationTest, TlbPressureNeverLeaksAcrossAddressSpaces) {
  // Both environments thrash the 64-entry TLB with the same virtual
  // addresses; random evictions and refills must never let one see the
  // other's values. (The STLB caches bindings per-ASID too.)
  constexpr int kPages = 48;
  constexpr hw::Vaddr kBase = 0x4000000;
  bool failed = false;
  auto body = [&](uint32_t tag) {
    return [&, tag](exos::Process& p) {
      for (int i = 0; i < kPages; ++i) {
        if (machine_.StoreWord(kBase + i * hw::kPageBytes, tag + i) != Status::kOk) {
          failed = true;
        }
      }
      for (int round = 0; round < 6; ++round) {
        for (int i = 0; i < kPages; ++i) {
          const uint32_t value = machine_.LoadWord(kBase + i * hw::kPageBytes).value_or(0);
          if (value != tag + i) {
            failed = true;
          }
        }
        p.kernel().SysYield();  // Interleave with the other env.
      }
    };
  };
  exos::Process a(kernel_, body(0x10000));
  exos::Process b(kernel_, body(0x20000));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  kernel_.Run();
  EXPECT_FALSE(failed);
}

TEST_F(IsolationTest, ExitedEnvironmentsPagesStayProtected) {
  // A maps and writes, then exits. Its ASID is flushed; a new environment
  // reusing the same virtual address gets fresh zeroed memory via its own
  // libOS, not A's leftovers.
  constexpr hw::Vaddr kVa = 0x5000000;
  exos::Process a(kernel_, [&](exos::Process& p) {
    ASSERT_EQ(machine_.StoreWord(kVa, 0xdead), Status::kOk);
    (void)p;
  });
  ASSERT_TRUE(a.ok());
  kernel_.Run();  // A runs and exits.

  uint32_t seen = 0xffffffff;
  exos::Process b(kernel_, [&](exos::Process& p) {
    seen = machine_.LoadWord(kVa).value_or(0xffffffff);
    (void)p;
  });
  ASSERT_TRUE(b.ok());
  kernel_.Run();
  EXPECT_EQ(seen, 0u);  // Demand-zero, never 0xdead.
}

TEST_F(IsolationTest, DerivedCapabilityIsTheOnlySharingPath) {
  // Positive control for the negative tests above: with a properly
  // derived read-only capability, sharing works — and write stays denied.
  hw::PageId shared = 0;
  cap::Capability ro;
  bool ready = false;
  uint32_t leaked = 0;
  exos::Process a(kernel_, [&](exos::Process& p) {
    Result<PageGrant> grant = p.kernel().SysAllocPage();
    ASSERT_TRUE(grant.ok());
    shared = grant->page;
    ASSERT_EQ(p.kernel().SysTlbWrite(0x6000000, grant->page, true, grant->cap), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(0x6000000, 0x900d), Status::kOk);
    Result<cap::Capability> derived = p.kernel().SysDeriveCap(grant->cap, cap::kRead);
    ASSERT_TRUE(derived.ok());
    ro = *derived;
    ready = true;
  });
  exos::Process b(kernel_, [&](exos::Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(p.kernel().SysTlbWrite(0x7000000, shared, false, ro), Status::kOk);
    leaked = machine_.LoadWord(0x7000000).value_or(0);
    EXPECT_EQ(p.kernel().SysTlbWrite(0x7000000, shared, true, ro), Status::kErrAccessDenied);
  });
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  kernel_.Run();
  EXPECT_EQ(leaked, 0x900du);  // Authorised flow works...
}

TEST_F(IsolationTest, RawEnvAndExosProcessCoexist) {
  // A raw Aegis environment with its own 20-line "libOS" (identity pager
  // over pages it owns) runs beside a full ExOS process.
  std::vector<PageGrant> arena;
  EnvSpec raw;
  raw.handlers.exception = [&](const hw::TrapFrame& frame) {
    const hw::Vpn vpn = hw::VpnOf(frame.bad_vaddr);
    const hw::Vpn first = hw::VpnOf(0x8000000);
    if (vpn < first || vpn >= first + arena.size()) {
      return ExcAction::kSkip;
    }
    const PageGrant& grant = arena[vpn - first];
    return kernel_.SysTlbWrite(frame.bad_vaddr, grant.page, true, grant.cap) == Status::kOk
               ? ExcAction::kRetry
               : ExcAction::kSkip;
  };
  bool raw_ok = false;
  raw.entry = [&] {
    for (int i = 0; i < 8; ++i) {
      Result<PageGrant> grant = kernel_.SysAllocPage();
      ASSERT_TRUE(grant.ok());
      arena.push_back(*grant);
    }
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(machine_.StoreWord(0x8000000 + i * hw::kPageBytes, 0xc0de + i), Status::kOk);
    }
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(machine_.LoadWord(0x8000000 + i * hw::kPageBytes).value_or(0),
                0xc0deu + i);
    }
    raw_ok = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(raw)).ok());

  bool exos_ok = false;
  exos::Process proc(kernel_, [&](exos::Process& p) {
    ASSERT_EQ(machine_.StoreWord(0x9000000, 42), Status::kOk);
    exos_ok = machine_.LoadWord(0x9000000).value_or(0) == 42;
    (void)p;
  });
  ASSERT_TRUE(proc.ok());
  kernel_.Run();
  EXPECT_TRUE(raw_ok);
  EXPECT_TRUE(exos_ok);
}

}  // namespace
}  // namespace xok::aegis
