#include "src/vcode/vcode.h"

#include <gtest/gtest.h>

#include <vector>

namespace xok::vcode {
namespace {

ExecResult RunProgram(const Program& program, std::span<const uint8_t> msg = {},
               std::span<uint8_t> region = {}) {
  ExecEnv env{msg, region, nullptr};
  return Execute(program, env);
}

TEST(VcodeExec, AcceptReturnsImmediate) {
  Emitter e;
  e.Emit(Op::kAccept, 0, 0, 42);
  EXPECT_EQ(RunProgram(e.Finish()).value, 42u);
}

TEST(VcodeExec, RejectReturnsSentinel) {
  Emitter e;
  e.Emit(Op::kReject);
  EXPECT_EQ(RunProgram(e.Finish()).value, kRejected);
}

TEST(VcodeExec, AluOperations) {
  Emitter e;
  e.Emit(Op::kLoadImm, 0, 0, 10);
  e.Emit(Op::kLoadImm, 1, 0, 3);
  e.Emit(Op::kAdd, 0, 1);       // r0 = 13
  e.Emit(Op::kShl, 0, 0, 2);    // r0 = 52
  e.Emit(Op::kAddImm, 0, 0, 4); // r0 = 56
  e.Emit(Op::kSub, 0, 1);       // r0 = 53
  e.Emit(Op::kAndImm, 0, 0, 0xfe);  // r0 = 52
  e.Emit(Op::kShr, 0, 0, 1);    // r0 = 26
  Emitter::Label fail = e.EmitBranch(Op::kBranchNeImm, 0, 26);
  e.Emit(Op::kAccept, 0, 0, 1);
  e.Bind(fail);
  e.Emit(Op::kReject);
  EXPECT_EQ(RunProgram(e.Finish()).value, 1u);
}

TEST(VcodeExec, MsgLoadsAreBigEndian) {
  std::vector<uint8_t> msg = {0x12, 0x34, 0x56, 0x78};
  Emitter e;
  e.Emit(Op::kLoadMsgWord, 0, 1, 0);  // r1 = 0.
  Emitter::Label fail = e.EmitBranch(Op::kBranchNeImm, 0, 0x12345678);
  e.Emit(Op::kLoadMsgHalf, 0, 1, 1);
  Emitter::Label fail2 = e.EmitBranch(Op::kBranchNeImm, 0, 0x3456);
  e.Emit(Op::kLoadMsgByte, 0, 1, 3);
  Emitter::Label fail3 = e.EmitBranch(Op::kBranchNeImm, 0, 0x78);
  e.Emit(Op::kAccept, 0, 0, 7);
  e.Bind(fail);
  e.Bind(fail2);
  e.Bind(fail3);
  e.Emit(Op::kReject);
  EXPECT_EQ(RunProgram(e.Finish(), msg).value, 7u);
}

TEST(VcodeExec, OutOfBoundsMsgLoadRejects) {
  std::vector<uint8_t> msg = {1, 2};
  Emitter e;
  e.Emit(Op::kLoadMsgWord, 0, 1, 0);  // 4 bytes from a 2-byte message.
  e.Emit(Op::kAccept, 0, 0, 1);
  EXPECT_EQ(RunProgram(e.Finish(), msg).value, kRejected);
}

TEST(VcodeExec, RegionStoreAndLoadRoundTrip) {
  std::vector<uint8_t> region(16, 0);
  Emitter e;
  e.Emit(Op::kLoadImm, 0, 0, 4);           // r0 = dst offset.
  e.Emit(Op::kLoadImm, 1, 0, 0xabcd1234);  // r1 = value.
  e.Emit(Op::kStoreRegionWord, 0, 1, 0);
  e.Emit(Op::kLoadRegionWord, 2, 0, 0);  // r2 = region[r0].
  e.Emit(Op::kMov, 3, 2);
  Emitter::Label fail = e.EmitBranch(Op::kBranchNeImm, 3, 0xabcd1234);
  e.Emit(Op::kAccept, 0, 0, 9);
  e.Bind(fail);
  e.Emit(Op::kReject);
  EXPECT_EQ(RunProgram(e.Finish(), {}, region).value, 9u);
}

TEST(VcodeExec, RegionStoreOutOfBoundsRejects) {
  std::vector<uint8_t> region(4, 0);
  Emitter e;
  e.Emit(Op::kLoadImm, 0, 0, 2);  // Offset 2: word would span past the end.
  e.Emit(Op::kLoadImm, 1, 0, 1);
  e.Emit(Op::kStoreRegionWord, 0, 1, 0);
  e.Emit(Op::kAccept, 0, 0, 1);
  EXPECT_EQ(RunProgram(e.Finish(), {}, region).value, kRejected);
}

TEST(VcodeExec, CopyRegionMovesBytesAndCountsThem) {
  std::vector<uint8_t> msg = {9, 8, 7, 6, 5};
  std::vector<uint8_t> region(8, 0);
  Emitter e;
  e.Emit(Op::kLoadImm, 0, 0, 1);  // dst = 1.
  e.Emit(Op::kLoadImm, 1, 0, 2);  // src = 2.
  e.Emit(Op::kCopyRegion, 0, 1, 3);
  e.Emit(Op::kAccept, 0, 0, 1);
  ExecResult r = RunProgram(e.Finish(), msg, region);
  EXPECT_EQ(r.value, 1u);
  EXPECT_EQ(r.bytes_touched, 3u);
  EXPECT_EQ(region[1], 7);
  EXPECT_EQ(region[2], 6);
  EXPECT_EQ(region[3], 5);
}

TEST(VcodeExec, CopyCksumMatchesSeparateCksum) {
  std::vector<uint8_t> msg = {0x45, 0x00, 0x01, 0x23, 0x99};
  std::vector<uint8_t> region(8, 0);

  // Integrated: copy+checksum in one op; result in r15.
  Emitter ilp;
  ilp.Emit(Op::kLoadImm, 0, 0, 0);
  ilp.Emit(Op::kLoadImm, 1, 0, 0);
  ilp.Emit(Op::kCopyCksum, 0, 1, 5);
  ilp.Emit(Op::kMov, 2, 15);
  ilp.Emit(Op::kAccept, 0, 0, 0);  // Value checked via separate run below.

  Emitter sep;
  sep.Emit(Op::kLoadImm, 1, 0, 0);
  sep.Emit(Op::kCksum, 0, 1, 5);
  sep.Emit(Op::kAccept, 0, 0, 0);

  // Compare r15 via accept imm is awkward; instead assert the copies agree
  // and the checksums agree by storing r15 to the region.
  Emitter ilp2;
  ilp2.Emit(Op::kLoadImm, 0, 0, 0);
  ilp2.Emit(Op::kLoadImm, 1, 0, 0);
  ilp2.Emit(Op::kCopyCksum, 0, 1, 5);
  ilp2.Emit(Op::kLoadImm, 3, 0, 0);  // Hack-free: write r15 to region[0..4).
  ilp2.Emit(Op::kStoreRegionWord, 3, 15, 0);
  ilp2.Emit(Op::kAccept, 0, 0, 1);
  std::vector<uint8_t> region_a(8, 0);
  ASSERT_EQ(RunProgram(ilp2.Finish(), msg, region_a).value, 1u);

  Emitter sep2;
  sep2.Emit(Op::kLoadImm, 1, 0, 0);
  sep2.Emit(Op::kCksum, 0, 1, 5);
  sep2.Emit(Op::kLoadImm, 3, 0, 4);
  sep2.Emit(Op::kStoreRegionWord, 3, 15, 0);
  sep2.Emit(Op::kAccept, 0, 0, 1);
  std::vector<uint8_t> region_b(8, 0);
  ASSERT_EQ(RunProgram(sep2.Finish(), msg, region_b).value, 1u);

  // The 4 bytes at region_a[0..4) (ILP checksum) match region_b[4..8).
  EXPECT_TRUE(std::equal(region_a.begin(), region_a.begin() + 4, region_b.begin() + 4));
}

TEST(VcodeExec, HooksAreInvokedWithRegisters) {
  Emitter e;
  e.Emit(Op::kLoadImm, 2, 0, 55);
  e.Emit(Op::kHook, 0, 0, 99);
  e.Emit(Op::kAccept, 0, 0, 1);
  Program p = e.Finish();

  uint32_t seen_reg = 0;
  uint32_t seen_imm = 0;
  std::vector<std::function<void(uint32_t(&)[kRegisters], uint32_t)>> hooks;
  hooks.push_back([&](uint32_t(&regs)[kRegisters], uint32_t imm) {
    seen_reg = regs[2];
    seen_imm = imm;
    regs[3] = 77;  // Hooks may write registers back.
  });
  ExecEnv env{{}, {}, &hooks};
  EXPECT_EQ(Execute(p, env).value, 1u);
  EXPECT_EQ(seen_reg, 55u);
  EXPECT_EQ(seen_imm, 99u);
}

TEST(VcodeExec, OpsExecutedCountsTakenPath) {
  Emitter e;
  e.Emit(Op::kLoadImm, 0, 0, 1);
  Emitter::Label skip = e.EmitBranch(Op::kBranchEqImm, 0, 1);
  e.Emit(Op::kLoadImm, 0, 0, 2);  // Skipped.
  e.Bind(skip);
  e.Emit(Op::kAccept, 0, 0, 1);
  ExecResult r = RunProgram(e.Finish());
  EXPECT_EQ(r.ops_executed, 3u);  // load, branch, accept.
}

// --- Verifier ---

TEST(VcodeVerify, AcceptsStraightLineProgram) {
  Emitter e;
  e.Emit(Op::kLoadImm, 0, 0, 1);
  e.Emit(Op::kAccept, 0, 0, 1);
  EXPECT_EQ(Verify(e.Finish(), 64, 0), Status::kOk);
}

TEST(VcodeVerify, RejectsEmptyProgram) {
  EXPECT_EQ(Verify(Program{}, 64, 0), Status::kErrUnsafeCode);
}

TEST(VcodeVerify, RejectsOverlongProgram) {
  Emitter e;
  for (int i = 0; i < 100; ++i) {
    e.Emit(Op::kLoadImm, 0, 0, 1);
  }
  e.Emit(Op::kAccept);
  EXPECT_EQ(Verify(e.Finish(), 64, 0), Status::kErrUnsafeCode);
}

TEST(VcodeVerify, RejectsBackwardBranch) {
  std::vector<Insn> code;
  code.push_back(Insn{Op::kLoadImm, 0, 0, 0, 0});
  code.push_back(Insn{Op::kBranchEqImm, 0, 0, 0, 0});  // Target 0: backward.
  code.push_back(Insn{Op::kAccept, 0, 0, 0, 0});
  EXPECT_EQ(Verify(Program(code), 64, 0), Status::kErrUnsafeCode);
}

TEST(VcodeVerify, RejectsSelfBranch) {
  std::vector<Insn> code;
  code.push_back(Insn{Op::kBranchEqImm, 0, 0, 0, 0});  // Target == pc.
  code.push_back(Insn{Op::kAccept, 0, 0, 0, 0});
  EXPECT_EQ(Verify(Program(code), 64, 0), Status::kErrUnsafeCode);
}

TEST(VcodeVerify, RejectsBranchPastEnd) {
  std::vector<Insn> code;
  code.push_back(Insn{Op::kBranchEqImm, 0, 0, 0, 5});
  code.push_back(Insn{Op::kAccept, 0, 0, 0, 0});
  EXPECT_EQ(Verify(Program(code), 64, 0), Status::kErrUnsafeCode);
}

TEST(VcodeVerify, RejectsFallOffEnd) {
  std::vector<Insn> code;
  code.push_back(Insn{Op::kLoadImm, 0, 0, 1, 0});
  EXPECT_EQ(Verify(Program(code), 64, 0), Status::kErrUnsafeCode);
}

TEST(VcodeVerify, RejectsBadRegister) {
  std::vector<Insn> code;
  code.push_back(Insn{Op::kLoadImm, 20, 0, 1, 0});
  code.push_back(Insn{Op::kAccept, 0, 0, 0, 0});
  EXPECT_EQ(Verify(Program(code), 64, 0), Status::kErrUnsafeCode);
}

TEST(VcodeVerify, RejectsDisallowedHook) {
  std::vector<Insn> code;
  code.push_back(Insn{Op::kHook, 2, 0, 0, 0});
  code.push_back(Insn{Op::kAccept, 0, 0, 0, 0});
  EXPECT_EQ(Verify(Program(code), 64, 2), Status::kErrUnsafeCode);
  code[0].a = 1;
  EXPECT_EQ(Verify(Program(code), 64, 2), Status::kOk);
}

// Property: any verified program terminates within code-length steps of
// forward progress — because branches only go forward, ops_executed can
// never exceed the program length.
TEST(VcodeVerify, PropertyVerifiedProgramsAreBounded) {
  Emitter e;
  for (int i = 0; i < 30; ++i) {
    e.Emit(Op::kAddImm, 0, 0, 1);
    if (i % 5 == 0) {
      Emitter::Label l = e.EmitBranch(Op::kBranchLtImm, 0, 1000);
      e.Emit(Op::kReject);
      e.Bind(l);
    }
  }
  e.Emit(Op::kAccept, 0, 0, 1);
  Program p = e.Finish();
  ASSERT_EQ(Verify(p, 128, 0), Status::kOk);
  ExecEnv env{{}, {}, nullptr};
  ExecResult r = Execute(p, env);
  EXPECT_LE(r.ops_executed, p.size());
}

}  // namespace
}  // namespace xok::vcode
