#include "src/exos/vm.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/base/rand.h"
#include "src/exos/process.h"

namespace xok::exos {
namespace {

class ExosVmTest : public ::testing::Test {
 protected:
  ExosVmTest()
      : machine_(hw::Machine::Config{.phys_pages = 512, .name = "exos"}), kernel_(machine_) {}

  void RunInProcess(std::function<void(Process&)> body) {
    Process proc(kernel_, std::move(body));
    ASSERT_TRUE(proc.ok());
    kernel_.Run();
  }

  hw::Machine machine_;
  aegis::Aegis kernel_;
};

TEST_F(ExosVmTest, DemandZeroHeapJustWorks) {
  RunInProcess([&](Process& p) {
    // No explicit Map: touching memory demand-allocates through the
    // application-level fault handler.
    ASSERT_EQ(machine_.StoreWord(0x100000, 7), Status::kOk);
    Result<uint32_t> v = machine_.LoadWord(0x100000);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 7u);
    (void)p;
  });
}

TEST_F(ExosVmTest, ExplicitMapAndUnmap) {
  RunInProcess([&](Process& p) {
    ASSERT_EQ(p.vm().Map(0x200000, kProtWrite), Status::kOk);
    EXPECT_EQ(p.vm().Map(0x200000, kProtWrite), Status::kErrAlreadyExists);
    ASSERT_EQ(machine_.StoreWord(0x200000, 1), Status::kOk);
    ASSERT_EQ(p.vm().Unmap(0x200000), Status::kOk);
    EXPECT_EQ(p.vm().Unmap(0x200000), Status::kErrNotFound);
  });
}

TEST_F(ExosVmTest, DirtyBitSetOnFirstStoreOnly) {
  RunInProcess([&](Process& p) {
    ASSERT_EQ(p.vm().Map(0x300000, kProtWrite), Status::kOk);
    Result<bool> dirty = p.vm().Dirty(0x300000);
    ASSERT_TRUE(dirty.ok());
    EXPECT_FALSE(*dirty);
    // A read does not dirty the page.
    ASSERT_TRUE(machine_.LoadWord(0x300000).ok());
    EXPECT_FALSE(*p.vm().Dirty(0x300000));
    // The first store does.
    ASSERT_EQ(machine_.StoreWord(0x300000, 5), Status::kOk);
    EXPECT_TRUE(*p.vm().Dirty(0x300000));
    // Clean re-arms the trap; the page reads fine but is clean again.
    ASSERT_EQ(p.vm().Clean(0x300000), Status::kOk);
    EXPECT_FALSE(*p.vm().Dirty(0x300000));
    EXPECT_EQ(*machine_.LoadWord(0x300000), 5u);
    EXPECT_FALSE(*p.vm().Dirty(0x300000));
    ASSERT_EQ(machine_.StoreWord(0x300000, 6), Status::kOk);
    EXPECT_TRUE(*p.vm().Dirty(0x300000));
  });
}

TEST_F(ExosVmTest, DirtyQueryOnUnmappedFails) {
  RunInProcess([&](Process& p) {
    EXPECT_FALSE(p.vm().Dirty(0x999000).ok());
  });
}

TEST_F(ExosVmTest, ReadProtectTrapsToUserHandler) {
  RunInProcess([&](Process& p) {
    std::vector<hw::Vaddr> faults;
    ASSERT_EQ(p.vm().Map(0x400000, kProtWrite), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(0x400000, 9), Status::kOk);
    p.vm().set_trap_handler([&](hw::Vaddr va, bool) {
      faults.push_back(va);
      return p.vm().Protect(va & ~hw::kPageMask, 1, kProtWrite) == Status::kOk;
    });
    ASSERT_EQ(p.vm().Protect(0x400000, 1, kProtNone), Status::kOk);
    Result<uint32_t> v = machine_.LoadWord(0x400000);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 9u);
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0], 0x400000u);
    EXPECT_EQ(p.vm().user_traps(), 1u);
  });
}

TEST_F(ExosVmTest, WriteProtectAllowsReadsTrapsWrites) {
  RunInProcess([&](Process& p) {
    int write_faults = 0;
    ASSERT_EQ(p.vm().Map(0x500000, kProtWrite), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(0x500000, 1), Status::kOk);
    p.vm().set_trap_handler([&](hw::Vaddr va, bool is_write) {
      EXPECT_TRUE(is_write);
      ++write_faults;
      return p.vm().Protect(va & ~hw::kPageMask, 1, kProtWrite) == Status::kOk;
    });
    ASSERT_EQ(p.vm().Protect(0x500000, 1, kProtRead), Status::kOk);
    EXPECT_TRUE(machine_.LoadWord(0x500000).ok());  // Reads pass.
    EXPECT_EQ(write_faults, 0);
    ASSERT_EQ(machine_.StoreWord(0x500000, 2), Status::kOk);  // Write traps once.
    EXPECT_EQ(write_faults, 1);
    EXPECT_EQ(*machine_.LoadWord(0x500000), 2u);
  });
}

TEST_F(ExosVmTest, UnhandledProtFaultFailsAccess) {
  RunInProcess([&](Process& p) {
    ASSERT_EQ(p.vm().Map(0x600000, kProtWrite), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(0x600000, 1), Status::kOk);
    ASSERT_EQ(p.vm().Protect(0x600000, 1, kProtNone), Status::kOk);
    // No trap handler installed: the access errors out.
    EXPECT_FALSE(machine_.LoadWord(0x600000).ok());
  });
}

TEST_F(ExosVmTest, Appel1Semantics) {
  // appel1: access a random protected page; in the handler protect some
  // other page and unprotect the faulting page.
  RunInProcess([&](Process& p) {
    constexpr int kPages = 16;
    constexpr hw::Vaddr kBase = 0x700000;
    for (int i = 0; i < kPages; ++i) {
      ASSERT_EQ(p.vm().Map(kBase + i * hw::kPageBytes, kProtWrite), Status::kOk);
      ASSERT_EQ(machine_.StoreWord(kBase + i * hw::kPageBytes, i), Status::kOk);
    }
    int protected_page = 0;
    ASSERT_EQ(p.vm().Protect(kBase, 1, kProtNone), Status::kOk);
    int traps = 0;
    p.vm().set_trap_handler([&](hw::Vaddr va, bool) {
      ++traps;
      const int faulting = static_cast<int>((va - kBase) / hw::kPageBytes);
      const int other = (faulting + 1) % kPages;
      EXPECT_EQ(p.vm().Protect(kBase + other * hw::kPageBytes, 1, kProtNone), Status::kOk);
      EXPECT_EQ(p.vm().Protect(kBase + faulting * hw::kPageBytes, 1, kProtWrite), Status::kOk);
      protected_page = other;
      return true;
    });
    for (int round = 0; round < 32; ++round) {
      const hw::Vaddr va = kBase + protected_page * hw::kPageBytes;
      Result<uint32_t> v = machine_.LoadWord(va);
      ASSERT_TRUE(v.ok());
    }
    EXPECT_EQ(traps, 32);
  });
}

TEST_F(ExosVmTest, ReleasePagesPrefersCleanVictims) {
  RunInProcess([&](Process& p) {
    ASSERT_EQ(p.vm().Map(0x800000, kProtWrite), Status::kOk);  // Stays clean.
    ASSERT_EQ(p.vm().Map(0x801000, kProtWrite), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(0x801000, 1), Status::kOk);  // Dirty.
    EXPECT_EQ(p.vm().ReleasePages(1), 1u);
    // The clean page went; the dirty page survives.
    EXPECT_FALSE(p.vm().Dirty(0x800000).ok());
    ASSERT_TRUE(p.vm().Dirty(0x801000).ok());
    EXPECT_TRUE(*p.vm().Dirty(0x801000));
  });
}

TEST_F(ExosVmTest, RevocationWithDefaultPolicyCompliesInvisiblyToKernel) {
  RunInProcess([&](Process& p) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(p.vm().Map(0x900000 + i * hw::kPageBytes, kProtWrite), Status::kOk);
    }
    const uint32_t free_before = kernel_.free_pages();
    ASSERT_EQ(kernel_.RevokePages(p.id(), 3), Status::kOk);
    EXPECT_EQ(kernel_.free_pages(), free_before + 3);
    EXPECT_TRUE(kernel_.SysReadRepossessed().empty());  // Complied: no abort.
  });
}

TEST_F(ExosVmTest, RepossessionRepairAllowsRefault) {
  RunInProcess([&](Process& p) {
    p.set_revoke_handler([](uint32_t) {});  // Refuse to comply.
    ASSERT_EQ(p.vm().Map(0xa00000, kProtWrite), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(0xa00000, 0x77), Status::kOk);
    ASSERT_EQ(kernel_.RevokePages(p.id(), 1), Status::kOk);
    std::vector<hw::PageId> taken = kernel_.SysReadRepossessed();
    ASSERT_EQ(taken.size(), 1u);
    p.vm().RepairAfterRepossession(taken);
    // The old data is gone (the frame was repossessed), but the address
    // works again via demand-zero refault.
    Result<uint32_t> v = machine_.LoadWord(0xa00000);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 0u);
  });
}

TEST_F(ExosVmTest, LargeWorkingSetExceedsHardwareTlb) {
  // 128 pages >> 64 TLB entries: the STLB absorbs the capacity misses and
  // everything stays correct.
  RunInProcess([&](Process& p) {
    constexpr int kPages = 128;
    constexpr hw::Vaddr kBase = 0x1000000;
    for (int i = 0; i < kPages; ++i) {
      ASSERT_EQ(machine_.StoreWord(kBase + i * hw::kPageBytes, 1000 + i), Status::kOk);
    }
    for (int i = 0; i < kPages; ++i) {
      Result<uint32_t> v = machine_.LoadWord(kBase + i * hw::kPageBytes);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, 1000u + i);
    }
    EXPECT_GT(kernel_.stlb_hits(), 0u);
    (void)p;
  });
}

// Property test: VM behaviour against a reference model over random
// map/store/load/protect/clean sequences.
TEST_F(ExosVmTest, PropertyMatchesReferenceModel) {
  RunInProcess([&](Process& p) {
    constexpr hw::Vaddr kBase = 0x2000000;
    constexpr int kPages = 24;
    struct ModelPage {
      bool mapped = false;
      Prot prot = kProtNone;
      bool dirty = false;
      uint32_t value = 0;
    };
    ModelPage model[kPages];
    p.vm().set_trap_handler([&](hw::Vaddr, bool) { return false; });  // Deny faults.
    p.vm().set_demand_zero(false);

    SplitMix64 rng(99);
    for (int step = 0; step < 3000; ++step) {
      const int page = static_cast<int>(rng.NextBelow(kPages));
      const hw::Vaddr va = kBase + page * hw::kPageBytes;
      switch (rng.NextBelow(6)) {
        case 0: {  // Map.
          const Status status = p.vm().Map(va, kProtWrite);
          if (model[page].mapped) {
            ASSERT_EQ(status, Status::kErrAlreadyExists);
          } else {
            ASSERT_EQ(status, Status::kOk);
            model[page] = ModelPage{true, kProtWrite, false, 0};
          }
          break;
        }
        case 1: {  // Store.
          const uint32_t value = static_cast<uint32_t>(rng.Next());
          const Status status = machine_.StoreWord(va, value);
          if (model[page].mapped && model[page].prot == kProtWrite) {
            ASSERT_EQ(status, Status::kOk);
            model[page].value = value;
            model[page].dirty = true;
          } else {
            ASSERT_NE(status, Status::kOk);
          }
          break;
        }
        case 2: {  // Load.
          Result<uint32_t> v = machine_.LoadWord(va);
          if (model[page].mapped && model[page].prot != kProtNone) {
            ASSERT_TRUE(v.ok());
            ASSERT_EQ(*v, model[page].value);
          } else {
            ASSERT_FALSE(v.ok());
          }
          break;
        }
        case 3: {  // Protect.
          const Prot prot = static_cast<Prot>(rng.NextBelow(3));
          const Status status = p.vm().Protect(va, 1, prot);
          if (model[page].mapped) {
            ASSERT_EQ(status, Status::kOk);
            model[page].prot = prot;
          } else {
            ASSERT_EQ(status, Status::kErrNotFound);
          }
          break;
        }
        case 4: {  // Dirty query.
          Result<bool> dirty = p.vm().Dirty(va);
          if (model[page].mapped) {
            ASSERT_TRUE(dirty.ok());
            ASSERT_EQ(*dirty, model[page].dirty);
          } else {
            ASSERT_FALSE(dirty.ok());
          }
          break;
        }
        default: {  // Clean.
          const Status status = p.vm().Clean(va);
          if (model[page].mapped) {
            ASSERT_EQ(status, Status::kOk);
            model[page].dirty = false;
          } else {
            ASSERT_EQ(status, Status::kErrNotFound);
          }
          break;
        }
      }
    }
  });
}

}  // namespace
}  // namespace xok::exos
