#include "src/exos/uthread.h"

#include <gtest/gtest.h>

#include <vector>

namespace xok::exos {
namespace {

class UthreadTest : public ::testing::Test {
 protected:
  UthreadTest()
      : machine_(hw::Machine::Config{.phys_pages = 256, .name = "uth"}), kernel_(machine_) {}

  void RunInProcess(std::function<void(Process&)> body) {
    Process proc(kernel_, std::move(body));
    ASSERT_TRUE(proc.ok());
    kernel_.Run();
  }

  hw::Machine machine_;
  aegis::Aegis kernel_;
};

TEST_F(UthreadTest, SingleThreadRunsToCompletion) {
  RunInProcess([&](Process& p) {
    ThreadGroup threads(p);
    bool ran = false;
    threads.Spawn([&] { ran = true; });
    threads.Run();
    EXPECT_TRUE(ran);
  });
}

TEST_F(UthreadTest, ThreadsInterleaveOnYield) {
  RunInProcess([&](Process& p) {
    ThreadGroup threads(p);
    std::vector<int> trace;
    threads.Spawn([&] {
      for (int i = 0; i < 3; ++i) {
        trace.push_back(1);
        threads.Yield();
      }
    });
    threads.Spawn([&] {
      for (int i = 0; i < 3; ++i) {
        trace.push_back(2);
        threads.Yield();
      }
    });
    threads.Run();
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 1, 2, 1, 2}));
  });
}

TEST_F(UthreadTest, JoinWaitsForTarget) {
  RunInProcess([&](Process& p) {
    ThreadGroup threads(p);
    std::vector<int> trace;
    ThreadGroup::ThreadId worker = threads.Spawn([&] {
      for (int i = 0; i < 3; ++i) {
        trace.push_back(1);
        threads.Yield();
      }
    });
    threads.Spawn([&] {
      threads.Join(worker);
      trace.push_back(2);  // Only after the worker's three entries.
    });
    threads.Run();
    EXPECT_EQ(trace, (std::vector<int>{1, 1, 1, 2}));
  });
}

TEST_F(UthreadTest, JoinOnFinishedThreadReturnsImmediately) {
  RunInProcess([&](Process& p) {
    ThreadGroup threads(p);
    bool joined = false;
    ThreadGroup::ThreadId quick = threads.Spawn([] {});
    threads.Spawn([&] {
      threads.Yield();  // Let `quick` finish first.
      threads.Join(quick);
      joined = true;
    });
    threads.Run();
    EXPECT_TRUE(joined);
  });
}

TEST_F(UthreadTest, SpawnFromInsideThread) {
  RunInProcess([&](Process& p) {
    ThreadGroup threads(p);
    std::vector<int> trace;
    threads.Spawn([&] {
      trace.push_back(1);
      ThreadGroup::ThreadId child = threads.Spawn([&] { trace.push_back(2); });
      threads.Join(child);
      trace.push_back(3);
    });
    threads.Run();
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
  });
}

TEST_F(UthreadTest, TimerPreemptionHintReachesThreads) {
  // The exokernel's timer interrupt becomes a library-level preemption
  // hint: a compute-bound thread observes it without any kernel-visible
  // thread abstraction existing at all (the paper's §2 point).
  RunInProcess([&](Process& p) {
    ThreadGroup threads(p);
    uint64_t observed = 0;
    threads.Spawn([&] {
      // Compute across several slices, yielding at safe points.
      for (int i = 0; i < 40; ++i) {
        p.machine().Charge(p.kernel().slice_cycles() / 8);
        threads.Yield();
      }
      observed = threads.preemptions();
    });
    threads.Spawn([&] {
      for (int i = 0; i < 40; ++i) {
        p.machine().Charge(p.kernel().slice_cycles() / 8);
        threads.Yield();
      }
    });
    threads.Run();
    EXPECT_GT(observed, 0u);  // Slice ends were seen and accounted.
  });
}

TEST_F(UthreadTest, PageFaultInOneThreadDoesNotDisturbOthers) {
  // Paper §2: traditional kernels hide page faults, breaking user-level
  // threads. Here the fault runs through ExOS's handler on the faulting
  // thread's own fiber; the other thread's state is untouched.
  RunInProcess([&](Process& p) {
    ThreadGroup threads(p);
    uint32_t faulting_value = 0;
    int other_progress = 0;
    threads.Spawn([&] {
      // Demand-zero fault inside a thread.
      (void)p.machine().StoreWord(0x3000000, 777);
      threads.Yield();
      faulting_value = p.machine().LoadWord(0x3000000).value_or(0);
    });
    threads.Spawn([&] {
      for (int i = 0; i < 5; ++i) {
        ++other_progress;
        threads.Yield();
      }
    });
    threads.Run();
    EXPECT_EQ(faulting_value, 777u);
    EXPECT_EQ(other_progress, 5);
  });
}

TEST_F(UthreadTest, ManyThreadsAllComplete) {
  RunInProcess([&](Process& p) {
    ThreadGroup threads(p);
    constexpr int kThreads = 32;
    int done = 0;
    for (int i = 0; i < kThreads; ++i) {
      threads.Spawn([&threads, &done, i] {
        for (int y = 0; y < i % 5; ++y) {
          threads.Yield();
        }
        ++done;
      });
    }
    threads.Run();
    EXPECT_EQ(done, kThreads);
  });
}

TEST_F(UthreadTest, ThreadSwitchFarCheaperThanProcessSwitch) {
  // The whole point of user-level threads: switching costs a few
  // instructions, not a kernel crossing.
  RunInProcess([&](Process& p) {
    ThreadGroup threads(p);
    uint64_t thread_switch = 0;
    threads.Spawn([&] {
      const uint64_t t0 = p.machine().clock().now();
      for (int i = 0; i < 100; ++i) {
        threads.Yield();
      }
      thread_switch = (p.machine().clock().now() - t0) / 100;
    });
    threads.Run();
    // An Aegis directed yield costs ~3.3 us; the thread switch must be
    // well under 1 us.
    EXPECT_LT(hw::CyclesToMicros(thread_switch), 1.0);
  });
}

}  // namespace
}  // namespace xok::exos
