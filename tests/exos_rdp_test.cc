// Reliable datagram protocol under injected frame loss: the application-
// level transport must deliver everything exactly once, in order, over a
// wire that eats a configurable fraction of frames.
#include "src/exos/rdp.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/world.h"

namespace xok::exos {
namespace {

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

struct TransferResult {
  std::vector<std::vector<uint8_t>> received;
  uint64_t retransmissions = 0;
  uint64_t duplicates = 0;
  uint64_t frames_lost = 0;
  bool sender_ok = true;
};

TransferResult Transfer(uint32_t loss_per_mille, int messages, uint64_t seed = 0x10559) {
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "snd"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "rcv"}, &world);
  aegis::Aegis ka(ma);
  aegis::Aegis kb(mb);
  hw::Wire wire;
  wire.SetLossRate(loss_per_mille, seed);
  hw::Nic na(ma, 0xa);
  hw::Nic nb(mb, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ka.AttachNic(&na);
  kb.AttachNic(&nb);

  TransferResult result;
  Process sender(ka, [&](Process& p) {
    UdpSocket socket(p, NetIface{0xa, 1, Resolve});
    if (socket.Bind(100) != Status::kOk) {
      result.sender_ok = false;
      return;
    }
    RdpEndpoint rdp(p, socket, RdpEndpoint::Config{.peer_ip = 2, .peer_port = 200});
    p.kernel().SysSleep(hw::kClockHz / 100);
    for (int i = 0; i < messages; ++i) {
      std::vector<uint8_t> payload(1 + (i % 32));
      for (size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<uint8_t>(i + j);
      }
      if (rdp.Send(payload) != Status::kOk) {
        result.sender_ok = false;
        return;
      }
    }
    result.retransmissions = rdp.retransmissions();
  });
  Process receiver(kb, [&](Process& p) {
    UdpSocket socket(p, NetIface{0xb, 2, Resolve});
    if (socket.Bind(200) != Status::kOk) {
      return;
    }
    RdpEndpoint rdp(p, socket, RdpEndpoint::Config{.peer_ip = 1, .peer_port = 100});
    for (int i = 0; i < messages; ++i) {
      Result<std::vector<uint8_t>> msg = rdp.Recv();
      if (!msg.ok()) {
        return;
      }
      result.received.push_back(*msg);
    }
    // Grace period: if our final ACK was lost, the sender is still
    // retransmitting; keep re-ACKing until it goes quiet.
    for (int round = 0; round < 16; ++round) {
      p.kernel().SysSleep(hw::kClockHz / 500);
      rdp.PumpAcks();
    }
    result.duplicates = rdp.duplicates_dropped();
  });
  EXPECT_TRUE(sender.ok());
  EXPECT_TRUE(receiver.ok());
  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});
  result.frames_lost = wire.frames_lost();
  return result;
}

void CheckPayloads(const TransferResult& result, int messages) {
  ASSERT_EQ(result.received.size(), static_cast<size_t>(messages));
  for (int i = 0; i < messages; ++i) {
    const std::vector<uint8_t>& payload = result.received[i];
    ASSERT_EQ(payload.size(), static_cast<size_t>(1 + (i % 32))) << "message " << i;
    for (size_t j = 0; j < payload.size(); ++j) {
      ASSERT_EQ(payload[j], static_cast<uint8_t>(i + j)) << "message " << i << " byte " << j;
    }
  }
}

TEST(RdpTest, LosslessTransferNeedsNoRetransmissions) {
  const TransferResult result = Transfer(/*loss_per_mille=*/0, /*messages=*/20);
  EXPECT_TRUE(result.sender_ok);
  CheckPayloads(result, 20);
  EXPECT_EQ(result.retransmissions, 0u);
  EXPECT_EQ(result.frames_lost, 0u);
}

TEST(RdpTest, ModerateLossRecoveredByRetransmission) {
  const TransferResult result = Transfer(/*loss_per_mille=*/100, /*messages=*/30);
  EXPECT_TRUE(result.sender_ok);
  CheckPayloads(result, 30);
  EXPECT_GT(result.frames_lost, 0u);       // The fault injection really fired.
  EXPECT_GT(result.retransmissions, 0u);   // And the protocol recovered.
}

TEST(RdpTest, HeavyLossStillDeliversEverythingExactlyOnce) {
  const TransferResult result = Transfer(/*loss_per_mille=*/300, /*messages=*/20);
  EXPECT_TRUE(result.sender_ok);
  CheckPayloads(result, 20);
  EXPECT_GT(result.frames_lost, 5u);
}

TEST(RdpTest, LostAcksProduceDuplicatesThatAreSuppressed) {
  // With heavy loss some ACKs vanish, so the sender retransmits data the
  // receiver already has; the 1-bit sequence number must suppress them.
  uint64_t duplicates_total = 0;
  for (uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const TransferResult result = Transfer(/*loss_per_mille=*/250, /*messages=*/15, seed);
    EXPECT_TRUE(result.sender_ok);
    CheckPayloads(result, 15);
    duplicates_total += result.duplicates;
  }
  EXPECT_GT(duplicates_total, 0u);
}

// Sweep: exactly-once delivery holds across the loss spectrum.
class RdpLossSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RdpLossSweep, ExactlyOnceInOrder) {
  const TransferResult result = Transfer(GetParam(), /*messages=*/12);
  EXPECT_TRUE(result.sender_ok);
  CheckPayloads(result, 12);
}

INSTANTIATE_TEST_SUITE_P(LossRates, RdpLossSweep, ::testing::Values(0, 50, 150, 250, 400));

}  // namespace
}  // namespace xok::exos
