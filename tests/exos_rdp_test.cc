// Reliable datagram protocol under injected frame loss: the application-
// level transport must deliver everything exactly once, in order, over a
// wire that eats a configurable fraction of frames.
#include "src/exos/rdp.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/world.h"

namespace xok::exos {
namespace {

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

struct TransferResult {
  std::vector<std::vector<uint8_t>> received;
  uint64_t retransmissions = 0;
  uint64_t duplicates = 0;
  uint64_t backoffs = 0;
  uint64_t frames_lost = 0;
  bool sender_ok = true;
};

TransferResult Transfer(uint32_t loss_per_mille, int messages, uint64_t seed = 0x10559) {
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "snd"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "rcv"}, &world);
  aegis::Aegis ka(ma);
  aegis::Aegis kb(mb);
  hw::Wire wire;
  wire.SetLossRate(loss_per_mille, seed);
  hw::Nic na(ma, 0xa);
  hw::Nic nb(mb, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ka.AttachNic(&na);
  kb.AttachNic(&nb);

  TransferResult result;
  Process sender(ka, [&](Process& p) {
    UdpSocket socket(p, NetIface{0xa, 1, Resolve});
    if (socket.Bind(100) != Status::kOk) {
      result.sender_ok = false;
      return;
    }
    RdpEndpoint rdp(p, socket, RdpEndpoint::Config{.peer_ip = 2, .peer_port = 200});
    p.kernel().SysSleep(hw::kClockHz / 100);
    for (int i = 0; i < messages; ++i) {
      std::vector<uint8_t> payload(1 + (i % 32));
      for (size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<uint8_t>(i + j);
      }
      if (rdp.Send(payload) != Status::kOk) {
        result.sender_ok = false;
        return;
      }
    }
    result.retransmissions = rdp.retransmissions();
    result.backoffs = rdp.backoffs();
  });
  Process receiver(kb, [&](Process& p) {
    UdpSocket socket(p, NetIface{0xb, 2, Resolve});
    if (socket.Bind(200) != Status::kOk) {
      return;
    }
    RdpEndpoint rdp(p, socket, RdpEndpoint::Config{.peer_ip = 1, .peer_port = 100});
    for (int i = 0; i < messages; ++i) {
      Result<std::vector<uint8_t>> msg = rdp.Recv();
      if (!msg.ok()) {
        return;
      }
      result.received.push_back(*msg);
    }
    // Grace period: if our final ACK was lost, the sender is still
    // retransmitting; keep re-ACKing until it goes quiet.
    for (int round = 0; round < 16; ++round) {
      p.kernel().SysSleep(hw::kClockHz / 500);
      rdp.PumpAcks();
    }
    result.duplicates = rdp.duplicates_dropped();
  });
  EXPECT_TRUE(sender.ok());
  EXPECT_TRUE(receiver.ok());
  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});
  result.frames_lost = wire.frames_lost();
  return result;
}

void CheckPayloads(const TransferResult& result, int messages) {
  ASSERT_EQ(result.received.size(), static_cast<size_t>(messages));
  for (int i = 0; i < messages; ++i) {
    const std::vector<uint8_t>& payload = result.received[i];
    ASSERT_EQ(payload.size(), static_cast<size_t>(1 + (i % 32))) << "message " << i;
    for (size_t j = 0; j < payload.size(); ++j) {
      ASSERT_EQ(payload[j], static_cast<uint8_t>(i + j)) << "message " << i << " byte " << j;
    }
  }
}

TEST(RdpTest, LosslessTransferNeedsNoRetransmissions) {
  const TransferResult result = Transfer(/*loss_per_mille=*/0, /*messages=*/20);
  EXPECT_TRUE(result.sender_ok);
  CheckPayloads(result, 20);
  EXPECT_EQ(result.retransmissions, 0u);
  EXPECT_EQ(result.frames_lost, 0u);
}

TEST(RdpTest, ModerateLossRecoveredByRetransmission) {
  const TransferResult result = Transfer(/*loss_per_mille=*/100, /*messages=*/30);
  EXPECT_TRUE(result.sender_ok);
  CheckPayloads(result, 30);
  EXPECT_GT(result.frames_lost, 0u);       // The fault injection really fired.
  EXPECT_GT(result.retransmissions, 0u);   // And the protocol recovered.
}

TEST(RdpTest, HeavyLossStillDeliversEverythingExactlyOnce) {
  const TransferResult result = Transfer(/*loss_per_mille=*/300, /*messages=*/20);
  EXPECT_TRUE(result.sender_ok);
  CheckPayloads(result, 20);
  EXPECT_GT(result.frames_lost, 5u);
}

TEST(RdpTest, LostAcksProduceDuplicatesThatAreSuppressed) {
  // With heavy loss some ACKs vanish, so the sender retransmits data the
  // receiver already has; the 1-bit sequence number must suppress them.
  uint64_t duplicates_total = 0;
  for (uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const TransferResult result = Transfer(/*loss_per_mille=*/250, /*messages=*/15, seed);
    EXPECT_TRUE(result.sender_ok);
    CheckPayloads(result, 15);
    duplicates_total += result.duplicates;
  }
  EXPECT_GT(duplicates_total, 0u);
}

// Like Transfer, but the loss comes from the seeded kernel FaultPlan
// (wire_drop_per_mille) instead of the wire's own loss knob.
TransferResult TransferWithFaultPlan(uint32_t drop_per_mille, int messages, uint64_t seed) {
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "snd"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "rcv"}, &world);
  aegis::Aegis ka(ma);
  aegis::Aegis kb(mb);
  hw::Wire wire;
  hw::FaultPlan plan;
  plan.seed = seed;
  plan.wire_drop_per_mille = drop_per_mille;
  ka.InstallFaultPlan(plan);
  wire.set_fault_injector(ka.fault_injector());
  hw::Nic na(ma, 0xa);
  hw::Nic nb(mb, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ka.AttachNic(&na);
  kb.AttachNic(&nb);

  TransferResult result;
  Process sender(ka, [&](Process& p) {
    UdpSocket socket(p, NetIface{0xa, 1, Resolve});
    if (socket.Bind(100) != Status::kOk) {
      result.sender_ok = false;
      return;
    }
    RdpEndpoint rdp(p, socket, RdpEndpoint::Config{.peer_ip = 2, .peer_port = 200});
    p.kernel().SysSleep(hw::kClockHz / 100);
    for (int i = 0; i < messages; ++i) {
      std::vector<uint8_t> payload(1 + (i % 32));
      for (size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<uint8_t>(i + j);
      }
      if (rdp.Send(payload) != Status::kOk) {
        result.sender_ok = false;
        return;
      }
    }
    result.retransmissions = rdp.retransmissions();
    result.backoffs = rdp.backoffs();
  });
  Process receiver(kb, [&](Process& p) {
    UdpSocket socket(p, NetIface{0xb, 2, Resolve});
    if (socket.Bind(200) != Status::kOk) {
      return;
    }
    RdpEndpoint rdp(p, socket, RdpEndpoint::Config{.peer_ip = 1, .peer_port = 100});
    for (int i = 0; i < messages; ++i) {
      Result<std::vector<uint8_t>> msg = rdp.Recv();
      if (!msg.ok()) {
        return;
      }
      result.received.push_back(*msg);
    }
    for (int round = 0; round < 16; ++round) {
      p.kernel().SysSleep(hw::kClockHz / 500);
      rdp.PumpAcks();
    }
    result.duplicates = rdp.duplicates_dropped();
  });
  EXPECT_TRUE(sender.ok());
  EXPECT_TRUE(receiver.ok());
  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});
  result.frames_lost = wire.frames_lost();
  return result;
}

// Backoff: the exponential RTO still converges on exactly-once delivery
// under seeded fault-plan frame loss, and the backoff counter records the
// timeouts that stretched the RTO.
TEST(RdpTest, BackoffConvergesUnderInjectedWireDrop) {
  uint64_t backoffs_total = 0;
  for (uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const TransferResult result = TransferWithFaultPlan(/*drop_per_mille=*/300,
                                                        /*messages=*/15, seed);
    EXPECT_TRUE(result.sender_ok);
    CheckPayloads(result, 15);
    EXPECT_GT(result.frames_lost, 0u);
    backoffs_total += result.backoffs;
  }
  EXPECT_GT(backoffs_total, 0u);
}

// With a silent peer every attempt times out, so the waits double up to
// the cap: total wall-clock must far exceed a fixed-RTO schedule's.
TEST(RdpTest, BackoffDoublesRtoUpToCap) {
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "snd"}, &world);
  aegis::Aegis ka(ma);
  hw::Wire wire;
  hw::Nic na(ma, 0xa);
  wire.Attach(&na);  // Peer NIC 0xb never attached: frames vanish.
  ka.AttachNic(&na);

  uint64_t elapsed = 0;
  uint64_t backoffs = 0;
  Status send_status = Status::kOk;
  Process sender(ka, [&](Process& p) {
    UdpSocket socket(p, NetIface{0xa, 1, Resolve});
    ASSERT_EQ(socket.Bind(100), Status::kOk);
    RdpEndpoint::Config config{.peer_ip = 2, .peer_port = 200};
    config.max_retries = 6;
    RdpEndpoint rdp(p, socket, config);
    const uint64_t start = p.machine().clock().now();
    std::vector<uint8_t> payload = {42};
    send_status = rdp.Send(payload);
    elapsed = p.machine().clock().now() - start;
    backoffs = rdp.backoffs();
  });
  ASSERT_TRUE(sender.ok());
  world.Run({[&] { ka.Run(); }});
  EXPECT_EQ(send_status, Status::kErrTimedOut);
  EXPECT_EQ(backoffs, 6u);
  // Doubling from 2 ms capped at 20 ms: 2+4+8+16+20+20+20 = 90 ms of
  // waiting. A fixed 2 ms RTO would give up after ~14 ms.
  EXPECT_GT(elapsed, (hw::kClockHz / 1000) * 50);
}

// Like TransferWithFaultPlan, but the sender's RTO waits are jittered from
// `jitter_seed`, and the sender's retransmit timestamps are returned. Both
// runs of this with equal seeds replay the identical simulated schedule.
std::vector<uint64_t> RetransmitSchedule(uint64_t wire_seed, uint64_t jitter_seed,
                                         int messages = 12) {
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "snd"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "rcv"}, &world);
  aegis::Aegis ka(ma);
  aegis::Aegis kb(mb);
  hw::Wire wire;
  hw::FaultPlan plan;
  plan.seed = wire_seed;
  plan.wire_drop_per_mille = 300;
  ka.InstallFaultPlan(plan);
  wire.set_fault_injector(ka.fault_injector());
  hw::Nic na(ma, 0xa);
  hw::Nic nb(mb, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ka.AttachNic(&na);
  kb.AttachNic(&nb);

  std::vector<uint64_t> schedule;
  std::vector<std::vector<uint8_t>> received;
  Process sender(ka, [&](Process& p) {
    UdpSocket socket(p, NetIface{0xa, 1, Resolve});
    if (socket.Bind(100) != Status::kOk) {
      return;
    }
    RdpEndpoint::Config config{.peer_ip = 2, .peer_port = 200};
    config.jitter_seed = jitter_seed;
    RdpEndpoint rdp(p, socket, config);
    p.kernel().SysSleep(hw::kClockHz / 100);
    for (int i = 0; i < messages; ++i) {
      std::vector<uint8_t> payload(1 + (i % 32));
      for (size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<uint8_t>(i + j);
      }
      if (rdp.Send(payload) != Status::kOk) {
        return;
      }
    }
    schedule = rdp.retransmit_log();
  });
  Process receiver(kb, [&](Process& p) {
    UdpSocket socket(p, NetIface{0xb, 2, Resolve});
    if (socket.Bind(200) != Status::kOk) {
      return;
    }
    RdpEndpoint rdp(p, socket, RdpEndpoint::Config{.peer_ip = 1, .peer_port = 100});
    for (int i = 0; i < messages; ++i) {
      Result<std::vector<uint8_t>> msg = rdp.Recv();
      if (!msg.ok()) {
        return;
      }
      received.push_back(*msg);
    }
    for (int round = 0; round < 16; ++round) {
      p.kernel().SysSleep(hw::kClockHz / 500);
      rdp.PumpAcks();
    }
  });
  EXPECT_TRUE(sender.ok());
  EXPECT_TRUE(receiver.ok());
  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});
  EXPECT_EQ(received.size(), static_cast<size_t>(messages));  // Loss still recovered.
  return schedule;
}

// The retry-storm regression: two clients that lose the same burst and run
// the same deterministic RTO schedule retransmit at the same instants,
// forever — a synchronized retry storm. Seeded jitter must decorrelate the
// schedules while staying replayable (same seed, same schedule) and
// without costing exactly-once delivery.
TEST(RdpTest, SeededJitterDecorrelatesRetransmitSchedules) {
  const std::vector<uint64_t> plain_a = RetransmitSchedule(77, /*jitter_seed=*/0);
  const std::vector<uint64_t> plain_b = RetransmitSchedule(77, /*jitter_seed=*/0);
  ASSERT_FALSE(plain_a.empty());  // The loss plan really forced retransmits.
  EXPECT_EQ(plain_a, plain_b);    // No jitter: schedules collide exactly.

  const std::vector<uint64_t> jit_a = RetransmitSchedule(77, /*jitter_seed=*/1001);
  const std::vector<uint64_t> jit_b = RetransmitSchedule(77, /*jitter_seed=*/2002);
  ASSERT_FALSE(jit_a.empty());
  ASSERT_FALSE(jit_b.empty());
  EXPECT_NE(jit_a, jit_b);    // Distinct seeds: the two clients decorrelate.
  EXPECT_NE(jit_a, plain_a);  // And the jitter really moved the timestamps.

  const std::vector<uint64_t> jit_a2 = RetransmitSchedule(77, /*jitter_seed=*/1001);
  EXPECT_EQ(jit_a, jit_a2);   // Jitter is replayable, not randomness.
}

// Sweep: exactly-once delivery holds across the loss spectrum.
class RdpLossSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RdpLossSweep, ExactlyOnceInOrder) {
  const TransferResult result = Transfer(GetParam(), /*messages=*/12);
  EXPECT_TRUE(result.sender_ok);
  CheckPayloads(result, 12);
}

INSTANTIATE_TEST_SUITE_P(LossRates, RdpLossSweep, ::testing::Values(0, 50, 150, 250, 400));

}  // namespace
}  // namespace xok::exos
