// Error paths and edge cases of the Ultrix-like baseline.
#include <gtest/gtest.h>

#include <vector>

#include "src/ultrix/ultrix.h"

namespace xok::ultrix {
namespace {

class UltrixEdgeTest : public ::testing::Test {
 protected:
  UltrixEdgeTest()
      : machine_(hw::Machine::Config{.phys_pages = 64, .name = "uxe"}), kernel_(machine_) {}

  void RunInProcess(std::function<void()> body) {
    ASSERT_TRUE(kernel_.CreateProcess(std::move(body)).ok());
    kernel_.Run();
  }

  hw::Machine machine_;
  Ultrix kernel_;
};

TEST_F(UltrixEdgeTest, MprotectOnUnmappedFails) {
  RunInProcess([&] {
    EXPECT_EQ(kernel_.SysMprotect(0x500000, 1, kProtNone), Status::kErrNotFound);
  });
}

TEST_F(UltrixEdgeTest, MincoreOnUnmappedFails) {
  RunInProcess([&] {
    EXPECT_FALSE(kernel_.SysMincoreDirty(0x500000).ok());
  });
}

TEST_F(UltrixEdgeTest, SleepAdvancesClock) {
  RunInProcess([&] {
    const uint64_t t0 = machine_.clock().now();
    kernel_.SysSleep(123'456);
    EXPECT_GE(machine_.clock().now() - t0, 123'456u);
  });
}

TEST_F(UltrixEdgeTest, ReadWriteOnBadFdFails) {
  RunInProcess([&] {
    std::vector<uint8_t> buf(4);
    EXPECT_FALSE(kernel_.SysRead(99, buf).ok());
    EXPECT_EQ(kernel_.SysWrite(99, buf), Status::kErrInvalidArgs);
    EXPECT_EQ(kernel_.SysClose(99), Status::kErrInvalidArgs);
  });
}

TEST_F(UltrixEdgeTest, ReadFromWriteEndFails) {
  RunInProcess([&] {
    Result<std::pair<int, int>> fds = kernel_.SysPipe();
    ASSERT_TRUE(fds.ok());
    std::vector<uint8_t> buf(4);
    EXPECT_FALSE(kernel_.SysRead(fds->second, buf).ok());   // Write end.
    EXPECT_EQ(kernel_.SysWrite(fds->first, buf), Status::kErrInvalidArgs);  // Read end.
  });
}

TEST_F(UltrixEdgeTest, PortConflictRejected) {
  RunInProcess([&] {
    Result<int> a = kernel_.SysSocketUdp();
    Result<int> b = kernel_.SysSocketUdp();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(kernel_.SysBindPort(*a, 80), Status::kOk);
    EXPECT_EQ(kernel_.SysBindPort(*b, 80), Status::kErrAlreadyExists);
  });
}

TEST_F(UltrixEdgeTest, SendWithoutNicUnsupported) {
  RunInProcess([&] {
    Result<int> fd = kernel_.SysSocketUdp();
    ASSERT_TRUE(fd.ok());
    std::vector<uint8_t> payload = {1};
    EXPECT_EQ(kernel_.SysSendTo(*fd, 1, 2, payload), Status::kErrUnsupported);
  });
}

TEST_F(UltrixEdgeTest, SocketOpsOnPipeFdFail) {
  RunInProcess([&] {
    Result<std::pair<int, int>> fds = kernel_.SysPipe();
    ASSERT_TRUE(fds.ok());
    std::vector<uint8_t> payload = {1};
    EXPECT_EQ(kernel_.SysBindPort(fds->first, 80), Status::kErrInvalidArgs);
    EXPECT_EQ(kernel_.SysSendTo(fds->first, 1, 2, payload), Status::kErrInvalidArgs);
  });
}

TEST_F(UltrixEdgeTest, SignalWithoutHandlerSkipsFaultingAccess) {
  RunInProcess([&] {
    ASSERT_EQ(machine_.StoreWord(0x100000, 1), Status::kOk);
    ASSERT_EQ(kernel_.SysMprotect(0x100000, 1, kProtNone), Status::kOk);
    EXPECT_FALSE(machine_.LoadWord(0x100000).ok());  // No handler: access fails.
  });
}

TEST_F(UltrixEdgeTest, DirtyBitClearedAcrossProtectCycles) {
  RunInProcess([&] {
    ASSERT_EQ(machine_.StoreWord(0x200000, 1), Status::kOk);
    EXPECT_TRUE(*kernel_.SysMincoreDirty(0x200000));
    // mprotect does not clear dirty (matches mincore semantics).
    ASSERT_EQ(kernel_.SysMprotect(0x200000, 1, kProtRead), Status::kOk);
    EXPECT_TRUE(*kernel_.SysMincoreDirty(0x200000));
  });
}

TEST_F(UltrixEdgeTest, ManyProcessesRoundRobinFairly) {
  constexpr int kProcs = 6;
  uint64_t progress[kProcs] = {};
  for (int i = 0; i < kProcs; ++i) {
    ASSERT_TRUE(kernel_.CreateProcess([&, i] {
      for (int step = 0; step < 40; ++step) {
        machine_.Charge(kQuantumCycles / 4);
        ++progress[i];
      }
    }).ok());
  }
  kernel_.Run();
  for (int i = 0; i < kProcs; ++i) {
    EXPECT_EQ(progress[i], 40u) << i;
  }
}

}  // namespace
}  // namespace xok::ultrix
