#include "src/ash/ash.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/net/wire.h"

namespace xok::ash {
namespace {

AshServices NoServices() { return AshServices{}; }

TEST(AshVerify, RejectsOversizedHandler) {
  vcode::Emitter e;
  for (int i = 0; i < 300; ++i) {
    e.Emit(vcode::Op::kAddImm, 0, 0, 1);
  }
  e.Emit(vcode::Op::kAccept);
  EXPECT_EQ(AshProgram::Make(e.Finish()).status(), Status::kErrUnsafeCode);
}

TEST(AshVerify, RejectsUnknownHook) {
  vcode::Emitter e;
  e.Emit(vcode::Op::kHook, kNumAshHooks, 0, 0);
  e.Emit(vcode::Op::kAccept);
  EXPECT_EQ(AshProgram::Make(e.Finish()).status(), Status::kErrUnsafeCode);
}

TEST(AshRun, VectoringCopiesIntoOwnerRegionAndWakes) {
  Result<AshProgram> handler = BuildVectorAsh(VectorAshSpec{
      .src_off = 4, .dst_off = 16, .len = 8, .count_off = 0});
  ASSERT_TRUE(handler.ok());
  std::vector<uint8_t> msg = {0, 1, 2, 3, 10, 11, 12, 13, 14, 15, 16, 17};
  std::vector<uint8_t> region(64, 0);
  bool woke = false;
  AshServices services;
  services.wake_owner = [&] { woke = true; };
  AshOutcome outcome = RunAsh(*handler, msg, region, services);
  EXPECT_NE(outcome.verdict, vcode::kRejected);
  EXPECT_TRUE(woke);
  EXPECT_TRUE(outcome.woke_owner);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(region[16 + i], msg[4 + i]);
  }
  // The arrival counter incremented (little-endian word at 0).
  EXPECT_EQ(region[0], 1);
}

TEST(AshRun, VectoringCounterAccumulates) {
  Result<AshProgram> handler = BuildVectorAsh(VectorAshSpec{
      .src_off = 0, .dst_off = 8, .len = 4, .count_off = 0});
  ASSERT_TRUE(handler.ok());
  std::vector<uint8_t> msg = {1, 2, 3, 4};
  std::vector<uint8_t> region(32, 0);
  AshServices services = NoServices();
  for (int i = 0; i < 5; ++i) {
    RunAsh(*handler, msg, region, services);
  }
  EXPECT_EQ(region[0], 5);
}

TEST(AshRun, IntegratedChecksumMatchesReference) {
  Result<AshProgram> handler = BuildVectorAsh(VectorAshSpec{.src_off = 0,
                                                            .dst_off = 16,
                                                            .len = 6,
                                                            .count_off = 0,
                                                            .integrate_cksum = true,
                                                            .cksum_off = 8});
  ASSERT_TRUE(handler.ok());
  std::vector<uint8_t> msg = {0x45, 0x00, 0x12, 0x34, 0xab, 0xcd};
  std::vector<uint8_t> region(64, 0);
  AshServices services = NoServices();
  AshOutcome outcome = RunAsh(*handler, msg, region, services);
  ASSERT_NE(outcome.verdict, vcode::kRejected);
  uint32_t sum = 0;
  for (int i = 0; i < 4; ++i) {
    sum |= static_cast<uint32_t>(region[8 + i]) << (8 * i);
  }
  // Fold and complement like the reference to compare.
  uint32_t folded = sum;
  while (folded >> 16) {
    folded = (folded & 0xffff) + (folded >> 16);
  }
  EXPECT_EQ(static_cast<uint16_t>(~folded & 0xffff), net::InternetChecksum(msg));
}

TEST(AshRun, SandboxRejectsCopyBeyondRegion) {
  Result<AshProgram> handler = BuildVectorAsh(VectorAshSpec{
      .src_off = 0, .dst_off = 60, .len = 16, .count_off = 0});
  ASSERT_TRUE(handler.ok());
  std::vector<uint8_t> msg(32, 7);
  std::vector<uint8_t> region(64, 0);  // dst 60 + len 16 > 64.
  AshServices services = NoServices();
  AshOutcome outcome = RunAsh(*handler, msg, region, services);
  EXPECT_EQ(outcome.verdict, vcode::kRejected);
  // Nothing escaped the sandbox: region untouched beyond bounds is moot —
  // the op rejected before copying.
  for (uint8_t byte : region) {
    EXPECT_EQ(byte, 0);
  }
}

TEST(AshRun, EchoHandlerBuildsReplyFromTemplate) {
  // The owner prebuilds a reply frame in its region; the ASH patches the
  // counter and transmits.
  std::vector<uint8_t> counter_payload = {0, 0, 0, 41};
  auto request = net::BuildUdpFrame(0xbb, 0xaa, 1, 2, 100, 200, counter_payload);
  std::vector<uint8_t> region(256, 0);
  std::vector<uint8_t> reply_template =
      net::BuildUdpFrame(0xaa, 0xbb, 2, 1, 200, 100, counter_payload);
  const uint32_t reply_off = 32;
  std::copy(reply_template.begin(), reply_template.end(), region.begin() + reply_off);

  Result<AshProgram> handler = BuildEchoAsh(EchoAshSpec{
      .counter_off = net::kUdpPayloadOff,
      .reply_off = reply_off,
      .reply_len = static_cast<uint32_t>(reply_template.size()),
      .reply_counter_off = net::kUdpPayloadOff,
      .count_off = 0,
  });
  ASSERT_TRUE(handler.ok());

  std::vector<uint8_t> sent;
  AshServices services;
  services.send_reply = [&](std::span<const uint8_t> frame) {
    sent.assign(frame.begin(), frame.end());
  };
  AshOutcome outcome = RunAsh(*handler, request, region, services);
  ASSERT_NE(outcome.verdict, vcode::kRejected);
  EXPECT_TRUE(outcome.sent_reply);
  ASSERT_EQ(sent.size(), reply_template.size());
  // The reply carries counter+1 in network byte order.
  EXPECT_EQ(net::GetBe32(sent, net::kUdpPayloadOff), 42u);
  // And the handled-message count bumped.
  EXPECT_EQ(region[0], 1);
}

TEST(AshRun, CyclesScaleWithWorkDone) {
  Result<AshProgram> small = BuildVectorAsh(VectorAshSpec{
      .src_off = 0, .dst_off = 0, .len = 8, .count_off = 32});
  Result<AshProgram> large = BuildVectorAsh(VectorAshSpec{
      .src_off = 0, .dst_off = 0, .len = 1024, .count_off = 1032});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  std::vector<uint8_t> msg(2048, 3);
  std::vector<uint8_t> region(4096, 0);
  AshServices services = NoServices();
  const AshOutcome a = RunAsh(*small, msg, region, services);
  const AshOutcome b = RunAsh(*large, msg, region, services);
  EXPECT_GT(b.sim_cycles, a.sim_cycles + hw::kMemWordCopy * (1024 - 8) / 4 / 2);
}

TEST(AshRun, IlpCheaperThanSeparatePasses) {
  // ILP (copy+cksum in one pass) must charge less than copy then cksum.
  Result<AshProgram> ilp = BuildVectorAsh(VectorAshSpec{.src_off = 0,
                                                        .dst_off = 0,
                                                        .len = 1024,
                                                        .count_off = 1028,
                                                        .integrate_cksum = true,
                                                        .cksum_off = 1024});
  ASSERT_TRUE(ilp.ok());
  // Separate: a copy handler then an explicit cksum op handler.
  vcode::Emitter e;
  e.Emit(vcode::Op::kLoadImm, 0, 0, 0);
  e.Emit(vcode::Op::kLoadImm, 1, 0, 0);
  e.Emit(vcode::Op::kCopyRegion, 0, 1, 1024);
  e.Emit(vcode::Op::kCksum, 0, 1, 1024);  // Second pass over the data.
  e.Emit(vcode::Op::kLoadImm, 3, 0, 1024);
  e.Emit(vcode::Op::kStoreRegionWord, 3, 15, 0);
  e.Emit(vcode::Op::kAccept, 0, 0, 1);
  Result<AshProgram> separate = AshProgram::Make(e.Finish());
  ASSERT_TRUE(separate.ok());

  std::vector<uint8_t> msg(1500, 9);
  std::vector<uint8_t> region(4096, 0);
  AshServices services = NoServices();
  const AshOutcome a = RunAsh(*ilp, msg, region, services);
  const AshOutcome b = RunAsh(*separate, msg, region, services);
  ASSERT_NE(a.verdict, vcode::kRejected);
  ASSERT_NE(b.verdict, vcode::kRejected);
  EXPECT_LT(a.sim_cycles, b.sim_cycles);
  // The paper: ILP "can improve performance by almost a factor of two".
  EXPECT_GT(static_cast<double>(b.sim_cycles) / a.sim_cycles, 1.5);
}

TEST(AshLock, GrantsWhenFreeDeniesWhenHeld) {
  // Control initiation: remote lock acquisition entirely at "interrupt
  // level" (no owner scheduling).
  constexpr uint32_t kLockOff = 0;
  constexpr uint32_t kReplyOff = 16;
  constexpr uint32_t kReplyLen = 8;
  constexpr uint32_t kStatusOff = 4;
  Result<AshProgram> handler = BuildLockAsh(LockAshSpec{
      .lock_off = kLockOff,
      .requester_off = 0,
      .reply_off = kReplyOff,
      .reply_len = kReplyLen,
      .reply_status_off = kStatusOff,
  });
  ASSERT_TRUE(handler.ok());

  std::vector<uint8_t> region(64, 0);
  std::vector<uint8_t> reply;
  AshServices services;
  services.send_reply = [&](std::span<const uint8_t> frame) {
    reply.assign(frame.begin(), frame.end());
  };

  // Requester 0x42 asks for the free lock: granted.
  std::vector<uint8_t> request(8, 0);
  net::PutBe32(request, 0, 0x42);
  AshOutcome outcome = RunAsh(*handler, request, region, services);
  ASSERT_NE(outcome.verdict, vcode::kRejected);
  ASSERT_TRUE(outcome.sent_reply);
  EXPECT_EQ(net::GetBe32(reply, kStatusOff), kLockGranted);
  // The lock word holds the requester id (little-endian region word).
  uint32_t lock = 0;
  for (int i = 3; i >= 0; --i) {
    lock = (lock << 8) | region[kLockOff + i];
  }
  EXPECT_EQ(lock, 0x42u);

  // Requester 0x43 asks while held: denied, lock unchanged.
  net::PutBe32(request, 0, 0x43);
  outcome = RunAsh(*handler, request, region, services);
  ASSERT_NE(outcome.verdict, vcode::kRejected);
  EXPECT_EQ(net::GetBe32(reply, kStatusOff), kLockDenied);
  lock = 0;
  for (int i = 3; i >= 0; --i) {
    lock = (lock << 8) | region[kLockOff + i];
  }
  EXPECT_EQ(lock, 0x42u);

  // Owner releases (writes 0); the next request is granted again.
  for (int i = 0; i < 4; ++i) {
    region[kLockOff + i] = 0;
  }
  outcome = RunAsh(*handler, request, region, services);
  EXPECT_EQ(net::GetBe32(reply, kStatusOff), kLockGranted);
}

TEST(AshLock, VerifiedAndBounded) {
  Result<AshProgram> handler = BuildLockAsh(LockAshSpec{
      .lock_off = 0, .requester_off = 0, .reply_off = 8, .reply_len = 8,
      .reply_status_off = 0});
  ASSERT_TRUE(handler.ok());
  // Both paths terminate within the program length (forward-only jumps).
  std::vector<uint8_t> region(64, 0);
  std::vector<uint8_t> msg(8, 0);
  AshServices services;
  const AshOutcome outcome = RunAsh(*handler, msg, region, services);
  EXPECT_LE(outcome.sim_cycles, hw::Instr(2) * handler->program().size() + hw::Instr(8));
}

}  // namespace
}  // namespace xok::ash
