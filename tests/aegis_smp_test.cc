// SMP Aegis: per-CPU slice vectors, cross-CPU placement, IPIs, remote
// kills, and TLB shootdown. Everything here runs on a multi-CPU machine;
// single-CPU behaviour is covered by aegis_test.cc (and must not change).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/process.h"
#include "src/exos/stride.h"

namespace xok::aegis {
namespace {

class AegisSmpTest : public ::testing::Test {
 protected:
  AegisSmpTest()
      : machine_(hw::Machine::Config{.phys_pages = 256, .name = "smp", .cpus = 4}),
        kernel_(machine_) {}

  hw::Machine machine_;
  Aegis kernel_;
};

TEST_F(AegisSmpTest, TopologySyscalls) {
  uint32_t count = 0;
  uint32_t current = ~0u;
  EnvSpec spec;
  spec.entry = [&] {
    count = kernel_.SysCpuCount();
    current = kernel_.SysCurrentCpu();
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  EXPECT_EQ(count, 4u);
  EXPECT_LT(current, 4u);
}

TEST_F(AegisSmpTest, BirthPlacementSpreadsAcrossCpus) {
  // Four single-slice environments on four CPUs: least-loaded placement
  // must put one on each.
  std::set<uint32_t> cpus_seen;
  for (int i = 0; i < 4; ++i) {
    EnvSpec spec;
    spec.entry = [&] { cpus_seen.insert(kernel_.SysCurrentCpu()); };
    ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  }
  kernel_.Run();
  EXPECT_EQ(cpus_seen.size(), 4u);
}

TEST_F(AegisSmpTest, CpuMaskPinsAnEnvironment) {
  uint32_t ran_on = ~0u;
  EnvSpec spec;
  spec.cpu_mask = 1ULL << 2;
  spec.entry = [&] { ran_on = kernel_.SysCurrentCpu(); };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  EXPECT_EQ(ran_on, 2u);
}

TEST_F(AegisSmpTest, CpuMaskAdmittingNoCpuIsRejected) {
  EnvSpec spec;
  spec.cpu_mask = 1ULL << 17;  // Machine only has 4 CPUs.
  spec.entry = [] {};
  EXPECT_EQ(kernel_.CreateEnv(std::move(spec)).status(), Status::kErrInvalidArgs);
}

TEST_F(AegisSmpTest, SysAllocSliceSpansAndValidates) {
  Status any = Status::kErrBadState;
  Status explicit_ok = Status::kErrBadState;
  Status out_of_range = Status::kOk;
  Status outside_mask = Status::kOk;
  EnvSpec spec;
  spec.cpu_mask = (1ULL << 0) | (1ULL << 1);
  spec.entry = [&] {
    any = kernel_.SysAllocSlice();          // Least-loaded admitted CPU.
    explicit_ok = kernel_.SysAllocSlice(1);
    out_of_range = kernel_.SysAllocSlice(9);   // No such CPU.
    outside_mask = kernel_.SysAllocSlice(3);   // CPU exists, mask forbids.
  };
  Result<EnvGrant> grant = kernel_.CreateEnv(std::move(spec));
  ASSERT_TRUE(grant.ok());
  kernel_.Run();
  EXPECT_EQ(any, Status::kOk);
  EXPECT_EQ(explicit_ok, Status::kOk);
  EXPECT_EQ(out_of_range, Status::kErrInvalidArgs);
  EXPECT_EQ(outside_mask, Status::kErrInvalidArgs);
  // The grants left the slice ledger consistent (slot counts are
  // cross-checked against every CPU's vector).
  EXPECT_TRUE(kernel_.AuditInvariants().ok());
}

TEST_F(AegisSmpTest, CrossCpuWakeMigratesTheWokenEnv) {
  // A starts on CPU 0 (lowest-index tie-break), grows a slot onto CPU 1,
  // and blocks. H — pinned to CPU 0 — wakes A and then keeps CPU 0 busy,
  // so the parked CPU 1 is IPI-nudged and picks A up: a migration.
  EnvId a_id = kNoEnv;
  cap::Capability a_cap;
  uint32_t before = ~0u;
  uint32_t after = ~0u;
  uint64_t migrations = 0;

  EnvSpec a;
  a.cpu_mask = (1ULL << 0) | (1ULL << 1);
  a.entry = [&] {
    ASSERT_EQ(kernel_.SysAllocSlice(1), Status::kOk);
    before = kernel_.SysCurrentCpu();
    kernel_.SysBlock();
    after = kernel_.SysCurrentCpu();
    Result<EnvStats> stats = kernel_.SysEnvStats(kernel_.SysSelf());
    ASSERT_TRUE(stats.ok());
    migrations = stats->counters.migrations;
  };
  Result<EnvGrant> grant = kernel_.CreateEnv(std::move(a));
  ASSERT_TRUE(grant.ok());
  a_id = grant->env;
  a_cap = grant->cap;

  EnvSpec h;
  h.cpu_mask = 1ULL << 0;
  h.entry = [&] {
    ASSERT_EQ(kernel_.SysWake(a_id, a_cap), Status::kOk);
    // Stay on CPU 0 so it cannot steal A back before CPU 1 reacts.
    machine_.Charge(kernel_.slice_cycles() / 2);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(h)).ok());

  kernel_.Run();
  EXPECT_EQ(before, 0u);
  EXPECT_EQ(after, 1u);
  EXPECT_EQ(migrations, 1u);
}

TEST_F(AegisSmpTest, KillLandsOnARemoteCpuViaIpi) {
  // V spins on CPU 1; the killer runs on CPU 0 and must hand the reap to
  // CPU 1 over an IPI (a fiber can only be torn down by the CPU it is on).
  EnvId v_id = kNoEnv;
  EnvSpec v;
  v.cpu_mask = 1ULL << 1;
  v.entry = [&] {
    while (true) {
      kernel_.SysNull();
    }
  };
  Result<EnvGrant> grant = kernel_.CreateEnv(std::move(v));
  ASSERT_TRUE(grant.ok());
  v_id = grant->env;

  EnvSpec k;
  k.cpu_mask = 1ULL << 0;
  k.entry = [&] {
    machine_.Charge(1000);  // Let V get onto CPU 1.
    EXPECT_EQ(kernel_.KillEnv(v_id), Status::kOk);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(k)).ok());

  kernel_.Run();
  EXPECT_EQ(kernel_.remote_kills_sent(), 1u);
  EXPECT_EQ(kernel_.envs_killed(), 1u);
  EXPECT_FALSE(kernel_.EnvAlive(v_id));
  EXPECT_TRUE(kernel_.AuditInvariants().ok());
}

TEST_F(AegisSmpTest, DeallocShootsDownRemoteTlbEntries) {
  // P maps and touches a frame on CPU 1. Q — holding the page capability —
  // deallocates it from CPU 0. The stale translation in CPU 1's TLB must
  // be shot down: P's next access faults instead of reading a frame that
  // may already belong to someone else. This test fails if the IPI
  // invalidate is skipped (the load would silently succeed).
  constexpr hw::Vaddr kVa = 0x10000;
  bool mapped = false;
  bool deallocated = false;
  hw::PageId page = 0;
  cap::Capability page_cap;
  bool stale_read_ok = true;
  size_t faults = 0;
  uint64_t shootdowns_billed = 0;

  EnvSpec p;
  p.cpu_mask = 1ULL << 1;
  p.handlers.exception = [&](const hw::TrapFrame&) {
    ++faults;
    return ExcAction::kSkip;
  };
  p.entry = [&] {
    Result<PageGrant> grant = kernel_.SysAllocPage();
    ASSERT_TRUE(grant.ok());
    page = grant->page;
    page_cap = grant->cap;
    ASSERT_EQ(kernel_.SysTlbWrite(kVa, page, /*writable=*/true, page_cap), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(kVa, 0x5eed), Status::kOk);
    mapped = true;
    while (!deallocated) {
      kernel_.SysYield();
    }
    stale_read_ok = machine_.LoadWord(kVa).ok();
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(p)).ok());

  EnvSpec q;
  q.cpu_mask = 1ULL << 0;
  q.entry = [&] {
    while (!mapped) {
      kernel_.SysYield();
    }
    ASSERT_EQ(kernel_.SysDeallocPage(page, page_cap), Status::kOk);
    shootdowns_billed = kernel_.tlb_shootdowns();
    deallocated = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(q)).ok());

  kernel_.Run();
  EXPECT_GE(shootdowns_billed, 1u);
  EXPECT_FALSE(stale_read_ok);
  EXPECT_GE(faults, 1u);
  // The hardware entry really is gone from CPU 1.
  EXPECT_EQ(machine_.cpu(1).tlb().Lookup(hw::VpnOf(kVa), 1), nullptr);
}

TEST_F(AegisSmpTest, ShootdownBillsTheInitiator) {
  // Same shape as above, but measuring the initiator's dealloc cost: with
  // a remote CPU holding the translation it must include at least one IPI
  // round (kIpiCost) plus the per-entry invalidate.
  constexpr hw::Vaddr kVa = 0x14000;
  bool mapped = false;
  bool done = false;
  hw::PageId page = 0;
  cap::Capability page_cap;
  uint64_t dealloc_cycles = 0;

  EnvSpec p;
  p.cpu_mask = 1ULL << 1;
  p.entry = [&] {
    Result<PageGrant> grant = kernel_.SysAllocPage();
    ASSERT_TRUE(grant.ok());
    page = grant->page;
    page_cap = grant->cap;
    ASSERT_EQ(kernel_.SysTlbWrite(kVa, page, true, page_cap), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(kVa, 1), Status::kOk);
    mapped = true;
    while (!done) {
      kernel_.SysYield();
    }
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(p)).ok());

  EnvSpec q;
  q.cpu_mask = 1ULL << 0;
  q.entry = [&] {
    while (!mapped) {
      kernel_.SysYield();
    }
    const uint64_t t0 = machine_.clock().now();
    ASSERT_EQ(kernel_.SysDeallocPage(page, page_cap), Status::kOk);
    dealloc_cycles = machine_.clock().now() - t0;
    done = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(q)).ok());

  kernel_.Run();
  EXPECT_GE(dealloc_cycles, kIpiCost + kIpiRemoteInvalidate);
  EXPECT_GE(kernel_.env_stats(2).counters.tlb_shootdowns, 1u);
  EXPECT_GE(kernel_.env_stats(2).counters.ipis_sent, 1u);
}

TEST_F(AegisSmpTest, AuditCatchesSliceLedgerSkew) {
  // Satellite: the invariant audit walks every CPU's slice vector and
  // cross-checks per-env slot counts; a skewed ledger must name the first
  // offending environment.
  EnvId id = kNoEnv;
  EnvSpec spec;
  spec.entry = [&] {
    kernel_.SysNull();
    kernel_.SysYield();
  };
  Result<EnvGrant> grant = kernel_.CreateEnv(std::move(spec));
  ASSERT_TRUE(grant.ok());
  id = grant->env;

  ASSERT_TRUE(kernel_.AuditInvariants().ok());
  kernel_.DebugSkewSliceAccounting(id, +1);
  Aegis::AuditReport report = kernel_.AuditInvariants();
  ASSERT_FALSE(report.ok());
  bool named = false;
  for (const std::string& v : report.violations) {
    if (v.find("slice accounting") != std::string::npos &&
        v.find("first offender: env " + std::to_string(id)) != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named);
  kernel_.DebugSkewSliceAccounting(id, -1);
  EXPECT_TRUE(kernel_.AuditInvariants().ok());
  kernel_.Run();
}

TEST_F(AegisSmpTest, EnvStatsReportCurrentCpu) {
  uint32_t seen_cpu = ~0u;
  EnvSpec spec;
  spec.cpu_mask = 1ULL << 3;
  spec.entry = [&] {
    Result<EnvStats> stats = kernel_.SysEnvStats(kernel_.SysSelf());
    ASSERT_TRUE(stats.ok());
    seen_cpu = stats->cpu;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  EXPECT_EQ(seen_cpu, 3u);
}

// --- The application-level SMP stride scheduler (exos) ---

TEST_F(AegisSmpTest, SmpStrideHonoursGlobalProportions) {
  // Two CPUs' worth of schedulers serve three clients homed on CPU 0 and
  // one on CPU 1, with tickets 3:1:1:1. Pass state is global, so the
  // ticket ratios must hold over the whole machine.
  using exos::Process;
  using exos::SmpStrideScheduler;

  std::vector<std::unique_ptr<Process>> workers;
  bool stop = false;
  for (int i = 0; i < 4; ++i) {
    workers.push_back(std::make_unique<Process>(
        kernel_,
        [&stop](Process& p) {
          while (!stop) {
            p.machine().Charge(p.kernel().slice_cycles() * 2);
          }
        },
        Process::Options{.slices = 0, .demand_zero = true}));
    ASSERT_TRUE(workers.back()->ok());
  }

  SmpStrideScheduler stride(kernel_);
  stride.AddClient(workers[0]->id(), 3, /*home_cpu=*/0);
  stride.AddClient(workers[1]->id(), 1, /*home_cpu=*/0);
  stride.AddClient(workers[2]->id(), 1, /*home_cpu=*/0);
  stride.AddClient(workers[3]->id(), 1, /*home_cpu=*/1);
  ASSERT_TRUE(stride.Start(/*slices_per_cpu=*/60));

  // Stop the workers once every scheduler has spent its slices. The
  // schedulers exit on their own; a watchdog env flips the flag.
  EnvSpec watchdog;
  watchdog.entry = [&] {
    kernel_.SysSleep(kernel_.slice_cycles() * 400);
    stop = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(watchdog)).ok());

  kernel_.Run();

  const std::vector<uint64_t>& a = stride.allocations();
  ASSERT_EQ(a.size(), 4u);
  const double total = static_cast<double>(a[0] + a[1] + a[2] + a[3]);
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(a[0] / total, 0.5, 0.1);   // 3 of 6 tickets.
  EXPECT_NEAR(a[1] / total, 1.0 / 6, 0.1);
  EXPECT_NEAR(a[2] / total, 1.0 / 6, 0.1);
  EXPECT_NEAR(a[3] / total, 1.0 / 6, 0.1);
}

TEST_F(AegisSmpTest, SmpStrideHandsOffIdleCpus) {
  // All clients homed on CPU 0: CPUs 1-3's schedulers have empty local
  // run lists and must donate their slices to the global minimum-pass
  // client instead of idling (work conservation).
  using exos::Process;
  using exos::SmpStrideScheduler;

  std::vector<std::unique_ptr<Process>> workers;
  bool stop = false;
  for (int i = 0; i < 2; ++i) {
    workers.push_back(std::make_unique<Process>(
        kernel_,
        [&stop](Process& p) {
          while (!stop) {
            p.machine().Charge(p.kernel().slice_cycles() * 2);
          }
        },
        Process::Options{.slices = 0, .demand_zero = true}));
    ASSERT_TRUE(workers.back()->ok());
  }

  SmpStrideScheduler stride(kernel_);
  stride.AddClient(workers[0]->id(), 1, /*home_cpu=*/0);
  stride.AddClient(workers[1]->id(), 1, /*home_cpu=*/0);
  ASSERT_TRUE(stride.Start(/*slices_per_cpu=*/20));

  EnvSpec watchdog;
  watchdog.entry = [&] {
    kernel_.SysSleep(kernel_.slice_cycles() * 400);
    stop = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(watchdog)).ok());

  kernel_.Run();

  // CPUs 1-3 contributed 60 slices, every one a hand-off.
  EXPECT_GE(stride.handoffs(), 60u);
  EXPECT_EQ(stride.allocations()[0] + stride.allocations()[1], 80u);
}

}  // namespace
}  // namespace xok::aegis
