#include "src/exos/ipc.h"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "src/base/rand.h"
#include "src/exos/stride.h"

namespace xok::exos {
namespace {

class ExosIpcTest : public ::testing::Test {
 protected:
  ExosIpcTest()
      : machine_(hw::Machine::Config{.phys_pages = 512, .name = "ipc"}), kernel_(machine_) {}

  hw::Machine machine_;
  aegis::Aegis kernel_;
};

constexpr hw::Vaddr kRingVa = 0x5000000;

TEST_F(ExosIpcTest, PipeTransfersWordsInOrder) {
  SharedBufferDesc desc;
  bool ready = false;
  std::vector<uint32_t> received;
  PipePeer writer_peer;  // Filled in below (the reader from writer's view).
  PipePeer reader_peer;

  auto writer_main = [&](Process& p) {
    Result<SharedBufferDesc> created = CreateSharedBuffer(p);
    ASSERT_TRUE(created.ok());
    desc = *created;
    ASSERT_EQ(MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    ready = true;
    PipeEndpoint pipe(p, kRingVa, writer_peer, /*posix_emulation=*/true);
    for (uint32_t i = 0; i < 100; ++i) {
      ASSERT_EQ(pipe.WriteWord(i * 3), Status::kOk);
    }
  };
  auto reader_main = [&](Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    PipeEndpoint pipe(p, kRingVa, reader_peer, /*posix_emulation=*/true);
    for (uint32_t i = 0; i < 100; ++i) {
      Result<uint32_t> v = pipe.ReadWord();
      ASSERT_TRUE(v.ok());
      received.push_back(*v);
    }
  };
  Process writer(kernel_, writer_main);
  Process reader(kernel_, reader_main);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());
  writer_peer = {reader.id(), reader.env_cap()};
  reader_peer = {writer.id(), writer.env_cap()};
  kernel_.Run();

  ASSERT_EQ(received.size(), 100u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(received[i], i * 3);
  }
}

TEST_F(ExosIpcTest, PipeBackpressureWhenRingFills) {
  // Write far more words than the ring holds before the reader starts:
  // the writer must block and resume, and nothing may be lost or
  // reordered.
  SharedBufferDesc desc;
  bool ready = false;
  uint64_t sum = 0;
  PipePeer writer_peer;
  PipePeer reader_peer;
  constexpr uint32_t kCount = 5000;  // Ring holds ~1020 words.

  Process writer(kernel_, [&](Process& p) {
    Result<SharedBufferDesc> created = CreateSharedBuffer(p);
    ASSERT_TRUE(created.ok());
    desc = *created;
    ASSERT_EQ(MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    ready = true;
    PipeEndpoint pipe(p, kRingVa, writer_peer, /*posix_emulation=*/false);
    for (uint32_t i = 1; i <= kCount; ++i) {
      ASSERT_EQ(pipe.WriteWord(i), Status::kOk);
    }
  });
  Process reader(kernel_, [&](Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    PipeEndpoint pipe(p, kRingVa, reader_peer, /*posix_emulation=*/false);
    uint32_t expect = 1;
    for (uint32_t i = 1; i <= kCount; ++i) {
      Result<uint32_t> v = pipe.ReadWord();
      ASSERT_TRUE(v.ok());
      ASSERT_EQ(*v, expect++);
    }
    sum = expect - 1;
  });
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());
  writer_peer = {reader.id(), reader.env_cap()};
  reader_peer = {writer.id(), writer.env_cap()};
  kernel_.Run();
  EXPECT_EQ(sum, kCount);
}

TEST_F(ExosIpcTest, PipeMessagesRoundTrip) {
  SharedBufferDesc desc;
  bool ready = false;
  std::vector<std::vector<uint8_t>> got;
  PipePeer writer_peer;
  PipePeer reader_peer;

  Process writer(kernel_, [&](Process& p) {
    Result<SharedBufferDesc> created = CreateSharedBuffer(p);
    ASSERT_TRUE(created.ok());
    desc = *created;
    ASSERT_EQ(MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    ready = true;
    PipeEndpoint pipe(p, kRingVa, writer_peer, false);
    std::vector<uint8_t> m1 = {1, 2, 3};
    std::vector<uint8_t> m2 = {9, 8, 7, 6, 5, 4, 3, 2, 1};
    std::vector<uint8_t> m3 = {};
    ASSERT_EQ(pipe.WriteMessage(m1), Status::kOk);
    ASSERT_EQ(pipe.WriteMessage(m2), Status::kOk);
    ASSERT_EQ(pipe.WriteMessage(m3), Status::kOk);
  });
  Process reader(kernel_, [&](Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    PipeEndpoint pipe(p, kRingVa, reader_peer, false);
    for (int i = 0; i < 3; ++i) {
      std::vector<uint8_t> buf(64);
      Result<uint32_t> len = pipe.ReadMessage(buf);
      ASSERT_TRUE(len.ok());
      buf.resize(*len);
      got.push_back(buf);
    }
  });
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());
  writer_peer = {reader.id(), reader.env_cap()};
  reader_peer = {writer.id(), writer.env_cap()};
  kernel_.Run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(got[1], (std::vector<uint8_t>{9, 8, 7, 6, 5, 4, 3, 2, 1}));
  EXPECT_TRUE(got[2].empty());
}

TEST_F(ExosIpcTest, PropertyPipeMatchesDequeModel) {
  // Random message sizes against a deque reference model.
  SharedBufferDesc desc;
  bool ready = false;
  std::deque<std::vector<uint8_t>> model;
  PipePeer writer_peer;
  PipePeer reader_peer;
  SplitMix64 rng(5);
  constexpr int kMessages = 200;

  Process writer(kernel_, [&](Process& p) {
    Result<SharedBufferDesc> created = CreateSharedBuffer(p);
    ASSERT_TRUE(created.ok());
    desc = *created;
    ASSERT_EQ(MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    ready = true;
    PipeEndpoint pipe(p, kRingVa, writer_peer, false);
    for (int i = 0; i < kMessages; ++i) {
      std::vector<uint8_t> msg(rng.NextBelow(200));
      for (auto& byte : msg) {
        byte = static_cast<uint8_t>(rng.Next());
      }
      model.push_back(msg);  // Cooperative scheduling: no data race.
      ASSERT_EQ(pipe.WriteMessage(msg), Status::kOk);
    }
  });
  Process reader(kernel_, [&](Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    PipeEndpoint pipe(p, kRingVa, reader_peer, false);
    for (int i = 0; i < kMessages; ++i) {
      std::vector<uint8_t> buf(256);
      Result<uint32_t> len = pipe.ReadMessage(buf);
      ASSERT_TRUE(len.ok());
      buf.resize(*len);
      ASSERT_FALSE(model.empty());
      ASSERT_EQ(buf, model.front());
      model.pop_front();
    }
  });
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());
  writer_peer = {reader.id(), reader.env_cap()};
  reader_peer = {writer.id(), writer.env_cap()};
  kernel_.Run();
  EXPECT_TRUE(model.empty());
}

TEST_F(ExosIpcTest, SharedMemoryWordVisibleAcrossProcesses) {
  SharedBufferDesc desc;
  bool ready = false;
  uint32_t seen = 0;
  Process a(kernel_, [&](Process& p) {
    Result<SharedBufferDesc> created = CreateSharedBuffer(p);
    ASSERT_TRUE(created.ok());
    desc = *created;
    ASSERT_EQ(MapSharedBuffer(p, desc, 0x6000000), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(0x6000000, 0xabcd), Status::kOk);
    ready = true;
  });
  Process b(kernel_, [&](Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(MapSharedBuffer(p, desc, 0x7000000), Status::kOk);  // Own vaddr.
    Result<uint32_t> v = machine_.LoadWord(0x7000000);
    ASSERT_TRUE(v.ok());
    seen = *v;
  });
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  kernel_.Run();
  EXPECT_EQ(seen, 0xabcdu);
}

TEST_F(ExosIpcTest, LrpcCallsServerFunction) {
  aegis::EnvId server_id = aegis::kNoEnv;
  uint32_t result = 0;
  Process server(kernel_, [&](Process& p) {
    InstallLrpcServer(p, [](const aegis::PctArgs& args) {
      aegis::PctArgs reply;
      reply.regs[0] = args.regs[0] * args.regs[1];
      return reply;
    });
    p.kernel().SysBlock();  // Serve passively until woken to exit.
  });
  cap::Capability server_cap;
  Process client(kernel_, [&](Process& p) {
    p.kernel().SysYield(server_id);
    aegis::PctArgs args;
    args.regs[0] = 6;
    args.regs[1] = 7;
    Result<aegis::PctArgs> reply = LrpcCall(p, server_id, args);
    ASSERT_TRUE(reply.ok());
    result = reply->regs[0];
    ASSERT_EQ(p.kernel().SysWake(server_id, server_cap), Status::kOk);
  });
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(client.ok());
  server_id = server.id();
  server_cap = server.env_cap();
  kernel_.Run();
  EXPECT_EQ(result, 42u);
}

TEST_F(ExosIpcTest, TlrpcCheaperThanLrpc) {
  aegis::EnvId lrpc_id = aegis::kNoEnv;
  aegis::EnvId tlrpc_id = aegis::kNoEnv;
  cap::Capability lrpc_cap;
  cap::Capability tlrpc_cap;
  uint64_t lrpc_cost = 0;
  uint64_t tlrpc_cost = 0;

  auto echo = [](const aegis::PctArgs& args) { return args; };
  Process lrpc_server(kernel_, [&](Process& p) {
    InstallLrpcServer(p, echo);
    p.kernel().SysBlock();
  });
  Process tlrpc_server(kernel_, [&](Process& p) {
    InstallTlrpcServer(p, echo);
    p.kernel().SysBlock();
  });
  Process client(kernel_, [&](Process& p) {
    p.kernel().SysYield(lrpc_id);
    p.kernel().SysYield(tlrpc_id);
    constexpr int kIters = 100;
    uint64_t t0 = machine_.clock().now();
    for (int i = 0; i < kIters; ++i) {
      ASSERT_TRUE(LrpcCall(p, lrpc_id, aegis::PctArgs{}).ok());
    }
    lrpc_cost = (machine_.clock().now() - t0) / kIters;
    t0 = machine_.clock().now();
    for (int i = 0; i < kIters; ++i) {
      ASSERT_TRUE(TlrpcCall(p, tlrpc_id, aegis::PctArgs{}).ok());
    }
    tlrpc_cost = (machine_.clock().now() - t0) / kIters;
    ASSERT_EQ(p.kernel().SysWake(lrpc_id, lrpc_cap), Status::kOk);
    ASSERT_EQ(p.kernel().SysWake(tlrpc_id, tlrpc_cap), Status::kOk);
  });
  ASSERT_TRUE(lrpc_server.ok());
  ASSERT_TRUE(tlrpc_server.ok());
  ASSERT_TRUE(client.ok());
  lrpc_id = lrpc_server.id();
  lrpc_cap = lrpc_server.env_cap();
  tlrpc_id = tlrpc_server.id();
  tlrpc_cap = tlrpc_server.env_cap();
  kernel_.Run();
  EXPECT_LT(tlrpc_cost, lrpc_cost);
}

// --- Stride scheduler (paper §7.3) ---

TEST_F(ExosIpcTest, StrideSchedulerHonoursProportions) {
  // 3:2:1 tickets over 150 slices => 75/50/25 within rounding.
  std::vector<uint64_t> allocations;
  std::array<Process*, 3> workers{};
  std::array<std::unique_ptr<Process>, 3> worker_storage;
  bool stop = false;

  for (int i = 0; i < 3; ++i) {
    worker_storage[i] = std::make_unique<Process>(
        kernel_,
        [&stop](Process& p) {
          while (!stop) {
            p.machine().Charge(p.kernel().slice_cycles() * 2);  // Compute.
          }
        },
        Process::Options{.slices = 0, .demand_zero = true});
    workers[i] = worker_storage[i].get();
    ASSERT_TRUE(workers[i]->ok());
  }
  Process sched(kernel_, [&](Process& p) {
    StrideScheduler stride(p);
    stride.AddClient(workers[0]->id(), 3);
    stride.AddClient(workers[1]->id(), 2);
    stride.AddClient(workers[2]->id(), 1);
    stride.RunSlices(150);
    allocations = stride.allocations();
    stop = true;
  });
  ASSERT_TRUE(sched.ok());
  kernel_.Run();

  ASSERT_EQ(allocations.size(), 3u);
  EXPECT_NEAR(static_cast<double>(allocations[0]), 75.0, 2.0);
  EXPECT_NEAR(static_cast<double>(allocations[1]), 50.0, 2.0);
  EXPECT_NEAR(static_cast<double>(allocations[2]), 25.0, 2.0);
}

TEST_F(ExosIpcTest, StrideAllocationErrorBoundedAtEveryPrefix) {
  // Stride scheduling's deterministic guarantee: at every point in time
  // the absolute error versus the ideal share is within one slice per
  // client (we allow 1.5 for the integer-stride rounding).
  std::vector<size_t> history;
  std::array<std::unique_ptr<Process>, 3> workers;
  bool stop = false;
  const uint32_t tickets[3] = {5, 3, 2};
  for (int i = 0; i < 3; ++i) {
    workers[i] = std::make_unique<Process>(
        kernel_,
        [&stop](Process& p) {
          while (!stop) {
            p.machine().Charge(p.kernel().slice_cycles() * 2);
          }
        },
        Process::Options{.slices = 0, .demand_zero = true});
    ASSERT_TRUE(workers[i]->ok());
  }
  Process sched(kernel_, [&](Process& p) {
    StrideScheduler stride(p);
    for (int i = 0; i < 3; ++i) {
      stride.AddClient(workers[i]->id(), tickets[i]);
    }
    stride.RunSlices(200);
    history = stride.history();
    stop = true;
  });
  ASSERT_TRUE(sched.ok());
  kernel_.Run();

  ASSERT_EQ(history.size(), 200u);
  double counts[3] = {0, 0, 0};
  const double total_tickets = 10.0;
  for (size_t t = 0; t < history.size(); ++t) {
    counts[history[t]] += 1.0;
    for (int c = 0; c < 3; ++c) {
      const double ideal = (t + 1) * tickets[c] / total_tickets;
      EXPECT_LE(std::abs(counts[c] - ideal), 1.5)
          << "client " << c << " at slice " << t;
    }
  }
}

}  // namespace
}  // namespace xok::exos
