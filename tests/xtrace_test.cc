// xtrace observability: ring-view geometry and drop-oldest overwrite
// semantics, secure binding (forged and stale capabilities), severing on
// KillEnv and on deallocation of a spanned frame, per-environment
// accounting via SysEnvStats, log2 syscall-latency histograms, the
// page-accounting audit catching an injected leak, and the armed-tracing
// cost bound on SysNull.
#include "src/core/xtrace.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/process.h"
#include "src/exos/tracelib.h"
#include "src/hw/machine.h"

namespace xok {
namespace {

using aegis::Aegis;
using aegis::EnvId;
using aegis::EnvSpec;
using aegis::TraceRingSpec;
using xtrace::Event;
using xtrace::Record;
using xtrace::TraceRingView;

// --- Ring view (no kernel) ---

TEST(TraceRingViewTest, GeometryAndFormat) {
  std::vector<uint8_t> region(hw::kPageBytes, 0xee);
  const uint32_t slots = TraceRingView::SlotsFor(region.size());
  EXPECT_EQ(slots,
            (hw::kPageBytes - TraceRingView::kHeaderBytes) / xtrace::kRecordBytes);
  Result<TraceRingView> view = TraceRingView::Format(region, slots, xtrace::kMaskAll);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->slots(), slots);
  EXPECT_EQ(view->head(), 0u);
  EXPECT_EQ(view->tail(), 0u);
  EXPECT_EQ(view->dropped(), 0u);
  EXPECT_EQ(view->mask(), xtrace::kMaskAll);

  // Reader-side attach infers the geometry from the header and validates
  // it against the region size.
  Result<TraceRingView> reader = TraceRingView::AttachExisting(region);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->slots(), slots);

  std::vector<uint8_t> tiny(TraceRingView::kHeaderBytes);
  EXPECT_EQ(TraceRingView::SlotsFor(tiny.size()), 0u);

  // Corrupted magic: the reader refuses.
  region[0] ^= 0xff;
  EXPECT_FALSE(TraceRingView::AttachExisting(region).ok());
}

TEST(TraceRingViewTest, RecordIndexIsFreeRunningModuloSlots) {
  std::vector<uint8_t> region(hw::kPageBytes);
  const uint32_t slots = TraceRingView::SlotsFor(region.size());
  TraceRingView view = *TraceRingView::Format(region, slots, xtrace::kMaskAll);
  Record a;
  a.cycle = 111;
  a.seq = 0;
  a.type = static_cast<uint16_t>(Event::kYield);
  view.Write(0, a);
  Record b;
  b.cycle = 222;
  b.seq = slots;  // Same slot as index 0 after one full lap.
  b.type = static_cast<uint16_t>(Event::kEnvBirth);
  view.Write(slots, b);
  const Record back = view.Read(0);
  EXPECT_EQ(back.cycle, 222u);
  EXPECT_EQ(back.seq, slots);
  EXPECT_EQ(back.type, static_cast<uint16_t>(Event::kEnvBirth));
}

TEST(LatencyHistTest, BucketsAreLog2) {
  EXPECT_EQ(xtrace::LatencyHist::BucketOf(0), 0u);
  EXPECT_EQ(xtrace::LatencyHist::BucketOf(1), 0u);
  EXPECT_EQ(xtrace::LatencyHist::BucketOf(2), 1u);
  EXPECT_EQ(xtrace::LatencyHist::BucketOf(3), 1u);
  EXPECT_EQ(xtrace::LatencyHist::BucketOf(4), 2u);
  EXPECT_EQ(xtrace::LatencyHist::BucketOf(36), 5u);  // [32, 64).
  xtrace::LatencyHist hist;
  hist.Add(36);
  hist.Add(36);
  hist.Add(100);
  EXPECT_EQ(hist.count, 3u);
  EXPECT_EQ(hist.total_cycles, 172u);
  EXPECT_EQ(hist.max_cycles, 100u);
  EXPECT_EQ(hist.bucket[5], 2u);
  EXPECT_EQ(hist.bucket[6], 1u);
}

// --- Kernel-side binding, accounting, and audit ---

class XtraceTest : public ::testing::Test {
 protected:
  XtraceTest()
      : machine_(hw::Machine::Config{.phys_pages = 256, .name = "xtrace"}),
        kernel_(machine_) {}

  // Allocates `pages` specific contiguous frames starting at `first`
  // (physical names are exposed, so the caller can just ask).
  std::vector<aegis::PageGrant> AllocRun(hw::PageId first, uint32_t pages) {
    std::vector<aegis::PageGrant> grants;
    for (uint32_t i = 0; i < pages; ++i) {
      Result<aegis::PageGrant> grant = kernel_.SysAllocPage(first + i);
      EXPECT_TRUE(grant.ok());
      if (grant.ok()) {
        grants.push_back(*grant);
      }
    }
    return grants;
  }

  hw::Machine machine_;
  Aegis kernel_;
};

TEST_F(XtraceTest, BindRequiresOwnedPagesAndValidCapability) {
  bool done = false;
  EnvSpec spec;
  spec.entry = [&] {
    const std::vector<aegis::PageGrant> grants = AllocRun(10, 2);
    TraceRingSpec rspec{.first_page = 10, .pages = 2};

    cap::Capability forged = grants[0].cap;
    forged.mac ^= 0x1995;
    EXPECT_EQ(kernel_.SysBindTraceRing(rspec, forged), Status::kErrAccessDenied);

    // A span that reaches into frames the caller never owned.
    TraceRingSpec wide{.first_page = 10, .pages = 8};
    EXPECT_EQ(kernel_.SysBindTraceRing(wide, grants[0].cap), Status::kErrAccessDenied);

    EXPECT_FALSE(kernel_.trace_armed());
    ASSERT_EQ(kernel_.SysBindTraceRing(rspec, grants[0].cap), Status::kOk);
    EXPECT_TRUE(kernel_.trace_armed());

    // One logic analyser on the bus at a time.
    EXPECT_EQ(kernel_.SysBindTraceRing(rspec, grants[0].cap), Status::kErrAlreadyExists);

    ASSERT_EQ(kernel_.SysUnbindTraceRing(), Status::kOk);
    EXPECT_FALSE(kernel_.trace_armed());
    EXPECT_EQ(kernel_.SysUnbindTraceRing(), Status::kErrNotFound);

    // Stale epoch: dealloc/realloc bumps the frame epoch, so the very
    // capability that bound the ring a moment ago must now be refused.
    ASSERT_EQ(kernel_.SysDeallocPage(10, grants[0].cap), Status::kOk);
    ASSERT_TRUE(kernel_.SysAllocPage(10).ok());
    EXPECT_EQ(kernel_.SysBindTraceRing(rspec, grants[0].cap), Status::kErrAccessDenied);
    done = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  EXPECT_TRUE(done);
}

TEST_F(XtraceTest, OverflowDropsOldestAndCountsOverwrites) {
  bool done = false;
  EnvSpec spec;
  spec.entry = [&] {
    const std::vector<aegis::PageGrant> grants = AllocRun(10, 1);
    ASSERT_EQ(kernel_.SysBindTraceRing({.first_page = 10, .pages = 1}, grants[0].cap),
              Status::kOk);
    const uint32_t slots = TraceRingView::SlotsFor(hw::kPageBytes);
    // Each SysNull appends an enter and an exit record; overflow by a lot.
    for (uint32_t i = 0; i < slots * 3; ++i) {
      kernel_.SysNull();
    }
    std::span<uint8_t> region = machine_.mem().RangeSpan(10, 1);
    Result<TraceRingView> view = TraceRingView::AttachExisting(region);
    ASSERT_TRUE(view.ok());
    const uint32_t head = view->head();
    EXPECT_GT(head, slots);
    // Nobody advanced the tail, so every append past the capacity
    // overwrote the oldest retained record — and was counted.
    EXPECT_EQ(view->dropped(), static_cast<uint64_t>(head - slots));

    // The *newest* records survive: retained seqs are exactly
    // [head - slots, head), oldest first, with nondecreasing timestamps.
    Result<std::vector<Record>> records = exos::DecodeRegion(region);
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), static_cast<size_t>(slots));
    EXPECT_EQ(records->front().seq, head - slots);
    EXPECT_EQ(records->back().seq, head - 1);
    for (size_t i = 1; i < records->size(); ++i) {
      EXPECT_EQ((*records)[i].seq, (*records)[i - 1].seq + 1);
      EXPECT_GE((*records)[i].cycle, (*records)[i - 1].cycle);
    }
    done = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  EXPECT_TRUE(done);
}

TEST_F(XtraceTest, KillEnvSeversTheRingAndStopsWrites) {
  EnvId victim_id = aegis::kNoEnv;
  bool ready = false;
  bool checked = false;
  EnvSpec victim;
  victim.entry = [&] {
    const std::vector<aegis::PageGrant> grants = AllocRun(10, 2);
    ASSERT_EQ(kernel_.SysBindTraceRing({.first_page = 10, .pages = 2}, grants[0].cap),
              Status::kOk);
    ready = true;
    kernel_.SysBlock();  // Stays blocked until killed.
    ADD_FAILURE() << "killed environment resumed";
  };
  EnvSpec killer;
  killer.entry = [&] {
    while (!ready) {
      kernel_.SysYield();
    }
    ASSERT_TRUE(kernel_.trace_armed());
    ASSERT_EQ(kernel_.KillEnv(victim_id), Status::kOk);
    EXPECT_FALSE(kernel_.trace_armed());

    // The frames went back to the allocator but their contents are still
    // in RAM: the post-mortem reader sees the victim's own death (emitted
    // before the binding was severed), flagged as a kill.
    std::span<uint8_t> region = machine_.mem().RangeSpan(10, 2);
    Result<TraceRingView> view = TraceRingView::AttachExisting(region);
    ASSERT_TRUE(view.ok());
    Result<std::vector<Record>> records = exos::DecodeRegion(region);
    ASSERT_TRUE(records.ok());
    bool death_seen = false;
    for (const Record& record : *records) {
      if (record.type == static_cast<uint16_t>(Event::kEnvDeath) &&
          record.arg0 == victim_id && record.arg1 == 1) {
        death_seen = true;
      }
    }
    EXPECT_TRUE(death_seen);

    // Severed means severed: further syscalls append nothing.
    const uint32_t head = view->head();
    for (int i = 0; i < 10; ++i) {
      kernel_.SysNull();
    }
    EXPECT_EQ(view->head(), head);
    EXPECT_TRUE(kernel_.AuditInvariants().ok());
    checked = true;
  };
  Result<aegis::EnvGrant> gv = kernel_.CreateEnv(std::move(victim));
  ASSERT_TRUE(gv.ok());
  victim_id = gv->env;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(killer)).ok());
  kernel_.Run();
  EXPECT_TRUE(checked);
}

TEST_F(XtraceTest, DeallocatingASpannedFrameSeversTheRing) {
  bool done = false;
  EnvSpec spec;
  spec.entry = [&] {
    const std::vector<aegis::PageGrant> grants = AllocRun(10, 2);
    ASSERT_EQ(kernel_.SysBindTraceRing({.first_page = 10, .pages = 2}, grants[0].cap),
              Status::kOk);
    ASSERT_TRUE(kernel_.trace_armed());
    // Giving back the *second* frame of the span must sever the whole
    // binding — the kernel never appends into memory it might reallocate.
    ASSERT_EQ(kernel_.SysDeallocPage(grants[1].page, grants[1].cap), Status::kOk);
    EXPECT_FALSE(kernel_.trace_armed());
    std::span<uint8_t> region = machine_.mem().RangeSpan(10, 2);
    const uint32_t head = TraceRingView::AttachExisting(region)->head();
    for (int i = 0; i < 10; ++i) {
      kernel_.SysNull();
    }
    EXPECT_EQ(TraceRingView::AttachExisting(region)->head(), head);
    EXPECT_TRUE(kernel_.AuditInvariants().ok());
    done = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  EXPECT_TRUE(done);
}

TEST_F(XtraceTest, EnvStatsCountsSyscallsPagesAndLifecycle) {
  EnvId worker_id = aegis::kNoEnv;
  bool done = false;
  EnvSpec worker;
  worker.entry = [&] {
    for (int i = 0; i < 7; ++i) {
      kernel_.SysNull();
    }
    AllocRun(10, 3);
    kernel_.SysYield();  // Slice switch: cycles_on_cpu is credited here.
    Result<aegis::EnvStats> self = kernel_.SysEnvStats(kernel_.SysSelf());
    ASSERT_TRUE(self.ok());
    EXPECT_TRUE(self->alive);
    EXPECT_FALSE(self->killed);
    EXPECT_EQ(self->pages_held, 3u);
    EXPECT_EQ(self->counters.syscalls[static_cast<uint32_t>(xtrace::Sys::kNull)], 7u);
    EXPECT_EQ(self->counters.syscalls[static_cast<uint32_t>(xtrace::Sys::kAllocPage)], 3u);
    EXPECT_GT(self->counters.cycles_on_cpu, 0u);

    // Past the end of the env table: visible error, not garbage.
    EXPECT_EQ(kernel_.SysEnvStats(999).status(), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysEnvStats(aegis::kNoEnv).status(), Status::kErrNotFound);
    done = true;
  };
  Result<aegis::EnvGrant> grant = kernel_.CreateEnv(std::move(worker));
  ASSERT_TRUE(grant.ok());
  worker_id = grant->env;
  kernel_.Run();
  EXPECT_TRUE(done);
  // Post-mortem from the host: the counters survive a clean exit.
  const aegis::EnvStats post = kernel_.env_stats(worker_id);
  EXPECT_FALSE(post.alive);
  EXPECT_FALSE(post.killed);
  EXPECT_EQ(post.counters.syscalls[static_cast<uint32_t>(xtrace::Sys::kNull)], 7u);
  EXPECT_EQ(post.counters.syscalls[static_cast<uint32_t>(xtrace::Sys::kExit)], 1u);
}

TEST_F(XtraceTest, SyscallHistogramRecordsLatencies) {
  bool done = false;
  EnvSpec spec;
  spec.entry = [&] {
    const uint64_t before =
        kernel_.syscall_hist(xtrace::Sys::kNull).count;
    for (int i = 0; i < 5; ++i) {
      kernel_.SysNull();
    }
    Result<xtrace::LatencyHist> hist =
        kernel_.SysSyscallHist(static_cast<uint32_t>(xtrace::Sys::kNull));
    ASSERT_TRUE(hist.ok());
    EXPECT_EQ(hist->count, before + 5);
    // SysNull is 36 cycles end to end: every sample lands in [32, 64).
    EXPECT_EQ(hist->bucket[5], before + 5);
    EXPECT_EQ(hist->max_cycles, 36u);

    EXPECT_EQ(kernel_.SysSyscallHist(xtrace::kSysCount).status(),
              Status::kErrOutOfRange);
    done = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  EXPECT_TRUE(done);
}

TEST_F(XtraceTest, AuditCatchesAnInjectedPageLeak) {
  EnvId worker_id = aegis::kNoEnv;
  EnvSpec worker;
  worker.entry = [&] {
    AllocRun(10, 2);
    // Exit cleanly holding the pages: ownership persists past a clean
    // exit, so the books stay balanced until the host cooks them below.
  };
  Result<aegis::EnvGrant> grant = kernel_.CreateEnv(std::move(worker));
  ASSERT_TRUE(grant.ok());
  worker_id = grant->env;
  kernel_.Run();

  ASSERT_TRUE(kernel_.AuditInvariants().ok());
  // Cook the books: the env claims one page more than the frame table
  // backs. The cross-check must notice and name the offender.
  kernel_.DebugSkewPageAccounting(worker_id, +1);
  Aegis::AuditReport report = kernel_.AuditInvariants();
  ASSERT_FALSE(report.ok());
  bool named = false;
  for (const std::string& violation : report.violations) {
    if (violation.find("env " + std::to_string(worker_id)) != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named) << (report.violations.empty() ? "" : report.violations.front());
  // Undo the skew: the audit goes green again.
  kernel_.DebugSkewPageAccounting(worker_id, -1);
  EXPECT_TRUE(kernel_.AuditInvariants().ok());
}

TEST_F(XtraceTest, ArmedTracingCostsUnderTenPercentOnSysNull) {
  uint64_t disarmed = 0;
  uint64_t armed = 0;
  uint64_t lifecycle_only = 0;
  constexpr int kIters = 1000;
  bool done = false;
  EnvSpec spec;
  spec.entry = [&] {
    uint64_t t0 = machine_.clock().now();
    for (int i = 0; i < kIters; ++i) {
      kernel_.SysNull();
    }
    disarmed = machine_.clock().now() - t0;

    const std::vector<aegis::PageGrant> grants = AllocRun(10, 4);
    ASSERT_EQ(kernel_.SysBindTraceRing({.first_page = 10, .pages = 4}, grants[0].cap),
              Status::kOk);
    t0 = machine_.clock().now();
    for (int i = 0; i < kIters; ++i) {
      kernel_.SysNull();
    }
    armed = machine_.clock().now() - t0;
    ASSERT_EQ(kernel_.SysUnbindTraceRing(), Status::kOk);

    // A mask that excludes syscall events also skips the armed charge:
    // the cost follows what the application asked to see.
    ASSERT_EQ(kernel_.SysBindTraceRing(
                  {.first_page = 10, .pages = 4, .mask = xtrace::kMaskEnvLifecycle},
                  grants[0].cap),
              Status::kOk);
    t0 = machine_.clock().now();
    for (int i = 0; i < kIters; ++i) {
      kernel_.SysNull();
    }
    lifecycle_only = machine_.clock().now() - t0;
    done = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  ASSERT_TRUE(done);
  EXPECT_GT(armed, disarmed);
  EXPECT_LT(static_cast<double>(armed - disarmed),
            0.10 * static_cast<double>(disarmed))
      << "armed=" << armed << " disarmed=" << disarmed;
  // Masking out syscall events skips the armed charge entirely; the
  // windows differ only by whatever timer interrupts straddled them.
  const double lifecycle_skew =
      static_cast<double>(lifecycle_only) - static_cast<double>(disarmed);
  EXPECT_LT(lifecycle_skew < 0 ? -lifecycle_skew : lifecycle_skew,
            0.01 * static_cast<double>(disarmed))
      << "lifecycle=" << lifecycle_only << " disarmed=" << disarmed;
}

// --- Library layer: TraceSession over a live kernel ---

TEST(TraceLibTest, SessionDrainsEventsAndSummarizes) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "tracelib"});
  Aegis kernel(machine);
  bool worker_done = false;
  exos::Process worker(kernel, [&](exos::Process& p) {
    for (int i = 0; i < 20; ++i) {
      p.kernel().SysYield();
    }
    worker_done = true;
  });
  std::vector<Record> records;
  uint64_t session_lapped = 0;
  exos::Process monitor(kernel, [&](exos::Process& p) {
    exos::TraceSession trace(p);
    ASSERT_EQ(trace.Bind({.pages = 2, .mask = xtrace::kMaskAll}), Status::kOk);
    ASSERT_TRUE(trace.bound());
    // A second session cannot steal the stream.
    exos::TraceSession second(p);
    EXPECT_EQ(second.Bind({.pages = 2}), Status::kErrAlreadyExists);
    for (int round = 0; round < 4; ++round) {
      p.kernel().SysSleep(20'000);
      trace.Drain(records);
    }
    session_lapped = trace.lapped();
    EXPECT_EQ(trace.Close(), Status::kOk);
    EXPECT_FALSE(trace.bound());
  });
  ASSERT_TRUE(worker.ok());
  ASSERT_TRUE(monitor.ok());
  kernel.Run();
  EXPECT_TRUE(worker_done);
  EXPECT_EQ(session_lapped, 0u);  // 2 pages is plenty for this workload.
  ASSERT_FALSE(records.empty());

  const exos::TraceSummary summary = exos::Summarize(records);
  EXPECT_EQ(summary.records, records.size());
  EXPECT_GT(summary.by_type[static_cast<uint32_t>(Event::kYield)], 0u);
  EXPECT_GT(summary.by_type[static_cast<uint32_t>(Event::kSyscallEnter)], 0u);
  EXPECT_GT(summary.syscall_enters[static_cast<uint32_t>(xtrace::Sys::kYield)], 0u);
  EXPECT_GE(summary.last_cycle, summary.first_cycle);

  // The JSON renderer names what it counts.
  const std::string json = exos::SummaryToJson(summary);
  EXPECT_NE(json.find("\"yield\""), std::string::npos);
  EXPECT_NE(json.find("\"records\""), std::string::npos);
}

TEST(TraceLibTest, ReaderRecoversFromBeingLapped) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "lapped"});
  Aegis kernel(machine);
  bool done = false;
  exos::Process proc(kernel, [&](exos::Process& p) {
    exos::TraceSession trace(p);
    ASSERT_EQ(trace.Bind({.pages = 1, .mask = xtrace::kMaskAll}), Status::kOk);
    const uint32_t slots = TraceRingView::SlotsFor(hw::kPageBytes);
    // Generate far more records than the ring holds without reading.
    for (uint32_t i = 0; i < slots * 2; ++i) {
      p.kernel().SysNull();
    }
    // The first read discovers the lap, skips to the oldest retained
    // record, and keeps the sequence contiguous from there.
    Result<Record> first = trace.Next();
    ASSERT_TRUE(first.ok());
    EXPECT_GT(trace.lapped(), 0u);
    Result<Record> second = trace.Next();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->seq, first->seq + 1);
    EXPECT_GT(trace.dropped(), 0u);
    done = true;
  });
  ASSERT_TRUE(proc.ok());
  kernel.Run();
  EXPECT_TRUE(done);
}

TEST(TraceLibTest, SmpProducerFleetLapsSlowObserverWithoutTearing) {
  // Four CPUs: three producer environments pinned to CPUs 1-3 spam
  // syscalls into the one global ring while a deliberately slow observer
  // on CPU 0 sleeps between drains. One page of ring (126 slots) against
  // thousands of records per nap guarantees the producers lap the
  // observer repeatedly; the contract under test is the recovery
  // discipline, not the loss: the header's overwrite counter surfaces the
  // drops, Next() resynchronizes to the oldest retained record, and every
  // record handed out is whole — valid type, strictly increasing seq,
  // nondecreasing timestamp — never a torn read from a slot a remote CPU
  // was overwriting.
  hw::Machine machine(
      hw::Machine::Config{.phys_pages = 256, .name = "smplap", .cpus = 4});
  Aegis kernel(machine, Aegis::Config{.max_envs = 16});

  bool armed = false;
  int producers_done = 0;
  constexpr int kProducers = 3;
  constexpr uint32_t kCallsPerProducer = 2000;
  std::vector<std::unique_ptr<exos::Process>> fleet;
  for (int i = 0; i < kProducers; ++i) {
    fleet.push_back(std::make_unique<exos::Process>(
        kernel,
        [&](exos::Process& p) {
          while (!armed) {
            p.kernel().SysYield();
          }
          for (uint32_t n = 0; n < kCallsPerProducer; ++n) {
            p.kernel().SysNull();
          }
          ++producers_done;
        },
        exos::Process::Options{.cpu_mask = 1ULL << (1 + i)}));
    ASSERT_TRUE(fleet.back()->ok());
  }

  std::vector<Record> drained;
  uint64_t session_dropped = 0;
  uint64_t session_lapped = 0;
  bool observer_done = false;
  exos::Process observer(
      kernel,
      [&](exos::Process& p) {
        exos::TraceSession trace(p);
        ASSERT_EQ(trace.Bind({.pages = 1, .mask = xtrace::kMaskAll}), Status::kOk);
        armed = true;
        while (producers_done < kProducers) {
          p.kernel().SysSleep(100'000);  // Naps are the slowness under test.
          trace.Drain(drained);
        }
        trace.Drain(drained);
        session_dropped = trace.dropped();
        session_lapped = trace.lapped();
        observer_done = true;
      },
      exos::Process::Options{.cpu_mask = 1ULL << 0});
  ASSERT_TRUE(observer.ok());

  kernel.Run();
  ASSERT_TRUE(observer_done);
  ASSERT_EQ(producers_done, kProducers);

  // The fleet demonstrably outran the observer, and the loss was counted,
  // not silent: the observer recovered less than the producers generated.
  EXPECT_GT(session_dropped, 0u);
  EXPECT_GT(session_lapped, 0u);
  ASSERT_FALSE(drained.empty());
  EXPECT_LT(drained.size(),
            static_cast<size_t>(kProducers) * kCallsPerProducer * 2);

  // Untorn across every resync: whole records only.
  for (size_t i = 0; i < drained.size(); ++i) {
    EXPECT_LT(drained[i].type, xtrace::kEventCount) << "record " << i;
    if (i > 0) {
      EXPECT_GT(drained[i].seq, drained[i - 1].seq) << "record " << i;
      EXPECT_GE(drained[i].cycle, drained[i - 1].cycle) << "record " << i;
    }
  }
}

}  // namespace
}  // namespace xok
