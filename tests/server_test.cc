// Tests for the Cheetah-style server libOS (src/exos/server): the strict
// HTTP parser's fuzz table, protocol round trips, the KvStore over a
// journaled LibFS, the DPF shard-split fairness rules (deepest match
// wins, ties to the lowest id, duplicates rejected at bind), and the
// whole system end to end — loadgen client, sharded workers, ASH fast
// path — on one simulated machine.
#include "src/exos/server/server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/dpf/dpf.h"
#include "src/dpf/tcpip_filters.h"
#include "src/exos/rdp.h"
#include "src/exos/server/loadgen.h"
#include "src/exos/tracelib.h"
#include "src/hw/disk.h"
#include "src/net/wire.h"

namespace xok::exos::server {
namespace {

std::span<const uint8_t> AsBytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// --- Parser fuzz table (satellite: >= 10 malformed shapes) ---

struct FuzzCase {
  const char* name;
  std::string text;
  ParseError want;
};

std::vector<FuzzCase> FuzzTable() {
  std::vector<FuzzCase> cases;
  cases.push_back({"empty", "", ParseError::kTruncated});
  cases.push_back({"no_crlf", "GET /k HTTP/1.0", ParseError::kTruncated});
  cases.push_back({"binary_noise", std::string("\x01\x7f\x02\xfe\x03garbage\x04\x05\x06"),
                   ParseError::kTruncated});
  cases.push_back({"line_too_long",
                   "GET /" + std::string(200, 'a') + " HTTP/1.0\r\n\r\n",
                   ParseError::kLineTooLong});
  cases.push_back({"lowercase_method", "get /k HTTP/1.0\r\n\r\n", ParseError::kBadMethod});
  cases.push_back({"unknown_method", "POST /k HTTP/1.0\r\n\r\n", ParseError::kBadMethod});
  cases.push_back({"no_spaces", "GET/kHTTP/1.0\r\n\r\n", ParseError::kBadMethod});
  cases.push_back({"no_second_space", "GET /k\r\n\r\n", ParseError::kBadUri});
  cases.push_back({"no_leading_slash", "GET k HTTP/1.0\r\n\r\n", ParseError::kBadUri});
  cases.push_back({"empty_key", "GET / HTTP/1.0\r\n\r\n", ParseError::kEmptyKey});
  cases.push_back({"key_too_long",
                   "GET /" + std::string(kMaxKeyBytes + 13, 'k') + " HTTP/1.0\r\n\r\n",
                   ParseError::kKeyTooLong});
  cases.push_back({"bad_key_char", "GET /k%20x HTTP/1.0\r\n\r\n", ParseError::kBadKeyChar});
  cases.push_back({"wrong_version", "GET /k HTTP/1.1\r\n\r\n", ParseError::kBadVersion});
  cases.push_back({"version_trailing_space", "GET /k HTTP/1.0 \r\n\r\n",
                   ParseError::kBadVersion});
  {
    std::string text = "GET /k HTTP/1.0\r\n";
    for (int i = 0; i < 30; ++i) {
      text += "A: bbbbbbbb\r\n";  // 390 header bytes, limit is 256.
    }
    text += "\r\n";
    cases.push_back({"headers_too_big", text, ParseError::kHeadersTooBig});
  }
  cases.push_back({"header_no_colon", "GET /k HTTP/1.0\r\njunk\r\n\r\n",
                   ParseError::kBadHeader});
  cases.push_back({"put_no_content_length", "PUT /k HTTP/1.0\r\n\r\nbody",
                   ParseError::kNoContentLength});
  cases.push_back({"bad_content_length", "PUT /k HTTP/1.0\r\nContent-Length: 12x\r\n\r\n",
                   ParseError::kBadContentLength});
  cases.push_back({"value_too_long",
                   "PUT /k HTTP/1.0\r\nContent-Length: 600\r\n\r\n" + std::string(600, 'v'),
                   ParseError::kValueTooLong});
  cases.push_back({"body_truncated", "PUT /k HTTP/1.0\r\nContent-Length: 10\r\n\r\nabc",
                   ParseError::kBodyTruncated});
  cases.push_back({"no_blank_line", "GET /k HTTP/1.0\r\nX: 1\r\n", ParseError::kNoBlankLine});
  return cases;
}

TEST(HttpParserTest, FuzzTableRejectsEveryMalformedShape) {
  const std::vector<FuzzCase> cases = FuzzTable();
  ASSERT_GE(cases.size(), 10u);
  for (const FuzzCase& c : cases) {
    SCOPED_TRACE(c.name);
    HttpRequest req;
    EXPECT_EQ(ParseHttpRequest(AsBytes(c.text), &req), c.want);
    EXPECT_STRNE(ParseErrorName(c.want), "unknown");
  }
}

TEST(HttpParserTest, CanonicalRequestsParse) {
  HttpRequest req;
  const std::string get = BuildGetRequest("alpha_key.1");
  ASSERT_EQ(ParseHttpRequest(AsBytes(get), &req), ParseError::kOk);
  EXPECT_EQ(req.method, Method::kGet);
  EXPECT_EQ(req.key, "alpha_key.1");
  EXPECT_TRUE(req.body.empty());

  const std::string put = BuildPutRequest("beta-2", "the value bytes");
  ASSERT_EQ(ParseHttpRequest(AsBytes(put), &req), ParseError::kOk);
  EXPECT_EQ(req.method, Method::kPut);
  EXPECT_EQ(req.key, "beta-2");
  EXPECT_EQ(req.body, "the value bytes");

  const std::string quit = BuildQuitRequest();
  ASSERT_EQ(ParseHttpRequest(AsBytes(quit), &req), ParseError::kOk);
  EXPECT_EQ(req.method, Method::kQuit);
}

TEST(HttpParserTest, ResponseRoundTripDetectsCorruption) {
  const std::string body = "hello exokernel";
  const std::string text = BuildHttpResponse(200, body);
  std::vector<uint8_t> payload(kRespHeaderBytes + text.size());
  net::PutBe32(payload, 0, 0xdeadbeefu);
  std::copy(text.begin(), text.end(), payload.begin() + kRespHeaderBytes);

  HttpResponseView view;
  ASSERT_TRUE(ParseResponsePayload(payload, &view));
  EXPECT_EQ(view.req_id, 0xdeadbeefu);
  EXPECT_EQ(view.status, 200);
  EXPECT_EQ(view.body, body);
  EXPECT_TRUE(view.sum_ok);

  // Flip one body byte: X-Sum verification must catch it.
  payload.back() ^= 0x40;
  ASSERT_TRUE(ParseResponsePayload(payload, &view));
  EXPECT_FALSE(view.sum_ok);

  // Empty-body statuses round-trip too.
  const std::string nf = BuildHttpResponse(404, "");
  std::vector<uint8_t> nf_payload(kRespHeaderBytes + nf.size());
  net::PutBe32(nf_payload, 0, 7);
  std::copy(nf.begin(), nf.end(), nf_payload.begin() + kRespHeaderBytes);
  ASSERT_TRUE(ParseResponsePayload(nf_payload, &view));
  EXPECT_EQ(view.status, 404);
  EXPECT_TRUE(view.body.empty());
  EXPECT_TRUE(view.sum_ok);
}

TEST(LoadGenValueTest, ValueImageRoundTrip) {
  const std::string key = LoadKeyName(3);
  EXPECT_EQ(key, "k003");
  const std::string v0 = MakeValue(key, 0, 64);
  const std::string v37 = MakeValue(key, 37, 64);
  EXPECT_EQ(v0.size(), 64u);
  EXPECT_EQ(ParseValueVersion(key, v0, 64), 0);
  EXPECT_EQ(ParseValueVersion(key, v37, 64), 37);
  // Wrong key, tampered padding, and truncation are all invalid images.
  EXPECT_EQ(ParseValueVersion("k004", v0, 64), -1);
  std::string tampered = v37;
  tampered.back() ^= 1;
  EXPECT_EQ(ParseValueVersion(key, tampered, 64), -1);
  EXPECT_EQ(ParseValueVersion(key, v37.substr(0, 30), 64), -1);

  const auto preload = MakePreload(5, 48);
  ASSERT_EQ(preload.size(), 5u);
  for (const auto& [k, v] : preload) {
    EXPECT_EQ(ParseValueVersion(k, v, 48), 0);
  }
}

TEST(LatencySummaryTest, TailPercentilesRequireEnoughSamples) {
  EXPECT_EQ(SummarizeLatencies({}).count, 0u);
  EXPECT_FALSE(SummarizeLatencies({}).samples_insufficient);

  // 99 samples: the 99th and 99.9th ranks both degenerate to the max, so
  // the tails report 0 with the flag raised instead of masquerading.
  std::vector<uint64_t> few(99);
  for (size_t i = 0; i < few.size(); ++i) {
    few[i] = i + 1;
  }
  const LatencySummary sparse = SummarizeLatencies(std::move(few));
  EXPECT_EQ(sparse.count, 99u);
  EXPECT_EQ(sparse.p50, 50u);
  EXPECT_TRUE(sparse.samples_insufficient);
  EXPECT_EQ(sparse.p99, 0u);
  EXPECT_EQ(sparse.p999, 0u);
  EXPECT_EQ(sparse.max, 99u);

  // One more sample crosses the guard: nearest-rank tails appear.
  std::vector<uint64_t> enough(100);
  for (size_t i = 0; i < enough.size(); ++i) {
    enough[i] = i + 1;
  }
  const LatencySummary dense = SummarizeLatencies(std::move(enough));
  EXPECT_FALSE(dense.samples_insufficient);
  EXPECT_EQ(dense.p50, 50u);
  EXPECT_EQ(dense.p99, 99u);
  EXPECT_EQ(dense.p999, 100u);
  EXPECT_EQ(dense.max, 100u);
}

TEST(ShardingTest, ShardByteAndAtomAgree) {
  for (uint32_t workers : {1u, 2u, 4u, 8u}) {
    for (uint32_t i = 0; i < 16; ++i) {
      const std::string key = LoadKeyName(i);
      const uint32_t shard = KeyHash(key) & (workers - 1);
      const dpf::Atom atom = KvServer::ShardAtom(shard, workers);
      EXPECT_EQ(atom.offset, net::kUdpPayloadOff);
      EXPECT_EQ(atom.width, 1);
      EXPECT_EQ(atom.mask, workers - 1);
      // The envelope's shard byte, masked, must satisfy the atom.
      const auto payload = BuildRequestPayload(1, BuildGetRequest(key), key);
      EXPECT_EQ(payload[0], ShardByte(key));
      EXPECT_EQ(payload[0] & atom.mask, atom.value) << key << " workers=" << workers;
    }
  }
}

// --- DPF fairness: deepest match wins, ties to lowest id, duplicates
// rejected (satellite 2, engine level) ---

std::vector<uint8_t> RequestFrame(uint16_t dst_port, const std::string& key) {
  const auto payload = BuildRequestPayload(9, BuildGetRequest(key), key);
  return net::BuildUdpFrame(0xa, 0xa, /*src_ip=*/2, /*dst_ip=*/1, /*src_port=*/7999,
                            dst_port, payload);
}

TEST(DpfFairnessTest, ShardFiltersBeatCatchAllAndTiesBreakToLowestId) {
  dpf::DpfEngine engine;

  // A shallow catch-all (port only, 3 atoms) plus the two shard filters
  // (port + masked shard byte, 4 atoms) the two-worker server binds.
  Result<dpf::FilterId> catch_all = engine.Insert(dpf::UdpPortFilter(7080));
  ASSERT_TRUE(catch_all.ok());
  dpf::FilterSpec shard0 = dpf::UdpPortFilter(7080);
  shard0.atoms.push_back(KvServer::ShardAtom(0, 2));
  dpf::FilterSpec shard1 = dpf::UdpPortFilter(7080);
  shard1.atoms.push_back(KvServer::ShardAtom(1, 2));
  Result<dpf::FilterId> id0 = engine.Insert(shard0);
  Result<dpf::FilterId> id1 = engine.Insert(shard1);
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());

  // Every request is steered by its key's shard byte; the shallower
  // catch-all never sees a frame (deepest match wins).
  for (uint32_t i = 0; i < 12; ++i) {
    const std::string key = LoadKeyName(i);
    const uint32_t shard = KeyHash(key) & 1;
    EXPECT_EQ(engine.Classify(RequestFrame(7080, key)), shard == 0 ? *id0 : *id1) << key;
  }

  // Rebinding either shard filter atom-for-atom is rejected: a second
  // consumer cannot steal a bound worker's traffic.
  EXPECT_EQ(engine.Insert(shard0).status(), Status::kErrAlreadyExists);
  EXPECT_EQ(engine.Insert(shard1).status(), Status::kErrAlreadyExists);

  // Equal depth, both matching: the earliest-bound (lowest id) filter
  // wins. mask=0 atoms are wildcards at the shard byte, so both of these
  // 4-atom filters match every request; they tie with the shard filters
  // and lose to them on id.
  dpf::FilterSpec wild_a = dpf::UdpPortFilter(7080);
  wild_a.atoms.push_back(dpf::Atom{.offset = net::kUdpPayloadOff, .width = 1, .mask = 0, .value = 0});
  dpf::FilterSpec wild_b = dpf::UdpPortFilter(7080);
  wild_b.atoms.push_back(
      dpf::Atom{.offset = net::kUdpPayloadOff + 1, .width = 1, .mask = 0, .value = 0});
  Result<dpf::FilterId> wa = engine.Insert(wild_a);
  Result<dpf::FilterId> wb = engine.Insert(wild_b);
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wb.ok());
  const std::string key0 = LoadKeyName(0);
  const uint32_t shard_of_key0 = KeyHash(key0) & 1;
  EXPECT_EQ(engine.Classify(RequestFrame(7080, key0)),
            shard_of_key0 == 0 ? *id0 : *id1);

  // Remove the owning shard filter: the tie between the two wildcards
  // resolves to the lower id (earliest bound), not the later one.
  ASSERT_EQ(engine.Remove(shard_of_key0 == 0 ? *id0 : *id1), Status::kOk);
  EXPECT_EQ(engine.Classify(RequestFrame(7080, key0)), *wa);
  ASSERT_EQ(engine.Remove(*wa), Status::kOk);
  EXPECT_EQ(engine.Classify(RequestFrame(7080, key0)), *wb);
  // And with both wildcards gone the shallow catch-all finally matches.
  ASSERT_EQ(engine.Remove(*wb), Status::kOk);
  EXPECT_EQ(engine.Classify(RequestFrame(7080, key0)), *catch_all);
}

// --- Simulated-machine rig: one machine, loopback NIC, disk ---

uint64_t LoopResolve(uint32_t) { return 0xa; }  // Everything is us.
NetIface ServerIface() { return NetIface{0xa, 1, LoopResolve}; }
NetIface ClientIface() { return NetIface{0xa, 2, LoopResolve}; }

struct Rig {
  hw::Machine machine;
  aegis::Aegis kernel;
  hw::Nic nic;
  hw::Disk disk;

  explicit Rig(uint32_t cpus, uint32_t phys_pages = 2048, uint32_t disk_blocks = 1024)
      : machine(hw::Machine::Config{.phys_pages = phys_pages, .name = "srv", .cpus = cpus}),
        kernel(machine, aegis::Aegis::Config{.max_envs = 200}),
        nic(machine, 0xa),
        disk(machine, disk_blocks) {
    kernel.AttachNic(&nic);
    kernel.AttachDisk(&disk);
    kernel.set_audit_on_fault(true);
  }
};

TEST(KvStoreTest, PutGetOverwriteEvictAndFsck) {
  Rig rig(/*cpus=*/1, /*phys_pages=*/512, /*disk_blocks=*/512);
  bool done = false;
  Process proc(rig.kernel, [&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = p.kernel().SysAllocDiskExtent(48);
    ASSERT_TRUE(extent.ok());
    LibFs::Options options;
    options.cache_slots = 8;
    Result<std::unique_ptr<LibFs>> fs = LibFs::Format(p, *extent, options);
    ASSERT_TRUE(fs.ok());
    KvStore store(p, fs->get(), /*cache_entries=*/4);

    // Missing key.
    Result<const KvStore::Entry*> miss = store.Get("absent");
    EXPECT_EQ(miss.status(), Status::kErrNotFound);

    // Put + Get with the precomputed checksum.
    const std::string v1(64, 'x');
    ASSERT_EQ(store.Put("alpha", v1), Status::kOk);
    Result<const KvStore::Entry*> got = store.Get("alpha");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)->value, v1);
    EXPECT_EQ((*got)->sum, BodySum(v1));

    // A shorter overwrite must not leak the stale tail — including via a
    // fresh store (read-through from disk, not the writer's cache).
    ASSERT_EQ(store.Put("alpha", "tiny"), Status::kOk);
    ASSERT_EQ(fs->get()->Sync(), Status::kOk);
    KvStore cold(p, fs->get(), 4);
    got = cold.Get("alpha");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)->value, "tiny");
    EXPECT_EQ((*got)->sum, BodySum("tiny"));

    // Bounds: oversized values and bad keys are rejected before the fs.
    EXPECT_EQ(store.Put("alpha", std::string(kMaxValueBytes + 1, 'v')),
              Status::kErrOutOfRange);
    EXPECT_EQ(store.Put("", "v"), Status::kErrOutOfRange);
    EXPECT_EQ(store.Put(std::string(kMaxKeyBytes + 1, 'k'), "v"), Status::kErrOutOfRange);

    // More keys than cache entries: eviction, then read-through refills.
    for (int i = 0; i < 6; ++i) {
      const std::string key = "evict" + std::to_string(i);
      ASSERT_EQ(store.Put(key, MakeValue(key, 0, 32)), Status::kOk);
    }
    for (int i = 0; i < 6; ++i) {
      const std::string key = "evict" + std::to_string(i);
      got = store.Get(key);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ((*got)->value, MakeValue(key, 0, 32)) << key;
    }
    EXPECT_GE(store.stats().misses, 2u);  // The evicted ones read through.

    ASSERT_EQ(fs->get()->Sync(), Status::kOk);
    EXPECT_EQ(fs->get()->Fsck(), Status::kOk) << fs->get()->fsck_error();
    done = true;
  });
  ASSERT_TRUE(proc.ok());
  rig.kernel.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.kernel.audit_failures(), 0u) << rig.kernel.first_audit_failure();
}

TEST(TraceMarkTest, AppMarksLandInTheRing) {
  Rig rig(/*cpus=*/1, /*phys_pages=*/256, /*disk_blocks=*/64);
  bool done = false;
  Process proc(rig.kernel, [&](Process& p) {
    TraceSession trace(p);
    TraceConfig config;
    config.mask = xtrace::Bit(xtrace::Event::kAppMark);
    ASSERT_EQ(trace.Bind(config), Status::kOk);
    ASSERT_EQ(p.kernel().SysTraceMark(42, 0, 7, 99), Status::kOk);
    ASSERT_EQ(p.kernel().SysTraceMark(42, 1, 200, 128), Status::kOk);
    std::vector<xtrace::Record> records;
    trace.Drain(records);
    ASSERT_EQ(records.size(), 2u);
    for (const xtrace::Record& r : records) {
      EXPECT_EQ(static_cast<xtrace::Event>(r.type), xtrace::Event::kAppMark);
      EXPECT_EQ(r.env, p.id());
      EXPECT_EQ(r.arg0, 42u);
    }
    EXPECT_EQ(records[0].arg1, 0u);
    EXPECT_EQ(records[0].arg2, 7u);
    EXPECT_EQ(records[0].arg3, 99u);
    EXPECT_EQ(records[1].arg1, 1u);
    EXPECT_EQ(records[1].arg2, 200u);
    EXPECT_EQ(records[1].arg3, 128u);
    EXPECT_GE(records[1].cycle, records[0].cycle);
    ASSERT_EQ(trace.Close(), Status::kOk);
    done = true;
  });
  ASSERT_TRUE(proc.ok());
  rig.kernel.Run();
  EXPECT_TRUE(done);
}

// --- The whole system: loadgen against the sharded server, ASH on ---

TEST(KvServerTest, EndToEndServesLoadWithAshFastPath) {
  Rig rig(/*cpus=*/2);
  KvServerConfig config;
  config.iface = ServerIface();
  config.workers = 2;
  config.use_rings = true;
  config.use_ash = true;
  config.hot_keys = {LoadKeyName(0)};
  config.ash_peer_ip = 2;
  config.ash_peer_port = 7999;
  config.preload = MakePreload(12, 64);
  config.stride_slices_per_cpu = 400;
  KvServer server(rig.kernel, config);
  ASSERT_TRUE(server.ok());

  WorkloadConfig workload;
  workload.seed = 7;
  workload.requests = 160;
  workload.keys = 12;
  workload.put_per_mille = 150;
  workload.trace = true;
  workload.slo_cycles = 25'000;  // 1ms first-send->ack budget.
  LoadGenTarget target;
  target.iface = ClientIface();
  target.server_ip = 1;
  target.server_port = config.port;
  target.workers = config.workers;
  target.hot_key = LoadKeyName(0);

  LoadStats stats;
  Process client(rig.kernel, [&](Process& p) { stats = RunLoadGen(p, target, workload); });
  ASSERT_TRUE(client.ok());
  rig.kernel.Run();

  // Every data request and both QUITs acknowledged; nothing corrupt.
  EXPECT_EQ(stats.acked, workload.requests + config.workers);
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_EQ(stats.unexpected, 0u);
  EXPECT_EQ(stats.deadline_hit, 0u);
  EXPECT_GT(stats.ok_200, 0u);
  EXPECT_GT(stats.created_201, 0u);
  EXPECT_GT(stats.latency.count, 0u);
  EXPECT_GT(stats.hot_latency.count, 0u);
  EXPECT_GE(stats.latency.p999, stats.latency.p50);
  EXPECT_GT(stats.Rps(), 0.0);

  // The hot key is answered at interrupt level, and the trace ring saw
  // both the ring path and the ASH path.
  EXPECT_GT(server.TotalAshHits(), 0u);
  EXPECT_GT(stats.stages.path_ash, 0u);
  EXPECT_GT(stats.stages.path_ring, 0u);
  EXPECT_GT(stats.stages.service.count, 0u);

  // Per-request critical paths assembled end to end. A ring-wait span can
  // only exist if the kernel demux copied the request-id tag out of the
  // frame (kDpfMatch arg3) AND the worker's enter mark joined to it —
  // library marks alone cannot produce this span, so its presence is the
  // proof the kernel half of the join works live.
  EXPECT_GT(stats.reqs.timelines, 0u);
  EXPECT_GT(
      stats.reqs.span[static_cast<uint32_t>(reqtrace::Span::kRingWait)].count,
      0u);
  EXPECT_GT(stats.reqs.covered.count, 0u);
  // Spans telescope, so each covered total is exactly the distance between
  // that request's first and last observed boundary: p50 coverage of the
  // end-to-end anchored pool can approach but never exceed the measured
  // send->ack p50's order of magnitude. Sanity-bound it loosely here (the
  // >=90% contract is the bench's job, with controlled load).
  EXPECT_LE(stats.reqs.covered.p50, stats.latency.max);

  // SLO accounting: every acked data request landed in exactly one bucket.
  EXPECT_EQ(stats.slo.slo_cycles, workload.slo_cycles);
  EXPECT_EQ(stats.slo.good + stats.slo.late,
            static_cast<uint64_t>(workload.requests));
  EXPECT_EQ(stats.slo.shed, 0u);
  EXPECT_GT(stats.slo.good, 0u);

  // Both shards served traffic (each at least its QUIT) and exited
  // cleanly under the supervisor; fast-path hits plus worker requests
  // cover every acknowledged request.
  EXPECT_TRUE(server.AllWorkersDone());
  EXPECT_TRUE(server.supervisor().finished());
  EXPECT_EQ(server.supervisor().total_restarts(), 0u);
  uint64_t worker_requests = 0;
  for (uint32_t i = 0; i < config.workers; ++i) {
    const WorkerStats& ws = server.worker_stats(i);
    EXPECT_GE(ws.requests, 1u) << "worker " << i;
    EXPECT_EQ(ws.quits, 1u) << "worker " << i;
    EXPECT_EQ(ws.setup_failures, 0u) << "worker " << i;
    EXPECT_EQ(ws.incarnations, 1u) << "worker " << i;
    // Every stage mark the worker emitted was accepted by the kernel
    // (satellite 1: failures are counted now, never discarded).
    EXPECT_EQ(ws.trace_mark_failures, 0u) << "worker " << i;
    worker_requests += ws.requests;
  }
  EXPECT_GE(worker_requests + server.TotalAshHits(), stats.acked);

  EXPECT_EQ(rig.kernel.audit_failures(), 0u) << rig.kernel.first_audit_failure();
}

// Satellite 3 at system level: a stream heavy with malformed and
// oversized requests is all answered 400 — the worker never crashes.
TEST(KvServerTest, MalformedStormLeavesWorkersStanding) {
  Rig rig(/*cpus=*/1);
  KvServerConfig config;
  config.iface = ServerIface();
  config.workers = 1;
  config.use_rings = true;
  config.preload = MakePreload(8, 48);
  KvServer server(rig.kernel, config);
  ASSERT_TRUE(server.ok());

  WorkloadConfig workload;
  workload.seed = 11;
  workload.requests = 120;
  workload.keys = 8;
  workload.value_bytes = 48;
  workload.put_per_mille = 100;
  workload.malformed_per_mille = 500;
  workload.oversized_per_mille = 200;
  LoadGenTarget target;
  target.iface = ClientIface();
  target.server_ip = 1;
  target.server_port = config.port;
  target.workers = 1;

  LoadStats stats;
  Process client(rig.kernel, [&](Process& p) { stats = RunLoadGen(p, target, workload); });
  ASSERT_TRUE(client.ok());
  rig.kernel.Run();

  EXPECT_EQ(stats.acked, workload.requests + 1);
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_EQ(stats.unexpected, 0u);
  EXPECT_GT(stats.bad_400, 0u);

  const WorkerStats& ws = server.worker_stats(0);
  EXPECT_EQ(ws.incarnations, 1u);  // Never crashed, never restarted.
  EXPECT_EQ(ws.setup_failures, 0u);
  EXPECT_TRUE(ws.done);
  EXPECT_GT(ws.bad_requests, 0u);
  EXPECT_EQ(server.supervisor().total_restarts(), 0u);
  EXPECT_EQ(rig.kernel.audit_failures(), 0u) << rig.kernel.first_audit_failure();
}

// Satellite 2 at system level: two workers split the key space via the
// shard atoms; a shallower catch-all bound to the same port is starved
// (deepest match wins), and rebinding a worker's exact filter is refused.
TEST(KvServerTest, TwoWorkerShardSplitStarvesCatchAll) {
  Rig rig(/*cpus=*/2);
  KvServerConfig config;
  config.iface = ServerIface();
  config.workers = 2;
  config.use_rings = true;
  config.preload = MakePreload(12, 64);
  KvServer server(rig.kernel, config);
  ASSERT_TRUE(server.ok());

  WorkloadConfig workload;
  workload.seed = 13;
  workload.requests = 300;
  workload.keys = 12;
  workload.put_per_mille = 0;  // GET-only: pure demux behaviour.
  LoadGenTarget target;
  target.iface = ClientIface();
  target.server_ip = 1;
  target.server_port = config.port;
  target.workers = 2;

  LoadStats stats;
  Process client(rig.kernel, [&](Process& p) { stats = RunLoadGen(p, target, workload); });
  ASSERT_TRUE(client.ok());

  bool catch_all_checked = false;
  Process catch_all(rig.kernel, [&](Process& p) {
    // Wait until both workers are serving, so our shallow filter cannot
    // transiently be the only match for early frames.
    while (server.worker_stats(0).requests == 0 || server.worker_stats(1).requests == 0) {
      p.kernel().SysSleep(20'000);
    }
    // A second consumer may not rebind a worker's exact filter...
    UdpSocket dup(p, ServerIface());
    EXPECT_NE(dup.Bind(config.port, {KvServer::ShardAtom(0, 2)}), Status::kOk);
    // ...but a distinct, shallower claim on the same port is legal.
    UdpSocket sock(p, ServerIface());
    ASSERT_EQ(sock.Bind(config.port), Status::kOk);
    while (!server.AllWorkersDone()) {
      p.kernel().SysSleep(20'000);
    }
    // Every frame matched a deeper shard filter first: nothing for us.
    Result<Datagram> got = sock.Recv(/*blocking=*/false);
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.status(), Status::kErrWouldBlock);
    (void)sock.Close();
    catch_all_checked = true;
  });
  ASSERT_TRUE(catch_all.ok());
  rig.kernel.Run();

  EXPECT_TRUE(catch_all_checked);
  EXPECT_EQ(stats.acked, workload.requests + 2);
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_EQ(stats.unexpected, 0u);

  // Both shards served their split of the key space.
  uint32_t shard_keys[2] = {0, 0};
  for (uint32_t i = 0; i < workload.keys; ++i) {
    ++shard_keys[server.ShardOf(LoadKeyName(i))];
  }
  uint64_t total_gets = 0;
  for (uint32_t i = 0; i < 2; ++i) {
    const WorkerStats& ws = server.worker_stats(i);
    EXPECT_GE(ws.requests, 1u) << "worker " << i;  // At least its QUIT.
    EXPECT_EQ(ws.quits, 1u);
    if (shard_keys[i] > 0) {
      EXPECT_GT(ws.gets, 0u) << "worker " << i << " owns " << shard_keys[i] << " keys";
    }
    total_gets += ws.gets;
  }
  // Acked 200s = data GETs + the two QUITs; the workers saw every one.
  EXPECT_GE(total_gets + 2, stats.ok_200);
  EXPECT_EQ(rig.kernel.audit_failures(), 0u) << rig.kernel.first_audit_failure();
}

// The same HTTP text over the application-level reliable transport: the
// parser sees delivered bytes, not a transport (tentpole: "HTTP over RDP").
TEST(RdpHttpTest, HttpRequestOverRdpRoundTrip) {
  Rig rig(/*cpus=*/1, /*phys_pages=*/512, /*disk_blocks=*/64);
  bool served = false;
  Process http_server(rig.kernel, [&](Process& p) {
    UdpSocket sock(p, ServerIface());
    ASSERT_EQ(sock.Bind(7300), Status::kOk);
    RdpEndpoint rdp(p, sock, RdpEndpoint::Config{.peer_ip = 2, .peer_port = 7301});
    Result<std::vector<uint8_t>> msg = rdp.Recv();
    ASSERT_TRUE(msg.ok());
    ASSERT_GE(msg->size(), kReqHeaderBytes);
    const uint32_t req_id = net::GetBe32(*msg, 1);
    HttpRequest req;
    ASSERT_EQ(ParseHttpRequest({msg->data() + kReqHeaderBytes,
                                msg->size() - kReqHeaderBytes}, &req),
              ParseError::kOk);
    EXPECT_EQ(req.method, Method::kGet);
    EXPECT_EQ(req.key, "alpha");
    const std::string text = BuildHttpResponse(200, "hello over rdp");
    std::vector<uint8_t> resp(kRespHeaderBytes + text.size());
    net::PutBe32(resp, 0, req_id);
    std::copy(text.begin(), text.end(), resp.begin() + kRespHeaderBytes);
    ASSERT_EQ(rdp.Send(resp), Status::kOk);
    // Two-generals tail: re-ACK retransmissions for a grace period.
    for (int i = 0; i < 4; ++i) {
      rdp.PumpAcks();
      p.kernel().SysSleep(5'000);
    }
    served = true;
  });
  bool answered = false;
  Process http_client(rig.kernel, [&](Process& p) {
    UdpSocket sock(p, ClientIface());
    ASSERT_EQ(sock.Bind(7301), Status::kOk);
    p.kernel().SysSleep(10'000);  // Let the server bind first.
    RdpEndpoint rdp(p, sock, RdpEndpoint::Config{.peer_ip = 1, .peer_port = 7300});
    const auto payload = BuildRequestPayload(77, BuildGetRequest("alpha"), "alpha");
    ASSERT_EQ(rdp.Send(payload), Status::kOk);
    Result<std::vector<uint8_t>> reply = rdp.Recv();
    ASSERT_TRUE(reply.ok());
    HttpResponseView view;
    ASSERT_TRUE(ParseResponsePayload(*reply, &view));
    EXPECT_EQ(view.req_id, 77u);
    EXPECT_EQ(view.status, 200);
    EXPECT_EQ(view.body, "hello over rdp");
    EXPECT_TRUE(view.sum_ok);
    answered = true;
  });
  ASSERT_TRUE(http_server.ok());
  ASSERT_TRUE(http_client.ok());
  rig.kernel.Run();
  EXPECT_TRUE(served);
  EXPECT_TRUE(answered);
  EXPECT_EQ(rig.kernel.audit_failures(), 0u) << rig.kernel.first_audit_failure();
}

// --- Overload control and graceful degradation (PR 8) ---

TEST(HttpParserTest, ResponseDecorationsRoundTrip) {
  // Default options are byte-identical to the undecorated builder: the
  // overload machinery disarmed leaves the seed wire format untouched.
  EXPECT_EQ(BuildHttpResponse(200, "v", BodySum("v"), ResponseOptions{}),
            BuildHttpResponse(200, "v"));

  const std::string body = "cached-value";
  const std::string text = BuildHttpResponse(
      200, body, BodySum(body), ResponseOptions{.retry_after_us = 350, .stale = true});
  std::vector<uint8_t> payload(kRespHeaderBytes + text.size());
  net::PutBe32(payload, 0, 42);
  std::copy(text.begin(), text.end(), payload.begin() + kRespHeaderBytes);
  HttpResponseView view;
  ASSERT_TRUE(ParseResponsePayload(payload, &view));
  EXPECT_EQ(view.req_id, 42u);
  EXPECT_EQ(view.status, 200);
  EXPECT_EQ(view.body, body);
  EXPECT_TRUE(view.sum_ok);
  EXPECT_TRUE(view.stale);
  EXPECT_EQ(view.retry_after_us, 350u);

  // The envelope's 64-bit deadline survives the two-word big-endian split.
  const uint64_t deadline = 0x123456789abcdef0ull;
  const auto req = BuildRequestPayload(7, BuildGetRequest("k"), "k", -1, deadline);
  EXPECT_EQ(RequestDeadline(req), deadline);
  EXPECT_EQ(RequestDeadline(BuildRequestPayload(8, BuildGetRequest("k"), "k")), 0u);
}

// A reply copied out of the recv buffer (HttpResponseView's views point
// into the datagram, which dies with the loop iteration).
struct OwnedReply {
  int status = 0;
  bool stale = false;
  uint32_t retry_after_us = 0;
  bool sum_ok = false;
  std::string body;
};

// Sends `payload` and polls until the reply echoing its request id
// arrives, retransmitting every ~1M cycles (the worker may be booting, or
// stuck in a multi-million-cycle failing disk retry). Replies to other
// ids — dups of earlier retransmitted requests — are ignored.
bool Rpc(Process& p, UdpSocket& sock, const std::vector<uint8_t>& payload,
         OwnedReply* out, int max_transmits = 200) {
  const uint32_t want = net::GetBe32(payload, 1);
  for (int t = 0; t < max_transmits; ++t) {
    if (sock.SendTo(/*dst_ip=*/1, /*dst_port=*/7080, payload) != Status::kOk) {
      return false;
    }
    const uint64_t until = p.kernel().SysGetCycles() + 1'000'000;
    while (p.kernel().SysGetCycles() < until) {
      Result<Datagram> got = sock.Recv(/*blocking=*/false);
      if (got.ok()) {
        HttpResponseView view;
        if (ParseResponsePayload(got->payload, &view) && view.req_id == want) {
          out->status = view.status;
          out->stale = view.stale;
          out->retry_after_us = view.retry_after_us;
          out->sum_ok = view.sum_ok;
          out->body = std::string(view.body);
          return true;
        }
        continue;
      }
      p.kernel().SysSleep(20'000);
    }
  }
  return false;
}

// Tentpole: requests carry an absolute deadline in the envelope; expired
// work is shed before any parse cost — no reply, one counter tick.
TEST(KvServerTest, ExpiredRequestsShedBeforeParse) {
  Rig rig(/*cpus=*/1);
  KvServerConfig config;
  config.iface = ServerIface();
  config.workers = 1;
  config.use_rings = true;
  config.preload = MakePreload(4, 48);
  KvServer server(rig.kernel, config);
  ASSERT_TRUE(server.ok());

  bool client_done = false;
  Process client(rig.kernel, [&](Process& p) {
    UdpSocket sock(p, ClientIface());
    ASSERT_EQ(sock.Bind(7999), Status::kOk);
    OwnedReply reply;
    // Warm up: the worker spends tens of millions of cycles formatting
    // its journaled fs before it binds the shard filter.
    ASSERT_TRUE(Rpc(p, sock, BuildRequestPayload(1, BuildGetRequest("k000"), "k000"),
                    &reply));
    EXPECT_EQ(reply.status, 200);
    EXPECT_FALSE(reply.stale);

    // Deadline cycle 1 is long past: the worker must shed it silently.
    const auto expired =
        BuildRequestPayload(2, BuildGetRequest("k001"), "k001", -1, /*deadline=*/1);
    ASSERT_EQ(sock.SendTo(1, config.port, expired), Status::kOk);

    // A live request behind it in the ring is still served (FIFO order
    // proves the expired one was seen first and dropped).
    ASSERT_TRUE(Rpc(p, sock, BuildRequestPayload(3, BuildGetRequest("k000"), "k000"),
                    &reply));
    EXPECT_EQ(reply.status, 200);

    // A generous future deadline is honored, not shed.
    const uint64_t future = p.kernel().SysGetCycles() + 500'000'000ull;
    ASSERT_TRUE(Rpc(p, sock, BuildRequestPayload(4, BuildGetRequest("k000"), "k000",
                                                 -1, future),
                    &reply));
    EXPECT_EQ(reply.status, 200);

    ASSERT_TRUE(Rpc(p, sock, BuildRequestPayload(5, BuildQuitRequest(), "",
                                                 /*shard_override=*/0),
                    &reply));
    EXPECT_EQ(reply.status, 200);
    (void)sock.Close();
    client_done = true;
  });
  ASSERT_TRUE(client.ok());
  rig.kernel.Run();

  EXPECT_TRUE(client_done);
  const WorkerStats& ws = server.worker_stats(0);
  EXPECT_EQ(ws.expired, 1u);
  EXPECT_EQ(ws.incarnations, 1u);
  EXPECT_TRUE(ws.done);
  EXPECT_EQ(rig.kernel.audit_failures(), 0u) << rig.kernel.first_audit_failure();
}

// Tentpole: a persistent journal-disk media fault mid-service flips the
// worker to read-only degraded mode — stale cache GETs, 503 PUTs with
// Retry-After — and a probe Sync resumes journaling when the fault
// clears, all inside one incarnation (restarting cannot fix a disk).
TEST(KvServerTest, JournalDiskErrorDegradesToReadOnlyAndRecovers) {
  Rig rig(/*cpus=*/1);
  KvServerConfig config;
  config.iface = ServerIface();
  config.workers = 1;
  config.use_rings = true;
  config.preload = MakePreload(4, 48);
  config.sync_every_puts = 1;  // Every PUT forces a durability point.
  // Big enough that no block is ever evicted: the same-size overwrite in
  // the fault window must be pure cache (a read miss would hit the dying
  // disk during Put and muddy which op trips the degraded entry).
  config.fs_cache_slots = 32;
  KvServer server(rig.kernel, config);
  ASSERT_TRUE(server.ok());

  bool client_done = false;
  Process client(rig.kernel, [&](Process& p) {
    UdpSocket sock(p, ClientIface());
    ASSERT_EQ(sock.Bind(7999), Status::kOk);
    OwnedReply reply;
    uint32_t id = 0;
    auto get = [&](const std::string& key) {
      EXPECT_TRUE(Rpc(p, sock, BuildRequestPayload(++id, BuildGetRequest(key), key),
                      &reply))
          << "GET " << key;
      return reply;
    };
    auto put = [&](const std::string& key, const std::string& value) {
      EXPECT_TRUE(Rpc(p, sock,
                      BuildRequestPayload(++id, BuildPutRequest(key, value), key),
                      &reply))
          << "PUT " << key;
      return reply;
    };

    // Healthy: preloaded reads are fresh, a new key journals to disk.
    EXPECT_EQ(get("k000").status, 200);
    EXPECT_FALSE(reply.stale);
    EXPECT_EQ(reply.body, MakeValue("k000", 0, 48));
    EXPECT_EQ(put("fresh0", MakeValue("fresh0", 0, 48)).status, 201);
    // Wait for the cadence Sync behind that PUT to land before opening
    // the fault window: replies flush before the durability point, so a
    // fixed sleep can arm the fault mid-checkpoint and make the *healthy*
    // PUT's Sync the degraded trigger instead of the overwrite's.
    while (server.worker_stats(0).syncs < 1) {
      p.kernel().SysSleep(500'000);
    }

    // Media fault: every non-barrier transfer for the next 40M cycles
    // fails like a dying platter (bounded retries included).
    const uint64_t window_end = rig.machine.clock().now() + 40'000'000ull;
    rig.disk.SetErrorWindow(rig.machine.clock().now(), window_end);

    // A same-size overwrite lands in the write-back cache (201) but the
    // forced Sync behind it hits the fault: the worker enters read-only
    // degraded mode with the dirty block pinned in cache.
    EXPECT_EQ(put("k000", MakeValue("k000", 1, 48)).status, 201);

    // Degraded reads: cached keys come back stale (the overwrite's value
    // — the cache is the freshest copy in the building), uncached keys
    // are 503 come-back-later, never 404 (the platter may hold them).
    EXPECT_EQ(get("k000").status, 200);
    EXPECT_TRUE(reply.stale);
    EXPECT_TRUE(reply.sum_ok);
    EXPECT_EQ(reply.body, MakeValue("k000", 1, 48));
    EXPECT_EQ(get("nevermore").status, 503);
    EXPECT_GT(reply.retry_after_us, 0u);

    // Degraded writes: refused outright, with a pacing hint.
    EXPECT_EQ(put("fresh1", MakeValue("fresh1", 0, 48)).status, 503);
    EXPECT_EQ(reply.body, "read-only");
    EXPECT_GT(reply.retry_after_us, 0u);

    // Outlast the fault (plus a failing-probe's worth of retry latency);
    // the worker's timed probe Sync lands and journaling resumes.
    while (rig.machine.clock().now() < window_end + 8'000'000ull) {
      p.kernel().SysSleep(1'000'000);
    }
    EXPECT_EQ(put("fresh2", MakeValue("fresh2", 0, 48)).status, 201);
    EXPECT_EQ(get("fresh2").status, 200);
    EXPECT_FALSE(reply.stale);
    EXPECT_EQ(get("nevermore").status, 404);  // Normal service: a real miss.

    EXPECT_TRUE(Rpc(p, sock, BuildRequestPayload(++id, BuildQuitRequest(), "",
                                                 /*shard_override=*/0),
                    &reply));
    EXPECT_EQ(reply.status, 200);
    (void)sock.Close();
    client_done = true;
  });
  ASSERT_TRUE(client.ok());
  rig.kernel.Run();

  EXPECT_TRUE(client_done);
  const WorkerStats& ws = server.worker_stats(0);
  EXPECT_EQ(ws.degraded_entries, 1u);
  EXPECT_EQ(ws.degraded_exits, 1u);
  EXPECT_GE(ws.stale_serves, 1u);
  EXPECT_GE(ws.shed_writes, 1u);
  EXPECT_EQ(ws.incarnations, 1u);  // Degradation is not the crash path.
  EXPECT_EQ(ws.store_crashes, 0u);
  EXPECT_TRUE(ws.done);
  EXPECT_EQ(server.supervisor().total_restarts(), 0u);
  EXPECT_EQ(rig.kernel.audit_failures(), 0u) << rig.kernel.first_audit_failure();
}

}  // namespace
}  // namespace xok::exos::server
