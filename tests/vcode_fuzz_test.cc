// Differential fuzzing of the downloaded-code safety story: random
// instruction streams are thrown at the verifier; everything the verifier
// accepts must execute within the static bound and stay inside the
// sandbox. This is the load-bearing guarantee behind ASHs ("the execution
// time of downloaded code can be readily bounded", §3.2.1) — a verifier
// bug would let an application wedge or corrupt the kernel.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/rand.h"
#include "src/vcode/vcode.h"

namespace xok::vcode {
namespace {

Insn RandomInsn(SplitMix64& rng, size_t program_len) {
  Insn insn;
  insn.op = static_cast<Op>(rng.NextBelow(static_cast<uint64_t>(Op::kReject) + 1));
  insn.a = static_cast<uint8_t>(rng.NextBelow(18));       // Sometimes out of range.
  insn.b = static_cast<uint8_t>(rng.NextBelow(18));
  insn.imm = static_cast<uint32_t>(rng.Next());
  if (rng.NextBelow(4) == 0) {
    insn.imm &= 0xfff;  // Small immediates hit in-bounds paths more often.
  }
  insn.target = static_cast<uint32_t>(rng.NextBelow(program_len + 4));
  return insn;
}

TEST(VcodeFuzz, AcceptedProgramsTerminateWithinBoundAndStayInSandbox) {
  SplitMix64 rng(0x5eed);
  constexpr int kPrograms = 3000;
  int accepted = 0;

  // Canary-padded region: executing any accepted program must never touch
  // the canaries (the executor bounds-checks against region.size()).
  std::vector<uint8_t> arena(256 + 64, 0xcd);
  const std::span<uint8_t> region(&arena[32], 256);

  std::vector<uint8_t> msg(128);
  for (size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<uint8_t>(i);
  }

  std::vector<std::function<void(uint32_t(&)[kRegisters], uint32_t)>> hooks(2);
  int hook_calls = 0;
  hooks[0] = [&](uint32_t(&)[kRegisters], uint32_t) { ++hook_calls; };
  hooks[1] = hooks[0];

  for (int p = 0; p < kPrograms; ++p) {
    const size_t len = 1 + rng.NextBelow(40);
    std::vector<Insn> code;
    for (size_t i = 0; i < len; ++i) {
      code.push_back(RandomInsn(rng, len));
    }
    // Half the time, help the program end properly so more get accepted.
    if (rng.NextBelow(2) == 0) {
      code.back() = Insn{rng.NextBelow(2) == 0 ? Op::kAccept : Op::kReject, 0, 0, 0, 0};
    }
    Program program(code);
    if (Verify(program, 64, hooks.size()) != Status::kOk) {
      continue;
    }
    ++accepted;
    std::fill(region.begin(), region.end(), uint8_t{0});
    ExecEnv env{msg, region, &hooks};
    const ExecResult result = Execute(program, env);
    // Bounded runtime: forward-only branches mean at most `len` ops.
    EXPECT_LE(result.ops_executed, len) << "program " << p;
    // Sandbox: the canaries around the region are intact.
    for (int i = 0; i < 32; ++i) {
      ASSERT_EQ(arena[i], 0xcd) << "low canary, program " << p;
      ASSERT_EQ(arena[arena.size() - 1 - i], 0xcd) << "high canary, program " << p;
    }
  }
  // The fuzz must actually exercise the executor.
  EXPECT_GT(accepted, 60) << "verifier rejected almost everything; fuzz ineffective";
}

TEST(VcodeFuzz, RejectedProgramsIncludeEveryUnsafeClass) {
  // Sanity: the fuzz distribution actually produces each rejection class.
  SplitMix64 rng(0xfeed);
  int backward = 0;
  int fallthrough = 0;
  int bad_reg = 0;
  for (int p = 0; p < 4000; ++p) {
    const size_t len = 1 + rng.NextBelow(16);
    std::vector<Insn> code;
    for (size_t i = 0; i < len; ++i) {
      code.push_back(RandomInsn(rng, len));
    }
    Program program(code);
    if (Verify(program, 64, 2) == Status::kOk) {
      continue;
    }
    for (size_t pc = 0; pc < code.size(); ++pc) {
      const Insn& insn = code[pc];
      const bool is_branch = insn.op == Op::kBranchEqImm || insn.op == Op::kBranchNeImm ||
                             insn.op == Op::kBranchLtImm;
      if (is_branch && insn.target <= pc) {
        ++backward;
      }
      if (insn.a >= kRegisters && insn.op != Op::kHook) {
        ++bad_reg;
      }
    }
    if (code.back().op != Op::kAccept && code.back().op != Op::kReject) {
      ++fallthrough;
    }
  }
  EXPECT_GT(backward, 0);
  EXPECT_GT(fallthrough, 0);
  EXPECT_GT(bad_reg, 0);
}

}  // namespace
}  // namespace xok::vcode
