#include "src/hw/fiber.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace xok::hw {
namespace {

TEST(Fiber, PingPongBetweenTwoFibers) {
  std::vector<int> trace;
  Fiber main_fiber;
  Fiber* child_ptr = nullptr;
  Fiber child([&] {
    trace.push_back(1);
    Fiber::Switch(*child_ptr, main_fiber);
    trace.push_back(3);
    Fiber::Switch(*child_ptr, main_fiber);
    for (;;) {
      Fiber::Switch(*child_ptr, main_fiber);
    }
  });
  child_ptr = &child;

  trace.push_back(0);
  Fiber::Switch(main_fiber, child);
  trace.push_back(2);
  Fiber::Switch(main_fiber, child);
  trace.push_back(4);

  EXPECT_EQ(trace, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Fiber, ThreeWayRoundRobinPreservesStacks) {
  Fiber main_fiber;
  Fiber* fibers[3] = {nullptr, nullptr, nullptr};
  int counters[3] = {0, 0, 0};
  std::unique_ptr<Fiber> storage[3];

  for (int i = 0; i < 3; ++i) {
    storage[i] = std::make_unique<Fiber>([&, i] {
      int local = 0;  // Stack-local state must survive switches.
      for (;;) {
        ++local;
        counters[i] = local;
        Fiber::Switch(*fibers[i], main_fiber);
      }
    });
    fibers[i] = storage[i].get();
  }

  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      Fiber::Switch(main_fiber, *fibers[i]);
    }
  }
  EXPECT_EQ(counters[0], 5);
  EXPECT_EQ(counters[1], 5);
  EXPECT_EQ(counters[2], 5);
}

TEST(Fiber, DeepStackUsageSurvivesSwitch) {
  Fiber main_fiber;
  Fiber* child_ptr = nullptr;
  uint64_t result = 0;
  Fiber child([&] {
    // Use a chunk of stack to verify the fiber really has its own.
    volatile uint8_t buffer[64 * 1024];
    for (size_t i = 0; i < sizeof(buffer); ++i) {
      buffer[i] = static_cast<uint8_t>(i);
    }
    uint64_t sum = 0;
    for (size_t i = 0; i < sizeof(buffer); ++i) {
      sum += buffer[i];
    }
    result = sum;
    for (;;) {
      Fiber::Switch(*child_ptr, main_fiber);
    }
  });
  child_ptr = &child;
  Fiber::Switch(main_fiber, child);
  EXPECT_EQ(result, 64u * 1024u / 256u * (255u * 256u / 2u));
}

}  // namespace
}  // namespace xok::hw
