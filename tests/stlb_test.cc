#include "src/core/stlb.h"

#include <gtest/gtest.h>

#include <map>

#include "src/base/rand.h"

namespace xok::aegis {
namespace {

TEST(Stlb, MissesWhenEmpty) {
  Stlb stlb;
  EXPECT_EQ(stlb.Lookup(5, 1), nullptr);
}

TEST(Stlb, HitAfterInsert) {
  Stlb stlb;
  stlb.Insert(5, 1, 77, true);
  const Stlb::Entry* entry = stlb.Lookup(5, 1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->pfn, 77u);
  EXPECT_TRUE(entry->writable);
}

TEST(Stlb, AsidSeparation) {
  Stlb stlb;
  stlb.Insert(5, 1, 77, true);
  EXPECT_EQ(stlb.Lookup(5, 2), nullptr);
}

TEST(Stlb, InvalidateRemoves) {
  Stlb stlb;
  stlb.Insert(5, 1, 77, true);
  stlb.Invalidate(5, 1);
  EXPECT_EQ(stlb.Lookup(5, 1), nullptr);
}

TEST(Stlb, InvalidateWrongAsidIsNoop) {
  Stlb stlb;
  stlb.Insert(5, 1, 77, true);
  stlb.Invalidate(5, 2);
  EXPECT_NE(stlb.Lookup(5, 1), nullptr);
}

TEST(Stlb, FlushAsidRemovesAllForAsid) {
  Stlb stlb;
  for (hw::Vpn v = 0; v < 100; ++v) {
    stlb.Insert(v, 3, v, false);
    stlb.Insert(v, 4, v, false);
  }
  stlb.FlushAsid(3);
  int live3 = 0;
  int live4 = 0;
  for (hw::Vpn v = 0; v < 100; ++v) {
    live3 += stlb.Lookup(v, 3) != nullptr ? 1 : 0;
    live4 += stlb.Lookup(v, 4) != nullptr ? 1 : 0;
  }
  EXPECT_EQ(live3, 0);
  EXPECT_GT(live4, 0);
}

TEST(Stlb, FlushPfnRemovesAllMappingsOfFrame) {
  Stlb stlb;
  stlb.Insert(5, 1, 77, true);
  stlb.Insert(9, 2, 77, true);
  stlb.Insert(6, 1, 78, true);
  stlb.FlushPfn(77);
  EXPECT_EQ(stlb.Lookup(5, 1), nullptr);
  EXPECT_EQ(stlb.Lookup(9, 2), nullptr);
  EXPECT_NE(stlb.Lookup(6, 1), nullptr);
}

TEST(Stlb, DirectMappedConflictEvicts) {
  Stlb stlb;
  // Two VPNs hashing to the same slot: vpn and vpn ^ (asid<<7) structure
  // means vpn + kEntries collides for the same asid.
  stlb.Insert(5, 1, 10, true);
  stlb.Insert(5 + Stlb::kEntries, 1, 11, true);
  EXPECT_EQ(stlb.Lookup(5, 1), nullptr);  // Evicted by the conflict.
  ASSERT_NE(stlb.Lookup(5 + Stlb::kEntries, 1), nullptr);
  EXPECT_EQ(stlb.Lookup(5 + Stlb::kEntries, 1)->pfn, 11u);
}

// Property: the STLB never *invents* a translation — every hit matches the
// most recent insert for that (vpn, asid).
TEST(Stlb, PropertyNeverInventsMappings) {
  Stlb stlb;
  std::map<std::pair<hw::Vpn, hw::Asid>, std::pair<hw::PageId, bool>> model;
  SplitMix64 rng(17);
  for (int step = 0; step < 20000; ++step) {
    const hw::Vpn vpn = static_cast<hw::Vpn>(rng.NextBelow(1 << 14));
    const hw::Asid asid = static_cast<hw::Asid>(rng.NextBelow(8));
    switch (rng.NextBelow(3)) {
      case 0: {
        const hw::PageId pfn = static_cast<hw::PageId>(rng.NextBelow(1 << 16));
        const bool writable = rng.NextBelow(2) == 0;
        stlb.Insert(vpn, asid, pfn, writable);
        model[{vpn, asid}] = {pfn, writable};
        break;
      }
      case 1:
        stlb.Invalidate(vpn, asid);
        model.erase({vpn, asid});
        break;
      default: {
        const Stlb::Entry* entry = stlb.Lookup(vpn, asid);
        if (entry != nullptr) {
          auto it = model.find({vpn, asid});
          ASSERT_NE(it, model.end());
          EXPECT_EQ(entry->pfn, it->second.first);
          EXPECT_EQ(entry->writable, it->second.second);
        }
        break;
      }
    }
  }
}

}  // namespace
}  // namespace xok::aegis
