#include "src/core/aegis.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/dpf/tcpip_filters.h"
#include "src/hw/nic.h"
#include "src/net/wire.h"

namespace xok::aegis {
namespace {

class AegisTest : public ::testing::Test {
 protected:
  AegisTest()
      : machine_(hw::Machine::Config{.phys_pages = 256, .name = "aegis"}), kernel_(machine_) {}

  hw::Machine machine_;
  Aegis kernel_;
};

TEST_F(AegisTest, SingleEnvRunsAndExits) {
  bool ran = false;
  EnvSpec spec;
  spec.entry = [&] { ran = true; };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  EXPECT_TRUE(ran);
}

TEST_F(AegisTest, CreateEnvRequiresEntry) {
  EnvSpec spec;
  EXPECT_EQ(kernel_.CreateEnv(std::move(spec)).status(), Status::kErrInvalidArgs);
}

TEST_F(AegisTest, SysSelfReturnsEnvId) {
  EnvId seen = kNoEnv;
  EnvSpec spec;
  spec.entry = [&] { seen = kernel_.SysSelf(); };
  Result<EnvGrant> grant = kernel_.CreateEnv(std::move(spec));
  ASSERT_TRUE(grant.ok());
  kernel_.Run();
  EXPECT_EQ(seen, grant->env);
}

TEST_F(AegisTest, NullSyscallCostMatchesPaperScale) {
  uint64_t cost = 0;
  EnvSpec spec;
  spec.entry = [&] {
    const uint64_t t0 = machine_.clock().now();
    kernel_.SysNull();
    cost = machine_.clock().now() - t0;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  // Paper: Aegis null syscall ~1.6/2.3 us on the 5000/125 — an order of
  // magnitude under Ultrix. Ours should land in the same band (< 3 us).
  EXPECT_GT(hw::CyclesToMicros(cost), 0.5);
  EXPECT_LT(hw::CyclesToMicros(cost), 3.0);
}

TEST_F(AegisTest, TwoEnvsYieldPingPong) {
  std::vector<int> trace;
  EnvId id_a = kNoEnv;
  EnvId id_b = kNoEnv;
  EnvSpec a;
  a.entry = [&] {
    for (int i = 0; i < 3; ++i) {
      trace.push_back(1);
      kernel_.SysYield(id_b);
    }
  };
  EnvSpec b;
  b.entry = [&] {
    for (int i = 0; i < 3; ++i) {
      trace.push_back(2);
      kernel_.SysYield(id_a);
    }
  };
  Result<EnvGrant> ga = kernel_.CreateEnv(std::move(a));
  Result<EnvGrant> gb = kernel_.CreateEnv(std::move(b));
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  id_a = ga->env;
  id_b = gb->env;
  kernel_.Run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST_F(AegisTest, BlockAndWake) {
  std::vector<int> trace;
  EnvId sleeper_id = kNoEnv;
  cap::Capability sleeper_cap;
  EnvSpec sleeper;
  sleeper.entry = [&] {
    trace.push_back(1);
    kernel_.SysBlock();
    trace.push_back(3);
  };
  EnvSpec waker;
  waker.entry = [&] {
    // Let the sleeper run first and block.
    kernel_.SysYield(sleeper_id);
    trace.push_back(2);
    EXPECT_EQ(kernel_.SysWake(sleeper_id, sleeper_cap), Status::kOk);
  };
  Result<EnvGrant> gs = kernel_.CreateEnv(std::move(sleeper));
  ASSERT_TRUE(gs.ok());
  sleeper_id = gs->env;
  sleeper_cap = gs->cap;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(waker)).ok());
  kernel_.Run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST_F(AegisTest, WakeWithForgedCapabilityDenied) {
  EnvId sleeper_id = kNoEnv;
  cap::Capability sleeper_cap;
  bool woke_via_forgery = false;
  EnvSpec sleeper;
  sleeper.entry = [&] { kernel_.SysBlock(); };
  EnvSpec attacker;
  attacker.entry = [&] {
    kernel_.SysYield(sleeper_id);
    cap::Capability forged = sleeper_cap;
    forged.mac ^= 0xdead;
    EXPECT_EQ(kernel_.SysWake(sleeper_id, forged), Status::kErrAccessDenied);
    woke_via_forgery = false;
    // Clean up with the real capability so Run() terminates... it only
    // unblocks; the sleeper then exits.
    EXPECT_EQ(kernel_.SysWake(sleeper_id, sleeper_cap), Status::kOk);
  };
  Result<EnvGrant> gs = kernel_.CreateEnv(std::move(sleeper));
  ASSERT_TRUE(gs.ok());
  sleeper_id = gs->env;
  sleeper_cap = gs->cap;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(attacker)).ok());
  kernel_.Run();
  EXPECT_FALSE(woke_via_forgery);
}

TEST_F(AegisTest, TimerPreemptsComputeBoundEnvs) {
  // Two compute-bound environments with no voluntary yields must both make
  // progress: the slice timer preempts at charge boundaries.
  uint64_t progress[2] = {0, 0};
  bool other_ran_during[2] = {false, false};
  for (int i = 0; i < 2; ++i) {
    EnvSpec spec;
    spec.entry = [&, i] {
      for (int step = 0; step < 200; ++step) {
        machine_.Charge(hw::Instr(500));  // Compute.
        ++progress[i];
        if (progress[1 - i] > 0 && progress[1 - i] < 200) {
          other_ran_during[i] = true;
        }
      }
    };
    ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  }
  kernel_.Run();
  EXPECT_EQ(progress[0], 200u);
  EXPECT_EQ(progress[1], 200u);
  EXPECT_TRUE(other_ran_during[0] || other_ran_during[1]);
}

TEST_F(AegisTest, EpilogueOverrunForfeitsSlices) {
  // Env 0 burns far beyond the epilogue budget at every slice end; env 1
  // behaves. Env 1 must end up with at least as many slices.
  EnvId hog = kNoEnv;
  EnvSpec bad;
  bad.entry = [&] {
    for (int i = 0; i < 50; ++i) {
      machine_.Charge(kernel_.slice_cycles() / 2);
    }
  };
  bad.handlers.timer_epilogue = [&] { machine_.Charge(kEpilogueBudget * 10); };
  EnvSpec good;
  good.entry = [&] {
    for (int i = 0; i < 50; ++i) {
      machine_.Charge(kernel_.slice_cycles() / 2);
    }
  };
  Result<EnvGrant> gb = kernel_.CreateEnv(std::move(bad));
  ASSERT_TRUE(gb.ok());
  hog = gb->env;
  Result<EnvGrant> gg = kernel_.CreateEnv(std::move(good));
  ASSERT_TRUE(gg.ok());
  kernel_.Run();
  EXPECT_GE(kernel_.slices_of(gg->env), kernel_.slices_of(hog));
}

// --- Memory secure bindings ---

TEST_F(AegisTest, AllocMapAccessRoundTrip) {
  Status final_status = Status::kErrInternal;
  uint32_t readback = 0;
  EnvSpec spec;
  spec.entry = [&] {
    Result<PageGrant> grant = kernel_.SysAllocPage();
    ASSERT_TRUE(grant.ok());
    ASSERT_EQ(kernel_.SysTlbWrite(0x10000, grant->page, /*writable=*/true, grant->cap),
              Status::kOk);
    final_status = machine_.StoreWord(0x10000, 0xfeedface);
    Result<uint32_t> value = machine_.LoadWord(0x10000);
    ASSERT_TRUE(value.ok());
    readback = *value;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  EXPECT_EQ(final_status, Status::kOk);
  EXPECT_EQ(readback, 0xfeedfaceu);
}

TEST_F(AegisTest, SpecificPageRequestHonoured) {
  EnvSpec spec;
  spec.entry = [&] {
    Result<PageGrant> grant = kernel_.SysAllocPage(42);
    ASSERT_TRUE(grant.ok());
    EXPECT_EQ(grant->page, 42u);
    // Same frame again: already taken.
    EXPECT_EQ(kernel_.SysAllocPage(42).status(), Status::kErrAlreadyExists);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(AegisTest, TlbWriteWithoutCapabilityDenied) {
  EnvSpec spec;
  spec.entry = [&] {
    Result<PageGrant> grant = kernel_.SysAllocPage();
    ASSERT_TRUE(grant.ok());
    cap::Capability forged = grant->cap;
    forged.resource.index ^= 1;
    EXPECT_EQ(kernel_.SysTlbWrite(0x10000, grant->page, true, forged),
              Status::kErrAccessDenied);
    // Read-only capability cannot create a writable mapping.
    Result<cap::Capability> ro = kernel_.SysDeriveCap(grant->cap, cap::kRead);
    ASSERT_TRUE(ro.ok());
    EXPECT_EQ(kernel_.SysTlbWrite(0x10000, grant->page, true, *ro),
              Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysTlbWrite(0x10000, grant->page, false, *ro), Status::kOk);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(AegisTest, DeallocKillsOutstandingCapabilities) {
  EnvSpec spec;
  spec.entry = [&] {
    Result<PageGrant> grant = kernel_.SysAllocPage();
    ASSERT_TRUE(grant.ok());
    ASSERT_EQ(kernel_.SysDeallocPage(grant->page, grant->cap), Status::kOk);
    // The epoch moved: the old capability no longer binds, even though the
    // frame is free again.
    EXPECT_EQ(kernel_.SysTlbWrite(0x10000, grant->page, true, grant->cap),
              Status::kErrAccessDenied);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(AegisTest, SharedPageViaDerivedCapability) {
  // Env A allocates a page, writes a value, and hands a read-only derived
  // capability to env B (through plain shared state here; in ExOS this
  // travels through a PCT). B maps it read-only and reads A's value.
  cap::Capability ro_cap;
  hw::PageId shared_page = 0;
  bool handoff_done = false;
  uint32_t b_read = 0;
  Status b_write_status = Status::kOk;
  EnvId id_b = kNoEnv;

  EnvSpec a;
  a.entry = [&] {
    Result<PageGrant> grant = kernel_.SysAllocPage();
    ASSERT_TRUE(grant.ok());
    shared_page = grant->page;
    ASSERT_EQ(kernel_.SysTlbWrite(0x20000, grant->page, true, grant->cap), Status::kOk);
    ASSERT_EQ(machine_.StoreWord(0x20000, 0x5eed), Status::kOk);
    Result<cap::Capability> derived = kernel_.SysDeriveCap(grant->cap, cap::kRead);
    ASSERT_TRUE(derived.ok());
    ro_cap = *derived;
    handoff_done = true;
    kernel_.SysYield(id_b);
  };
  EnvSpec b;
  b.entry = [&] {
    while (!handoff_done) {
      kernel_.SysYield();
    }
    ASSERT_EQ(kernel_.SysTlbWrite(0x30000, shared_page, false, ro_cap), Status::kOk);
    Result<uint32_t> value = machine_.LoadWord(0x30000);
    ASSERT_TRUE(value.ok());
    b_read = *value;
    b_write_status = machine_.StoreWord(0x30000, 1);  // Must fault: read-only.
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(a)).ok());
  Result<EnvGrant> gb = kernel_.CreateEnv(std::move(b));
  ASSERT_TRUE(gb.ok());
  id_b = gb->env;
  kernel_.Run();
  EXPECT_EQ(b_read, 0x5eedu);
  EXPECT_EQ(b_write_status, Status::kErrAccessDenied);
}

TEST_F(AegisTest, StlbAbsorbsRepeatMisses) {
  EnvSpec spec;
  spec.entry = [&] {
    Result<PageGrant> grant = kernel_.SysAllocPage();
    ASSERT_TRUE(grant.ok());
    ASSERT_EQ(kernel_.SysTlbWrite(0x40000, grant->page, true, grant->cap), Status::kOk);
    // Evict from the hardware TLB by thrashing other ASID mappings is hard
    // from one env; instead invalidate the hardware TLB directly and rely
    // on the STLB for the refill.
    machine_.tlb().FlushAll();
    const uint64_t hits_before = kernel_.stlb_hits();
    ASSERT_TRUE(machine_.LoadWord(0x40000).ok());
    EXPECT_EQ(kernel_.stlb_hits(), hits_before + 1);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

// --- Exceptions ---

TEST_F(AegisTest, ExceptionsDispatchToApplicationHandler) {
  std::vector<hw::ExceptionType> seen;
  EnvSpec spec;
  spec.handlers.exception = [&](const hw::TrapFrame& frame) {
    seen.push_back(frame.type);
    return ExcAction::kSkip;
  };
  spec.entry = [&] {
    (void)machine_.LoadWord(0x50001);               // Unaligned.
    (void)machine_.AddOverflow(0x7fffffff, 1);      // Overflow.
    (void)machine_.CoprocOp();                      // Coprocessor unusable.
    (void)machine_.LoadWord(0x50000);               // TLB miss, unhandled.
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], hw::ExceptionType::kAddressError);
  EXPECT_EQ(seen[1], hw::ExceptionType::kOverflow);
  EXPECT_EQ(seen[2], hw::ExceptionType::kCoprocUnusable);
  EXPECT_EQ(seen[3], hw::ExceptionType::kTlbMissLoad);
}

TEST_F(AegisTest, ApplicationHandlerCanFixFaultAndRetry) {
  // An application-level pager: on TLB miss, allocate and map the page.
  int faults = 0;
  EnvSpec spec;
  spec.handlers.exception = [&](const hw::TrapFrame& frame) {
    if (frame.type != hw::ExceptionType::kTlbMissLoad &&
        frame.type != hw::ExceptionType::kTlbMissStore) {
      return ExcAction::kSkip;
    }
    ++faults;
    Result<PageGrant> grant = kernel_.SysAllocPage();
    if (!grant.ok()) {
      return ExcAction::kSkip;
    }
    if (kernel_.SysTlbWrite(frame.bad_vaddr, grant->page, true, grant->cap) != Status::kOk) {
      return ExcAction::kSkip;
    }
    return ExcAction::kRetry;
  };
  Status store_status = Status::kErrInternal;
  uint32_t value = 0;
  spec.entry = [&] {
    store_status = machine_.StoreWord(0x60000, 123);
    Result<uint32_t> read = machine_.LoadWord(0x60000);
    value = read.ok() ? *read : 0;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  EXPECT_EQ(store_status, Status::kOk);
  EXPECT_EQ(value, 123u);
  EXPECT_EQ(faults, 1);
}

// --- Protected control transfer ---

TEST_F(AegisTest, SyncPctTransfersArgumentsAndReply) {
  EnvId server_id = kNoEnv;
  EnvId observed_in_server = kNoEnv;
  EnvSpec server;
  server.handlers.pct_sync = [&](const PctArgs& args) {
    observed_in_server = kernel_.SysSelf();  // Runs in the callee's domain.
    PctArgs reply;
    reply.regs[0] = args.regs[0] + args.regs[1];
    return reply;
  };
  server.entry = [&] { kernel_.SysBlock(); };

  uint32_t sum = 0;
  cap::Capability server_cap;
  EnvSpec client;
  client.entry = [&] {
    PctArgs args;
    args.regs[0] = 30;
    args.regs[1] = 12;
    Result<PctArgs> reply = kernel_.SysPctCall(server_id, args);
    ASSERT_TRUE(reply.ok());
    sum = reply->regs[0];
    EXPECT_EQ(kernel_.SysSelf(), kernel_.current_env());
    // Unblock the server so the world can end.
    EXPECT_EQ(kernel_.SysWake(server_id, server_cap), Status::kOk);
  };
  Result<EnvGrant> gs = kernel_.CreateEnv(std::move(server));
  ASSERT_TRUE(gs.ok());
  server_id = gs->env;
  server_cap = gs->cap;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(client)).ok());
  kernel_.Run();
  EXPECT_EQ(sum, 42u);
  EXPECT_EQ(observed_in_server, server_id);

  // The server env is still blocked... it was woken; Run() finished, so
  // both exited.
}

TEST_F(AegisTest, PctToUnknownEnvFails) {
  EnvSpec spec;
  spec.entry = [&] {
    EXPECT_EQ(kernel_.SysPctCall(99, PctArgs{}).status(), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysPctSend(99, PctArgs{}), Status::kErrNotFound);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(AegisTest, PctWithoutEntryHandlerUnsupported) {
  EnvId plain_id = kNoEnv;
  cap::Capability plain_cap;
  EnvSpec plain;
  plain.entry = [&] { kernel_.SysBlock(); };  // Alive but no PCT entry.
  EnvSpec caller;
  caller.entry = [&] {
    kernel_.SysYield(plain_id);  // Let it block first.
    EXPECT_EQ(kernel_.SysPctCall(plain_id, PctArgs{}).status(), Status::kErrUnsupported);
    EXPECT_EQ(kernel_.SysWake(plain_id, plain_cap), Status::kOk);
  };
  Result<EnvGrant> gp = kernel_.CreateEnv(std::move(plain));
  ASSERT_TRUE(gp.ok());
  plain_id = gp->env;
  plain_cap = gp->cap;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(caller)).ok());
  kernel_.Run();
}

TEST_F(AegisTest, PctToExitedEnvNotFound) {
  EnvId dead_id = kNoEnv;
  EnvSpec dead;
  dead.entry = [&] {};  // Exits immediately.
  EnvSpec caller;
  caller.entry = [&] {
    kernel_.SysYield(dead_id);  // Let it exit.
    EXPECT_EQ(kernel_.SysPctCall(dead_id, PctArgs{}).status(), Status::kErrNotFound);
  };
  Result<EnvGrant> gd = kernel_.CreateEnv(std::move(dead));
  ASSERT_TRUE(gd.ok());
  dead_id = gd->env;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(caller)).ok());
  kernel_.Run();
}

TEST_F(AegisTest, NestedPctCallsCompose) {
  // Client -> proxy -> backend: a PCT handler may itself perform a PCT
  // (IPC libraries compose this way). Domains unwind correctly.
  EnvId proxy_id = kNoEnv;
  EnvId backend_id = kNoEnv;
  cap::Capability proxy_cap;
  cap::Capability backend_cap;
  std::vector<EnvId> domains_seen;

  EnvSpec backend;
  backend.handlers.pct_sync = [&](const PctArgs& args) {
    domains_seen.push_back(kernel_.SysSelf());
    PctArgs reply;
    reply.regs[0] = args.regs[0] * 2;
    return reply;
  };
  backend.entry = [&] { kernel_.SysBlock(); };

  EnvSpec proxy;
  proxy.handlers.pct_sync = [&](const PctArgs& args) {
    domains_seen.push_back(kernel_.SysSelf());
    PctArgs forwarded;
    forwarded.regs[0] = args.regs[0] + 1;
    Result<PctArgs> reply = kernel_.SysPctCall(backend_id, forwarded);
    // Back in the proxy's domain after the nested call.
    domains_seen.push_back(kernel_.SysSelf());
    return reply.ok() ? *reply : PctArgs{};
  };
  proxy.entry = [&] { kernel_.SysBlock(); };

  uint32_t final_value = 0;
  EnvSpec client;
  client.entry = [&] {
    kernel_.SysYield(proxy_id);
    kernel_.SysYield(backend_id);
    PctArgs args;
    args.regs[0] = 20;
    Result<PctArgs> reply = kernel_.SysPctCall(proxy_id, args);
    ASSERT_TRUE(reply.ok());
    final_value = reply->regs[0];
    EXPECT_EQ(kernel_.SysSelf(), kernel_.current_env());
    (void)kernel_.SysWake(proxy_id, proxy_cap);
    (void)kernel_.SysWake(backend_id, backend_cap);
  };
  Result<EnvGrant> gb = kernel_.CreateEnv(std::move(backend));
  Result<EnvGrant> gp = kernel_.CreateEnv(std::move(proxy));
  ASSERT_TRUE(gb.ok());
  ASSERT_TRUE(gp.ok());
  backend_id = gb->env;
  backend_cap = gb->cap;
  proxy_id = gp->env;
  proxy_cap = gp->cap;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(client)).ok());
  kernel_.Run();
  EXPECT_EQ(final_value, (20u + 1) * 2);
  ASSERT_EQ(domains_seen.size(), 3u);
  EXPECT_EQ(domains_seen[0], proxy_id);
  EXPECT_EQ(domains_seen[1], backend_id);
  EXPECT_EQ(domains_seen[2], proxy_id);  // Unwound to the proxy's domain.
}

TEST_F(AegisTest, PctArgsActAsRegisterMessageBuffer) {
  // "The large register sets of modern processors [can] be used as a
  // temporary message buffer" — all eight argument registers transfer.
  EnvId server_id = kNoEnv;
  cap::Capability server_cap;
  EnvSpec server;
  server.handlers.pct_sync = [&](const PctArgs& args) {
    PctArgs reply;
    for (size_t i = 0; i < args.regs.size(); ++i) {
      reply.regs[i] = args.regs[i] ^ 0xffffffffu;
    }
    return reply;
  };
  server.entry = [&] { kernel_.SysBlock(); };
  EnvSpec client;
  client.entry = [&] {
    kernel_.SysYield(server_id);
    PctArgs args;
    for (size_t i = 0; i < args.regs.size(); ++i) {
      args.regs[i] = 0x1000 + static_cast<uint32_t>(i);
    }
    Result<PctArgs> reply = kernel_.SysPctCall(server_id, args);
    ASSERT_TRUE(reply.ok());
    for (size_t i = 0; i < reply->regs.size(); ++i) {
      EXPECT_EQ(reply->regs[i], (0x1000u + i) ^ 0xffffffffu);
    }
    (void)kernel_.SysWake(server_id, server_cap);
  };
  Result<EnvGrant> gs = kernel_.CreateEnv(std::move(server));
  ASSERT_TRUE(gs.ok());
  server_id = gs->env;
  server_cap = gs->cap;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(client)).ok());
  kernel_.Run();
}

TEST_F(AegisTest, AsyncPctDeliveredBeforeCalleeResumes) {
  EnvId callee_id = kNoEnv;
  std::vector<uint32_t> delivered;
  EnvSpec callee;
  callee.handlers.pct_async = [&](const PctArgs& args) { delivered.push_back(args.regs[0]); };
  callee.entry = [&] {
    kernel_.SysBlock();  // Woken by the async PCT.
    // By the time the continuation resumes, the mailbox was drained.
    EXPECT_EQ(delivered.size(), 2u);
  };
  EnvSpec caller;
  caller.entry = [&] {
    kernel_.SysYield(callee_id);  // Let the callee block first.
    PctArgs m1;
    m1.regs[0] = 7;
    PctArgs m2;
    m2.regs[0] = 9;
    EXPECT_EQ(kernel_.SysPctSend(callee_id, m1), Status::kOk);
    EXPECT_EQ(kernel_.SysPctSend(callee_id, m2), Status::kOk);
  };
  Result<EnvGrant> gc = kernel_.CreateEnv(std::move(callee));
  ASSERT_TRUE(gc.ok());
  callee_id = gc->env;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(caller)).ok());
  kernel_.Run();
  EXPECT_EQ(delivered, (std::vector<uint32_t>{7, 9}));
}

// --- Revocation / abort protocol ---

TEST_F(AegisTest, VisibleRevocationLetsLibOsChooseVictims) {
  std::vector<hw::PageId> owned;
  std::vector<cap::Capability> caps;
  hw::PageId sacrificed = 0;
  EnvSpec spec;
  spec.handlers.revoke = [&](uint32_t pages) {
    // The libOS picks its *last* page as the victim (its choice!).
    for (uint32_t i = 0; i < pages && !owned.empty(); ++i) {
      sacrificed = owned.back();
      EXPECT_EQ(kernel_.SysDeallocPage(owned.back(), caps.back()), Status::kOk);
      owned.pop_back();
      caps.pop_back();
    }
  };
  EnvId self = kNoEnv;
  spec.entry = [&] {
    self = kernel_.SysSelf();
    for (int i = 0; i < 4; ++i) {
      Result<PageGrant> grant = kernel_.SysAllocPage();
      ASSERT_TRUE(grant.ok());
      owned.push_back(grant->page);
      caps.push_back(grant->cap);
    }
    const uint32_t free_before = kernel_.free_pages();
    ASSERT_EQ(kernel_.RevokePages(self, 1), Status::kOk);
    EXPECT_EQ(kernel_.free_pages(), free_before + 1);
    EXPECT_EQ(owned.size(), 3u);
    EXPECT_EQ(sacrificed, owned.size() > 0 ? sacrificed : 0);
    // Compliant: nothing repossessed.
    EXPECT_TRUE(kernel_.SysReadRepossessed().empty());
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(AegisTest, AbortProtocolRepossessesFromNonCompliantEnv) {
  std::vector<cap::Capability> caps;
  std::vector<hw::PageId> owned;
  EnvSpec spec;
  // No revoke handler: the env cannot comply -> abort protocol.
  spec.entry = [&] {
    const EnvId self = kernel_.SysSelf();
    for (int i = 0; i < 3; ++i) {
      Result<PageGrant> grant = kernel_.SysAllocPage();
      ASSERT_TRUE(grant.ok());
      owned.push_back(grant->page);
      caps.push_back(grant->cap);
      ASSERT_EQ(kernel_.SysTlbWrite(0x70000 + i * hw::kPageBytes, grant->page, true, grant->cap),
                Status::kOk);
    }
    ASSERT_EQ(kernel_.RevokePages(self, 2), Status::kOk);
    // Two pages are gone and recorded in the repossession vector.
    std::vector<hw::PageId> taken = kernel_.SysReadRepossessed();
    EXPECT_EQ(taken.size(), 2u);
    // The broken bindings really are broken: old capabilities are dead...
    EXPECT_EQ(kernel_.SysTlbWrite(0x90000, taken[0], true, caps[0]),
              Status::kErrAccessDenied);
    // ...and the vector reads empty once consumed.
    EXPECT_TRUE(kernel_.SysReadRepossessed().empty());
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

// --- Framebuffer binding ---

TEST_F(AegisTest, FramebufferTileBindingEnforced) {
  hw::Framebuffer fb(machine_, 64, 64);
  kernel_.AttachFramebuffer(&fb);
  EnvId id_a = kNoEnv;
  EnvSpec a;
  a.entry = [&] {
    id_a = kernel_.SysSelf();
    ASSERT_EQ(kernel_.SysBindFbTile(0, 0), Status::kOk);
    EXPECT_EQ(fb.WritePixel(id_a, 3, 3, 0xff00ff00), Status::kOk);
  };
  EnvSpec b;
  b.entry = [&] {
    const EnvId me = kernel_.SysSelf();
    // A's tile is taken.
    EXPECT_EQ(kernel_.SysBindFbTile(0, 0), Status::kErrAccessDenied);
    // Direct hardware access with the wrong tag fails in hardware.
    EXPECT_EQ(fb.WritePixel(me, 3, 3, 1), Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysBindFbTile(1, 0), Status::kOk);
    EXPECT_EQ(fb.WritePixel(me, 17, 3, 2), Status::kOk);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(a)).ok());
  ASSERT_TRUE(kernel_.CreateEnv(std::move(b)).ok());
  kernel_.Run();
  EXPECT_EQ(fb.ReadPixel(3, 3), 0xff00ff00u);
}

}  // namespace
}  // namespace xok::aegis
