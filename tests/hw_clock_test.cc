#include "src/hw/clock.h"

#include <gtest/gtest.h>

#include "src/hw/cost.h"

namespace xok::hw {
namespace {

TEST(CycleClock, StartsAtZero) {
  CycleClock clock;
  EXPECT_EQ(clock.now(), 0u);
}

TEST(CycleClock, AdvanceAccumulates) {
  CycleClock clock;
  clock.Advance(10);
  clock.Advance(32);
  EXPECT_EQ(clock.now(), 42u);
}

TEST(CycleClock, AdvanceToMovesForwardOnly) {
  CycleClock clock;
  clock.Advance(100);
  clock.AdvanceTo(50);  // In the past: no-op.
  EXPECT_EQ(clock.now(), 100u);
  clock.AdvanceTo(250);
  EXPECT_EQ(clock.now(), 250u);
}

TEST(CycleClock, MicrosConversionMatchesClockRate) {
  CycleClock clock;
  clock.Advance(kClockHz);  // One simulated second.
  EXPECT_DOUBLE_EQ(clock.now_micros(), 1e6);
}

TEST(Cost, InstructionCalibration) {
  // The paper's 18-instruction Aegis dispatch should land near 1.5 us.
  const double micros = CyclesToMicros(Instr(18));
  EXPECT_GT(micros, 1.0);
  EXPECT_LT(micros, 2.0);
}

TEST(Cost, WireByteTime) {
  // 10 Mb/s Ethernet: 0.8 us per byte.
  EXPECT_DOUBLE_EQ(CyclesToMicros(kWireCyclesPerByte), 0.8);
}

}  // namespace
}  // namespace xok::hw
