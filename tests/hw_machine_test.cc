#include "src/hw/machine.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/trap.h"

namespace xok::hw {
namespace {

// A minimal "identity-mapping" kernel used to exercise the machine: TLB
// misses are refilled with vpn == pfn; everything else is recorded.
class FakeKernel : public TrapSink {
 public:
  explicit FakeKernel(Machine& machine) : machine_(machine), priv_(machine.InstallKernel(this)) {}

  TrapOutcome OnException(TrapFrame& frame) override {
    exceptions.push_back(frame.type);
    switch (frame.type) {
      case ExceptionType::kTlbMissLoad:
      case ExceptionType::kTlbMissStore: {
        if (!refill) {
          return TrapOutcome::kSkip;
        }
        TlbEntry entry;
        entry.vpn = VpnOf(frame.bad_vaddr);
        entry.asid = priv_.asid();
        entry.pfn = entry.vpn;
        entry.valid = true;
        entry.writable = writable_pages;
        priv_.TlbWriteRandom(entry);
        return TrapOutcome::kRetry;
      }
      case ExceptionType::kTlbModify: {
        if (!fix_modify) {
          return TrapOutcome::kSkip;
        }
        TlbEntry entry;
        entry.vpn = VpnOf(frame.bad_vaddr);
        entry.asid = priv_.asid();
        entry.pfn = entry.vpn;
        entry.valid = true;
        entry.writable = true;
        priv_.TlbWriteRandom(entry);
        return TrapOutcome::kRetry;
      }
      default:
        return TrapOutcome::kSkip;
    }
  }

  void OnInterrupt(InterruptSource source, uint64_t payload) override {
    interrupts.push_back({source, payload});
  }

  Machine& machine_;
  PrivPort& priv_;
  std::vector<ExceptionType> exceptions;
  std::vector<std::pair<InterruptSource, uint64_t>> interrupts;
  bool refill = true;
  bool fix_modify = true;
  bool writable_pages = true;
};

class MachineTest : public ::testing::Test {
 protected:
  MachineTest() : machine_(Machine::Config{.phys_pages = 64, .name = "t0"}), kernel_(machine_) {}

  Machine machine_;
  FakeKernel kernel_;
};

TEST_F(MachineTest, ChargeAdvancesClock) {
  const uint64_t before = machine_.clock().now();
  machine_.Charge(100);
  EXPECT_EQ(machine_.clock().now(), before + 100);
}

TEST_F(MachineTest, LoadFaultsOnceThenHits) {
  ASSERT_TRUE(machine_.StoreWord(0x2000, 0xdeadbeef) == Status::kOk);
  Result<uint32_t> value = machine_.LoadWord(0x2000);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0xdeadbeefu);
  // One miss for the store; the load hits the now-present entry.
  EXPECT_EQ(kernel_.exceptions.size(), 1u);
  EXPECT_EQ(kernel_.exceptions[0], ExceptionType::kTlbMissStore);
}

TEST_F(MachineTest, StoreToReadOnlyPageRaisesTlbModify) {
  kernel_.writable_pages = false;
  ASSERT_TRUE(machine_.LoadWord(0x3000).ok());  // Establish a read-only mapping.
  kernel_.exceptions.clear();
  ASSERT_TRUE(machine_.StoreWord(0x3000, 1) == Status::kOk);
  ASSERT_GE(kernel_.exceptions.size(), 1u);
  EXPECT_EQ(kernel_.exceptions[0], ExceptionType::kTlbModify);
}

TEST_F(MachineTest, UnresolvedMissFailsTheAccess) {
  kernel_.refill = false;
  Result<uint32_t> value = machine_.LoadWord(0x4000);
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status(), Status::kErrAccessDenied);
}

TEST_F(MachineTest, UnalignedAccessRaisesAddressError) {
  Result<uint32_t> value = machine_.LoadWord(0x2001);
  EXPECT_FALSE(value.ok());
  ASSERT_EQ(kernel_.exceptions.size(), 1u);
  EXPECT_EQ(kernel_.exceptions[0], ExceptionType::kAddressError);
}

TEST_F(MachineTest, OutOfRangePhysicalIsBusError) {
  // 64 pages of RAM; vpn 63 maps fine, vpn 64 maps beyond the end.
  Result<uint32_t> ok = machine_.LoadWord(63u << kPageShift);
  EXPECT_TRUE(ok.ok());
  Result<uint32_t> bad = machine_.LoadWord(64u << kPageShift);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(kernel_.exceptions.back(), ExceptionType::kBusError);
}

TEST_F(MachineTest, AddOverflowTrapsOnlyOnOverflow) {
  Result<int32_t> fine = machine_.AddOverflow(1, 2);
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(*fine, 3);
  EXPECT_TRUE(kernel_.exceptions.empty());

  Result<int32_t> overflow = machine_.AddOverflow(0x7fffffff, 1);
  EXPECT_FALSE(overflow.ok());
  ASSERT_EQ(kernel_.exceptions.size(), 1u);
  EXPECT_EQ(kernel_.exceptions[0], ExceptionType::kOverflow);
}

TEST_F(MachineTest, CoprocTrapsWhenDisabled) {
  EXPECT_TRUE(machine_.CoprocOp() != Status::kOk);
  ASSERT_EQ(kernel_.exceptions.size(), 1u);
  EXPECT_EQ(kernel_.exceptions[0], ExceptionType::kCoprocUnusable);

  kernel_.priv_.SetCoprocEnabled(true);
  kernel_.exceptions.clear();
  EXPECT_TRUE(machine_.CoprocOp() == Status::kOk);
  EXPECT_TRUE(kernel_.exceptions.empty());
}

TEST_F(MachineTest, SliceTimerFiresAtChargeBoundary) {
  kernel_.priv_.SetSliceDeadline(machine_.clock().now() + 1000);
  machine_.Charge(500);
  EXPECT_TRUE(kernel_.interrupts.empty());
  machine_.Charge(600);
  ASSERT_EQ(kernel_.interrupts.size(), 1u);
  EXPECT_EQ(kernel_.interrupts[0].first, InterruptSource::kTimer);
  // One-shot: no refire without re-arming.
  machine_.Charge(5000);
  EXPECT_EQ(kernel_.interrupts.size(), 1u);
}

TEST_F(MachineTest, ScheduledEventDeliversWithPayload) {
  kernel_.priv_.ScheduleEvent(2000, InterruptSource::kDiskDone, 77);
  machine_.Charge(1999);
  EXPECT_TRUE(kernel_.interrupts.empty());
  machine_.Charge(1);
  ASSERT_EQ(kernel_.interrupts.size(), 1u);
  EXPECT_EQ(kernel_.interrupts[0].second, 77u);
}

TEST_F(MachineTest, InterruptsMaskedWhileDisabled) {
  kernel_.priv_.ScheduleEvent(10, InterruptSource::kDiskDone, 1);
  kernel_.priv_.SetInterruptsEnabled(false);
  machine_.Charge(1000);
  EXPECT_TRUE(kernel_.interrupts.empty());
  kernel_.priv_.SetInterruptsEnabled(true);
  machine_.Charge(1);
  EXPECT_EQ(kernel_.interrupts.size(), 1u);
}

TEST_F(MachineTest, WaitForInterruptAdvancesToNextEvent) {
  kernel_.priv_.ScheduleEvent(12345, InterruptSource::kDiskDone, 5);
  const uint64_t before = machine_.clock().now();
  machine_.WaitForInterrupt();
  EXPECT_GE(machine_.clock().now(), before + 12345);
  ASSERT_EQ(kernel_.interrupts.size(), 1u);
}

TEST_F(MachineTest, CopyOutCopyInRoundTripsAcrossPages) {
  std::vector<uint8_t> src(kPageBytes + 123);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(machine_.CopyOut(0x5ff0, src) == Status::kOk);  // Crosses a page boundary.
  std::vector<uint8_t> dst(src.size());
  ASSERT_TRUE(machine_.CopyIn(dst, 0x5ff0) == Status::kOk);
  EXPECT_EQ(src, dst);
}

TEST_F(MachineTest, AccessChargesCycles) {
  (void)machine_.StoreWord(0x2000, 1);  // Prime the mapping.
  const uint64_t before = machine_.clock().now();
  (void)machine_.LoadWord(0x2000);
  const uint64_t hit_cost = machine_.clock().now() - before;
  EXPECT_GT(hit_cost, 0u);
  EXPECT_LT(hit_cost, Instr(10));  // A hit is cheap.
}

TEST_F(MachineTest, TlbMissCostsMoreThanHit) {
  (void)machine_.LoadWord(0x2000);
  const uint64_t t0 = machine_.clock().now();
  (void)machine_.LoadWord(0x2000);  // Hit.
  const uint64_t hit = machine_.clock().now() - t0;
  const uint64_t t1 = machine_.clock().now();
  (void)machine_.LoadWord(0x9000);  // Miss + refill.
  const uint64_t miss = machine_.clock().now() - t1;
  EXPECT_GT(miss, hit);
}

TEST_F(MachineTest, SliceDeadlineAtCurrentCycleFiresOnNextCharge) {
  // Regression: a deadline equal to the current cycle (including cycle 0)
  // must still raise kTimer at the next charge boundary, not be treated as
  // "unarmed". The original code used deadline == 0 as the disarmed state.
  kernel_.priv_.SetSliceDeadline(machine_.clock().now());
  EXPECT_TRUE(kernel_.priv_.slice_armed());
  EXPECT_TRUE(kernel_.interrupts.empty());
  machine_.Charge(1);
  ASSERT_EQ(kernel_.interrupts.size(), 1u);
  EXPECT_EQ(kernel_.interrupts[0].first, InterruptSource::kTimer);
  EXPECT_FALSE(kernel_.priv_.slice_armed());
}

TEST_F(MachineTest, SliceDeadlineInThePastFiresOnNextCharge) {
  machine_.Charge(500);
  kernel_.priv_.SetSliceDeadline(100);  // Already behind the clock.
  machine_.Charge(1);
  ASSERT_EQ(kernel_.interrupts.size(), 1u);
  EXPECT_EQ(kernel_.interrupts[0].first, InterruptSource::kTimer);
}

TEST_F(MachineTest, ClearSliceDeadlineDisarms) {
  kernel_.priv_.SetSliceDeadline(machine_.clock().now() + 10);
  kernel_.priv_.ClearSliceDeadline();
  EXPECT_FALSE(kernel_.priv_.slice_armed());
  machine_.Charge(1000);
  EXPECT_TRUE(kernel_.interrupts.empty());
}

TEST(MachineAsid, SeparateAsidsDoNotShareMappings) {
  Machine machine(Machine::Config{.phys_pages = 64, .name = "t1"});
  FakeKernel kernel(machine);
  ASSERT_TRUE(machine.StoreWord(0x2000, 0x11) == Status::kOk);
  kernel.priv_.SetAsid(5);
  kernel.exceptions.clear();
  ASSERT_TRUE(machine.LoadWord(0x2000).ok());
  // The new address space had to take its own miss.
  ASSERT_FALSE(kernel.exceptions.empty());
  EXPECT_EQ(kernel.exceptions[0], ExceptionType::kTlbMissLoad);
}

// --- SMP: per-CPU state, the interleaver, IPIs, remote TLB flushes ---

class SmpMachineTest : public ::testing::Test {
 protected:
  SmpMachineTest()
      : machine_(Machine::Config{.phys_pages = 64, .name = "smp", .cpus = 4}),
        kernel_(machine_) {}

  Machine machine_;
  FakeKernel kernel_;
};

TEST_F(SmpMachineTest, TopologyIsVisible) {
  EXPECT_EQ(machine_.cpu_count(), 4u);
  EXPECT_EQ(machine_.current_cpu(), 0u);  // Host-side code runs as CPU 0.
  EXPECT_EQ(kernel_.priv_.cpu_count(), 4u);
}

TEST_F(SmpMachineTest, RunCpusInterleavesByLocalClock) {
  // Each body charges in different step sizes; the interleaver must keep
  // the local clocks within one charge of each other, so the order of
  // completion follows total work, not body index.
  std::vector<uint32_t> finish_order;
  std::vector<std::function<void()>> bodies;
  const uint64_t work[4] = {400, 100, 300, 200};
  for (uint32_t k = 0; k < 4; ++k) {
    bodies.push_back([this, k, &work, &finish_order]() {
      for (uint64_t done = 0; done < work[k]; done += 50) {
        machine_.Charge(50);
      }
      finish_order.push_back(k);
    });
  }
  machine_.RunCpus(std::move(bodies));
  ASSERT_EQ(finish_order.size(), 4u);
  EXPECT_EQ(finish_order[0], 1u);  // Least work finishes first...
  EXPECT_EQ(finish_order[3], 0u);  // ...most work last.
  EXPECT_EQ(machine_.MaxCpuCycle(), 400u);
  EXPECT_EQ(machine_.cpu(1).clock().now(), 100u);
}

TEST_F(SmpMachineTest, EachCpuHasItsOwnTlb) {
  std::vector<std::function<void()>> bodies;
  bodies.push_back([this]() { (void)machine_.LoadWord(0x2000); });
  bodies.push_back([this]() { (void)machine_.LoadWord(0x2000); });
  bodies.push_back([] {});
  bodies.push_back([] {});
  machine_.RunCpus(std::move(bodies));
  // Each CPU took its own miss for the same address: TLBs are private.
  // (A shared TLB would leave the second access a hit.)
  size_t misses = 0;
  for (ExceptionType type : kernel_.exceptions) {
    if (type == ExceptionType::kTlbMissLoad) {
      ++misses;
    }
  }
  EXPECT_EQ(misses, 2u);
  // And the entries really landed in different TLBs.
  EXPECT_NE(machine_.cpu(0).tlb().Lookup(2, 0), nullptr);
  EXPECT_NE(machine_.cpu(1).tlb().Lookup(2, 0), nullptr);
  EXPECT_EQ(machine_.cpu(2).tlb().Lookup(2, 0), nullptr);
}

TEST_F(SmpMachineTest, SendIpiDeliversToTargetCpu) {
  std::vector<std::function<void()>> bodies;
  bodies.push_back([this]() { kernel_.priv_.SendIpi(2, 42); });
  bodies.push_back([] {});
  bodies.push_back([this]() {
    // Park until the IPI arrives.
    machine_.WaitForInterrupt();
  });
  bodies.push_back([] {});
  machine_.RunCpus(std::move(bodies));
  ASSERT_EQ(kernel_.interrupts.size(), 1u);
  EXPECT_EQ(kernel_.interrupts[0].first, InterruptSource::kIpi);
  EXPECT_EQ(kernel_.interrupts[0].second, 42u);
}

TEST_F(SmpMachineTest, CpuParkedReflectsWaitForInterrupt) {
  bool observed_parked = false;
  std::vector<std::function<void()>> bodies;
  bodies.push_back([this, &observed_parked]() {
    machine_.Charge(100);  // Give CPU 1 time to park.
    observed_parked = machine_.CpuParked(1);
    kernel_.priv_.SendIpi(1, 0);  // Wake it so RunCpus can finish.
  });
  bodies.push_back([this]() { machine_.WaitForInterrupt(); });
  bodies.push_back([] {});
  bodies.push_back([] {});
  machine_.RunCpus(std::move(bodies));
  EXPECT_TRUE(observed_parked);
  EXPECT_FALSE(machine_.CpuParked(1));
}

TEST_F(SmpMachineTest, RemoteFlushDropsOnlyTheTargetsEntries) {
  std::vector<std::function<void()>> bodies;
  uint32_t dropped_live = 0;
  uint32_t dropped_again = 0;
  bodies.push_back([this]() {
    (void)machine_.StoreWord(0x2000, 7);  // vpn 2 -> pfn 2 on CPU 0.
    machine_.Charge(200);                 // Let CPU 1 map it too, then flush.
  });
  bodies.push_back([this, &dropped_live, &dropped_again]() {
    (void)machine_.LoadWord(0x2000);
    machine_.Charge(50);
    dropped_live = kernel_.priv_.TlbRemoteFlushPfn(0, 2);
    dropped_again = kernel_.priv_.TlbRemoteFlushPfn(0, 2);
    // CPU 1's own entry survives its flush of CPU 0.
    EXPECT_TRUE(machine_.LoadWord(0x2000).ok());
  });
  bodies.push_back([] {});
  bodies.push_back([] {});
  const size_t misses_before = kernel_.exceptions.size();
  machine_.RunCpus(std::move(bodies));
  EXPECT_EQ(dropped_live, 1u);
  EXPECT_EQ(dropped_again, 0u);  // Idempotent once dropped.
  // CPU 0's store missed, CPU 1's load missed; the post-flush re-read on
  // CPU 1 hit its still-private entry.
  EXPECT_EQ(kernel_.exceptions.size() - misses_before, 2u);
}

TEST_F(SmpMachineTest, ScheduledEventsStayOnTheCallingCpu) {
  std::vector<std::function<void()>> bodies;
  uint32_t interrupted_cpu = ~0u;
  bodies.push_back([this]() { machine_.Charge(100); });
  bodies.push_back([this, &interrupted_cpu]() {
    kernel_.priv_.ScheduleEvent(10, InterruptSource::kDiskDone, 1);
    machine_.Charge(100);
    if (!kernel_.interrupts.empty()) {
      interrupted_cpu = machine_.current_cpu();
    }
  });
  bodies.push_back([] {});
  bodies.push_back([] {});
  machine_.RunCpus(std::move(bodies));
  EXPECT_EQ(interrupted_cpu, 1u);
}

}  // namespace
}  // namespace xok::hw
