// Randomized chaos soak: several library OSes (VM exerciser, pipe pair,
// LibFS over a faulty disk, RDP over a lossy+corrupting wire) run
// concurrently while a seeded FaultPlan kills environments at arbitrary
// cycle points and injects device errors. After every injected event the
// kernel audits its own resource tables (set_audit_on_fault); at the end,
// every surviving protocol must have completed correctly. The whole run is
// deterministic per seed.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/fs.h"
#include "src/exos/reqtrace.h"
#include "src/exos/revocation.h"
#include "src/exos/server/loadgen.h"
#include "src/exos/server/server.h"
#include "src/exos/supervisor.h"
#include "src/exos/tracelib.h"
#include "src/exos/ipc.h"
#include "src/exos/rdp.h"
#include "src/exos/udp.h"
#include "src/hw/disk.h"
#include "src/hw/fault.h"
#include "src/hw/framebuffer.h"
#include "src/hw/nic.h"
#include "src/hw/world.h"
#include "tests/chaos_seeds.h"


namespace xok {
namespace {

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

constexpr uint32_t kPipeWords = 2000;
constexpr uint32_t kWordStride = 2654435761u;  // Knuth multiplicative hash.
constexpr int kRdpMessages = 20;

class ChaosSoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSoak, KilledEnvironmentsNeverCorruptTheSurvivors) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE(ChaosTrace(seed));
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "chaos"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "peer"}, &world);
  aegis::Aegis ka(ma);
  aegis::Aegis kb(mb);
  hw::Disk disk(ma, 256);
  hw::Framebuffer fb(ma, 64, 64);
  ka.AttachDisk(&disk);
  ka.AttachFramebuffer(&fb);
  hw::Wire wire;
  hw::Nic na(ma, 0xa);
  hw::Nic nb(mb, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ka.AttachNic(&na);
  kb.AttachNic(&nb);

  // --- Observer: binds the kernel event ring (lifecycle events only — the
  // mask is measurement policy) and exits cleanly, which *retains* the
  // binding: the kernel keeps appending for the whole soak and the ring is
  // read post-mortem below. The observer never runs again, so it cannot
  // perturb the chaos it is recording. ---
  hw::PageId trace_first_page = 0;
  uint32_t trace_pages = 0;
  exos::Process observer(ka, [&](exos::Process& p) {
    exos::TraceSession trace(p);
    ASSERT_EQ(trace.Bind({.pages = 2, .mask = xtrace::kMaskEnvLifecycle}), Status::kOk);
    trace_first_page = trace.first_page();
    trace_pages = trace.page_count();
    // No Close(): exit cleanly with the ring still armed.
  });

  // --- Pipe pair: the writer produces forever (it dies by kill); the
  // reader must obtain kPipeWords intact words and exit cleanly. ---
  exos::SharedBufferDesc desc;
  bool pipe_ready = false;
  bool reader_done = false;
  exos::PipePeer writer_peer;
  exos::PipePeer reader_peer;
  constexpr hw::Vaddr kRingVa = 0x5000000;
  exos::Process pipe_writer(ka, [&](exos::Process& p) {
    desc = *exos::CreateSharedBuffer(p);
    ASSERT_EQ(exos::MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    pipe_ready = true;
    exos::PipeEndpoint out(p, kRingVa, writer_peer, false);
    for (uint32_t i = 0;; ++i) {
      if (out.WriteWord(i * kWordStride) != Status::kOk) {
        break;  // EPIPE: the reader finished and exited.
      }
    }
    for (;;) {
      p.kernel().SysSleep(100'000);  // Park until the scheduled kill lands.
    }
  });
  exos::Process pipe_reader(ka, [&](exos::Process& p) {
    while (!pipe_ready) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(exos::MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    exos::PipeEndpoint in(p, kRingVa, reader_peer, false);
    for (uint32_t i = 0; i < kPipeWords; ++i) {
      Result<uint32_t> word = in.ReadWord();
      ASSERT_TRUE(word.ok()) << "word " << i;
      ASSERT_EQ(*word, i * kWordStride) << "word " << i;
    }
    reader_done = true;
  });

  // --- VM exerciser: allocates, scribbles, and frees pages, and paints
  // its framebuffer tile, forever (dies by kill). ---
  exos::Process vm_worker(ka, [&](exos::Process& p) {
    ASSERT_EQ(p.kernel().SysBindFbTile(0, 0), Status::kOk);
    for (uint32_t round = 0;; ++round) {
      Result<aegis::PageGrant> page = p.kernel().SysAllocPage();
      if (page.ok()) {
        std::span<uint8_t> bytes = ma.mem().PageSpan(page->page);
        bytes[round % bytes.size()] = static_cast<uint8_t>(round);
        (void)p.kernel().SysDeallocPage(page->page, page->cap);
      }
      (void)fb.WritePixel(p.id(), round % 16, (round / 16) % 16, 0xff00ff00u | round);
      p.kernel().SysSleep(5'000);
    }
  });

  // --- LibFS worker over the faulty disk: write/sync/read loops forever
  // (dies by kill, possibly mid disk transfer). ---
  exos::Process fs_worker(ka, [&](exos::Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = p.kernel().SysAllocDiskExtent(32);
    ASSERT_TRUE(extent.ok());
    Result<std::unique_ptr<exos::LibFs>> fs = exos::LibFs::Format(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<exos::FileHandle> file = (*fs)->Create("scratch");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> chunk(512);
    for (uint32_t round = 0;; ++round) {
      for (size_t i = 0; i < chunk.size(); ++i) {
        chunk[i] = static_cast<uint8_t>(round * 13 + i);
      }
      // Transient kErrIo past the retry budget is tolerated; being killed
      // mid-transfer is the interesting case.
      (void)(*fs)->Write(*file, (round % 8) * 512, chunk);
      (void)(*fs)->Sync();
      std::vector<uint8_t> back(chunk.size());
      (void)(*fs)->Read(*file, (round % 8) * 512, back);
      p.kernel().SysSleep(2'000);
    }
  });

  // --- Hostile environment: hammers the kernel with forged and stale
  // capabilities the whole time. Every attempt must be denied; it exits
  // cleanly so the denial count is always asserted. ---
  bool forgery_checked = false;
  exos::Process hostile(ka, [&](exos::Process& p) {
    for (int round = 0; round < 200; ++round) {
      Result<aegis::PageGrant> page = p.kernel().SysAllocPage();
      ASSERT_TRUE(page.ok());
      cap::Capability forged = page->cap;
      forged.mac ^= 0x1995 + round;
      EXPECT_EQ(p.kernel().SysTlbWrite(0x30000, page->page, true, forged),
                Status::kErrAccessDenied);
      ASSERT_EQ(p.kernel().SysDeallocPage(page->page, page->cap), Status::kOk);
      // Stale epoch: the very capability that was just valid.
      EXPECT_EQ(p.kernel().SysTlbWrite(0x30000, page->page, true, page->cap),
                Status::kErrAccessDenied);
      p.kernel().SysSleep(1'000);
    }
    forgery_checked = true;
  });

  // --- Packet-ring consumer killed mid-drain: a flooder on the peer
  // machine streams datagrams at a ring-bound socket forever; the consumer
  // drains its RX ring until the scheduled kill lands at an arbitrary
  // point in the drain loop. Teardown must reclaim the ring region while
  // frames are still in flight at it. ---
  uint64_t ring_frames_drained = 0;
  dpf::FilterId ring_filter = 0;
  exos::Process ring_consumer(ka, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xa, 1, Resolve});
    ASSERT_EQ(socket.BindRing(300, exos::RingConfig{.rx_slots = 8, .tx_slots = 4}),
              Status::kOk);
    ring_filter = *socket.filter_id();
    for (;;) {
      Result<exos::Datagram> dgram = socket.Recv();  // Dies by kill in here.
      if (dgram.ok()) {
        ++ring_frames_drained;
      }
    }
  });
  exos::Process ring_flooder(kb, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xb, 2, Resolve});
    ASSERT_EQ(socket.BindRing(301), Status::kOk);
    p.kernel().SysSleep(hw::kClockHz / 100);
    for (int round = 0; round < 700; ++round) {
      for (uint8_t burst = 0; burst < 4; ++burst) {
        const std::vector<uint8_t> payload = {static_cast<uint8_t>(round), burst};
        (void)socket.QueueTo(1, 300, payload);
      }
      (void)socket.FlushTx();  // One doorbell per burst of four.
      p.kernel().SysSleep(5'000);
    }
    EXPECT_EQ(socket.Close(), Status::kOk);
  });

  // --- RDP pair across the faulty wire: must deliver everything exactly
  // once, in order, despite drops and corruption. ---
  std::vector<std::vector<uint8_t>> received;
  bool sender_done = false;
  exos::Process rdp_sender(ka, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xa, 1, Resolve});
    ASSERT_EQ(socket.Bind(100), Status::kOk);
    exos::RdpEndpoint rdp(p, socket, exos::RdpEndpoint::Config{.peer_ip = 2, .peer_port = 200});
    p.kernel().SysSleep(hw::kClockHz / 100);
    for (int i = 0; i < kRdpMessages; ++i) {
      std::vector<uint8_t> payload(1 + (i % 32));
      for (size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<uint8_t>(i * 3 + j);
      }
      ASSERT_EQ(rdp.Send(payload), Status::kOk);
    }
    sender_done = true;
  });
  exos::Process rdp_receiver(kb, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xb, 2, Resolve});
    ASSERT_EQ(socket.Bind(200), Status::kOk);
    exos::RdpEndpoint rdp(p, socket, exos::RdpEndpoint::Config{.peer_ip = 1, .peer_port = 100});
    for (int i = 0; i < kRdpMessages; ++i) {
      Result<std::vector<uint8_t>> msg = rdp.Recv();
      ASSERT_TRUE(msg.ok());
      received.push_back(*msg);
    }
    for (int round = 0; round < 16; ++round) {
      p.kernel().SysSleep(hw::kClockHz / 500);
      rdp.PumpAcks();
    }
  });

  ASSERT_TRUE(observer.ok());
  ASSERT_TRUE(pipe_writer.ok());
  ASSERT_TRUE(pipe_reader.ok());
  ASSERT_TRUE(vm_worker.ok());
  ASSERT_TRUE(fs_worker.ok());
  ASSERT_TRUE(hostile.ok());
  ASSERT_TRUE(ring_consumer.ok());
  ASSERT_TRUE(ring_flooder.ok());
  ASSERT_TRUE(rdp_sender.ok());
  ASSERT_TRUE(rdp_receiver.ok());
  writer_peer = {pipe_reader.id(), pipe_reader.env_cap()};
  reader_peer = {pipe_writer.id(), pipe_writer.env_cap()};

  // --- The fault plan: stochastic disk/wire faults plus scheduled kills
  // aimed at the forever-running workers, at arbitrary cycle points. ---
  hw::FaultPlan plan;
  plan.seed = seed;
  plan.disk_error_per_mille = 150;
  plan.wire_drop_per_mille = 40;
  plan.wire_corrupt_per_mille = 40;
  plan.KillEnvAt(1'800'000, pipe_writer.id());
  plan.KillEnvAt(2'500'000 + 10'000 * seed, vm_worker.id());
  plan.KillEnvAt(3'500'000 + 20'000 * seed, fs_worker.id());
  plan.KillEnvAt(2'800'000 + 15'000 * seed, ring_consumer.id());
  plan.SpuriousIrqAt(500'000, hw::InterruptSource::kDiskDone, 424242);
  plan.SpuriousIrqAt(900'000, hw::InterruptSource::kFault, 61);  // No such env.
  ka.InstallFaultPlan(plan);
  wire.set_fault_injector(ka.fault_injector());
  ka.set_audit_on_fault(true);
  kb.set_audit_on_fault(true);

  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});

  // Survivors completed despite the carnage around them.
  EXPECT_TRUE(reader_done);
  EXPECT_TRUE(sender_done);
  EXPECT_TRUE(forgery_checked);
  ASSERT_EQ(received.size(), static_cast<size_t>(kRdpMessages));
  for (int i = 0; i < kRdpMessages; ++i) {
    ASSERT_EQ(received[i].size(), static_cast<size_t>(1 + (i % 32))) << "message " << i;
    for (size_t j = 0; j < received[i].size(); ++j) {
      ASSERT_EQ(received[i][j], static_cast<uint8_t>(i * 3 + j)) << "message " << i;
    }
  }

  // Every scheduled kill landed, and every post-event audit was clean.
  EXPECT_EQ(ka.envs_killed(), 4u);
  EXPECT_FALSE(ka.EnvAlive(pipe_writer.id()));
  EXPECT_FALSE(ka.EnvAlive(vm_worker.id()));
  EXPECT_FALSE(ka.EnvAlive(fs_worker.id()));
  EXPECT_FALSE(ka.EnvAlive(ring_consumer.id()));
  // The ring consumer was mid-traffic when it died: it had drained frames,
  // the kernel had deposited into its ring, and the post-mortem stats are
  // still readable even though teardown unbound the ring itself.
  EXPECT_GT(ring_frames_drained, 0u);
  const aegis::PacketStats ring_stats = ka.packet_stats(ring_filter);
  EXPECT_GT(ring_stats.delivered, 0u);
  EXPECT_FALSE(ring_stats.ring_bound);
  EXPECT_EQ(ka.audit_failures(), 0u) << ka.first_audit_failure();
  EXPECT_EQ(kb.audit_failures(), 0u) << kb.first_audit_failure();
  aegis::Aegis::AuditReport ra = ka.AuditInvariants();
  EXPECT_TRUE(ra.ok()) << (ra.violations.empty() ? "" : ra.violations.front());
  EXPECT_TRUE(kb.AuditInvariants().ok());
  // The dead VM worker's framebuffer tile went back to the hardware pool.
  EXPECT_EQ(fb.TileOwner(0, 0), hw::Framebuffer::kNoOwner);

  // The event ring survived the whole soak and its record of the carnage
  // matches the kernel's: exactly the scheduled kills appear as forced
  // deaths, while the ring binding (owned by a cleanly exited env) is
  // still live and auditable.
  ASSERT_GT(trace_pages, 0u);
  Result<std::vector<xtrace::Record>> trace_records =
      exos::DecodeRegion(ma.mem().RangeSpan(trace_first_page, trace_pages));
  ASSERT_TRUE(trace_records.ok());
  uint64_t forced_deaths = 0;
  for (const xtrace::Record& record : *trace_records) {
    if (record.type == static_cast<uint16_t>(xtrace::Event::kEnvDeath) &&
        record.arg1 == 1) {
      ++forced_deaths;
    }
  }
  EXPECT_EQ(forced_deaths, ka.envs_killed());
  EXPECT_TRUE(ka.trace_armed());

  // The fault channels all genuinely fired.
  const hw::FaultInjector* injector = ka.fault_injector();
  EXPECT_GT(injector->disk_errors_injected(), 0u);
  EXPECT_GT(injector->frames_dropped() + injector->frames_corrupted(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak, ::testing::ValuesIn(ChaosSeeds({1, 2, 3})));

// --- SMP chaos: the same discipline on a four-CPU machine. Scheduled
// kills land on environments pinned to *other* CPUs than the one the
// fault interrupt arrives on, so every forced death crosses an IPI; a
// stale-TLB prober repeatedly maps, loses, and re-touches a frame to
// prove shootdown holds under load (a stale read succeeding would mean
// reading memory that may already have been reallocated). ---

class SmpChaosSoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmpChaosSoak, RemoteKillsAndShootdownsLeaveTheLedgerClean) {
  const uint64_t seed = GetParam();
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "smp-chaos", .cpus = 4});
  SCOPED_TRACE(ChaosTrace(seed, &machine));
  aegis::Aegis kernel(machine);

  // Per-CPU page churners: allocate, scribble, free, sleep — finite, so
  // the run can drain once the victims are dead.
  std::vector<std::unique_ptr<exos::Process>> churners;
  uint32_t churn_rounds = 0;
  for (uint32_t k = 0; k < 4; ++k) {
    exos::Process::Options options;
    options.cpu_mask = 1ULL << k;
    churners.push_back(std::make_unique<exos::Process>(
        kernel,
        [&, k](exos::Process& p) {
          for (uint32_t round = 0; round < 40; ++round) {
            Result<aegis::PageGrant> page = p.kernel().SysAllocPage();
            if (page.ok()) {
              std::span<uint8_t> bytes = machine.mem().PageSpan(page->page);
              bytes[(round + k) % bytes.size()] = static_cast<uint8_t>(round);
              (void)p.kernel().SysDeallocPage(page->page, page->cap);
            }
            p.kernel().SysSleep(3'000 + 500 * k);
            ++churn_rounds;
          }
        },
        options));
    ASSERT_TRUE(churners.back()->ok());
  }

  // Kill victims pinned to CPUs 2 and 3: the kFault interrupt arrives on
  // CPU 0, so both reaps must travel by IPI.
  exos::Process::Options victim2_opts;
  victim2_opts.cpu_mask = 1ULL << 2;
  exos::Process victim2(kernel, [&](exos::Process& p) {
    for (;;) {
      p.kernel().SysNull();
      p.machine().Charge(200);
    }
  }, victim2_opts);
  exos::Process::Options victim3_opts;
  victim3_opts.cpu_mask = 1ULL << 3;
  exos::Process victim3(kernel, [&](exos::Process& p) {
    for (;;) {
      Result<aegis::PageGrant> page = p.kernel().SysAllocPage();
      if (page.ok()) {
        // Die holding pages sometimes: teardown must reclaim them.
        if ((p.machine().clock().now() & 1) == 0) {
          (void)p.kernel().SysDeallocPage(page->page, page->cap);
        }
      }
      p.machine().Charge(500);
    }
  }, victim3_opts);
  ASSERT_TRUE(victim2.ok());
  ASSERT_TRUE(victim3.ok());

  // Stale-TLB prober: maps and touches a frame on CPU 1; a partner on
  // CPU 0 revokes it with the shared capability; the prober's re-touch
  // must fault every round — never observe the frame's next life.
  constexpr hw::Vaddr kVa = 0x40000;
  constexpr int kProbeRounds = 6;
  hw::PageId probe_page = 0;
  cap::Capability probe_cap;
  int probe_round = 0;     // Handshake: prober publishes, partner consumes.
  int revoked_round = 0;
  uint32_t stale_reads_ok = 0;
  uint32_t probe_faults = 0;
  bool probe_done = false;

  aegis::EnvSpec prober;
  prober.cpu_mask = 1ULL << 1;
  prober.handlers.exception = [&](const hw::TrapFrame&) {
    ++probe_faults;
    return aegis::ExcAction::kSkip;
  };
  prober.entry = [&] {
    for (int round = 1; round <= kProbeRounds; ++round) {
      Result<aegis::PageGrant> grant = kernel.SysAllocPage();
      ASSERT_TRUE(grant.ok());
      probe_page = grant->page;
      probe_cap = grant->cap;
      ASSERT_EQ(kernel.SysTlbWrite(kVa, probe_page, true, probe_cap), Status::kOk);
      ASSERT_EQ(machine.StoreWord(kVa, 0xbee70000u + round), Status::kOk);
      probe_round = round;
      while (revoked_round < round) {
        kernel.SysYield();
      }
      if (machine.LoadWord(kVa).ok()) {
        ++stale_reads_ok;  // Shootdown failed: we just read a freed frame.
      }
    }
    probe_done = true;
  };
  ASSERT_TRUE(kernel.CreateEnv(std::move(prober)).ok());

  aegis::EnvSpec partner;
  partner.cpu_mask = 1ULL << 0;
  partner.entry = [&] {
    for (int round = 1; round <= kProbeRounds; ++round) {
      while (probe_round < round) {
        kernel.SysYield();
      }
      ASSERT_EQ(kernel.SysDeallocPage(probe_page, probe_cap), Status::kOk);
      // Grab the freed frame and give it a new life immediately: if the
      // prober's stale translation survived, it would read this.
      Result<aegis::PageGrant> next = kernel.SysAllocPage();
      if (next.ok()) {
        std::span<uint8_t> bytes = machine.mem().PageSpan(next->page);
        bytes[0] = 0xd0;
        (void)kernel.SysDeallocPage(next->page, next->cap);
      }
      revoked_round = round;
    }
  };
  ASSERT_TRUE(kernel.CreateEnv(std::move(partner)).ok());

  hw::FaultPlan plan;
  plan.seed = seed;
  plan.KillEnvAt(900'000 + 40'000 * seed, victim2.id());
  plan.KillEnvAt(1'600'000 + 25'000 * seed, victim3.id());
  plan.SpuriousIrqAt(700'000, hw::InterruptSource::kFault, 99);  // No such env.
  kernel.InstallFaultPlan(plan);
  kernel.set_audit_on_fault(true);

  kernel.Run();

  // Both kills crossed CPUs, the prober never read through a revoked
  // mapping, and every post-fault audit (plus the final one) was clean.
  EXPECT_TRUE(probe_done);
  EXPECT_EQ(stale_reads_ok, 0u);
  EXPECT_EQ(probe_faults, static_cast<uint32_t>(kProbeRounds));
  EXPECT_EQ(churn_rounds, 160u);
  EXPECT_EQ(kernel.envs_killed(), 2u);
  EXPECT_GE(kernel.remote_kills_sent(), 2u);
  EXPECT_FALSE(kernel.EnvAlive(victim2.id()));
  EXPECT_FALSE(kernel.EnvAlive(victim3.id()));
  EXPECT_GE(kernel.tlb_shootdowns(), static_cast<uint64_t>(kProbeRounds));
  EXPECT_EQ(kernel.audit_failures(), 0u) << kernel.first_audit_failure();
  aegis::Aegis::AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmpChaosSoak, ::testing::ValuesIn(ChaosSeeds({1, 2, 3})));

// --- Revocation storm: a sustained seeded pressure campaign (pages +
// slices + filters, every period, for millions of cycles) against a
// supervision tree of RevocationClient workers on a two-CPU machine. The
// contract under test: every victim either repairs its abstractions
// (cache refetch, pktring rebind, VM refault, slice re-admission) or is
// restarted by the supervisor; the kernel audits its ledger after every
// pressure application; and once the storm passes, everything is fully
// functional again. ---

class RevocationStorm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RevocationStorm, EveryVictimRepairsOrRestartsAndTheLedgerStaysClean) {
  const uint64_t seed = GetParam();
  // A single disk access costs kDiskAccessCycles (~250k): LibFS setup alone
  // is ~5M cycles, so the campaign horizon must dwarf it.
  constexpr uint64_t kStormEnd = 12'000'000;
  constexpr uint64_t kQuietAt = kStormEnd + 250'000;  // Post-storm horizon.
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "storm", .cpus = 2});
  SCOPED_TRACE(ChaosTrace(seed, &machine));
  // Restart churn burns environment ids (never reused): raise the cap.
  aegis::Aegis kernel(machine, aegis::Aegis::Config{.max_envs = 200});
  hw::Disk disk(machine, 128);
  hw::Nic nic(machine, 0xa);
  kernel.AttachDisk(&disk);
  kernel.AttachNic(&nic);
  kernel.set_audit_on_fault(true);  // Audit at every pressure checkpoint.

  // --- fs worker: journaling LibFS under page + slice pressure. Writes
  // and syncs through the storm (tolerating revocation-induced errors),
  // then must come back to full function once the storm passes. ---
  bool fs_done = false;
  uint32_t fs_rounds = 0;
  auto fs_body = [&](exos::Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = p.kernel().SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    Result<std::unique_ptr<exos::LibFs>> fs = exos::LibFs::Format(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<exos::FileHandle> file = (*fs)->Create("soak");
    ASSERT_TRUE(file.ok());
    exos::RevocationClient rc(p, {.fs = fs->get(), .desired_slices = 3});
    std::vector<uint8_t> chunk(512);
    while (p.kernel().SysGetCycles() < kQuietAt) {
      (void)rc.Poll();
      for (size_t i = 0; i < chunk.size(); ++i) {
        chunk[i] = static_cast<uint8_t>(fs_rounds * 11 + i);
      }
      // Mid-storm writes may lose their frames to repossession before the
      // sync lands; that is the abort protocol working as designed. Sync
      // only every 8th round: a disk barrier costs real (simulated) time,
      // and the in-between rounds are exactly the dirty-cache state the
      // revoke handler's victim-save flush exists for.
      (void)(*fs)->Write(*file, (fs_rounds % 4) * 512, chunk);
      if (fs_rounds % 8 == 7) {
        (void)(*fs)->Sync();
      }
      ++fs_rounds;
      p.kernel().SysSleep(3'000);
    }
    // Post-storm: one repair pass, then everything must work, flawlessly.
    ASSERT_EQ(rc.Poll(), Status::kOk);
    for (uint32_t b = 0; b < 4; ++b) {
      for (size_t i = 0; i < chunk.size(); ++i) {
        chunk[i] = static_cast<uint8_t>(b * 29 + i);
      }
      ASSERT_EQ((*fs)->Write(*file, b * 512, chunk), Status::kOk) << "block " << b;
    }
    ASSERT_EQ((*fs)->Sync(), Status::kOk);
    std::vector<uint8_t> back(512);
    for (uint32_t b = 0; b < 4; ++b) {
      Result<uint32_t> read = (*fs)->Read(*file, b * 512, back);
      ASSERT_TRUE(read.ok()) << "block " << b;
      for (size_t i = 0; i < back.size(); ++i) {
        ASSERT_EQ(back[i], static_cast<uint8_t>(b * 29 + i)) << "block " << b << " byte " << i;
      }
    }
    // The guaranteed reserve held: still admitted to at least one CPU.
    Result<aegis::EnvStats> stats = p.kernel().SysEnvStats(p.id());
    ASSERT_TRUE(stats.ok());
    EXPECT_GE(stats->slice_slots, 1u);
    fs_done = true;
  };

  // --- net worker: its one packet filter is reclaimed over and over;
  // every Poll must rebind it. ---
  bool net_done = false;
  auto net_body = [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xa, 1, Resolve});
    ASSERT_EQ(socket.Bind(900), Status::kOk);
    exos::RevocationClient rc(p, {.socket = &socket});
    while (p.kernel().SysGetCycles() < kQuietAt) {
      (void)rc.Poll();
      p.kernel().SysSleep(6'000);
    }
    ASSERT_EQ(rc.Poll(), Status::kOk);
    ASSERT_TRUE(socket.filter_id().has_value());
    EXPECT_TRUE(p.kernel().SysPacketStats(*socket.filter_id()).ok());
    EXPECT_GT(socket.repairs(), 0u);  // The storm genuinely severed it.
    net_done = true;
  };

  // --- vm worker: a 12-page working set repeatedly shot out from under
  // it; refaults and repairs its way through. ---
  bool vm_done = false;
  constexpr hw::Vaddr kVmBase = 0x2000000;
  auto vm_body = [&](exos::Process& p) {
    exos::RevocationClient rc(p, {});
    for (int i = 0; i < 12; ++i) {
      (void)machine.StoreWord(kVmBase + i * hw::kPageBytes, 1000 + i);
    }
    while (p.kernel().SysGetCycles() < kQuietAt) {
      (void)rc.Poll();
      for (int i = 0; i < 12; ++i) {
        // Between a repossession and the next Poll the mapping may be
        // broken — tolerated mid-storm, repaired right after.
        (void)machine.StoreWord(kVmBase + i * hw::kPageBytes, 2000 + i);
      }
      p.kernel().SysSleep(5'000);
    }
    ASSERT_EQ(rc.Poll(), Status::kOk);
    for (int i = 0; i < 12; ++i) {
      ASSERT_EQ(machine.StoreWord(kVmBase + i * hw::kPageBytes, 3000 + i), Status::kOk);
      Result<uint32_t> word = machine.LoadWord(kVmBase + i * hw::kPageBytes);
      ASSERT_TRUE(word.ok()) << "page " << i;
      EXPECT_EQ(*word, static_cast<uint32_t>(3000 + i));
    }
    vm_done = true;
  };

  // --- crasher: dies twice mid-storm; the supervisor restarts it through
  // the backoff path while the pressure campaign rages. ---
  int crasher_attempts = 0;
  bool crasher_done = false;
  auto crasher_body = [&](exos::Process& p) {
    const int attempt = ++crasher_attempts;
    if (attempt <= 2) {
      p.kernel().SysSleep(150'000 * static_cast<uint64_t>(attempt));
      (void)p.kernel().SysKillEnv(p.id(), p.env_cap());  // Crash.
    }
    while (p.kernel().SysGetCycles() < kQuietAt) {
      p.kernel().SysSleep(20'000);
    }
    crasher_done = true;
  };

  std::vector<exos::ChildSpec> specs;
  specs.push_back({.name = "fs",
                   .body = fs_body,
                   .options = {.slices = 3},
                   .policy = exos::RestartPolicy::kOnFailure,
                   .max_restarts = 4});
  specs.push_back({.name = "net",
                   .body = net_body,
                   .policy = exos::RestartPolicy::kOnFailure,
                   .max_restarts = 4});
  specs.push_back({.name = "vm",
                   .body = vm_body,
                   .policy = exos::RestartPolicy::kOnFailure,
                   .max_restarts = 4});
  specs.push_back({.name = "crasher",
                   .body = crasher_body,
                   .policy = exos::RestartPolicy::kOnFailure,
                   .max_restarts = 6,
                   .backoff_initial = 60'000});
  exos::Supervisor::Options sup_options;
  sup_options.sample_interval = 80'000;
  exos::Supervisor sup(kernel, std::move(specs), sup_options);
  ASSERT_TRUE(sup.ok());

  aegis::PressurePlan plan;
  plan.seed = seed;
  plan.Storm(/*start=*/200'000, /*end=*/kStormEnd, /*period=*/40'000,
             /*pages=*/3, /*slices=*/1, /*filters=*/1);
  kernel.InstallPressurePlan(plan);

  kernel.Run();
  SCOPED_TRACE(ChaosTrace(seed, &machine));  // Final-cycle context below.

  // Every worker repaired its way through (or was restarted) and proved
  // itself fully functional after the storm.
  EXPECT_TRUE(fs_done);
  EXPECT_TRUE(net_done);
  EXPECT_TRUE(vm_done);
  EXPECT_TRUE(crasher_done);
  EXPECT_GT(fs_rounds, 30u);
  EXPECT_EQ(crasher_attempts, 3);
  EXPECT_TRUE(sup.finished());
  for (const exos::ChildStatus& child : sup.status()) {
    EXPECT_EQ(child.state, exos::ChildState::kDone) << child.name;
  }
  EXPECT_EQ(sup.status()[3].restarts, 2u);  // Both crashes were caught.

  // The campaign genuinely exercised every armed channel.
  const aegis::PressureStats* pressure = kernel.pressure_stats();
  ASSERT_NE(pressure, nullptr);
  EXPECT_GE(pressure->bursts, 50u);
  EXPECT_GT(pressure->pages_requested, 0u);
  EXPECT_GT(pressure->slices_revoked, 0u);
  EXPECT_GT(pressure->filters_reclaimed, 0u);

  // Audits at every checkpoint (each pressure application and kill) plus
  // the final sweep: all clean.
  EXPECT_EQ(kernel.audit_failures(), 0u) << kernel.first_audit_failure();
  aegis::Aegis::AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RevocationStorm, ::testing::ValuesIn(ChaosSeeds({1, 2, 3})));

// --- ServerSoak: the whole HTTP/KV server libOS (sharded workers, rings,
// journaled stores, Supervisor) serving a measured closed-loop workload
// while (a) a seeded pressure storm reclaims pages, slices, and packet
// filters out from under everyone, and (b) an assassin environment kills
// a worker mid-burst with the env_cap the Supervisor holds. The contract:
// the Supervisor restarts the victim, the client's retries carry every
// in-flight request across the outage (a restarted shard re-formats and
// re-preloads — tens of millions of cycles the retry budget must dwarf),
// not one response is ever corrupt (data LOSS across the crash is legal
// and visible; data CORRUPTION is counted and must be zero), and the
// kernel's ledger audits clean after every pressure burst and kill. ---

uint64_t SoakResolve(uint32_t) { return 0xa; }  // Loopback: everything is us.

class ServerSoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServerSoak, MidBurstWorkerKillRestartsCleanlyAndNothingCorrupts) {
  namespace srv = exos::server;
  const uint64_t seed = GetParam();
  hw::Machine machine(
      hw::Machine::Config{.phys_pages = 2048, .name = "soak", .cpus = 2});
  SCOPED_TRACE(ChaosTrace(seed, &machine));
  // Restart churn burns env ids (never reused): generous cap.
  aegis::Aegis kernel(machine, aegis::Aegis::Config{.max_envs = 200});
  hw::Nic nic(machine, 0xa);
  // Extents are never reused (monotonic cursor) and every incarnation
  // formats a fresh one: restart churn needs disk headroom.
  hw::Disk disk(machine, 4096);
  kernel.AttachNic(&nic);
  kernel.AttachDisk(&disk);
  kernel.set_audit_on_fault(true);  // Audit after every burst and kill.

  srv::KvServerConfig config;
  config.iface = exos::NetIface{0xa, 1, SoakResolve};
  config.workers = 2;
  config.use_rings = true;
  config.preload = srv::MakePreload(12, 64);
  // The storm makes restarts crash-loop (a multi-million-cycle journaled
  // format cannot finish between repossession bursts): the exponential
  // backoff ladder 2M -> 4M -> 8M -> 16M spreads respawns until one lands
  // past the storm's end, and max_restarts must absorb the failed rungs.
  config.max_restarts = 10;
  config.restart_backoff = 2'000'000;
  config.restart_backoff_cap = 16'000'000;
  // Workers stamp per-request stage marks and the demux copies the req-id
  // tag: the flight-recorder observer below joins them into timelines that
  // survive the kill (the soak's black box).
  config.trace_requests = true;
  srv::KvServer server(kernel, config);
  ASSERT_TRUE(server.ok());

  srv::WorkloadConfig workload;
  workload.seed = seed;
  workload.requests = 120;
  workload.keys = 12;
  workload.put_per_mille = 200;
  // Client emits the send/ack boundary marks but does NOT bind the
  // (one-per-kernel) ring — the observer owns it as a flight recorder.
  workload.mark_requests = true;
  // The retry budget must cover a full worker resurrection through the
  // whole backoff ladder: kill + failed respawns under the storm + the
  // post-storm format/preload ≈ 60M+ cycles of outage.
  workload.retry_timeout_cycles = 200'000;
  workload.max_retries = 1000;
  workload.repair = true;  // The storm shoots at the client, too.
  srv::LoadGenTarget target;
  target.iface = exos::NetIface{0xa, 2, SoakResolve};
  target.server_ip = 1;
  target.server_port = config.port;
  target.workers = config.workers;

  srv::LoadStats stats;
  exos::Process client(kernel,
                       [&](exos::Process& p) { stats = srv::RunLoadGen(p, target, workload); });
  ASSERT_TRUE(client.ok());

  // Flight recorder: binds the kernel event ring (16 pages ~ the last two
  // thousand records, drop-oldest) and stays alive only to repair it if
  // the pressure storm repossesses one of its pages; a clean exit RETAINS
  // the binding, so the kernel keeps appending until the last worker dies
  // and the host decodes the frames post-mortem below — the crash-surviving
  // record of what every request was doing when the assassin struck.
  hw::PageId recorder_first_page = 0;
  uint32_t recorder_pages = 0;
  exos::Process recorder(kernel, [&](exos::Process& p) {
    exos::TraceSession trace(p);
    const exos::TraceConfig trace_config{
        .pages = 16,
        .mask = xtrace::Bit(xtrace::Event::kDpfMatch) |
                xtrace::Bit(xtrace::Event::kAppMark) |
                xtrace::Bit(xtrace::Event::kDiskSubmit) |
                xtrace::Bit(xtrace::Event::kDiskComplete)};
    if (trace.Bind(trace_config) != Status::kOk) {
      return;  // Ring already owned; the EXPECT below reports it.
    }
    recorder_first_page = trace.first_page();
    recorder_pages = trace.page_count();
    while (!server.AllWorkersDone() &&
           p.kernel().SysGetCycles() < 1'500'000'000) {
      p.kernel().SysSleep(200'000);
      const std::vector<hw::PageId> taken = p.kernel().SysReadRepossessed();
      if (!taken.empty() &&
          trace.RepairAfterRepossession(taken) == Status::kOk) {
        recorder_first_page = trace.first_page();
        recorder_pages = trace.page_count();
      }
    }
    // No Close(): exit cleanly with the ring still armed.
  });
  ASSERT_TRUE(recorder.ok());

  // Assassin: waits until the victim shard is demonstrably mid-burst
  // (cross-fiber stats reads are safe under cooperative fibers), then
  // kills its environment with the capability the Supervisor published.
  constexpr uint32_t kVictim = 1;
  bool killed = false;
  uint64_t kill_cycle = 0;
  exos::Process assassin(kernel, [&](exos::Process& p) {
    while (!server.worker_stats(kVictim).done &&
           server.worker_stats(kVictim).requests < 8 &&
           p.kernel().SysGetCycles() < 1'500'000'000) {
      p.kernel().SysSleep(50'000);
    }
    if (server.worker_stats(kVictim).done ||
        server.worker_stats(kVictim).requests < 8) {
      return;  // Never mid-burst (or bailed out): the killed==true
               // assertion below reports it; don't hang the run.
    }
    const exos::Process* child = server.supervisor().child(kVictim);
    ASSERT_NE(child, nullptr);
    kill_cycle = p.kernel().SysGetCycles();
    killed = p.kernel().SysKillEnv(child->id(), child->env_cap()) == Status::kOk;
  });
  ASSERT_TRUE(assassin.ok());

  // The storm opens AFTER boot and warmup (~26M cycles): the scenario
  // under test is a serving system losing resources mid-flight, not a
  // booting one that never gets off the ground. It still brackets the
  // kill's recovery, so the victim's respawns crash-loop through it.
  aegis::PressurePlan plan;
  plan.seed = seed;
  plan.Storm(/*start=*/32'000'000, /*end=*/60'000'000, /*period=*/80'000,
             /*pages=*/2, /*slices=*/1, /*filters=*/1);
  kernel.InstallPressurePlan(plan);

  kernel.Run();
  SCOPED_TRACE(ChaosTrace(seed, &machine));  // Final-cycle context below.

  // The kill landed, the Supervisor resurrected the shard, and both
  // workers finished their QUITs cleanly.
  EXPECT_TRUE(killed);
  EXPECT_GE(server.supervisor().total_restarts(), 1u);
  EXPECT_GE(server.worker_stats(kVictim).incarnations, 2u);
  EXPECT_TRUE(server.AllWorkersDone());
  EXPECT_TRUE(server.supervisor().finished());
  for (const exos::ChildStatus& child : server.supervisor().status()) {
    EXPECT_EQ(child.state, exos::ChildState::kDone) << child.name;
  }

  // Failover did its job: every data request and QUIT eventually acked
  // (through retries — the outage makes them inevitable), and not one
  // reply failed end-to-end verification.
  EXPECT_EQ(stats.acked, workload.requests + config.workers);
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_EQ(stats.unexpected, 0u);
  EXPECT_EQ(stats.deadline_hit, 0u);
  EXPECT_GT(stats.retries, 0u);

  // The storm genuinely fired on every armed channel.
  const aegis::PressureStats* pressure = kernel.pressure_stats();
  ASSERT_NE(pressure, nullptr);
  EXPECT_GT(pressure->bursts, 50u);
  EXPECT_GT(pressure->pages_requested, 0u);
  // (Slices are armed too, but every env here runs at the ReserveFloor's
  // one-slice minimum, so the engine legitimately revokes none.)
  EXPECT_GT(pressure->filters_reclaimed, 0u);

  // Audited after every pressure application and the kill: all clean.
  EXPECT_EQ(kernel.audit_failures(), 0u) << kernel.first_audit_failure();
  aegis::Aegis::AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());

  // Flight-recorder post-mortem: decode the retained ring straight out of
  // simulated RAM (the recorder env is long dead; a clean exit kept the
  // binding armed), reassemble per-request critical paths, and print the
  // slowest request that STARTED at or after the kill — its ring-wait span
  // is the resurrection outage as one request experienced it.
  ASSERT_GT(recorder_pages, 0u);  // The recorder must have won the ring.
  Result<std::vector<xtrace::Record>> flight = exos::DecodeRegion(
      machine.mem().RangeSpan(recorder_first_page, recorder_pages));
  ASSERT_TRUE(flight.ok());
  std::vector<exos::reqtrace::RequestTimeline> timelines =
      exos::reqtrace::AssembleTimelines(*flight);
  const exos::reqtrace::RequestTimeline* slowest = nullptr;
  for (const exos::reqtrace::RequestTimeline& t : timelines) {
    if (killed && t.first_cycle < kill_cycle) {
      continue;  // Pre-kill traffic: not the recovery story.
    }
    if (slowest == nullptr || t.Total() > slowest->Total()) {
      slowest = &t;
    }
  }
  // The kill landed mid-burst with ~half the workload still to serve and
  // the ring retains ~2000 records (far more than the tail generates), so
  // post-kill timelines must have survived in the black box.
  EXPECT_NE(slowest, nullptr);
  if (slowest != nullptr) {
    std::printf("[flight-recorder] seed %llu: kill at cycle %llu, slowest post-kill request:\n%s",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(kill_cycle),
                exos::reqtrace::FormatTimeline(*slowest).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServerSoak, ::testing::ValuesIn(ChaosSeeds({1, 2, 3})));

// --- BlackFridaySoak: every overload-robustness mechanism at once. A
// client machine drives the server machine over a LOSSY wire (loopback
// NICs bypass fault injection, so this soak uses two machines joined by
// hw::World) at an open-loop rate the server cannot sustain, with
// per-request TTLs, seeded-jitter retry backoff, and hedged reads; the
// server runs the full overload config — ring shed watermark, batch
// admission, write shedding, fail-fast re-steer, degraded read-only mode
// — while (a) a revocation storm reclaims its resources, (b) an assassin
// kills a worker mid-burst, and (c) a disk gremlin opens a media-error
// window after recovery. The contract under all of it: every data
// request resolves exactly once (acked or TTL-abandoned — abandonment
// under deliberate overload is the contract working, not a failure),
// nothing is ever corrupt, the victim resurrects, and both kernels'
// ledgers audit clean after every fault. ---

uint64_t BfResolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

class BlackFridaySoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlackFridaySoak, OverdriveStormKillsAndDiskFaultsShedButNeverCorrupt) {
  namespace srv = exos::server;
  const uint64_t seed = GetParam();
  hw::World world;
  // Single-CPU machines only: per-CPU clocks cannot join a World.
  hw::Machine ms(hw::Machine::Config{.phys_pages = 2048, .name = "bfsrv"}, &world);
  hw::Machine mc(hw::Machine::Config{.phys_pages = 1024, .name = "bfcli"}, &world);
  SCOPED_TRACE(ChaosTrace(seed, &ms));
  aegis::Aegis ks(ms, aegis::Aegis::Config{.max_envs = 200});
  aegis::Aegis kc(mc);
  hw::Disk disk(ms, 4096);
  hw::Wire wire;
  hw::Nic na(ms, 0xa);
  hw::Nic nb(mc, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ks.AttachNic(&na);
  ks.AttachDisk(&disk);
  kc.AttachNic(&nb);
  ks.set_audit_on_fault(true);
  kc.set_audit_on_fault(true);

  srv::KvServerConfig config;
  config.iface = exos::NetIface{0xa, 1, BfResolve};
  config.workers = 2;
  config.use_rings = true;
  config.ring.rx_slots = 32;
  config.ring.shed_watermark = 24;   // Shed at the demux past 24 pending.
  config.admission_max_batch = 12;   // 503 + Retry-After past this depth.
  config.admission_write_shed = 8;   // PUTs shed first under pressure.
  config.preload = srv::MakePreload(12, 64);
  config.max_restarts = 10;
  config.restart_backoff = 2'000'000;
  config.restart_backoff_cap = 16'000'000;
  // Stage marks + demux req-id tag for the flight recorder below. The
  // client runs on the OTHER kernel, whose ring is unbound, so its
  // send/ack marks cannot reach this recorder: timelines here are
  // server-side (demux -> worker exit), which is exactly the half the
  // post-mortem needs.
  config.trace_requests = true;
  srv::KvServer server(ks, config);
  ASSERT_TRUE(server.ok());

  srv::WorkloadConfig workload;
  workload.seed = seed;
  workload.requests = 240;
  workload.keys = 12;
  workload.put_per_mille = 200;
  // Overdrive: one request every 15k cycles regardless of the backlog —
  // well past what two workers journaling PUTs can sustain.
  workload.open_loop_interval_cycles = 15'000;
  // Robust-client kit: deadlines, decorrelated exponential backoff,
  // hedged reads. The TTL dwarfs a single 503 round-trip but not a full
  // worker resurrection — requests in flight across the outage abandon,
  // and that is the correct outcome under this much chaos.
  workload.request_ttl_cycles = 60'000'000;
  workload.retry_timeout_cycles = 200'000;
  workload.retry_backoff_cap_cycles = 3'200'000;
  workload.retry_jitter = true;
  workload.hedge_after_cycles = 2'000'000;
  workload.max_retries = 1000;
  srv::LoadGenTarget target;
  target.iface = exos::NetIface{0xb, 2, BfResolve};
  target.server_ip = 1;
  target.server_port = config.port;
  target.workers = config.workers;

  srv::LoadStats stats;
  exos::Process client(kc,
                       [&](exos::Process& p) { stats = srv::RunLoadGen(p, target, workload); });
  ASSERT_TRUE(client.ok());

  // Flight recorder on the server kernel (see ServerSoak): 16 drop-oldest
  // pages of demux/mark/disk records, repaired through the storm, retained
  // past the recorder's clean exit for the host-side decode below.
  hw::PageId recorder_first_page = 0;
  uint32_t recorder_pages = 0;
  exos::Process recorder(ks, [&](exos::Process& p) {
    exos::TraceSession trace(p);
    const exos::TraceConfig trace_config{
        .pages = 16,
        .mask = xtrace::Bit(xtrace::Event::kDpfMatch) |
                xtrace::Bit(xtrace::Event::kAppMark) |
                xtrace::Bit(xtrace::Event::kDiskSubmit) |
                xtrace::Bit(xtrace::Event::kDiskComplete)};
    if (trace.Bind(trace_config) != Status::kOk) {
      return;
    }
    recorder_first_page = trace.first_page();
    recorder_pages = trace.page_count();
    while (!server.AllWorkersDone() &&
           p.kernel().SysGetCycles() < 1'500'000'000) {
      p.kernel().SysSleep(200'000);
      const std::vector<hw::PageId> taken = p.kernel().SysReadRepossessed();
      if (!taken.empty() &&
          trace.RepairAfterRepossession(taken) == Status::kOk) {
        recorder_first_page = trace.first_page();
        recorder_pages = trace.page_count();
      }
    }
  });
  ASSERT_TRUE(recorder.ok());

  // Assassin: kill shard 1 once it is demonstrably mid-burst.
  constexpr uint32_t kVictim = 1;
  bool killed = false;
  uint64_t kill_cycle = 0;
  exos::Process assassin(ks, [&](exos::Process& p) {
    while (!server.worker_stats(kVictim).done &&
           server.worker_stats(kVictim).requests < 8 &&
           p.kernel().SysGetCycles() < 1'500'000'000) {
      p.kernel().SysSleep(50'000);
    }
    if (server.worker_stats(kVictim).done ||
        server.worker_stats(kVictim).requests < 8) {
      return;
    }
    const exos::Process* child = server.supervisor().child(kVictim);
    ASSERT_NE(child, nullptr);
    kill_cycle = p.kernel().SysGetCycles();
    killed = p.kernel().SysKillEnv(child->id(), child->env_cap()) == Status::kOk;
  });
  ASSERT_TRUE(assassin.ok());

  // Disk gremlin: once the victim has resurrected and the storm is over,
  // open a media-error window under the still-serving workers. Workers
  // that trip it degrade to read-only (stale cache GETs, 503 PUTs) and
  // their probe Syncs resume journaling when the window closes.
  bool window_armed = false;
  exos::Process gremlin(ks, [&](exos::Process& p) {
    while (!(killed && server.supervisor().total_restarts() >= 1 &&
             server.worker_stats(kVictim).incarnations >= 2 &&
             p.kernel().SysGetCycles() >= 75'000'000) &&
           !server.AllWorkersDone() &&
           p.kernel().SysGetCycles() < 1'500'000'000) {
      p.kernel().SysSleep(100'000);
    }
    if (server.AllWorkersDone()) {
      return;  // Run already drained: nothing left to degrade.
    }
    p.kernel().SysSleep(5'000'000);  // Let the respawn finish formatting.
    const uint64_t now = p.kernel().SysGetCycles();
    disk.SetErrorWindow(now, now + 8'000'000);
    window_armed = true;
  });
  ASSERT_TRUE(gremlin.ok());


  // Revocation storm against the server kernel, mid-flight.
  aegis::PressurePlan pressure_plan;
  pressure_plan.seed = seed;
  pressure_plan.Storm(/*start=*/40'000'000, /*end=*/70'000'000, /*period=*/80'000,
                      /*pages=*/2, /*slices=*/1, /*filters=*/1);
  ks.InstallPressurePlan(pressure_plan);

  // Wire loss between the machines (drops only: loadgen's end-to-end
  // X-Sum check counts corruption as a server-side failure, so the
  // corruption channel belongs to the RDP soaks, not this one).
  hw::FaultPlan fault_plan;
  fault_plan.seed = seed;
  fault_plan.wire_drop_per_mille = 25;
  ks.InstallFaultPlan(fault_plan);
  wire.set_fault_injector(ks.fault_injector());

  world.Run({[&] { ks.Run(); }, [&] { kc.Run(); }});
  SCOPED_TRACE(ChaosTrace(seed, &ms));  // Final-cycle context below.

  // The kill landed and the Supervisor resurrected the shard.
  EXPECT_TRUE(killed);
  EXPECT_GE(server.supervisor().total_restarts(), 1u);
  EXPECT_GE(server.worker_stats(kVictim).incarnations, 2u);
  EXPECT_TRUE(server.AllWorkersDone());
  EXPECT_TRUE(server.supervisor().finished());
  for (const exos::ChildStatus& child : server.supervisor().status()) {
    EXPECT_EQ(child.state, exos::ChildState::kDone) << child.name;
  }

  // Conservation: every data request (and both QUITs) resolved exactly
  // once — acked or TTL-abandoned, never lost, never given up on, and
  // never corrupt. Real goodput got through the carnage.
  EXPECT_EQ(stats.acked + stats.ttl_abandoned,
            workload.requests + config.workers);
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_EQ(stats.unexpected, 0u);
  EXPECT_EQ(stats.deadline_hit, 0u);
  EXPECT_GT(stats.acked, static_cast<uint64_t>(config.workers) + workload.requests / 4);

  // The overload machinery demonstrably carried load: admission, write
  // shed, TTL shed, rescue, or a degraded episode fired server-side.
  uint64_t shed_total = 0;
  uint64_t degraded_entries = 0;
  for (uint32_t i = 0; i < config.workers; ++i) {
    const srv::WorkerStats& ws = server.worker_stats(i);
    shed_total += ws.shed_busy + ws.shed_writes + ws.expired + ws.rescued_503 +
                  ws.degraded_entries;
    degraded_entries += ws.degraded_entries;
  }
  EXPECT_GT(shed_total, 0u);
  if (window_armed) {
    // The gremlin's window only guarantees a degraded episode if a disk
    // op landed inside it; when one did, the worker must also have
    // recovered (probe Sync) before its clean QUIT exit above.
    uint64_t degraded_exits = 0;
    for (uint32_t i = 0; i < config.workers; ++i) {
      degraded_exits += server.worker_stats(i).degraded_exits;
    }
    EXPECT_EQ(degraded_entries, degraded_exits);
  }

  // The storm and the wire loss genuinely fired.
  const aegis::PressureStats* pressure = ks.pressure_stats();
  ASSERT_NE(pressure, nullptr);
  EXPECT_GT(pressure->bursts, 50u);
  EXPECT_GT(ks.fault_injector()->frames_dropped(), 0u);

  // Audited after every pressure burst, kill, and fault: all clean.
  EXPECT_EQ(ks.audit_failures(), 0u) << ks.first_audit_failure();
  EXPECT_EQ(kc.audit_failures(), 0u) << kc.first_audit_failure();
  aegis::Aegis::AuditReport report = ks.AuditInvariants();
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_TRUE(kc.AuditInvariants().ok());

  // Flight-recorder post-mortem (server-side timelines): the slowest
  // request the server finished after the kill, straight out of RAM.
  ASSERT_GT(recorder_pages, 0u);
  Result<std::vector<xtrace::Record>> flight = exos::DecodeRegion(
      ms.mem().RangeSpan(recorder_first_page, recorder_pages));
  ASSERT_TRUE(flight.ok());
  std::vector<exos::reqtrace::RequestTimeline> timelines =
      exos::reqtrace::AssembleTimelines(*flight);
  const exos::reqtrace::RequestTimeline* slowest = nullptr;
  for (const exos::reqtrace::RequestTimeline& t : timelines) {
    if (killed && t.first_cycle < kill_cycle) {
      continue;
    }
    if (slowest == nullptr || t.Total() > slowest->Total()) {
      slowest = &t;
    }
  }
  EXPECT_NE(slowest, nullptr);
  if (slowest != nullptr) {
    std::printf("[flight-recorder] seed %llu: kill at cycle %llu, slowest post-kill request:\n%s",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(kill_cycle),
                exos::reqtrace::FormatTimeline(*slowest).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlackFridaySoak, ::testing::ValuesIn(ChaosSeeds({1, 2, 3})));

}  // namespace
}  // namespace xok
