// Randomized chaos soak: several library OSes (VM exerciser, pipe pair,
// LibFS over a faulty disk, RDP over a lossy+corrupting wire) run
// concurrently while a seeded FaultPlan kills environments at arbitrary
// cycle points and injects device errors. After every injected event the
// kernel audits its own resource tables (set_audit_on_fault); at the end,
// every surviving protocol must have completed correctly. The whole run is
// deterministic per seed.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/fs.h"
#include "src/exos/tracelib.h"
#include "src/exos/ipc.h"
#include "src/exos/rdp.h"
#include "src/hw/disk.h"
#include "src/hw/fault.h"
#include "src/hw/framebuffer.h"
#include "src/hw/nic.h"
#include "src/hw/world.h"

namespace xok {
namespace {

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

constexpr uint32_t kPipeWords = 2000;
constexpr uint32_t kWordStride = 2654435761u;  // Knuth multiplicative hash.
constexpr int kRdpMessages = 20;

class ChaosSoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSoak, KilledEnvironmentsNeverCorruptTheSurvivors) {
  const uint64_t seed = GetParam();
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "chaos"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "peer"}, &world);
  aegis::Aegis ka(ma);
  aegis::Aegis kb(mb);
  hw::Disk disk(ma, 256);
  hw::Framebuffer fb(ma, 64, 64);
  ka.AttachDisk(&disk);
  ka.AttachFramebuffer(&fb);
  hw::Wire wire;
  hw::Nic na(ma, 0xa);
  hw::Nic nb(mb, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ka.AttachNic(&na);
  kb.AttachNic(&nb);

  // --- Observer: binds the kernel event ring (lifecycle events only — the
  // mask is measurement policy) and exits cleanly, which *retains* the
  // binding: the kernel keeps appending for the whole soak and the ring is
  // read post-mortem below. The observer never runs again, so it cannot
  // perturb the chaos it is recording. ---
  hw::PageId trace_first_page = 0;
  uint32_t trace_pages = 0;
  exos::Process observer(ka, [&](exos::Process& p) {
    exos::TraceSession trace(p);
    ASSERT_EQ(trace.Bind({.pages = 2, .mask = xtrace::kMaskEnvLifecycle}), Status::kOk);
    trace_first_page = trace.first_page();
    trace_pages = trace.page_count();
    // No Close(): exit cleanly with the ring still armed.
  });

  // --- Pipe pair: the writer produces forever (it dies by kill); the
  // reader must obtain kPipeWords intact words and exit cleanly. ---
  exos::SharedBufferDesc desc;
  bool pipe_ready = false;
  bool reader_done = false;
  exos::PipePeer writer_peer;
  exos::PipePeer reader_peer;
  constexpr hw::Vaddr kRingVa = 0x5000000;
  exos::Process pipe_writer(ka, [&](exos::Process& p) {
    desc = *exos::CreateSharedBuffer(p);
    ASSERT_EQ(exos::MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    pipe_ready = true;
    exos::PipeEndpoint out(p, kRingVa, writer_peer, false);
    for (uint32_t i = 0;; ++i) {
      if (out.WriteWord(i * kWordStride) != Status::kOk) {
        break;  // EPIPE: the reader finished and exited.
      }
    }
    for (;;) {
      p.kernel().SysSleep(100'000);  // Park until the scheduled kill lands.
    }
  });
  exos::Process pipe_reader(ka, [&](exos::Process& p) {
    while (!pipe_ready) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(exos::MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    exos::PipeEndpoint in(p, kRingVa, reader_peer, false);
    for (uint32_t i = 0; i < kPipeWords; ++i) {
      Result<uint32_t> word = in.ReadWord();
      ASSERT_TRUE(word.ok()) << "word " << i;
      ASSERT_EQ(*word, i * kWordStride) << "word " << i;
    }
    reader_done = true;
  });

  // --- VM exerciser: allocates, scribbles, and frees pages, and paints
  // its framebuffer tile, forever (dies by kill). ---
  exos::Process vm_worker(ka, [&](exos::Process& p) {
    ASSERT_EQ(p.kernel().SysBindFbTile(0, 0), Status::kOk);
    for (uint32_t round = 0;; ++round) {
      Result<aegis::PageGrant> page = p.kernel().SysAllocPage();
      if (page.ok()) {
        std::span<uint8_t> bytes = ma.mem().PageSpan(page->page);
        bytes[round % bytes.size()] = static_cast<uint8_t>(round);
        (void)p.kernel().SysDeallocPage(page->page, page->cap);
      }
      (void)fb.WritePixel(p.id(), round % 16, (round / 16) % 16, 0xff00ff00u | round);
      p.kernel().SysSleep(5'000);
    }
  });

  // --- LibFS worker over the faulty disk: write/sync/read loops forever
  // (dies by kill, possibly mid disk transfer). ---
  exos::Process fs_worker(ka, [&](exos::Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = p.kernel().SysAllocDiskExtent(32);
    ASSERT_TRUE(extent.ok());
    Result<std::unique_ptr<exos::LibFs>> fs = exos::LibFs::Format(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<exos::FileHandle> file = (*fs)->Create("scratch");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> chunk(512);
    for (uint32_t round = 0;; ++round) {
      for (size_t i = 0; i < chunk.size(); ++i) {
        chunk[i] = static_cast<uint8_t>(round * 13 + i);
      }
      // Transient kErrIo past the retry budget is tolerated; being killed
      // mid-transfer is the interesting case.
      (void)(*fs)->Write(*file, (round % 8) * 512, chunk);
      (void)(*fs)->Sync();
      std::vector<uint8_t> back(chunk.size());
      (void)(*fs)->Read(*file, (round % 8) * 512, back);
      p.kernel().SysSleep(2'000);
    }
  });

  // --- Hostile environment: hammers the kernel with forged and stale
  // capabilities the whole time. Every attempt must be denied; it exits
  // cleanly so the denial count is always asserted. ---
  bool forgery_checked = false;
  exos::Process hostile(ka, [&](exos::Process& p) {
    for (int round = 0; round < 200; ++round) {
      Result<aegis::PageGrant> page = p.kernel().SysAllocPage();
      ASSERT_TRUE(page.ok());
      cap::Capability forged = page->cap;
      forged.mac ^= 0x1995 + round;
      EXPECT_EQ(p.kernel().SysTlbWrite(0x30000, page->page, true, forged),
                Status::kErrAccessDenied);
      ASSERT_EQ(p.kernel().SysDeallocPage(page->page, page->cap), Status::kOk);
      // Stale epoch: the very capability that was just valid.
      EXPECT_EQ(p.kernel().SysTlbWrite(0x30000, page->page, true, page->cap),
                Status::kErrAccessDenied);
      p.kernel().SysSleep(1'000);
    }
    forgery_checked = true;
  });

  // --- Packet-ring consumer killed mid-drain: a flooder on the peer
  // machine streams datagrams at a ring-bound socket forever; the consumer
  // drains its RX ring until the scheduled kill lands at an arbitrary
  // point in the drain loop. Teardown must reclaim the ring region while
  // frames are still in flight at it. ---
  uint64_t ring_frames_drained = 0;
  dpf::FilterId ring_filter = 0;
  exos::Process ring_consumer(ka, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xa, 1, Resolve});
    ASSERT_EQ(socket.BindRing(300, exos::RingConfig{.rx_slots = 8, .tx_slots = 4}),
              Status::kOk);
    ring_filter = *socket.filter_id();
    for (;;) {
      Result<exos::Datagram> dgram = socket.Recv();  // Dies by kill in here.
      if (dgram.ok()) {
        ++ring_frames_drained;
      }
    }
  });
  exos::Process ring_flooder(kb, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xb, 2, Resolve});
    ASSERT_EQ(socket.BindRing(301), Status::kOk);
    p.kernel().SysSleep(hw::kClockHz / 100);
    for (int round = 0; round < 700; ++round) {
      for (uint8_t burst = 0; burst < 4; ++burst) {
        const std::vector<uint8_t> payload = {static_cast<uint8_t>(round), burst};
        (void)socket.QueueTo(1, 300, payload);
      }
      (void)socket.FlushTx();  // One doorbell per burst of four.
      p.kernel().SysSleep(5'000);
    }
    EXPECT_EQ(socket.Close(), Status::kOk);
  });

  // --- RDP pair across the faulty wire: must deliver everything exactly
  // once, in order, despite drops and corruption. ---
  std::vector<std::vector<uint8_t>> received;
  bool sender_done = false;
  exos::Process rdp_sender(ka, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xa, 1, Resolve});
    ASSERT_EQ(socket.Bind(100), Status::kOk);
    exos::RdpEndpoint rdp(p, socket, exos::RdpEndpoint::Config{.peer_ip = 2, .peer_port = 200});
    p.kernel().SysSleep(hw::kClockHz / 100);
    for (int i = 0; i < kRdpMessages; ++i) {
      std::vector<uint8_t> payload(1 + (i % 32));
      for (size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<uint8_t>(i * 3 + j);
      }
      ASSERT_EQ(rdp.Send(payload), Status::kOk);
    }
    sender_done = true;
  });
  exos::Process rdp_receiver(kb, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xb, 2, Resolve});
    ASSERT_EQ(socket.Bind(200), Status::kOk);
    exos::RdpEndpoint rdp(p, socket, exos::RdpEndpoint::Config{.peer_ip = 1, .peer_port = 100});
    for (int i = 0; i < kRdpMessages; ++i) {
      Result<std::vector<uint8_t>> msg = rdp.Recv();
      ASSERT_TRUE(msg.ok());
      received.push_back(*msg);
    }
    for (int round = 0; round < 16; ++round) {
      p.kernel().SysSleep(hw::kClockHz / 500);
      rdp.PumpAcks();
    }
  });

  ASSERT_TRUE(observer.ok());
  ASSERT_TRUE(pipe_writer.ok());
  ASSERT_TRUE(pipe_reader.ok());
  ASSERT_TRUE(vm_worker.ok());
  ASSERT_TRUE(fs_worker.ok());
  ASSERT_TRUE(hostile.ok());
  ASSERT_TRUE(ring_consumer.ok());
  ASSERT_TRUE(ring_flooder.ok());
  ASSERT_TRUE(rdp_sender.ok());
  ASSERT_TRUE(rdp_receiver.ok());
  writer_peer = {pipe_reader.id(), pipe_reader.env_cap()};
  reader_peer = {pipe_writer.id(), pipe_writer.env_cap()};

  // --- The fault plan: stochastic disk/wire faults plus scheduled kills
  // aimed at the forever-running workers, at arbitrary cycle points. ---
  hw::FaultPlan plan;
  plan.seed = seed;
  plan.disk_error_per_mille = 150;
  plan.wire_drop_per_mille = 40;
  plan.wire_corrupt_per_mille = 40;
  plan.KillEnvAt(1'800'000, pipe_writer.id());
  plan.KillEnvAt(2'500'000 + 10'000 * seed, vm_worker.id());
  plan.KillEnvAt(3'500'000 + 20'000 * seed, fs_worker.id());
  plan.KillEnvAt(2'800'000 + 15'000 * seed, ring_consumer.id());
  plan.SpuriousIrqAt(500'000, hw::InterruptSource::kDiskDone, 424242);
  plan.SpuriousIrqAt(900'000, hw::InterruptSource::kFault, 61);  // No such env.
  ka.InstallFaultPlan(plan);
  wire.set_fault_injector(ka.fault_injector());
  ka.set_audit_on_fault(true);
  kb.set_audit_on_fault(true);

  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});

  // Survivors completed despite the carnage around them.
  EXPECT_TRUE(reader_done);
  EXPECT_TRUE(sender_done);
  EXPECT_TRUE(forgery_checked);
  ASSERT_EQ(received.size(), static_cast<size_t>(kRdpMessages));
  for (int i = 0; i < kRdpMessages; ++i) {
    ASSERT_EQ(received[i].size(), static_cast<size_t>(1 + (i % 32))) << "message " << i;
    for (size_t j = 0; j < received[i].size(); ++j) {
      ASSERT_EQ(received[i][j], static_cast<uint8_t>(i * 3 + j)) << "message " << i;
    }
  }

  // Every scheduled kill landed, and every post-event audit was clean.
  EXPECT_EQ(ka.envs_killed(), 4u);
  EXPECT_FALSE(ka.EnvAlive(pipe_writer.id()));
  EXPECT_FALSE(ka.EnvAlive(vm_worker.id()));
  EXPECT_FALSE(ka.EnvAlive(fs_worker.id()));
  EXPECT_FALSE(ka.EnvAlive(ring_consumer.id()));
  // The ring consumer was mid-traffic when it died: it had drained frames,
  // the kernel had deposited into its ring, and the post-mortem stats are
  // still readable even though teardown unbound the ring itself.
  EXPECT_GT(ring_frames_drained, 0u);
  const aegis::PacketStats ring_stats = ka.packet_stats(ring_filter);
  EXPECT_GT(ring_stats.delivered, 0u);
  EXPECT_FALSE(ring_stats.ring_bound);
  EXPECT_EQ(ka.audit_failures(), 0u) << ka.first_audit_failure();
  EXPECT_EQ(kb.audit_failures(), 0u) << kb.first_audit_failure();
  aegis::Aegis::AuditReport ra = ka.AuditInvariants();
  EXPECT_TRUE(ra.ok()) << (ra.violations.empty() ? "" : ra.violations.front());
  EXPECT_TRUE(kb.AuditInvariants().ok());
  // The dead VM worker's framebuffer tile went back to the hardware pool.
  EXPECT_EQ(fb.TileOwner(0, 0), hw::Framebuffer::kNoOwner);

  // The event ring survived the whole soak and its record of the carnage
  // matches the kernel's: exactly the scheduled kills appear as forced
  // deaths, while the ring binding (owned by a cleanly exited env) is
  // still live and auditable.
  ASSERT_GT(trace_pages, 0u);
  Result<std::vector<xtrace::Record>> trace_records =
      exos::DecodeRegion(ma.mem().RangeSpan(trace_first_page, trace_pages));
  ASSERT_TRUE(trace_records.ok());
  uint64_t forced_deaths = 0;
  for (const xtrace::Record& record : *trace_records) {
    if (record.type == static_cast<uint16_t>(xtrace::Event::kEnvDeath) &&
        record.arg1 == 1) {
      ++forced_deaths;
    }
  }
  EXPECT_EQ(forced_deaths, ka.envs_killed());
  EXPECT_TRUE(ka.trace_armed());

  // The fault channels all genuinely fired.
  const hw::FaultInjector* injector = ka.fault_injector();
  EXPECT_GT(injector->disk_errors_injected(), 0u);
  EXPECT_GT(injector->frames_dropped() + injector->frames_corrupted(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak, ::testing::Values(1, 2, 3));

// --- SMP chaos: the same discipline on a four-CPU machine. Scheduled
// kills land on environments pinned to *other* CPUs than the one the
// fault interrupt arrives on, so every forced death crosses an IPI; a
// stale-TLB prober repeatedly maps, loses, and re-touches a frame to
// prove shootdown holds under load (a stale read succeeding would mean
// reading memory that may already have been reallocated). ---

class SmpChaosSoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmpChaosSoak, RemoteKillsAndShootdownsLeaveTheLedgerClean) {
  const uint64_t seed = GetParam();
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "smp-chaos", .cpus = 4});
  aegis::Aegis kernel(machine);

  // Per-CPU page churners: allocate, scribble, free, sleep — finite, so
  // the run can drain once the victims are dead.
  std::vector<std::unique_ptr<exos::Process>> churners;
  uint32_t churn_rounds = 0;
  for (uint32_t k = 0; k < 4; ++k) {
    exos::Process::Options options;
    options.cpu_mask = 1ULL << k;
    churners.push_back(std::make_unique<exos::Process>(
        kernel,
        [&, k](exos::Process& p) {
          for (uint32_t round = 0; round < 40; ++round) {
            Result<aegis::PageGrant> page = p.kernel().SysAllocPage();
            if (page.ok()) {
              std::span<uint8_t> bytes = machine.mem().PageSpan(page->page);
              bytes[(round + k) % bytes.size()] = static_cast<uint8_t>(round);
              (void)p.kernel().SysDeallocPage(page->page, page->cap);
            }
            p.kernel().SysSleep(3'000 + 500 * k);
            ++churn_rounds;
          }
        },
        options));
    ASSERT_TRUE(churners.back()->ok());
  }

  // Kill victims pinned to CPUs 2 and 3: the kFault interrupt arrives on
  // CPU 0, so both reaps must travel by IPI.
  exos::Process::Options victim2_opts;
  victim2_opts.cpu_mask = 1ULL << 2;
  exos::Process victim2(kernel, [&](exos::Process& p) {
    for (;;) {
      p.kernel().SysNull();
      p.machine().Charge(200);
    }
  }, victim2_opts);
  exos::Process::Options victim3_opts;
  victim3_opts.cpu_mask = 1ULL << 3;
  exos::Process victim3(kernel, [&](exos::Process& p) {
    for (;;) {
      Result<aegis::PageGrant> page = p.kernel().SysAllocPage();
      if (page.ok()) {
        // Die holding pages sometimes: teardown must reclaim them.
        if ((p.machine().clock().now() & 1) == 0) {
          (void)p.kernel().SysDeallocPage(page->page, page->cap);
        }
      }
      p.machine().Charge(500);
    }
  }, victim3_opts);
  ASSERT_TRUE(victim2.ok());
  ASSERT_TRUE(victim3.ok());

  // Stale-TLB prober: maps and touches a frame on CPU 1; a partner on
  // CPU 0 revokes it with the shared capability; the prober's re-touch
  // must fault every round — never observe the frame's next life.
  constexpr hw::Vaddr kVa = 0x40000;
  constexpr int kProbeRounds = 6;
  hw::PageId probe_page = 0;
  cap::Capability probe_cap;
  int probe_round = 0;     // Handshake: prober publishes, partner consumes.
  int revoked_round = 0;
  uint32_t stale_reads_ok = 0;
  uint32_t probe_faults = 0;
  bool probe_done = false;

  aegis::EnvSpec prober;
  prober.cpu_mask = 1ULL << 1;
  prober.handlers.exception = [&](const hw::TrapFrame&) {
    ++probe_faults;
    return aegis::ExcAction::kSkip;
  };
  prober.entry = [&] {
    for (int round = 1; round <= kProbeRounds; ++round) {
      Result<aegis::PageGrant> grant = kernel.SysAllocPage();
      ASSERT_TRUE(grant.ok());
      probe_page = grant->page;
      probe_cap = grant->cap;
      ASSERT_EQ(kernel.SysTlbWrite(kVa, probe_page, true, probe_cap), Status::kOk);
      ASSERT_EQ(machine.StoreWord(kVa, 0xbee70000u + round), Status::kOk);
      probe_round = round;
      while (revoked_round < round) {
        kernel.SysYield();
      }
      if (machine.LoadWord(kVa).ok()) {
        ++stale_reads_ok;  // Shootdown failed: we just read a freed frame.
      }
    }
    probe_done = true;
  };
  ASSERT_TRUE(kernel.CreateEnv(std::move(prober)).ok());

  aegis::EnvSpec partner;
  partner.cpu_mask = 1ULL << 0;
  partner.entry = [&] {
    for (int round = 1; round <= kProbeRounds; ++round) {
      while (probe_round < round) {
        kernel.SysYield();
      }
      ASSERT_EQ(kernel.SysDeallocPage(probe_page, probe_cap), Status::kOk);
      // Grab the freed frame and give it a new life immediately: if the
      // prober's stale translation survived, it would read this.
      Result<aegis::PageGrant> next = kernel.SysAllocPage();
      if (next.ok()) {
        std::span<uint8_t> bytes = machine.mem().PageSpan(next->page);
        bytes[0] = 0xd0;
        (void)kernel.SysDeallocPage(next->page, next->cap);
      }
      revoked_round = round;
    }
  };
  ASSERT_TRUE(kernel.CreateEnv(std::move(partner)).ok());

  hw::FaultPlan plan;
  plan.seed = seed;
  plan.KillEnvAt(900'000 + 40'000 * seed, victim2.id());
  plan.KillEnvAt(1'600'000 + 25'000 * seed, victim3.id());
  plan.SpuriousIrqAt(700'000, hw::InterruptSource::kFault, 99);  // No such env.
  kernel.InstallFaultPlan(plan);
  kernel.set_audit_on_fault(true);

  kernel.Run();

  // Both kills crossed CPUs, the prober never read through a revoked
  // mapping, and every post-fault audit (plus the final one) was clean.
  EXPECT_TRUE(probe_done);
  EXPECT_EQ(stale_reads_ok, 0u);
  EXPECT_EQ(probe_faults, static_cast<uint32_t>(kProbeRounds));
  EXPECT_EQ(churn_rounds, 160u);
  EXPECT_EQ(kernel.envs_killed(), 2u);
  EXPECT_GE(kernel.remote_kills_sent(), 2u);
  EXPECT_FALSE(kernel.EnvAlive(victim2.id()));
  EXPECT_FALSE(kernel.EnvAlive(victim3.id()));
  EXPECT_GE(kernel.tlb_shootdowns(), static_cast<uint64_t>(kProbeRounds));
  EXPECT_EQ(kernel.audit_failures(), 0u) << kernel.first_audit_failure();
  aegis::Aegis::AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmpChaosSoak, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace xok
