// Seed selection for the chaos soaks. Every run is deterministic per
// seed, so reproducing a failure is just re-running with the seed the
// failure printed. XOK_CHAOS_SEEDS overrides the checked-in seed list:
//
//   XOK_CHAOS_SEEDS=17,42,9001 ctest -R Chaos
//
// Use SCOPED_TRACE(ChaosTrace(seed, machine)) at the top of a soak so
// every assertion failure reports the seed (and the cycle it fired at,
// when a machine is attached).
#ifndef XOK_TESTS_CHAOS_SEEDS_H_
#define XOK_TESTS_CHAOS_SEEDS_H_

#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "src/hw/machine.h"

namespace xok {

// Returns the seeds to instantiate a chaos suite with: the parsed value
// of XOK_CHAOS_SEEDS (comma-separated integers) if set and non-empty,
// else `defaults`. Malformed entries are skipped.
inline std::vector<uint64_t> ChaosSeeds(std::initializer_list<uint64_t> defaults) {
  const char* env = std::getenv("XOK_CHAOS_SEEDS");
  if (env != nullptr && env[0] != '\0') {
    std::vector<uint64_t> seeds;
    std::stringstream stream(env);
    std::string token;
    while (std::getline(stream, token, ',')) {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(token.c_str(), &end, 0);
      if (end != token.c_str()) {
        seeds.push_back(static_cast<uint64_t>(value));
      }
    }
    if (!seeds.empty()) {
      return seeds;
    }
  }
  return std::vector<uint64_t>(defaults);
}

// One-line failure context: which seed, and (if the machine is running)
// which cycle the failing assertion executed at. Pass to SCOPED_TRACE;
// the cycle is evaluated lazily-enough for our purposes — tests that
// assert after Run() report the final cycle, assertions inside env
// fibers report the live clock via a second ChaosTrace there if needed.
inline std::string ChaosTrace(uint64_t seed, const hw::Machine* machine = nullptr) {
  std::ostringstream out;
  out << "chaos seed " << seed << " (rerun: XOK_CHAOS_SEEDS=" << seed << ")";
  if (machine != nullptr) {
    out << " at cycle " << machine->clock().now();
  }
  return out.str();
}

}  // namespace xok

#endif  // XOK_TESTS_CHAOS_SEEDS_H_
