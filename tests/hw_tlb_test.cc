#include "src/hw/tlb.h"

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "src/base/rand.h"

namespace xok::hw {
namespace {

TlbEntry Entry(Vpn vpn, Asid asid, PageId pfn, bool writable = true) {
  return TlbEntry{vpn, asid, pfn, /*valid=*/true, writable};
}

TEST(Tlb, MissesWhenEmpty) {
  Tlb tlb;
  EXPECT_EQ(tlb.Lookup(0x10, 1), nullptr);
}

TEST(Tlb, HitAfterWrite) {
  Tlb tlb;
  tlb.WriteRandom(Entry(0x10, 1, 77));
  const TlbEntry* entry = tlb.Lookup(0x10, 1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->pfn, 77u);
  EXPECT_TRUE(entry->writable);
}

TEST(Tlb, AsidIsolatesAddressSpaces) {
  Tlb tlb;
  tlb.WriteRandom(Entry(0x10, 1, 77));
  EXPECT_EQ(tlb.Lookup(0x10, 2), nullptr);
  tlb.WriteRandom(Entry(0x10, 2, 88));
  EXPECT_EQ(tlb.Lookup(0x10, 1)->pfn, 77u);
  EXPECT_EQ(tlb.Lookup(0x10, 2)->pfn, 88u);
}

TEST(Tlb, RewriteReplacesExistingMappingWithoutDuplicates) {
  Tlb tlb;
  tlb.WriteRandom(Entry(0x10, 1, 77));
  tlb.WriteRandom(Entry(0x10, 1, 99, /*writable=*/false));
  int live = 0;
  for (const TlbEntry& entry : tlb.entries()) {
    if (entry.valid && entry.vpn == 0x10 && entry.asid == 1) {
      ++live;
      EXPECT_EQ(entry.pfn, 99u);
      EXPECT_FALSE(entry.writable);
    }
  }
  EXPECT_EQ(live, 1);
}

TEST(Tlb, InvalidateRemovesEntry) {
  Tlb tlb;
  tlb.WriteRandom(Entry(0x10, 1, 77));
  tlb.Invalidate(0x10, 1);
  EXPECT_EQ(tlb.Lookup(0x10, 1), nullptr);
}

TEST(Tlb, InvalidateMissingEntryIsHarmless) {
  Tlb tlb;
  tlb.Invalidate(0x99, 7);
  EXPECT_EQ(tlb.Lookup(0x99, 7), nullptr);
}

TEST(Tlb, FlushAsidRemovesOnlyThatAsid) {
  Tlb tlb;
  tlb.WriteRandom(Entry(0x10, 1, 1));
  tlb.WriteRandom(Entry(0x11, 1, 2));
  tlb.WriteRandom(Entry(0x10, 2, 3));
  tlb.FlushAsid(1);
  EXPECT_EQ(tlb.Lookup(0x10, 1), nullptr);
  EXPECT_EQ(tlb.Lookup(0x11, 1), nullptr);
  ASSERT_NE(tlb.Lookup(0x10, 2), nullptr);
}

TEST(Tlb, FlushAllEmptiesEverything) {
  Tlb tlb;
  for (Vpn v = 0; v < 32; ++v) {
    tlb.WriteRandom(Entry(v, 3, v));
  }
  tlb.FlushAll();
  for (Vpn v = 0; v < 32; ++v) {
    EXPECT_EQ(tlb.Lookup(v, 3), nullptr);
  }
}

TEST(Tlb, CapacityEvictionKeepsAtMost64Live) {
  Tlb tlb;
  for (Vpn v = 0; v < 1000; ++v) {
    tlb.WriteRandom(Entry(v, 1, v));
  }
  int live = 0;
  for (const TlbEntry& entry : tlb.entries()) {
    live += entry.valid ? 1 : 0;
  }
  EXPECT_LE(live, 64);
  EXPECT_GT(live, 0);
}

// Property: against a reference model, any entry the TLB reports must be one
// the model wrote most recently for that (vpn, asid); the TLB may forget
// (capacity), but must never invent or return stale overwritten data.
TEST(Tlb, PropertyAgreesWithReferenceModel) {
  Tlb tlb;
  std::map<std::pair<Vpn, Asid>, TlbEntry> model;
  SplitMix64 rng(42);
  for (int step = 0; step < 5000; ++step) {
    const Vpn vpn = static_cast<Vpn>(rng.NextBelow(128));
    const Asid asid = static_cast<Asid>(rng.NextBelow(4));
    switch (rng.NextBelow(3)) {
      case 0: {
        TlbEntry e = Entry(vpn, asid, static_cast<PageId>(rng.NextBelow(1 << 20)),
                           rng.NextBelow(2) == 0);
        tlb.WriteRandom(e);
        model[{vpn, asid}] = e;
        break;
      }
      case 1:
        tlb.Invalidate(vpn, asid);
        model.erase({vpn, asid});
        break;
      default: {
        const TlbEntry* got = tlb.Lookup(vpn, asid);
        if (got != nullptr) {
          auto it = model.find({vpn, asid});
          ASSERT_NE(it, model.end()) << "TLB invented an entry";
          EXPECT_EQ(got->pfn, it->second.pfn);
          EXPECT_EQ(got->writable, it->second.writable);
        }
        break;
      }
    }
  }
}

}  // namespace
}  // namespace xok::hw
