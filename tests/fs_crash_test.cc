// Crash consistency under power failure: a seeded sweep of power-cut
// points over a create/write/sync workload. After every cut the surviving
// platter image is rebooted into a fresh machine; the remounted file
// system must replay its journal, pass Fsck, and honour prefix semantics —
// everything acknowledged by a Sync (and every committed metadata
// transaction) is intact, no matter where the world stopped.
//
// The simulation makes "power failure" literal: the FaultPlan schedules an
// InterruptSource::kPowerFail at an absolute cycle, the kernel halts
// mid-instruction-charge, the disk's volatile write buffer dies (with
// seeded torn-write prefixes), and only barrier-ordered platter contents
// carry over to the next boot via Disk::TakeImage/RestoreImage.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rand.h"
#include "src/exos/fs.h"
#include "src/hw/disk.h"

namespace xok::exos {
namespace {

constexpr uint32_t kDiskBlocks = 256;
constexpr uint32_t kExtentBlocks = 128;
constexpr size_t kCacheSlots = 6;
constexpr const char* kFileNames[3] = {"log.a", "log.b", "log.c"};
constexpr const char* kLateFile = "late.d";
constexpr int kRounds = 24;

uint8_t PatternByte(size_t file, size_t offset) {
  return static_cast<uint8_t>(file * 131 + offset * 7 + 13);
}

// Everything the environment fiber touches that owns heap memory lives
// here, on the host test stack: a power cut abandons the fiber without
// unwinding it, so fiber-stack locals never run destructors.
struct WorkloadState {
  std::unique_ptr<LibFs> fs;
  std::array<FileHandle, 3> handles = {};
  // Logical contents now, and as of the last acknowledged Sync.
  std::map<std::string, std::vector<uint8_t>> pending;
  std::map<std::string, std::vector<uint8_t>> synced;
  // Files whose Create returned: committed metadata, durable via journal.
  std::map<std::string, uint32_t> committed_sizes;
  std::vector<std::string> created;
  std::vector<uint8_t> chunk;
  uint64_t end_cycle = 0;
  bool completed = false;
  Status failure = Status::kOk;
};

// Boot 0: format the extent and create the three base files, no faults.
void FormatWorkload(Process& p, aegis::Aegis& kernel, WorkloadState& state) {
  Result<aegis::Aegis::DiskExtentGrant> extent = kernel.SysAllocDiskExtent(kExtentBlocks);
  if (!extent.ok()) {
    state.failure = extent.status();
    return;
  }
  Result<std::unique_ptr<LibFs>> fs = LibFs::Format(p, *extent, kCacheSlots);
  if (!fs.ok()) {
    state.failure = fs.status();
    return;
  }
  state.fs = std::move(*fs);
  for (size_t f = 0; f < 3; ++f) {
    Result<FileHandle> handle = state.fs->Create(kFileNames[f]);
    if (!handle.ok()) {
      state.failure = handle.status();
      return;
    }
  }
  if (state.fs->Sync() != Status::kOk) {
    state.failure = Status::kErrIo;
    return;
  }
  state.completed = true;
}

// The crash-exposed workload: mount, then rounds of appends with periodic
// Syncs, plus one mid-run Create. Appends only — so the synced prefix of
// every file is never rewritten and can be byte-compared after recovery.
void AppendWorkload(Process& p, aegis::Aegis& kernel, WorkloadState& state) {
  Result<aegis::Aegis::DiskExtentGrant> extent = kernel.SysAllocDiskExtent(kExtentBlocks);
  if (!extent.ok()) {
    state.failure = extent.status();
    return;
  }
  Result<std::unique_ptr<LibFs>> fs = LibFs::Mount(p, *extent, kCacheSlots);
  if (!fs.ok()) {
    state.failure = fs.status();
    return;
  }
  state.fs = std::move(*fs);
  for (size_t f = 0; f < 3; ++f) {
    Result<FileHandle> handle = state.fs->Open(kFileNames[f]);
    if (!handle.ok()) {
      state.failure = handle.status();
      return;
    }
    state.handles[f] = *handle;
    state.created.push_back(kFileNames[f]);
    state.committed_sizes[kFileNames[f]] = 0;
  }
  for (int round = 0; round < kRounds; ++round) {
    if (round == kRounds / 2) {
      // A creation in the thick of the run: once Create returns, the
      // journal commit makes the file durable even without a Sync. (It may
      // already exist if an earlier boot of this image got this far.)
      Result<FileHandle> late = state.fs->Open(kLateFile);
      if (!late.ok()) {
        late = state.fs->Create(kLateFile);
      }
      if (!late.ok()) {
        state.failure = late.status();
        return;
      }
      state.created.push_back(kLateFile);
      state.committed_sizes[kLateFile] = 0;
    }
    const size_t f = round % 3;
    std::vector<uint8_t>& logical = state.pending[kFileNames[f]];
    const size_t offset = logical.size();
    const size_t length = 700 + (round % 5) * 451;  // Crosses block edges.
    state.chunk.assign(length, 0);
    for (size_t i = 0; i < length; ++i) {
      state.chunk[i] = PatternByte(f, offset + i);
    }
    const Status wrote = state.fs->Write(state.handles[f], static_cast<uint32_t>(offset),
                                         state.chunk);
    if (wrote != Status::kOk) {
      state.failure = wrote;
      return;
    }
    logical.insert(logical.end(), state.chunk.begin(), state.chunk.end());
    state.committed_sizes[kFileNames[f]] = static_cast<uint32_t>(logical.size());
    if (round % 4 == 3) {
      const Status synced = state.fs->Sync();
      if (synced != Status::kOk) {
        state.failure = synced;
        return;
      }
      state.synced = state.pending;
    }
  }
  state.end_cycle = p.machine().clock().now();
  state.completed = true;
}

// Boots a machine over `image`, runs `body` in one environment, and (if
// the plan cuts power) returns the surviving platter contents.
std::vector<uint8_t> BootAndRun(const std::vector<uint8_t>& image, const hw::FaultPlan* plan,
                                const std::function<void(Process&, aegis::Aegis&)>& body,
                                bool* powered_off = nullptr) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 512, .name = "crash"});
  aegis::Aegis kernel(machine);
  hw::Disk disk(machine, kDiskBlocks);
  if (!image.empty()) {
    EXPECT_EQ(disk.RestoreImage(image), Status::kOk);
  }
  kernel.AttachDisk(&disk);
  if (plan != nullptr) {
    kernel.InstallFaultPlan(*plan);
  }
  Process proc(kernel, [&](Process& p) { body(p, kernel); });
  EXPECT_TRUE(proc.ok());
  kernel.Run();
  if (powered_off != nullptr) {
    *powered_off = kernel.powered_off();
  }
  return disk.TakeImage();
}

// Reboot over the surviving image and check every recovery invariant.
void VerifyRecovered(const std::vector<uint8_t>& image, const WorkloadState& crashed,
                     const char* label) {
  struct VerifyState {
    std::unique_ptr<LibFs> fs;
    Status mount = Status::kErrInternal;
    Status fsck = Status::kErrInternal;
    std::string fsck_error;
    uint64_t replayed = 0;
    std::map<std::string, uint32_t> sizes;
    std::map<std::string, std::vector<uint8_t>> contents;
    std::vector<uint8_t> buffer;
  } v;
  BootAndRun(image, nullptr, [&](Process& p, aegis::Aegis& kernel) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel.SysAllocDiskExtent(kExtentBlocks);
    if (!extent.ok()) {
      return;
    }
    Result<std::unique_ptr<LibFs>> fs = LibFs::Mount(p, *extent, kCacheSlots);
    v.mount = fs.status();
    if (!fs.ok()) {
      return;
    }
    v.fs = std::move(*fs);
    v.replayed = v.fs->txns_replayed();
    v.fsck = v.fs->Fsck();
    v.fsck_error = v.fs->fsck_error();
    for (const std::string& name : crashed.created) {
      Result<FileHandle> handle = v.fs->Open(name);
      if (!handle.ok()) {
        continue;  // Absence is asserted host-side.
      }
      Result<uint32_t> size = v.fs->FileSize(*handle);
      if (!size.ok()) {
        continue;
      }
      v.sizes[name] = *size;
      v.buffer.assign(*size, 0);
      if (v.fs->Read(*handle, 0, v.buffer).ok()) {
        v.contents[name] = v.buffer;
      }
    }
  });
  ASSERT_EQ(v.mount, Status::kOk) << label << ": remount failed";
  EXPECT_EQ(v.fsck, Status::kOk) << label << ": fsck: " << v.fsck_error;
  // Committed metadata: every file whose Create returned exists, with at
  // least its last committed size.
  for (const std::string& name : crashed.created) {
    ASSERT_TRUE(v.sizes.count(name)) << label << ": lost committed file " << name;
    EXPECT_GE(v.sizes.at(name), crashed.committed_sizes.at(name))
        << label << ": committed size regressed for " << name;
  }
  // Prefix semantics: data acknowledged by a Sync is intact, byte for byte.
  for (const auto& [name, synced_bytes] : crashed.synced) {
    ASSERT_TRUE(v.contents.count(name)) << label << ": unreadable synced file " << name;
    const std::vector<uint8_t>& now = v.contents.at(name);
    ASSERT_GE(now.size(), synced_bytes.size()) << label << ": synced data truncated in " << name;
    for (size_t i = 0; i < synced_bytes.size(); ++i) {
      ASSERT_EQ(now[i], synced_bytes[i]) << label << ": " << name << " byte " << i;
    }
  }
}

std::vector<uint8_t> FormattedImage() {
  WorkloadState format_state;
  std::vector<uint8_t> image =
      BootAndRun({}, nullptr,
                 [&](Process& p, aegis::Aegis& k) { FormatWorkload(p, k, format_state); });
  EXPECT_TRUE(format_state.completed);
  EXPECT_EQ(format_state.failure, Status::kOk);
  format_state.fs.reset();
  return image;
}

uint64_t DryRunCycles(const std::vector<uint8_t>& image) {
  WorkloadState dry;
  BootAndRun(image, nullptr, [&](Process& p, aegis::Aegis& k) { AppendWorkload(p, k, dry); });
  EXPECT_TRUE(dry.completed);
  EXPECT_EQ(dry.failure, Status::kOk);
  dry.fs.reset();
  return dry.end_cycle;
}

// The sweep: cut the power at a grid of points across the whole workload
// (including mount-time replay itself) and recover after each.
class FsCrashSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FsCrashSweep, PowerCutThenRemountIsCleanAndKeepsSyncedData) {
  const std::vector<uint8_t> base = FormattedImage();
  const uint64_t total = DryRunCycles(base);
  ASSERT_GT(total, 0u);
  const uint32_t percent = GetParam();
  const uint64_t cut = total * percent / 100;

  for (const uint32_t torn_per_mille : {0u, 500u}) {
    WorkloadState state;
    hw::FaultPlan plan;
    plan.seed = 0x9a0 + percent * 2 + torn_per_mille;
    plan.disk_torn_per_mille = torn_per_mille;
    plan.PowerCutAt(cut);
    bool powered_off = false;
    const std::vector<uint8_t> image =
        BootAndRun(base, &plan,
                   [&](Process& p, aegis::Aegis& k) { AppendWorkload(p, k, state); },
                   &powered_off);
    ASSERT_TRUE(powered_off) << "cut at " << percent << "% never fired";
    ASSERT_FALSE(state.completed);
    const std::string label =
        "cut@" + std::to_string(percent) + "% torn=" + std::to_string(torn_per_mille);
    VerifyRecovered(image, state, label.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(CutPoints, FsCrashSweep,
                         ::testing::Values(2, 5, 9, 14, 21, 30, 38, 47, 55, 64, 73, 82, 91, 97));

// Double failure: power also dies during recovery itself. Replay must be
// idempotent — a second reboot over the half-recovered image still works.
TEST(FsCrashTest, PowerCutDuringRecoveryIsIdempotent) {
  const std::vector<uint8_t> base = FormattedImage();
  // Crash the workload mid-run first, so there is a journal to replay.
  WorkloadState state;
  hw::FaultPlan plan;
  plan.seed = 0xdead;
  plan.disk_torn_per_mille = 300;
  plan.PowerCutAt(DryRunCycles(base) / 2);
  const std::vector<uint8_t> crashed =
      BootAndRun(base, &plan, [&](Process& p, aegis::Aegis& k) { AppendWorkload(p, k, state); });

  // Now cut power at a sweep of points inside the remount itself.
  for (const uint64_t recovery_cut :
       {hw::kClockHz / 1000, hw::kClockHz / 100, hw::kClockHz / 20}) {
    WorkloadState second;
    hw::FaultPlan recovery_plan;
    recovery_plan.seed = 0xbeef + recovery_cut;
    recovery_plan.disk_torn_per_mille = 300;
    recovery_plan.PowerCutAt(recovery_cut);
    const std::vector<uint8_t> twice_crashed = BootAndRun(
        crashed, &recovery_plan,
        [&](Process& p, aegis::Aegis& k) { AppendWorkload(p, k, second); });
    const std::string label = "recovery cut@" + std::to_string(recovery_cut);
    VerifyRecovered(twice_crashed, state, label.c_str());
  }
}

// Chaos arm: random workloads with media errors, torn writes, and a power
// cut landing wherever the seed says — recovery must always hold.
class FsCrashChaos : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FsCrashChaos, SeededChaosRecoversEveryTime) {
  const uint64_t seed = GetParam();
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const std::vector<uint8_t> base = FormattedImage();
  const uint64_t total = DryRunCycles(base);

  std::vector<uint8_t> image = base;
  WorkloadState last_state;
  // Several consecutive power cuts over the same platter, like a machine
  // with a failing supply: each boot continues from the previous image.
  for (int boot = 0; boot < 3; ++boot) {
    WorkloadState state;
    hw::FaultPlan plan;
    plan.seed = seed * 101 + boot;
    plan.disk_torn_per_mille = 300;
    plan.disk_error_per_mille = 20;
    plan.PowerCutAt(total / 10 + rng.NextBelow(total));
    bool powered_off = false;
    image = BootAndRun(image, &plan,
                       [&](Process& p, aegis::Aegis& k) { AppendWorkload(p, k, state); },
                       &powered_off);
    if (!powered_off) {
      // The workload outran the cut (or died on injected media errors
      // first) — either way the image must still recover below.
      ASSERT_TRUE(state.completed || state.failure != Status::kOk);
    }
    last_state = std::move(state);
    last_state.fs.reset();
    // Chaos boots may fail mid-run from injected media errors; recovery
    // invariants are checked against what actually committed.
    const std::string label = "chaos seed=" + std::to_string(seed) +
                              " boot=" + std::to_string(boot);
    // A boot that failed before opening the files has nothing to verify.
    if (last_state.created.empty()) {
      continue;
    }
    VerifyRecovered(image, last_state, label.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsCrashChaos, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace xok::exos
