#include "src/net/wire.h"

#include <gtest/gtest.h>

#include <vector>

namespace xok::net {
namespace {

TEST(InternetChecksumTest, KnownVector) {
  // RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2,
  // checksum = ~ddf2 = 220d.
  std::vector<uint8_t> data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data), 0x220d);
}

TEST(InternetChecksumTest, OddLengthPadsWithZero) {
  std::vector<uint8_t> data = {0x01, 0x02, 0x03};
  // Words: 0102, 0300 -> sum 0402 -> cksum ~0402 = fbfd.
  EXPECT_EQ(InternetChecksum(data), 0xfbfd);
}

TEST(InternetChecksumTest, ChecksummedDataVerifiesToZero) {
  std::vector<uint8_t> data = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11};
  const uint16_t cksum = InternetChecksum(data);
  data.push_back(static_cast<uint8_t>(cksum >> 8));
  data.push_back(static_cast<uint8_t>(cksum & 0xff));
  // Sum over data including its checksum folds to 0xffff; the complement
  // is zero.
  EXPECT_EQ(InternetChecksum(data), 0);
}

TEST(BeAccessors, RoundTrip) {
  std::vector<uint8_t> buf(8, 0);
  PutBe16(buf, 0, 0xbeef);
  PutBe32(buf, 2, 0x01020304);
  EXPECT_EQ(GetBe16(buf, 0), 0xbeef);
  EXPECT_EQ(GetBe32(buf, 2), 0x01020304u);
}

TEST(UdpFrame, BuildParseRoundTrip) {
  std::vector<uint8_t> payload = {'h', 'e', 'l', 'l', 'o'};
  auto frame = BuildUdpFrame(0xaabbccddeeffULL, 0x112233445566ULL, 0x0a000001, 0x0a000002,
                             1234, 5678, payload);
  UdpView view;
  ASSERT_TRUE(ParseUdpFrame(frame, &view));
  EXPECT_EQ(view.src_ip, 0x0a000001u);
  EXPECT_EQ(view.dst_ip, 0x0a000002u);
  EXPECT_EQ(view.src_port, 1234);
  EXPECT_EQ(view.dst_port, 5678);
  EXPECT_EQ(std::vector<uint8_t>(view.payload.begin(), view.payload.end()), payload);
}

TEST(UdpFrame, SixtyByteMinimumEnforced) {
  std::vector<uint8_t> tiny_payload = {1};
  auto frame = BuildUdpFrame(1, 2, 3, 4, 5, 6, tiny_payload);
  EXPECT_EQ(frame.size(), 60u);
}

TEST(UdpFrame, PaperPacketIs60Bytes) {
  // The paper ping-pongs "a counter in a 60-byte UDP/IP packet": the
  // 4-byte counter plus headers lands exactly at the Ethernet minimum.
  std::vector<uint8_t> counter = {0, 0, 0, 1};
  auto frame = BuildUdpFrame(1, 2, 3, 4, 5, 6, counter);
  EXPECT_EQ(frame.size(), 60u);
}

TEST(UdpFrame, CorruptedIpHeaderRejected) {
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  auto frame = BuildUdpFrame(1, 2, 3, 4, 5, 6, payload);
  frame[kIpTtlOff] ^= 1;  // Break the header without fixing the checksum.
  UdpView view;
  EXPECT_FALSE(ParseUdpFrame(frame, &view));
}

TEST(UdpFrame, NonIpRejected) {
  std::vector<uint8_t> payload = {1};
  auto frame = BuildUdpFrame(1, 2, 3, 4, 5, 6, payload);
  PutBe16(frame, kEthTypeOff, 0x0806);  // ARP.
  UdpView view;
  EXPECT_FALSE(ParseUdpFrame(frame, &view));
}

TEST(UdpFrame, TcpProtocolRejectedByUdpParser) {
  std::vector<uint8_t> payload = {1};
  auto frame = BuildUdpFrame(1, 2, 3, 4, 5, 6, payload);
  frame[kIpProtoOff] = kIpProtoTcp;
  UdpView view;
  EXPECT_FALSE(ParseUdpFrame(frame, &view));
}

TEST(UdpFrame, TruncatedFrameRejected) {
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  auto frame = BuildUdpFrame(1, 2, 3, 4, 5, 6, payload);
  frame.resize(20);
  UdpView view;
  EXPECT_FALSE(ParseUdpFrame(frame, &view));
}

TEST(UdpFrame, BogusUdpLengthRejected) {
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  auto frame = BuildUdpFrame(1, 2, 3, 4, 5, 6, payload);
  PutBe16(frame, kUdpLenOff, 4000);  // Longer than the frame.
  UdpView view;
  EXPECT_FALSE(ParseUdpFrame(frame, &view));
}

}  // namespace
}  // namespace xok::net
