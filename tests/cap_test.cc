#include "src/cap/capability.h"

#include <gtest/gtest.h>

#include "src/base/rand.h"
#include "src/cap/siphash.h"

namespace xok::cap {
namespace {

// SipHash-2-4 reference vector from the SipHash paper (Aumasson & Bernstein):
// key = 00 01 .. 0f, input = 00 01 .. 0e, output = 0xa129ca6149be45e5.
TEST(SipHash, MatchesReferenceVector) {
  SipKey key;
  key.k0 = 0x0706050403020100ULL;
  key.k1 = 0x0f0e0d0c0b0a0908ULL;
  uint8_t input[15];
  for (int i = 0; i < 15; ++i) {
    input[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(SipHash24(key, input), 0xa129ca6149be45e5ULL);
}

TEST(SipHash, EmptyInputMatchesReference) {
  SipKey key;
  key.k0 = 0x0706050403020100ULL;
  key.k1 = 0x0f0e0d0c0b0a0908ULL;
  EXPECT_EQ(SipHash24(key, {}), 0x726fdb47dd0e0e31ULL);
}

TEST(SipHash, KeyChangesOutput) {
  uint8_t input[4] = {1, 2, 3, 4};
  EXPECT_NE(SipHash24(SipKey{1, 2}, input), SipHash24(SipKey{1, 3}, input));
}

class CapabilityTest : public ::testing::Test {
 protected:
  CapabilityTest() : authority_(SipKey{0x1234, 0x5678}) {}

  static ResourceId Page(uint32_t n) { return ResourceId{ResourceKind::kPhysPage, n}; }

  CapAuthority authority_;
};

TEST_F(CapabilityTest, MintedCapabilityChecks) {
  Capability c = authority_.Mint(Page(7), kRead | kWrite, 0);
  EXPECT_TRUE(authority_.Check(c, Page(7), kRead, 0));
  EXPECT_TRUE(authority_.Check(c, Page(7), kRead | kWrite, 0));
}

TEST_F(CapabilityTest, MissingRightFailsCheck) {
  Capability c = authority_.Mint(Page(7), kRead, 0);
  EXPECT_FALSE(authority_.Check(c, Page(7), kWrite, 0));
}

TEST_F(CapabilityTest, WrongResourceFailsCheck) {
  Capability c = authority_.Mint(Page(7), kAllRights, 0);
  EXPECT_FALSE(authority_.Check(c, Page(8), kRead, 0));
}

TEST_F(CapabilityTest, ForgedMacRejected) {
  Capability c = authority_.Mint(Page(7), kRead, 0);
  c.mac ^= 1;
  EXPECT_FALSE(authority_.Check(c, Page(7), kRead, 0));
  EXPECT_FALSE(authority_.Authentic(c));
}

TEST_F(CapabilityTest, RightsEscalationForgeryRejected) {
  // Take a read-only capability and just flip the rights bits: the MAC no
  // longer matches, so the kernel refuses it.
  Capability c = authority_.Mint(Page(7), kRead, 0);
  c.rights = kAllRights;
  EXPECT_FALSE(authority_.Check(c, Page(7), kWrite, 0));
}

TEST_F(CapabilityTest, EpochBumpInvalidatesOldCapabilities) {
  Capability c = authority_.Mint(Page(7), kAllRights, 0);
  EXPECT_TRUE(authority_.Check(c, Page(7), kRead, 0));
  EXPECT_FALSE(authority_.Check(c, Page(7), kRead, 1));  // Revoked: epoch moved on.
}

TEST_F(CapabilityTest, DifferentAuthoritiesDoNotHonourEachOther) {
  CapAuthority other(SipKey{0x9999, 0xaaaa});
  Capability c = authority_.Mint(Page(7), kRead, 0);
  EXPECT_FALSE(other.Check(c, Page(7), kRead, 0));
}

TEST_F(CapabilityTest, DeriveSubsetSucceeds) {
  Capability c = authority_.Mint(Page(7), kRead | kWrite | kGrant, 0);
  Result<Capability> derived = authority_.Derive(c, kRead);
  ASSERT_TRUE(derived.ok());
  EXPECT_TRUE(authority_.Check(*derived, Page(7), kRead, 0));
  EXPECT_FALSE(authority_.Check(*derived, Page(7), kWrite, 0));
}

TEST_F(CapabilityTest, DeriveWithoutGrantFails) {
  Capability c = authority_.Mint(Page(7), kRead | kWrite, 0);
  EXPECT_EQ(authority_.Derive(c, kRead).status(), Status::kErrAccessDenied);
}

TEST_F(CapabilityTest, DeriveCannotEscalate) {
  Capability c = authority_.Mint(Page(7), kRead | kGrant, 0);
  EXPECT_EQ(authority_.Derive(c, kRead | kWrite).status(), Status::kErrAccessDenied);
}

TEST_F(CapabilityTest, DeriveForgedCapabilityFails) {
  Capability c = authority_.Mint(Page(7), kAllRights, 0);
  c.resource.index = 8;
  EXPECT_EQ(authority_.Derive(c, kRead).status(), Status::kErrBadCapability);
}

// Property sweep: random rights combinations always obey subset semantics.
TEST_F(CapabilityTest, PropertyDeriveIsMonotone) {
  xok::SplitMix64 rng(7);
  for (int i = 0; i < 500; ++i) {
    const uint32_t rights = static_cast<uint32_t>(rng.NextBelow(16)) | kGrant;
    const uint32_t want = static_cast<uint32_t>(rng.NextBelow(16));
    Capability c = authority_.Mint(Page(static_cast<uint32_t>(i)), rights, 0);
    Result<Capability> derived = authority_.Derive(c, want);
    if ((want & ~rights) != 0) {
      EXPECT_FALSE(derived.ok());
    } else {
      ASSERT_TRUE(derived.ok());
      EXPECT_EQ(derived->rights, want);
      EXPECT_TRUE(authority_.Authentic(*derived));
    }
  }
}

}  // namespace
}  // namespace xok::cap
