#include "src/exos/fs.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/base/rand.h"
#include "src/hw/disk.h"

namespace xok::exos {
namespace {

class FsTest : public ::testing::Test {
 protected:
  FsTest()
      : machine_(hw::Machine::Config{.phys_pages = 512, .name = "fs"}),
        kernel_(machine_),
        disk_(machine_, 512) {
    kernel_.AttachDisk(&disk_);
  }

  void RunInProcess(std::function<void(Process&)> body) {
    Process proc(kernel_, std::move(body));
    ASSERT_TRUE(proc.ok());
    kernel_.Run();
  }

  hw::Machine machine_;
  aegis::Aegis kernel_;
  hw::Disk disk_;
};

// --- Aegis disk extent bindings ---

TEST_F(FsTest, ExtentAllocationAndTransferRoundTrip) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(8);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    auto bytes = machine_.mem().PageSpan(frame->page);
    for (size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<uint8_t>(i * 13);
    }
    ASSERT_EQ(kernel_.SysDiskWrite(extent->extent, extent->cap, 3, frame->page), Status::kOk);
    std::fill(bytes.begin(), bytes.end(), uint8_t{0});
    ASSERT_EQ(kernel_.SysDiskRead(extent->extent, extent->cap, 3, frame->page), Status::kOk);
    for (size_t i = 0; i < bytes.size(); ++i) {
      ASSERT_EQ(bytes[i], static_cast<uint8_t>(i * 13));
    }
    (void)p;
  });
}

TEST_F(FsTest, TransferOutsideExtentRejected) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, extent->cap, 4, frame->page),
              Status::kErrOutOfRange);
    (void)p;
  });
}

TEST_F(FsTest, ForgedExtentCapabilityRejected) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    cap::Capability forged = extent->cap;
    forged.mac ^= 7;
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, forged, 0, frame->page),
              Status::kErrAccessDenied);
    // Read-only derived capability cannot write.
    Result<cap::Capability> ro = kernel_.SysDeriveCap(extent->cap, cap::kRead);
    ASSERT_TRUE(ro.ok());
    EXPECT_EQ(kernel_.SysDiskWrite(extent->extent, *ro, 0, frame->page),
              Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, *ro, 0, frame->page), Status::kOk);
    (void)p;
  });
}

TEST_F(FsTest, TransferIntoForeignFrameRejected) {
  // Env A allocates a frame; env B may not DMA into it.
  hw::PageId foreign = 0;
  bool ready = false;
  Process a(kernel_, [&](Process& p) {
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    foreign = frame->page;
    ready = true;
    (void)p;
  });
  Process b(kernel_, [&](Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, extent->cap, 0, foreign),
              Status::kErrAccessDenied);
  });
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  kernel_.Run();
}

TEST_F(FsTest, FreedExtentCapabilityDies) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(kernel_.SysFreeDiskExtent(extent->extent, extent->cap), Status::kOk);
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, extent->cap, 0, frame->page),
              Status::kErrOutOfRange);
    (void)p;
  });
}

// --- BlockCache ---

TEST_F(FsTest, CacheHitsAvoidDiskTraffic) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    auto cache = BlockCache::Create(p, *extent, 4);
    ASSERT_TRUE(cache.ok());
    ASSERT_TRUE((*cache)->GetBlock(0, false).ok());
    ASSERT_TRUE((*cache)->GetBlock(0, false).ok());
    ASSERT_TRUE((*cache)->GetBlock(0, false).ok());
    EXPECT_EQ((*cache)->misses(), 1u);
    EXPECT_EQ((*cache)->hits(), 2u);
  });
}

TEST_F(FsTest, CacheWriteBackPersistsAcrossEviction) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    auto cache = BlockCache::Create(p, *extent, 2);
    ASSERT_TRUE(cache.ok());
    {
      Result<std::span<uint8_t>> block = (*cache)->GetBlock(5, true);
      ASSERT_TRUE(block.ok());
      (*block)[0] = 0xbe;
      (*block)[1] = 0xef;
    }
    // Thrash the 2-slot cache so block 5 is evicted (and written back).
    for (uint32_t b = 8; b < 12; ++b) {
      ASSERT_TRUE((*cache)->GetBlock(b, false).ok());
    }
    Result<std::span<uint8_t>> block = (*cache)->GetBlock(5, false);
    ASSERT_TRUE(block.ok());
    EXPECT_EQ((*block)[0], 0xbe);
    EXPECT_EQ((*block)[1], 0xef);
  });
}

TEST_F(FsTest, MruPolicyBeatsLruOnLoopingScan) {
  // The §2 claim: a looping scan over B blocks with C < B cache slots has
  // a 100% miss rate under LRU but keeps C-1 stable blocks under MRU.
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    constexpr int kBlocks = 12;
    constexpr int kLoops = 6;

    auto scan = [&](BlockCache& cache) {
      for (int loop = 0; loop < kLoops; ++loop) {
        for (uint32_t b = 0; b < kBlocks; ++b) {
          EXPECT_TRUE(cache.GetBlock(b, false).ok());
        }
      }
    };
    auto lru = BlockCache::Create(p, *extent, 8);
    ASSERT_TRUE(lru.ok());
    (*lru)->set_policy(BlockCache::Policy::kLru);
    scan(**lru);

    auto mru = BlockCache::Create(p, *extent, 8);
    ASSERT_TRUE(mru.ok());
    (*mru)->set_policy(BlockCache::Policy::kMru);
    scan(**mru);

    EXPECT_GT((*lru)->misses(), (*mru)->misses() * 2);
  });
}

TEST_F(FsTest, CustomPolicyIsConsulted) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    auto cache = BlockCache::Create(p, *extent, 2);
    ASSERT_TRUE(cache.ok());
    int calls = 0;
    (*cache)->set_victim_picker([&](std::span<const BlockCache::Slot>) {
      ++calls;
      return 0u;  // Always evict slot 0.
    });
    ASSERT_TRUE((*cache)->GetBlock(0, false).ok());
    ASSERT_TRUE((*cache)->GetBlock(1, false).ok());
    ASSERT_TRUE((*cache)->GetBlock(2, false).ok());  // Evicts (picker consulted).
    EXPECT_EQ(calls, 1);
    // Slot 1 (block 1) must still be cached.
    const uint64_t misses = (*cache)->misses();
    ASSERT_TRUE((*cache)->GetBlock(1, false).ok());
    EXPECT_EQ((*cache)->misses(), misses);
  });
}

TEST_F(FsTest, ScanAwarePickerPinsMetadataAndBeatsLru) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    constexpr uint32_t kMeta = 2;     // Blocks 0-1 are "metadata".
    constexpr uint32_t kData = 12;    // Data blocks 2..13.
    constexpr int kLoops = 6;

    auto scan = [&](BlockCache& cache) {
      for (int loop = 0; loop < kLoops; ++loop) {
        for (uint32_t b = 0; b < kData; ++b) {
          ASSERT_TRUE(cache.GetBlock(0, false).ok());  // Hot metadata touch.
          ASSERT_TRUE(cache.GetBlock(kMeta + b, false).ok());
        }
      }
    };
    auto lru = BlockCache::Create(p, *extent, 8);
    ASSERT_TRUE(lru.ok());
    scan(**lru);
    auto aware = BlockCache::Create(p, *extent, 8);
    ASSERT_TRUE(aware.ok());
    (*aware)->set_victim_picker(MakeScanAwarePicker(kMeta));
    scan(**aware);
    EXPECT_LT((*aware)->misses(), (*lru)->misses());
  });
}

// --- LibFs ---

TEST_F(FsTest, CreateWriteReadRoundTrip) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    auto fs = LibFs::Format(p, *extent, 8);
    ASSERT_TRUE(fs.ok());
    Result<FileHandle> file = (*fs)->Create("hello.txt");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> data = {'h', 'i', ' ', 'f', 's'};
    ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
    std::vector<uint8_t> out(5);
    Result<uint32_t> n = (*fs)->Read(*file, 0, out);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 5u);
    EXPECT_EQ(out, data);
    EXPECT_EQ(*(*fs)->FileSize(*file), 5u);
  });
}

TEST_F(FsTest, OpenFindsExistingAndMissesAbsent) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    auto fs = LibFs::Format(p, *extent, 8);
    ASSERT_TRUE(fs.ok());
    Result<FileHandle> a = (*fs)->Create("a");
    Result<FileHandle> b = (*fs)->Create("b");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NE(*a, *b);
    EXPECT_EQ(*(*fs)->Open("a"), *a);
    EXPECT_EQ(*(*fs)->Open("b"), *b);
    EXPECT_EQ((*fs)->Open("c").status(), Status::kErrNotFound);
    EXPECT_EQ((*fs)->Create("a").status(), Status::kErrAlreadyExists);
  });
}

TEST_F(FsTest, MultiBlockFileAndUnalignedIo) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    auto fs = LibFs::Format(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<FileHandle> file = (*fs)->Create("big");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> data(hw::kPageBytes * 3 + 100);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i * 7 + 1);
    }
    ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
    // Unaligned read across a block boundary.
    std::vector<uint8_t> out(200);
    Result<uint32_t> n = (*fs)->Read(*file, hw::kPageBytes - 100, out);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 200u);
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], data[hw::kPageBytes - 100 + i]) << i;
    }
    // Short read at EOF.
    std::vector<uint8_t> tail(300);
    n = (*fs)->Read(*file, static_cast<uint32_t>(data.size()) - 50, tail);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 50u);
  });
}

TEST_F(FsTest, DataPersistsThroughSyncAndRemount) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    {
      auto fs = LibFs::Format(p, *extent, 4);
      ASSERT_TRUE(fs.ok());
      Result<FileHandle> file = (*fs)->Create("persist");
      ASSERT_TRUE(file.ok());
      std::vector<uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
      ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
      ASSERT_EQ((*fs)->Sync(), Status::kOk);
    }
    // Remount with a fresh cache: everything must come back from disk.
    auto fs = LibFs::Mount(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<FileHandle> file = (*fs)->Open("persist");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> out(8);
    Result<uint32_t> n = (*fs)->Read(*file, 0, out);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(out, (std::vector<uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  });
}

TEST_F(FsTest, MountRejectsUnformattedExtent) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    EXPECT_EQ(LibFs::Mount(p, *extent, 4).status(), Status::kErrBadState);
  });
}

TEST_F(FsTest, FileSizeLimitEnforced) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    auto fs = LibFs::Format(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<FileHandle> file = (*fs)->Create("cap");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> byte = {1};
    EXPECT_EQ((*fs)->Write(*file, LibFs::kMaxFileBytes, byte), Status::kErrOutOfRange);
    EXPECT_EQ((*fs)->Write(*file, 10, byte), Status::kErrOutOfRange);  // Hole.
  });
}

// Property: LibFs against an in-memory reference over random file ops.
TEST_F(FsTest, PropertyMatchesReferenceModel) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(256);
    ASSERT_TRUE(extent.ok());
    auto fs_result = LibFs::Format(p, *extent, 6);
    ASSERT_TRUE(fs_result.ok());
    LibFs& fs = **fs_result;

    std::map<std::string, std::vector<uint8_t>> model;
    std::map<std::string, FileHandle> handles;
    SplitMix64 rng(31);
    const std::string names[4] = {"alpha", "beta", "gamma", "delta"};

    for (int step = 0; step < 400; ++step) {
      const std::string& name = names[rng.NextBelow(4)];
      switch (rng.NextBelow(3)) {
        case 0: {  // Create.
          Result<FileHandle> handle = fs.Create(name);
          if (model.count(name)) {
            ASSERT_EQ(handle.status(), Status::kErrAlreadyExists);
          } else {
            ASSERT_TRUE(handle.ok());
            model[name] = {};
            handles[name] = *handle;
          }
          break;
        }
        case 1: {  // Append/overwrite a chunk.
          if (!model.count(name)) {
            break;
          }
          std::vector<uint8_t>& ref = model[name];
          const uint32_t offset = static_cast<uint32_t>(
              rng.NextBelow(ref.size() + 1));  // No holes.
          std::vector<uint8_t> chunk(rng.NextBelow(600) + 1);
          for (auto& b : chunk) {
            b = static_cast<uint8_t>(rng.Next());
          }
          if (offset + chunk.size() > LibFs::kMaxFileBytes) {
            break;
          }
          ASSERT_EQ(fs.Write(handles[name], offset, chunk), Status::kOk);
          if (ref.size() < offset + chunk.size()) {
            ref.resize(offset + chunk.size());
          }
          std::copy(chunk.begin(), chunk.end(), ref.begin() + offset);
          break;
        }
        default: {  // Read and compare.
          if (!model.count(name)) {
            ASSERT_EQ(fs.Open(name).status(), Status::kErrNotFound);
            break;
          }
          const std::vector<uint8_t>& ref = model[name];
          std::vector<uint8_t> out(rng.NextBelow(800) + 1);
          const uint32_t offset = static_cast<uint32_t>(rng.NextBelow(ref.size() + 32));
          Result<uint32_t> n = fs.Read(handles[name], offset, out);
          ASSERT_TRUE(n.ok());
          const uint32_t expect =
              offset >= ref.size()
                  ? 0
                  : std::min<uint32_t>(static_cast<uint32_t>(out.size()),
                                       static_cast<uint32_t>(ref.size()) - offset);
          ASSERT_EQ(*n, expect);
          for (uint32_t i = 0; i < expect; ++i) {
            ASSERT_EQ(out[i], ref[offset + i]) << "file " << name << " off " << offset + i;
          }
          break;
        }
      }
    }
  });
}

}  // namespace
}  // namespace xok::exos
