#include "src/exos/fs.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/base/rand.h"
#include "src/hw/disk.h"

namespace xok::exos {
namespace {

class FsTest : public ::testing::Test {
 protected:
  FsTest()
      : machine_(hw::Machine::Config{.phys_pages = 512, .name = "fs"}),
        kernel_(machine_),
        disk_(machine_, 512) {
    kernel_.AttachDisk(&disk_);
  }

  void RunInProcess(std::function<void(Process&)> body) {
    Process proc(kernel_, std::move(body));
    ASSERT_TRUE(proc.ok());
    kernel_.Run();
  }

  hw::Machine machine_;
  aegis::Aegis kernel_;
  hw::Disk disk_;
};

// --- Aegis disk extent bindings ---

TEST_F(FsTest, ExtentAllocationAndTransferRoundTrip) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(8);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    auto bytes = machine_.mem().PageSpan(frame->page);
    for (size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<uint8_t>(i * 13);
    }
    ASSERT_EQ(kernel_.SysDiskWrite(extent->extent, extent->cap, 3, frame->page), Status::kOk);
    std::fill(bytes.begin(), bytes.end(), uint8_t{0});
    ASSERT_EQ(kernel_.SysDiskRead(extent->extent, extent->cap, 3, frame->page), Status::kOk);
    for (size_t i = 0; i < bytes.size(); ++i) {
      ASSERT_EQ(bytes[i], static_cast<uint8_t>(i * 13));
    }
    (void)p;
  });
}

TEST_F(FsTest, TransferOutsideExtentRejected) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, extent->cap, 4, frame->page),
              Status::kErrOutOfRange);
    (void)p;
  });
}

TEST_F(FsTest, ForgedExtentCapabilityRejected) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    cap::Capability forged = extent->cap;
    forged.mac ^= 7;
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, forged, 0, frame->page),
              Status::kErrAccessDenied);
    // Read-only derived capability cannot write.
    Result<cap::Capability> ro = kernel_.SysDeriveCap(extent->cap, cap::kRead);
    ASSERT_TRUE(ro.ok());
    EXPECT_EQ(kernel_.SysDiskWrite(extent->extent, *ro, 0, frame->page),
              Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, *ro, 0, frame->page), Status::kOk);
    (void)p;
  });
}

TEST_F(FsTest, TransferIntoForeignFrameRejected) {
  // Env A allocates a frame; env B may not DMA into it.
  hw::PageId foreign = 0;
  bool ready = false;
  Process a(kernel_, [&](Process& p) {
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    foreign = frame->page;
    ready = true;
    (void)p;
  });
  Process b(kernel_, [&](Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, extent->cap, 0, foreign),
              Status::kErrAccessDenied);
  });
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  kernel_.Run();
}

TEST_F(FsTest, FreedExtentCapabilityDies) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(kernel_.SysFreeDiskExtent(extent->extent, extent->cap), Status::kOk);
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, extent->cap, 0, frame->page),
              Status::kErrOutOfRange);
    (void)p;
  });
}

// --- BlockCache ---

TEST_F(FsTest, CacheHitsAvoidDiskTraffic) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    auto cache = BlockCache::Create(p, *extent, 4);
    ASSERT_TRUE(cache.ok());
    ASSERT_TRUE((*cache)->GetBlock(0, false).ok());
    ASSERT_TRUE((*cache)->GetBlock(0, false).ok());
    ASSERT_TRUE((*cache)->GetBlock(0, false).ok());
    EXPECT_EQ((*cache)->misses(), 1u);
    EXPECT_EQ((*cache)->hits(), 2u);
  });
}

TEST_F(FsTest, CacheWriteBackPersistsAcrossEviction) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    auto cache = BlockCache::Create(p, *extent, 2);
    ASSERT_TRUE(cache.ok());
    {
      Result<std::span<uint8_t>> block = (*cache)->GetBlock(5, true);
      ASSERT_TRUE(block.ok());
      (*block)[0] = 0xbe;
      (*block)[1] = 0xef;
    }
    // Thrash the 2-slot cache so block 5 is evicted (and written back).
    for (uint32_t b = 8; b < 12; ++b) {
      ASSERT_TRUE((*cache)->GetBlock(b, false).ok());
    }
    Result<std::span<uint8_t>> block = (*cache)->GetBlock(5, false);
    ASSERT_TRUE(block.ok());
    EXPECT_EQ((*block)[0], 0xbe);
    EXPECT_EQ((*block)[1], 0xef);
  });
}

TEST_F(FsTest, MruPolicyBeatsLruOnLoopingScan) {
  // The §2 claim: a looping scan over B blocks with C < B cache slots has
  // a 100% miss rate under LRU but keeps C-1 stable blocks under MRU.
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    constexpr int kBlocks = 12;
    constexpr int kLoops = 6;

    auto scan = [&](BlockCache& cache) {
      for (int loop = 0; loop < kLoops; ++loop) {
        for (uint32_t b = 0; b < kBlocks; ++b) {
          EXPECT_TRUE(cache.GetBlock(b, false).ok());
        }
      }
    };
    auto lru = BlockCache::Create(p, *extent, 8);
    ASSERT_TRUE(lru.ok());
    (*lru)->set_policy(BlockCache::Policy::kLru);
    scan(**lru);

    auto mru = BlockCache::Create(p, *extent, 8);
    ASSERT_TRUE(mru.ok());
    (*mru)->set_policy(BlockCache::Policy::kMru);
    scan(**mru);

    EXPECT_GT((*lru)->misses(), (*mru)->misses() * 2);
  });
}

TEST_F(FsTest, CustomPolicyIsConsulted) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    auto cache = BlockCache::Create(p, *extent, 2);
    ASSERT_TRUE(cache.ok());
    int calls = 0;
    (*cache)->set_victim_picker([&](std::span<const BlockCache::Slot>) {
      ++calls;
      return 0u;  // Always evict slot 0.
    });
    ASSERT_TRUE((*cache)->GetBlock(0, false).ok());
    ASSERT_TRUE((*cache)->GetBlock(1, false).ok());
    ASSERT_TRUE((*cache)->GetBlock(2, false).ok());  // Evicts (picker consulted).
    EXPECT_EQ(calls, 1);
    // Slot 1 (block 1) must still be cached.
    const uint64_t misses = (*cache)->misses();
    ASSERT_TRUE((*cache)->GetBlock(1, false).ok());
    EXPECT_EQ((*cache)->misses(), misses);
  });
}

TEST_F(FsTest, ScanAwarePickerPinsMetadataAndBeatsLru) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    constexpr uint32_t kMeta = 2;     // Blocks 0-1 are "metadata".
    constexpr uint32_t kData = 12;    // Data blocks 2..13.
    constexpr int kLoops = 6;

    auto scan = [&](BlockCache& cache) {
      for (int loop = 0; loop < kLoops; ++loop) {
        for (uint32_t b = 0; b < kData; ++b) {
          ASSERT_TRUE(cache.GetBlock(0, false).ok());  // Hot metadata touch.
          ASSERT_TRUE(cache.GetBlock(kMeta + b, false).ok());
        }
      }
    };
    auto lru = BlockCache::Create(p, *extent, 8);
    ASSERT_TRUE(lru.ok());
    scan(**lru);
    auto aware = BlockCache::Create(p, *extent, 8);
    ASSERT_TRUE(aware.ok());
    (*aware)->set_victim_picker(MakeScanAwarePicker(kMeta));
    scan(**aware);
    EXPECT_LT((*aware)->misses(), (*lru)->misses());
  });
}

// --- LibFs ---

TEST_F(FsTest, CreateWriteReadRoundTrip) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    auto fs = LibFs::Format(p, *extent, 8);
    ASSERT_TRUE(fs.ok());
    Result<FileHandle> file = (*fs)->Create("hello.txt");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> data = {'h', 'i', ' ', 'f', 's'};
    ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
    std::vector<uint8_t> out(5);
    Result<uint32_t> n = (*fs)->Read(*file, 0, out);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 5u);
    EXPECT_EQ(out, data);
    EXPECT_EQ(*(*fs)->FileSize(*file), 5u);
  });
}

TEST_F(FsTest, OpenFindsExistingAndMissesAbsent) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    auto fs = LibFs::Format(p, *extent, 8);
    ASSERT_TRUE(fs.ok());
    Result<FileHandle> a = (*fs)->Create("a");
    Result<FileHandle> b = (*fs)->Create("b");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NE(*a, *b);
    EXPECT_EQ(*(*fs)->Open("a"), *a);
    EXPECT_EQ(*(*fs)->Open("b"), *b);
    EXPECT_EQ((*fs)->Open("c").status(), Status::kErrNotFound);
    EXPECT_EQ((*fs)->Create("a").status(), Status::kErrAlreadyExists);
  });
}

TEST_F(FsTest, MultiBlockFileAndUnalignedIo) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    auto fs = LibFs::Format(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<FileHandle> file = (*fs)->Create("big");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> data(hw::kPageBytes * 3 + 100);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i * 7 + 1);
    }
    ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
    // Unaligned read across a block boundary.
    std::vector<uint8_t> out(200);
    Result<uint32_t> n = (*fs)->Read(*file, hw::kPageBytes - 100, out);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 200u);
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], data[hw::kPageBytes - 100 + i]) << i;
    }
    // Short read at EOF.
    std::vector<uint8_t> tail(300);
    n = (*fs)->Read(*file, static_cast<uint32_t>(data.size()) - 50, tail);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 50u);
  });
}

TEST_F(FsTest, DataPersistsThroughSyncAndRemount) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    {
      auto fs = LibFs::Format(p, *extent, 4);
      ASSERT_TRUE(fs.ok());
      Result<FileHandle> file = (*fs)->Create("persist");
      ASSERT_TRUE(file.ok());
      std::vector<uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
      ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
      ASSERT_EQ((*fs)->Sync(), Status::kOk);
    }
    // Remount with a fresh cache: everything must come back from disk.
    auto fs = LibFs::Mount(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<FileHandle> file = (*fs)->Open("persist");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> out(8);
    Result<uint32_t> n = (*fs)->Read(*file, 0, out);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(out, (std::vector<uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  });
}

TEST_F(FsTest, MountRejectsUnformattedExtent) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    EXPECT_EQ(LibFs::Mount(p, *extent, 4).status(), Status::kErrBadState);
  });
}

TEST_F(FsTest, FileSizeLimitEnforced) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    auto fs = LibFs::Format(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<FileHandle> file = (*fs)->Create("cap");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> byte = {1};
    EXPECT_EQ((*fs)->Write(*file, LibFs::kMaxFileBytes, byte), Status::kErrOutOfRange);
    EXPECT_EQ((*fs)->Write(*file, 10, byte), Status::kErrOutOfRange);  // Hole.
  });
}

// --- Disk barrier syscall ---

TEST_F(FsTest, SysDiskBarrierRequiresLiveExtentAndWriteRights) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(8);
    ASSERT_TRUE(extent.ok());
    cap::Capability forged = extent->cap;
    forged.mac ^= 3;
    EXPECT_EQ(kernel_.SysDiskBarrier(extent->extent, forged), Status::kErrAccessDenied);
    Result<cap::Capability> ro = kernel_.SysDeriveCap(extent->cap, cap::kRead);
    ASSERT_TRUE(ro.ok());
    EXPECT_EQ(kernel_.SysDiskBarrier(extent->extent, *ro), Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysDiskBarrier(extent->extent, extent->cap), Status::kOk);
    ASSERT_EQ(kernel_.SysFreeDiskExtent(extent->extent, extent->cap), Status::kOk);
    EXPECT_EQ(kernel_.SysDiskBarrier(extent->extent, extent->cap), Status::kErrOutOfRange);
    (void)p;
  });
}

TEST_F(FsTest, SysDiskBarrierDrainsAcknowledgedWrites) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(8);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    auto bytes = machine_.mem().PageSpan(frame->page);
    std::fill(bytes.begin(), bytes.end(), uint8_t{0x5a});
    ASSERT_EQ(kernel_.SysDiskWrite(extent->extent, extent->cap, 2, frame->page), Status::kOk);
    // Acknowledged, but only buffered: the platter image is still zero.
    EXPECT_EQ(disk_.buffered_blocks(), 1u);
    const size_t platter_off = (extent->first_block + 2) * hw::kPageBytes;
    EXPECT_EQ(disk_.TakeImage()[platter_off], 0u);
    ASSERT_EQ(kernel_.SysDiskBarrier(extent->extent, extent->cap), Status::kOk);
    EXPECT_EQ(disk_.buffered_blocks(), 0u);
    EXPECT_EQ(disk_.TakeImage()[platter_off], 0x5au);
    (void)p;
  });
}

// --- Journaling ---

TEST_F(FsTest, CommittedMetadataSurvivesRemountWithoutSync) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    {
      auto fs = LibFs::Format(p, *extent, 4);
      ASSERT_TRUE(fs.ok());
      ASSERT_TRUE((*fs)->journaled());
      Result<FileHandle> file = (*fs)->Create("wal.txt");
      ASSERT_TRUE(file.ok());
      std::vector<uint8_t> data(5000, 0xab);
      ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
      EXPECT_GT((*fs)->txns_committed(), 0u);
      // No Sync: the dirty cache is simply dropped, as if the library
      // crashed. The journal alone must carry the metadata.
    }
    auto fs = LibFs::Mount(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    EXPECT_GT((*fs)->txns_replayed(), 0u);
    Result<FileHandle> file = (*fs)->Open("wal.txt");
    ASSERT_TRUE(file.ok());
    EXPECT_EQ(*(*fs)->FileSize(*file), 5000u);
    EXPECT_EQ((*fs)->Fsck(), Status::kOk) << (*fs)->fsck_error();
  });
}

TEST_F(FsTest, FullJournalCheckpointsAutomatically) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(128);
    ASSERT_TRUE(extent.ok());
    auto fs = LibFs::Format(p, *extent, 6);
    ASSERT_TRUE(fs.ok());
    // Each create is a 2-block transaction in an 8-block journal (4 blocks
    // per record with descriptor and commit): the journal wraps repeatedly.
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE((*fs)->Create("file" + std::to_string(i)).ok());
    }
    EXPECT_GT((*fs)->checkpoints(), 1u);
    EXPECT_EQ((*fs)->Fsck(), Status::kOk) << (*fs)->fsck_error();
    // Everything is still there after a remount (mixture of checkpointed
    // home blocks and journal replay).
    auto again = LibFs::Mount(p, *extent, 6);
    ASSERT_TRUE(again.ok());
    for (int i = 0; i < 12; ++i) {
      EXPECT_TRUE((*again)->Open("file" + std::to_string(i)).ok()) << i;
    }
    EXPECT_EQ((*again)->Fsck(), Status::kOk) << (*again)->fsck_error();
  });
}

TEST_F(FsTest, UnjournaledOptionReproducesLegacyLayout) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    LibFs::Options options;
    options.cache_slots = 4;
    options.journal_blocks = 0;
    auto fs = LibFs::Format(p, *extent, options);
    ASSERT_TRUE(fs.ok());
    EXPECT_FALSE((*fs)->journaled());
    EXPECT_EQ((*fs)->data_start(), 3u);
    Result<FileHandle> file = (*fs)->Create("plain");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> data = {9, 8, 7};
    ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
    ASSERT_EQ((*fs)->Sync(), Status::kOk);
    EXPECT_EQ((*fs)->journal_block_writes(), 0u);
    auto again = LibFs::Mount(p, *extent, 4);
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE((*again)->journaled());
    EXPECT_EQ((*again)->Fsck(), Status::kOk) << (*again)->fsck_error();
    std::vector<uint8_t> out(3);
    ASSERT_TRUE((*again)->Read(*(*again)->Open("plain"), 0, out).ok());
    EXPECT_EQ(out, data);
  });
}

TEST_F(FsTest, SyncIssuesABarrierToTheDevice) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    auto fs = LibFs::Format(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    const uint64_t before = disk_.barriers_completed();
    Result<FileHandle> file = (*fs)->Create("durable");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> data = {1};
    ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
    ASSERT_EQ((*fs)->Sync(), Status::kOk);
    EXPECT_GT((*fs)->barriers_issued(), 0u);
    EXPECT_GT(disk_.barriers_completed(), before);
    // After the sync checkpoint nothing volatile remains on the device.
    EXPECT_EQ(disk_.buffered_blocks(), 0u);
    EXPECT_EQ((*fs)->cache().dirty_remaining(), 0u);
  });
}

// --- Fsck ---

TEST_F(FsTest, FsckFlagsCorruptAllocatorAndDanglingEntries) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    {
      auto fs = LibFs::Format(p, *extent, 4);
      ASSERT_TRUE(fs.ok());
      Result<FileHandle> file = (*fs)->Create("victim");
      ASSERT_TRUE(file.ok());
      std::vector<uint8_t> data(100, 7);
      ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
      ASSERT_EQ((*fs)->Sync(), Status::kOk);
      EXPECT_EQ((*fs)->Fsck(), Status::kOk) << (*fs)->fsck_error();
    }
    // Corrupt the durable image out-of-band: allocator pointer beyond the
    // extent. (Host-level tampering, as a crashed controller might leave.)
    // The journal region is wiped too — otherwise mount-time replay would
    // simply redo the committed metadata over the corruption.
    const size_t super_off = static_cast<size_t>(extent->first_block) * hw::kPageBytes;
    {
      std::vector<uint8_t> image = disk_.TakeImage();
      const uint32_t bogus = 0xffff;
      std::memcpy(&image[super_off + 4], &bogus, 4);
      std::memset(&image[super_off + 3 * hw::kPageBytes], 0, 8 * hw::kPageBytes);
      ASSERT_EQ(disk_.RestoreImage(image), Status::kOk);
      auto fs = LibFs::Mount(p, *extent, 4);
      ASSERT_TRUE(fs.ok());
      EXPECT_EQ((*fs)->Fsck(), Status::kErrBadState);
      EXPECT_NE((*fs)->fsck_error().find("allocator"), std::string::npos)
          << (*fs)->fsck_error();
    }
    // Restore a sane allocator but free the inode under the directory
    // entry: the entry dangles.
    {
      std::vector<uint8_t> image = disk_.TakeImage();
      const uint32_t sane = 12;  // data_start (3 + 8 journal blocks) + 1 block.
      std::memcpy(&image[super_off + 4], &sane, 4);
      const size_t inode_off = super_off + 2 * hw::kPageBytes;
      const uint32_t zero = 0;
      std::memcpy(&image[inode_off], &zero, 4);  // inode 0: used = 0.
      ASSERT_EQ(disk_.RestoreImage(image), Status::kOk);
      auto fs = LibFs::Mount(p, *extent, 4);
      ASSERT_TRUE(fs.ok());
      EXPECT_EQ((*fs)->Fsck(), Status::kErrBadState);
      EXPECT_NE((*fs)->fsck_error().find("dangling"), std::string::npos)
          << (*fs)->fsck_error();
    }
  });
}

TEST_F(FsTest, FsckFlagsDoublyClaimedDataBlock) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    {
      auto fs = LibFs::Format(p, *extent, 4);
      ASSERT_TRUE(fs.ok());
      std::vector<uint8_t> data(100, 7);
      for (const char* name : {"a", "b"}) {
        Result<FileHandle> file = (*fs)->Create(name);
        ASSERT_TRUE(file.ok());
        ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
      }
      ASSERT_EQ((*fs)->Sync(), Status::kOk);
    }
    std::vector<uint8_t> image = disk_.TakeImage();
    const size_t super_off = static_cast<size_t>(extent->first_block) * hw::kPageBytes;
    const size_t inode_off = super_off + 2 * hw::kPageBytes;
    // Point inode 1's first direct block at inode 0's, and wipe the
    // journal so replay cannot redo the intact inode table.
    uint32_t block0 = 0;
    std::memcpy(&block0, &image[inode_off + 8], 4);
    std::memcpy(&image[inode_off + 64 + 8], &block0, 4);
    std::memset(&image[super_off + 3 * hw::kPageBytes], 0, 8 * hw::kPageBytes);
    ASSERT_EQ(disk_.RestoreImage(image), Status::kOk);
    auto fs = LibFs::Mount(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    EXPECT_EQ((*fs)->Fsck(), Status::kErrBadState);
    EXPECT_NE((*fs)->fsck_error().find("two files"), std::string::npos) << (*fs)->fsck_error();
  });
}

// --- Persistent media errors (retry exhaustion) ---

TEST_F(FsTest, PersistentMediaErrorSurfacesAsIoFailure) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(64);
    ASSERT_TRUE(extent.ok());
    auto fs = LibFs::Format(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<FileHandle> file = (*fs)->Create("sick");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> data(256, 3);
    ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
    ASSERT_EQ((*fs)->Sync(), Status::kOk);

    // From here every transfer fails: retries must exhaust and surface
    // kErrIo instead of looping forever.
    hw::FaultPlan plan;
    plan.seed = 5;
    plan.disk_error_per_mille = 1000;
    kernel_.InstallFaultPlan(plan);
    std::vector<uint8_t> more(hw::kPageBytes, 4);
    EXPECT_EQ((*fs)->Write(*file, 256, more), Status::kErrIo);  // Extension txn.
    EXPECT_GE(kernel_.fault_injector()->disk_errors_injected(), 8u);  // kMaxIoAttempts.

    // An overwrite of a cached block succeeds in memory, but Sync cannot
    // write it back; the dirty block stays accounted for.
    std::vector<uint8_t> touch = {9};
    ASSERT_EQ((*fs)->Write(*file, 0, touch), Status::kOk);
    EXPECT_EQ((*fs)->Sync(), Status::kErrIo);
    EXPECT_GT((*fs)->cache().dirty_remaining(), 0u);

    // The medium recovers: everything drains.
    hw::FaultPlan healthy;
    kernel_.InstallFaultPlan(healthy);
    EXPECT_EQ((*fs)->Sync(), Status::kOk);
    EXPECT_EQ((*fs)->cache().dirty_remaining(), 0u);
    EXPECT_EQ((*fs)->Fsck(), Status::kOk) << (*fs)->fsck_error();
  });
}

TEST_F(FsTest, FlushAttemptsEverySlotPastTheFirstFailure) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(16);
    ASSERT_TRUE(extent.ok());
    auto cache = BlockCache::Create(p, *extent, 4);
    ASSERT_TRUE(cache.ok());
    ASSERT_TRUE((*cache)->GetBlock(1, true).ok());
    ASSERT_TRUE((*cache)->GetBlock(2, true).ok());
    ASSERT_TRUE((*cache)->GetBlock(3, true).ok());
    EXPECT_EQ((*cache)->dirty_remaining(), 3u);

    hw::FaultPlan plan;
    plan.seed = 6;
    plan.disk_error_per_mille = 1000;
    kernel_.InstallFaultPlan(plan);
    EXPECT_EQ((*cache)->Flush(), Status::kErrIo);
    // Every slot was attempted (8 exhausted retries each), not just the
    // first: 24 injected errors, three blocks still dirty.
    EXPECT_EQ(kernel_.fault_injector()->disk_errors_injected(), 24u);
    EXPECT_EQ((*cache)->dirty_remaining(), 3u);

    hw::FaultPlan healthy;
    kernel_.InstallFaultPlan(healthy);
    EXPECT_EQ((*cache)->Flush(), Status::kOk);
    EXPECT_EQ((*cache)->dirty_remaining(), 0u);
  });
}

// Property: LibFs against an in-memory reference over random file ops.
TEST_F(FsTest, PropertyMatchesReferenceModel) {
  RunInProcess([&](Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(256);
    ASSERT_TRUE(extent.ok());
    auto fs_result = LibFs::Format(p, *extent, 6);
    ASSERT_TRUE(fs_result.ok());
    LibFs& fs = **fs_result;

    std::map<std::string, std::vector<uint8_t>> model;
    std::map<std::string, FileHandle> handles;
    SplitMix64 rng(31);
    const std::string names[4] = {"alpha", "beta", "gamma", "delta"};

    for (int step = 0; step < 400; ++step) {
      const std::string& name = names[rng.NextBelow(4)];
      switch (rng.NextBelow(3)) {
        case 0: {  // Create.
          Result<FileHandle> handle = fs.Create(name);
          if (model.count(name)) {
            ASSERT_EQ(handle.status(), Status::kErrAlreadyExists);
          } else {
            ASSERT_TRUE(handle.ok());
            model[name] = {};
            handles[name] = *handle;
          }
          break;
        }
        case 1: {  // Append/overwrite a chunk.
          if (!model.count(name)) {
            break;
          }
          std::vector<uint8_t>& ref = model[name];
          const uint32_t offset = static_cast<uint32_t>(
              rng.NextBelow(ref.size() + 1));  // No holes.
          std::vector<uint8_t> chunk(rng.NextBelow(600) + 1);
          for (auto& b : chunk) {
            b = static_cast<uint8_t>(rng.Next());
          }
          if (offset + chunk.size() > LibFs::kMaxFileBytes) {
            break;
          }
          ASSERT_EQ(fs.Write(handles[name], offset, chunk), Status::kOk);
          if (ref.size() < offset + chunk.size()) {
            ref.resize(offset + chunk.size());
          }
          std::copy(chunk.begin(), chunk.end(), ref.begin() + offset);
          break;
        }
        default: {  // Read and compare.
          if (!model.count(name)) {
            ASSERT_EQ(fs.Open(name).status(), Status::kErrNotFound);
            break;
          }
          const std::vector<uint8_t>& ref = model[name];
          std::vector<uint8_t> out(rng.NextBelow(800) + 1);
          const uint32_t offset = static_cast<uint32_t>(rng.NextBelow(ref.size() + 32));
          Result<uint32_t> n = fs.Read(handles[name], offset, out);
          ASSERT_TRUE(n.ok());
          const uint32_t expect =
              offset >= ref.size()
                  ? 0
                  : std::min<uint32_t>(static_cast<uint32_t>(out.size()),
                                       static_cast<uint32_t>(ref.size()) - offset);
          ASSERT_EQ(*n, expect);
          for (uint32_t i = 0; i < expect; ++i) {
            ASSERT_EQ(out[i], ref[offset + i]) << "file " << name << " off " << offset + i;
          }
          break;
        }
      }
    }
  });
}

}  // namespace
}  // namespace xok::exos
