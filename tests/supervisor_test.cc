// Supervision tree: an init-style supervisor env restarting crashed
// children with exponential backoff, declaring crash-loops permanent,
// distinguishing heartbeat stalls (alive but frozen — killed and
// restarted) from genuine deaths, and surviving edge cases: a second
// child dying while another sits in its backoff window, and the
// supervisor itself being killed mid-storm with the kernel's ledger
// staying clean.
#include "src/exos/supervisor.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/aegis.h"
#include "src/hw/fault.h"

namespace xok {
namespace {

using aegis::Aegis;
using exos::ChildSpec;
using exos::ChildState;
using exos::RestartPolicy;
using exos::Supervisor;

class SupervisorTest : public ::testing::Test {
 protected:
  SupervisorTest()
      : machine_(hw::Machine::Config{.phys_pages = 256, .name = "supervise"}),
        // Environment ids are never reused, so restart churn needs asid
        // headroom well past the default.
        kernel_(machine_, Aegis::Config{.max_envs = 200}) {
    kernel_.set_audit_on_fault(true);
  }

  hw::Machine machine_;
  Aegis kernel_;
};

// A child crashes by reaping itself with its own env_cap (does not
// return); the supervisor sees killed=true, i.e. a genuine crash.
void CrashSelf(exos::Process& p) {
  (void)p.kernel().SysKillEnv(p.id(), p.env_cap());
}

TEST_F(SupervisorTest, RestartsACrashedChildUntilItSucceeds) {
  int attempts = 0;
  bool succeeded = false;
  std::vector<ChildSpec> specs;
  specs.push_back({
      .name = "flaky",
      .body =
          [&](exos::Process& p) {
            if (++attempts <= 2) {
              CrashSelf(p);
            }
            succeeded = true;
          },
      .policy = RestartPolicy::kOnFailure,
      .max_restarts = 4,
  });
  Supervisor sup(kernel_, std::move(specs));
  ASSERT_TRUE(sup.ok());
  kernel_.Run();

  EXPECT_TRUE(succeeded);
  EXPECT_EQ(attempts, 3);
  EXPECT_TRUE(sup.finished());
  ASSERT_EQ(sup.status().size(), 1u);
  EXPECT_EQ(sup.status()[0].state, ChildState::kDone);
  EXPECT_EQ(sup.status()[0].restarts, 2u);
  EXPECT_EQ(sup.status()[0].stall_kills, 0u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

TEST_F(SupervisorTest, CrashLoopBecomesAPermanentFailure) {
  int attempts = 0;
  std::vector<ChildSpec> specs;
  specs.push_back({
      .name = "doomed",
      .body = [&](exos::Process& p) { ++attempts; CrashSelf(p); },
      .policy = RestartPolicy::kOnFailure,
      .max_restarts = 2,
  });
  Supervisor sup(kernel_, std::move(specs));
  ASSERT_TRUE(sup.ok());
  kernel_.Run();

  // Initial spawn + 2 restarts, then the breaker trips.
  EXPECT_EQ(attempts, 3);
  EXPECT_TRUE(sup.finished());
  EXPECT_EQ(sup.status()[0].state, ChildState::kFailed);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

TEST_F(SupervisorTest, CleanExitUnderOnFailureIsNotRestarted) {
  int runs = 0;
  std::vector<ChildSpec> specs;
  specs.push_back({
      .name = "oneshot",
      .body = [&](exos::Process&) { ++runs; },
      .policy = RestartPolicy::kOnFailure,
  });
  Supervisor sup(kernel_, std::move(specs));
  ASSERT_TRUE(sup.ok());
  kernel_.Run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(sup.status()[0].state, ChildState::kDone);
  EXPECT_EQ(sup.status()[0].restarts, 0u);
}

// A second child dying while the first sits in its backoff window must
// not confuse either child's bookkeeping.
TEST_F(SupervisorTest, DeathDuringAnotherChildsBackoffWindow) {
  int a_attempts = 0;
  int b_attempts = 0;
  std::vector<ChildSpec> specs;
  specs.push_back({
      .name = "slow-backoff",
      .body =
          [&](exos::Process& p) {
            if (++a_attempts <= 2) {
              CrashSelf(p);
            }
          },
      .policy = RestartPolicy::kOnFailure,
      .max_restarts = 4,
      // Long windows: B's death (and restart) lands inside them.
      .backoff_initial = 400'000,
      .backoff_cap = 800'000,
  });
  specs.push_back({
      .name = "mid-window",
      .body =
          [&](exos::Process& p) {
            if (++b_attempts == 1) {
              p.kernel().SysSleep(150'000);  // Die inside A's first window.
              CrashSelf(p);
            }
          },
      .policy = RestartPolicy::kOnFailure,
      .max_restarts = 4,
      .backoff_initial = 50'000,
  });
  Supervisor sup(kernel_, std::move(specs));
  ASSERT_TRUE(sup.ok());
  kernel_.Run();

  EXPECT_TRUE(sup.finished());
  EXPECT_EQ(a_attempts, 3);
  EXPECT_EQ(b_attempts, 2);
  EXPECT_EQ(sup.status()[0].state, ChildState::kDone);
  EXPECT_EQ(sup.status()[0].restarts, 2u);
  EXPECT_EQ(sup.status()[1].state, ChildState::kDone);
  EXPECT_EQ(sup.status()[1].restarts, 1u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// Heartbeat: a child that is alive but frozen (blocked forever) gets
// killed and restarted; a child that genuinely dies restarts through the
// death path with no stall kill. The two must not be conflated.
TEST_F(SupervisorTest, HeartbeatStallIsKilledGenuineDeathIsNot) {
  int wedge_attempts = 0;
  int crasher_attempts = 0;
  bool wedge_recovered = false;
  std::vector<ChildSpec> specs;
  specs.push_back({
      .name = "wedge",
      .body =
          [&](exos::Process& p) {
            if (++wedge_attempts == 1) {
              for (;;) {
                p.kernel().SysBlock();  // Frozen: no progress, still alive.
              }
            }
            wedge_recovered = true;
          },
      .policy = RestartPolicy::kOnFailure,
      .max_restarts = 4,
      .stall_samples = 3,
  });
  specs.push_back({
      .name = "crasher",
      .body =
          [&](exos::Process& p) {
            if (++crasher_attempts == 1) {
              p.kernel().SysSleep(30'000);
              CrashSelf(p);
            }
          },
      .policy = RestartPolicy::kOnFailure,
      .max_restarts = 4,
      .stall_samples = 3,
  });
  Supervisor sup(kernel_, std::move(specs));
  ASSERT_TRUE(sup.ok());
  kernel_.Run();

  EXPECT_TRUE(sup.finished());
  EXPECT_TRUE(wedge_recovered);
  EXPECT_EQ(wedge_attempts, 2);
  EXPECT_EQ(sup.status()[0].state, ChildState::kDone);
  EXPECT_EQ(sup.status()[0].stall_kills, 1u);  // Stall: supervisor killed it.
  EXPECT_EQ(crasher_attempts, 2);
  EXPECT_EQ(sup.status()[1].state, ChildState::kDone);
  EXPECT_EQ(sup.status()[1].stall_kills, 0u);  // Death: no kill needed.
  EXPECT_EQ(sup.status()[1].restarts, 1u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// The supervisor itself is killed mid-storm. The children run on
// unsupervised and exit; every audit (after each kill and pressure
// application, plus the final one) stays clean.
TEST_F(SupervisorTest, SupervisorKilledMidStormLeavesTheLedgerClean) {
  int children_done = 0;
  std::vector<ChildSpec> specs;
  for (int c = 0; c < 2; ++c) {
    specs.push_back({
        .name = "holder",
        .body =
            [&](exos::Process& p) {
              for (int i = 0; i < 8; ++i) {
                ASSERT_TRUE(p.kernel().SysAllocPage().ok());
              }
              while (p.kernel().SysGetCycles() < 1'000'000) {
                p.kernel().SysSleep(25'000);
                (void)p.kernel().SysReadRepossessed();
              }
              ++children_done;
            },
        .policy = RestartPolicy::kNever,
    });
  }
  Supervisor sup(kernel_, std::move(specs));
  ASSERT_TRUE(sup.ok());

  aegis::PressurePlan pressure;
  pressure.floor.pages = 2;
  pressure.Storm(/*start=*/200'000, /*end=*/800'000, /*period=*/100'000, /*pages=*/2);
  kernel_.InstallPressurePlan(pressure);
  hw::FaultPlan faults;
  faults.KillEnvAt(400'000, sup.id());
  kernel_.InstallFaultPlan(faults);
  kernel_.Run();

  // The supervisor died mid-flight; its children finished without it.
  EXPECT_FALSE(sup.finished());
  EXPECT_FALSE(kernel_.EnvAlive(sup.id()));
  EXPECT_EQ(children_done, 2);
  EXPECT_EQ(kernel_.envs_killed(), 1u);
  EXPECT_GT(kernel_.pressure_stats()->bursts, 0u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
  Aegis::AuditReport report = kernel_.AuditInvariants();
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
}

}  // namespace
}  // namespace xok
