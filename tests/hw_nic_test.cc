#include "src/hw/nic.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/machine.h"
#include "src/hw/world.h"

namespace xok::hw {
namespace {

class RecordingKernel : public TrapSink {
 public:
  explicit RecordingKernel(Machine& machine) : priv_(machine.InstallKernel(this)) {}

  TrapOutcome OnException(TrapFrame&) override { return TrapOutcome::kSkip; }
  void OnInterrupt(InterruptSource source, uint64_t) override { sources.push_back(source); }

  PrivPort& priv_;
  std::vector<InterruptSource> sources;
};

std::vector<uint8_t> Frame(MacAddr dst, MacAddr src, size_t payload = 46) {
  std::vector<uint8_t> f(14 + payload, 0);
  for (int i = 0; i < 6; ++i) {
    f[i] = static_cast<uint8_t>(dst >> (8 * (5 - i)));
    f[6 + i] = static_cast<uint8_t>(src >> (8 * (5 - i)));
  }
  f[12] = 0x08;  // IPv4 ethertype.
  return f;
}

TEST(ReadMacTest, RoundTripsBigEndianBytes) {
  auto f = Frame(0x0000aabbccdd, 0x000011223344);
  EXPECT_EQ(ReadMac(f, 0), 0x0000aabbccddULL);
  EXPECT_EQ(ReadMac(f, 6), 0x000011223344ULL);
}

class NicTest : public ::testing::Test {
 protected:
  NicTest()
      : machine_a_(Machine::Config{.phys_pages = 16, .name = "a"}, &world_),
        machine_b_(Machine::Config{.phys_pages = 16, .name = "b"}, &world_),
        kernel_a_(machine_a_),
        kernel_b_(machine_b_),
        nic_a_(machine_a_, 0xaa),
        nic_b_(machine_b_, 0xbb) {
    wire_.Attach(&nic_a_);
    wire_.Attach(&nic_b_);
  }

  World world_;
  Machine machine_a_;
  Machine machine_b_;
  RecordingKernel kernel_a_;
  RecordingKernel kernel_b_;
  Wire wire_;
  Nic nic_a_;
  Nic nic_b_;
};

TEST_F(NicTest, AddressedFrameReachesOnlyItsDestination) {
  bool b_got_interrupt = false;
  world_.Run({
      [&] {
        ASSERT_TRUE(nic_a_.Transmit(Frame(0xbb, 0xaa)));
        // Nothing addressed to A: its ring must stay empty.
        EXPECT_EQ(nic_a_.ReceiveNext(), std::nullopt);
      },
      [&] {
        machine_b_.WaitForInterrupt();
        b_got_interrupt = true;
        auto frame = nic_b_.ReceiveNext();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(ReadMac(*frame, 0), 0xbbULL);
        EXPECT_EQ(ReadMac(*frame, 6), 0xaaULL);
      },
  });
  EXPECT_TRUE(b_got_interrupt);
  ASSERT_EQ(kernel_b_.sources.size(), 1u);
  EXPECT_EQ(kernel_b_.sources[0], InterruptSource::kNicRx);
}

TEST_F(NicTest, BroadcastReachesAllOtherStations) {
  world_.Run({
      [&] { ASSERT_TRUE(nic_a_.Transmit(Frame(kBroadcastMac, 0xaa))); },
      [&] {
        machine_b_.WaitForInterrupt();
        EXPECT_TRUE(nic_b_.ReceiveNext().has_value());
      },
  });
}

TEST_F(NicTest, WrongDestinationIsFiltered) {
  world_.Run({
      [&] {
        ASSERT_TRUE(nic_a_.Transmit(Frame(0xcc, 0xaa)));  // Nobody has MAC 0xcc.
        machine_a_.Charge(1'000'000);
      },
      [&] { machine_b_.Charge(1'000'000); },
  });
  EXPECT_TRUE(kernel_b_.sources.empty());
  EXPECT_EQ(nic_b_.frames_received(), 0u);
}

TEST_F(NicTest, DeliveryTakesWireTime) {
  uint64_t sent_at = 0;
  uint64_t received_at = 0;
  const auto frame = Frame(0xbb, 0xaa, 46);  // 60-byte frame.
  world_.Run({
      [&] {
        sent_at = machine_a_.clock().now();
        ASSERT_TRUE(nic_a_.Transmit(frame));
      },
      [&] {
        machine_b_.WaitForInterrupt();
        received_at = machine_b_.clock().now();
      },
  });
  // At least the serialisation delay: 60 bytes at 20 cycles/byte.
  EXPECT_GE(received_at - sent_at, 60u * kWireCyclesPerByte);
}

TEST_F(NicTest, RxRingOverflowDropsFrames) {
  world_.Run({
      [&] {
        for (size_t i = 0; i < Nic::kRxRingSlots + 10; ++i) {
          ASSERT_TRUE(nic_a_.Transmit(Frame(0xbb, 0xaa)));
        }
      },
      [&] {
        // B never drains its ring; just let time pass.
        machine_b_.Charge(100'000'000);
      },
  });
  EXPECT_EQ(nic_b_.frames_dropped(), 10u);
  EXPECT_EQ(nic_b_.frames_received(), Nic::kRxRingSlots);
}

TEST_F(NicTest, RuntFrameRejected) {
  std::vector<uint8_t> runt(10, 0);
  EXPECT_FALSE(nic_a_.Transmit(runt));
}

TEST_F(NicTest, OversizeFrameRejected) {
  std::vector<uint8_t> giant(Nic::kMaxFrameBytes + 1, 0);
  EXPECT_FALSE(nic_a_.Transmit(giant));
}

}  // namespace
}  // namespace xok::hw
