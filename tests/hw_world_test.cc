#include "src/hw/world.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/machine.h"

namespace xok::hw {
namespace {

class IdleKernel : public TrapSink {
 public:
  explicit IdleKernel(Machine& machine) : priv_(machine.InstallKernel(this)) {}
  TrapOutcome OnException(TrapFrame&) override { return TrapOutcome::kSkip; }
  void OnInterrupt(InterruptSource source, uint64_t payload) override {
    events.push_back({source, payload});
  }
  PrivPort& priv_;
  std::vector<std::pair<InterruptSource, uint64_t>> events;
};

TEST(World, MachinesShareOneClock) {
  World world;
  Machine a(Machine::Config{.phys_pages = 16, .name = "a"}, &world);
  Machine b(Machine::Config{.phys_pages = 16, .name = "b"}, &world);
  EXPECT_EQ(&a.clock(), &b.clock());
}

TEST(World, BodiesRunToCompletion) {
  World world;
  Machine a(Machine::Config{.phys_pages = 16, .name = "a"}, &world);
  Machine b(Machine::Config{.phys_pages = 16, .name = "b"}, &world);
  IdleKernel ka(a);
  IdleKernel kb(b);
  bool ran_a = false;
  bool ran_b = false;
  world.Run({[&] { ran_a = true; }, [&] { ran_b = true; }});
  EXPECT_TRUE(ran_a);
  EXPECT_TRUE(ran_b);
}

TEST(World, ParkedMachineWakesForItsEvent) {
  World world;
  Machine a(Machine::Config{.phys_pages = 16, .name = "a"}, &world);
  Machine b(Machine::Config{.phys_pages = 16, .name = "b"}, &world);
  IdleKernel ka(a);
  IdleKernel kb(b);
  uint64_t woke_at = 0;
  world.Run({[&] {
               ka.priv_.ScheduleEvent(50'000, InterruptSource::kAlarm, 9);
               a.WaitForInterrupt();
               woke_at = a.clock().now();
             },
             [&] { b.Charge(10'000); }});
  EXPECT_GE(woke_at, 50'000u);
  ASSERT_EQ(ka.events.size(), 1u);
  EXPECT_EQ(ka.events[0].second, 9u);
}

TEST(World, RunningMachineYieldsWhenPeerEventComesDue) {
  // Machine A computes for a long time; machine B parks waiting for an
  // event due early. A's charging must hand control to B near the event's
  // due time, not after A finishes everything.
  World world;
  Machine a(Machine::Config{.phys_pages = 16, .name = "a"}, &world);
  Machine b(Machine::Config{.phys_pages = 16, .name = "b"}, &world);
  IdleKernel ka(a);
  IdleKernel kb(b);
  uint64_t a_woke_at = 0;
  uint64_t b_done_at = 0;
  // Machine A (attached first, so it runs first) parks on its event;
  // machine B then computes for ~1M cycles. A must be resumed near its
  // event's due time via charge-boundary preemption, not after B finishes.
  world.Run({[&] {
               ka.priv_.ScheduleEvent(20'000, InterruptSource::kAlarm, 1);
               a.WaitForInterrupt();
               a_woke_at = a.clock().now();
             },
             [&] {
               for (int i = 0; i < 1000; ++i) {
                 b.Charge(1'000);
               }
               b_done_at = b.clock().now();
             }});
  EXPECT_LT(a_woke_at, b_done_at);
  EXPECT_LT(a_woke_at, 100'000u);  // Near the due time, not after B's 1M cycles.
}

TEST(World, EventOrderAcrossMachinesFollowsDueCycles) {
  World world;
  Machine a(Machine::Config{.phys_pages = 16, .name = "a"}, &world);
  Machine b(Machine::Config{.phys_pages = 16, .name = "b"}, &world);
  IdleKernel ka(a);
  IdleKernel kb(b);
  std::vector<int> order;
  world.Run({[&] {
               ka.priv_.ScheduleEvent(30'000, InterruptSource::kAlarm, 0);
               a.WaitForInterrupt();
               order.push_back(1);
             },
             [&] {
               kb.priv_.ScheduleEvent(10'000, InterruptSource::kAlarm, 0);
               b.WaitForInterrupt();
               order.push_back(2);
               kb.priv_.ScheduleEvent(40'000, InterruptSource::kAlarm, 0);
               b.WaitForInterrupt();
               order.push_back(3);
             }});
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(World, QuiescesWhenAllMachinesParkForever) {
  // A machine parked with no pending events must not hang the world.
  World world;
  Machine a(Machine::Config{.phys_pages = 16, .name = "a"}, &world);
  IdleKernel ka(a);
  bool after_park = false;
  world.Run({[&] {
    // Park with nothing pending: the world returns while this body is
    // still blocked (it never resumes).
    ka.priv_.ScheduleEvent(100, InterruptSource::kAlarm, 0);
    a.WaitForInterrupt();  // This one completes...
    after_park = true;
  }});
  EXPECT_TRUE(after_park);
}

}  // namespace
}  // namespace xok::hw
