#include "src/ultrix/ultrix.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/world.h"

namespace xok::ultrix {
namespace {

class UltrixTest : public ::testing::Test {
 protected:
  UltrixTest()
      : machine_(hw::Machine::Config{.phys_pages = 512, .name = "ux"}), kernel_(machine_) {}

  hw::Machine machine_;
  Ultrix kernel_;
};

TEST_F(UltrixTest, ProcessRunsAndExits) {
  bool ran = false;
  ASSERT_TRUE(kernel_.CreateProcess([&] { ran = true; }).ok());
  kernel_.Run();
  EXPECT_TRUE(ran);
}

TEST_F(UltrixTest, GetPidReturnsDistinctIds) {
  Pid a = kNoPid;
  Pid b = kNoPid;
  ASSERT_TRUE(kernel_.CreateProcess([&] { a = kernel_.SysGetPid(); }).ok());
  ASSERT_TRUE(kernel_.CreateProcess([&] { b = kernel_.SysGetPid(); }).ok());
  kernel_.Run();
  EXPECT_NE(a, kNoPid);
  EXPECT_NE(b, kNoPid);
  EXPECT_NE(a, b);
}

TEST_F(UltrixTest, NullSyscallCostsFarMoreThanAegisScale) {
  uint64_t cost = 0;
  ASSERT_TRUE(kernel_.CreateProcess([&] {
    const uint64_t t0 = machine_.clock().now();
    kernel_.SysNull();
    cost = machine_.clock().now() - t0;
  }).ok());
  kernel_.Run();
  // Paper band: Ultrix null syscall is roughly an order of magnitude over
  // Aegis's (~1.5 us): expect 5-30 us.
  EXPECT_GT(hw::CyclesToMicros(cost), 5.0);
  EXPECT_LT(hw::CyclesToMicros(cost), 30.0);
}

TEST_F(UltrixTest, DemandZeroHeap) {
  ASSERT_TRUE(kernel_.CreateProcess([&] {
    ASSERT_EQ(machine_.StoreWord(0x100000, 0x1234), Status::kOk);
    Result<uint32_t> v = machine_.LoadWord(0x100000);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 0x1234u);
    Result<uint32_t> zero = machine_.LoadWord(0x200000);
    ASSERT_TRUE(zero.ok());
    EXPECT_EQ(*zero, 0u);
  }).ok());
  kernel_.Run();
}

TEST_F(UltrixTest, MprotectAndSignalHandlerRoundTrip) {
  int faults = 0;
  ASSERT_TRUE(kernel_.CreateProcess([&] {
    ASSERT_EQ(machine_.StoreWord(0x300000, 0x55), Status::kOk);
    kernel_.SysSignal([&](hw::Vaddr va, bool) {
      ++faults;
      return kernel_.SysMprotect(va & ~hw::kPageMask, 1, kProtWrite) == Status::kOk;
    });
    ASSERT_EQ(kernel_.SysMprotect(0x300000, 1, kProtNone), Status::kOk);
    Result<uint32_t> v = machine_.LoadWord(0x300000);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 0x55u);
  }).ok());
  kernel_.Run();
  EXPECT_EQ(faults, 1);
}

TEST_F(UltrixTest, SignalDeliveryIsExpensive) {
  uint64_t fault_cost = 0;
  ASSERT_TRUE(kernel_.CreateProcess([&] {
    ASSERT_EQ(machine_.StoreWord(0x300000, 0x55), Status::kOk);
    kernel_.SysSignal([&](hw::Vaddr va, bool) {
      return kernel_.SysMprotect(va & ~hw::kPageMask, 1, kProtWrite) == Status::kOk;
    });
    ASSERT_EQ(kernel_.SysMprotect(0x300000, 1, kProtNone), Status::kOk);
    const uint64_t t0 = machine_.clock().now();
    ASSERT_TRUE(machine_.LoadWord(0x300000).ok());
    fault_cost = machine_.clock().now() - t0;
  }).ok());
  kernel_.Run();
  // The paper's Ultrix exception rows sit in the hundreds of microseconds.
  EXPECT_GT(hw::CyclesToMicros(fault_cost), 100.0);
}

TEST_F(UltrixTest, MincoreDirtyTracksStores) {
  ASSERT_TRUE(kernel_.CreateProcess([&] {
    ASSERT_TRUE(machine_.LoadWord(0x400000).ok());  // Demand-zero, read only.
    Result<bool> dirty = kernel_.SysMincoreDirty(0x400000);
    ASSERT_TRUE(dirty.ok());
    EXPECT_FALSE(*dirty);
    ASSERT_EQ(machine_.StoreWord(0x400000, 1), Status::kOk);
    EXPECT_TRUE(*kernel_.SysMincoreDirty(0x400000));
  }).ok());
  kernel_.Run();
}

TEST_F(UltrixTest, UnalignedAccessRaisesSignal) {
  int signals = 0;
  ASSERT_TRUE(kernel_.CreateProcess([&] {
    kernel_.SysSignal([&](hw::Vaddr, bool) {
      ++signals;
      return false;
    });
    EXPECT_FALSE(machine_.LoadWord(0x100001).ok());
  }).ok());
  kernel_.Run();
  EXPECT_EQ(signals, 1);
}

TEST_F(UltrixTest, PipeTransfersBytesInOrder) {
  std::vector<uint8_t> received;
  int rfd = -1;
  int wfd = -1;
  bool ready = false;
  ASSERT_TRUE(kernel_.CreateProcess([&] {
    Result<std::pair<int, int>> fds = kernel_.SysPipe();
    ASSERT_TRUE(fds.ok());
    rfd = fds->first;
    wfd = fds->second;
    ready = true;
    std::vector<uint8_t> data(100);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i * 2);
    }
    ASSERT_EQ(kernel_.SysWrite(wfd, data), Status::kOk);
  }).ok());
  ASSERT_TRUE(kernel_.CreateProcess([&] {
    while (!ready) {
      kernel_.SysYield();
    }
    // Note: fds are per-process in real UNIX; our test processes share the
    // kernel object through the same fd numbers for simplicity of setup.
    std::vector<uint8_t> buf(100);
    uint32_t total = 0;
    while (total < 100) {
      Result<uint32_t> n =
          kernel_.SysRead(rfd, std::span<uint8_t>(buf).subspan(total));
      ASSERT_TRUE(n.ok());
      total += *n;
    }
    received = buf;
  }).ok());
  kernel_.Run();
  ASSERT_EQ(received.size(), 100u);
  for (size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i], static_cast<uint8_t>(i * 2));
  }
}

TEST_F(UltrixTest, PipeBlocksReaderUntilData) {
  std::vector<int> order;
  int rfd = -1;
  int wfd = -1;
  bool ready = false;
  ASSERT_TRUE(kernel_.CreateProcess([&] {
    Result<std::pair<int, int>> fds = kernel_.SysPipe();
    ASSERT_TRUE(fds.ok());
    rfd = fds->first;
    wfd = fds->second;
    ready = true;
    order.push_back(1);
    kernel_.SysYield();  // Let the reader block first.
    order.push_back(2);
    std::vector<uint8_t> one = {42};
    ASSERT_EQ(kernel_.SysWrite(wfd, one), Status::kOk);
  }).ok());
  ASSERT_TRUE(kernel_.CreateProcess([&] {
    while (!ready) {
      kernel_.SysYield();
    }
    std::vector<uint8_t> buf(1);
    Result<uint32_t> n = kernel_.SysRead(rfd, buf);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 1u);
    EXPECT_EQ(buf[0], 42);
    order.push_back(3);
  }).ok());
  kernel_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(UltrixTest, ClosedWriterGivesEof) {
  int rfd = -1;
  int wfd = -1;
  ASSERT_TRUE(kernel_.CreateProcess([&] {
    Result<std::pair<int, int>> fds = kernel_.SysPipe();
    ASSERT_TRUE(fds.ok());
    rfd = fds->first;
    wfd = fds->second;
    ASSERT_EQ(kernel_.SysClose(wfd), Status::kOk);
    std::vector<uint8_t> buf(8);
    Result<uint32_t> n = kernel_.SysRead(rfd, buf);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0u);  // EOF.
  }).ok());
  kernel_.Run();
}

TEST_F(UltrixTest, TimerPreemptsComputeBoundProcesses) {
  uint64_t progress[2] = {0, 0};
  bool interleaved = false;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(kernel_.CreateProcess([&, i] {
      for (int step = 0; step < 100; ++step) {
        machine_.Charge(hw::Instr(500));
        ++progress[i];
        if (progress[1 - i] > 0 && progress[1 - i] < 100) {
          interleaved = true;
        }
      }
    }).ok());
  }
  kernel_.Run();
  EXPECT_EQ(progress[0], 100u);
  EXPECT_EQ(progress[1], 100u);
  EXPECT_TRUE(interleaved);
}

TEST(UltrixNetTest, UdpEchoAcrossTwoMachines) {
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "ua"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "ub"}, &world);
  Ultrix ka(ma);
  Ultrix kb(mb);
  hw::Wire wire;
  hw::Nic nic_a(ma, 0xa);
  hw::Nic nic_b(mb, 0xb);
  wire.Attach(&nic_a);
  wire.Attach(&nic_b);
  auto resolve = [](uint32_t ip) -> uint64_t { return ip == 1 ? 0xa : 0xb; };
  ka.AttachNic(&nic_a, Ultrix::NetConfig{0xa, 1, resolve});
  kb.AttachNic(&nic_b, Ultrix::NetConfig{0xb, 2, resolve});

  uint32_t echoed = 0;
  ASSERT_TRUE(ka.CreateProcess([&] {
    Result<int> fd = ka.SysSocketUdp();
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(ka.SysBindPort(*fd, 100), Status::kOk);
    // Give the other machine time to boot and bind its socket.
    ka.SysSleep(hw::kClockHz / 100);
    std::vector<uint8_t> payload = {1, 2, 3, 4};
    ASSERT_EQ(ka.SysSendTo(*fd, 2, 200, payload), Status::kOk);
    Result<Datagram> reply = ka.SysRecvFrom(*fd);
    ASSERT_TRUE(reply.ok());
    echoed = reply->payload.empty() ? 0 : reply->payload[0];
  }).ok());
  ASSERT_TRUE(kb.CreateProcess([&] {
    Result<int> fd = kb.SysSocketUdp();
    ASSERT_TRUE(fd.ok());
    ASSERT_EQ(kb.SysBindPort(*fd, 200), Status::kOk);
    Result<Datagram> request = kb.SysRecvFrom(*fd);
    ASSERT_TRUE(request.ok());
    std::vector<uint8_t> reply = {static_cast<uint8_t>(request->payload[0] + 10)};
    ASSERT_EQ(kb.SysSendTo(*fd, request->src_ip, request->src_port, reply), Status::kOk);
  }).ok());
  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});
  EXPECT_EQ(echoed, 11u);
}

}  // namespace
}  // namespace xok::ultrix
