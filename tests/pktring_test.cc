// Zero-copy packet rings: ring-view geometry, kernel deposit/doorbell/
// drop semantics, TX batching, packet-syscall error paths, crash-safe
// teardown with an environment killed mid-drain, and the ExOS ring-mode
// UDP/RDP sockets end to end (including over a lossy wire).
#include "src/net/pktring.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/aegis.h"
#include "src/dpf/tcpip_filters.h"
#include "src/exos/process.h"
#include "src/exos/rdp.h"
#include "src/exos/udp.h"
#include "src/hw/nic.h"
#include "src/hw/world.h"
#include "src/net/wire.h"

namespace xok {
namespace {

using aegis::Aegis;
using aegis::EnvGrant;
using aegis::EnvId;
using aegis::EnvSpec;
using aegis::PacketRingSpec;
using aegis::PacketStats;
using exos::Process;
using net::PacketRingView;

// --- Ring view (no kernel) ---

TEST(PacketRingViewTest, GeometryAndFormat) {
  std::vector<uint8_t> region(PacketRingView::BytesNeeded(4, 2), 0xee);
  Result<PacketRingView> view = PacketRingView::Format(region, 4, 2);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->rx_slots(), 4u);
  EXPECT_EQ(view->tx_slots(), 2u);
  EXPECT_EQ(view->rx_head(), 0u);
  EXPECT_EQ(view->rx_tail(), 0u);
  EXPECT_TRUE(view->RxEmpty());
  EXPECT_FALSE(view->rx_armed());

  EXPECT_FALSE(PacketRingView::Attach(region, 0, 2).ok());
  EXPECT_FALSE(PacketRingView::Attach(region, 4, PacketRingView::kMaxSlots + 1).ok());
  std::vector<uint8_t> small(64);
  EXPECT_FALSE(PacketRingView::Attach(small, 4, 2).ok());
}

TEST(PacketRingViewTest, TxPushWrapsAndDetectsFull) {
  std::vector<uint8_t> region(PacketRingView::BytesNeeded(2, 2));
  PacketRingView view = *PacketRingView::Format(region, 2, 2);
  const std::vector<uint8_t> a(100, 0xaa);
  const std::vector<uint8_t> b(64, 0xbb);
  EXPECT_TRUE(view.TxPush(a));
  EXPECT_TRUE(view.TxPush(b));
  EXPECT_TRUE(view.TxFull());
  EXPECT_FALSE(view.TxPush(a));
  EXPECT_EQ(view.TxPending(), 2u);
  std::span<const uint8_t> slot0 = view.ReadTxSlot(0);
  ASSERT_EQ(slot0.size(), a.size());
  EXPECT_EQ(slot0[0], 0xaa);
  // Consumer catches up; the ring accepts more and wraps the index.
  view.set_tx_tail(2);
  EXPECT_TRUE(view.TxPush(b));
  EXPECT_EQ(view.ReadTxSlot(2).size(), b.size());
}

TEST(PacketRingViewTest, UntrustedSlotLengthIsClamped) {
  std::vector<uint8_t> region(PacketRingView::BytesNeeded(2, 2));
  PacketRingView view = *PacketRingView::Format(region, 2, 2);
  view.WriteRxSlot(0, std::vector<uint8_t>(32, 1));
  // Scribble a hostile length directly into the slot header.
  const size_t slot0 = 2 * PacketRingView::kHeaderBytes;
  region[slot0] = 0xff;
  region[slot0 + 1] = 0xff;
  region[slot0 + 2] = 0xff;
  region[slot0 + 3] = 0xff;
  EXPECT_LE(view.ReadRxSlot(0).size(), PacketRingView::kSlotDataBytes);
}

// --- Kernel semantics (one machine, host-injected frames) ---

class PktRingKernelTest : public ::testing::Test {
 protected:
  static constexpr uint16_t kPort = 200;

  PktRingKernelTest()
      : machine_(hw::Machine::Config{.phys_pages = 256, .name = "pr"}),
        kernel_(machine_),
        nic_(machine_, 0xb) {
    wire_.Attach(&nic_);  // Transmit needs a cable, even with no peer.
    kernel_.AttachNic(&nic_);
  }

  std::vector<uint8_t> Frame(uint8_t tag, uint16_t port = kPort) {
    const std::vector<uint8_t> payload = {tag, 0, 0, 0};
    return net::BuildUdpFrame(0xb, 0xa, 1, 2, 100, port, payload);
  }

  // Allocates `pages` caller-owned contiguous frames starting at `first`
  // and returns the first page's capability.
  cap::Capability AllocRegion(hw::PageId first, uint32_t pages) {
    cap::Capability cap0;
    for (uint32_t i = 0; i < pages; ++i) {
      Result<aegis::PageGrant> grant = kernel_.SysAllocPage(first + i);
      EXPECT_TRUE(grant.ok());
      if (i == 0 && grant.ok()) {
        cap0 = grant->cap;
      }
    }
    return cap0;
  }

  hw::Machine machine_;
  Aegis kernel_;
  hw::Wire wire_;
  hw::Nic nic_;
};

TEST_F(PktRingKernelTest, DepositDrainAndStats) {
  EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    const cap::Capability cap0 = AllocRegion(10, 3);
    PacketRingSpec rspec{.first_page = 10, .pages = 3, .rx_slots = 4, .tx_slots = 2};
    ASSERT_EQ(kernel_.SysBindPacketRing(*id, rspec, cap0), Status::kOk);

    for (uint8_t tag = 0; tag < 3; ++tag) {
      nic_.InjectRx(Frame(tag));
    }
    kernel_.SysNull();  // Charge boundary: the rx interrupt drains the NIC.

    PacketRingView view =
        *PacketRingView::Attach(machine_.mem().RangeSpan(10, 3), 4, 2);
    EXPECT_EQ(view.RxPending(), 3u);
    for (uint8_t tag = 0; tag < 3; ++tag) {
      net::UdpView udp;
      ASSERT_TRUE(net::ParseUdpFrame(view.RxFront(), &udp));
      EXPECT_EQ(udp.payload[0], tag);  // In order, parsed in place.
      view.RxPop();
    }
    Result<PacketStats> stats = kernel_.SysPacketStats(*id);
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE(stats->ring_bound);
    EXPECT_EQ(stats->delivered, 3u);
    EXPECT_EQ(stats->ring_drops, 0u);
    EXPECT_EQ(stats->queued, 0u);
    EXPECT_EQ(stats->rx_pending, 0u);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(PktRingKernelTest, RingFullDropsAreCounted) {
  EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    const cap::Capability cap0 = AllocRegion(10, 3);
    PacketRingSpec rspec{.first_page = 10, .pages = 3, .rx_slots = 4, .tx_slots = 2};
    ASSERT_EQ(kernel_.SysBindPacketRing(*id, rspec, cap0), Status::kOk);
    for (uint8_t tag = 0; tag < 7; ++tag) {
      nic_.InjectRx(Frame(tag));
    }
    kernel_.SysNull();
    Result<PacketStats> stats = kernel_.SysPacketStats(*id);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->delivered, 4u);  // Ring capacity.
    EXPECT_EQ(stats->ring_drops, 3u);
    EXPECT_EQ(stats->rx_pending, 4u);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(PktRingKernelTest, ShedWatermarkDropsAboveOccupancy) {
  EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    const cap::Capability cap0 = AllocRegion(10, 3);
    // Library-installed shed policy: stop depositing at 2 pending even
    // though the ring holds 4 — the library told the kernel where its
    // queue stops being useful.
    PacketRingSpec rspec{.first_page = 10, .pages = 3, .rx_slots = 4,
                         .tx_slots = 2, .shed_watermark = 2};
    ASSERT_EQ(kernel_.SysBindPacketRing(*id, rspec, cap0), Status::kOk);
    for (uint8_t tag = 0; tag < 7; ++tag) {
      nic_.InjectRx(Frame(tag));
    }
    kernel_.SysNull();
    Result<PacketStats> stats = kernel_.SysPacketStats(*id);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->delivered, 2u);   // Watermark, not ring capacity.
    EXPECT_EQ(stats->shed, 5u);        // Shed, not ring-full drops.
    EXPECT_EQ(stats->ring_drops, 0u);  // Never reached capacity.
    EXPECT_EQ(stats->rx_pending, 2u);
    EXPECT_EQ(stats->rx_occupancy_hwm, 2u);

    // Drain one slot: occupancy 1 < watermark, deposits resume — the
    // policy is a live occupancy check, not a latch.
    PacketRingView view =
        *PacketRingView::Attach(machine_.mem().RangeSpan(10, 3), 4, 2);
    view.RxPop();
    nic_.InjectRx(Frame(9));
    kernel_.SysNull();
    stats = kernel_.SysPacketStats(*id);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->delivered, 3u);
    EXPECT_EQ(stats->shed, 5u);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(PktRingKernelTest, ShedDisarmedKeepsRingFullSemantics) {
  EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    const cap::Capability cap0 = AllocRegion(10, 3);
    PacketRingSpec rspec{.first_page = 10, .pages = 3, .rx_slots = 4, .tx_slots = 2};
    ASSERT_EQ(kernel_.SysBindPacketRing(*id, rspec, cap0), Status::kOk);
    for (uint8_t tag = 0; tag < 7; ++tag) {
      nic_.InjectRx(Frame(tag));
    }
    kernel_.SysNull();
    Result<PacketStats> stats = kernel_.SysPacketStats(*id);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->shed, 0u);  // Watermark 0: branch never taken.
    EXPECT_EQ(stats->delivered, 4u);
    EXPECT_EQ(stats->ring_drops, 3u);
    EXPECT_EQ(stats->rx_occupancy_hwm, 4u);  // Bookkeeping still free.
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(PktRingKernelTest, LegacyQueueCapDropsAreCounted) {
  EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    // No ring: flood past the kernel queue cap without ever receiving.
    // Two bursts of 40 with a drain between them keep the 64-slot NIC
    // ring from overflowing first — the drops must be the *kernel
    // queue's*, not the hardware's.
    for (int i = 0; i < 40; ++i) {
      nic_.InjectRx(Frame(static_cast<uint8_t>(i)));
    }
    kernel_.SysNull();  // Charge boundary: the rx interrupt drains the NIC.
    for (int i = 40; i < 80; ++i) {
      nic_.InjectRx(Frame(static_cast<uint8_t>(i)));
    }
    kernel_.SysNull();
    Result<PacketStats> stats = kernel_.SysPacketStats(*id);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->queued, 64u);  // FilterBinding::kMaxQueuedPackets.
    EXPECT_EQ(stats->queue_drops, 16u);
    EXPECT_EQ(stats->queue_pending, 64u);  // Depth is visible, not just drops.
    // The queue still drains in order through the legacy syscall.
    Result<std::vector<uint8_t>> first = kernel_.SysRecvPacket(*id);
    ASSERT_TRUE(first.ok());
    net::UdpView udp;
    ASSERT_TRUE(net::ParseUdpFrame(*first, &udp));
    EXPECT_EQ(udp.payload[0], 0u);
    stats = kernel_.SysPacketStats(*id);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->queue_pending, 63u);  // One drained; the depth tracks it.
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(PktRingKernelTest, BatchedDoorbellsOnlyFireWhenArmed) {
  EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    const cap::Capability cap0 = AllocRegion(10, 4);
    PacketRingSpec rspec{.first_page = 10, .pages = 4, .rx_slots = 8, .tx_slots = 2};
    ASSERT_EQ(kernel_.SysBindPacketRing(*id, rspec, cap0), Status::kOk);
    PacketRingView view =
        *PacketRingView::Attach(machine_.mem().RangeSpan(10, 4), 8, 2);

    // Unarmed (consumer awake, polling): deposits are silent.
    for (uint8_t tag = 0; tag < 3; ++tag) {
      nic_.InjectRx(Frame(tag));
    }
    kernel_.SysNull();
    EXPECT_EQ(kernel_.SysPacketStats(*id)->doorbells, 0u);

    // Armed (consumer about to block): exactly one doorbell for the burst,
    // and the arming is consumed by it.
    view.set_rx_armed(true);
    for (uint8_t tag = 3; tag < 6; ++tag) {
      nic_.InjectRx(Frame(tag));
    }
    kernel_.SysNull();
    Result<PacketStats> stats = kernel_.SysPacketStats(*id);
    EXPECT_EQ(stats->doorbells, 1u);
    EXPECT_EQ(stats->delivered, 6u);
    EXPECT_FALSE(view.rx_armed());
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(PktRingKernelTest, UnbatchedDoorbellPerFrame) {
  EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    const cap::Capability cap0 = AllocRegion(10, 4);
    PacketRingSpec rspec{
        .first_page = 10, .pages = 4, .rx_slots = 8, .tx_slots = 2, .batch_doorbells = false};
    ASSERT_EQ(kernel_.SysBindPacketRing(*id, rspec, cap0), Status::kOk);
    for (uint8_t tag = 0; tag < 3; ++tag) {
      nic_.InjectRx(Frame(tag));
    }
    kernel_.SysNull();
    EXPECT_EQ(kernel_.SysPacketStats(*id)->doorbells, 3u);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(PktRingKernelTest, TxRingTransmitsBatchAndSkipsMalformedSlots) {
  EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    const cap::Capability cap0 = AllocRegion(10, 4);
    PacketRingSpec rspec{.first_page = 10, .pages = 4, .rx_slots = 2, .tx_slots = 8};
    ASSERT_EQ(kernel_.SysBindPacketRing(*id, rspec, cap0), Status::kOk);
    PacketRingView view =
        *PacketRingView::Attach(machine_.mem().RangeSpan(10, 4), 2, 8);

    ASSERT_TRUE(view.TxPush(Frame(1)));
    ASSERT_TRUE(view.TxPush(std::vector<uint8_t>(5, 0xcc)));  // Below Ethernet minimum.
    ASSERT_TRUE(view.TxPush(Frame(2)));
    Result<uint32_t> sent = kernel_.SysTxRing(*id);
    ASSERT_TRUE(sent.ok());
    EXPECT_EQ(*sent, 2u);  // The malformed slot is skipped, not fatal.
    EXPECT_EQ(nic_.frames_transmitted(), 2u);
    Result<PacketStats> stats = kernel_.SysPacketStats(*id);
    EXPECT_EQ(stats->tx_frames, 2u);
    EXPECT_EQ(stats->tx_errors, 1u);
    EXPECT_EQ(view.tx_tail(), 3u);  // Consumer progress published.

    // A hostile producer cursor cannot spin the kernel: one doorbell
    // processes at most one ring's worth of descriptors.
    view.set_tx_head(view.tx_head() + 1000000);
    Result<uint32_t> bounded = kernel_.SysTxRing(*id);
    ASSERT_TRUE(bounded.ok());
    EXPECT_LE(*bounded, 8u);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
}

TEST_F(PktRingKernelTest, PacketSyscallErrorPaths) {
  EnvId env_a = aegis::kNoEnv;
  cap::Capability cap_a;
  dpf::FilterId bound_by_a = 0;
  bool a_ready = false;

  EnvSpec a;
  a.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    bound_by_a = *id;

    // Unbound filter ids.
    EXPECT_EQ(kernel_.SysRecvPacket(999).status(), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysTxRing(999).status(), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysPacketStats(999).status(), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysBindPacketRing(999, PacketRingSpec{10, 3, 4, 2}, cap::Capability{}),
              Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysUnbindPacketRing(999), Status::kErrNotFound);

    // Ring operations on a queue-only binding.
    EXPECT_EQ(kernel_.SysTxRing(bound_by_a).status(), Status::kErrUnsupported);
    EXPECT_EQ(kernel_.SysUnbindPacketRing(bound_by_a), Status::kErrNotFound);

    // Ring bind over pages the caller does not own.
    EXPECT_EQ(kernel_.SysBindPacketRing(bound_by_a, PacketRingSpec{40, 3, 4, 2},
                                        cap::Capability{}),
              Status::kErrAccessDenied);
    // Owned pages but a forged (empty) region capability.
    const cap::Capability cap0 = AllocRegion(10, 3);
    EXPECT_EQ(kernel_.SysBindPacketRing(bound_by_a, PacketRingSpec{10, 3, 4, 2},
                                        cap::Capability{}),
              Status::kErrAccessDenied);
    // Region too small for the requested geometry.
    EXPECT_EQ(kernel_.SysBindPacketRing(bound_by_a, PacketRingSpec{10, 1, 64, 64}, cap0),
              Status::kErrInvalidArgs);
    // A good bind for the foreign-owner checks below.
    ASSERT_EQ(kernel_.SysBindPacketRing(bound_by_a, PacketRingSpec{10, 3, 4, 2}, cap0),
              Status::kOk);

    a_ready = true;
    kernel_.SysBlock();  // B pokes at our binding, then wakes us.

    // Stale id: after unbind, every packet syscall reports not-found.
    EXPECT_EQ(kernel_.SysUnbindFilter(bound_by_a), Status::kOk);
    EXPECT_EQ(kernel_.SysRecvPacket(bound_by_a).status(), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysTxRing(bound_by_a).status(), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysPacketStats(bound_by_a).status(), Status::kErrNotFound);
  };
  Result<EnvGrant> ga = kernel_.CreateEnv(std::move(a));
  ASSERT_TRUE(ga.ok());
  env_a = ga->env;
  cap_a = ga->cap;

  EnvSpec b;
  b.entry = [&] {
    while (!a_ready) {
      kernel_.SysYield(env_a);
    }
    // Foreign binding: reads, stats, and ring operations are all denied.
    EXPECT_EQ(kernel_.SysRecvPacket(bound_by_a).status(), Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysTxRing(bound_by_a).status(), Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysPacketStats(bound_by_a).status(), Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysUnbindPacketRing(bound_by_a), Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysUnbindFilter(bound_by_a), Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysWake(env_a, cap_a), Status::kOk);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(b)).ok());
  kernel_.Run();
  EXPECT_TRUE(kernel_.AuditInvariants().ok());
}

TEST_F(PktRingKernelTest, KillMidDrainIsCrashSafe) {
  EnvId consumer_id = aegis::kNoEnv;
  dpf::FilterId filter = 0;
  bool mid_drain = false;

  EnvSpec consumer;
  consumer.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    filter = *id;
    const cap::Capability cap0 = AllocRegion(10, 3);
    ASSERT_EQ(kernel_.SysBindPacketRing(filter, PacketRingSpec{10, 3, 4, 2}, cap0),
              Status::kOk);
    for (uint8_t tag = 0; tag < 4; ++tag) {
      nic_.InjectRx(Frame(tag));
    }
    kernel_.SysNull();
    PacketRingView view =
        *PacketRingView::Attach(machine_.mem().RangeSpan(10, 3), 4, 2);
    ASSERT_EQ(view.RxPending(), 4u);
    view.RxPop();  // One frame consumed; three still in the ring.
    mid_drain = true;
    kernel_.SysYield();  // The killer runs now; we never come back.
    ADD_FAILURE() << "killed environment resumed";
  };
  Result<EnvGrant> gc = kernel_.CreateEnv(std::move(consumer));
  ASSERT_TRUE(gc.ok());
  consumer_id = gc->env;

  EnvSpec killer;
  killer.entry = [&] {
    while (!mid_drain) {
      kernel_.SysYield(consumer_id);
    }
    ASSERT_EQ(kernel_.KillEnv(consumer_id), Status::kOk);
    EXPECT_TRUE(kernel_.AuditInvariants().ok());
    // A late frame for the dead binding is dropped at the classifier, not
    // deposited into reclaimed (reallocatable) memory.
    nic_.InjectRx(Frame(9));
    kernel_.SysNull();
    EXPECT_TRUE(kernel_.AuditInvariants().ok());
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(killer)).ok());
  kernel_.Run();

  // Post-mortem counters survive the teardown; the ring binding does not.
  const PacketStats stats = kernel_.packet_stats(filter);
  EXPECT_FALSE(stats.ring_bound);
  EXPECT_EQ(stats.delivered, 4u);
  EXPECT_TRUE(kernel_.AuditInvariants().ok());
}

TEST_F(PktRingKernelTest, DeallocRingPageMidTrafficSeversRing) {
  EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    const cap::Capability cap0 = AllocRegion(10, 3);
    PacketRingSpec rspec{.first_page = 10, .pages = 3, .rx_slots = 4, .tx_slots = 2};
    ASSERT_EQ(kernel_.SysBindPacketRing(*id, rspec, cap0), Status::kOk);
    nic_.InjectRx(Frame(0));
    kernel_.SysNull();
    EXPECT_TRUE(kernel_.SysPacketStats(*id)->ring_bound);

    // The owner frees a ring page mid-traffic. The kernel must sever the
    // ring with it — a stale binding would keep the demux depositing into
    // the reclaimed (reallocatable) frame at interrupt level.
    ASSERT_EQ(kernel_.SysDeallocPage(10, cap0), Status::kOk);
    EXPECT_TRUE(kernel_.AuditInvariants().ok());

    // Later frames fall back to the legacy kernel queue, untouched by the
    // freed frames, and stats no longer dereference the dead ring.
    nic_.InjectRx(Frame(1));
    kernel_.SysNull();
    Result<PacketStats> stats = kernel_.SysPacketStats(*id);
    ASSERT_TRUE(stats.ok());
    EXPECT_FALSE(stats->ring_bound);
    EXPECT_EQ(stats->delivered, 1u);  // The pre-dealloc ring deposit.
    EXPECT_EQ(stats->queued, 1u);     // The post-dealloc fallback.
    Result<std::vector<uint8_t>> frame = kernel_.SysRecvPacket(*id);
    ASSERT_TRUE(frame.ok());
    net::UdpView udp;
    ASSERT_TRUE(net::ParseUdpFrame(*frame, &udp));
    EXPECT_EQ(udp.payload[0], 1u);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(spec)).ok());
  kernel_.Run();
  EXPECT_TRUE(kernel_.AuditInvariants().ok());
  EXPECT_EQ(kernel_.audit_failures(), 0u);
}

TEST_F(PktRingKernelTest, RepossessedRingPageSeversRingMidTraffic) {
  EnvId owner_id = aegis::kNoEnv;

  EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    const cap::Capability cap0 = AllocRegion(10, 3);
    PacketRingSpec rspec{.first_page = 10, .pages = 3, .rx_slots = 4, .tx_slots = 2};
    ASSERT_EQ(kernel_.SysBindPacketRing(*id, rspec, cap0), Status::kOk);
    nic_.InjectRx(Frame(0));
    kernel_.SysNull();

    // Abort protocol: with no revoke handler installed, the kernel forcibly
    // repossesses the victim's lowest frame — a ring page. The binding must
    // not outlive it.
    ASSERT_EQ(kernel_.RevokePages(owner_id, 1), Status::kOk);
    EXPECT_TRUE(kernel_.AuditInvariants().ok());
    const std::vector<hw::PageId> taken = kernel_.SysReadRepossessed();
    ASSERT_EQ(taken.size(), 1u);
    EXPECT_EQ(taken[0], 10u);

    nic_.InjectRx(Frame(1));
    kernel_.SysNull();
    Result<PacketStats> stats = kernel_.SysPacketStats(*id);
    ASSERT_TRUE(stats.ok());
    EXPECT_FALSE(stats->ring_bound);
    EXPECT_EQ(stats->delivered, 1u);
    EXPECT_EQ(stats->queued, 1u);  // Delivery reverted to the legacy queue.
  };
  Result<EnvGrant> grant = kernel_.CreateEnv(std::move(spec));
  ASSERT_TRUE(grant.ok());
  owner_id = grant->env;
  kernel_.Run();
  EXPECT_TRUE(kernel_.AuditInvariants().ok());
  EXPECT_EQ(kernel_.audit_failures(), 0u);
}

TEST_F(PktRingKernelTest, RecvAfterOwnerKilledReportsNotFound) {
  EnvId owner_id = aegis::kNoEnv;
  dpf::FilterId filter = 0;
  bool owner_ready = false;

  EnvSpec owner;
  owner.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel_.SysBindFilter(std::move(fspec), cap::Capability{});
    ASSERT_TRUE(id.ok());
    filter = *id;
    owner_ready = true;
    kernel_.SysBlock();
    ADD_FAILURE() << "killed environment resumed";
  };
  Result<EnvGrant> go = kernel_.CreateEnv(std::move(owner));
  ASSERT_TRUE(go.ok());
  owner_id = go->env;

  EnvSpec other;
  other.entry = [&] {
    while (!owner_ready) {
      kernel_.SysYield(owner_id);
    }
    ASSERT_EQ(kernel_.KillEnv(owner_id), Status::kOk);
    EXPECT_EQ(kernel_.SysRecvPacket(filter).status(), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysPacketStats(filter).status(), Status::kErrNotFound);
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(other)).ok());
  kernel_.Run();
  EXPECT_TRUE(kernel_.AuditInvariants().ok());
}

// --- ExOS ring sockets over the wire (two machines) ---

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

class PktRingExosTest : public ::testing::Test {
 protected:
  PktRingExosTest()
      : machine_a_(hw::Machine::Config{.phys_pages = 256, .name = "ra"}, &world_),
        machine_b_(hw::Machine::Config{.phys_pages = 256, .name = "rb"}, &world_),
        kernel_a_(machine_a_),
        kernel_b_(machine_b_),
        nic_a_(machine_a_, 0xa),
        nic_b_(machine_b_, 0xb) {
    wire_.Attach(&nic_a_);
    wire_.Attach(&nic_b_);
    kernel_a_.AttachNic(&nic_a_);
    kernel_b_.AttachNic(&nic_b_);
  }

  exos::NetIface IfaceA() { return exos::NetIface{0xa, 1, Resolve}; }
  exos::NetIface IfaceB() { return exos::NetIface{0xb, 2, Resolve}; }

  void RunWorld() {
    world_.Run({[&] { kernel_a_.Run(); }, [&] { kernel_b_.Run(); }});
  }

  hw::World world_;
  hw::Machine machine_a_;
  hw::Machine machine_b_;
  Aegis kernel_a_;
  Aegis kernel_b_;
  hw::Wire wire_;
  hw::Nic nic_a_;
  hw::Nic nic_b_;
};

TEST_F(PktRingExosTest, UdpPingPongRingPath) {
  uint32_t final_counter = 0;
  uint64_t server_delivered = 0;
  bool server_done = false;
  Process client(kernel_a_, [&](Process& p) {
    exos::UdpSocket socket(p, IfaceA());
    ASSERT_EQ(socket.BindRing(100), Status::kOk);
    EXPECT_TRUE(socket.ring_bound());
    p.kernel().SysSleep(hw::kClockHz / 100);  // Let the server bind.
    std::vector<uint8_t> counter = {0, 0, 0, 0};
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(socket.SendTo(2, 200, counter), Status::kOk);
      Result<exos::Datagram> reply = socket.Recv();
      ASSERT_TRUE(reply.ok());
      ASSERT_EQ(reply->payload.size(), 4u);
      counter = reply->payload;
    }
    final_counter = net::GetBe32(counter, 0);
    EXPECT_EQ(socket.Close(), Status::kOk);
  });
  Process server(kernel_b_, [&](Process& p) {
    exos::UdpSocket socket(p, IfaceB());
    ASSERT_EQ(socket.BindRing(200), Status::kOk);
    for (int i = 0; i < 8; ++i) {
      Result<exos::Datagram> request = socket.Recv();
      ASSERT_TRUE(request.ok());
      std::vector<uint8_t> bumped(4);
      net::PutBe32(bumped, 0, net::GetBe32(request->payload, 0) + 1);
      ASSERT_EQ(socket.SendTo(request->src_ip, request->src_port, bumped), Status::kOk);
    }
    Result<PacketStats> stats = p.kernel().SysPacketStats(*socket.filter_id());
    ASSERT_TRUE(stats.ok());
    server_delivered = stats->delivered;
    EXPECT_EQ(stats->tx_frames, 8u);
    EXPECT_EQ(socket.Close(), Status::kOk);
    server_done = true;
  });
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(server.ok());
  RunWorld();
  EXPECT_EQ(final_counter, 8u);
  EXPECT_TRUE(server_done);
  EXPECT_EQ(server_delivered, 8u);  // Every request came through the ring.
  EXPECT_TRUE(kernel_a_.AuditInvariants().ok());
  EXPECT_TRUE(kernel_b_.AuditInvariants().ok());
}

TEST_F(PktRingExosTest, QueueToBatchesFramesIntoOneDoorbell) {
  std::vector<uint8_t> seen;
  Process receiver(kernel_b_, [&](Process& p) {
    exos::UdpSocket socket(p, IfaceB());
    ASSERT_EQ(socket.BindRing(200), Status::kOk);
    for (int i = 0; i < 5; ++i) {
      Result<exos::Datagram> dgram = socket.Recv();
      ASSERT_TRUE(dgram.ok());
      seen.push_back(dgram->payload[0]);
    }
    EXPECT_EQ(socket.Close(), Status::kOk);
  });
  uint64_t tx_before = 0;
  uint64_t tx_after = 0;
  Process sender(kernel_a_, [&](Process& p) {
    exos::UdpSocket socket(p, IfaceA());
    ASSERT_EQ(socket.BindRing(100), Status::kOk);
    p.kernel().SysSleep(hw::kClockHz / 100);
    tx_before = nic_a_.frames_transmitted();
    for (uint8_t i = 0; i < 5; ++i) {
      const std::vector<uint8_t> payload = {i};
      ASSERT_EQ(socket.QueueTo(2, 200, payload), Status::kOk);
    }
    EXPECT_EQ(nic_a_.frames_transmitted(), tx_before);  // Nothing sent yet.
    Result<uint32_t> sent = socket.FlushTx();
    ASSERT_TRUE(sent.ok());
    EXPECT_EQ(*sent, 5u);  // One doorbell drained the whole batch.
    tx_after = nic_a_.frames_transmitted();
    EXPECT_EQ(socket.Close(), Status::kOk);
  });
  ASSERT_TRUE(receiver.ok());
  ASSERT_TRUE(sender.ok());
  RunWorld();
  EXPECT_EQ(tx_after - tx_before, 5u);
  EXPECT_EQ(seen, (std::vector<uint8_t>{0, 1, 2, 3, 4}));
}

TEST_F(PktRingExosTest, RdpOverRingsRecoversFromLoss) {
  wire_.SetLossRate(100);
  constexpr int kMessages = 12;
  std::vector<std::vector<uint8_t>> received;
  uint64_t retransmissions = 0;
  bool sender_ok = false;
  Process sender(kernel_a_, [&](Process& p) {
    exos::UdpSocket socket(p, IfaceA());
    ASSERT_EQ(socket.BindRing(100), Status::kOk);
    exos::RdpEndpoint rdp(p, socket, exos::RdpEndpoint::Config{.peer_ip = 2, .peer_port = 200});
    p.kernel().SysSleep(hw::kClockHz / 100);
    for (int i = 0; i < kMessages; ++i) {
      std::vector<uint8_t> payload(1 + (i % 16));
      for (size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<uint8_t>(i + j);
      }
      ASSERT_EQ(rdp.Send(payload), Status::kOk);
    }
    retransmissions = rdp.retransmissions();
    sender_ok = true;
  });
  Process receiver(kernel_b_, [&](Process& p) {
    exos::UdpSocket socket(p, IfaceB());
    ASSERT_EQ(socket.BindRing(200), Status::kOk);
    exos::RdpEndpoint rdp(p, socket, exos::RdpEndpoint::Config{.peer_ip = 1, .peer_port = 100});
    for (int i = 0; i < kMessages; ++i) {
      Result<std::vector<uint8_t>> msg = rdp.Recv();
      ASSERT_TRUE(msg.ok());
      received.push_back(*msg);
    }
    // Grace period: re-ACK retransmissions until the sender goes quiet
    // (PumpAcks batches those ACKs through the TX ring).
    for (int round = 0; round < 16; ++round) {
      p.kernel().SysSleep(hw::kClockHz / 500);
      rdp.PumpAcks();
    }
  });
  ASSERT_TRUE(sender.ok());
  ASSERT_TRUE(receiver.ok());
  RunWorld();
  EXPECT_TRUE(sender_ok);
  ASSERT_EQ(received.size(), static_cast<size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(received[i].size(), static_cast<size_t>(1 + (i % 16))) << "message " << i;
    for (size_t j = 0; j < received[i].size(); ++j) {
      ASSERT_EQ(received[i][j], static_cast<uint8_t>(i + j)) << "message " << i;
    }
  }
  EXPECT_GT(wire_.frames_lost(), 0u);  // The loss injection really fired.
  (void)retransmissions;
}

}  // namespace
}  // namespace xok
