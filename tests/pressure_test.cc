// Resource pressure: deterministic revocation campaigns (PressurePlan)
// against live environments, the guaranteed-reserve floor that keeps
// pressure from starving a victim, the bounded repossession vector, the
// DMA-cancel hazard when a repossessed frame is an in-flight disk target,
// SysKillEnv's capability check, and the libOS RevocationClient repairing
// every abstraction the campaigns break.
#include "src/core/pressure.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/fs.h"
#include "src/exos/process.h"
#include "src/exos/revocation.h"
#include "src/exos/udp.h"
#include "src/hw/disk.h"
#include "src/hw/nic.h"

namespace xok {
namespace {

using aegis::Aegis;
using aegis::EnvId;
using aegis::EnvSpec;
using aegis::kNoEnv;
using aegis::PressurePlan;

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

class PressureTest : public ::testing::Test {
 protected:
  PressureTest()
      : machine_(hw::Machine::Config{.phys_pages = 256, .name = "pressure"}),
        kernel_(machine_),
        disk_(machine_, 128),
        nic_(machine_, 0xa) {
    kernel_.AttachDisk(&disk_);
    kernel_.AttachNic(&nic_);
    kernel_.set_audit_on_fault(true);
  }

  hw::Machine machine_;
  Aegis kernel_;
  hw::Disk disk_;
  hw::Nic nic_;
};

// --- The reserve floor bounds page pressure ---

TEST_F(PressureTest, OneShotPageRevocationStopsAtTheReserveFloor) {
  bool done = false;
  EnvSpec victim;  // No revoke handler: every applied page is repossessed.
  victim.entry = [&] {
    std::vector<aegis::PageGrant> pages;
    for (int i = 0; i < 10; ++i) {
      Result<aegis::PageGrant> page = kernel_.SysAllocPage();
      ASSERT_TRUE(page.ok());
      pages.push_back(*page);
    }
    while (kernel_.pressure_stats()->pages_requested == 0) {
      kernel_.SysSleep(5'000);
    }
    // The plan asked for 20 but the floor (4) capped it at our headroom.
    const std::vector<hw::PageId> taken = kernel_.SysReadRepossessed();
    EXPECT_EQ(taken.size(), 6u);
    Result<aegis::EnvStats> stats = kernel_.SysEnvStats(kernel_.SysSelf());
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->pages_held, 4u);
    done = true;
  };
  Result<aegis::EnvGrant> grant = kernel_.CreateEnv(std::move(victim));
  ASSERT_TRUE(grant.ok());

  PressurePlan plan;
  plan.floor.pages = 4;
  plan.RevokePagesAt(200'000, grant->env, 20);
  kernel_.InstallPressurePlan(plan);
  kernel_.Run();

  EXPECT_TRUE(done);
  const aegis::PressureStats* stats = kernel_.pressure_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->pages_requested, 6u);
  EXPECT_EQ(stats->floor_clamps, 1u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// --- Slice revocation keeps the per-CPU ledger consistent ---

TEST_F(PressureTest, SliceRevocationKeepsTheFloorAndTheLedger) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 64, .name = "slices", .cpus = 2});
  Aegis kernel(machine);
  kernel.set_audit_on_fault(true);
  bool done = false;
  EnvSpec victim;
  victim.slices = 2;
  victim.entry = [&] {
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(kernel.SysAllocSlice(), Status::kOk);
    }
    Result<aegis::EnvStats> before = kernel.SysEnvStats(kernel.SysSelf());
    ASSERT_TRUE(before.ok());
    ASSERT_EQ(before->slice_slots, 6u);
    while (kernel.pressure_stats()->slices_revoked == 0) {
      kernel.SysSleep(5'000);
    }
    // Degraded to the floor — but still scheduled (this code is running).
    Result<aegis::EnvStats> after = kernel.SysEnvStats(kernel.SysSelf());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->slice_slots, 1u);
    EXPECT_EQ(after->counters.slices_revoked, 5u);
    done = true;
  };
  Result<aegis::EnvGrant> grant = kernel.CreateEnv(std::move(victim));
  ASSERT_TRUE(grant.ok());

  PressurePlan plan;
  plan.floor.slices = 1;
  plan.RevokeSlicesAt(300'000, grant->env, 100);
  kernel.InstallPressurePlan(plan);
  kernel.Run();

  EXPECT_TRUE(done);
  EXPECT_EQ(kernel.pressure_stats()->slices_revoked, 5u);
  EXPECT_EQ(kernel.pressure_stats()->floor_clamps, 1u);
  aegis::Aegis::AuditReport report = kernel.AuditInvariants();
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(kernel.audit_failures(), 0u) << kernel.first_audit_failure();
}

// --- Extent reclaim voids capabilities but honors the floor ---

TEST_F(PressureTest, ExtentReclaimVoidsCapabilitiesAndKeepsTheFloor) {
  bool done = false;
  EnvSpec victim;
  victim.entry = [&] {
    std::vector<Aegis::DiskExtentGrant> extents;
    for (int i = 0; i < 3; ++i) {
      Result<Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
      ASSERT_TRUE(extent.ok());
      extents.push_back(*extent);
    }
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    while (kernel_.pressure_stats()->extents_reclaimed < 2) {
      kernel_.SysSleep(5'000);
    }
    // The first two extents are dead (epoch bump voided the caps) ...
    EXPECT_EQ(kernel_.SysDiskRead(extents[0].extent, extents[0].cap, 0, frame->page),
              Status::kErrOutOfRange);
    EXPECT_EQ(kernel_.SysDiskRead(extents[1].extent, extents[1].cap, 0, frame->page),
              Status::kErrOutOfRange);
    // ... but the floor kept one extent alive and fully usable.
    EXPECT_EQ(kernel_.SysDiskWrite(extents[2].extent, extents[2].cap, 0, frame->page),
              Status::kOk);
    EXPECT_EQ(kernel_.SysDiskRead(extents[2].extent, extents[2].cap, 0, frame->page),
              Status::kOk);
    done = true;
  };
  Result<aegis::EnvGrant> grant = kernel_.CreateEnv(std::move(victim));
  ASSERT_TRUE(grant.ok());

  PressurePlan plan;
  plan.floor.extents = 1;
  plan.ReclaimExtentsAt(200'000, grant->env, 10);
  kernel_.InstallPressurePlan(plan);
  kernel_.Run();

  EXPECT_TRUE(done);
  EXPECT_EQ(kernel_.pressure_stats()->extents_reclaimed, 2u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// --- Bounded repossession vector (satellite: overflow accounting) ---

TEST_F(PressureTest, RepossessionVectorIsBoundedAndCountsOverflow) {
  constexpr uint32_t kPages = aegis::Env::kMaxRepossessed + 20;
  EnvId victim_id = kNoEnv;
  bool victim_ready = false;
  bool revoked = false;
  bool done = false;
  EnvSpec victim;
  victim.handlers.revoke = [](uint32_t) {};  // Refuse: everything reposssesed.
  victim.entry = [&] {
    for (uint32_t i = 0; i < kPages; ++i) {
      ASSERT_TRUE(kernel_.SysAllocPage().ok());
    }
    victim_ready = true;
    while (!revoked) {
      kernel_.SysYield();
    }
    // Only the first kMaxRepossessed notifications were retained ...
    const std::vector<hw::PageId> taken = kernel_.SysReadRepossessed();
    EXPECT_EQ(taken.size(), static_cast<size_t>(aegis::Env::kMaxRepossessed));
    done = true;
  };
  EnvSpec aggressor;
  aggressor.entry = [&] {
    while (!victim_ready) {
      kernel_.SysYield();
    }
    const uint32_t free_before = kernel_.free_pages();
    ASSERT_EQ(kernel_.RevokePages(victim_id, kPages), Status::kOk);
    // ... but every frame came back regardless, and the loss is visible.
    EXPECT_EQ(kernel_.free_pages(), free_before + kPages);
    Result<aegis::EnvStats> stats = kernel_.SysEnvStats(victim_id);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->pages_held, 0u);
    EXPECT_EQ(stats->counters.repossess_overflow, 20u);
    revoked = true;
  };
  Result<aegis::EnvGrant> grant = kernel_.CreateEnv(std::move(victim));
  ASSERT_TRUE(grant.ok());
  victim_id = grant->env;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(aggressor)).ok());
  kernel_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// --- Repossessing an in-flight DMA target (satellite: latent hazard) ---

TEST_F(PressureTest, RepossessingDmaTargetCancelsTheTransfer) {
  EnvId victim_id = kNoEnv;
  bool victim_submitting = false;
  bool victim_repaired = false;
  bool aggressor_done = false;
  hw::PageId dma_frame = 0;

  EnvSpec victim;  // No revoke handler: the frame is taken by force.
  victim.entry = [&] {
    Result<Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    dma_frame = frame->page;
    victim_submitting = true;
    // Blocks awaiting the completion interrupt; the revocation lands
    // mid-flight, repossesses the DMA target, and must cancel the DMA —
    // the transfer fails rather than scribbling on the frame's next owner.
    EXPECT_EQ(kernel_.SysDiskWrite(extent->extent, extent->cap, 0, frame->page),
              Status::kErrIo);
    const std::vector<hw::PageId> taken = kernel_.SysReadRepossessed();
    ASSERT_EQ(taken.size(), 1u);
    EXPECT_EQ(taken[0], dma_frame);
    victim_repaired = true;
  };
  EnvSpec aggressor;
  aggressor.entry = [&] {
    while (!victim_submitting || disk_.inflight_requests() == 0) {
      kernel_.SysYield();
    }
    ASSERT_EQ(kernel_.RevokePages(victim_id, 1), Status::kOk);
    // The in-flight request died with the binding.
    EXPECT_EQ(disk_.inflight_requests(), 0u);
    // Grab the repossessed frame and give it a new life; sleep well past
    // the disk latency so a surviving (buggy) completion would land now.
    Result<aegis::PageGrant> next = kernel_.SysAllocPage(dma_frame);
    ASSERT_TRUE(next.ok());
    std::span<uint8_t> bytes = machine_.mem().PageSpan(next->page);
    for (size_t i = 0; i < 64; ++i) {
      bytes[i] = static_cast<uint8_t>(0xc0 + i);
    }
    kernel_.SysSleep(hw::kClockHz / 50);
    for (size_t i = 0; i < 64; ++i) {
      ASSERT_EQ(bytes[i], static_cast<uint8_t>(0xc0 + i)) << "byte " << i;
    }
    Aegis::AuditReport report = kernel_.AuditInvariants();
    EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
    aggressor_done = true;
  };
  Result<aegis::EnvGrant> grant = kernel_.CreateEnv(std::move(victim));
  ASSERT_TRUE(grant.ok());
  victim_id = grant->env;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(aggressor)).ok());
  kernel_.Run();
  EXPECT_TRUE(victim_repaired);
  EXPECT_TRUE(aggressor_done);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// --- SysKillEnv is capability-gated ---

TEST_F(PressureTest, SysKillEnvRequiresARevokeCapability) {
  EnvId target_id = kNoEnv;
  cap::Capability target_cap;
  bool killer_done = false;
  EnvSpec target;
  target.entry = [&] {
    for (;;) {
      kernel_.SysSleep(50'000);  // Lives until reaped.
    }
  };
  EnvSpec killer;
  killer.entry = [&] {
    cap::Capability forged = target_cap;
    forged.mac ^= 0x1995;
    EXPECT_EQ(kernel_.SysKillEnv(target_id, forged), Status::kErrAccessDenied);
    EXPECT_TRUE(kernel_.SysEnvAlive(target_id));
    EXPECT_EQ(kernel_.SysKillEnv(target_id, target_cap), Status::kOk);
    EXPECT_FALSE(kernel_.SysEnvAlive(target_id));
    EXPECT_EQ(kernel_.SysKillEnv(99, target_cap), Status::kErrNotFound);
    Aegis::AuditReport report = kernel_.AuditInvariants();
    EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
    killer_done = true;
  };
  Result<aegis::EnvGrant> grant = kernel_.CreateEnv(std::move(target));
  ASSERT_TRUE(grant.ok());
  target_id = grant->env;
  target_cap = grant->cap;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(killer)).ok());
  kernel_.Run();
  EXPECT_TRUE(killer_done);
  EXPECT_EQ(kernel_.envs_killed(), 1u);
}

// --- Storms pick seeded victims and drain everyone to the floor ---

TEST_F(PressureTest, StormDrainsEveryVictimExactlyToTheFloor) {
  constexpr uint64_t kStormEnd = 900'000;
  int done = 0;
  std::vector<EnvId> holders;
  for (int e = 0; e < 2; ++e) {
    EnvSpec holder;  // No handler: storm pressure lands as repossession.
    holder.entry = [&] {
      for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(kernel_.SysAllocPage().ok());
      }
      while (kernel_.SysGetCycles() < kStormEnd + 100'000) {
        kernel_.SysSleep(20'000);
      }
      (void)kernel_.SysReadRepossessed();
      Result<aegis::EnvStats> stats = kernel_.SysEnvStats(kernel_.SysSelf());
      ASSERT_TRUE(stats.ok());
      EXPECT_EQ(stats->pages_held, 4u);  // Degraded exactly to the floor.
      ++done;
    };
    Result<aegis::EnvGrant> grant = kernel_.CreateEnv(std::move(holder));
    ASSERT_TRUE(grant.ok());
    holders.push_back(grant->env);
  }

  PressurePlan plan;
  plan.seed = 7;
  plan.floor.pages = 4;
  plan.Storm(/*start=*/100'000, /*end=*/kStormEnd, /*period=*/100'000, /*pages=*/4);
  kernel_.InstallPressurePlan(plan);
  kernel_.Run();

  EXPECT_EQ(done, 2);
  const aegis::PressureStats* stats = kernel_.pressure_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->bursts, 4u);
  // 2 envs x 8 pages of headroom: the storm took all of it, then clamped.
  EXPECT_EQ(stats->pages_requested, 16u);
  EXPECT_GE(stats->floor_clamps, 1u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// --- RevocationClient: victim-save flush, then repossession repair ---

TEST_F(PressureTest, RevocationClientFlushesDirtyBlocksThenRepairsRepossession) {
  constexpr uint32_t kChunk = 512;
  bool done = false;
  exos::Process worker(kernel_, [&](exos::Process& p) {
    Result<Aegis::DiskExtentGrant> extent = p.kernel().SysAllocDiskExtent(32);
    ASSERT_TRUE(extent.ok());
    Result<std::unique_ptr<exos::LibFs>> fs = exos::LibFs::Format(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<exos::FileHandle> file = (*fs)->Create("data");
    ASSERT_TRUE(file.ok());
    exos::RevocationClient rc(p, {.fs = fs->get()});

    // A few clean-ish VM pages the handler can yield without data loss.
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(machine_.StoreWord(0x900000 + i * hw::kPageBytes, 100 + i), Status::kOk);
    }
    // Three dirty blocks in the cache (no Sync).
    std::vector<uint8_t> chunk(kChunk);
    for (uint32_t b = 0; b < 3; ++b) {
      for (uint32_t i = 0; i < kChunk; ++i) {
        chunk[i] = static_cast<uint8_t>(b * 7 + i);
      }
      ASSERT_EQ((*fs)->Write(*file, b * kChunk, chunk), Status::kOk);
    }
    ASSERT_GT(fs->get()->cache().dirty_remaining(), 0u);

    // Small revocation: the handler cannot touch the dirty frames, so it
    // complies from VM pages and schedules a victim-save flush.
    ASSERT_EQ(kernel_.RevokePages(p.id(), 2), Status::kOk);
    EXPECT_TRUE(kernel_.SysReadRepossessed().empty());  // Fully complied.
    EXPECT_EQ(rc.stats().revocations_seen, 1u);
    // Compliance came from clean cache frames (metadata blocks) first,
    // then VM pages — two pages total, none repossessed.
    EXPECT_EQ(rc.stats().cache_frames_released + rc.stats().pages_released, 2u);
    EXPECT_TRUE(rc.flush_wanted());
    ASSERT_EQ(rc.Poll(), Status::kOk);
    EXPECT_EQ(rc.stats().fs_flushes, 1u);
    EXPECT_EQ(fs->get()->cache().dirty_remaining(), 0u);

    // Oversized revocation: compliance runs out and the abort protocol
    // repossesses the rest (cache frames included). Poll repairs.
    ASSERT_EQ(kernel_.RevokePages(p.id(), 30), Status::kOk);
    ASSERT_EQ(rc.Poll(), Status::kOk);
    EXPECT_GT(rc.stats().pages_repossessed, 0u);
    EXPECT_GT(rc.stats().fs_repairs, 0u);

    // Everything flushed before the storm is still readable: the repaired
    // cache refetches from disk through fresh frames.
    std::vector<uint8_t> back(kChunk);
    for (uint32_t b = 0; b < 3; ++b) {
      Result<uint32_t> read = (*fs)->Read(*file, b * kChunk, back);
      ASSERT_TRUE(read.ok()) << "block " << b;
      ASSERT_EQ(*read, kChunk) << "block " << b;
      for (uint32_t i = 0; i < kChunk; ++i) {
        ASSERT_EQ(back[i], static_cast<uint8_t>(b * 7 + i)) << "block " << b << " byte " << i;
      }
    }
    done = true;
  });
  ASSERT_TRUE(worker.ok());
  kernel_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// --- RevocationClient: filter reclaim severs a socket; Poll rebinds ---

TEST_F(PressureTest, RevocationClientRebindsSocketAfterFilterReclaim) {
  bool done = false;
  exos::Process worker(kernel_, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xa, 1, Resolve});
    ASSERT_EQ(socket.Bind(700), Status::kOk);
    exos::RevocationClient rc(p, {.socket = &socket});
    while (rc.stats().socket_repairs == 0) {
      ASSERT_EQ(rc.Poll(), Status::kOk);
      p.kernel().SysSleep(10'000);
    }
    // The new binding is live (stats readable means a live filter).
    ASSERT_TRUE(socket.filter_id().has_value());
    EXPECT_TRUE(p.kernel().SysPacketStats(*socket.filter_id()).ok());
    EXPECT_EQ(socket.repairs(), 1u);
    EXPECT_FALSE(socket.legacy_fallback());  // Was never ring-bound.
    EXPECT_EQ(socket.Close(), Status::kOk);
    done = true;
  });
  ASSERT_TRUE(worker.ok());

  PressurePlan plan;
  plan.ReclaimFiltersAt(200'000, worker.id(), 1);
  kernel_.InstallPressurePlan(plan);
  kernel_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(kernel_.pressure_stats()->filters_reclaimed, 1u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

}  // namespace
}  // namespace xok
