#include "src/dpf/dpf.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/base/rand.h"
#include "src/dpf/mpf.h"
#include "src/dpf/pathfinder.h"
#include "src/dpf/tcpip_filters.h"
#include "src/net/wire.h"

namespace xok::dpf {
namespace {

std::vector<uint8_t> TcpPacket(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                               uint16_t dst_port) {
  std::vector<uint8_t> frame(64, 0);
  net::PutBe16(frame, net::kEthTypeOff, net::kEthTypeIpv4);
  frame[net::kIpVersionIhlOff] = 0x45;
  frame[net::kIpProtoOff] = net::kIpProtoTcp;
  net::PutBe32(frame, net::kIpSrcOff, src_ip);
  net::PutBe32(frame, net::kIpDstOff, dst_ip);
  net::PutBe16(frame, net::kTcpSrcPortOff, src_port);
  net::PutBe16(frame, net::kTcpDstPortOff, dst_port);
  return frame;
}

// The three engines under one test suite: they must agree everywhere.
enum class Kind { kDpf, kMpf, kPathfinder };

std::unique_ptr<ClassifierEngine> Make(Kind kind) {
  switch (kind) {
    case Kind::kDpf:
      return std::make_unique<DpfEngine>();
    case Kind::kMpf:
      return std::make_unique<MpfEngine>();
    case Kind::kPathfinder:
      return std::make_unique<PathfinderEngine>();
  }
  return nullptr;
}

class EngineTest : public ::testing::TestWithParam<Kind> {
 protected:
  EngineTest() : engine_(Make(GetParam())) {}
  std::unique_ptr<ClassifierEngine> engine_;
};

TEST_P(EngineTest, EmptyEngineMatchesNothing) {
  EXPECT_EQ(engine_->Classify(TcpPacket(1, 2, 3, 4)), std::nullopt);
}

TEST_P(EngineTest, SingleFilterMatchesItsConnectionOnly) {
  Result<FilterId> id = engine_->Insert(TcpConnectionFilter(10, 20, 1000, 2000));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine_->Classify(TcpPacket(10, 20, 1000, 2000)), *id);
  EXPECT_EQ(engine_->Classify(TcpPacket(10, 20, 1000, 2001)), std::nullopt);
  EXPECT_EQ(engine_->Classify(TcpPacket(10, 21, 1000, 2000)), std::nullopt);
}

TEST_P(EngineTest, TenFiltersDemultiplexCorrectly) {
  std::vector<FilterId> ids;
  for (uint16_t i = 0; i < 10; ++i) {
    Result<FilterId> id =
        engine_->Insert(TcpConnectionFilter(10, 20, 1000 + i, 2000 + i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (uint16_t i = 0; i < 10; ++i) {
    EXPECT_EQ(engine_->Classify(TcpPacket(10, 20, 1000 + i, 2000 + i)), ids[i]) << i;
  }
  EXPECT_EQ(engine_->Classify(TcpPacket(10, 20, 999, 1999)), std::nullopt);
}

TEST_P(EngineTest, DuplicateFilterRejected) {
  ASSERT_TRUE(engine_->Insert(UdpPortFilter(53)).ok());
  EXPECT_EQ(engine_->Insert(UdpPortFilter(53)).status(), Status::kErrAlreadyExists);
}

TEST_P(EngineTest, RemoveStopsMatching) {
  Result<FilterId> id = engine_->Insert(UdpPortFilter(53));
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(engine_->Remove(*id), Status::kOk);
  std::vector<uint8_t> payload = {1, 2, 3};
  auto frame = net::BuildUdpFrame(0xbb, 0xaa, 1, 2, 999, 53, payload);
  EXPECT_EQ(engine_->Classify(frame), std::nullopt);
  EXPECT_EQ(engine_->Remove(*id), Status::kErrNotFound);
}

TEST_P(EngineTest, RemoveOneOfManyLeavesOthers) {
  Result<FilterId> a = engine_->Insert(TcpConnectionFilter(10, 20, 1, 2));
  Result<FilterId> b = engine_->Insert(TcpConnectionFilter(10, 20, 3, 4));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(engine_->Remove(*a), Status::kOk);
  EXPECT_EQ(engine_->Classify(TcpPacket(10, 20, 1, 2)), std::nullopt);
  EXPECT_EQ(engine_->Classify(TcpPacket(10, 20, 3, 4)), *b);
}

TEST_P(EngineTest, MostSpecificFilterWins) {
  // A coarse UDP port filter and a full connection filter for the same
  // port: the connection filter (6 atoms vs 3) must win for its packets.
  Result<FilterId> coarse = engine_->Insert(UdpPortFilter(53));
  FilterSpec fine = UdpPortFilter(53);
  fine.atoms.push_back(Atom{net::kIpSrcOff, 4, 0xffffffffu, 777});
  Result<FilterId> specific = engine_->Insert(fine);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(specific.ok());

  std::vector<uint8_t> payload = {1};
  auto from_777 = net::BuildUdpFrame(0xbb, 0xaa, 777, 2, 9, 53, payload);
  auto from_other = net::BuildUdpFrame(0xbb, 0xaa, 778, 2, 9, 53, payload);
  EXPECT_EQ(engine_->Classify(from_777), *specific);
  EXPECT_EQ(engine_->Classify(from_other), *coarse);
}

TEST_P(EngineTest, ShortPacketNeverMatchesDeepFilter) {
  ASSERT_TRUE(engine_->Insert(TcpConnectionFilter(10, 20, 1, 2)).ok());
  std::vector<uint8_t> tiny = {0x08, 0x00};
  EXPECT_EQ(engine_->Classify(tiny), std::nullopt);
}

TEST_P(EngineTest, InvalidFilterRejected) {
  FilterSpec bad;
  EXPECT_EQ(engine_->Insert(bad).status(), Status::kErrInvalidArgs);  // Empty.
  bad.atoms = {Atom{0, 3, 0xff, 0}};                                  // Width 3.
  EXPECT_EQ(engine_->Insert(bad).status(), Status::kErrInvalidArgs);
  bad.atoms = {Atom{0, 1, 0x0f, 0x10}};  // Value outside mask.
  EXPECT_EQ(engine_->Insert(bad).status(), Status::kErrInvalidArgs);
}

TEST_P(EngineTest, ClassifyChargesSimulatedCycles) {
  ASSERT_TRUE(engine_->Insert(UdpPortFilter(53)).ok());
  const uint64_t before = engine_->sim_cycles();
  std::vector<uint8_t> payload = {1};
  (void)engine_->Classify(net::BuildUdpFrame(0xbb, 0xaa, 1, 2, 9, 53, payload));
  EXPECT_GT(engine_->sim_cycles(), before);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest,
                         ::testing::Values(Kind::kDpf, Kind::kMpf, Kind::kPathfinder),
                         [](const ::testing::TestParamInfo<Kind>& param_info) {
                           switch (param_info.param) {
                             case Kind::kDpf:
                               return "DPF";
                             case Kind::kMpf:
                               return "MPF";
                             case Kind::kPathfinder:
                               return "PATHFINDER";
                           }
                           return "unknown";
                         });

// Differential property test: on random packets and random filter sets, all
// three engines and the reference evaluator agree exactly.
TEST(EngineEquivalence, PropertyAllEnginesAgreeOnRandomTraffic) {
  SplitMix64 rng(2026);
  for (int round = 0; round < 20; ++round) {
    DpfEngine dpf;
    MpfEngine mpf;
    PathfinderEngine pathfinder;
    std::vector<FilterSpec> specs;
    const int n_filters = 1 + static_cast<int>(rng.NextBelow(12));
    for (int i = 0; i < n_filters; ++i) {
      FilterSpec spec;
      if (rng.NextBelow(2) == 0) {
        spec = TcpConnectionFilter(static_cast<uint32_t>(rng.NextBelow(4)),
                                   static_cast<uint32_t>(rng.NextBelow(4)),
                                   static_cast<uint16_t>(rng.NextBelow(4)),
                                   static_cast<uint16_t>(rng.NextBelow(4)));
      } else {
        spec = UdpPortFilter(static_cast<uint16_t>(rng.NextBelow(6)));
      }
      Result<FilterId> a = dpf.Insert(spec);
      Result<FilterId> b = mpf.Insert(spec);
      Result<FilterId> c = pathfinder.Insert(spec);
      ASSERT_EQ(a.ok(), b.ok());
      ASSERT_EQ(a.ok(), c.ok());
      if (a.ok()) {
        ASSERT_EQ(*a, *b);
        ASSERT_EQ(*a, *c);
        specs.push_back(spec);
      }
    }
    for (int p = 0; p < 200; ++p) {
      std::vector<uint8_t> pkt;
      if (rng.NextBelow(2) == 0) {
        pkt = TcpPacket(static_cast<uint32_t>(rng.NextBelow(4)),
                        static_cast<uint32_t>(rng.NextBelow(4)),
                        static_cast<uint16_t>(rng.NextBelow(4)),
                        static_cast<uint16_t>(rng.NextBelow(4)));
      } else {
        std::vector<uint8_t> payload = {0};
        pkt = net::BuildUdpFrame(1, 2, static_cast<uint32_t>(rng.NextBelow(4)), 3,
                                 static_cast<uint16_t>(rng.NextBelow(6)),
                                 static_cast<uint16_t>(rng.NextBelow(6)), payload);
      }
      auto a = dpf.Classify(pkt);
      auto b = mpf.Classify(pkt);
      auto c = pathfinder.Classify(pkt);
      ASSERT_EQ(a, b) << "DPF vs MPF, round " << round << " packet " << p;
      ASSERT_EQ(a, c) << "DPF vs PATHFINDER, round " << round << " packet " << p;
      // And the reference evaluator agrees a match exists where claimed.
      if (a.has_value()) {
        EXPECT_TRUE(Matches(specs[*a], pkt));
      } else {
        for (const FilterSpec& spec : specs) {
          EXPECT_FALSE(Matches(spec, pkt));
        }
      }
    }
  }
}

// DPF-specific: the ten-filter workload must merge into one trie (this is
// the source of the Table 7 win) and classification cost must be far below
// the interpreted engines'.
TEST(DpfMerging, TenTcpFiltersShareOneTrie) {
  DpfEngine dpf;
  for (uint16_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(dpf.Insert(TcpConnectionFilter(10, 20, 1000 + i, 2000 + i)).ok());
  }
  EXPECT_EQ(dpf.overflow_filters(), 0u);
  // Shared prefix: eth/proto/src/dst states are common, ports diverge.
  // 4 shared states + 10 * 2 port states + 10 leaves = well under 10 * 6.
  EXPECT_LT(dpf.trie_states(), 40u);
}

TEST(DpfMerging, StructurallyDifferentFilterFallsToOverflowButStillMatches) {
  DpfEngine dpf;
  ASSERT_TRUE(dpf.Insert(TcpConnectionFilter(10, 20, 1, 2)).ok());
  FilterSpec odd;
  odd.atoms = {Atom{net::kIpTtlOff, 1, 0xff, 64}};  // Different first key.
  Result<FilterId> id = dpf.Insert(odd);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(dpf.overflow_filters(), 1u);
  auto pkt = TcpPacket(1, 1, 1, 1);
  pkt[net::kIpTtlOff] = 64;
  EXPECT_EQ(dpf.Classify(pkt), *id);
}

TEST(DpfCost, MergedClassificationBeatsInterpretersBy10x) {
  DpfEngine dpf;
  MpfEngine mpf;
  PathfinderEngine pathfinder;
  for (uint16_t i = 0; i < 10; ++i) {
    FilterSpec spec = TcpConnectionFilter(10, 20, 1000 + i, 2000 + i);
    ASSERT_TRUE(dpf.Insert(spec).ok());
    ASSERT_TRUE(mpf.Insert(spec).ok());
    ASSERT_TRUE(pathfinder.Insert(spec).ok());
  }
  auto pkt = TcpPacket(10, 20, 1005, 2005);
  (void)dpf.Classify(pkt);
  (void)mpf.Classify(pkt);
  (void)pathfinder.Classify(pkt);
  EXPECT_GT(mpf.sim_cycles(), 10 * dpf.sim_cycles());
  EXPECT_GT(pathfinder.sim_cycles(), 5 * dpf.sim_cycles());
  EXPECT_GT(mpf.sim_cycles(), pathfinder.sim_cycles());
}

TEST(DpfMasking, SubnetFiltersShareTrieAndMatchCorrectly) {
  // Filters on different /8 subnets: same (offset, width, mask) atom with
  // different values — exactly the shape the merge trie dispatches on.
  DpfEngine dpf;
  auto subnet_filter = [](uint8_t net) {
    FilterSpec spec;
    spec.atoms = {
        Atom{net::kEthTypeOff, 2, 0xffff, net::kEthTypeIpv4},
        Atom{net::kIpProtoOff, 1, 0xff, net::kIpProtoUdp},
        Atom{net::kIpSrcOff, 4, 0xff000000u, static_cast<uint32_t>(net) << 24},
    };
    return spec;
  };
  Result<FilterId> net10 = dpf.Insert(subnet_filter(10));
  Result<FilterId> net172 = dpf.Insert(subnet_filter(172));
  ASSERT_TRUE(net10.ok());
  ASSERT_TRUE(net172.ok());
  EXPECT_EQ(dpf.overflow_filters(), 0u);  // Shared masks merge.

  std::vector<uint8_t> payload = {1};
  auto from = [&](uint32_t src_ip) {
    return net::BuildUdpFrame(0xbb, 0xaa, src_ip, 2, 9, 53, payload);
  };
  EXPECT_EQ(dpf.Classify(from(0x0a010203)), *net10);   // 10.1.2.3
  EXPECT_EQ(dpf.Classify(from(0xac100101)), *net172);  // 172.16.1.1
  EXPECT_EQ(dpf.Classify(from(0xc0a80101)), std::nullopt);  // 192.168.1.1
}

TEST(DpfCompile, SingleFilterProgramVerifies) {
  FilterSpec spec = TcpConnectionFilter(1, 2, 3, 4);
  vcode::Program program = DpfEngine::CompileOne(spec, 7);
  EXPECT_EQ(vcode::Verify(program, 64, 0), Status::kOk);
  auto pkt = TcpPacket(1, 2, 3, 4);
  vcode::ExecEnv env{pkt, {}, nullptr};
  EXPECT_EQ(vcode::Execute(program, env).value, 7u);
  auto miss = TcpPacket(1, 2, 3, 5);
  vcode::ExecEnv env2{miss, {}, nullptr};
  EXPECT_EQ(vcode::Execute(program, env2).value, vcode::kRejected);
}

}  // namespace
}  // namespace xok::dpf
