#include "src/exos/udp.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/exos/process.h"
#include "src/hw/world.h"
#include "src/net/wire.h"

namespace xok::exos {
namespace {

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

class ExosNetTest : public ::testing::Test {
 protected:
  ExosNetTest()
      : machine_a_(hw::Machine::Config{.phys_pages = 256, .name = "xa"}, &world_),
        machine_b_(hw::Machine::Config{.phys_pages = 256, .name = "xb"}, &world_),
        kernel_a_(machine_a_),
        kernel_b_(machine_b_),
        nic_a_(machine_a_, 0xa),
        nic_b_(machine_b_, 0xb) {
    wire_.Attach(&nic_a_);
    wire_.Attach(&nic_b_);
    kernel_a_.AttachNic(&nic_a_);
    kernel_b_.AttachNic(&nic_b_);
  }

  NetIface IfaceA() { return NetIface{0xa, 1, Resolve}; }
  NetIface IfaceB() { return NetIface{0xb, 2, Resolve}; }

  void RunWorld() {
    world_.Run({[&] { kernel_a_.Run(); }, [&] { kernel_b_.Run(); }});
  }

  hw::World world_;
  hw::Machine machine_a_;
  hw::Machine machine_b_;
  aegis::Aegis kernel_a_;
  aegis::Aegis kernel_b_;
  hw::Wire wire_;
  hw::Nic nic_a_;
  hw::Nic nic_b_;
};

TEST_F(ExosNetTest, UdpPingPongKernelQueuePath) {
  uint32_t final_counter = 0;
  Process client(kernel_a_, [&](Process& p) {
    UdpSocket socket(p, IfaceA());
    ASSERT_EQ(socket.Bind(100), Status::kOk);
    p.kernel().SysSleep(hw::kClockHz / 100);  // Let the server bind.
    std::vector<uint8_t> counter = {0, 0, 0, 0};
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(socket.SendTo(2, 200, counter), Status::kOk);
      Result<Datagram> reply = socket.Recv();
      ASSERT_TRUE(reply.ok());
      ASSERT_EQ(reply->payload.size(), 4u);
      counter = reply->payload;
    }
    final_counter = net::GetBe32(counter, 0);
  });
  bool server_done = false;
  Process server(kernel_b_, [&](Process& p) {
    UdpSocket socket(p, IfaceB());
    ASSERT_EQ(socket.Bind(200), Status::kOk);
    for (int i = 0; i < 8; ++i) {
      Result<Datagram> request = socket.Recv();
      ASSERT_TRUE(request.ok());
      std::vector<uint8_t> bumped(4);
      net::PutBe32(bumped, 0, net::GetBe32(request->payload, 0) + 1);
      ASSERT_EQ(socket.SendTo(request->src_ip, request->src_port, bumped), Status::kOk);
    }
    server_done = true;
  });
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(server.ok());
  RunWorld();
  EXPECT_EQ(final_counter, 8u);
  EXPECT_TRUE(server_done);
}

TEST_F(ExosNetTest, AshEchoRepliesWithoutSchedulingOwner) {
  uint32_t final_counter = 0;
  uint64_t owner_slices_after_setup = 0;
  uint64_t owner_slices_at_end = 0;
  cap::Capability owner_cap;

  Process client(kernel_a_, [&](Process& p) {
    UdpSocket socket(p, IfaceA());
    ASSERT_EQ(socket.Bind(100), Status::kOk);
    p.kernel().SysSleep(hw::kClockHz / 100);
    std::vector<uint8_t> counter = {0, 0, 0, 0};
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(socket.SendTo(2, 200, counter), Status::kOk);
      Result<Datagram> reply = socket.Recv();
      ASSERT_TRUE(reply.ok());
      counter = reply->payload;
    }
    final_counter = net::GetBe32(counter, 0);
  });
  Process owner(kernel_b_, [&](Process& p) {
    AshEchoConfig config;
    config.iface = IfaceB();
    config.port = 200;
    config.peer_ip = 1;
    config.peer_port = 100;
    Result<dpf::FilterId> id = BindEchoAsh(p, config);
    ASSERT_TRUE(id.ok());
    owner_slices_after_setup = p.kernel().slices_of(p.id());
    // The owner sleeps through the whole experiment: the ASH answers.
    p.kernel().SysSleep(hw::kClockHz);
    owner_slices_at_end = p.kernel().slices_of(p.id());
  });
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(owner.ok());
  owner_cap = owner.env_cap();
  RunWorld();

  // Every request was answered with counter+1, 16 times.
  EXPECT_EQ(final_counter, 16u);
  // And the owner was never scheduled to do it (at most the wakeup slice).
  EXPECT_LE(owner_slices_at_end - owner_slices_after_setup, 2u);
}

TEST_F(ExosNetTest, AshRoundTripFasterThanQueuePath) {
  // Measure N roundtrips against an ASH echo server, then against a
  // process-level echo server, same machines. The ASH path must win.
  auto measure = [&](bool use_ash) -> uint64_t {
    hw::World world;
    hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "ma"}, &world);
    hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "mb"}, &world);
    aegis::Aegis ka(ma);
    aegis::Aegis kb(mb);
    hw::Wire wire;
    hw::Nic na(ma, 0xa);
    hw::Nic nb(mb, 0xb);
    wire.Attach(&na);
    wire.Attach(&nb);
    ka.AttachNic(&na);
    kb.AttachNic(&nb);

    constexpr int kRounds = 16;
    uint64_t elapsed = 0;
    Process client(ka, [&](Process& p) {
      UdpSocket socket(p, NetIface{0xa, 1, Resolve});
      ASSERT_EQ(socket.Bind(100), Status::kOk);
      p.kernel().SysSleep(hw::kClockHz / 100);
      std::vector<uint8_t> counter = {0, 0, 0, 0};
      const uint64_t t0 = ma.clock().now();
      for (int i = 0; i < kRounds; ++i) {
        ASSERT_EQ(socket.SendTo(2, 200, counter), Status::kOk);
        Result<Datagram> reply = socket.Recv();
        ASSERT_TRUE(reply.ok());
      }
      elapsed = ma.clock().now() - t0;
    });
    Process server(kb, [&](Process& p) {
      if (use_ash) {
        AshEchoConfig config;
        config.iface = NetIface{0xb, 2, Resolve};
        config.port = 200;
        config.peer_ip = 1;
        config.peer_port = 100;
        ASSERT_TRUE(BindEchoAsh(p, config).ok());
        p.kernel().SysSleep(hw::kClockHz);
      } else {
        UdpSocket socket(p, NetIface{0xb, 2, Resolve});
        ASSERT_EQ(socket.Bind(200), Status::kOk);
        for (int i = 0; i < kRounds; ++i) {
          Result<Datagram> request = socket.Recv();
          ASSERT_TRUE(request.ok());
          std::vector<uint8_t> bumped(4);
          net::PutBe32(bumped, 0, net::GetBe32(request->payload, 0) + 1);
          ASSERT_EQ(socket.SendTo(request->src_ip, request->src_port, bumped), Status::kOk);
        }
      }
    });
    EXPECT_TRUE(client.ok());
    EXPECT_TRUE(server.ok());
    world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});
    return elapsed;
  };

  const uint64_t ash_cycles = measure(true);
  const uint64_t queue_cycles = measure(false);
  EXPECT_LT(ash_cycles, queue_cycles);
}

TEST_F(ExosNetTest, SocketLifecycleErrors) {
  Process proc(kernel_a_, [&](Process& p) {
    UdpSocket socket(p, IfaceA());
    // Recv before bind.
    EXPECT_EQ(socket.Recv(false).status(), Status::kErrBadState);
    EXPECT_EQ(socket.Close(), Status::kErrBadState);
    ASSERT_EQ(socket.Bind(100), Status::kOk);
    EXPECT_EQ(socket.Bind(101), Status::kErrBadState);  // Double bind.
    EXPECT_EQ(socket.Recv(false).status(), Status::kErrWouldBlock);
    EXPECT_EQ(socket.Close(), Status::kOk);
    EXPECT_EQ(socket.Close(), Status::kErrBadState);
    // Rebind after close works.
    UdpSocket socket2(p, IfaceA());
    EXPECT_EQ(socket2.Bind(100), Status::kOk);
  });
  ASSERT_TRUE(proc.ok());
  // Only machine A participates; machine B idles out immediately.
  world_.Run({[&] { kernel_a_.Run(); }, [&] {}});
}

TEST_F(ExosNetTest, MalformedFramesAreDroppedByLibrary) {
  // A frame that passes the port filter but fails library-level parsing
  // (broken IP checksum) must be dropped by the libOS, not delivered.
  uint32_t good = 0;
  Process receiver(kernel_b_, [&](Process& p) {
    UdpSocket socket(p, IfaceB());
    ASSERT_EQ(socket.Bind(200), Status::kOk);
    Result<Datagram> dgram = socket.Recv();  // Blocks past the bad frame.
    ASSERT_TRUE(dgram.ok());
    good = dgram->payload.empty() ? 0 : dgram->payload[0];
  });
  Process sender(kernel_a_, [&](Process& p) {
    p.kernel().SysSleep(hw::kClockHz / 100);
    std::vector<uint8_t> payload = {7};
    // Corrupt frame first: correct filter fields, broken IP checksum.
    auto bad = net::BuildUdpFrame(0xb, 0xa, 1, 2, 100, 200, payload);
    bad[net::kIpTtlOff] ^= 0xff;
    ASSERT_EQ(p.kernel().SysNetSend(bad), Status::kOk);
    // Then a good one.
    std::vector<uint8_t> good_payload = {9};
    auto ok = net::BuildUdpFrame(0xb, 0xa, 1, 2, 100, 200, good_payload);
    ASSERT_EQ(p.kernel().SysNetSend(ok), Status::kOk);
  });
  ASSERT_TRUE(receiver.ok());
  ASSERT_TRUE(sender.ok());
  RunWorld();
  EXPECT_EQ(good, 9u);
}

}  // namespace
}  // namespace xok::exos
