// Per-request critical-path assembly (src/exos/reqtrace): joining
// synthetic kernel records into timelines, span telescoping around missing
// boundaries, disk attribution through the open-request join, request
// classes, the nearest-rank percentile, and the flight-recorder retention
// policy. Everything here runs on hand-built records — the live-kernel
// joins are covered by server_test and the chaos soaks.
#include "src/exos/reqtrace.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/xtrace.h"

namespace xok::exos::reqtrace {
namespace {

using xtrace::Event;
using xtrace::Record;

Record Rec(Event type, uint64_t cycle, uint16_t env, uint32_t arg0,
           uint32_t arg1, uint32_t arg2, uint32_t arg3) {
  Record r;
  r.cycle = cycle;
  r.type = static_cast<uint16_t>(type);
  r.env = env;
  r.arg0 = arg0;
  r.arg1 = arg1;
  r.arg2 = arg2;
  r.arg3 = arg3;
  return r;
}

Record Mark(uint64_t cycle, uint16_t env, uint32_t req_id, uint32_t phase,
            uint32_t arg2 = 0, uint32_t arg3 = 0) {
  return Rec(Event::kAppMark, cycle, env, req_id, phase, arg2, arg3);
}

// Demux match: arg2 = delivery path, arg3 = the library-programmed tag.
Record Demux(uint64_t cycle, uint32_t req_id, uint32_t path = 1) {
  return Rec(Event::kDpfMatch, cycle, /*env=*/0, /*filter=*/3, 0, path, req_id);
}

TEST(PercentileTest, NearestRankClampedToSampleRange) {
  EXPECT_EQ(Percentile({}, 500), 0u);

  const std::vector<uint64_t> one = {42};
  EXPECT_EQ(Percentile(one, 500), 42u);
  EXPECT_EQ(Percentile(one, 999), 42u);

  // n=4: rank(p50) = ceil(0.5*4) = 2, rank(p99) = ceil(0.99*4) = 4.
  const std::vector<uint64_t> four = {10, 20, 30, 40};
  EXPECT_EQ(Percentile(four, 500), 20u);
  EXPECT_EQ(Percentile(four, 990), 40u);
  EXPECT_EQ(Percentile(four, 999), 40u);

  // n=1000: p999 is exactly the 999th sample, not the max.
  std::vector<uint64_t> thousand(1000);
  for (size_t i = 0; i < thousand.size(); ++i) {
    thousand[i] = i + 1;
  }
  EXPECT_EQ(Percentile(thousand, 500), 500u);
  EXPECT_EQ(Percentile(thousand, 999), 999u);
}

TEST(CollectorTest, FullTimelineSpansTelescopeToEndToEnd) {
  Collector collector;
  collector.Add(Mark(100, /*env=*/9, /*req=*/7, kPhaseClientSend));
  collector.Add(Demux(150, 7, /*path=*/1));
  collector.Add(Mark(200, /*env=*/5, 7, kPhaseEnter, /*shard=*/1, /*bytes=*/64));
  collector.Add(Mark(230, 5, 7, kPhaseStage, kStageParsed));
  collector.Add(Mark(300, 5, 7, kPhaseStage, kStageStored));
  collector.Add(Mark(320, 5, 7, kPhaseExit, /*status=*/200, /*resp|flags=*/128));
  EXPECT_EQ(collector.completed(Class::kAll), 0u);  // Waits for the ack.
  collector.Add(Mark(400, 9, 7, kPhaseClientAck, /*status=*/200));

  ASSERT_EQ(collector.completed(Class::kAll), 1u);
  EXPECT_EQ(collector.incomplete(), 0u);
  const RequestTimeline* t = collector.Find(7);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->complete);
  EXPECT_EQ(t->status, 200u);
  EXPECT_EQ(t->env, 5u);
  EXPECT_EQ(t->shard, 1u);
  EXPECT_EQ(t->path, 1u);
  EXPECT_EQ(t->span[static_cast<uint32_t>(Span::kWire)], 50u);
  EXPECT_EQ(t->span[static_cast<uint32_t>(Span::kRingWait)], 50u);
  EXPECT_EQ(t->span[static_cast<uint32_t>(Span::kParse)], 30u);
  EXPECT_EQ(t->span[static_cast<uint32_t>(Span::kStore)], 70u);
  EXPECT_EQ(t->span[static_cast<uint32_t>(Span::kTx)], 20u);
  EXPECT_EQ(t->span[static_cast<uint32_t>(Span::kAck)], 80u);
  for (uint32_t s = 0; s < kSpanCount; ++s) {
    EXPECT_TRUE(t->seen[s]) << SpanName(static_cast<Span>(s));
  }
  // The attribution identity: observed spans sum to exactly last - first.
  EXPECT_EQ(t->Total(), 300u);
  EXPECT_EQ(t->Total(), t->last_cycle - t->first_cycle);
  EXPECT_TRUE(t->Is(Class::kGet));
  EXPECT_FALSE(t->Is(Class::kPut));
  EXPECT_FALSE(t->Is(Class::kShed));
}

TEST(CollectorTest, MissingBoundaryFoldsIntoTheNextObservedSpan) {
  // No parsed stage mark: enter -> stored telescopes into kStore, so the
  // sum identity still holds and no time is orphaned.
  Collector collector;
  collector.Add(Mark(100, 9, 8, kPhaseClientSend));
  collector.Add(Demux(150, 8));
  collector.Add(Mark(200, 5, 8, kPhaseEnter, 0));
  collector.Add(Mark(300, 5, 8, kPhaseStage, kStageStored));
  collector.Add(Mark(320, 5, 8, kPhaseExit, 200, 64));
  collector.Add(Mark(400, 9, 8, kPhaseClientAck, 200));

  const RequestTimeline* t = collector.Find(8);
  ASSERT_NE(t, nullptr);
  EXPECT_FALSE(t->seen[static_cast<uint32_t>(Span::kParse)]);
  EXPECT_EQ(t->span[static_cast<uint32_t>(Span::kStore)], 100u);  // 200 -> 300.
  EXPECT_EQ(t->Total(), 300u);
  EXPECT_EQ(t->Total(), t->last_cycle - t->first_cycle);
}

TEST(CollectorTest, ServerOnlyTimelineFinalizesOnExit) {
  // No client marks at all (a foreign kernel's client, or a warmup probe):
  // the exit mark closes the timeline because nobody downstream will ack.
  Collector collector;
  collector.Add(Demux(150, 9));
  collector.Add(Mark(200, 5, 9, kPhaseEnter, 0));
  collector.Add(Mark(320, 5, 9, kPhaseExit, 200, 64));

  ASSERT_EQ(collector.completed(Class::kAll), 1u);
  const RequestTimeline* t = collector.Find(9);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->complete);
  EXPECT_FALSE(t->seen[static_cast<uint32_t>(Span::kWire)]);
  EXPECT_FALSE(t->seen[static_cast<uint32_t>(Span::kAck)]);
  EXPECT_TRUE(t->seen[static_cast<uint32_t>(Span::kRingWait)]);
  EXPECT_EQ(t->Total(), 170u);  // demux 150 -> exit 320.
}

TEST(CollectorTest, DiskWaitsJoinThroughTheOpenRequest) {
  Collector collector;
  collector.Add(Mark(200, 5, 11, kPhaseEnter, 0));
  // Two IOs submitted by the worker env while request 11 is open.
  collector.Add(Rec(Event::kDiskSubmit, 210, 5, 0, 0, /*disk req=*/70, 0));
  collector.Add(Rec(Event::kDiskComplete, 260, 0, /*disk req=*/70, 0, 0, 0));
  collector.Add(Rec(Event::kDiskSubmit, 270, 5, 0, 0, 71, 0));
  collector.Add(Rec(Event::kDiskComplete, 300, 0, 71, 0, 0, 0));
  // A third IO from an env with NO open request (journal sync, preload):
  // attributed to nobody.
  collector.Add(Rec(Event::kDiskSubmit, 310, 6, 0, 0, 72, 0));
  collector.Add(Rec(Event::kDiskComplete, 330, 0, 72, 0, 0, 0));
  collector.Add(Mark(340, 5, 11, kPhaseExit, 201, kFlagPut));

  const RequestTimeline* t = collector.Find(11);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->disk_ios, 2u);
  EXPECT_EQ(t->disk_cycles, 80u);  // (260-210) + (300-270).
  EXPECT_TRUE(t->Is(Class::kPut));
}

TEST(CollectorTest, ClassesFollowStatusFlagsAndPath) {
  Collector collector;
  // Shed: a 503 is neither a GET nor a PUT, whatever it parsed as.
  collector.Add(Mark(100, 5, 20, kPhaseEnter, 0));
  collector.Add(Mark(120, 5, 20, kPhaseExit, 503, kFlagPut));
  // Hot + stale GET.
  collector.Add(Mark(200, 5, 21, kPhaseEnter, 0));
  collector.Add(Mark(220, 5, 21, kPhaseExit, 200, kFlagHot | kFlagStale));
  // ASH fast path: no worker marks at all — send/demux(path 2)/ack only.
  collector.Add(Mark(300, 9, 22, kPhaseClientSend));
  collector.Add(Demux(310, 22, /*path=*/2));
  collector.Add(Mark(330, 9, 22, kPhaseClientAck, 200));

  const RequestTimeline* shed = collector.Find(20);
  ASSERT_NE(shed, nullptr);
  EXPECT_TRUE(shed->Is(Class::kShed));
  EXPECT_FALSE(shed->Is(Class::kGet));
  EXPECT_FALSE(shed->Is(Class::kPut));

  const RequestTimeline* hot = collector.Find(21);
  ASSERT_NE(hot, nullptr);
  EXPECT_TRUE(hot->Is(Class::kHot));
  EXPECT_TRUE(hot->Is(Class::kStale));
  EXPECT_TRUE(hot->Is(Class::kGet));

  const RequestTimeline* ash = collector.Find(22);
  ASSERT_NE(ash, nullptr);
  EXPECT_EQ(ash->path, 2u);
  EXPECT_TRUE(ash->Is(Class::kHot));  // Path is the hot-class witness.
  EXPECT_EQ(ash->status, 200u);       // Taken from the ack: no exit mark.
  EXPECT_EQ(collector.completed(Class::kAll), 3u);
  EXPECT_EQ(collector.completed(Class::kShed), 1u);
  EXPECT_EQ(collector.completed(Class::kHot), 2u);
}

TEST(CollectorTest, FlightRecorderKeepsTheLastKAndFindPrefersNewest) {
  Collector collector(Collector::Options{.keep_last = 2, .keep_all = false});
  for (uint32_t id = 1; id <= 5; ++id) {
    collector.Add(Mark(id * 100, 5, id, kPhaseEnter, 0));
    collector.Add(Mark(id * 100 + 10, 5, id, kPhaseExit, 200, 0));
  }
  EXPECT_EQ(collector.completed(Class::kAll), 5u);
  ASSERT_EQ(collector.recent().size(), 2u);
  EXPECT_EQ(collector.recent().front().req_id, 4u);
  EXPECT_EQ(collector.recent().back().req_id, 5u);
  EXPECT_EQ(collector.Find(3), nullptr);  // Aged out of the recorder.
  ASSERT_NE(collector.Find(5), nullptr);
}

TEST(CollectorTest, RetransmitsAndDuplicateMarksDoNotMoveBoundaries) {
  Collector collector;
  collector.Add(Mark(100, 9, 30, kPhaseClientSend));
  collector.Add(Demux(150, 30, /*path=*/1));
  collector.Add(Demux(160, 30, /*path=*/0));  // Retransmit copy: ignored.
  collector.Add(Mark(200, 5, 30, kPhaseEnter, 0));
  collector.Add(Demux(210, 30, /*path=*/0));  // Post-pickup duplicate.
  collector.Add(Mark(220, 5, 30, kPhaseExit, 200, 0));
  collector.Add(Mark(280, 9, 30, kPhaseClientAck, 200));

  const RequestTimeline* t = collector.Find(30);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->path, 1u);  // The first, served copy.
  EXPECT_EQ(t->span[static_cast<uint32_t>(Span::kWire)], 50u);
  EXPECT_EQ(t->Total(), 180u);
}

TEST(CollectorTest, UntaggedDemuxAndUnknownAcksAreIgnored) {
  Collector collector;
  collector.Add(Demux(100, /*req=*/0));  // Tag 0 = untagged binding.
  collector.Add(Mark(200, 9, 40, kPhaseClientAck, 200));  // Never seen: drop.
  EXPECT_EQ(collector.completed(Class::kAll), 0u);
  EXPECT_EQ(collector.incomplete(), 0u);
}

TEST(AssembleTimelinesTest, PostMortemDecodeMatchesLiveAssembly) {
  std::vector<Record> records;
  records.push_back(Mark(100, 9, 50, kPhaseClientSend));
  records.push_back(Demux(130, 50));
  records.push_back(Mark(150, 5, 50, kPhaseEnter, 0));
  records.push_back(Mark(180, 5, 50, kPhaseExit, 200, 0));
  records.push_back(Mark(220, 9, 50, kPhaseClientAck, 200));
  // A request cut off mid-flight (the crash): enter but no close.
  records.push_back(Mark(300, 5, 51, kPhaseEnter, 0));

  const std::vector<RequestTimeline> timelines = AssembleTimelines(records);
  ASSERT_EQ(timelines.size(), 1u);
  EXPECT_EQ(timelines[0].req_id, 50u);
  EXPECT_EQ(timelines[0].Total(), 120u);

  const std::string text = FormatTimeline(timelines[0]);
  EXPECT_NE(text.find("req 50"), std::string::npos);
  EXPECT_NE(text.find("ring-wait"), std::string::npos);
  EXPECT_NE(text.find("120 cycles"), std::string::npos);
}

}  // namespace
}  // namespace xok::exos::reqtrace
