// Fault injection and crash-safe teardown: forced environment termination
// (KillEnv) must reclaim every resource class and leave the kernel's
// tables consistent (AuditInvariants); syscalls aimed at dead or
// never-created environments must fail cleanly; injected device faults
// (disk errors, corrupted frames) must surface as clean errors that the
// library OSes above recover from.
#include "src/hw/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/aegis.h"
#include "src/dpf/tcpip_filters.h"
#include "src/exos/fs.h"
#include "src/exos/ipc.h"
#include "src/exos/rdp.h"
#include "src/hw/disk.h"
#include "src/hw/framebuffer.h"
#include "src/hw/nic.h"
#include "src/hw/world.h"

namespace xok {
namespace {

using aegis::Aegis;
using aegis::EnvId;
using aegis::EnvSpec;
using aegis::kNoEnv;
using aegis::PctArgs;

class FaultTest : public ::testing::Test {
 protected:
  FaultTest()
      : machine_(hw::Machine::Config{.phys_pages = 128, .name = "fault"}),
        kernel_(machine_),
        disk_(machine_, 128),
        fb_(machine_, 64, 64),
        nic_(machine_, 0xaa) {
    kernel_.AttachDisk(&disk_);
    kernel_.AttachFramebuffer(&fb_);
    kernel_.AttachNic(&nic_);
  }

  hw::Machine machine_;
  Aegis kernel_;
  hw::Disk disk_;
  hw::Framebuffer fb_;
  hw::Nic nic_;
};

// --- Syscalls on dead or never-created environments (clean errors) ---

TEST_F(FaultTest, SyscallsOnDeadOrUnknownEnvironmentsFailCleanly) {
  bool a_done = false;
  bool b_checked = false;
  EnvId a_id = kNoEnv;
  cap::Capability a_cap;
  EnvSpec a;
  a.entry = [&] { a_done = true; };
  EnvSpec b;
  b.entry = [&] {
    while (!a_done) {
      kernel_.SysYield();
    }
    // Exited peer: every control operation reports kErrNotFound, never
    // touches the corpse.
    EXPECT_FALSE(kernel_.SysEnvAlive(a_id));
    EXPECT_EQ(kernel_.SysWake(a_id, a_cap), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysPctCall(a_id, PctArgs{}).status(), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysPctSend(a_id, PctArgs{}), Status::kErrNotFound);
    EXPECT_EQ(kernel_.KillEnv(a_id), Status::kErrNotFound);
    // Never-created id: same clean rejection.
    const EnvId ghost = 57;
    EXPECT_FALSE(kernel_.SysEnvAlive(ghost));
    EXPECT_EQ(kernel_.SysWake(ghost, a_cap), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysPctCall(ghost, PctArgs{}).status(), Status::kErrNotFound);
    EXPECT_EQ(kernel_.SysPctSend(ghost, PctArgs{}), Status::kErrNotFound);
    EXPECT_EQ(kernel_.KillEnv(ghost), Status::kErrNotFound);
    b_checked = true;
  };
  Result<aegis::EnvGrant> ga = kernel_.CreateEnv(std::move(a));
  ASSERT_TRUE(ga.ok());
  a_id = ga->env;
  a_cap = ga->cap;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(b)).ok());
  kernel_.Run();
  EXPECT_TRUE(b_checked);
}

// --- KillEnv reclaims every resource class ---

TEST_F(FaultTest, KillEnvReclaimsEveryResourceClass) {
  EnvId victim_id = kNoEnv;
  bool victim_ready = false;
  bool killer_done = false;
  kernel_.set_audit_on_fault(true);

  EnvSpec victim;
  victim.entry = [&] {
    // One of everything: pages, a TLB mapping, a packet-filter binding, a
    // disk extent, a framebuffer tile.
    std::vector<aegis::PageGrant> pages;
    for (int i = 0; i < 3; ++i) {
      Result<aegis::PageGrant> page = kernel_.SysAllocPage();
      ASSERT_TRUE(page.ok());
      pages.push_back(*page);
    }
    ASSERT_EQ(kernel_.SysTlbWrite(0x10000, pages[0].page, true, pages[0].cap), Status::kOk);
    aegis::FilterBindSpec bind;
    bind.filter = dpf::UdpPortFilter(9);
    ASSERT_TRUE(kernel_.SysBindFilter(std::move(bind), cap::Capability{}).ok());
    ASSERT_TRUE(kernel_.SysAllocDiskExtent(4).ok());
    ASSERT_EQ(kernel_.SysBindFbTile(0, 0), Status::kOk);
    victim_ready = true;
    kernel_.SysBlock();  // Stays blocked until killed.
    ADD_FAILURE() << "killed environment resumed";
  };
  EnvSpec killer;
  killer.entry = [&] {
    while (!victim_ready) {
      kernel_.SysYield();
    }
    const uint32_t free_before = kernel_.free_pages();
    ASSERT_EQ(kernel_.KillEnv(victim_id), Status::kOk);
    EXPECT_FALSE(kernel_.SysEnvAlive(victim_id));
    EXPECT_EQ(kernel_.free_pages(), free_before + 3);
    EXPECT_EQ(fb_.TileOwner(0, 0), hw::Framebuffer::kNoOwner);
    Aegis::AuditReport report = kernel_.AuditInvariants();
    EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
    killer_done = true;
  };
  Result<aegis::EnvGrant> gv = kernel_.CreateEnv(std::move(victim));
  ASSERT_TRUE(gv.ok());
  victim_id = gv->env;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(killer)).ok());
  kernel_.Run();
  EXPECT_TRUE(killer_done);
  EXPECT_EQ(kernel_.envs_killed(), 1u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// --- Killing an environment blocked on a disk transfer ---

TEST_F(FaultTest, KillingBlockedDiskWaiterCancelsTheTransfer) {
  EnvId victim_id = kNoEnv;
  bool victim_submitting = false;
  bool killer_done = false;
  kernel_.set_audit_on_fault(true);

  EnvSpec victim;
  victim.entry = [&] {
    Result<Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    victim_submitting = true;
    // Blocks awaiting the completion interrupt; the kill lands first.
    (void)kernel_.SysDiskWrite(extent->extent, extent->cap, 0, frame->page);
    ADD_FAILURE() << "killed environment resumed";
  };
  EnvSpec killer;
  killer.entry = [&] {
    while (!victim_submitting || disk_.inflight_requests() == 0) {
      kernel_.SysYield();
    }
    ASSERT_EQ(kernel_.KillEnv(victim_id), Status::kOk);
    // The in-flight DMA aimed at the victim's frame was cancelled, and no
    // stuck waiter remains.
    EXPECT_EQ(disk_.inflight_requests(), 0u);
    Aegis::AuditReport report = kernel_.AuditInvariants();
    EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
    // The disk is still fully usable by the survivors.
    Result<Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(2);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(kernel_.SysDiskWrite(extent->extent, extent->cap, 0, frame->page), Status::kOk);
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, extent->cap, 0, frame->page), Status::kOk);
    killer_done = true;
  };
  Result<aegis::EnvGrant> gv = kernel_.CreateEnv(std::move(victim));
  ASSERT_TRUE(gv.ok());
  victim_id = gv->env;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(killer)).ok());
  kernel_.Run();
  EXPECT_TRUE(killer_done);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// --- Capability epochs across frame reuse ---

TEST_F(FaultTest, StaleCapabilityAfterFrameReuseIsRejected) {
  bool done = false;
  EnvSpec e;
  e.entry = [&] {
    Result<aegis::PageGrant> first = kernel_.SysAllocPage();
    ASSERT_TRUE(first.ok());
    const hw::PageId frame = first->page;
    ASSERT_EQ(kernel_.SysTlbWrite(0x20000, frame, true, first->cap), Status::kOk);
    ASSERT_EQ(kernel_.SysDeallocPage(frame, first->cap), Status::kOk);
    // Dealloc bumped the frame's epoch: the old capability is dead even
    // though the same environment re-allocates the very same frame.
    Result<aegis::PageGrant> second = kernel_.SysAllocPage(frame);
    ASSERT_TRUE(second.ok());
    ASSERT_EQ(second->page, frame);
    EXPECT_EQ(kernel_.SysTlbWrite(0x20000, frame, true, first->cap), Status::kErrAccessDenied);
    EXPECT_EQ(kernel_.SysTlbWrite(0x20000, frame, true, second->cap), Status::kOk);

    // Disk extents: freeing kills outstanding extent capabilities the same
    // way, so a stale handle cannot reach blocks later reassigned.
    Result<Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    ASSERT_EQ(kernel_.SysDiskWrite(extent->extent, extent->cap, 0, frame), Status::kOk);
    ASSERT_EQ(kernel_.SysFreeDiskExtent(extent->extent, extent->cap), Status::kOk);
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, extent->cap, 0, frame),
              Status::kErrOutOfRange);  // Extent slot no longer live.
    done = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(e)).ok());
  kernel_.Run();
  EXPECT_TRUE(done);
}

// --- Injected disk errors surface as kErrIo ---

TEST_F(FaultTest, InjectedDiskErrorsSurfaceAsErrIo) {
  hw::FaultPlan plan;
  plan.seed = 42;
  plan.disk_error_per_mille = 1000;  // Every transfer fails.
  kernel_.InstallFaultPlan(plan);
  kernel_.set_audit_on_fault(true);
  bool done = false;
  EnvSpec e;
  e.entry = [&] {
    Result<Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(4);
    ASSERT_TRUE(extent.ok());
    Result<aegis::PageGrant> frame = kernel_.SysAllocPage();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(kernel_.SysDiskWrite(extent->extent, extent->cap, 0, frame->page), Status::kErrIo);
    EXPECT_EQ(kernel_.SysDiskRead(extent->extent, extent->cap, 0, frame->page), Status::kErrIo);
    done = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(e)).ok());
  kernel_.Run();
  EXPECT_TRUE(done);
  EXPECT_GE(kernel_.fault_injector()->disk_errors_injected(), 2u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// --- LibFS rides out transient media errors ---

TEST_F(FaultTest, LibFsRetriesTransientDiskErrors) {
  hw::FaultPlan plan;
  plan.seed = 7;
  plan.disk_error_per_mille = 250;
  kernel_.InstallFaultPlan(plan);
  kernel_.set_audit_on_fault(true);
  bool done = false;
  exos::Process proc(kernel_, [&](exos::Process& p) {
    Result<Aegis::DiskExtentGrant> extent = kernel_.SysAllocDiskExtent(32);
    ASSERT_TRUE(extent.ok());
    Result<std::unique_ptr<exos::LibFs>> fs = exos::LibFs::Format(p, *extent, 4);
    ASSERT_TRUE(fs.ok());
    Result<exos::FileHandle> file = (*fs)->Create("journal");
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> data(3 * hw::kPageBytes);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i * 7 + 3);
    }
    ASSERT_EQ((*fs)->Write(*file, 0, data), Status::kOk);
    ASSERT_EQ((*fs)->Sync(), Status::kOk);
    std::vector<uint8_t> back(data.size());
    Result<uint32_t> n = (*fs)->Read(*file, 0, back);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, data.size());
    EXPECT_EQ(back, data);
    // The faults really fired and the cache really absorbed them.
    EXPECT_GT((*fs)->cache().io_retries(), 0u);
    done = true;
  });
  ASSERT_TRUE(proc.ok());
  kernel_.Run();
  EXPECT_TRUE(done);
  EXPECT_GT(kernel_.fault_injector()->disk_errors_injected(), 0u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// --- Scheduled kills and spurious interrupts ---

TEST_F(FaultTest, ScheduledKillTerminatesASpinningEnvironment) {
  EnvId victim_id = kNoEnv;
  bool worker_done = false;
  EnvSpec victim;
  victim.entry = [&] {
    for (;;) {
      kernel_.SysYield();  // Never exits on its own.
    }
  };
  EnvSpec worker;
  worker.entry = [&] {
    kernel_.SysSleep(300'000);
    worker_done = true;
  };
  Result<aegis::EnvGrant> gv = kernel_.CreateEnv(std::move(victim));
  ASSERT_TRUE(gv.ok());
  victim_id = gv->env;
  ASSERT_TRUE(kernel_.CreateEnv(std::move(worker)).ok());
  hw::FaultPlan plan;
  plan.KillEnvAt(100'000, victim_id);
  kernel_.InstallFaultPlan(plan);
  kernel_.set_audit_on_fault(true);
  kernel_.Run();  // Terminates only because the kill fires.
  EXPECT_TRUE(worker_done);
  EXPECT_FALSE(kernel_.EnvAlive(victim_id));
  EXPECT_EQ(kernel_.envs_killed(), 1u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

TEST_F(FaultTest, SpuriousInterruptsAreHarmless) {
  bool done = false;
  EnvSpec e;
  e.entry = [&] {
    kernel_.SysSleep(50'000);
    done = true;
  };
  ASSERT_TRUE(kernel_.CreateEnv(std::move(e)).ok());
  hw::FaultPlan plan;
  // A completion interrupt for a transfer nobody submitted, and a fault
  // interrupt naming an environment that does not exist.
  plan.SpuriousIrqAt(10'000, hw::InterruptSource::kDiskDone, 987654);
  plan.SpuriousIrqAt(20'000, hw::InterruptSource::kFault, 55);
  kernel_.InstallFaultPlan(plan);
  kernel_.set_audit_on_fault(true);
  kernel_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(kernel_.envs_killed(), 0u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
  EXPECT_TRUE(kernel_.AuditInvariants().ok());
}

// --- PCT atomicity: kills land at the outer transfer's return ---

TEST_F(FaultTest, KillDuringPctIsDeferredToTheOuterReturn) {
  EnvId client_id = kNoEnv;
  bool handler_ran = false;
  bool client_returned = false;
  EnvSpec server;
  server.handlers.pct_sync = [&](const PctArgs& args) {
    handler_ran = true;
    // The transfer cannot be diverted between initiation and entry: the
    // kill is accepted but deferred, and the handler completes.
    EXPECT_EQ(kernel_.KillEnv(client_id), Status::kOk);
    EXPECT_TRUE(kernel_.SysEnvAlive(client_id));
    PctArgs reply;
    reply.regs[0] = args.regs[0] + 1;
    return reply;
  };
  server.entry = [&] {
    while (kernel_.SysEnvAlive(client_id)) {
      kernel_.SysYield();
    }
  };
  Result<aegis::EnvGrant> gs = kernel_.CreateEnv(std::move(server));
  ASSERT_TRUE(gs.ok());
  const EnvId server_id = gs->env;
  EnvSpec client;
  client.entry = [&] {
    PctArgs args;
    args.regs[0] = 41;
    (void)kernel_.SysPctCall(server_id, args);
    client_returned = true;  // Must never run: the deferred kill lands first.
  };
  Result<aegis::EnvGrant> gc = kernel_.CreateEnv(std::move(client));
  ASSERT_TRUE(gc.ok());
  client_id = gc->env;
  kernel_.Run();
  EXPECT_TRUE(handler_ran);
  EXPECT_FALSE(client_returned);
  EXPECT_FALSE(kernel_.EnvAlive(client_id));
  EXPECT_EQ(kernel_.envs_killed(), 1u);
  EXPECT_TRUE(kernel_.AuditInvariants().ok());
}

// --- Death notifications unblock pipe peers with EPIPE ---

TEST_F(FaultTest, PipeReaderSeesEpipeWhenWriterIsKilled) {
  exos::SharedBufferDesc desc;
  bool ready = false;
  bool reader_drained = false;
  bool writer_parked = false;
  exos::PipePeer writer_peer;
  exos::PipePeer reader_peer;
  constexpr hw::Vaddr kRingVa = 0x5000000;
  EnvId writer_id = kNoEnv;
  kernel_.set_audit_on_fault(true);

  exos::Process writer(kernel_, [&](exos::Process& p) {
    desc = *exos::CreateSharedBuffer(p);
    ASSERT_EQ(exos::MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    ready = true;
    exos::PipeEndpoint out(p, kRingVa, writer_peer, false);
    ASSERT_EQ(out.WriteWord(11), Status::kOk);
    ASSERT_EQ(out.WriteWord(22), Status::kOk);
    writer_parked = true;
    p.kernel().SysBlock();  // Parked until killed; never writes the third word.
    ADD_FAILURE() << "killed environment resumed";
  });
  exos::Process reader(kernel_, [&](exos::Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(exos::MapSharedBuffer(p, desc, kRingVa), Status::kOk);
    exos::PipeEndpoint in(p, kRingVa, reader_peer, false);
    Result<uint32_t> first = in.ReadWord();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(*first, 11u);
    Result<uint32_t> second = in.ReadWord();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(*second, 22u);
    // The third read blocks on an empty ring; the writer's death must wake
    // us with EPIPE instead of hanging forever.
    EXPECT_EQ(in.ReadWord().status(), Status::kErrBadState);
    reader_drained = true;
  });
  exos::Process killer(kernel_, [&](exos::Process& p) {
    while (!writer_parked) {
      p.kernel().SysYield();
    }
    ASSERT_EQ(p.kernel().KillEnv(writer_id), Status::kOk);
  });
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(killer.ok());
  writer_id = writer.id();
  writer_peer = {reader.id(), reader.env_cap()};
  reader_peer = {writer.id(), writer.env_cap()};
  kernel_.Run();
  EXPECT_TRUE(reader_drained);
  EXPECT_EQ(kernel_.envs_killed(), 1u);
  EXPECT_EQ(kernel_.audit_failures(), 0u) << kernel_.first_audit_failure();
}

// --- RDP end-to-end checksum vs. corrupted frames ---

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

TEST(RdpChecksumTest, CorruptedFramesAreDroppedAndRecovered) {
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "snd"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "rcv"}, &world);
  aegis::Aegis ka(ma);
  aegis::Aegis kb(mb);
  hw::Wire wire;
  hw::Nic na(ma, 0xa);
  hw::Nic nb(mb, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ka.AttachNic(&na);
  kb.AttachNic(&nb);
  hw::FaultPlan plan;
  plan.seed = 3;
  plan.wire_corrupt_per_mille = 150;
  ka.InstallFaultPlan(plan);
  wire.set_fault_injector(ka.fault_injector());

  constexpr int kMessages = 20;
  std::vector<std::vector<uint8_t>> received;
  uint64_t checksum_drops = 0;
  bool sender_ok = false;
  exos::Process sender(ka, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xa, 1, Resolve});
    ASSERT_EQ(socket.Bind(100), Status::kOk);
    exos::RdpEndpoint rdp(p, socket, exos::RdpEndpoint::Config{.peer_ip = 2, .peer_port = 200});
    p.kernel().SysSleep(hw::kClockHz / 100);
    for (int i = 0; i < kMessages; ++i) {
      std::vector<uint8_t> payload(1 + (i % 32));
      for (size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<uint8_t>(i + j);
      }
      ASSERT_EQ(rdp.Send(payload), Status::kOk);
    }
    checksum_drops += rdp.checksum_drops();
    sender_ok = true;
  });
  exos::Process receiver(kb, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xb, 2, Resolve});
    ASSERT_EQ(socket.Bind(200), Status::kOk);
    exos::RdpEndpoint rdp(p, socket, exos::RdpEndpoint::Config{.peer_ip = 1, .peer_port = 100});
    for (int i = 0; i < kMessages; ++i) {
      Result<std::vector<uint8_t>> msg = rdp.Recv();
      ASSERT_TRUE(msg.ok());
      received.push_back(*msg);
    }
    for (int round = 0; round < 16; ++round) {
      p.kernel().SysSleep(hw::kClockHz / 500);
      rdp.PumpAcks();
    }
    checksum_drops += rdp.checksum_drops();
  });
  ASSERT_TRUE(sender.ok());
  ASSERT_TRUE(receiver.ok());
  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});

  EXPECT_TRUE(sender_ok);
  ASSERT_EQ(received.size(), static_cast<size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(received[i].size(), static_cast<size_t>(1 + (i % 32))) << "message " << i;
    for (size_t j = 0; j < received[i].size(); ++j) {
      ASSERT_EQ(received[i][j], static_cast<uint8_t>(i + j)) << "message " << i << " byte " << j;
    }
  }
  // The corruption channel really fired, and the end-to-end checksum (not
  // the wire) is what caught it.
  EXPECT_GT(ka.fault_injector()->frames_corrupted(), 0u);
  EXPECT_GT(checksum_drops, 0u);
}

}  // namespace
}  // namespace xok
