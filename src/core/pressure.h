// Deterministic, seeded resource pressure for Aegis — the revocation-side
// sibling of hw::FaultPlan.
//
// The paper's resource-management contract (§3.4–3.5) has two halves: the
// kernel asks nicely (visible revocation), and if the application does not
// comply it takes by force (the abort protocol + repossession vector). A
// PressurePlan turns that contract into a repeatable campaign: one-shot
// revocation events against chosen victims at chosen cycles, plus an
// optional sustained "storm" window that fires a burst every period against
// seeded-random victims. Four resource channels exist — page revocation
// (escalating to repossession on non-compliance), slice revocation,
// DPF-filter reclaim, and disk-extent reclaim.
//
// The plan also carries the *guaranteed reserve*: per-environment floors
// below which the pressure engine will never push a victim. Pressure may
// degrade an environment (fewer pages, one slice, no filters) but must not
// starve it to death — an env at its floor is simply skipped. The floor
// binds only the pressure engine; explicit RevokePages calls from tests and
// the teardown path are not clamped.
#ifndef XOK_SRC_CORE_PRESSURE_H_
#define XOK_SRC_CORE_PRESSURE_H_

#include <cstdint>
#include <vector>

#include "src/base/rand.h"
#include "src/core/env.h"

namespace xok::aegis {

// Per-environment guaranteed reserve: the pressure engine never takes a
// resource that would leave a victim below these.
struct ReserveFloor {
  uint32_t pages = 4;    // Physical pages an env always keeps.
  uint32_t slices = 1;   // Slice slots an env always keeps (if it has any).
  uint32_t extents = 1;  // Live disk extents an env always keeps.
};

enum class PressureKind : uint8_t {
  kRevokePages,     // Visible revocation; escalates to repossession.
  kRevokeSlices,    // Slice slots removed from the victim's CPUs.
  kReclaimFilters,  // DPF filters force-unbound (packets stop arriving).
  kReclaimExtents,  // Disk extents killed (epoch bump voids caps).
};

struct PressureEvent {
  uint64_t at_cycle = 0;
  PressureKind kind = PressureKind::kRevokePages;
  EnvId victim = kAnyEnv;  // kAnyEnv: engine picks the richest eligible env.
  uint32_t amount = 1;
};

struct PressurePlan {
  uint64_t seed = 1;
  ReserveFloor floor;

  // Sustained storm: every `storm_period` cycles in [storm_start,
  // storm_end], apply each nonzero per-channel amount against a
  // seeded-random eligible victim. storm_end == 0 disables the storm.
  uint64_t storm_start = 0;
  uint64_t storm_end = 0;
  uint64_t storm_period = 50'000;
  uint32_t storm_pages = 0;
  uint32_t storm_slices = 0;
  uint32_t storm_filters = 0;
  uint32_t storm_extents = 0;

  // One-shot scheduled events (absolute cycles).
  std::vector<PressureEvent> events;

  PressurePlan& RevokePagesAt(uint64_t cycle, EnvId victim, uint32_t pages) {
    events.push_back({cycle, PressureKind::kRevokePages, victim, pages});
    return *this;
  }
  PressurePlan& RevokeSlicesAt(uint64_t cycle, EnvId victim, uint32_t slots) {
    events.push_back({cycle, PressureKind::kRevokeSlices, victim, slots});
    return *this;
  }
  PressurePlan& ReclaimFiltersAt(uint64_t cycle, EnvId victim, uint32_t filters) {
    events.push_back({cycle, PressureKind::kReclaimFilters, victim, filters});
    return *this;
  }
  PressurePlan& ReclaimExtentsAt(uint64_t cycle, EnvId victim, uint32_t extents) {
    events.push_back({cycle, PressureKind::kReclaimExtents, victim, extents});
    return *this;
  }
  PressurePlan& Storm(uint64_t start, uint64_t end, uint64_t period,
                      uint32_t pages, uint32_t slices = 0, uint32_t filters = 0,
                      uint32_t extents = 0) {
    storm_start = start;
    storm_end = end;
    storm_period = period;
    storm_pages = pages;
    storm_slices = slices;
    storm_filters = filters;
    storm_extents = extents;
    return *this;
  }
};

// Campaign accounting (tests assert the pressure really landed).
struct PressureStats {
  uint64_t bursts = 0;             // Storm ticks fired.
  uint64_t revocations = 0;        // Pressure applications attempted.
  uint64_t pages_requested = 0;    // Pages asked for via visible revocation.
  uint64_t slices_revoked = 0;     // Slice slots actually removed.
  uint64_t filters_reclaimed = 0;
  uint64_t extents_reclaimed = 0;
  uint64_t floor_clamps = 0;  // Applications reduced/skipped by the reserve.
};

// The plan plus the seeded victim-selection stream. Owned by Aegis
// (installed via InstallPressurePlan); the kernel drives it from the
// InterruptSource::kPressure handler so campaigns are deterministic per
// seed regardless of what the applications do.
class PressureEngine {
 public:
  explicit PressureEngine(const PressurePlan& plan)
      : plan_(plan), victim_rng_(plan.seed * 0x9e3779b97f4a7c15ULL + 1) {}

  const PressurePlan& plan() const { return plan_; }
  PressureStats& stats() { return stats_; }
  const PressureStats& stats() const { return stats_; }

  // Seeded draw for kAnyEnv victim selection (uniform in [0, n)).
  uint64_t NextDraw(uint64_t n) { return n == 0 ? 0 : victim_rng_.Next() % n; }

 private:
  PressurePlan plan_;
  SplitMix64 victim_rng_;
  PressureStats stats_;
};

}  // namespace xok::aegis

#endif  // XOK_SRC_CORE_PRESSURE_H_
