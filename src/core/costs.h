// Path-length constants for Aegis kernel operations, in simulated cycles.
// Where the paper states an instruction count we use it directly (exception
// dispatch: 18 instructions; protected control transfer: 30 instructions;
// "roughly ten instructions to distinguish the system call exception").
#ifndef XOK_SRC_CORE_COSTS_H_
#define XOK_SRC_CORE_COSTS_H_

#include "src/hw/cost.h"

namespace xok::aegis {

using hw::Instr;

// System call entry: exception demux + vector through the syscall table.
inline constexpr uint64_t kSyscallEntry = Instr(10);
// System call exit: set status/epc, rfe.
inline constexpr uint64_t kSyscallExit = Instr(8);

// Exception dispatch to an application handler (paper §5.3: save three
// scratch registers into the agreed-upon save area using physical
// addresses, load cause, vector — 18 instructions total).
inline constexpr uint64_t kExceptionDispatch = Instr(18);
// Return from an application exception handler back to the faulting code.
inline constexpr uint64_t kExceptionResume = Instr(6);

// Protected control transfer: 30 instructions (paper §5.2: ~10 to
// distinguish the syscall, ~20 for status/co-processor/address-tag).
inline constexpr uint64_t kPctOneWay = Instr(30);

// Kernel TLB refill from the software TLB (unrolled hash probe).
inline constexpr uint64_t kStlbLookup = Instr(6);
inline constexpr uint64_t kStlbInsert = Instr(3);

// Capability authentication (MAC recomputation over 13 bytes).
inline constexpr uint64_t kCapCheck = Instr(12);

// Directed yield: pick target, switch addressing context, dispatch.
inline constexpr uint64_t kYieldPath = Instr(22);

// Posting a receive doorbell to an application: marking it runnable,
// interrupt bookkeeping, and the (eventual) dispatch it buys. Charged once
// per queued frame on the legacy path; the ring path batches — one
// doorbell per demux drain, and none at all while the consumer is awake
// and has not re-armed the ring.
inline constexpr uint64_t kRxDoorbell = Instr(100);

// Publishing one RX-ring slot (descriptor write + producer index).
inline constexpr uint64_t kRingPublish = Instr(6);

// Examining one TX-ring descriptor from SysTxRing.
inline constexpr uint64_t kRingTxDescriptor = Instr(6);

// Dropping one matched frame at the demux because the owning ring is over
// its library-installed shed watermark: occupancy compare + drop counter.
// Deliberately tiny — the whole point of interrupt-level shedding is that
// an overloaded consumer costs its neighbors a few cycles per frame, not
// a copy + doorbell.
inline constexpr uint64_t kRingShed = Instr(4);

// Armed trace hook on a traced syscall (xtrace): the two 32-byte record
// stores land in the write buffer without stalling the syscall path; what
// the path actually pays is the head publish + histogram bucket update.
// A *disarmed* hook is a single branch on a nullptr ring and charges
// nothing, so tracing is compiled-in but free until a ring is bound.
inline constexpr uint64_t kTraceArmedSyscall = Instr(1);

// End-of-slice interrupt path in the kernel (before the application's own
// epilogue runs): bookkeeping + schedule next.
inline constexpr uint64_t kTimerSlicePath = Instr(12);

// Default scheduling quantum: ~1 ms at 25 MHz — short enough that the
// stride-scheduler figure resolves, long enough to amortise switches.
inline constexpr uint64_t kDefaultSliceCycles = 25'000;

// Budget for an application's end-of-slice context-save epilogue. Slices
// consumed beyond this are "excess time": the environment forfeits a
// subsequent time slice per excess unit (paper §5.1.1).
inline constexpr uint64_t kEpilogueBudget = Instr(500);

// One inter-processor interrupt round on the initiating CPU: mailbox
// write, the remote vectoring, and the initiator's wait for the
// acknowledgment (shootdowns are synchronous, as in real kernels — the
// initiator may not free the frame until every CPU has dropped it).
inline constexpr uint64_t kIpiCost = Instr(60);

// Each remote TLB entry the shootdown handler invalidates (indexed probe
// + tlbwi on the remote CPU, billed to the initiator who waits for it).
inline constexpr uint64_t kIpiRemoteInvalidate = Instr(8);

}  // namespace xok::aegis

#endif  // XOK_SRC_CORE_COSTS_H_
