// The software TLB (paper §4, §5.4, refs [7, 28]): Aegis overlays the
// 64-entry hardware TLB with a large direct-mapped software cache of
// secure bindings, absorbing capacity misses so that application-level
// virtual memory stays fast. 4096 entries of 8 bytes, per the paper.
#ifndef XOK_SRC_CORE_STLB_H_
#define XOK_SRC_CORE_STLB_H_

#include <array>
#include <cstdint>

#include "src/hw/trap.h"

namespace xok::aegis {

class Stlb {
 public:
  static constexpr uint32_t kEntries = 4096;

  struct Entry {
    hw::Vpn vpn = 0;
    hw::Asid asid = 0;
    hw::PageId pfn = 0;
    bool writable = false;
    bool valid = false;
  };

  const Entry* Lookup(hw::Vpn vpn, hw::Asid asid) const {
    const Entry& entry = slots_[SlotOf(vpn, asid)];
    if (entry.valid && entry.vpn == vpn && entry.asid == asid) {
      return &entry;
    }
    return nullptr;
  }

  void Insert(hw::Vpn vpn, hw::Asid asid, hw::PageId pfn, bool writable) {
    slots_[SlotOf(vpn, asid)] = Entry{vpn, asid, pfn, writable, true};
  }

  void Invalidate(hw::Vpn vpn, hw::Asid asid) {
    Entry& entry = slots_[SlotOf(vpn, asid)];
    if (entry.valid && entry.vpn == vpn && entry.asid == asid) {
      entry.valid = false;
    }
  }

  void FlushAsid(hw::Asid asid) {
    for (Entry& entry : slots_) {
      if (entry.asid == asid) {
        entry.valid = false;
      }
    }
  }

  void FlushPfn(hw::PageId pfn) {
    for (Entry& entry : slots_) {
      if (entry.valid && entry.pfn == pfn) {
        entry.valid = false;
      }
    }
  }

  void FlushAll() {
    for (Entry& entry : slots_) {
      entry.valid = false;
    }
  }

  // Diagnostic view for the kernel invariant auditor.
  const std::array<Entry, kEntries>& slots() const { return slots_; }

 private:
  static uint32_t SlotOf(hw::Vpn vpn, hw::Asid asid) {
    return (vpn ^ (static_cast<uint32_t>(asid) << 7)) & (kEntries - 1);
  }

  std::array<Entry, kEntries> slots_{};
};

}  // namespace xok::aegis

#endif  // XOK_SRC_CORE_STLB_H_
