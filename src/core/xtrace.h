// xtrace: kernel event tracing and per-environment resource accounting,
// exposed the exokernel way (paper §2: "expose, don't abstract").
//
// Aegis does no measurement *policy*: it appends fixed-format binary
// records to an event ring living in application-owned pinned pages
// (bound with Aegis::SysBindTraceRing — the same capability-bound
// shared-page pattern as the packet rings) and keeps raw per-environment
// counters readable via SysEnvStats. All decoding, aggregation, and
// reporting is untrusted library code (src/exos/tracelib).
//
// Ring layout (all little-endian, accessed through memcpy so the region
// is just bytes):
//
//   [header 64 bytes | slots * 32-byte Record]
//
// Header: {magic, slots, head, tail, mask, pad, dropped u64}. The kernel
// owns `head` (free-running producer index, published from a trusted
// kernel-side cursor exactly like the packet rings); the reader owns
// `tail`. Writes never stall: when head - tail reaches the slot count the
// kernel keeps writing (drop-oldest) and counts the overwritten records
// in `dropped`. The tail is untrusted — a hostile value can at worst
// misreport the owner's own drop count; every byte offset the kernel
// uses derives from the bind-time slot count, never from shared memory.
//
// Cost model: the per-record stores land in the R3000 write buffer and
// the per-env counters model free-running hardware event counters, so
// neither charges simulated cycles on its own; an *armed* ring adds
// kTraceArmedSyscall (one instruction: head publish + histogram index)
// to each traced syscall. A disarmed hook is a single branch on a
// nullptr ring (see Aegis::Trace).
#ifndef XOK_SRC_CORE_XTRACE_H_
#define XOK_SRC_CORE_XTRACE_H_

#include <cstdint>
#include <span>

#include "src/base/result.h"

namespace xok::xtrace {

// --- Event types (fits in the 32-bit bind-time mask) ---

enum class Event : uint8_t {
  kSyscallEnter = 0,   // arg0 = Sys number.
  kSyscallExit = 1,    // arg0 = Sys number, arg1 = latency cycles (low 32),
                       // arg2 = latency cycles (high 32).
  kException = 2,      // arg0 = hw::ExceptionType, arg1 = bad_vaddr.
  kStlbFill = 3,       // TLB miss satisfied from the software TLB.
                       // arg0 = vpn.
  kSliceSwitch = 4,    // env = environment being resumed, arg0 = donated.
  kYield = 5,          // arg0 = directed-yield target (kAnyEnv if none).
  kRevoke = 6,         // arg0 = victim env, arg1 = pages requested.
  kRepossess = 7,      // arg0 = victim env, arg1 = pages taken by force.
  kInterrupt = 8,      // arg0 = hw::InterruptSource, arg1 = payload (low 32).
  kDpfMatch = 9,       // arg0 = filter id, arg1 = frame bytes, arg2 = path
                       // (0 queue, 1 ring, 2 ASH), arg3 = library-programmed
                       // correlation tag: 4 big-endian frame bytes at the
                       // offset the owner named in FilterBindSpec::
                       // trace_tag_off (0 when untagged/short frame). The
                       // server libOS points it at the request id, which
                       // joins the demux timestamp into reqtrace timelines.
  kDpfDrop = 10,       // arg0 = reason (0 no match, 1 ring full, 2 queue
                       // full, 3 dead owner, 4 shed watermark), arg1 =
                       // filter id.
  kDiskSubmit = 11,    // arg0 = block, arg1 = write flag, arg2 = request id.
  kDiskComplete = 12,  // arg0 = request id, arg1 = failed flag.
  kDiskBarrier = 13,   // arg0 = request id, arg1 = blocks drained.
  kEnvBirth = 14,      // arg0 = new env id.
  kEnvDeath = 15,      // arg0 = env id, arg1 = killed flag (0 clean exit).
  kPct = 16,           // arg0 = callee env, arg1 = sync flag.
  kPowerCut = 17,
  kMigration = 18,     // env = migrating env, arg0 = from cpu, arg1 = to cpu.
  kIpi = 19,           // arg0 = target cpu, arg1 = payload (low 32).
  kTlbShootdown = 20,  // arg0 = pfn or asid, arg1 = remote cpu,
                       // arg2 = entries invalidated, arg3 = asid flag.
  kPressureTick = 21,  // arg0 = PressureKind, arg1 = victim env,
                       // arg2 = amount requested, arg3 = amount applied.
  kSliceRevoke = 22,   // arg0 = victim env, arg1 = slots revoked,
                       // arg2 = slots remaining.
  kFilterReclaim = 23,  // arg0 = victim env, arg1 = filter id.
  kExtentReclaim = 24,  // arg0 = victim env, arg1 = extent id.
  kAppMark = 25,       // Application-defined record (SysTraceMark): the
                       // kernel stamps cycle/seq/env, the args mean
                       // whatever the emitting library says they mean.
                       // The server libOS convention (src/exos/server,
                       // constants in src/exos/reqtrace.h): arg0 = request
                       // id, arg1 = phase — 0 worker enter (arg2 = shard,
                       // arg3 = payload bytes), 1 worker exit (arg2 =
                       // status, arg3 = response bytes | class flags<<16),
                       // 2 worker stage boundary (arg2 = stage id, arg3 =
                       // queue depth), 3 client first send, 4 client ack
                       // (arg2 = status).
};
inline constexpr uint32_t kEventCount = 26;

constexpr uint32_t Bit(Event e) { return 1u << static_cast<uint32_t>(e); }
inline constexpr uint32_t kMaskAll = 0xffffffffu;
inline constexpr uint32_t kMaskSyscalls =
    Bit(Event::kSyscallEnter) | Bit(Event::kSyscallExit);
inline constexpr uint32_t kMaskEnvLifecycle =
    Bit(Event::kEnvBirth) | Bit(Event::kEnvDeath);

const char* EventName(Event e);

// --- Record format (32 bytes, fixed) ---

struct Record {
  uint64_t cycle = 0;  // Timestamp (simulated cycle clock).
  uint32_t seq = 0;    // Free-running record index (== producer head).
  uint16_t type = 0;   // Event.
  uint16_t env = 0;    // Environment the event is attributed to (0 = kernel).
  uint32_t arg0 = 0;
  uint32_t arg1 = 0;
  uint32_t arg2 = 0;
  uint32_t arg3 = 0;
};
static_assert(sizeof(Record) == 32, "trace records are a fixed 32 bytes");
inline constexpr uint32_t kRecordBytes = 32;

// --- Syscall numbering (accounting + latency histogram index) ---

enum class Sys : uint8_t {
  kNull = 0,
  kGetCycles,
  kSelf,
  kCpuSlices,
  kYield,
  kBlock,
  kSleep,
  kWake,
  kExit,
  kAllocPage,
  kDeallocPage,
  kTlbWrite,
  kTlbInvalidate,
  kTlbInvalidateRange,
  kDeriveCap,
  kPctCall,
  kPctSend,
  kBindFilter,
  kUnbindFilter,
  kRecvPacket,
  kNetSend,
  kBindPacketRing,
  kUnbindPacketRing,
  kTxRing,
  kPacketStats,
  kBindFbTile,
  kAllocDiskExtent,
  kFreeDiskExtent,
  kDiskRead,
  kDiskWrite,
  kDiskBarrier,
  kReadRepossessed,
  kEnvAlive,
  kBindTraceRing,
  kUnbindTraceRing,
  kEnvStats,
  kSyscallHist,
  kCpuCount,
  kCurrentCpu,
  kAllocSlice,
  kKillEnv,
  kTraceMark,
  kCount,
};
inline constexpr uint32_t kSysCount = static_cast<uint32_t>(Sys::kCount);

const char* SysName(Sys n);

// --- Per-environment resource accounting ---
//
// Modelled as free-running hardware event counters (like R3000 coprocessor
// performance counters): always on, charge nothing, raw. Aggregation into
// rates/ratios is library policy.
struct EnvCounters {
  uint64_t cycles_on_cpu = 0;  // Cycles consumed while this env's fiber ran.
  uint64_t syscalls[kSysCount] = {};
  uint64_t tlb_misses = 0;   // Hardware TLB misses taken by this env.
  uint64_t stlb_hits = 0;    // ...satisfied by the software TLB.
  uint64_t stlb_misses = 0;  // ...dispatched to the application handler.
  uint64_t packets_rx = 0;   // Frames delivered to this env's bindings.
  uint64_t packets_tx = 0;   // Frames sent (SysNetSend + ring TX + ASH replies).
  uint64_t packets_shed = 0;  // Frames dropped for this env's bindings at the
                              // library-installed watermark or a full ring.
  uint64_t disk_blocks_read = 0;
  uint64_t disk_blocks_written = 0;
  uint64_t faults_injected = 0;  // Injected faults that landed on this env.
  uint64_t migrations = 0;       // Resumes on a different CPU than the last.
  uint64_t ipis_sent = 0;        // IPIs this env's syscalls caused.
  uint64_t tlb_shootdowns = 0;   // Remote TLBs invalidated on its behalf.
  uint64_t repossess_overflow = 0;  // Repossessed pages dropped from the
                                    // (bounded) repossession vector.
  uint64_t slices_revoked = 0;   // Slice slots taken back under pressure.

  uint64_t syscalls_total() const {
    uint64_t total = 0;
    for (uint64_t n : syscalls) {
      total += n;
    }
    return total;
  }
};

// --- Log2 latency histogram (per syscall number, kernel-wide) ---

inline constexpr uint32_t kHistBuckets = 32;

struct LatencyHist {
  uint64_t bucket[kHistBuckets] = {};  // bucket[i]: latency in [2^i, 2^(i+1)).
  uint64_t count = 0;
  uint64_t total_cycles = 0;
  uint64_t max_cycles = 0;

  void Add(uint64_t cycles) {
    ++bucket[BucketOf(cycles)];
    ++count;
    total_cycles += cycles;
    if (cycles > max_cycles) {
      max_cycles = cycles;
    }
  }

  static uint32_t BucketOf(uint64_t cycles) {
    uint32_t b = 0;
    while (cycles > 1 && b + 1 < kHistBuckets) {
      cycles >>= 1;
      ++b;
    }
    return b;
  }
};

// --- The shared-memory ring itself ---

class TraceRingView {
 public:
  static constexpr uint32_t kMagic = 0x78747247;  // "xtrG"
  static constexpr uint32_t kHeaderBytes = 64;

  TraceRingView() = default;

  // Record slots that fit in a region of `bytes` (0 if none do).
  static uint32_t SlotsFor(size_t bytes);

  // Interprets `region` as a ring with `slots` records. Fails on zero
  // slots or a region too small for them.
  static Result<TraceRingView> Attach(std::span<uint8_t> region, uint32_t slots);
  // Attach, inferring the slot count from the header's own `slots` field
  // (reader side; validates magic and geometry against the region size).
  static Result<TraceRingView> AttachExisting(std::span<uint8_t> region);
  // Attach + initialise the header (kernel side of a fresh binding).
  static Result<TraceRingView> Format(std::span<uint8_t> region, uint32_t slots,
                                      uint32_t mask);

  uint32_t slots() const { return slots_; }

  // Shared-header accessors (u32/u64, memcpy'd; all untrusted to readers).
  uint32_t head() const { return LoadU32(kHeadOff); }
  uint32_t tail() const { return LoadU32(kTailOff); }
  uint32_t mask() const { return LoadU32(kMaskOff); }
  uint64_t dropped() const { return LoadU64(kDroppedOff); }
  void set_head(uint32_t v) { StoreU32(kHeadOff, v); }
  void set_tail(uint32_t v) { StoreU32(kTailOff, v); }
  void set_dropped(uint64_t v) { StoreU64(kDroppedOff, v); }

  // Raw record access; `index` is free-running (reduced modulo slots).
  void Write(uint32_t index, const Record& record);
  Record Read(uint32_t index) const;

 private:
  static constexpr uint32_t kMagicOff = 0;
  static constexpr uint32_t kSlotsOff = 4;
  static constexpr uint32_t kHeadOff = 8;
  static constexpr uint32_t kTailOff = 12;
  static constexpr uint32_t kMaskOff = 16;
  static constexpr uint32_t kDroppedOff = 24;  // 8-byte aligned.

  TraceRingView(std::span<uint8_t> region, uint32_t slots)
      : base_(region.data()), slots_(slots) {}

  uint32_t LoadU32(size_t off) const;
  uint64_t LoadU64(size_t off) const;
  void StoreU32(size_t off, uint32_t v);
  void StoreU64(size_t off, uint64_t v);
  size_t SlotOff(uint32_t index) const {
    return kHeaderBytes + static_cast<size_t>(index % slots_) * kRecordBytes;
  }

  uint8_t* base_ = nullptr;
  uint32_t slots_ = 0;
};

}  // namespace xok::xtrace

#endif  // XOK_SRC_CORE_XTRACE_H_
