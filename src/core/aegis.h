// Aegis: the exokernel (the paper's primary contribution).
//
// Aegis securely multiplexes the simulated machine's resources — CPU time
// slices, physical pages, the TLB, exceptions, interrupts, the network
// interface, the frame buffer, and the disk — without implementing any
// abstraction on top of them. The three exokernel techniques:
//
//   * Secure bindings (§3): capabilities guard bind-time operations
//     (installing a TLB mapping, binding a packet filter); access-time
//     checks are pushed to hardware (TLB, framebuffer ownership tags) or
//     to cached bindings (the software TLB); downloaded code (DPF filters,
//     ASHs) extends binding checks into the kernel safely.
//   * Visible revocation (§3.4): the kernel asks a library OS to give
//     pages back, so the libOS picks the victims.
//   * Abort protocol (§3.5): if the libOS does not comply, the kernel
//     breaks the bindings by force and records them in the environment's
//     repossession vector.
//
// Threading model: Aegis::Run() executes the scheduler loop on the calling
// fiber ("kernel fiber"); each environment runs on its own fiber. All
// syscalls are methods called from environment fibers; they charge their
// documented path lengths to the simulated clock. On a multi-CPU machine
// (hw::Machine::Config::cpus > 1) Run() instead drives one scheduler loop
// per CPU through the machine's SMP interleaver; each CPU owns a slice
// vector and revocation paths shoot down remote TLBs over IPIs.
#ifndef XOK_SRC_CORE_AEGIS_H_
#define XOK_SRC_CORE_AEGIS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ash/ash.h"
#include "src/base/result.h"
#include "src/cap/capability.h"
#include "src/core/costs.h"
#include "src/core/env.h"
#include "src/core/pressure.h"
#include "src/core/stlb.h"
#include "src/core/xtrace.h"
#include "src/dpf/dpf.h"
#include "src/hw/disk.h"
#include "src/hw/fault.h"
#include "src/hw/framebuffer.h"
#include "src/hw/machine.h"
#include "src/hw/nic.h"

namespace xok::net {
class PacketRingView;
}  // namespace xok::net

namespace xok::aegis {

inline constexpr hw::PageId kAnyPage = 0xffffffffu;

// Result of allocating a physical page: the *name* of the page (exokernels
// expose physical names; a libOS can request specific pages for cache
// colouring) and the capability that guards subsequent bindings.
struct PageGrant {
  hw::PageId page = 0;
  cap::Capability cap;
};

struct EnvGrant {
  EnvId env = kNoEnv;
  cap::Capability cap;
};

// Everything needed to create an environment. The entry function runs on
// the environment's fiber when it is first scheduled and must finish by
// calling SysExit().
struct EnvSpec {
  std::function<void()> entry;
  EnvHandlers handlers;
  uint32_t slices = 1;  // Time-slice vector positions to allocate at birth.
  // CPUs the environment may hold slices on. All requested birth slices
  // land on the least-loaded admitted CPU (lowest index breaks ties);
  // SysAllocSlice grows onto others later. kAnyCpuMask admits every CPU,
  // which on a single-CPU machine reproduces the old placement exactly.
  uint64_t cpu_mask = kAnyCpuMask;
};

// Options for binding a packet filter (paper §3.2): the owning
// environment, and optionally an ASH plus the physical pages (a contiguous
// run) that form the handler's pinned region.
struct FilterBindSpec {
  dpf::FilterSpec filter;
  std::optional<ash::AshProgram> handler;
  hw::PageId region_first_page = 0;  // First page of the pinned region.
  uint32_t region_pages = 0;         // 0: no region (no ASH, kernel queueing only).
  // Library-programmed correlation tag for kDpfMatch trace records: when
  // non-zero, the demux copies the 4 frame bytes at this offset (big-endian)
  // into arg3 of the binding's kDpfMatch records. The kernel does not know
  // what the bytes mean — the library that owns the wire format points the
  // kernel at its own request-id field, and the request tracer joins the
  // demux timestamp to the app-level marks on that key. Frames shorter than
  // trace_tag_off + 4 tag 0. Costs nothing when tracing is disarmed and,
  // like the record stores themselves, charges no simulated cycles armed.
  uint32_t trace_tag_off = 0;  // 0 = no tag (arg3 stays 0).
};

// Options for binding a zero-copy packet-ring pair to an existing filter
// binding: the region is a contiguous run of caller-owned pinned pages
// formatted as net::PacketRingView rings; matched frames land in the RX
// ring at interrupt level and SysTxRing drains the TX ring in one syscall.
struct PacketRingSpec {
  hw::PageId first_page = 0;
  uint32_t pages = 0;
  uint32_t rx_slots = 0;
  uint32_t tx_slots = 0;
  // Coalesce doorbells: wake the owner at most once per demux drain, and
  // only when it armed the ring (interrupt mitigation). When false, every
  // deposited frame posts a doorbell — the per-frame-interrupt baseline.
  bool batch_doorbells = true;
  // Library-installed shed policy (overload control): when non-zero and RX
  // occupancy has reached this many slots, the demux drops the frame at
  // kRingShed cost instead of depositing it. 0 disarms shedding — the
  // binding behaves exactly as before (frames flow until the ring is full).
  // Policy (the watermark) is the library's; the kernel supplies only the
  // cheap protected drop.
  uint32_t shed_watermark = 0;
};

// Counters for one filter binding (ring and legacy-queue paths).
struct PacketStats {
  uint64_t delivered = 0;    // Frames deposited in the RX ring.
  uint64_t queued = 0;       // Frames queued on the legacy path.
  uint64_t ring_drops = 0;   // Frames dropped because the RX ring was full.
  uint64_t queue_drops = 0;  // Frames dropped at the legacy queue cap.
  uint64_t shed = 0;         // Frames shed at the library-installed watermark.
  uint64_t doorbells = 0;    // Owner wakes posted by the demux.
  uint64_t tx_frames = 0;    // Frames transmitted via SysTxRing.
  uint64_t tx_errors = 0;    // Malformed TX-ring frames skipped.
  uint32_t rx_pending = 0;   // RX frames deposited but not yet consumed.
  uint32_t rx_occupancy_hwm = 0;  // Highest RX occupancy seen at deposit.
  uint32_t queue_pending = 0;  // Frames sitting in the legacy bounded queue.
  bool ring_bound = false;
};

// Options for binding the kernel event-trace ring (xtrace): a contiguous
// run of caller-owned pinned pages, plus the event-type mask the caller
// wants recorded (measurement policy is the application's — it pays for
// exactly the events it asked for). Slot count is derived from the region
// size: (pages * 4096 - 64) / 32 records.
struct TraceRingSpec {
  hw::PageId first_page = 0;
  uint32_t pages = 0;
  uint32_t mask = xtrace::kMaskAll;
};

// Per-environment resource accounting snapshot (SysEnvStats / env_stats).
struct EnvStats {
  EnvId env = kNoEnv;
  bool alive = false;
  bool killed = false;
  uint32_t pages_held = 0;
  uint64_t slices_run = 0;
  uint32_t cpu = 0;  // CPU currently running the env, else its last CPU.
  uint32_t slice_slots = 0;  // Slice-vector slots held across all CPUs.
  xtrace::EnvCounters counters;
};

class Aegis final : public hw::TrapSink {
 public:
  struct Config {
    uint64_t slice_cycles = kDefaultSliceCycles;
    uint32_t slice_count = 64;   // Length of the CPU slice vector.
    uint32_t max_envs = 62;      // Asid space (8 bits) minus kernel reserves.
    uint64_t cap_key0 = 0xae915ULL;
    uint64_t cap_key1 = 0x50351995ULL;  // SOSP 1995.
  };

  explicit Aegis(hw::Machine& machine, const Config& config);
  explicit Aegis(hw::Machine& machine);
  ~Aegis() override;

  Aegis(const Aegis&) = delete;
  Aegis& operator=(const Aegis&) = delete;

  // Attaches the network interface (optional; required for filter binding).
  void AttachNic(hw::Nic* nic) { nic_ = nic; }
  void AttachFramebuffer(hw::Framebuffer* fb) { framebuffer_ = fb; }
  void AttachDisk(hw::Disk* disk) { disk_ = disk; }

  // Creates an environment (host-side before Run(), or from a syscall).
  Result<EnvGrant> CreateEnv(EnvSpec spec);

  // Scheduler loop; returns when every environment has exited.
  void Run();

  // --- System calls (called from environment fibers) ---

  // Null system call: enters and leaves the kernel (Table 2 workload).
  void SysNull();
  // Guaranteed-not-to-clobber-registers primitive operations (Table 3).
  uint64_t SysGetCycles();     // Read the cycle counter (executing CPU).
  EnvId SysSelf();             // Current environment id.
  uint32_t SysCpuSlices();     // Length of each per-CPU slice vector.
  uint32_t SysCpuCount();      // Processors on this machine.
  uint32_t SysCurrentCpu();    // CPU executing the caller right now.
  // Grants the caller one more slice-vector slot on `cpu` (kAnyCpu: the
  // least-loaded CPU admitted by the env's cpu_mask). This is how an
  // environment spans processors after birth.
  Status SysAllocSlice(uint32_t cpu = kAnyCpu);
  // Yields the rest of the current slice to `target` (directed yield) or
  // to the next runnable environment (kAnyEnv).
  void SysYield(EnvId target = kAnyEnv);
  // Blocks until another environment or a kernel event wakes this one.
  void SysBlock();
  // Blocks for at least `cycles` (one-shot alarm + block).
  void SysSleep(uint64_t cycles);
  // Wakes `env`; requires its environment capability.
  Status SysWake(EnvId env, const cap::Capability& env_cap);
  // Terminates the calling environment.
  [[noreturn]] void SysExit();

  // Physical memory (secure bindings, §3.1).
  Result<PageGrant> SysAllocPage(hw::PageId requested = kAnyPage);
  Status SysDeallocPage(hw::PageId page, const cap::Capability& cap);
  // Installs a TLB mapping for the *calling* environment's address space.
  // The capability must carry kRead (and kWrite if `writable`) for `page`.
  Status SysTlbWrite(hw::Vaddr va, hw::PageId page, bool writable,
                     const cap::Capability& cap);
  Status SysTlbInvalidate(hw::Vaddr va);
  // Batched invalidate: one kernel crossing for `pages` consecutive pages
  // (library OSes batch protection changes; cf. Appel-Li prot100).
  Status SysTlbInvalidateRange(hw::Vaddr va, uint32_t pages);
  // Derives a weaker capability (kernel-mediated, needs kGrant).
  Result<cap::Capability> SysDeriveCap(const cap::Capability& cap, uint32_t rights);

  // Protected control transfer (§5.2). Synchronous: runs the callee's
  // protected entry immediately, donating the current slice; returns its
  // reply. Asynchronous: enqueues for delivery when the callee next runs.
  Result<PctArgs> SysPctCall(EnvId callee, const PctArgs& args);
  Status SysPctSend(EnvId callee, const PctArgs& args);

  // Network (§3.2). Binding checks the ASH (already verified at
  // construction) and the region capability.
  Result<dpf::FilterId> SysBindFilter(FilterBindSpec spec, const cap::Capability& region_cap);
  Status SysUnbindFilter(dpf::FilterId id);
  // Pops the next queued packet for a bound filter (non-ASH delivery path).
  Result<std::vector<uint8_t>> SysRecvPacket(dpf::FilterId id);
  // Transmits a raw frame.
  Status SysNetSend(std::span<const uint8_t> frame);

  // Zero-copy packet rings. Binding is a secure-binding operation: the
  // caller must own the filter binding and every region page, and must
  // present a read/write capability for the region's first page. The
  // region is formatted (net::PacketRingView) before frames flow.
  Status SysBindPacketRing(dpf::FilterId id, const PacketRingSpec& spec,
                           const cap::Capability& region_cap);
  // Reverts the binding to the legacy kernel-queue delivery path.
  Status SysUnbindPacketRing(dpf::FilterId id);
  // TX doorbell: transmits up to `max_frames` frames queued in the TX
  // ring (one kernel crossing for the whole batch). Returns the count.
  Result<uint32_t> SysTxRing(dpf::FilterId id, uint32_t max_frames = 0xffffffffu);
  // Ring/queue/drop/doorbell counters for a binding the caller owns.
  Result<PacketStats> SysPacketStats(dpf::FilterId id);

  // Framebuffer binding: assigns a tile's ownership tag to the caller.
  Status SysBindFbTile(uint32_t tile_x, uint32_t tile_y);

  // Kernel event tracing (xtrace). Binding is a secure-binding operation:
  // the caller must own every region page and present a read/write
  // capability for the first. One ring per kernel (the trace is a global
  // hardware resource, like a logic analyser on the bus); records flow
  // until the ring is unbound or a reclaim path severs it
  // (FlushPageBindings / KillEnv, like any other binding). Drop-oldest:
  // the kernel never stalls on a slow reader, it overwrites and counts.
  Status SysBindTraceRing(const TraceRingSpec& spec, const cap::Capability& region_cap);
  Status SysUnbindTraceRing();
  // Appends an application-defined record (Event::kAppMark) to the trace
  // ring. The kernel contributes only mechanism — timestamp, sequencing,
  // attribution to the calling environment; the args carry whatever
  // protocol the emitting library defines (the server libOS uses them for
  // request enter/exit records; see src/exos/server). Succeeds as a no-op
  // when no ring is bound or the mask excludes kAppMark, so instrumented
  // libraries run unmodified without a profiler attached.
  Status SysTraceMark(uint32_t a0, uint32_t a1 = 0, uint32_t a2 = 0, uint32_t a3 = 0);
  // Raw per-environment accounting. Deliberately readable by *any*
  // environment: revocation and scheduling policy live in libraries, and
  // good policy needs global visibility of who holds what (paper §3.4).
  Result<EnvStats> SysEnvStats(EnvId env);
  // Log2 latency histogram for one syscall number (kernel-wide),
  // maintained at the syscall entry/exit hook.
  Result<xtrace::LatencyHist> SysSyscallHist(uint32_t sysno);

  // Disk multiplexing: the kernel protects block extents without
  // understanding file systems (§2: "an exokernel should protect ... disks
  // without understanding file systems"). An extent is a contiguous run of
  // blocks named by a capability; transfers move whole blocks between an
  // extent the caller can access and a frame the caller owns. Transfers
  // block the calling environment until the completion interrupt.
  struct DiskExtentGrant {
    uint32_t extent = 0;      // Extent id (capability resource index).
    uint32_t first_block = 0; // Physical disk block of extent block 0.
    uint32_t blocks = 0;
    cap::Capability cap;
  };
  Result<DiskExtentGrant> SysAllocDiskExtent(uint32_t blocks);
  Status SysFreeDiskExtent(uint32_t extent, const cap::Capability& cap);
  Status SysDiskRead(uint32_t extent, const cap::Capability& extent_cap,
                     uint32_t block_in_extent, hw::PageId frame);
  Status SysDiskWrite(uint32_t extent, const cap::Capability& extent_cap,
                      uint32_t block_in_extent, hw::PageId frame);
  // Write barrier (the flush/ordering point durability policy is built
  // from): blocks until every write the disk has acknowledged is durable.
  // The kernel still understands extents, not file systems — journaling,
  // ordering, and checkpoint policy all live in library code above this.
  // Requires a write capability on an extent the caller can access.
  Status SysDiskBarrier(uint32_t extent, const cap::Capability& extent_cap);

  // Repossession vector (abort protocol, §3.5).
  std::vector<hw::PageId> SysReadRepossessed();

  // Liveness probe: lets a library OS discover that a peer died (its pipe
  // partner, PCT server, ...) without holding that peer's capability.
  bool SysEnvAlive(EnvId env);

  // Forced termination as a syscall: requires a kRevoke-bearing capability
  // for the victim environment (e.g. the env_cap handed out at creation).
  // This is how a supervisor env reaps a wedged child. Killing the calling
  // environment does not return.
  Status SysKillEnv(EnvId victim, const cap::Capability& env_cap);

  // --- Kernel/host-side operations (not syscalls) ---

  // Visible revocation (test/bench driver): ask `victim` to give back
  // `pages` pages; on non-compliance within the handler call, repossess.
  Status RevokePages(EnvId victim, uint32_t pages);

  // Slice revocation: removes up to `slots` slice-vector slots from the
  // victim (highest-index CPUs first), never dropping it below `min_keep`
  // slots overall. Returns the number actually removed.
  uint32_t RevokeSlices(EnvId victim, uint32_t slots, uint32_t min_keep = 1);
  // Filter reclaim: force-unbinds up to `filters` of the victim's packet
  // filters (rings sever, queues drop). Returns the number unbound.
  uint32_t ReclaimFilters(EnvId victim, uint32_t filters);
  // Extent reclaim: kills up to `extents` of the victim's live disk
  // extents (epoch bump voids outstanding caps; in-flight DMA into the
  // extent is unaffected — frames, not extents, gate DMA cancellation),
  // keeping at least `min_keep` live. Returns the number reclaimed.
  uint32_t ReclaimExtents(EnvId victim, uint32_t extents, uint32_t min_keep = 0);

  // Arms the deterministic pressure engine: one-shot revocation events and
  // the storm window are posted to the machine's event queue and applied
  // from the kPressure interrupt handler, clamped by the plan's reserve
  // floor. Sibling of InstallFaultPlan.
  void InstallPressurePlan(const PressurePlan& plan);
  const PressureStats* pressure_stats() const {
    return pressure_ ? &pressure_->stats() : nullptr;
  }

  // Forced termination (crash-safe teardown): reclaims every resource the
  // victim holds — pages (abort-protocol machinery), TLB/STLB bindings,
  // packet-filter bindings and pinned ASH regions, disk extents and
  // in-flight transfers, framebuffer tiles, slice-vector slots, pending
  // PCTs — then broadcasts a death notification so blocked peers re-check
  // their wait conditions. Deferred to the outer return if a protected
  // control transfer is in flight (PCT atomicity). Killing the calling
  // environment does not return.
  Status KillEnv(EnvId victim);

  // Arms the deterministic fault injector: disk transfer errors flow
  // through the attached disk, scheduled events (environment kills,
  // spurious interrupts) are posted to the machine's event queue. Wire
  // faults are armed by handing `fault_injector()` to the hw::Wire.
  void InstallFaultPlan(const hw::FaultPlan& plan);
  hw::FaultInjector* fault_injector() { return injector_.get(); }

  // Kernel self-check: cross-checks every resource table against
  // environment liveness. Host-side (charges no simulated cycles).
  struct AuditReport {
    std::vector<std::string> violations;
    bool ok() const { return violations.empty(); }
  };
  AuditReport AuditInvariants() const;
  // When set, the kernel audits itself after every injected fault
  // (environment kill or failed disk transfer) and records violations.
  void set_audit_on_fault(bool on) { audit_on_fault_ = on; }
  uint64_t audit_failures() const { return audit_failures_; }
  const std::string& first_audit_failure() const { return first_audit_failure_; }
  uint64_t envs_killed() const { return envs_killed_; }
  // True once a FaultPlan power cut landed: Run() returned with every
  // surviving environment abandoned mid-execution, exactly as power loss
  // leaves a real machine.
  bool powered_off() const { return powered_off_; }
  bool EnvAlive(EnvId env) const;

  // Introspection for tests, benches, and the libOS bootstrap.
  hw::Machine& machine() { return machine_; }
  const cap::CapAuthority& authority() const { return authority_; }
  uint32_t free_pages() const;
  EnvId current_env() const { return cur().current; }
  uint64_t slices_of(EnvId env) const;
  // Forced kills whose reap was handed to another CPU via IPI.
  uint64_t remote_kills_sent() const { return remote_kills_sent_; }
  // TLB shootdowns performed (remote CPUs whose TLB actually held the
  // flushed translation).
  uint64_t tlb_shootdowns() const { return tlb_shootdowns_; }
  uint64_t stlb_hits() const { return stlb_hits_; }
  uint64_t stlb_misses() const { return stlb_misses_; }
  uint64_t slice_cycles() const { return config_.slice_cycles; }
  // Host-side stats snapshot (charges nothing, ignores ownership): lets
  // tests and benches inspect a binding's counters after its owner died.
  PacketStats packet_stats(dpf::FilterId id) const;
  // Host-side accounting snapshots (charge nothing); same data as the
  // syscalls, usable after the subject environment died.
  EnvStats env_stats(EnvId env) const;
  const xtrace::LatencyHist& syscall_hist(xtrace::Sys n) const {
    return syscall_hist_[static_cast<uint32_t>(n)];
  }
  bool trace_armed() const { return trace_ != nullptr; }
  // Test-only: skews an environment's pages-held counter without moving
  // any page, so tests can prove the accounting cross-check in
  // AuditInvariants catches a real leak.
  void DebugSkewPageAccounting(EnvId env, int32_t delta);
  // Test-only: skews an environment's slice-slot counter the same way, so
  // tests can prove the per-CPU slice accounting cross-check fires.
  void DebugSkewSliceAccounting(EnvId env, int32_t delta);
  // Disables the software TLB (ablation bench).
  void set_stlb_enabled(bool enabled) { stlb_enabled_ = enabled; }

  // --- hw::TrapSink ---
  hw::TrapOutcome OnException(hw::TrapFrame& frame) override;
  void OnInterrupt(hw::InterruptSource source, uint64_t payload) override;

 private:
  struct PageInfo {
    EnvId owner = kNoEnv;
    uint32_t epoch = 0;
  };

  // Kernel-side state of one bound packet ring. Slot counts and region
  // bounds are recorded here at bind time and trusted thereafter; the
  // kernel's producer/consumer cursors also live here (like a NIC's head
  // register) and are only *published* to the shared header, so nothing
  // the application scribbles into the shared region can steer a kernel
  // access outside it.
  struct RingState {
    bool live = false;
    bool batch_doorbells = true;
    hw::PageId first_page = 0;
    uint32_t pages = 0;
    uint32_t rx_slots = 0;
    uint32_t tx_slots = 0;
    uint32_t shed_watermark = 0;  // Bind-time shed policy (0 = disarmed).
    uint32_t rx_head = 0;  // Kernel RX producer cursor (trusted).
    uint32_t tx_tail = 0;  // Kernel TX consumer cursor (trusted).
  };

  struct FilterBinding {
    // Capacity cap for the legacy kernel queue: a slow consumer drops
    // frames (counted) instead of growing kernel memory without bound.
    static constexpr size_t kMaxQueuedPackets = 64;

    EnvId owner = kNoEnv;
    std::optional<ash::AshProgram> handler;
    hw::PageId region_first_page = 0;
    uint32_t region_pages = 0;
    uint32_t trace_tag_off = 0;  // Frame offset of the kDpfMatch arg3 tag.
    std::deque<std::vector<uint8_t>> queue;  // Non-ASH delivery path.
    RingState ring;
    PacketStats stats;
    bool live = false;
  };

  // Kernel-side state of the bound trace ring. Geometry and mask are
  // recorded at bind time and trusted thereafter; the producer cursor
  // lives here and is only *published* to the shared header (exactly the
  // packet-ring trust model).
  struct TraceState {
    EnvId owner = kNoEnv;
    hw::PageId first_page = 0;
    uint32_t pages = 0;
    uint32_t slots = 0;
    uint32_t mask = 0;
    uint32_t head = 0;      // Trusted free-running producer cursor.
    uint64_t dropped = 0;   // Records overwritten before the reader got them.
  };

  // Trace emission hook. Disarmed (no ring bound) this is one branch on a
  // nullptr; armed, it appends a fixed-format record at the trusted head
  // cursor with drop-oldest semantics. Record stores charge nothing (see
  // costs.h); the per-syscall charge is applied by SyscallScope.
  void Trace(xtrace::Event type, uint32_t a0 = 0, uint32_t a1 = 0, uint32_t a2 = 0,
             uint32_t a3 = 0) {
    if (trace_ == nullptr || (trace_->mask & xtrace::Bit(type)) == 0) {
      return;
    }
    TraceAppend(type, a0, a1, a2, a3);
  }
  void TraceAppend(xtrace::Event type, uint32_t a0, uint32_t a1, uint32_t a2, uint32_t a3);
  // Severs the trace binding (reclaim paths); no further records flow.
  void SeverTraceRing();

  // Entry/exit hook wrapped around every syscall body: counts the call in
  // the caller's accounting, emits enter/exit records, and feeds the
  // kernel-wide log2 latency histogram at exit. Destruction order makes
  // the exit hook run after the syscall's last Charge; fibers abandoned
  // mid-syscall (SysExit, suicide kills, power cut) simply never log an
  // exit — exactly what happened.
  class SyscallScope {
   public:
    SyscallScope(Aegis& kernel, xtrace::Sys number);
    ~SyscallScope();

    SyscallScope(const SyscallScope&) = delete;
    SyscallScope& operator=(const SyscallScope&) = delete;

   private:
    Aegis& kernel_;
    xtrace::Sys number_;
    uint64_t entry_cycle_;
  };

  Env& CurrentEnv();
  Env* FindEnv(EnvId id);

  // Suspends the current environment's fiber and returns to the scheduler.
  void SwitchToKernel();
  // Resumes `env` on its fiber (kernel side).
  void ResumeEnv(Env& env);
  // Delivers queued async PCTs to `env` (runs its handler, charged).
  void DrainMailbox(Env& env);
  // Wakes `env` (kernel-internal paths), latching wakes aimed at runnable
  // environments so racing SysBlocks do not sleep through them.
  void WakeEnvInternal(Env& env);
  // Cross-CPU wake kick: IPIs every parked CPU holding one of `env`'s
  // slice slots so it leaves WaitForInterrupt and rescans. No-op on a
  // single-CPU machine (the one CPU is the caller).
  void NudgeCpusFor(const Env& env);

  // Scheduler helpers. The per-CPU loop body and the slice scan both act
  // on one CPU's slice vector.
  void RunCpu(uint32_t cpu_index);
  EnvId NextRunnable(uint32_t cpu_index);
  bool AnyLive() const;
  // Least-loaded CPU admitted by `mask` (fewest owned slice slots; lowest
  // index breaks ties). Returns kNoCpu if the mask admits none.
  uint32_t PickCpu(uint64_t mask) const;
  // Grants `env` one slot on `cpu_index`'s vector; updates slot accounting.
  Status GrantSlice(Env& env, uint32_t cpu_index);

  // Secure-binding helpers.
  cap::ResourceId PageResource(hw::PageId page) const {
    return cap::ResourceId{cap::ResourceKind::kPhysPage, page};
  }
  cap::ResourceId EnvResource(EnvId env) const {
    return cap::ResourceId{cap::ResourceKind::kEnvironment, env};
  }
  // Breaks every cached binding to `page`: TLB + STLB translations, packet
  // rings, and ASH pinned regions. Called on every frame-reclaim path
  // (dealloc, repossession, teardown) so no binding outlives the frame.
  // On SMP this includes the IPI-driven TLB shootdown of remote CPUs.
  void FlushPageBindings(hw::PageId page);
  // Shootdown halves: invalidate `page`'s (or `asid`'s) translations in
  // every *other* CPU's TLB, charging kIpiCost plus kIpiRemoteInvalidate
  // per entry for each remote CPU whose TLB actually held one.
  void ShootdownRemotePfn(hw::PageId page);
  void ShootdownRemoteAsid(hw::Asid asid);
  // Forcibly repossesses up to `pages` pages from `victim`.
  uint32_t Repossess(Env& victim, uint32_t pages);

  // Pressure-engine internals (kPressure interrupt level). HandlePressure
  // decodes the event-queue cookie (0 = storm tick, n >= 1 = plan event
  // n-1); ApplyPressure clamps by the reserve floor, resolves kAnyEnv to
  // the richest eligible victim (seeded tie-break), and dispatches to the
  // revocation primitives above.
  void HandlePressure(uint64_t cookie);
  void ApplyPressure(PressureKind kind, EnvId victim, uint32_t amount);
  Env* PickPressureVictim(PressureKind kind);
  // Resource an env can still yield under `kind` without breaching the
  // floor (0 = ineligible).
  uint32_t PressureHeadroom(const Env& env, PressureKind kind) const;

  // Reclaims every resource class `env` holds and marks it exited. Shared
  // by SysExit (clean exit) and KillEnv (forced); see KillEnv for the
  // reclamation order.
  void TearDownEnv(Env& env);
  // Runs kills postponed for PCT atomicity; called at outer-PCT return.
  void ProcessDeferredKills();
  // Wakes every blocked peer of a dead environment so it re-checks its
  // wait condition (all kernel/libOS block sites are loop-protected).
  void NotifyEnvDeath(const Env& dead);
  // Audits after an injected fault when set_audit_on_fault is armed.
  void MaybeAuditAfterFault();

  // Network receive path (interrupt level).
  void HandleRxPacket();
  std::span<uint8_t> BindingRegion(FilterBinding& binding);
  // View over a live ring's region, parameterised from the *trusted*
  // binding record (never from the shared header).
  net::PacketRingView RingViewOf(const FilterBinding& binding) const;

  hw::Machine& machine_;
  Config config_;
  hw::PrivPort& priv_;
  cap::CapAuthority authority_;

  std::vector<std::unique_ptr<Env>> envs_;  // Index = EnvId - 1.
  bool running_ = false;
  bool powered_off_ = false;

  // Per-CPU scheduler state: each processor owns a linear vector of time
  // slices (paper §5.1.1 generalised), a kernel-loop fiber slot, and the
  // flags that used to be kernel-global on the uniprocessor. cur() names
  // the executing CPU's state; on a single-CPU machine that is always
  // cpu_[0], which behaves exactly as the old globals did.
  struct CpuSched {
    std::vector<EnvId> slice_vector;
    uint32_t slice_cursor = 0;
    EnvId yield_hint = kNoEnv;  // Directed-yield target (slice donation).
    EnvId current = kNoEnv;
    hw::Fiber kernel_fiber;  // Continuation slot for this CPU's loop.
    bool in_pct = false;
    bool slice_expired_during_pct = false;
    // True only while control is on current's own fiber (between
    // ResumeEnv's switch in and out): the power-cut handler may abandon
    // the environment with SwitchToKernel only then, never from
    // kernel-fiber interrupt delivery (DrainMailbox, WaitForInterrupt).
    bool env_fiber_active = false;
  };
  std::vector<CpuSched> cpu_;
  CpuSched& cur() { return cpu_[machine_.current_cpu()]; }
  const CpuSched& cur() const { return cpu_[machine_.current_cpu()]; }

  // Physical memory bindings.
  std::vector<PageInfo> pages_;
  Stlb stlb_;
  bool stlb_enabled_ = true;
  uint64_t stlb_hits_ = 0;
  uint64_t stlb_misses_ = 0;

  // Network.
  hw::Nic* nic_ = nullptr;
  dpf::DpfEngine classifier_;
  uint64_t classifier_cycles_seen_ = 0;
  std::vector<FilterBinding> bindings_;

  hw::Framebuffer* framebuffer_ = nullptr;

  // Disk extents and in-flight transfers.
  struct DiskExtent {
    uint32_t first_block = 0;
    uint32_t blocks = 0;
    EnvId owner = kNoEnv;
    uint32_t epoch = 0;
    bool live = false;
  };
  Status DiskTransfer(uint32_t extent, const cap::Capability& extent_cap,
                      uint32_t block_in_extent, hw::PageId frame, bool write);
  hw::Disk* disk_ = nullptr;
  std::vector<DiskExtent> extents_;
  uint32_t disk_alloc_cursor_ = 0;
  std::unordered_map<uint64_t, EnvId> disk_waiters_;

  uint32_t live_envs_ = 0;

  // xtrace: the bound event ring (nullptr = disarmed) and the kernel-wide
  // per-syscall latency histograms.
  std::unique_ptr<TraceState> trace_;
  xtrace::LatencyHist syscall_hist_[xtrace::kSysCount];

  // Fault injection and crash-safe teardown.
  std::unique_ptr<hw::FaultInjector> injector_;
  // Resource pressure (revocation campaigns); nullptr when disarmed.
  std::unique_ptr<PressureEngine> pressure_;
  std::vector<EnvId> deferred_kills_;  // Kills postponed by PCT atomicity.
  uint64_t envs_killed_ = 0;
  uint64_t remote_kills_sent_ = 0;  // Reaps handed to another CPU via IPI.
  uint64_t tlb_shootdowns_ = 0;     // Remote TLBs actually invalidated.
  bool audit_on_fault_ = false;
  uint64_t audit_failures_ = 0;
  std::string first_audit_failure_;
};

}  // namespace xok::aegis

#endif  // XOK_SRC_CORE_AEGIS_H_
