// Processor environments (paper §5.1.2): the exokernel's only "process"
// notion. An environment holds the four contexts Aegis needs to deliver
// hardware events to applications — exception context, interrupt (end of
// slice) context, protected entry contexts, and the addressing context —
// plus the execution fiber and the bookkeeping for scheduling, revocation,
// and asynchronous protected control transfers. *Everything else* that a
// traditional OS would put in a process (address-space layout, fds, signal
// state) lives in library operating systems (src/exos, src/ultrix is the
// contrast case).
#ifndef XOK_SRC_CORE_ENV_H_
#define XOK_SRC_CORE_ENV_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/cap/capability.h"
#include "src/core/xtrace.h"
#include "src/hw/fiber.h"
#include "src/hw/trap.h"

namespace xok::aegis {

using EnvId = uint32_t;
inline constexpr EnvId kNoEnv = 0;
inline constexpr EnvId kAnyEnv = 0xffffffffu;

// CPU naming for slice placement. kNoCpu marks "not on any CPU right now";
// kAnyCpu asks the kernel to pick (least-loaded placement).
inline constexpr uint32_t kNoCpu = 0xffffffffu;
inline constexpr uint32_t kAnyCpu = 0xffffffffu;
// EnvSpec cpu_mask value admitting every CPU.
inline constexpr uint64_t kAnyCpuMask = ~0ULL;

// Argument/result "registers" for protected control transfer: the paper
// notes that because Aegis never overwrites application-visible registers,
// the register file doubles as the message buffer (ref [14]).
struct PctArgs {
  std::array<uint32_t, 8> regs{};
};

// What an application exception handler tells the kernel to do.
enum class ExcAction : uint8_t {
  kRetry,  // Handler fixed the cause (e.g. installed a mapping); re-run.
  kSkip,   // Abandon the faulting operation.
};

// The application-level contexts. All run *as the application* (their
// simulated cycles bill to the environment's slice).
struct EnvHandlers {
  // Exception context: receives every hardware exception the kernel cannot
  // satisfy from its own secure-binding caches.
  std::function<ExcAction(const hw::TrapFrame&)> exception;

  // Interrupt context: runs at end-of-slice so the application can save
  // its own state (paper: applications do their own context switching;
  // time beyond the epilogue budget accrues excess-time penalties).
  std::function<void()> timer_epilogue;

  // Protected entry contexts (synchronous and asynchronous PCT).
  std::function<PctArgs(const PctArgs&)> pct_sync;
  std::function<void(const PctArgs&)> pct_async;

  // Revocation context: "please release `pages` physical pages" (visible
  // revocation, paper §3.4). Failure to comply triggers the abort protocol.
  std::function<void(uint32_t pages)> revoke;
};

enum class EnvState : uint8_t {
  kRunnable,
  kBlocked,  // SysBlock'ed; a wake makes it runnable again.
  kExited,
};

struct Env {
  EnvId id = kNoEnv;
  hw::Asid asid = 0;
  EnvState state = EnvState::kRunnable;
  std::unique_ptr<hw::Fiber> fiber;
  EnvHandlers handlers;
  cap::Capability self_cap;  // Grants control (wake, PCT) over this env.

  // Trap nesting of the suspended context (restored on resume).
  int saved_trap_depth = 0;

  // Wake-pending latch: a wake aimed at a runnable environment is
  // remembered, so a SysBlock racing with it (preempted between "set
  // waiting flag" and "block") returns immediately instead of sleeping
  // through a lost wakeup.
  bool wake_pending = false;

  // Scheduling accounting.
  uint64_t slices_run = 0;
  uint32_t excess_penalty = 0;  // Slices to forfeit (epilogue overruns).
  uint64_t epilogue_overruns = 0;

  // --- SMP placement ---
  // CPUs this environment may hold slices on (intersected with the
  // machine's CPU count at birth).
  uint64_t cpu_mask = kAnyCpuMask;
  // CPU currently executing this environment's fiber; kNoCpu when it is
  // not on any CPU. Claimed by the per-CPU scheduler before any cycle is
  // charged, so no two CPUs can resume the same fiber.
  uint32_t on_cpu = kNoCpu;
  // CPU that last ran the environment (migration detection).
  uint32_t last_cpu = 0;
  // Bitmask of CPUs holding at least one of this env's slice slots, kept
  // in step with slice_slots; cross-CPU wakes IPI the parked CPUs in it.
  uint64_t slot_mask = 0;
  // Slice-vector slots currently owned across all CPUs (audit cross-check).
  uint32_t slice_slots = 0;
  // A forced kill aimed at this env is in flight on another CPU (IPI sent);
  // the env must not be rescheduled or migrated meanwhile.
  bool kill_pending = false;

  // Asynchronous PCT mailbox, drained before the env resumes.
  std::deque<PctArgs> mailbox;

  // Pages taken by the abort protocol, awaiting SysReadRepossessed. Bounded:
  // past kMaxRepossessed entries the kernel still reclaims the frame but
  // drops the notification, counting it in counters.repossess_overflow —
  // a libOS that never drains its vector must not grow kernel state.
  static constexpr size_t kMaxRepossessed = 64;
  std::vector<hw::PageId> repossessed;

  // Live page count (for revocation targeting and accounting).
  uint32_t pages_owned = 0;

  // Free-running resource accounting (xtrace): hardware-counter-style,
  // charges nothing, readable via SysEnvStats. The kernel only counts;
  // rates, ratios, and reporting are library policy.
  xtrace::EnvCounters counters;

  // In-flight disk transfer: set before blocking, cleared by the completion
  // interrupt (or by teardown cancelling the request). The result carries
  // injected media errors back to the blocked SysDiskRead/Write caller.
  bool disk_pending = false;
  Status disk_result = Status::kOk;

  // Torn down by KillEnv (forced exit with full resource reclamation), as
  // opposed to a clean SysExit, after which ownership of pages/extents
  // deliberately persists so capabilities already handed to peers keep
  // working.
  bool killed = false;
};

}  // namespace xok::aegis

#endif  // XOK_SRC_CORE_ENV_H_
