#include "src/core/xtrace.h"

#include <cstring>

namespace xok::xtrace {

const char* EventName(Event e) {
  switch (e) {
    case Event::kSyscallEnter: return "syscall_enter";
    case Event::kSyscallExit: return "syscall_exit";
    case Event::kException: return "exception";
    case Event::kStlbFill: return "stlb_fill";
    case Event::kSliceSwitch: return "slice_switch";
    case Event::kYield: return "yield";
    case Event::kRevoke: return "revoke";
    case Event::kRepossess: return "repossess";
    case Event::kInterrupt: return "interrupt";
    case Event::kDpfMatch: return "dpf_match";
    case Event::kDpfDrop: return "dpf_drop";
    case Event::kDiskSubmit: return "disk_submit";
    case Event::kDiskComplete: return "disk_complete";
    case Event::kDiskBarrier: return "disk_barrier";
    case Event::kEnvBirth: return "env_birth";
    case Event::kEnvDeath: return "env_death";
    case Event::kPct: return "pct";
    case Event::kPowerCut: return "power_cut";
    case Event::kMigration: return "migration";
    case Event::kIpi: return "ipi";
    case Event::kTlbShootdown: return "tlb_shootdown";
    case Event::kPressureTick: return "pressure_tick";
    case Event::kSliceRevoke: return "slice_revoke";
    case Event::kFilterReclaim: return "filter_reclaim";
    case Event::kExtentReclaim: return "extent_reclaim";
    case Event::kAppMark: return "app_mark";
  }
  return "unknown";
}

const char* SysName(Sys n) {
  switch (n) {
    case Sys::kNull: return "null";
    case Sys::kGetCycles: return "get_cycles";
    case Sys::kSelf: return "self";
    case Sys::kCpuSlices: return "cpu_slices";
    case Sys::kYield: return "yield";
    case Sys::kBlock: return "block";
    case Sys::kSleep: return "sleep";
    case Sys::kWake: return "wake";
    case Sys::kExit: return "exit";
    case Sys::kAllocPage: return "alloc_page";
    case Sys::kDeallocPage: return "dealloc_page";
    case Sys::kTlbWrite: return "tlb_write";
    case Sys::kTlbInvalidate: return "tlb_invalidate";
    case Sys::kTlbInvalidateRange: return "tlb_invalidate_range";
    case Sys::kDeriveCap: return "derive_cap";
    case Sys::kPctCall: return "pct_call";
    case Sys::kPctSend: return "pct_send";
    case Sys::kBindFilter: return "bind_filter";
    case Sys::kUnbindFilter: return "unbind_filter";
    case Sys::kRecvPacket: return "recv_packet";
    case Sys::kNetSend: return "net_send";
    case Sys::kBindPacketRing: return "bind_packet_ring";
    case Sys::kUnbindPacketRing: return "unbind_packet_ring";
    case Sys::kTxRing: return "tx_ring";
    case Sys::kPacketStats: return "packet_stats";
    case Sys::kBindFbTile: return "bind_fb_tile";
    case Sys::kAllocDiskExtent: return "alloc_disk_extent";
    case Sys::kFreeDiskExtent: return "free_disk_extent";
    case Sys::kDiskRead: return "disk_read";
    case Sys::kDiskWrite: return "disk_write";
    case Sys::kDiskBarrier: return "disk_barrier";
    case Sys::kReadRepossessed: return "read_repossessed";
    case Sys::kEnvAlive: return "env_alive";
    case Sys::kBindTraceRing: return "bind_trace_ring";
    case Sys::kUnbindTraceRing: return "unbind_trace_ring";
    case Sys::kEnvStats: return "env_stats";
    case Sys::kSyscallHist: return "syscall_hist";
    case Sys::kCpuCount: return "cpu_count";
    case Sys::kCurrentCpu: return "current_cpu";
    case Sys::kAllocSlice: return "alloc_slice";
    case Sys::kKillEnv: return "kill_env";
    case Sys::kTraceMark: return "trace_mark";
    case Sys::kCount: break;
  }
  return "unknown";
}

uint32_t TraceRingView::SlotsFor(size_t bytes) {
  if (bytes <= kHeaderBytes) {
    return 0;
  }
  return static_cast<uint32_t>((bytes - kHeaderBytes) / kRecordBytes);
}

Result<TraceRingView> TraceRingView::Attach(std::span<uint8_t> region, uint32_t slots) {
  if (slots == 0 ||
      region.size() < kHeaderBytes + static_cast<size_t>(slots) * kRecordBytes) {
    return Status::kErrInvalidArgs;
  }
  return TraceRingView(region, slots);
}

Result<TraceRingView> TraceRingView::AttachExisting(std::span<uint8_t> region) {
  if (region.size() < kHeaderBytes) {
    return Status::kErrInvalidArgs;
  }
  TraceRingView probe(region, 1);
  if (probe.LoadU32(kMagicOff) != kMagic) {
    return Status::kErrBadState;
  }
  return Attach(region, probe.LoadU32(kSlotsOff));
}

Result<TraceRingView> TraceRingView::Format(std::span<uint8_t> region, uint32_t slots,
                                            uint32_t mask) {
  Result<TraceRingView> view = Attach(region, slots);
  if (!view.ok()) {
    return view;
  }
  std::memset(region.data(), 0, kHeaderBytes);
  view->StoreU32(kMagicOff, kMagic);
  view->StoreU32(kSlotsOff, slots);
  view->StoreU32(kMaskOff, mask);
  return view;
}

uint32_t TraceRingView::LoadU32(size_t off) const {
  uint32_t v;
  std::memcpy(&v, base_ + off, sizeof(v));
  return v;
}

uint64_t TraceRingView::LoadU64(size_t off) const {
  uint64_t v;
  std::memcpy(&v, base_ + off, sizeof(v));
  return v;
}

void TraceRingView::StoreU32(size_t off, uint32_t v) {
  std::memcpy(base_ + off, &v, sizeof(v));
}

void TraceRingView::StoreU64(size_t off, uint64_t v) {
  std::memcpy(base_ + off, &v, sizeof(v));
}

void TraceRingView::Write(uint32_t index, const Record& record) {
  std::memcpy(base_ + SlotOff(index), &record, kRecordBytes);
}

Record TraceRingView::Read(uint32_t index) const {
  Record record;
  std::memcpy(&record, base_ + SlotOff(index), kRecordBytes);
  return record;
}

}  // namespace xok::xtrace
