#include "src/core/aegis.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/net/pktring.h"

namespace xok::aegis {

using cap::Capability;
using hw::Instr;

Aegis::Aegis(hw::Machine& machine, const Config& config)
    : machine_(machine),
      config_(config),
      priv_(machine.InstallKernel(this)),
      authority_(cap::SipKey{config.cap_key0, config.cap_key1}),
      cpu_(machine.cpu_count()),
      pages_(machine.mem().page_count()) {
  for (CpuSched& cpu : cpu_) {
    cpu.slice_vector.assign(config.slice_count, kNoEnv);
  }
}

Aegis::Aegis(hw::Machine& machine) : Aegis(machine, Config{}) {}

Aegis::~Aegis() = default;

// --- xtrace hooks ---

Aegis::SyscallScope::SyscallScope(Aegis& kernel, xtrace::Sys number)
    : kernel_(kernel), number_(number), entry_cycle_(kernel.machine_.clock().now()) {
  Env* env = kernel_.FindEnv(kernel_.cur().current);
  if (env != nullptr) {
    ++env->counters.syscalls[static_cast<uint32_t>(number)];
  }
  kernel_.Trace(xtrace::Event::kSyscallEnter, static_cast<uint32_t>(number));
}

Aegis::SyscallScope::~SyscallScope() {
  const uint64_t latency = kernel_.machine_.clock().now() - entry_cycle_;
  kernel_.syscall_hist_[static_cast<uint32_t>(number_)].Add(latency);
  if (kernel_.trace_ != nullptr &&
      (kernel_.trace_->mask & xtrace::kMaskSyscalls) != 0) {
    kernel_.Trace(xtrace::Event::kSyscallExit, static_cast<uint32_t>(number_),
                  static_cast<uint32_t>(latency), static_cast<uint32_t>(latency >> 32));
    // The only simulated cost of an armed ring on the syscall path: the
    // record stores sink into the write buffer, the head publish does not.
    kernel_.machine_.Charge(kTraceArmedSyscall);
  }
}

void Aegis::TraceAppend(xtrace::Event type, uint32_t a0, uint32_t a1, uint32_t a2,
                        uint32_t a3) {
  TraceState& trace = *trace_;
  std::span<uint8_t> region = machine_.mem().RangeSpan(trace.first_page, trace.pages);
  // Cannot fail: geometry was validated at bind time and is re-derived
  // from the trusted binding record, never from the shared header.
  xtrace::TraceRingView view = *xtrace::TraceRingView::Attach(region, trace.slots);
  // Drop-oldest: the kernel never stalls on a slow reader. The tail is
  // application memory and untrusted — a scribbled value at worst
  // misreports the owner's own drop counter.
  if (trace.head - view.tail() >= trace.slots) {
    ++trace.dropped;
    view.set_dropped(trace.dropped);
  }
  xtrace::Record record;
  record.cycle = machine_.clock().now();
  record.seq = trace.head;
  record.type = static_cast<uint16_t>(type);
  record.env = static_cast<uint16_t>(cur().current);
  record.arg0 = a0;
  record.arg1 = a1;
  record.arg2 = a2;
  record.arg3 = a3;
  view.Write(trace.head, record);
  ++trace.head;
  view.set_head(trace.head);
}

void Aegis::SeverTraceRing() { trace_.reset(); }

Env& Aegis::CurrentEnv() {
  Env* env = FindEnv(cur().current);
  if (env == nullptr) {
    std::fprintf(stderr, "aegis: syscall outside any environment\n");
    std::abort();
  }
  return *env;
}

Env* Aegis::FindEnv(EnvId id) {
  if (id == kNoEnv || id > envs_.size()) {
    return nullptr;
  }
  return envs_[id - 1].get();
}

// --- Environment lifecycle ---

Result<EnvGrant> Aegis::CreateEnv(EnvSpec spec) {
  if (envs_.size() >= config_.max_envs) {
    return Status::kErrNoResources;
  }
  if (!spec.entry) {
    return Status::kErrInvalidArgs;
  }
  // Placement: every birth slice lands on the least-loaded CPU the spec's
  // mask admits (lowest index breaks ties); SysAllocSlice spans others
  // later. On a single-CPU machine this is always CPU 0.
  const uint32_t ncpus = machine_.cpu_count();
  const uint64_t machine_mask = ncpus >= 64 ? ~0ULL : (1ULL << ncpus) - 1;
  const uint64_t cpu_mask = spec.cpu_mask & machine_mask;
  if (cpu_mask == 0) {
    return Status::kErrInvalidArgs;
  }
  const uint32_t home = PickCpu(cpu_mask);
  // Allocate time-slice vector positions (each CPU is a linear vector of
  // slices; an environment without a slice never runs).
  uint32_t free_slots = 0;
  for (EnvId owner : cpu_[home].slice_vector) {
    free_slots += (owner == kNoEnv) ? 1 : 0;
  }
  if (free_slots < spec.slices) {
    return Status::kErrNoResources;
  }

  const EnvId id = static_cast<EnvId>(envs_.size() + 1);
  auto env = std::make_unique<Env>();
  env->id = id;
  env->asid = static_cast<hw::Asid>(id);
  env->handlers = std::move(spec.handlers);
  env->self_cap = authority_.Mint(EnvResource(id), cap::kAllRights, 0);
  auto entry = std::move(spec.entry);
  env->fiber = std::make_unique<hw::Fiber>([this, entry = std::move(entry)]() {
    entry();
    SysExit();  // Entries that "return" exit cleanly.
  });

  env->cpu_mask = cpu_mask;
  env->last_cpu = home;
  for (uint32_t granted = 0; granted < spec.slices; ++granted) {
    (void)GrantSlice(*env, home);  // Cannot fail: capacity checked above.
  }

  const EnvGrant grant{id, env->self_cap};
  envs_.push_back(std::move(env));
  ++live_envs_;
  Trace(xtrace::Event::kEnvBirth, id);
  if (running_) {
    // Mid-run birth (e.g. a supervisor respawning a child): the home CPU
    // may be parked with an empty event queue, and a parked CPU only
    // rescans its slice vector when something wakes it.
    NudgeCpusFor(*envs_.back());
  }
  return grant;
}

void Aegis::SysExit() {
  Env& env = CurrentEnv();
  // Manual syscall accounting: SysExit never returns, so the RAII scope
  // other syscalls use would never run its exit half.
  ++env.counters.syscalls[static_cast<uint32_t>(xtrace::Sys::kExit)];
  Trace(xtrace::Event::kSyscallEnter, static_cast<uint32_t>(xtrace::Sys::kExit));
  Trace(xtrace::Event::kEnvDeath, env.id, /*killed=*/0);
  env.state = EnvState::kExited;
  --live_envs_;
  // Clean exit releases the CPU and the addressing context but NOT pages
  // or disk extents: their ownership (and the capabilities minted from it)
  // deliberately outlives the environment, so the common "allocate a
  // shared buffer, hand the capability to a peer, exit" pattern works.
  // Forced termination (KillEnv) reclaims everything instead.
  for (CpuSched& cpu : cpu_) {
    for (EnvId& owner : cpu.slice_vector) {
      if (owner == env.id) {
        owner = kNoEnv;
      }
    }
    if (cpu.yield_hint == env.id) {
      cpu.yield_hint = kNoEnv;
    }
  }
  env.slice_slots = 0;
  env.slot_mask = 0;
  env.mailbox.clear();
  env.wake_pending = false;
  priv_.TlbFlushAsid(env.asid);
  stlb_.FlushAsid(env.asid);
  ShootdownRemoteAsid(env.asid);
  SwitchToKernel();
  std::fprintf(stderr, "aegis: exited environment resumed\n");
  std::abort();
}

// Crash-safe teardown (forced exit only): every resource class the
// environment holds is reclaimed here, in dependency order — devices that
// DMA into its frames first, then the frames themselves, then the cached
// bindings naming them.
void Aegis::TearDownEnv(Env& env) {
  // Emit the death record *before* reclamation: if the observer is a peer
  // its ring is untouched; if the victim owns the ring itself, the record
  // still lands in RAM (readable post-mortem) before the binding is
  // severed below.
  Trace(xtrace::Event::kEnvDeath, env.id, /*killed=*/1);
  // The reaper runs with interrupts masked: between marking the env dead
  // and finishing the resource sweep the ledger is transiently
  // inconsistent, and an interrupt handler landing on one of the sweep's
  // charges (a disk-fault completion or pressure burst, both of which
  // audit) would observe — and flag — the half-torn state. Events queue
  // while masked and deliver at the first charge after restore.
  const bool irq_state = priv_.interrupts_enabled();
  priv_.SetInterruptsEnabled(false);
  env.state = EnvState::kExited;
  env.killed = true;
  --live_envs_;

  // CPU: slice-vector slots on every processor and any donation aimed at
  // the corpse.
  for (CpuSched& cpu : cpu_) {
    machine_.Charge(Instr(2) * cpu.slice_vector.size());
    for (EnvId& owner : cpu.slice_vector) {
      if (owner == env.id) {
        owner = kNoEnv;
      }
    }
    if (cpu.yield_hint == env.id) {
      cpu.yield_hint = kNoEnv;
    }
  }
  env.slice_slots = 0;
  env.slot_mask = 0;
  env.kill_pending = false;
  env.on_cpu = kNoCpu;

  // Pending PCTs and the repossession vector die with the environment.
  env.mailbox.clear();
  env.repossessed.clear();
  env.wake_pending = false;

  // Packet-filter bindings: the classifier must stop steering frames at a
  // dead owner, and the pinned ASH regions are released with the pages.
  for (dpf::FilterId id = 0; id < bindings_.size(); ++id) {
    FilterBinding& binding = bindings_[id];
    if (binding.live && binding.owner == env.id) {
      machine_.Charge(Instr(10));
      binding.live = false;
      binding.queue.clear();
      binding.handler.reset();
      // The ring region's pages return to the free pool below; the binding
      // must stop naming them first so no late frame lands in a reclaimed
      // (and possibly reallocated) frame. Stats survive for post-mortems.
      binding.ring = RingState{};
      (void)classifier_.Remove(id);
    }
  }

  // Disk: cancel in-flight DMA targeting the victim's frames (they return
  // to the free pool below and may be reallocated before the latency
  // window closes), then drop its waiter registrations.
  if (disk_ != nullptr) {
    const std::vector<uint64_t> cancelled =
        disk_->CancelIf([this, &env](hw::PageId frame) {
          return frame < pages_.size() && pages_[frame].owner == env.id;
        });
    for (uint64_t request : cancelled) {
      disk_waiters_.erase(request);
    }
  }
  for (auto it = disk_waiters_.begin(); it != disk_waiters_.end();) {
    it = (it->second == env.id) ? disk_waiters_.erase(it) : std::next(it);
  }
  env.disk_pending = false;

  // Disk extents: epoch bump kills outstanding extent capabilities.
  for (DiskExtent& extent : extents_) {
    if (extent.live && extent.owner == env.id) {
      machine_.Charge(Instr(4));
      extent.live = false;
      ++extent.epoch;
    }
  }

  // Physical pages: the abort-protocol machinery (break bindings by
  // force), minus the repossession vector — there is no one left to read it.
  for (hw::PageId p = 0; p < pages_.size(); ++p) {
    if (pages_[p].owner == env.id) {
      pages_[p].owner = kNoEnv;
      ++pages_[p].epoch;
      FlushPageBindings(p);
    }
  }
  env.pages_owned = 0;

  // Trace ring: FlushPageBindings severed it if it spanned a reclaimed
  // frame; a ring bound by the victim but somehow spanning no reclaimed
  // frame must die here too — nobody is left to read it.
  if (trace_ != nullptr && trace_->owner == env.id) {
    SeverTraceRing();
  }

  // Addressing context: no stale translation may outlive the environment,
  // on this CPU or any other.
  priv_.TlbFlushAsid(env.asid);
  stlb_.FlushAsid(env.asid);
  ShootdownRemoteAsid(env.asid);

  // Framebuffer ownership tags.
  if (framebuffer_ != nullptr) {
    framebuffer_->ClearOwner(env.id);
  }

  priv_.SetInterruptsEnabled(irq_state);
}

void Aegis::NotifyEnvDeath(const Env& dead) {
  // Forced deaths are broadcast: a peer blocked on the corpse (pipe wait,
  // PCT reply, disk completion that was cancelled) re-checks its condition
  // and observes the death via SysEnvAlive. Runnable peers get the
  // wake-pending latch instead — one may already have concluded "peer
  // alive, ring empty" and be on its way into SysBlock, which must then
  // return immediately rather than sleep through the only notification.
  // Clean exits stay silent — a well-behaved environment finishes its
  // protocols before exiting, and waking sleepers for every exit would
  // break directed-wake semantics.
  for (const auto& other : envs_) {
    if (other->id != dead.id && other->state != EnvState::kExited) {
      WakeEnvInternal(*other);
    }
  }
}

Status Aegis::KillEnv(EnvId victim_id) {
  Env* victim = FindEnv(victim_id);
  if (victim == nullptr || victim->state == EnvState::kExited) {
    return Status::kErrNotFound;
  }
  if (cur().in_pct) {
    // PCT atomicity: the transfer cannot be diverted between initiation
    // and entry; the kill lands when the outermost transfer returns.
    deferred_kills_.push_back(victim_id);
    return Status::kOk;
  }
  for (const CpuSched& cpu : cpu_) {
    if (&cpu != &cur() && cpu.in_pct && cpu.current == victim_id) {
      // The victim is the callee of a transfer in flight on another CPU;
      // that CPU runs the deferred kill at its outer return.
      deferred_kills_.push_back(victim_id);
      return Status::kOk;
    }
  }
  if (victim->on_cpu != kNoCpu && victim->on_cpu != machine_.current_cpu()) {
    // The victim is executing on another processor: this CPU cannot tear
    // down a fiber that is live over there. Send a reap IPI; the target
    // kills the victim from its own context at the next charge boundary,
    // exactly as a locally delivered fault interrupt would.
    if (!victim->kill_pending) {
      const uint32_t target = victim->on_cpu;
      victim->kill_pending = true;
      machine_.Charge(kIpiCost);
      Trace(xtrace::Event::kIpi, target, victim_id);
      Env* initiator = FindEnv(cur().current);
      if (initiator != nullptr) {
        ++initiator->counters.ipis_sent;
      }
      ++remote_kills_sent_;
      priv_.SendIpi(target, victim_id);
    }
    return Status::kOk;
  }
  const bool suicide = (victim_id == cur().current);
  TearDownEnv(*victim);
  ++envs_killed_;
  NotifyEnvDeath(*victim);
  MaybeAuditAfterFault();
  if (suicide) {
    // Killed from its own context (fault interrupt at a charge boundary):
    // the fiber is abandoned, never to be resumed.
    SwitchToKernel();
    std::fprintf(stderr, "aegis: killed environment resumed\n");
    std::abort();
  }
  return Status::kOk;
}

void Aegis::ProcessDeferredKills() {
  if (deferred_kills_.empty()) {
    return;
  }
  std::vector<EnvId> kills = std::move(deferred_kills_);
  deferred_kills_.clear();
  bool suicide = false;
  for (EnvId id : kills) {
    if (id == cur().current) {
      suicide = true;
      continue;
    }
    Env* victim = FindEnv(id);
    if (victim == nullptr || victim->state == EnvState::kExited) {
      continue;
    }
    if (victim->on_cpu != kNoCpu && victim->on_cpu != machine_.current_cpu()) {
      (void)KillEnv(id);  // Re-route: the reap belongs to the CPU running it.
      continue;
    }
    TearDownEnv(*victim);
    ++envs_killed_;
    NotifyEnvDeath(*victim);
  }
  MaybeAuditAfterFault();
  if (suicide) {
    Env& env = CurrentEnv();
    TearDownEnv(env);
    ++envs_killed_;
    NotifyEnvDeath(env);
    MaybeAuditAfterFault();
    SwitchToKernel();
    std::fprintf(stderr, "aegis: killed environment resumed\n");
    std::abort();
  }
}

// --- Fiber plumbing ---

void Aegis::SwitchToKernel() {
  Env& env = CurrentEnv();
  // Interrupt masking follows the context: save this context's trap depth
  // and run the kernel scheduler unmasked. ResumeEnv restores it.
  env.saved_trap_depth = priv_.SwapTrapDepth(0);
  hw::Fiber::Switch(*env.fiber, cur().kernel_fiber);
}

void Aegis::ResumeEnv(Env& env) {
  priv_.SwapTrapDepth(env.saved_trap_depth);
  cur().env_fiber_active = true;
  hw::Fiber::Switch(cur().kernel_fiber, *env.fiber);
  cur().env_fiber_active = false;
  priv_.SwapTrapDepth(0);  // Back on the kernel fiber.
}

void Aegis::DrainMailbox(Env& env) {
  while (!env.mailbox.empty() && env.state != EnvState::kExited) {
    const PctArgs args = env.mailbox.front();
    env.mailbox.pop_front();
    machine_.Charge(kPctOneWay);
    if (env.handlers.pct_async) {
      env.handlers.pct_async(args);
    }
  }
}

void Aegis::WakeEnvInternal(Env& env) {
  if (env.state == EnvState::kBlocked) {
    env.state = EnvState::kRunnable;
    NudgeCpusFor(env);
  } else if (env.state == EnvState::kRunnable) {
    env.wake_pending = true;
  }
}

void Aegis::NudgeCpusFor(const Env& env) {
  if (machine_.cpu_count() <= 1) {
    return;  // The one CPU is the caller; its loop rescans on its own.
  }
  // An env with no slots yet can be picked up by any CPU's idle fallback.
  const uint64_t mask = env.slot_mask != 0 ? env.slot_mask : ~0ULL;
  for (uint32_t k = 0; k < machine_.cpu_count(); ++k) {
    if ((mask & (1ULL << k)) == 0 || k == machine_.current_cpu()) {
      continue;
    }
    if (machine_.CpuParked(k)) {
      Trace(xtrace::Event::kIpi, k, 0);
      priv_.SendIpi(k, 0);  // Payload 0: reschedule; waking alone suffices.
    }
  }
}

// --- Scheduler (paper §5.1.1) ---

bool Aegis::AnyLive() const { return live_envs_ > 0; }

EnvId Aegis::NextRunnable(uint32_t cpu_index) {
  CpuSched& cpu = cpu_[cpu_index];
  const uint32_t n = static_cast<uint32_t>(cpu.slice_vector.size());
  for (uint32_t step = 0; step < n; ++step) {
    const uint32_t pos = (cpu.slice_cursor + step) % n;
    const EnvId id = cpu.slice_vector[pos];
    Env* env = FindEnv(id);
    if (env == nullptr || env->state != EnvState::kRunnable ||
        env->on_cpu != kNoCpu || env->kill_pending) {
      continue;
    }
    if (env->excess_penalty > 0) {
      // Pay for excess time consumed in a past epilogue by forfeiting this
      // slice.
      --env->excess_penalty;
      continue;
    }
    cpu.slice_cursor = pos + 1;
    return id;
  }
  return kNoEnv;
}

uint32_t Aegis::PickCpu(uint64_t mask) const {
  uint32_t best = kNoCpu;
  uint32_t best_load = 0;
  for (uint32_t k = 0; k < machine_.cpu_count() && k < 64; ++k) {
    if ((mask & (1ULL << k)) == 0) {
      continue;
    }
    uint32_t load = 0;
    for (EnvId owner : cpu_[k].slice_vector) {
      load += (owner != kNoEnv) ? 1 : 0;
    }
    if (best == kNoCpu || load < best_load) {
      best = k;
      best_load = load;
    }
  }
  return best;
}

Status Aegis::GrantSlice(Env& env, uint32_t cpu_index) {
  for (EnvId& owner : cpu_[cpu_index].slice_vector) {
    if (owner == kNoEnv) {
      owner = env.id;
      ++env.slice_slots;
      env.slot_mask |= 1ULL << cpu_index;
      return Status::kOk;
    }
  }
  return Status::kErrNoResources;
}

void Aegis::Run() {
  running_ = true;
  if (machine_.cpu_count() == 1) {
    RunCpu(0);  // On the calling fiber, exactly as the uniprocessor did.
  } else {
    std::vector<std::function<void()>> bodies;
    for (uint32_t k = 0; k < machine_.cpu_count(); ++k) {
      bodies.push_back([this, k]() { RunCpu(k); });
    }
    machine_.RunCpus(std::move(bodies));
  }
  running_ = false;
}


void Aegis::RunCpu(uint32_t cpu_index) {
  CpuSched& cpu = cpu_[cpu_index];
  while (AnyLive() && !powered_off_) {
    EnvId next = kNoEnv;
    bool donated = false;
    if (cpu.yield_hint != kNoEnv) {
      Env* target = FindEnv(cpu.yield_hint);
      cpu.yield_hint = kNoEnv;
      if (target != nullptr && target->state == EnvState::kRunnable &&
          target->on_cpu == kNoCpu && !target->kill_pending) {
        next = target->id;
        donated = true;
      }
    }
    if (next == kNoEnv) {
      next = NextRunnable(cpu_index);
    }
    if (next == kNoEnv) {
      // Excess-time penalties only bite under contention: if every
      // runnable environment was skipped for penalties this pass, run one
      // anyway rather than idling the processor. A CPU prefers envs
      // holding one of its slots; an env with no slots anywhere may land
      // on any processor.
      for (const auto& env : envs_) {
        if (env->state == EnvState::kRunnable && env->on_cpu == kNoCpu &&
            !env->kill_pending &&
            (machine_.cpu_count() == 1 || env->slot_mask == 0 ||
             (env->slot_mask & (1ULL << cpu_index)) != 0)) {
          next = env->id;
          break;
        }
      }
    }
    if (next == kNoEnv) {
      priv_.ClearSliceDeadline();
      // That clear charged cycles, and any charge may deliver a due
      // interrupt (in a World it may even yield to another machine
      // first, advancing the clock by thousands of cycles). If the
      // delivery woke an env, parking now would strand a runnable env
      // behind an empty event queue — a lost wakeup. Re-scan before
      // committing to idle.
      bool woke = false;
      for (const auto& env : envs_) {
        if (env->state == EnvState::kRunnable && env->on_cpu == kNoCpu &&
            !env->kill_pending) {
          woke = true;
          break;
        }
      }
      if (!woke) machine_.WaitForInterrupt();
      continue;
    }
    Env& env = *FindEnv(next);
    env.on_cpu = cpu_index;  // Claim before the first charge: no sibling
                             // may pick this env while its resume is set up.
    priv_.SetAsid(env.asid);
    if (!donated || !priv_.slice_armed()) {
      priv_.SetSliceDeadline(machine_.clock().now() + config_.slice_cycles);
    }
    ++env.slices_run;
    cpu.current = next;
    if (cpu_index != env.last_cpu) {
      ++env.counters.migrations;
      Trace(xtrace::Event::kMigration, env.last_cpu, cpu_index);
      env.last_cpu = cpu_index;
    }
    Trace(xtrace::Event::kSliceSwitch, donated ? 1u : 0u);
    const uint64_t resumed_at = machine_.clock().now();
    DrainMailbox(env);
    if (env.state == EnvState::kRunnable && !powered_off_) {
      ResumeEnv(env);
    }
    env.counters.cycles_on_cpu += machine_.clock().now() - resumed_at;
    env.on_cpu = kNoCpu;
    cpu.current = kNoEnv;
  }
  priv_.ClearSliceDeadline();
}

// --- Basic syscalls ---

void Aegis::SysNull() {
  SyscallScope scope(*this, xtrace::Sys::kNull);
  machine_.Charge(kSyscallEntry + kSyscallExit);
}

uint64_t Aegis::SysGetCycles() {
  SyscallScope scope(*this, xtrace::Sys::kGetCycles);
  machine_.Charge(Instr(3));  // Guaranteed-register pseudo-instruction.
  return machine_.clock().now();
}

EnvId Aegis::SysSelf() {
  SyscallScope scope(*this, xtrace::Sys::kSelf);
  machine_.Charge(Instr(2));
  return cur().current;
}

uint32_t Aegis::SysCpuSlices() {
  SyscallScope scope(*this, xtrace::Sys::kCpuSlices);
  machine_.Charge(Instr(2));
  return static_cast<uint32_t>(cur().slice_vector.size());
}

uint32_t Aegis::SysCpuCount() {
  SyscallScope scope(*this, xtrace::Sys::kCpuCount);
  machine_.Charge(Instr(2));  // PRId/config register read.
  return machine_.cpu_count();
}

uint32_t Aegis::SysCurrentCpu() {
  SyscallScope scope(*this, xtrace::Sys::kCurrentCpu);
  machine_.Charge(Instr(2));
  return machine_.current_cpu();
}

Status Aegis::SysAllocSlice(uint32_t cpu) {
  SyscallScope scope(*this, xtrace::Sys::kAllocSlice);
  machine_.Charge(kSyscallEntry + Instr(10) + kSyscallExit);
  Env& env = CurrentEnv();
  uint32_t target = cpu;
  if (cpu == kAnyCpu) {
    target = PickCpu(env.cpu_mask);
  } else if (cpu >= machine_.cpu_count() || cpu >= 64 ||
             (env.cpu_mask & (1ULL << cpu)) == 0) {
    return Status::kErrInvalidArgs;
  }
  if (target == kNoCpu) {
    return Status::kErrInvalidArgs;
  }
  return GrantSlice(env, target);
}

void Aegis::SysYield(EnvId target) {
  SyscallScope scope(*this, xtrace::Sys::kYield);
  Trace(xtrace::Event::kYield, target);
  machine_.Charge(kSyscallEntry + kYieldPath);
  if (target != kAnyEnv && target != kNoEnv) {
    // Directed yield donates the rest of the current slice to `target`.
    cur().yield_hint = target;
  } else {
    priv_.ClearSliceDeadline();  // Give up the remainder.
  }
  SwitchToKernel();
  machine_.Charge(kSyscallExit);
}

void Aegis::SysBlock() {
  SyscallScope scope(*this, xtrace::Sys::kBlock);
  machine_.Charge(kSyscallEntry + Instr(6));
  Env& env = CurrentEnv();
  if (env.wake_pending) {
    env.wake_pending = false;  // A wake raced ahead of us: don't sleep.
    machine_.Charge(kSyscallExit);
    return;
  }
  env.state = EnvState::kBlocked;
  priv_.ClearSliceDeadline();
  SwitchToKernel();
  machine_.Charge(kSyscallExit);
}

void Aegis::SysSleep(uint64_t cycles) {
  SyscallScope scope(*this, xtrace::Sys::kSleep);
  machine_.Charge(kSyscallEntry + Instr(6));
  priv_.ScheduleEvent(cycles, hw::InterruptSource::kAlarm, cur().current);
  SysBlock();
}

Status Aegis::SysWake(EnvId id, const Capability& env_cap) {
  SyscallScope scope(*this, xtrace::Sys::kWake);
  machine_.Charge(kSyscallEntry + kCapCheck + kSyscallExit);
  Env* env = FindEnv(id);
  if (env == nullptr || env->state == EnvState::kExited) {
    return Status::kErrNotFound;
  }
  if (!authority_.Check(env_cap, EnvResource(id), cap::kWrite, 0)) {
    return Status::kErrAccessDenied;
  }
  if (env->state == EnvState::kBlocked) {
    env->state = EnvState::kRunnable;
    NudgeCpusFor(*env);
  } else {
    env->wake_pending = true;  // Latch: a racing SysBlock returns at once.
  }
  return Status::kOk;
}

// --- Physical memory: secure bindings ---

uint32_t Aegis::free_pages() const {
  uint32_t n = 0;
  for (const PageInfo& page : pages_) {
    n += (page.owner == kNoEnv) ? 1 : 0;
  }
  return n;
}

uint64_t Aegis::slices_of(EnvId id) const {
  if (id == kNoEnv || id > envs_.size()) {
    return 0;
  }
  return envs_[id - 1]->slices_run;
}

Result<PageGrant> Aegis::SysAllocPage(hw::PageId requested) {
  SyscallScope scope(*this, xtrace::Sys::kAllocPage);
  machine_.Charge(kSyscallEntry + Instr(20) + kSyscallExit);
  Env& env = CurrentEnv();
  hw::PageId page = requested;
  if (requested == kAnyPage) {
    page = pages_.size();
    for (hw::PageId p = 0; p < pages_.size(); ++p) {
      if (pages_[p].owner == kNoEnv) {
        page = p;
        break;
      }
    }
  }
  // Exposing physical names: a specific request succeeds iff that exact
  // frame is free (the libOS participates in every allocation decision).
  if (page >= pages_.size()) {
    return Status::kErrNoResources;
  }
  if (pages_[page].owner != kNoEnv) {
    return Status::kErrAlreadyExists;
  }
  pages_[page].owner = env.id;
  ++env.pages_owned;
  return PageGrant{page, authority_.Mint(PageResource(page), cap::kAllRights,
                                         pages_[page].epoch)};
}

Status Aegis::SysDeallocPage(hw::PageId page, const Capability& cap) {
  SyscallScope scope(*this, xtrace::Sys::kDeallocPage);
  machine_.Charge(kSyscallEntry + kCapCheck + Instr(10) + kSyscallExit);
  if (page >= pages_.size() || pages_[page].owner == kNoEnv) {
    return Status::kErrNotFound;
  }
  if (!authority_.Check(cap, PageResource(page), cap::kRevoke, pages_[page].epoch)) {
    return Status::kErrAccessDenied;
  }
  Env* owner = FindEnv(pages_[page].owner);
  if (owner != nullptr && owner->pages_owned > 0) {
    --owner->pages_owned;
  }
  pages_[page].owner = kNoEnv;
  ++pages_[page].epoch;  // Outstanding capabilities die here.
  FlushPageBindings(page);
  return Status::kOk;
}

Status Aegis::SysTlbWrite(hw::Vaddr va, hw::PageId page, bool writable, const Capability& cap) {
  SyscallScope scope(*this, xtrace::Sys::kTlbWrite);
  machine_.Charge(kSyscallEntry + kCapCheck);
  if (page >= pages_.size()) {
    machine_.Charge(kSyscallExit);
    return Status::kErrOutOfRange;
  }
  const uint32_t required = cap::kRead | (writable ? cap::kWrite : 0u);
  if (!authority_.Check(cap, PageResource(page), required, pages_[page].epoch)) {
    machine_.Charge(kSyscallExit);
    return Status::kErrAccessDenied;
  }
  const hw::Asid asid = CurrentEnv().asid;
  hw::TlbEntry entry;
  entry.vpn = hw::VpnOf(va);
  entry.asid = asid;
  entry.pfn = page;
  entry.valid = true;
  entry.writable = writable;
  priv_.TlbWriteRandom(entry);
  machine_.Charge(kStlbInsert);
  stlb_.Insert(entry.vpn, asid, page, writable);
  machine_.Charge(kSyscallExit);
  return Status::kOk;
}

Status Aegis::SysTlbInvalidate(hw::Vaddr va) {
  SyscallScope scope(*this, xtrace::Sys::kTlbInvalidate);
  machine_.Charge(kSyscallEntry + Instr(4) + kSyscallExit);
  const hw::Asid asid = CurrentEnv().asid;
  priv_.TlbInvalidate(hw::VpnOf(va), asid);
  stlb_.Invalidate(hw::VpnOf(va), asid);
  return Status::kOk;
}

Status Aegis::SysTlbInvalidateRange(hw::Vaddr va, uint32_t pages) {
  SyscallScope scope(*this, xtrace::Sys::kTlbInvalidateRange);
  machine_.Charge(kSyscallEntry);
  const hw::Asid asid = CurrentEnv().asid;
  for (uint32_t i = 0; i < pages; ++i) {
    const hw::Vpn vpn = hw::VpnOf(va + i * hw::kPageBytes);
    machine_.Charge(Instr(2));
    machine_.tlb().Invalidate(vpn, asid);
    stlb_.Invalidate(vpn, asid);
  }
  machine_.Charge(kSyscallExit);
  return Status::kOk;
}

Result<Capability> Aegis::SysDeriveCap(const Capability& cap, uint32_t rights) {
  SyscallScope scope(*this, xtrace::Sys::kDeriveCap);
  machine_.Charge(kSyscallEntry + 2 * kCapCheck + kSyscallExit);
  return authority_.Derive(cap, rights);
}

// TLB shootdown, the software half: invalidate a reclaimed translation in
// every *other* CPU's TLB. Synchronous, as real shootdowns are — the
// initiator may not reuse the frame (or the asid) until every CPU has
// dropped it, so the remote vectoring and invalidation bill to the
// initiator: kIpiCost per remote CPU whose TLB actually held a matching
// entry, plus kIpiRemoteInvalidate per entry dropped. CPUs that never
// cached the translation cost nothing.
void Aegis::ShootdownRemotePfn(hw::PageId page) {
  const uint32_t ncpus = machine_.cpu_count();
  if (ncpus <= 1) {
    return;
  }
  const uint32_t self = machine_.current_cpu();
  Env* initiator = FindEnv(cur().current);
  for (uint32_t k = 0; k < ncpus; ++k) {
    if (k == self) {
      continue;
    }
    const uint32_t dropped = priv_.TlbRemoteFlushPfn(k, page);
    if (dropped == 0) {
      continue;
    }
    machine_.Charge(kIpiCost + kIpiRemoteInvalidate * dropped);
    ++tlb_shootdowns_;
    if (initiator != nullptr) {
      ++initiator->counters.ipis_sent;
      ++initiator->counters.tlb_shootdowns;
    }
    Trace(xtrace::Event::kTlbShootdown, page, k, dropped, /*asid_flush=*/0);
  }
}

void Aegis::ShootdownRemoteAsid(hw::Asid asid) {
  const uint32_t ncpus = machine_.cpu_count();
  if (ncpus <= 1) {
    return;
  }
  const uint32_t self = machine_.current_cpu();
  Env* initiator = FindEnv(cur().current);
  for (uint32_t k = 0; k < ncpus; ++k) {
    if (k == self) {
      continue;
    }
    const uint32_t dropped = priv_.TlbRemoteFlushAsid(k, asid);
    if (dropped == 0) {
      continue;
    }
    machine_.Charge(kIpiCost + kIpiRemoteInvalidate * dropped);
    ++tlb_shootdowns_;
    if (initiator != nullptr) {
      ++initiator->counters.ipis_sent;
      ++initiator->counters.tlb_shootdowns;
    }
    Trace(xtrace::Event::kTlbShootdown, asid, k, dropped, /*asid_flush=*/1);
  }
}

void Aegis::FlushPageBindings(hw::PageId page) {
  machine_.Charge(Instr(20));  // Reverse-map sweep of cached bindings.
  machine_.tlb().FlushPfn(page);
  stlb_.FlushPfn(page);
  ShootdownRemotePfn(page);
  // Packet-filter bindings are cached bindings too: a ring or pinned ASH
  // region spanning the reclaimed frame would keep the demux writing into
  // it at interrupt level after reallocation. Sever them here so every
  // reclaim path (dealloc, repossession, teardown) breaks them uniformly.
  const auto spans = [page](hw::PageId first, uint32_t count) {
    return page >= first && page < first + count;
  };
  for (dpf::FilterId id = 0; id < bindings_.size(); ++id) {
    FilterBinding& binding = bindings_[id];
    if (!binding.live) {
      continue;
    }
    if (binding.ring.live && spans(binding.ring.first_page, binding.ring.pages)) {
      machine_.Charge(Instr(10));
      binding.ring = RingState{};  // Delivery reverts to the legacy queue.
    }
    if (binding.region_pages > 0 && spans(binding.region_first_page, binding.region_pages)) {
      // The ASH runs against the whole pinned region; losing any frame of
      // it kills the binding (stats survive for post-mortems).
      machine_.Charge(Instr(10));
      binding.live = false;
      binding.queue.clear();
      binding.handler.reset();
      binding.ring = RingState{};
      (void)classifier_.Remove(id);
    }
  }
  // The trace ring is a cached binding too: losing any frame of it severs
  // the whole ring, or the kernel would keep appending records into a
  // reclaimed (and possibly reallocated) frame.
  if (trace_ != nullptr && spans(trace_->first_page, trace_->pages)) {
    machine_.Charge(Instr(10));
    SeverTraceRing();
  }
  // In-flight disk DMA targeting the frame is a cached binding too: the
  // transfer would land in the frame after reallocation to a new owner.
  // Cancel it and fail the blocked transfer with an I/O error — the owner
  // retries (or repairs) like any other media fault.
  if (disk_ != nullptr) {
    const std::vector<uint64_t> cancelled =
        disk_->CancelIf([page](hw::PageId frame) { return frame == page; });
    for (uint64_t request : cancelled) {
      auto it = disk_waiters_.find(request);
      if (it == disk_waiters_.end()) {
        continue;
      }
      Env* waiter = FindEnv(it->second);
      disk_waiters_.erase(it);
      if (waiter != nullptr && waiter->state != EnvState::kExited) {
        waiter->disk_pending = false;
        waiter->disk_result = Status::kErrIo;
        WakeEnvInternal(*waiter);
      }
    }
  }
}

// --- Protected control transfer (paper §5.2) ---

Result<PctArgs> Aegis::SysPctCall(EnvId callee, const PctArgs& args) {
  SyscallScope scope(*this, xtrace::Sys::kPctCall);
  Trace(xtrace::Event::kPct, callee, /*sync=*/1);
  machine_.Charge(kPctOneWay);
  Env* target = FindEnv(callee);
  if (target == nullptr || target->state == EnvState::kExited) {
    return Status::kErrNotFound;
  }
  if (!target->handlers.pct_sync) {
    return Status::kErrUnsupported;
  }
  const EnvId caller = cur().current;
  const bool outer = !cur().in_pct;
  cur().in_pct = true;
  priv_.SetAsid(target->asid);
  cur().current = callee;

  // Control is now in the callee's protection domain, at its protected
  // entry, with the caller's slice donated. The transfer is atomic: it
  // cannot be diverted between initiation and entry.
  PctArgs reply = target->handlers.pct_sync(args);

  cur().current = caller;
  priv_.SetAsid(CurrentEnv().asid);
  machine_.Charge(kPctOneWay);
  if (outer) {
    cur().in_pct = false;
    // Kills first: if the caller itself was condemned mid-transfer this
    // does not return, and a corpse must not run its slice epilogue.
    ProcessDeferredKills();
    if (cur().slice_expired_during_pct) {
      // The slice ended mid-transfer; honour it now that atomicity holds.
      cur().slice_expired_during_pct = false;
      OnInterrupt(hw::InterruptSource::kTimer, 0);
    }
  }
  return reply;
}

Status Aegis::SysPctSend(EnvId callee, const PctArgs& args) {
  SyscallScope scope(*this, xtrace::Sys::kPctSend);
  Trace(xtrace::Event::kPct, callee, /*sync=*/0);
  machine_.Charge(kPctOneWay);
  Env* target = FindEnv(callee);
  if (target == nullptr || target->state == EnvState::kExited) {
    return Status::kErrNotFound;
  }
  if (!target->handlers.pct_async) {
    return Status::kErrUnsupported;
  }
  target->mailbox.push_back(args);
  WakeEnvInternal(*target);
  return Status::kOk;
}

// --- Exceptions (paper §5.3) ---

hw::TrapOutcome Aegis::OnException(hw::TrapFrame& frame) {
  Env* faulter = FindEnv(cur().current);
  if (frame.type == hw::ExceptionType::kTlbMissLoad ||
      frame.type == hw::ExceptionType::kTlbMissStore) {
    if (faulter != nullptr) {
      ++faulter->counters.tlb_misses;
    }
    // Kernel TLB refill: the software TLB caches secure bindings; a hit
    // installs the mapping without involving the application at all.
    if (stlb_enabled_) {
      machine_.Charge(kStlbLookup);
      const hw::Asid asid = priv_.asid();
      const Stlb::Entry* entry = stlb_.Lookup(hw::VpnOf(frame.bad_vaddr), asid);
      if (entry != nullptr) {
        hw::TlbEntry tlb_entry{entry->vpn, asid, entry->pfn, true, entry->writable};
        priv_.TlbWriteRandom(tlb_entry);
        ++stlb_hits_;
        if (faulter != nullptr) {
          ++faulter->counters.stlb_hits;
        }
        Trace(xtrace::Event::kStlbFill, hw::VpnOf(frame.bad_vaddr));
        return hw::TrapOutcome::kRetry;
      }
      ++stlb_misses_;
      if (faulter != nullptr) {
        ++faulter->counters.stlb_misses;
      }
    }
  }
  Trace(xtrace::Event::kException, static_cast<uint32_t>(frame.type),
        static_cast<uint32_t>(frame.bad_vaddr));
  // Dispatch to the application's exception context: save the three
  // scratch registers to the agreed-upon save area (physical addresses),
  // load cause/badvaddr, and jump — 18 instructions.
  machine_.Charge(kExceptionDispatch);
  Env* env = FindEnv(cur().current);
  if (env == nullptr || !env->handlers.exception || env->state == EnvState::kExited) {
    return hw::TrapOutcome::kSkip;
  }
  const ExcAction action = env->handlers.exception(frame);
  machine_.Charge(kExceptionResume);
  return action == ExcAction::kRetry ? hw::TrapOutcome::kRetry : hw::TrapOutcome::kSkip;
}

// --- Interrupts ---

void Aegis::OnInterrupt(hw::InterruptSource source, uint64_t payload) {
  Trace(xtrace::Event::kInterrupt, static_cast<uint32_t>(source),
        static_cast<uint32_t>(payload));
  switch (source) {
    case hw::InterruptSource::kTimer: {
      if (cur().current == kNoEnv) {
        return;  // Stale timer after the slice owner already left.
      }
      if (cur().in_pct) {
        cur().slice_expired_during_pct = true;  // Honoured when the PCT returns.
        return;
      }
      Env& env = CurrentEnv();
      if (env.state == EnvState::kExited) {
        // The slice owner died mid-teardown (its charges can still raise
        // the deadline interrupt); never run a corpse's epilogue or switch
        // away from the teardown in progress.
        return;
      }
      machine_.Charge(kTimerSlicePath);
      const uint64_t epilogue_start = machine_.clock().now();
      if (env.handlers.timer_epilogue) {
        // The application's interrupt context saves its own state.
        env.handlers.timer_epilogue();
      }
      if (machine_.clock().now() - epilogue_start > kEpilogueBudget) {
        ++env.excess_penalty;  // Paid back with a forfeited slice.
        ++env.epilogue_overruns;
      }
      SwitchToKernel();
      break;
    }
    case hw::InterruptSource::kNicRx:
      HandleRxPacket();
      break;
    case hw::InterruptSource::kAlarm: {
      Env* sleeper = FindEnv(static_cast<EnvId>(payload));
      if (sleeper != nullptr && sleeper->state != EnvState::kExited) {
        WakeEnvInternal(*sleeper);
      }
      break;
    }
    case hw::InterruptSource::kDiskDone: {
      // Retire the request (the DMA lands here unless the transfer drew an
      // injected media error). A cancelled or spurious request id retires
      // as kErrNotFound and wakes no one.
      bool failed = false;
      if (disk_ != nullptr) {
        Result<hw::Disk::Completion> done = disk_->Complete(payload);
        failed = done.ok() && done->failed;
      }
      Trace(xtrace::Event::kDiskComplete, static_cast<uint32_t>(payload), failed ? 1u : 0u);
      auto it = disk_waiters_.find(payload);
      if (it != disk_waiters_.end()) {
        Env* waiter = FindEnv(it->second);
        disk_waiters_.erase(it);
        if (waiter != nullptr && waiter->state != EnvState::kExited) {
          waiter->disk_pending = false;
          waiter->disk_result = failed ? Status::kErrIo : Status::kOk;
          WakeEnvInternal(*waiter);
        }
      }
      if (failed) {
        MaybeAuditAfterFault();
      }
      break;
    }
    case hw::InterruptSource::kIpi: {
      // Payload 0: reschedule nudge — being woken out of WaitForInterrupt
      // is the entire effect; the kernel loop rescans its slice vector.
      // Nonzero: reap request for the named environment (cross-CPU kill).
      const EnvId target = static_cast<EnvId>(payload);
      if (target == kNoEnv) {
        break;
      }
      Env* victim = FindEnv(target);
      if (victim != nullptr) {
        victim->kill_pending = false;  // The reap is landing right now.
      }
      (void)KillEnv(target);  // Suicide path if the victim runs here.
      break;
    }
    case hw::InterruptSource::kFault: {
      // Asynchronous environment kill, delivered at an arbitrary
      // cycle-charge boundary. A stale id (the victim already exited) is a
      // no-op.
      Env* victim = FindEnv(static_cast<EnvId>(payload));
      if (victim != nullptr && victim->state != EnvState::kExited) {
        ++victim->counters.faults_injected;
      }
      (void)KillEnv(static_cast<EnvId>(payload));
      break;
    }
    case hw::InterruptSource::kPressure:
      HandlePressure(payload);
      break;
    case hw::InterruptSource::kPowerFail: {
      // Power loss at an arbitrary cycle-charge boundary: the disk's
      // volatile buffer dies (torn writes land now), the device freezes,
      // and the scheduler halts. If we are executing on an environment's
      // fiber, abandon it mid-instruction — no epilogue, no teardown; a
      // power cut gives nobody a chance to clean up.
      if (powered_off_) {
        break;
      }
      Trace(xtrace::Event::kPowerCut);
      powered_off_ = true;
      if (disk_ != nullptr) {
        disk_->PowerCut();
      }
      if (cur().env_fiber_active && cur().current != kNoEnv) {
        SwitchToKernel();  // Never returns: Run() exits on powered_off_.
      }
      break;
    }
  }
}

// --- Fault injection and kernel self-audit ---

void Aegis::InstallFaultPlan(const hw::FaultPlan& plan) {
  injector_ = std::make_unique<hw::FaultInjector>(plan);
  if (disk_ != nullptr) {
    disk_->set_fault_injector(injector_.get());
  }
  const uint64_t now = machine_.clock().now();
  for (const hw::FaultEvent& event : plan.events) {
    const uint64_t delay = event.at_cycle > now ? event.at_cycle - now : 0;
    switch (event.kind) {
      case hw::FaultKind::kKillEnv:
        priv_.ScheduleEvent(delay, hw::InterruptSource::kFault, event.arg0);
        break;
      case hw::FaultKind::kSpuriousIrq:
        priv_.ScheduleEvent(delay, static_cast<hw::InterruptSource>(event.arg0), event.arg1);
        break;
      case hw::FaultKind::kPowerCut:
        priv_.ScheduleEvent(delay, hw::InterruptSource::kPowerFail, 0);
        break;
    }
  }
}

bool Aegis::EnvAlive(EnvId id) const {
  if (id == kNoEnv || id > envs_.size()) {
    return false;
  }
  return envs_[id - 1]->state != EnvState::kExited;
}

bool Aegis::SysEnvAlive(EnvId id) {
  SyscallScope scope(*this, xtrace::Sys::kEnvAlive);
  machine_.Charge(kSyscallEntry + Instr(4) + kSyscallExit);
  return EnvAlive(id);
}

Status Aegis::SysKillEnv(EnvId victim, const cap::Capability& env_cap) {
  SyscallScope scope(*this, xtrace::Sys::kKillEnv);
  machine_.Charge(kSyscallEntry + kCapCheck + kSyscallExit);
  Env* target = FindEnv(victim);
  if (target == nullptr || target->state == EnvState::kExited) {
    return Status::kErrNotFound;
  }
  // Forced termination demands the revocation right on the environment —
  // exactly the env_cap handed to whoever created it (a supervisor).
  if (!authority_.Check(env_cap, EnvResource(victim), cap::kRevoke, 0)) {
    return Status::kErrAccessDenied;
  }
  return KillEnv(victim);
}

// --- xtrace syscalls (observability as library policy) ---

Status Aegis::SysBindTraceRing(const TraceRingSpec& spec, const Capability& region_cap) {
  SyscallScope scope(*this, xtrace::Sys::kBindTraceRing);
  machine_.Charge(kSyscallEntry + kCapCheck + Instr(30));  // Validate + format.
  Env& env = CurrentEnv();
  machine_.Charge(kSyscallExit);
  if (trace_ != nullptr) {
    // One logic analyser on the bus at a time: the ring is a global kernel
    // resource (it records events from *every* environment), so a second
    // binding must fail visibly rather than silently steal the stream.
    return Status::kErrAlreadyExists;
  }
  const uint32_t slots =
      xtrace::TraceRingView::SlotsFor(static_cast<size_t>(spec.pages) * hw::kPageBytes);
  if (spec.pages == 0 || slots == 0 || spec.mask == 0) {
    return Status::kErrInvalidArgs;
  }
  // Secure binding: the region must be caller-owned contiguous frames and
  // the caller must prove it with a read/write capability for the first
  // (same pattern as SysBindPacketRing).
  for (uint32_t i = 0; i < spec.pages; ++i) {
    const hw::PageId p = spec.first_page + i;
    if (p >= pages_.size() || pages_[p].owner != env.id) {
      return Status::kErrAccessDenied;
    }
  }
  if (!authority_.Check(region_cap, PageResource(spec.first_page),
                        cap::kRead | cap::kWrite, pages_[spec.first_page].epoch)) {
    return Status::kErrAccessDenied;
  }
  std::span<uint8_t> region = machine_.mem().RangeSpan(spec.first_page, spec.pages);
  Result<xtrace::TraceRingView> view =
      xtrace::TraceRingView::Format(region, slots, spec.mask);
  if (!view.ok()) {
    return view.status();
  }
  auto trace = std::make_unique<TraceState>();
  trace->owner = env.id;
  trace->first_page = spec.first_page;
  trace->pages = spec.pages;
  trace->slots = slots;
  trace->mask = spec.mask;
  trace_ = std::move(trace);
  return Status::kOk;
}

Status Aegis::SysUnbindTraceRing() {
  SyscallScope scope(*this, xtrace::Sys::kUnbindTraceRing);
  machine_.Charge(kSyscallEntry + Instr(6) + kSyscallExit);
  if (trace_ == nullptr) {
    return Status::kErrNotFound;
  }
  if (trace_->owner != cur().current) {
    return Status::kErrAccessDenied;
  }
  SeverTraceRing();  // The region pages stay with the caller.
  return Status::kOk;
}

Status Aegis::SysTraceMark(uint32_t a0, uint32_t a1, uint32_t a2, uint32_t a3) {
  SyscallScope scope(*this, xtrace::Sys::kTraceMark);
  machine_.Charge(kSyscallEntry + Instr(2) + kSyscallExit);
  Trace(xtrace::Event::kAppMark, a0, a1, a2, a3);
  return Status::kOk;
}

Result<EnvStats> Aegis::SysEnvStats(EnvId env) {
  SyscallScope scope(*this, xtrace::Sys::kEnvStats);
  machine_.Charge(kSyscallEntry + Instr(20) + kSyscallExit);
  if (env == kNoEnv || env > envs_.size()) {
    return Status::kErrNotFound;
  }
  return env_stats(env);
}

Result<xtrace::LatencyHist> Aegis::SysSyscallHist(uint32_t sysno) {
  SyscallScope scope(*this, xtrace::Sys::kSyscallHist);
  machine_.Charge(kSyscallEntry + Instr(20) + kSyscallExit);
  if (sysno >= xtrace::kSysCount) {
    return Status::kErrOutOfRange;
  }
  return syscall_hist_[sysno];
}

EnvStats Aegis::env_stats(EnvId env) const {
  EnvStats stats;
  if (env == kNoEnv || env > envs_.size()) {
    return stats;
  }
  const Env& e = *envs_[env - 1];
  stats.env = env;
  stats.alive = e.state != EnvState::kExited;
  stats.killed = e.killed;
  stats.pages_held = e.pages_owned;
  stats.slices_run = e.slices_run;
  stats.cpu = e.on_cpu != kNoCpu ? e.on_cpu : e.last_cpu;
  stats.slice_slots = e.slice_slots;
  stats.counters = e.counters;
  return stats;
}

void Aegis::DebugSkewPageAccounting(EnvId env, int32_t delta) {
  Env* e = FindEnv(env);
  if (e != nullptr) {
    e->pages_owned = static_cast<uint32_t>(static_cast<int32_t>(e->pages_owned) + delta);
  }
}

void Aegis::DebugSkewSliceAccounting(EnvId env, int32_t delta) {
  Env* e = FindEnv(env);
  if (e != nullptr) {
    e->slice_slots = static_cast<uint32_t>(static_cast<int32_t>(e->slice_slots) + delta);
  }
}

void Aegis::MaybeAuditAfterFault() {
  if (!audit_on_fault_) {
    return;
  }
  const AuditReport report = AuditInvariants();
  if (!report.ok()) {
    ++audit_failures_;
    if (first_audit_failure_.empty()) {
      first_audit_failure_ = report.violations.front();
    }
  }
}

Aegis::AuditReport Aegis::AuditInvariants() const {
  AuditReport report;
  auto fail = [&report](std::string what) { report.violations.push_back(std::move(what)); };
  auto alive = [this](EnvId id) { return EnvAlive(id); };
  // Ownership of pages/extents/filters/tiles persists past a *clean* exit
  // (see SysExit); only a killed environment must have lost everything.
  auto owner_ok = [this, alive](EnvId id) {
    if (alive(id)) {
      return true;
    }
    if (id == kNoEnv || id > envs_.size()) {
      return false;
    }
    return !envs_[id - 1]->killed;
  };

  // Liveness bookkeeping is self-consistent.
  uint32_t live = 0;
  for (const auto& env : envs_) {
    live += (env->state != EnvState::kExited) ? 1 : 0;
  }
  if (live != live_envs_) {
    fail("live_envs_ == " + std::to_string(live_envs_) + ", counted " + std::to_string(live));
  }

  // Every owned page has a live owner; per-env counts agree.
  std::vector<uint32_t> counted(envs_.size() + 1, 0);
  for (hw::PageId p = 0; p < pages_.size(); ++p) {
    const EnvId owner = pages_[p].owner;
    if (owner == kNoEnv) {
      continue;
    }
    if (!owner_ok(owner)) {
      fail("page " + std::to_string(p) + " leaked by killed env " + std::to_string(owner));
    } else {
      ++counted[owner];
    }
  }
  for (const auto& env : envs_) {
    if (env->state == EnvState::kExited) {
      if (env->killed && env->pages_owned != 0) {
        fail("killed env " + std::to_string(env->id) + " counts pages");
      }
      if (!env->mailbox.empty()) fail("dead env " + std::to_string(env->id) + " holds PCTs");
      if (env->killed && !env->repossessed.empty()) {
        fail("killed env " + std::to_string(env->id) + " holds repossessed pages");
      }
      if (env->disk_pending) fail("dead env " + std::to_string(env->id) + " awaits disk");
    } else if (env->pages_owned != counted[env->id]) {
      fail("env " + std::to_string(env->id) + " pages_owned=" + std::to_string(env->pages_owned) +
           " but owns " + std::to_string(counted[env->id]));
    }
  }

  // Accounting cross-check (xtrace): the per-env pages-held counters the
  // kernel reports through SysEnvStats must sum to exactly the number of
  // allocated frames — a mismatch means the kernel's own books are cooked
  // and every resource-visibility claim downstream of them is suspect.
  {
    uint64_t held = 0;
    for (const auto& env : envs_) {
      held += env->pages_owned;
    }
    uint64_t allocated = 0;
    for (const PageInfo& page : pages_) {
      allocated += (page.owner != kNoEnv) ? 1 : 0;
    }
    if (held != allocated) {
      EnvId offender = kNoEnv;
      for (const auto& env : envs_) {
        if (env->pages_owned != counted[env->id]) {
          offender = env->id;
          break;
        }
      }
      fail("page accounting: envs report " + std::to_string(held) + " pages held, kernel has " +
           std::to_string(allocated) + " frames allocated (first offender: env " +
           std::to_string(offender) + ")");
    }
  }

  // Trace ring: a live binding must belong to an owner that kept its
  // resources and target frames that owner still holds — otherwise the
  // kernel would append records into reclaimed (reallocatable) memory.
  if (trace_ != nullptr) {
    if (!owner_ok(trace_->owner)) {
      fail("trace ring bound to killed env " + std::to_string(trace_->owner));
    }
    for (uint32_t i = 0; i < trace_->pages; ++i) {
      const hw::PageId p = trace_->first_page + i;
      if (p >= pages_.size() || pages_[p].owner != trace_->owner) {
        fail("trace ring targets frame " + std::to_string(p) + " its owner lost");
      }
    }
  }

  // No stale translation: every valid TLB/STLB entry names a live address
  // space and a frame that space still owns.
  // A mapping's address space must be live (asid flushed on any exit), and
  // the frame it names must still be allocated to a valid owner — not
  // necessarily the mapper: capability-authorized sharing maps a peer's
  // frame. Reclaimed frames have no mappings (FlushPageBindings).
  for (uint32_t k = 0; k < machine_.cpu_count(); ++k) {
    for (const hw::TlbEntry& entry : machine_.cpu(k).tlb().entries()) {
      if (!entry.valid) {
        continue;
      }
      if (!alive(static_cast<EnvId>(entry.asid))) {
        fail("cpu " + std::to_string(k) + " TLB entry for dead asid " +
             std::to_string(entry.asid));
      } else if (entry.pfn >= pages_.size() || !owner_ok(pages_[entry.pfn].owner)) {
        fail("cpu " + std::to_string(k) + " TLB entry maps reclaimed frame " +
             std::to_string(entry.pfn));
      }
    }
  }
  for (const Stlb::Entry& entry : stlb_.slots()) {
    if (!entry.valid) {
      continue;
    }
    if (!alive(static_cast<EnvId>(entry.asid))) {
      fail("STLB entry for dead asid " + std::to_string(entry.asid));
    } else if (entry.pfn >= pages_.size() || !owner_ok(pages_[entry.pfn].owner)) {
      fail("STLB entry maps reclaimed frame " + std::to_string(entry.pfn));
    }
  }

  // Packet-filter bindings: live owner, and the pinned region is still his.
  for (size_t id = 0; id < bindings_.size(); ++id) {
    const FilterBinding& binding = bindings_[id];
    if (!binding.live) {
      continue;
    }
    if (!owner_ok(binding.owner)) {
      fail("filter " + std::to_string(id) + " bound to killed env " +
           std::to_string(binding.owner));
      continue;
    }
    for (uint32_t i = 0; i < binding.region_pages; ++i) {
      const hw::PageId p = binding.region_first_page + i;
      if (p >= pages_.size() || pages_[p].owner != binding.owner) {
        fail("filter " + std::to_string(id) + " pins frame " + std::to_string(p) +
             " its owner lost");
      }
    }
    // A live ring must target frames its owner still holds — otherwise the
    // demux would deposit packets into reclaimed (reallocatable) memory.
    for (uint32_t i = 0; binding.ring.live && i < binding.ring.pages; ++i) {
      const hw::PageId p = binding.ring.first_page + i;
      if (p >= pages_.size() || pages_[p].owner != binding.owner) {
        fail("filter " + std::to_string(id) + " ring targets frame " + std::to_string(p) +
             " its owner lost");
      }
    }
  }

  // Disk extents and waiters.
  for (size_t id = 0; id < extents_.size(); ++id) {
    if (extents_[id].live && !owner_ok(extents_[id].owner)) {
      fail("extent " + std::to_string(id) + " owned by killed env " +
           std::to_string(extents_[id].owner));
    }
  }
  for (const auto& [request, waiter] : disk_waiters_) {
    if (!alive(waiter)) {
      fail("disk request " + std::to_string(request) + " waited on by dead env " +
           std::to_string(waiter));
    }
  }

  // Scheduler: every slice-vector slot on every CPU names a live env, the
  // donation hints reference only live envs, and each env's slice-slot
  // ledger matches the slots the vectors actually hold for it.
  std::vector<uint32_t> slots_held(envs_.size() + 1, 0);
  for (size_t k = 0; k < cpu_.size(); ++k) {
    const CpuSched& cpu = cpu_[k];
    for (size_t slot = 0; slot < cpu.slice_vector.size(); ++slot) {
      const EnvId id = cpu.slice_vector[slot];
      if (id == kNoEnv) {
        continue;
      }
      if (!alive(id)) {
        fail("cpu " + std::to_string(k) + " slice " + std::to_string(slot) +
             " owned by dead env " + std::to_string(id));
      } else {
        ++slots_held[id];
      }
    }
    if (cpu.yield_hint != kNoEnv && !alive(cpu.yield_hint)) {
      fail("cpu " + std::to_string(k) + " yield hint names dead env " +
           std::to_string(cpu.yield_hint));
    }
  }
  for (const auto& env : envs_) {
    if (env->state != EnvState::kExited && env->slice_slots != slots_held[env->id]) {
      fail("slice accounting: env " + std::to_string(env->id) + " reports " +
           std::to_string(env->slice_slots) + " slots, vectors hold " +
           std::to_string(slots_held[env->id]) + " (first offender: env " +
           std::to_string(env->id) + ")");
      break;  // Name the first offender; one cooked ledger line suffices.
    }
  }

  // Framebuffer ownership tags.
  if (framebuffer_ != nullptr) {
    for (uint32_t ty = 0; ty < framebuffer_->tile_rows(); ++ty) {
      for (uint32_t tx = 0; tx < framebuffer_->tile_cols(); ++tx) {
        const uint32_t tag = framebuffer_->TileOwner(tx, ty);
        if (tag != hw::Framebuffer::kNoOwner && !owner_ok(static_cast<EnvId>(tag))) {
          fail("fb tile (" + std::to_string(tx) + "," + std::to_string(ty) +
               ") tagged for killed env " + std::to_string(tag));
        }
      }
    }
  }
  return report;
}

// --- Disk multiplexing (§2: protect disks without understanding file
// systems) ---

Result<Aegis::DiskExtentGrant> Aegis::SysAllocDiskExtent(uint32_t blocks) {
  SyscallScope scope(*this, xtrace::Sys::kAllocDiskExtent);
  machine_.Charge(kSyscallEntry + Instr(20) + kSyscallExit);
  Env& env = CurrentEnv();
  if (disk_ == nullptr) {
    return Status::kErrUnsupported;
  }
  if (blocks == 0 || disk_alloc_cursor_ + blocks > disk_->block_count()) {
    return Status::kErrNoResources;
  }
  DiskExtent extent;
  extent.first_block = disk_alloc_cursor_;
  extent.blocks = blocks;
  extent.owner = env.id;
  extent.live = true;
  disk_alloc_cursor_ += blocks;
  extents_.push_back(extent);
  const uint32_t id = static_cast<uint32_t>(extents_.size() - 1);
  DiskExtentGrant grant;
  grant.extent = id;
  grant.first_block = extent.first_block;
  grant.blocks = blocks;
  grant.cap = authority_.Mint(cap::ResourceId{cap::ResourceKind::kDiskExtent, id},
                              cap::kAllRights, extent.epoch);
  return grant;
}

Status Aegis::SysFreeDiskExtent(uint32_t extent, const cap::Capability& cap) {
  SyscallScope scope(*this, xtrace::Sys::kFreeDiskExtent);
  machine_.Charge(kSyscallEntry + kCapCheck + kSyscallExit);
  if (extent >= extents_.size() || !extents_[extent].live) {
    return Status::kErrNotFound;
  }
  if (!authority_.Check(cap, cap::ResourceId{cap::ResourceKind::kDiskExtent, extent},
                        cap::kRevoke, extents_[extent].epoch)) {
    return Status::kErrAccessDenied;
  }
  extents_[extent].live = false;
  ++extents_[extent].epoch;  // Outstanding extent capabilities die.
  return Status::kOk;
}

Status Aegis::DiskTransfer(uint32_t extent, const cap::Capability& extent_cap,
                           uint32_t block_in_extent, hw::PageId frame, bool write) {
  machine_.Charge(kSyscallEntry + 2 * kCapCheck);
  if (disk_ == nullptr) {
    machine_.Charge(kSyscallExit);
    return Status::kErrUnsupported;
  }
  if (extent >= extents_.size() || !extents_[extent].live ||
      block_in_extent >= extents_[extent].blocks) {
    machine_.Charge(kSyscallExit);
    return Status::kErrOutOfRange;
  }
  const uint32_t required = write ? cap::kWrite : cap::kRead;
  if (!authority_.Check(extent_cap, cap::ResourceId{cap::ResourceKind::kDiskExtent, extent},
                        required, extents_[extent].epoch)) {
    machine_.Charge(kSyscallExit);
    return Status::kErrAccessDenied;
  }
  // The DMA target/source frame must belong to the caller.
  Env& env = CurrentEnv();
  if (frame >= pages_.size() || pages_[frame].owner != env.id) {
    machine_.Charge(kSyscallExit);
    return Status::kErrAccessDenied;
  }
  const uint32_t block = extents_[extent].first_block + block_in_extent;
  Result<uint64_t> request =
      write ? disk_->SubmitWrite(block, frame) : disk_->SubmitRead(block, frame);
  if (!request.ok()) {
    machine_.Charge(kSyscallExit);
    return request.status();
  }
  Trace(xtrace::Event::kDiskSubmit, block, write ? 1u : 0u, static_cast<uint32_t>(*request));
  env.disk_pending = true;
  env.disk_result = Status::kOk;
  disk_waiters_[*request] = env.id;
  while (env.disk_pending) {
    SysBlock();  // Completion interrupt clears the flag; other wakes
                 // (death broadcasts) are spurious here and loop back.
  }
  if (env.disk_result == Status::kOk) {
    ++(write ? env.counters.disk_blocks_written : env.counters.disk_blocks_read);
  } else {
    ++env.counters.faults_injected;  // The media error landed on this env.
  }
  machine_.Charge(kSyscallExit);
  return env.disk_result;
}

Status Aegis::SysDiskRead(uint32_t extent, const cap::Capability& extent_cap,
                          uint32_t block_in_extent, hw::PageId frame) {
  SyscallScope scope(*this, xtrace::Sys::kDiskRead);
  return DiskTransfer(extent, extent_cap, block_in_extent, frame, /*write=*/false);
}

Status Aegis::SysDiskWrite(uint32_t extent, const cap::Capability& extent_cap,
                           uint32_t block_in_extent, hw::PageId frame) {
  SyscallScope scope(*this, xtrace::Sys::kDiskWrite);
  return DiskTransfer(extent, extent_cap, block_in_extent, frame, /*write=*/true);
}

Status Aegis::SysDiskBarrier(uint32_t extent, const cap::Capability& extent_cap) {
  SyscallScope scope(*this, xtrace::Sys::kDiskBarrier);
  machine_.Charge(kSyscallEntry + kCapCheck);
  if (disk_ == nullptr) {
    machine_.Charge(kSyscallExit);
    return Status::kErrUnsupported;
  }
  if (extent >= extents_.size() || !extents_[extent].live) {
    machine_.Charge(kSyscallExit);
    return Status::kErrOutOfRange;
  }
  if (!authority_.Check(extent_cap, cap::ResourceId{cap::ResourceKind::kDiskExtent, extent},
                        cap::kWrite, extents_[extent].epoch)) {
    machine_.Charge(kSyscallExit);
    return Status::kErrAccessDenied;
  }
  Result<uint64_t> request = disk_->SubmitBarrier();
  if (!request.ok()) {
    machine_.Charge(kSyscallExit);
    return request.status();
  }
  Trace(xtrace::Event::kDiskBarrier, static_cast<uint32_t>(*request));
  Env& env = CurrentEnv();
  env.disk_pending = true;
  env.disk_result = Status::kOk;
  disk_waiters_[*request] = env.id;
  while (env.disk_pending) {
    SysBlock();  // Completion interrupt clears the flag (see DiskTransfer).
  }
  machine_.Charge(kSyscallExit);
  return env.disk_result;
}

// --- Network (paper §3.2) ---

Result<dpf::FilterId> Aegis::SysBindFilter(FilterBindSpec spec, const Capability& region_cap) {
  SyscallScope scope(*this, xtrace::Sys::kBindFilter);
  machine_.Charge(kSyscallEntry + kCapCheck + Instr(50));  // Filter compile/merge.
  Env& env = CurrentEnv();
  if (nic_ == nullptr) {
    machine_.Charge(kSyscallExit);
    return Status::kErrUnsupported;
  }
  if (spec.handler.has_value() && spec.region_pages == 0) {
    machine_.Charge(kSyscallExit);
    return Status::kErrInvalidArgs;  // An ASH needs a pinned region.
  }
  if (spec.region_pages > 0) {
    // The region must be caller-owned contiguous frames, and the caller
    // must prove ownership of the first frame with a write capability.
    for (uint32_t i = 0; i < spec.region_pages; ++i) {
      const hw::PageId p = spec.region_first_page + i;
      if (p >= pages_.size() || pages_[p].owner != env.id) {
        machine_.Charge(kSyscallExit);
        return Status::kErrAccessDenied;
      }
    }
    if (!authority_.Check(region_cap, PageResource(spec.region_first_page),
                          cap::kRead | cap::kWrite, pages_[spec.region_first_page].epoch)) {
      machine_.Charge(kSyscallExit);
      return Status::kErrAccessDenied;
    }
  }
  Result<dpf::FilterId> id = classifier_.Insert(spec.filter);
  if (!id.ok()) {
    machine_.Charge(kSyscallExit);
    return id.status();
  }
  if (*id >= bindings_.size()) {
    bindings_.resize(*id + 1);
  }
  FilterBinding& binding = bindings_[*id];
  binding.owner = env.id;
  binding.handler = std::move(spec.handler);
  binding.region_first_page = spec.region_first_page;
  binding.region_pages = spec.region_pages;
  binding.trace_tag_off = spec.trace_tag_off;
  binding.queue.clear();
  binding.ring = RingState{};
  binding.stats = PacketStats{};
  binding.live = true;
  machine_.Charge(kSyscallExit);
  return *id;
}

Status Aegis::SysUnbindFilter(dpf::FilterId id) {
  SyscallScope scope(*this, xtrace::Sys::kUnbindFilter);
  machine_.Charge(kSyscallEntry + Instr(10) + kSyscallExit);
  if (id >= bindings_.size() || !bindings_[id].live) {
    return Status::kErrNotFound;
  }
  if (bindings_[id].owner != cur().current) {
    return Status::kErrAccessDenied;
  }
  bindings_[id].live = false;
  bindings_[id].ring = RingState{};  // The region pages stay with the caller.
  return classifier_.Remove(id);
}

Result<std::vector<uint8_t>> Aegis::SysRecvPacket(dpf::FilterId id) {
  SyscallScope scope(*this, xtrace::Sys::kRecvPacket);
  machine_.Charge(kSyscallEntry + Instr(8));
  if (id >= bindings_.size() || !bindings_[id].live) {
    machine_.Charge(kSyscallExit);
    return Status::kErrNotFound;
  }
  FilterBinding& binding = bindings_[id];
  if (binding.owner != cur().current) {
    machine_.Charge(kSyscallExit);
    return Status::kErrAccessDenied;
  }
  if (binding.queue.empty()) {
    machine_.Charge(kSyscallExit);
    return Status::kErrWouldBlock;
  }
  std::vector<uint8_t> frame = std::move(binding.queue.front());
  binding.queue.pop_front();
  // Copy out of the kernel buffer to the application (the cost ASHs avoid).
  machine_.Charge(hw::kMemWordCopy * ((frame.size() + 3) / 4));
  machine_.Charge(kSyscallExit);
  return frame;
}

Status Aegis::SysNetSend(std::span<const uint8_t> frame) {
  SyscallScope scope(*this, xtrace::Sys::kNetSend);
  machine_.Charge(kSyscallEntry + Instr(10));
  if (nic_ == nullptr) {
    machine_.Charge(kSyscallExit);
    return Status::kErrUnsupported;
  }
  const bool ok = nic_->Transmit(frame);  // Charges the copy + controller.
  if (ok) {
    ++CurrentEnv().counters.packets_tx;
  }
  machine_.Charge(kSyscallExit);
  return ok ? Status::kOk : Status::kErrInvalidArgs;
}

// --- Zero-copy packet rings ---

net::PacketRingView Aegis::RingViewOf(const FilterBinding& binding) const {
  std::span<uint8_t> region =
      machine_.mem().RangeSpan(binding.ring.first_page, binding.ring.pages);
  // Cannot fail: geometry was validated against the region at bind time
  // and is re-derived from the trusted binding record here.
  return *net::PacketRingView::Attach(region, binding.ring.rx_slots, binding.ring.tx_slots);
}

Status Aegis::SysBindPacketRing(dpf::FilterId id, const PacketRingSpec& spec,
                                const Capability& region_cap) {
  SyscallScope scope(*this, xtrace::Sys::kBindPacketRing);
  machine_.Charge(kSyscallEntry + kCapCheck + Instr(40));  // Validate + format.
  Env& env = CurrentEnv();
  machine_.Charge(kSyscallExit);
  if (id >= bindings_.size() || !bindings_[id].live) {
    return Status::kErrNotFound;
  }
  FilterBinding& binding = bindings_[id];
  if (binding.owner != env.id) {
    return Status::kErrAccessDenied;
  }
  if (binding.handler.has_value()) {
    return Status::kErrInvalidArgs;  // ASH delivery and rings are exclusive.
  }
  if (spec.pages == 0 ||
      static_cast<size_t>(spec.pages) * hw::kPageBytes <
          net::PacketRingView::BytesNeeded(spec.rx_slots, spec.tx_slots)) {
    return Status::kErrInvalidArgs;
  }
  // Secure binding: the region must be caller-owned contiguous frames and
  // the caller must prove it with a read/write capability for the first.
  for (uint32_t i = 0; i < spec.pages; ++i) {
    const hw::PageId p = spec.first_page + i;
    if (p >= pages_.size() || pages_[p].owner != env.id) {
      return Status::kErrAccessDenied;
    }
  }
  if (!authority_.Check(region_cap, PageResource(spec.first_page),
                        cap::kRead | cap::kWrite, pages_[spec.first_page].epoch)) {
    return Status::kErrAccessDenied;
  }
  std::span<uint8_t> region = machine_.mem().RangeSpan(spec.first_page, spec.pages);
  Result<net::PacketRingView> view =
      net::PacketRingView::Format(region, spec.rx_slots, spec.tx_slots);
  if (!view.ok()) {
    return view.status();  // Bad slot counts.
  }
  binding.ring.live = true;
  binding.ring.batch_doorbells = spec.batch_doorbells;
  binding.ring.first_page = spec.first_page;
  binding.ring.pages = spec.pages;
  binding.ring.rx_slots = spec.rx_slots;
  binding.ring.tx_slots = spec.tx_slots;
  binding.ring.shed_watermark = spec.shed_watermark;
  binding.ring.rx_head = 0;
  binding.ring.tx_tail = 0;
  // Frames already queued on the legacy path stay there; SysRecvPacket
  // still drains them.
  return Status::kOk;
}

Status Aegis::SysUnbindPacketRing(dpf::FilterId id) {
  SyscallScope scope(*this, xtrace::Sys::kUnbindPacketRing);
  machine_.Charge(kSyscallEntry + Instr(10) + kSyscallExit);
  if (id >= bindings_.size() || !bindings_[id].live) {
    return Status::kErrNotFound;
  }
  FilterBinding& binding = bindings_[id];
  if (binding.owner != cur().current) {
    return Status::kErrAccessDenied;
  }
  if (!binding.ring.live) {
    return Status::kErrNotFound;
  }
  binding.ring = RingState{};  // Delivery reverts to the legacy queue.
  return Status::kOk;
}

Result<uint32_t> Aegis::SysTxRing(dpf::FilterId id, uint32_t max_frames) {
  SyscallScope scope(*this, xtrace::Sys::kTxRing);
  machine_.Charge(kSyscallEntry + Instr(8));
  if (id >= bindings_.size() || !bindings_[id].live) {
    machine_.Charge(kSyscallExit);
    return Status::kErrNotFound;
  }
  FilterBinding& binding = bindings_[id];
  if (binding.owner != cur().current) {
    machine_.Charge(kSyscallExit);
    return Status::kErrAccessDenied;
  }
  if (!binding.ring.live || nic_ == nullptr) {
    machine_.Charge(kSyscallExit);
    return Status::kErrUnsupported;
  }
  net::PacketRingView view = RingViewOf(binding);
  // The producer cursor is untrusted: a hostile header cannot make the
  // kernel loop more than one full ring's worth per doorbell.
  uint32_t pending = view.tx_head() - binding.ring.tx_tail;
  pending = std::min(pending, binding.ring.tx_slots);
  const uint32_t count = std::min(pending, max_frames);
  uint32_t sent = 0;
  for (uint32_t i = 0; i < count; ++i) {
    machine_.Charge(kRingTxDescriptor);
    std::span<const uint8_t> frame = view.ReadTxSlot(binding.ring.tx_tail);
    ++binding.ring.tx_tail;
    if (nic_->Transmit(frame)) {  // Charges the copy + controller (+ stall).
      ++binding.stats.tx_frames;
      ++sent;
    } else {
      ++binding.stats.tx_errors;  // Malformed length: skip the slot.
    }
  }
  view.set_tx_tail(binding.ring.tx_tail);  // Publish consumer progress.
  CurrentEnv().counters.packets_tx += sent;
  machine_.Charge(kSyscallExit);
  return sent;
}

PacketStats Aegis::packet_stats(dpf::FilterId id) const {
  if (id >= bindings_.size()) {
    return PacketStats{};
  }
  const FilterBinding& binding = bindings_[id];
  PacketStats stats = binding.stats;
  stats.ring_bound = binding.ring.live;
  stats.queue_pending = static_cast<uint32_t>(binding.queue.size());
  if (binding.ring.live) {
    const uint32_t pending = binding.ring.rx_head - RingViewOf(binding).rx_tail();
    stats.rx_pending = std::min(pending, binding.ring.rx_slots);
  }
  return stats;
}

Result<PacketStats> Aegis::SysPacketStats(dpf::FilterId id) {
  SyscallScope scope(*this, xtrace::Sys::kPacketStats);
  machine_.Charge(kSyscallEntry + Instr(10) + kSyscallExit);
  if (id >= bindings_.size() || !bindings_[id].live) {
    return Status::kErrNotFound;
  }
  if (bindings_[id].owner != cur().current) {
    return Status::kErrAccessDenied;
  }
  return packet_stats(id);
}

std::span<uint8_t> Aegis::BindingRegion(FilterBinding& binding) {
  if (binding.region_pages == 0) {
    return {};
  }
  return machine_.mem().RangeSpan(binding.region_first_page, binding.region_pages);
}

void Aegis::HandleRxPacket() {
  while (true) {
    auto frame = nic_->ReceiveNext();
    if (!frame.has_value()) {
      return;
    }
    const uint64_t before = classifier_.sim_cycles();
    std::optional<dpf::FilterId> match = classifier_.Classify(*frame);
    machine_.Charge(classifier_.sim_cycles() - before);
    if (!match.has_value() || *match >= bindings_.size() || !bindings_[*match].live) {
      Trace(xtrace::Event::kDpfDrop, /*reason=*/0, match.value_or(0));
      continue;  // No binding claims this packet: drop it.
    }
    FilterBinding& binding = bindings_[*match];
    Env* owner = FindEnv(binding.owner);
    if (owner == nullptr || owner->state == EnvState::kExited) {
      Trace(xtrace::Event::kDpfDrop, /*reason=*/3, *match);
      continue;
    }
    // Library-programmed correlation tag (see FilterBindSpec): ride the
    // frame bytes the owner pointed us at in arg3 of this binding's
    // kDpfMatch record. Read only when a ring is armed and the binding
    // asked for it; like the record stores, charges no simulated cycles.
    uint32_t trace_tag = 0;
    if (trace_ != nullptr && binding.trace_tag_off != 0 &&
        frame->size() >= binding.trace_tag_off + 4) {
      const uint8_t* tag_at = frame->data() + binding.trace_tag_off;
      trace_tag = (static_cast<uint32_t>(tag_at[0]) << 24) |
                  (static_cast<uint32_t>(tag_at[1]) << 16) |
                  (static_cast<uint32_t>(tag_at[2]) << 8) |
                  static_cast<uint32_t>(tag_at[3]);
    }
    if (binding.handler.has_value()) {
      // ASH path: the handler runs *now*, at interrupt level, without
      // scheduling the owner. Replies leave from here (paper §6.3).
      Trace(xtrace::Event::kDpfMatch, *match, static_cast<uint32_t>(frame->size()),
            /*path=*/2, trace_tag);
      ++owner->counters.packets_rx;
      ash::AshServices services;
      services.send_reply = [this, owner](std::span<const uint8_t> reply) {
        if (nic_->Transmit(reply)) {
          ++owner->counters.packets_tx;
        }
      };
      services.wake_owner = [this, owner]() { WakeEnvInternal(*owner); };
      const ash::AshOutcome outcome =
          ash::RunAsh(*binding.handler, *frame, BindingRegion(binding), services);
      machine_.Charge(outcome.sim_cycles);
    } else if (binding.ring.live) {
      // Ring path: deposit straight into the owner's RX ring at interrupt
      // level — one copy off the wire, no kernel-heap buffering. The
      // consumer cursor is application memory and untrusted; free-running
      // index arithmetic makes any value safe (a corrupted tail at worst
      // drops the owner's own frames as "ring full").
      net::PacketRingView view = RingViewOf(binding);
      const uint32_t occupancy = binding.ring.rx_head - view.rx_tail();
      if (binding.ring.shed_watermark != 0 &&
          occupancy >= binding.ring.shed_watermark) {
        // Library-installed shed policy: the owner told us at bind time
        // where its queue stops being useful. Dropping here costs the
        // demux a handful of cycles, so an overloaded consumer cannot
        // make the interrupt path slow for its neighbors. Disarmed
        // (watermark 0) this branch is one compare and charges nothing.
        machine_.Charge(kRingShed);
        ++binding.stats.shed;
        ++owner->counters.packets_shed;
        Trace(xtrace::Event::kDpfDrop, /*reason=*/4, *match);
        continue;
      }
      if (occupancy >= binding.ring.rx_slots) {
        ++binding.stats.ring_drops;  // Consumer too slow: drop and count.
        ++owner->counters.packets_shed;
        Trace(xtrace::Event::kDpfDrop, /*reason=*/1, *match);
        continue;
      }
      Trace(xtrace::Event::kDpfMatch, *match, static_cast<uint32_t>(frame->size()),
            /*path=*/1, trace_tag);
      ++owner->counters.packets_rx;
      machine_.Charge(hw::kMemWordCopy * ((frame->size() + 3) / 4));
      machine_.Charge(kRingPublish);
      view.WriteRxSlot(binding.ring.rx_head, *frame);
      ++binding.ring.rx_head;
      view.set_rx_head(binding.ring.rx_head);
      ++binding.stats.delivered;
      if (occupancy + 1 > binding.stats.rx_occupancy_hwm) {
        binding.stats.rx_occupancy_hwm = occupancy + 1;  // Free bookkeeping.
      }
      if (!binding.ring.batch_doorbells || view.rx_armed()) {
        // Batched mode posts a doorbell only when the consumer armed the
        // ring before blocking, and disarming here coalesces the rest of
        // this drain: an awake consumer polls the header for free.
        view.set_rx_armed(false);
        machine_.Charge(kRxDoorbell);
        ++binding.stats.doorbells;
        WakeEnvInternal(*owner);
      }
    } else {
      // Queue in a kernel buffer and wake the owner; it pays the extra
      // copy and the scheduling delay when it finally runs. The queue is
      // capped: a slow consumer drops frames (counted) rather than growing
      // kernel memory without bound.
      if (binding.queue.size() >= FilterBinding::kMaxQueuedPackets) {
        ++binding.stats.queue_drops;
        Trace(xtrace::Event::kDpfDrop, /*reason=*/2, *match);
        continue;
      }
      Trace(xtrace::Event::kDpfMatch, *match, static_cast<uint32_t>(frame->size()),
            /*path=*/0, trace_tag);
      ++owner->counters.packets_rx;
      machine_.Charge(hw::kMemWordCopy * ((frame->size() + 3) / 4));
      binding.queue.push_back(std::move(*frame));
      ++binding.stats.queued;
      machine_.Charge(kRxDoorbell);
      ++binding.stats.doorbells;
      WakeEnvInternal(*owner);
    }
  }
}

// --- Framebuffer binding ---

Status Aegis::SysBindFbTile(uint32_t tile_x, uint32_t tile_y) {
  SyscallScope scope(*this, xtrace::Sys::kBindFbTile);
  machine_.Charge(kSyscallEntry + Instr(6) + kSyscallExit);
  if (framebuffer_ == nullptr) {
    return Status::kErrUnsupported;
  }
  Env& env = CurrentEnv();
  const uint32_t x = tile_x * hw::Framebuffer::kTileDim;
  const uint32_t y = tile_y * hw::Framebuffer::kTileDim;
  if (x >= framebuffer_->width() || y >= framebuffer_->height()) {
    return Status::kErrOutOfRange;
  }
  const uint32_t owner = framebuffer_->OwnerAt(x, y);
  if (owner != hw::Framebuffer::kNoOwner && owner != env.id) {
    return Status::kErrAccessDenied;
  }
  return framebuffer_->SetTileOwner(tile_x, tile_y, env.id);
}

// --- Revocation and the abort protocol (paper §3.4–3.5) ---

std::vector<hw::PageId> Aegis::SysReadRepossessed() {
  SyscallScope scope(*this, xtrace::Sys::kReadRepossessed);
  machine_.Charge(kSyscallEntry + Instr(6) + kSyscallExit);
  Env& env = CurrentEnv();
  std::vector<hw::PageId> taken = std::move(env.repossessed);
  env.repossessed.clear();
  return taken;
}

uint32_t Aegis::Repossess(Env& victim, uint32_t pages) {
  uint32_t taken = 0;
  for (hw::PageId p = 0; p < pages_.size() && taken < pages; ++p) {
    if (pages_[p].owner != victim.id) {
      continue;
    }
    pages_[p].owner = kNoEnv;
    ++pages_[p].epoch;
    FlushPageBindings(p);
    if (victim.repossessed.size() < Env::kMaxRepossessed) {
      victim.repossessed.push_back(p);
    } else {
      // The vector is bounded: the frame is reclaimed regardless, but a
      // libOS that never drains its vector loses the notification and the
      // overflow is counted where SysEnvStats can see it.
      ++victim.counters.repossess_overflow;
    }
    if (victim.pages_owned > 0) {
      --victim.pages_owned;
    }
    ++taken;
  }
  Trace(xtrace::Event::kRepossess, victim.id, taken);
  if (taken > 0) {
    // Forced reclamation wakes the victim: a repossessed ring page can
    // sever the very binding a blocked receiver is waiting on, and only
    // an awake libOS can drain its repossession vector and repair.
    WakeEnvInternal(victim);
  }
  return taken;
}

Status Aegis::RevokePages(EnvId victim_id, uint32_t pages) {
  Env* victim = FindEnv(victim_id);
  if (victim == nullptr || victim->state == EnvState::kExited) {
    return Status::kErrNotFound;
  }
  Trace(xtrace::Event::kRevoke, victim_id, pages);
  const uint32_t free_before = free_pages();
  if (victim->handlers.revoke) {
    // Visible revocation: the library OS chooses which pages to give up.
    // The handler runs with the victim's identity but must not block —
    // revocation can arrive at interrupt level on an arbitrary fiber.
    const EnvId saved = cur().current;
    cur().current = victim_id;
    victim->handlers.revoke(pages);
    cur().current = saved;
  }
  const uint32_t freed = free_pages() - free_before;
  if (freed < pages) {
    // Abort protocol: break the bindings by force and record them in the
    // repossession vector so the libOS can repair its abstractions.
    Repossess(*victim, pages - freed);
  }
  return Status::kOk;
}

uint32_t Aegis::RevokeSlices(EnvId victim_id, uint32_t slots, uint32_t min_keep) {
  Env* victim = FindEnv(victim_id);
  if (victim == nullptr || victim->state == EnvState::kExited) {
    return 0;
  }
  uint32_t removed = 0;
  // Highest-index CPUs first: birth slices land on the least-loaded (often
  // lowest) CPU, so pressure peels an env back toward its home processor
  // before touching its last slots there.
  for (uint32_t k = machine_.cpu_count(); k-- > 0 && removed < slots;) {
    CpuSched& cpu = cpu_[k];
    bool still_holds = false;
    machine_.Charge(Instr(2) * cpu.slice_vector.size());
    for (EnvId& owner : cpu.slice_vector) {
      if (owner != victim_id) {
        continue;
      }
      if (removed < slots && victim->slice_slots > min_keep) {
        owner = kNoEnv;
        --victim->slice_slots;
        ++removed;
      } else {
        still_holds = true;
      }
    }
    if (!still_holds) {
      victim->slot_mask &= ~(1ULL << k);
    }
  }
  if (removed > 0) {
    victim->counters.slices_revoked += removed;
    Trace(xtrace::Event::kSliceRevoke, victim_id, removed, victim->slice_slots);
  }
  return removed;
}

uint32_t Aegis::ReclaimFilters(EnvId victim_id, uint32_t filters) {
  Env* victim = FindEnv(victim_id);
  if (victim == nullptr || victim->state == EnvState::kExited) {
    return 0;
  }
  uint32_t reclaimed = 0;
  for (dpf::FilterId id = 0; id < bindings_.size() && reclaimed < filters; ++id) {
    FilterBinding& binding = bindings_[id];
    if (!binding.live || binding.owner != victim_id) {
      continue;
    }
    // Same severing as teardown: classifier stops steering, the queue
    // drops, the ring stops naming pages. Stats survive for post-mortems.
    machine_.Charge(Instr(10));
    binding.live = false;
    binding.queue.clear();
    binding.handler.reset();
    binding.ring = RingState{};
    (void)classifier_.Remove(id);
    Trace(xtrace::Event::kFilterReclaim, victim_id, id);
    ++reclaimed;
  }
  if (reclaimed > 0) {
    // Visible revocation must be visible: a victim blocked waiting on a
    // now-severed ring would otherwise sleep forever — no packet will
    // ever arrive to wake it. The wake lets its receive path observe the
    // dead binding and run its repair protocol.
    WakeEnvInternal(*victim);
  }
  return reclaimed;
}

uint32_t Aegis::ReclaimExtents(EnvId victim_id, uint32_t extents, uint32_t min_keep) {
  Env* victim = FindEnv(victim_id);
  if (victim == nullptr || victim->state == EnvState::kExited) {
    return 0;
  }
  uint32_t live = 0;
  for (const DiskExtent& extent : extents_) {
    if (extent.live && extent.owner == victim_id) {
      ++live;
    }
  }
  uint32_t reclaimed = 0;
  for (uint32_t id = 0; id < extents_.size() && reclaimed < extents; ++id) {
    DiskExtent& extent = extents_[id];
    if (!extent.live || extent.owner != victim_id || live - reclaimed <= min_keep) {
      continue;
    }
    // Epoch bump voids every outstanding capability for the extent; the
    // blocks themselves return to the allocator like SysFreeDiskExtent.
    machine_.Charge(Instr(4));
    extent.live = false;
    ++extent.epoch;
    Trace(xtrace::Event::kExtentReclaim, victim_id, id);
    ++reclaimed;
  }
  return reclaimed;
}

// --- Resource pressure (deterministic revocation campaigns) ---

void Aegis::InstallPressurePlan(const PressurePlan& plan) {
  pressure_ = std::make_unique<PressureEngine>(plan);
  const uint64_t now = machine_.clock().now();
  // One-shot events carry a 1-based cookie naming the plan entry.
  for (size_t i = 0; i < plan.events.size(); ++i) {
    const uint64_t at = plan.events[i].at_cycle;
    priv_.ScheduleEvent(at > now ? at - now : 0, hw::InterruptSource::kPressure,
                        static_cast<uint64_t>(i) + 1);
  }
  // The storm is self-rescheduling: cookie 0 means "burst, then re-arm".
  if (plan.storm_end > plan.storm_start) {
    priv_.ScheduleEvent(plan.storm_start > now ? plan.storm_start - now : 0,
                        hw::InterruptSource::kPressure, 0);
  }
}

uint32_t Aegis::PressureHeadroom(const Env& env, PressureKind kind) const {
  if (env.state == EnvState::kExited || pressure_ == nullptr) {
    return 0;
  }
  const ReserveFloor& floor = pressure_->plan().floor;
  switch (kind) {
    case PressureKind::kRevokePages:
      return env.pages_owned > floor.pages ? env.pages_owned - floor.pages : 0;
    case PressureKind::kRevokeSlices:
      return env.slice_slots > floor.slices ? env.slice_slots - floor.slices : 0;
    case PressureKind::kReclaimFilters: {
      uint32_t owned = 0;
      for (const FilterBinding& binding : bindings_) {
        if (binding.live && binding.owner == env.id) {
          ++owned;
        }
      }
      return owned;  // No floor: packets are never a survival resource.
    }
    case PressureKind::kReclaimExtents: {
      uint32_t owned = 0;
      for (const DiskExtent& extent : extents_) {
        if (extent.live && extent.owner == env.id) {
          ++owned;
        }
      }
      return owned > floor.extents ? owned - floor.extents : 0;
    }
  }
  return 0;
}

Env* Aegis::PickPressureVictim(PressureKind kind) {
  // Richest eligible env (most headroom above its floor); seeded draw
  // breaks ties so campaigns are deterministic per plan seed.
  uint32_t best = 0;
  for (const auto& env : envs_) {
    best = std::max(best, PressureHeadroom(*env, kind));
  }
  if (best == 0) {
    return nullptr;
  }
  std::vector<Env*> candidates;
  for (const auto& env : envs_) {
    if (PressureHeadroom(*env, kind) == best) {
      candidates.push_back(env.get());
    }
  }
  return candidates[pressure_->NextDraw(candidates.size())];
}

void Aegis::ApplyPressure(PressureKind kind, EnvId victim_id, uint32_t amount) {
  PressureStats& stats = pressure_->stats();
  ++stats.revocations;
  Env* victim = victim_id == kAnyEnv ? PickPressureVictim(kind) : FindEnv(victim_id);
  if (victim == nullptr || victim->state == EnvState::kExited) {
    ++stats.floor_clamps;  // Nobody above the floor (or victim gone).
    return;
  }
  const uint32_t headroom = PressureHeadroom(*victim, kind);
  const uint32_t applied = std::min(amount, headroom);
  if (applied < amount) {
    ++stats.floor_clamps;
  }
  Trace(xtrace::Event::kPressureTick, static_cast<uint32_t>(kind), victim->id,
        amount, applied);
  if (applied == 0) {
    return;
  }
  const ReserveFloor& floor = pressure_->plan().floor;
  switch (kind) {
    case PressureKind::kRevokePages:
      stats.pages_requested += applied;
      (void)RevokePages(victim->id, applied);
      break;
    case PressureKind::kRevokeSlices:
      stats.slices_revoked += RevokeSlices(victim->id, applied, floor.slices);
      break;
    case PressureKind::kReclaimFilters:
      stats.filters_reclaimed += ReclaimFilters(victim->id, applied);
      break;
    case PressureKind::kReclaimExtents:
      stats.extents_reclaimed += ReclaimExtents(victim->id, applied, floor.extents);
      break;
  }
  MaybeAuditAfterFault();
}

void Aegis::HandlePressure(uint64_t cookie) {
  if (pressure_ == nullptr || powered_off_) {
    return;  // Spurious (injected) or post-mortem pressure tick.
  }
  const PressurePlan& plan = pressure_->plan();
  if (cookie != 0) {
    if (cookie > plan.events.size()) {
      return;  // Spurious cookie.
    }
    const PressureEvent& event = plan.events[cookie - 1];
    ApplyPressure(event.kind, event.victim, event.amount);
    return;
  }
  // Storm burst: each armed channel fires once against a seeded victim.
  ++pressure_->stats().bursts;
  if (plan.storm_pages > 0) {
    ApplyPressure(PressureKind::kRevokePages, kAnyEnv, plan.storm_pages);
  }
  if (plan.storm_slices > 0) {
    ApplyPressure(PressureKind::kRevokeSlices, kAnyEnv, plan.storm_slices);
  }
  if (plan.storm_filters > 0) {
    ApplyPressure(PressureKind::kReclaimFilters, kAnyEnv, plan.storm_filters);
  }
  if (plan.storm_extents > 0) {
    ApplyPressure(PressureKind::kReclaimExtents, kAnyEnv, plan.storm_extents);
  }
  const uint64_t now = machine_.clock().now();
  if (now + plan.storm_period <= plan.storm_end) {
    priv_.ScheduleEvent(plan.storm_period, hw::InterruptSource::kPressure, 0);
  }
}

}  // namespace xok::aegis
