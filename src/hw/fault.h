// Deterministic, seeded fault injection for the simulated hardware.
//
// The exokernel's central claim is that it *securely multiplexes* hardware
// among untrusted, arbitrarily misbehaving library OSes (paper §3.4–3.5).
// Proving that requires the ability to make the hardware — and the
// applications — misbehave on demand, reproducibly. A FaultPlan is a seeded
// schedule of failures across several channels:
//
//   * stochastic channels, drawn per opportunity from per-channel SplitMix64
//     streams: disk transfers that complete with an error, frames that
//     evaporate on the wire, frames that are bit-flipped in transit;
//   * one-shot scheduled events, fired at absolute cycle counts through the
//     machine's ordinary event queue: spurious interrupts with bogus
//     payloads, and asynchronous environment kills (delivered to the kernel
//     as InterruptSource::kFault at the next cycle-charge boundary, i.e. at
//     an arbitrary point in kernel or application execution).
//
// The same FaultInjector object is shared by the devices it arms (disk,
// wire) so a single seed reproduces an entire chaotic run exactly.
#ifndef XOK_SRC_HW_FAULT_H_
#define XOK_SRC_HW_FAULT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/rand.h"
#include "src/hw/trap.h"

namespace xok::hw {

enum class FaultKind : uint8_t {
  kKillEnv,      // arg0 = environment id: forcibly terminate it.
  kSpuriousIrq,  // arg0 = InterruptSource, arg1 = payload: bogus interrupt.
  kPowerCut,     // Power loss: the machine halts; volatile disk state dies.
};

struct FaultEvent {
  uint64_t at_cycle = 0;
  FaultKind kind = FaultKind::kSpuriousIrq;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

struct FaultPlan {
  uint64_t seed = 1;
  // Stochastic channels: probability per opportunity, in per-mille.
  uint32_t disk_error_per_mille = 0;    // Transfer completes with an error.
  uint32_t disk_torn_per_mille = 0;     // Volatile block torn (prefix) at power cut.
  uint32_t wire_drop_per_mille = 0;     // Frame evaporates on the wire.
  uint32_t wire_corrupt_per_mille = 0;  // Frame is bit-flipped in transit.
  // One-shot scheduled faults (absolute cycles).
  std::vector<FaultEvent> events;

  FaultPlan& KillEnvAt(uint64_t cycle, uint32_t env) {
    events.push_back(FaultEvent{cycle, FaultKind::kKillEnv, env, 0});
    return *this;
  }
  FaultPlan& SpuriousIrqAt(uint64_t cycle, InterruptSource source, uint64_t payload) {
    events.push_back(
        FaultEvent{cycle, FaultKind::kSpuriousIrq, static_cast<uint64_t>(source), payload});
    return *this;
  }
  FaultPlan& PowerCutAt(uint64_t cycle) {
    events.push_back(FaultEvent{cycle, FaultKind::kPowerCut, 0, 0});
    return *this;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  // Stochastic draws. Each channel has its own deterministic stream, so
  // enabling one channel does not perturb another's schedule.
  bool NextDiskError();
  bool NextWireDrop();
  // Flips one byte of `frame` in place; returns whether it fired.
  bool MaybeCorruptFrame(std::span<uint8_t> frame);
  // Torn-write draw for one volatile block at power cut: 0 means the block
  // is lost whole (old contents survive); 1..words_per_block-1 means that
  // many leading words of the new contents reached the platter mid-DMA.
  uint32_t NextTornWords(uint32_t words_per_block);

  // Injection counters (tests assert the faults really fired).
  uint64_t disk_errors_injected() const { return disk_errors_injected_; }
  uint64_t blocks_torn() const { return blocks_torn_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t frames_corrupted() const { return frames_corrupted_; }

 private:
  FaultPlan plan_;
  SplitMix64 disk_rng_;
  SplitMix64 torn_rng_;
  SplitMix64 drop_rng_;
  SplitMix64 corrupt_rng_;
  uint64_t disk_errors_injected_ = 0;
  uint64_t blocks_torn_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t frames_corrupted_ = 0;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_FAULT_H_
