// Timed hardware events (packet arrivals, disk completions) delivered to a
// machine as interrupts once the simulated clock reaches their due cycle.
#ifndef XOK_SRC_HW_EVENT_H_
#define XOK_SRC_HW_EVENT_H_

#include <cstdint>

#include "src/hw/trap.h"

namespace xok::hw {

struct PendingEvent {
  uint64_t due_cycle = 0;
  InterruptSource source = InterruptSource::kTimer;
  uint64_t payload = 0;
  uint64_t seq = 0;  // Tie-breaker: events due on the same cycle keep order.

  bool operator>(const PendingEvent& other) const {
    if (due_cycle != other.due_cycle) {
      return due_cycle > other.due_cycle;
    }
    return seq > other.seq;
  }
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_EVENT_H_
