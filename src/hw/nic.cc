#include "src/hw/nic.h"

namespace xok::hw {

Nic::Nic(Machine& machine, MacAddr mac) : machine_(machine), mac_(mac & kBroadcastMac) {}

bool Nic::Transmit(std::span<const uint8_t> frame) {
  if (frame.size() < kMinFrameBytes || frame.size() > kMaxFrameBytes) {
    return false;
  }
  if (ReadMac(frame, 0) == mac_) {
    // Internal loopback: a frame addressed to the controller's own station
    // address never reaches the wire — the controller DMA-loops it into its
    // own receive ring (LANCE loopback mode). The sender still pays the
    // buffer copy and controller setup, but not wire serialisation, so
    // same-machine client/server traffic measures software path length.
    machine_.Charge(kMemWordCopy * ((frame.size() + 3) / 4));
    machine_.Charge(kNicControllerLatency);
    ++frames_transmitted_;
    ++loopback_frames_;
    DeliverAt(machine_.clock().now() + kNicControllerLatency,
              std::vector<uint8_t>(frame.begin(), frame.end()));
    return true;
  }
  if (wire_ == nullptr) {
    return false;  // Cable unplugged.
  }
  // TX contention: the single transmitter serialises one frame at a time;
  // a sender that outruns the wire stalls until the previous frame clears.
  const uint64_t now = machine_.clock().now();
  if (tx_free_at_ > now) {
    ++tx_stalls_;
    tx_stall_cycles_ += tx_free_at_ - now;
    machine_.Charge(tx_free_at_ - now);
  }
  // Copy into the transmit buffer plus DMA/doorbell setup.
  machine_.Charge(kMemWordCopy * ((frame.size() + 3) / 4));
  machine_.Charge(kNicControllerLatency);
  wire_->Broadcast(this, frame);
  tx_free_at_ = machine_.clock().now() + frame.size() * kWireCyclesPerByte;
  ++frames_transmitted_;
  return true;
}

std::optional<std::vector<uint8_t>> Nic::ReceiveNext() {
  machine_.Charge(Instr(4));  // Ring descriptor examination.
  if (rx_ring_.empty()) {
    return std::nullopt;
  }
  std::vector<uint8_t> frame = std::move(rx_ring_.front());
  rx_ring_.pop_front();
  return frame;
}

void Nic::InjectRx(std::vector<uint8_t> frame) {
  DeliverAt(machine_.clock().now(), std::move(frame));
}

void Nic::DeliverAt(uint64_t arrival_cycle, std::vector<uint8_t> frame) {
  if (rx_ring_.size() >= kRxRingSlots) {
    ++frames_dropped_;
    return;
  }
  ++frames_received_;
  rx_ring_.push_back(std::move(frame));
  machine_.PushEvent(arrival_cycle, InterruptSource::kNicRx, 0);
}

void Wire::Attach(Nic* nic) {
  nics_.push_back(nic);
  nic->wire_ = this;
}

void Wire::Broadcast(Nic* sender, std::span<const uint8_t> frame) {
  if (loss_per_mille_ > 0 && loss_rng_.NextBelow(1000) < loss_per_mille_) {
    ++frames_lost_;  // The frame evaporates on the wire.
    return;
  }
  if (fault_injector_ != nullptr && fault_injector_->NextWireDrop()) {
    ++frames_lost_;
    return;
  }
  std::vector<uint8_t> bytes(frame.begin(), frame.end());
  if (fault_injector_ != nullptr && fault_injector_->MaybeCorruptFrame(bytes)) {
    ++frames_corrupted_;  // Bit rot in transit; receivers must checksum.
  }
  const MacAddr dst = ReadMac(bytes, 0);
  const uint64_t arrival = sender->machine_.clock().now() +
                           bytes.size() * kWireCyclesPerByte + kNicControllerLatency;
  for (Nic* nic : nics_) {
    if (nic == sender) {
      continue;
    }
    if (dst == kBroadcastMac || dst == nic->mac()) {
      nic->DeliverAt(arrival, bytes);
    }
  }
}

}  // namespace xok::hw
