#include "src/hw/fiber.h"

#include <cstdio>
#include <cstdlib>

namespace xok::hw {

Fiber::Fiber() {
  // Context is filled in by the first Switch() away from this fiber.
}

Fiber::Fiber(Entry entry, size_t stack_bytes) : stack_(stack_bytes), entry_(std::move(entry)) {
  if (getcontext(&context_) != 0) {
    std::perror("getcontext");
    std::abort();
  }
  context_.uc_stack.ss_sp = stack_.data();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = nullptr;  // Entries never return; see header contract.
  // makecontext only passes ints portably, so smuggle `this` as two halves.
  auto self = reinterpret_cast<uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 2,
              static_cast<unsigned>(self >> 32), static_cast<unsigned>(self & 0xffffffffu));
}

void Fiber::Switch(Fiber& from, Fiber& to) {
  if (swapcontext(&from.context_, &to.context_) != 0) {
    std::perror("swapcontext");
    std::abort();
  }
}

void Fiber::Trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>((static_cast<uintptr_t>(hi) << 32) |
                                        static_cast<uintptr_t>(lo));
  self->entry_();
  std::fprintf(stderr, "xok: fiber entry returned without exiting via its kernel\n");
  std::abort();
}

}  // namespace xok::hw
