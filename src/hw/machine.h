// The simulated machine: one or more CPUs (cycle clock, exception raising,
// interrupt delivery, privileged-operation port), physical memory, and the
// hardware TLBs. Devices (NIC, framebuffer, disk) attach to a machine.
//
// Execution model: application and kernel code are ordinary C++ running on
// fibers. Simulated time advances only through Charge(); asynchronous
// interrupts (timer, NIC, disk, IPI) are delivered at charge boundaries or
// when a CPU idles in WaitForInterrupt(). Synchronous exceptions (TLB miss,
// protection, unaligned, overflow, coprocessor) are raised by the memory and
// ALU access methods and vector immediately to the installed kernel.
//
// SMP model: Config::cpus > 1 gives the machine several processors that
// share physical memory and devices but each own a TLB, ASID, slice timer,
// interrupt state, event queue, and — crucially — a local cycle clock.
// CPU 0 aliases the machine clock (and the world clock when attached), so a
// single-CPU machine behaves bit-for-bit as before. The per-CPU kernel
// loops run on fibers interleaved by the machine in lowest-local-time-first
// order at charge boundaries, mirroring how hw::World interleaves machines.
// Multi-CPU machines cannot join a World: cross-machine event ordering
// assumes one shared clock per machine.
#ifndef XOK_SRC_HW_MACHINE_H_
#define XOK_SRC_HW_MACHINE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/base/result.h"
#include "src/hw/clock.h"
#include "src/hw/cost.h"
#include "src/hw/event.h"
#include "src/hw/fiber.h"
#include "src/hw/phys_mem.h"
#include "src/hw/tlb.h"
#include "src/hw/trap.h"

namespace xok::hw {

class Machine;
class World;

// Handed to the installed kernel and to nothing else: all operations a real
// CPU would reserve for supervisor mode. Operations act on the CPU that is
// currently executing.
class PrivPort {
 public:
  explicit PrivPort(Machine& machine) : machine_(machine) {}

  PrivPort(const PrivPort&) = delete;
  PrivPort& operator=(const PrivPort&) = delete;

  // TLB management (current CPU's TLB). Each call charges its hardware cost.
  void TlbWriteRandom(const TlbEntry& entry);
  void TlbInvalidate(Vpn vpn, Asid asid);
  void TlbFlushAsid(Asid asid);
  void TlbFlushAll();
  const TlbEntry* TlbProbe(Vpn vpn, Asid asid);

  // Remote TLB invalidation, the hardware half of a shootdown: drops the
  // matching entries in another CPU's TLB and returns how many were live.
  // Charges nothing — the kernel models the IPI + handler cost itself
  // (core/costs.h) because the protocol, not the wire, dominates.
  uint32_t TlbRemoteFlushPfn(uint32_t cpu, PageId pfn);
  uint32_t TlbRemoteFlushAsid(uint32_t cpu, Asid asid);

  // Addressing context.
  void SetAsid(Asid asid);
  Asid asid() const;

  // Slice timer: raises InterruptSource::kTimer at the next charge boundary
  // once the clock has reached the deadline. A deadline at or before the
  // current cycle (including cycle 0) fires on the very next Charge.
  void SetSliceDeadline(uint64_t absolute_cycle);
  // Disarms the slice timer.
  void ClearSliceDeadline();
  uint64_t slice_deadline() const;
  bool slice_armed() const;

  // Coprocessor (FPU) enable bit; when clear, CoprocOp() raises
  // kCoprocUnusable.
  void SetCoprocEnabled(bool enabled);

  // Interrupt enable. Interrupts queue while disabled. The machine disables
  // interrupts automatically for the duration of OnException/OnInterrupt.
  void SetInterruptsEnabled(bool enabled);
  bool interrupts_enabled() const;

  // Physical (untranslated) memory access, as kernel-mode KSEG0 access on
  // MIPS. Charges per word.
  uint32_t PhysReadWord(Paddr pa);
  void PhysWriteWord(Paddr pa, uint32_t value);
  // Bulk copy between physical ranges; charges kMemWordCopy per word.
  void PhysCopy(Paddr dst, Paddr src, uint32_t bytes);

  // Schedules a device event `delay` cycles from now on the current CPU.
  void ScheduleEvent(uint64_t delay, InterruptSource source, uint64_t payload);

  // Posts InterruptSource::kIpi to `cpu` with a kernel-defined payload,
  // charging the mailbox write. The target observes it kIpiLatency after
  // the sender's current cycle, at its next charge boundary.
  void SendIpi(uint32_t cpu, uint64_t payload);

  // CPU topology, as a real kernel would read from PRId/config registers.
  uint32_t cpu_count() const;
  uint32_t current_cpu() const;

  // Swaps the trap-nesting depth, returning the old value. Kernels that
  // switch execution contexts from inside a trap handler (e.g. ending a
  // time slice) must save the suspended context's depth and restore it when
  // resuming that context, so interrupt masking follows the context rather
  // than the physical call stack.
  int SwapTrapDepth(int depth);

 private:
  Machine& machine_;
};

// One simulated processor: the state a context switch or an interrupt can
// touch that is private to a CPU. CPUs share the machine's physical memory
// and devices; each owns its TLB, ASID, slice timer, interrupt-enable and
// trap state, pending-event queue, and a local cycle clock (CPU 0 aliases
// the machine clock so single-CPU configurations are unchanged).
class Cpu {
 public:
  Cpu(Machine& machine, uint32_t index, std::shared_ptr<CycleClock> clock);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  uint32_t index() const { return index_; }
  CycleClock& clock() { return *clock_; }
  const CycleClock& clock() const { return *clock_; }
  Tlb& tlb() { return tlb_; }

 private:
  friend class Machine;
  friend class PrivPort;

  // Where this CPU stands in the machine's SMP interleaver. kIdle outside
  // RunCpus (and always, on a single-CPU machine).
  enum class RunState : uint8_t { kIdle, kReady, kRunning, kParked, kDone };

  void Charge(uint64_t cycles);
  void WaitForInterrupt();
  bool DeliverDue();
  void DeliverOne(const PendingEvent& event);
  void PushEvent(uint64_t due_cycle, InterruptSource source, uint64_t payload);

  // Earliest cycle at which this CPU has something to do; ~0 if none.
  uint64_t NextDueCycle() const {
    uint64_t next = ~0ULL;
    if (!events_.empty()) {
      next = events_.top().due_cycle;
    }
    if (slice_armed_ && slice_deadline_ < next) {
      next = slice_deadline_;
    }
    return next;
  }

  Machine& machine_;
  uint32_t index_;
  std::shared_ptr<CycleClock> clock_;
  Tlb tlb_;
  Asid asid_ = 0;
  uint64_t slice_deadline_ = 0;
  bool slice_armed_ = false;
  bool coproc_enabled_ = false;
  bool interrupts_enabled_ = true;
  int trap_depth_ = 0;

  std::priority_queue<PendingEvent, std::vector<PendingEvent>, std::greater<>> events_;
  uint64_t event_seq_ = 0;

  // SMP interleaving (meaningful only while Machine::RunCpus is active).
  // `fiber_` doubles as the entry fiber and the continuation slot: a switch
  // away saves whatever this CPU was executing — kernel loop or environment
  // fiber — and a switch back resumes it exactly there.
  std::unique_ptr<Fiber> fiber_;
  RunState run_state_ = RunState::kIdle;
};

class Machine {
 public:
  struct Config {
    uint32_t phys_pages = 4096;  // 16 MB, a well-equipped DECstation.
    const char* name = "m0";
    uint32_t cpus = 1;  // Processor count; >1 is incompatible with World.
  };

  explicit Machine(const Config& config, World* world = nullptr);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Installs the kernel and returns the privileged port. Exactly one kernel
  // per machine; interrupts on every CPU vector to it.
  PrivPort& InstallKernel(TrapSink* kernel);

  // The executing CPU's clock and TLB. Host-side (outside RunCpus) these are
  // CPU 0's, which on a single-CPU machine is exactly the old machine state.
  CycleClock& clock() { return active_->clock(); }
  const CycleClock& clock() const { return active_->clock(); }
  PhysMem& mem() { return mem_; }
  Tlb& tlb() { return active_->tlb(); }
  World* world() { return world_; }
  const char* name() const { return config_.name; }

  uint32_t cpu_count() const { return static_cast<uint32_t>(cpus_.size()); }
  uint32_t current_cpu() const { return active_->index(); }
  Cpu& cpu(uint32_t index) { return *cpus_[index]; }

  // Highest local cycle count across CPUs: the wall-clock of an SMP run.
  uint64_t MaxCpuCycle() const;

  // True if `cpu` is parked in WaitForInterrupt under the SMP interleaver.
  // Kernels use this to decide whether a cross-CPU wake needs an IPI kick
  // (a busy CPU will rescan on its own; a parked one sleeps until an event).
  bool CpuParked(uint32_t index) const;

  // --- Unprivileged CPU operations (act on the executing CPU) ---

  // Advances simulated time and delivers any due interrupts.
  void Charge(uint64_t cycles);

  // Translated memory access. Word accesses must be 4-byte aligned (raises
  // kAddressError otherwise). TLB misses and write-protection vector to the
  // kernel; if the kernel cannot resolve them the access returns an error.
  Result<uint32_t> LoadWord(Vaddr va);
  Status StoreWord(Vaddr va, uint32_t value);
  Result<uint8_t> LoadByte(Vaddr va);
  Status StoreByte(Vaddr va, uint8_t value);

  // Bulk translated copy into / out of a caller buffer. Translates once per
  // page, charges kMemWordCopy per word. Used by library OSes for message
  // buffers; faults behave as for LoadWord/StoreWord.
  Status CopyIn(std::span<uint8_t> dst, Vaddr src);
  Status CopyOut(Vaddr dst, std::span<const uint8_t> src);

  // ALU trap sources (paper Table 5 workloads).
  Result<int32_t> AddOverflow(int32_t a, int32_t b);  // Signed add, traps on overflow.
  Status CoprocOp();                                  // FP op; traps if coproc disabled.

  // Parks the executing CPU until an interrupt is delivered. In a World,
  // control passes to other machines; under the SMP interleaver, to other
  // CPUs (a CPU resumed without a due event returns so its kernel loop can
  // re-check its run condition); standalone, the clock jumps to the next
  // local event (aborts if there is none — that would be a hang).
  void WaitForInterrupt();

  // Runs one body per CPU on its own fiber, interleaved at charge
  // boundaries so that the CPU with the lowest local cycle count executes
  // first — the SMP analogue of World's event loop. Returns when every body
  // has returned. Requires exactly cpu_count() bodies.
  void RunCpus(std::vector<std::function<void()>> bodies);

  // True while executing the kernel's OnException/OnInterrupt.
  bool in_trap() const { return active_->trap_depth_ > 0; }

  // Deterministic per-machine id assigned by the world (0 standalone).
  uint32_t world_index() const { return world_index_; }
  void set_world_index(uint32_t index) { world_index_ = index; }

  // Earliest cycle at which this machine has something to do (queued event
  // or armed slice timer on any CPU); ~0 if none. Used by the world
  // scheduler.
  uint64_t NextDueCycle() const {
    uint64_t next = ~0ULL;
    for (const std::unique_ptr<Cpu>& cpu : cpus_) {
      next = std::min(next, cpu->NextDueCycle());
    }
    return next;
  }

 private:
  friend class Cpu;
  friend class PrivPort;
  friend class World;
  friend class Nic;   // Devices post their own completion events.
  friend class Disk;

  // Translates va for an access; raises exceptions as needed. Returns the
  // physical address, or an error if the kernel could not resolve the fault.
  Result<Paddr> Translate(Vaddr va, bool store);

  TrapOutcome RaiseException(ExceptionType type, Vaddr bad_vaddr, bool store);

  // Device events are wired to CPU 0, as on most real boards.
  void PushEvent(uint64_t due_cycle, InterruptSource source, uint64_t payload);

  // --- SMP interleaver (no-ops on a single-CPU machine) ---

  // True if another CPU should execute before `cpu` burns more cycles:
  // a ready sibling whose local clock is behind, or a parked sibling whose
  // next event is already due by `cpu`'s local time.
  bool SiblingBehind(const Cpu& cpu) const;
  // Saves the executing CPU's continuation and re-enters the scheduler.
  void YieldCpu(Cpu& cpu);    // Stays ready: resumed by clock order.
  void ParkCpu(Cpu& cpu);     // Sleeps: resumed by a due event (or spuriously).
  void ResumeCpu(Cpu& cpu);   // Scheduler side: runs `cpu` until it yields.
  void ScheduleCpus();        // The interleaving loop itself.

  Config config_;
  PhysMem mem_;
  PrivPort priv_;
  World* world_;
  uint32_t world_index_ = 0;

  TrapSink* kernel_ = nullptr;

  std::vector<std::unique_ptr<Cpu>> cpus_;
  Cpu* active_ = nullptr;      // The CPU whose code is executing now.
  bool smp_running_ = false;   // Inside RunCpus.
  Fiber scheduler_fiber_;      // Continuation slot for the RunCpus caller.
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_MACHINE_H_
