// The simulated machine: CPU (cycle clock, exception raising, interrupt
// delivery, privileged-operation port), physical memory, and the hardware
// TLB. Devices (NIC, framebuffer, disk) attach to a machine.
//
// Execution model: application and kernel code are ordinary C++ running on
// fibers. Simulated time advances only through Charge(); asynchronous
// interrupts (timer, NIC, disk) are delivered at charge boundaries or when
// the machine idles in WaitForInterrupt(). Synchronous exceptions (TLB miss,
// protection, unaligned, overflow, coprocessor) are raised by the memory and
// ALU access methods and vector immediately to the installed kernel.
#ifndef XOK_SRC_HW_MACHINE_H_
#define XOK_SRC_HW_MACHINE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/base/result.h"
#include "src/hw/clock.h"
#include "src/hw/cost.h"
#include "src/hw/event.h"
#include "src/hw/phys_mem.h"
#include "src/hw/tlb.h"
#include "src/hw/trap.h"

namespace xok::hw {

class Machine;
class World;

// Handed to the installed kernel and to nothing else: all operations a real
// CPU would reserve for supervisor mode.
class PrivPort {
 public:
  explicit PrivPort(Machine& machine) : machine_(machine) {}

  PrivPort(const PrivPort&) = delete;
  PrivPort& operator=(const PrivPort&) = delete;

  // TLB management. Each call charges its hardware cost.
  void TlbWriteRandom(const TlbEntry& entry);
  void TlbInvalidate(Vpn vpn, Asid asid);
  void TlbFlushAsid(Asid asid);
  void TlbFlushAll();
  const TlbEntry* TlbProbe(Vpn vpn, Asid asid);

  // Addressing context.
  void SetAsid(Asid asid);
  Asid asid() const;

  // Slice timer: raises InterruptSource::kTimer once the clock passes the
  // deadline. Zero disables the timer.
  void SetSliceDeadline(uint64_t absolute_cycle);
  uint64_t slice_deadline() const;

  // Coprocessor (FPU) enable bit; when clear, CoprocOp() raises
  // kCoprocUnusable.
  void SetCoprocEnabled(bool enabled);

  // Interrupt enable. Interrupts queue while disabled. The machine disables
  // interrupts automatically for the duration of OnException/OnInterrupt.
  void SetInterruptsEnabled(bool enabled);

  // Physical (untranslated) memory access, as kernel-mode KSEG0 access on
  // MIPS. Charges per word.
  uint32_t PhysReadWord(Paddr pa);
  void PhysWriteWord(Paddr pa, uint32_t value);
  // Bulk copy between physical ranges; charges kMemWordCopy per word.
  void PhysCopy(Paddr dst, Paddr src, uint32_t bytes);

  // Schedules a device event `delay` cycles from now.
  void ScheduleEvent(uint64_t delay, InterruptSource source, uint64_t payload);

  // Swaps the trap-nesting depth, returning the old value. Kernels that
  // switch execution contexts from inside a trap handler (e.g. ending a
  // time slice) must save the suspended context's depth and restore it when
  // resuming that context, so interrupt masking follows the context rather
  // than the physical call stack.
  int SwapTrapDepth(int depth);

 private:
  Machine& machine_;
};

class Machine {
 public:
  struct Config {
    uint32_t phys_pages = 4096;  // 16 MB, a well-equipped DECstation.
    const char* name = "m0";
  };

  explicit Machine(const Config& config, World* world = nullptr);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Installs the kernel and returns the privileged port. Exactly one kernel
  // per machine.
  PrivPort& InstallKernel(TrapSink* kernel);

  CycleClock& clock() { return *clock_; }
  const CycleClock& clock() const { return *clock_; }
  PhysMem& mem() { return mem_; }
  Tlb& tlb() { return tlb_; }
  World* world() { return world_; }
  const char* name() const { return config_.name; }

  // --- Unprivileged CPU operations ---

  // Advances simulated time and delivers any due interrupts.
  void Charge(uint64_t cycles);

  // Translated memory access. Word accesses must be 4-byte aligned (raises
  // kAddressError otherwise). TLB misses and write-protection vector to the
  // kernel; if the kernel cannot resolve them the access returns an error.
  Result<uint32_t> LoadWord(Vaddr va);
  Status StoreWord(Vaddr va, uint32_t value);
  Result<uint8_t> LoadByte(Vaddr va);
  Status StoreByte(Vaddr va, uint8_t value);

  // Bulk translated copy into / out of a caller buffer. Translates once per
  // page, charges kMemWordCopy per word. Used by library OSes for message
  // buffers; faults behave as for LoadWord/StoreWord.
  Status CopyIn(std::span<uint8_t> dst, Vaddr src);
  Status CopyOut(Vaddr dst, std::span<const uint8_t> src);

  // ALU trap sources (paper Table 5 workloads).
  Result<int32_t> AddOverflow(int32_t a, int32_t b);  // Signed add, traps on overflow.
  Status CoprocOp();                                  // FP op; traps if coproc disabled.

  // Parks the machine until an interrupt is delivered. In a World, control
  // passes to other machines; standalone, the clock jumps to the next local
  // event (aborts if there is none — that would be a hang).
  void WaitForInterrupt();

  // True while executing the kernel's OnException/OnInterrupt.
  bool in_trap() const { return trap_depth_ > 0; }

  // Deterministic per-machine id assigned by the world (0 standalone).
  uint32_t world_index() const { return world_index_; }
  void set_world_index(uint32_t index) { world_index_ = index; }

  // Earliest cycle at which this machine has something to do (queued event
  // or armed slice timer); ~0 if none. Used by the world scheduler.
  uint64_t NextDueCycle() const {
    uint64_t next = ~0ULL;
    if (!events_.empty()) {
      next = events_.top().due_cycle;
    }
    if (slice_deadline_ != 0 && slice_deadline_ < next) {
      next = slice_deadline_;
    }
    return next;
  }

 private:
  friend class PrivPort;
  friend class World;
  friend class Nic;   // Devices post their own completion events.
  friend class Disk;

  // Translates va for an access; raises exceptions as needed. Returns the
  // physical address, or an error if the kernel could not resolve the fault.
  Result<Paddr> Translate(Vaddr va, bool store);

  TrapOutcome RaiseException(ExceptionType type, Vaddr bad_vaddr, bool store);

  void PushEvent(uint64_t due_cycle, InterruptSource source, uint64_t payload);
  // Delivers all due events; returns true if any was delivered.
  bool DeliverDue();
  void DeliverOne(const PendingEvent& event);

  Config config_;
  std::shared_ptr<CycleClock> clock_;
  PhysMem mem_;
  Tlb tlb_;
  PrivPort priv_;
  World* world_;
  uint32_t world_index_ = 0;

  TrapSink* kernel_ = nullptr;
  Asid asid_ = 0;
  uint64_t slice_deadline_ = 0;  // 0 = disabled.
  bool coproc_enabled_ = false;
  bool interrupts_enabled_ = true;
  int trap_depth_ = 0;

  std::priority_queue<PendingEvent, std::vector<PendingEvent>, std::greater<>> events_;
  uint64_t event_seq_ = 0;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_MACHINE_H_
