// Ownership-tagged framebuffer (paper §3.1): some Silicon Graphics frame
// buffers associate an ownership tag with each pixel; the hardware checks
// the tag on I/O, so applications can be given direct framebuffer access
// without kernel mediation. We model a tile-granular version: the kernel
// (via the privileged port it owns) assigns an owner tag per 16x16 tile;
// every application blit presents its tag and the hardware enforces it.
#ifndef XOK_SRC_HW_FRAMEBUFFER_H_
#define XOK_SRC_HW_FRAMEBUFFER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/hw/machine.h"

namespace xok::hw {

class Framebuffer {
 public:
  static constexpr uint32_t kTileDim = 16;
  static constexpr uint32_t kNoOwner = 0;

  Framebuffer(Machine& machine, uint32_t width, uint32_t height)
      : machine_(machine),
        width_(width),
        height_(height),
        pixels_(static_cast<size_t>(width) * height, 0),
        tile_cols_((width + kTileDim - 1) / kTileDim),
        tile_rows_((height + kTileDim - 1) / kTileDim),
        tile_owner_(static_cast<size_t>(tile_cols_) * tile_rows_, kNoOwner) {}

  uint32_t width() const { return width_; }
  uint32_t height() const { return height_; }
  uint32_t tile_cols() const { return tile_cols_; }
  uint32_t tile_rows() const { return tile_rows_; }

  // Privileged (kernel-only by convention: the kernel keeps the binding
  // table; applications never see this object directly, only through the
  // kernel's secure-binding API which calls it).
  Status SetTileOwner(uint32_t tile_x, uint32_t tile_y, uint32_t owner_tag) {
    if (tile_x >= tile_cols_ || tile_y >= tile_rows_) {
      return Status::kErrOutOfRange;
    }
    machine_.Charge(Instr(2));
    tile_owner_[tile_y * tile_cols_ + tile_x] = owner_tag;
    return Status::kOk;
  }

  // Hardware-checked pixel write: the ownership tag is compared on I/O.
  Status WritePixel(uint32_t owner_tag, uint32_t x, uint32_t y, uint32_t rgba) {
    if (x >= width_ || y >= height_) {
      return Status::kErrOutOfRange;
    }
    machine_.Charge(kMemWordAccess + Instr(1));  // Write plus tag compare.
    if (OwnerAt(x, y) != owner_tag) {
      return Status::kErrAccessDenied;
    }
    pixels_[static_cast<size_t>(y) * width_ + x] = rgba;
    return Status::kOk;
  }

  uint32_t ReadPixel(uint32_t x, uint32_t y) const {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }

  uint32_t OwnerAt(uint32_t x, uint32_t y) const {
    return tile_owner_[(y / kTileDim) * tile_cols_ + (x / kTileDim)];
  }

  uint32_t TileOwner(uint32_t tile_x, uint32_t tile_y) const {
    return tile_owner_[tile_y * tile_cols_ + tile_x];
  }

  // Privileged: releases every tile held by `owner_tag` (environment
  // teardown — the hardware tag table must not keep naming a dead owner).
  void ClearOwner(uint32_t owner_tag) {
    machine_.Charge(Instr(2) * tile_owner_.size());  // Tag-table sweep.
    for (uint32_t& tag : tile_owner_) {
      if (tag == owner_tag) {
        tag = kNoOwner;
      }
    }
  }

 private:
  Machine& machine_;
  uint32_t width_;
  uint32_t height_;
  std::vector<uint32_t> pixels_;
  uint32_t tile_cols_;
  uint32_t tile_rows_;
  std::vector<uint32_t> tile_owner_;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_FRAMEBUFFER_H_
