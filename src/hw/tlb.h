// The hardware translation lookaside buffer: 64 fully-associative entries
// tagged with an address-space identifier, in the style of the MIPS R3000.
// Replacement is deterministic-pseudo-random (the R3000's "tlbwr" picks a
// random slot). Refill policy lives entirely in software: on a miss the
// machine raises a TLB-miss exception and the installed kernel decides what
// (if anything) to write back — this is the property the exokernel exploits.
#ifndef XOK_SRC_HW_TLB_H_
#define XOK_SRC_HW_TLB_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/base/rand.h"
#include "src/hw/trap.h"

namespace xok::hw {

struct TlbEntry {
  Vpn vpn = 0;
  Asid asid = 0;
  PageId pfn = 0;
  bool valid = false;
  bool writable = false;  // MIPS "dirty" bit: acts as a write-enable.
};

class Tlb {
 public:
  static constexpr uint32_t kEntries = 64;

  Tlb() : rng_(0x7ea5u) {}

  // Hardware lookup on every access. Returns the matching entry or nullptr.
  const TlbEntry* Lookup(Vpn vpn, Asid asid) const {
    for (const TlbEntry& entry : entries_) {
      if (entry.valid && entry.vpn == vpn && entry.asid == asid) {
        return &entry;
      }
    }
    return nullptr;
  }

  // Privileged: write `entry` into a pseudo-random slot (tlbwr). If a slot
  // already maps (vpn, asid) it is reused so the TLB never holds duplicates.
  void WriteRandom(const TlbEntry& entry) {
    if (TlbEntry* existing = FindSlot(entry.vpn, entry.asid)) {
      *existing = entry;
      return;
    }
    entries_[rng_.NextBelow(kEntries)] = entry;
  }

  // Privileged: invalidate the entry for (vpn, asid), if present.
  void Invalidate(Vpn vpn, Asid asid) {
    if (TlbEntry* existing = FindSlot(vpn, asid)) {
      existing->valid = false;
    }
  }

  // Privileged: drop every entry translating to physical frame `pfn`
  // (used when a frame is repossessed: the binding is broken everywhere).
  // Returns how many entries were invalidated so shootdown cost can scale
  // with the work actually done.
  uint32_t FlushPfn(PageId pfn) {
    uint32_t flushed = 0;
    for (TlbEntry& entry : entries_) {
      if (entry.valid && entry.pfn == pfn) {
        entry.valid = false;
        ++flushed;
      }
    }
    return flushed;
  }

  // Privileged: drop every entry with the given ASID (context teardown).
  // Returns the number of live entries invalidated.
  uint32_t FlushAsid(Asid asid) {
    uint32_t flushed = 0;
    for (TlbEntry& entry : entries_) {
      if (entry.asid == asid) {
        if (entry.valid) {
          ++flushed;
        }
        entry.valid = false;
      }
    }
    return flushed;
  }

  // Privileged: drop everything.
  void FlushAll() {
    for (TlbEntry& entry : entries_) {
      entry.valid = false;
    }
  }

  // Diagnostic view used by tests.
  const std::array<TlbEntry, kEntries>& entries() const { return entries_; }

 private:
  TlbEntry* FindSlot(Vpn vpn, Asid asid) {
    for (TlbEntry& entry : entries_) {
      if (entry.valid && entry.vpn == vpn && entry.asid == asid) {
        return &entry;
      }
    }
    return nullptr;
  }

  std::array<TlbEntry, kEntries> entries_{};
  SplitMix64 rng_;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_TLB_H_
