// The simulated cycle clock. All simulated time flows through one of these;
// machines attached to the same hw::World share a single clock so that
// cross-machine packet timing is well defined.
#ifndef XOK_SRC_HW_CLOCK_H_
#define XOK_SRC_HW_CLOCK_H_

#include <cstdint>

#include "src/hw/cost.h"

namespace xok::hw {

class CycleClock {
 public:
  CycleClock() = default;

  CycleClock(const CycleClock&) = delete;
  CycleClock& operator=(const CycleClock&) = delete;

  uint64_t now() const { return now_; }

  // Advances time by `cycles`. This is the only way time moves forward.
  void Advance(uint64_t cycles) { now_ += cycles; }

  // Moves time forward to `cycle` (used when a machine idles until the next
  // scheduled event). No-op if `cycle` is in the past: two machines sharing
  // a clock may both be past an event's nominal timestamp.
  void AdvanceTo(uint64_t cycle) {
    if (cycle > now_) {
      now_ = cycle;
    }
  }

  double now_micros() const { return CyclesToMicros(now_); }

 private:
  uint64_t now_ = 0;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_CLOCK_H_
