// Exception and interrupt types, the trap frame, and the TrapSink interface
// through which the installed kernel receives hardware events.
//
// Modelled on the MIPS R3000: exceptions vector synchronously on the faulting
// context; the kernel runs on that context, may fix the cause (e.g. refill
// the TLB) and return, or may redirect control.
#ifndef XOK_SRC_HW_TRAP_H_
#define XOK_SRC_HW_TRAP_H_

#include <cstdint>

namespace xok::hw {

using Vaddr = uint32_t;
using Paddr = uint32_t;

inline constexpr uint32_t kPageShift = 12;
inline constexpr uint32_t kPageBytes = 1u << kPageShift;
inline constexpr uint32_t kPageMask = kPageBytes - 1;

using PageId = uint32_t;  // Physical page frame number.
using Vpn = uint32_t;     // Virtual page number (vaddr >> kPageShift).
using Asid = uint16_t;    // Address-space identifier (TLB tag).

constexpr Vpn VpnOf(Vaddr va) { return va >> kPageShift; }
constexpr uint32_t PageOffset(Vaddr va) { return va & kPageMask; }

enum class ExceptionType : uint8_t {
  kTlbMissLoad,     // No TLB entry for a load.
  kTlbMissStore,    // No TLB entry for a store.
  kTlbModify,       // Store to a TLB entry without the writable bit.
  kAddressError,    // Unaligned access (MIPS AdEL/AdES).
  kOverflow,        // Arithmetic overflow (add/sub with trap).
  kCoprocUnusable,  // Coprocessor used while disabled.
  kBusError,        // Physical access out of range.
};

enum class InterruptSource : uint8_t {
  kTimer,     // End of the current time slice.
  kNicRx,     // Packet arrived in the receive ring.
  kDiskDone,  // Disk request completed.
  kAlarm,     // Programmable one-shot alarm (payload: kernel cookie).
  kFault,     // Injected fault event (payload: fault-plan cookie).
  kPowerFail,  // Power loss: the world halts at this charge boundary.
  kIpi,        // Inter-processor interrupt (payload: kernel-defined).
  kPressure,   // Deterministic resource-pressure event (payload: plan cookie).
};

// What the kernel tells the machine to do after handling an exception.
enum class TrapOutcome : uint8_t {
  kRetry,  // Cause fixed (e.g. TLB refilled); re-execute the access.
  kSkip,   // Access abandoned; the faulting operation returns an error.
};

// Register-file image at exception time. The simulator does not interpret an
// instruction stream, so only the architecturally relevant fields are live;
// the general-purpose register array exists so that kernels can model (and
// be charged for) full context saves, and so that protected control transfer
// can pass arguments "in registers" as the paper describes.
struct TrapFrame {
  ExceptionType type = ExceptionType::kBusError;
  Vaddr bad_vaddr = 0;  // Faulting virtual address (TLB/address errors).
  Vaddr epc = 0;        // Program counter to resume at (symbolic).
  bool store = false;   // Faulting access was a write.
  uint32_t regs[32] = {};
};

// Implemented by the installed kernel (Aegis or the Ultrix baseline).
class TrapSink {
 public:
  virtual ~TrapSink() = default;

  // Synchronous exception on the current execution context.
  virtual TrapOutcome OnException(TrapFrame& frame) = 0;

  // Asynchronous interrupt, delivered at a cycle-charge boundary or when the
  // machine is idle in WaitForInterrupt. `payload` identifies the request
  // (disk request id) and is unused for the timer.
  virtual void OnInterrupt(InterruptSource source, uint64_t payload) = 0;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_TRAP_H_
