#include "src/hw/machine.h"

#include <cstdio>
#include <cstdlib>

#include "src/hw/world.h"

namespace xok::hw {

// --- PrivPort ---

void PrivPort::TlbWriteRandom(const TlbEntry& entry) {
  machine_.Charge(kTlbWrite);
  machine_.tlb_.WriteRandom(entry);
}

void PrivPort::TlbInvalidate(Vpn vpn, Asid asid) {
  machine_.Charge(kTlbWrite);
  machine_.tlb_.Invalidate(vpn, asid);
}

void PrivPort::TlbFlushAsid(Asid asid) {
  machine_.Charge(kTlbWrite * 4);  // Indexed sweep.
  machine_.tlb_.FlushAsid(asid);
}

void PrivPort::TlbFlushAll() {
  machine_.Charge(kTlbWrite * 4);
  machine_.tlb_.FlushAll();
}

const TlbEntry* PrivPort::TlbProbe(Vpn vpn, Asid asid) {
  machine_.Charge(kTlbProbe);
  return machine_.tlb_.Lookup(vpn, asid);
}

void PrivPort::SetAsid(Asid asid) {
  machine_.Charge(Instr(1));
  machine_.asid_ = asid;
}

Asid PrivPort::asid() const { return machine_.asid_; }

void PrivPort::SetSliceDeadline(uint64_t absolute_cycle) {
  machine_.Charge(Instr(1));
  machine_.slice_deadline_ = absolute_cycle;
}

uint64_t PrivPort::slice_deadline() const { return machine_.slice_deadline_; }

void PrivPort::SetCoprocEnabled(bool enabled) {
  machine_.Charge(Instr(1));
  machine_.coproc_enabled_ = enabled;
}

void PrivPort::SetInterruptsEnabled(bool enabled) {
  machine_.Charge(Instr(1));
  machine_.interrupts_enabled_ = enabled;
}

uint32_t PrivPort::PhysReadWord(Paddr pa) {
  machine_.Charge(kMemWordAccess);
  return machine_.mem_.ReadWord(pa);
}

void PrivPort::PhysWriteWord(Paddr pa, uint32_t value) {
  machine_.Charge(kMemWordAccess);
  machine_.mem_.WriteWord(pa, value);
}

void PrivPort::PhysCopy(Paddr dst, Paddr src, uint32_t bytes) {
  machine_.Charge(kMemWordCopy * ((bytes + 3) / 4));
  for (uint32_t i = 0; i < bytes; ++i) {
    machine_.mem_.WriteByte(dst + i, machine_.mem_.ReadByte(src + i));
  }
}

void PrivPort::ScheduleEvent(uint64_t delay, InterruptSource source, uint64_t payload) {
  machine_.PushEvent(machine_.clock_->now() + delay, source, payload);
}

int PrivPort::SwapTrapDepth(int depth) {
  const int old = machine_.trap_depth_;
  machine_.trap_depth_ = depth;
  return old;
}

// --- Machine ---

Machine::Machine(const Config& config, World* world)
    : config_(config),
      clock_(world != nullptr ? world->clock() : std::make_shared<CycleClock>()),
      mem_(config.phys_pages),
      priv_(*this),
      world_(world) {
  if (world_ != nullptr) {
    world_->Attach(this);
  }
}

Machine::~Machine() = default;

PrivPort& Machine::InstallKernel(TrapSink* kernel) {
  if (kernel_ != nullptr) {
    std::fprintf(stderr, "xok: machine %s already has a kernel\n", config_.name);
    std::abort();
  }
  kernel_ = kernel;
  return priv_;
}

void Machine::Charge(uint64_t cycles) {
  clock_->Advance(cycles);
  if (trap_depth_ > 0) {
    return;  // Interrupts implicitly masked while handling a trap.
  }
  if (world_ != nullptr && world_->ParkedEventDue(clock_->now())) {
    world_->YieldForDueEvent(this);
  }
  if (interrupts_enabled_) {
    DeliverDue();
  }
}

Result<Paddr> Machine::Translate(Vaddr va, bool store) {
  const Vpn vpn = VpnOf(va);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const TlbEntry* entry = tlb_.Lookup(vpn, asid_);
    if (entry == nullptr) {
      const ExceptionType type =
          store ? ExceptionType::kTlbMissStore : ExceptionType::kTlbMissLoad;
      if (RaiseException(type, va, store) == TrapOutcome::kSkip) {
        return Status::kErrAccessDenied;
      }
      continue;
    }
    if (store && !entry->writable) {
      if (RaiseException(ExceptionType::kTlbModify, va, store) == TrapOutcome::kSkip) {
        return Status::kErrAccessDenied;
      }
      continue;
    }
    const Paddr pa = (static_cast<Paddr>(entry->pfn) << kPageShift) | PageOffset(va);
    if (!mem_.ValidPaddr(pa)) {
      RaiseException(ExceptionType::kBusError, va, store);
      return Status::kErrOutOfRange;
    }
    return pa;
  }
  // The kernel kept claiming it fixed the fault but the TLB still misses:
  // a refill livelock. Surface it rather than spinning.
  return Status::kErrBadState;
}

TrapOutcome Machine::RaiseException(ExceptionType type, Vaddr bad_vaddr, bool store) {
  if (kernel_ == nullptr) {
    std::fprintf(stderr, "xok: exception with no kernel installed\n");
    std::abort();
  }
  Charge(kExceptionRaise);
  TrapFrame frame;
  frame.type = type;
  frame.bad_vaddr = bad_vaddr;
  frame.store = store;
  ++trap_depth_;
  const TrapOutcome outcome = kernel_->OnException(frame);
  --trap_depth_;
  Charge(kExceptionReturn);
  return outcome;
}

Result<uint32_t> Machine::LoadWord(Vaddr va) {
  if ((va & 3u) != 0) {
    RaiseException(ExceptionType::kAddressError, va, /*store=*/false);
    return Status::kErrInvalidArgs;
  }
  Result<Paddr> pa = Translate(va, /*store=*/false);
  if (!pa.ok()) {
    return pa.status();
  }
  Charge(kMemWordAccess);
  return mem_.ReadWord(*pa);
}

Status Machine::StoreWord(Vaddr va, uint32_t value) {
  if ((va & 3u) != 0) {
    RaiseException(ExceptionType::kAddressError, va, /*store=*/true);
    return Status::kErrInvalidArgs;
  }
  Result<Paddr> pa = Translate(va, /*store=*/true);
  if (!pa.ok()) {
    return pa.status();
  }
  Charge(kMemWordAccess);
  mem_.WriteWord(*pa, value);
  return Status::kOk;
}

Result<uint8_t> Machine::LoadByte(Vaddr va) {
  Result<Paddr> pa = Translate(va, /*store=*/false);
  if (!pa.ok()) {
    return pa.status();
  }
  Charge(kMemWordAccess);
  return mem_.ReadByte(*pa);
}

Status Machine::StoreByte(Vaddr va, uint8_t value) {
  Result<Paddr> pa = Translate(va, /*store=*/true);
  if (!pa.ok()) {
    return pa.status();
  }
  Charge(kMemWordAccess);
  mem_.WriteByte(*pa, value);
  return Status::kOk;
}

Status Machine::CopyIn(std::span<uint8_t> dst, Vaddr src) {
  size_t done = 0;
  while (done < dst.size()) {
    const Vaddr va = src + static_cast<Vaddr>(done);
    const uint32_t in_page = kPageBytes - PageOffset(va);
    const uint32_t chunk = static_cast<uint32_t>(std::min<size_t>(in_page, dst.size() - done));
    Result<Paddr> pa = Translate(va, /*store=*/false);
    if (!pa.ok()) {
      return pa.status();
    }
    Charge(kMemWordCopy * ((chunk + 3) / 4));
    for (uint32_t i = 0; i < chunk; ++i) {
      dst[done + i] = mem_.ReadByte(*pa + i);
    }
    done += chunk;
  }
  return Status::kOk;
}

Status Machine::CopyOut(Vaddr dst, std::span<const uint8_t> src) {
  size_t done = 0;
  while (done < src.size()) {
    const Vaddr va = dst + static_cast<Vaddr>(done);
    const uint32_t in_page = kPageBytes - PageOffset(va);
    const uint32_t chunk = static_cast<uint32_t>(std::min<size_t>(in_page, src.size() - done));
    Result<Paddr> pa = Translate(va, /*store=*/true);
    if (!pa.ok()) {
      return pa.status();
    }
    Charge(kMemWordCopy * ((chunk + 3) / 4));
    for (uint32_t i = 0; i < chunk; ++i) {
      mem_.WriteByte(*pa + i, src[done + i]);
    }
    done += chunk;
  }
  return Status::kOk;
}

Result<int32_t> Machine::AddOverflow(int32_t a, int32_t b) {
  Charge(Instr(1));
  int32_t sum = 0;
  if (__builtin_add_overflow(a, b, &sum)) {
    RaiseException(ExceptionType::kOverflow, 0, /*store=*/false);
    return Status::kErrOutOfRange;
  }
  return sum;
}

Status Machine::CoprocOp() {
  Charge(Instr(1));
  if (coproc_enabled_) {
    return Status::kOk;
  }
  RaiseException(ExceptionType::kCoprocUnusable, 0, /*store=*/false);
  // Re-check: the handler may have enabled the coprocessor and asked for a
  // retry; otherwise the operation is abandoned.
  return coproc_enabled_ ? Status::kOk : Status::kErrBadState;
}

void Machine::WaitForInterrupt() {
  for (;;) {
    if (interrupts_enabled_ && DeliverDue()) {
      return;
    }
    uint64_t next = ~0ULL;
    if (!events_.empty()) {
      next = events_.top().due_cycle;
    }
    if (slice_deadline_ != 0 && slice_deadline_ < next) {
      next = slice_deadline_;
    }
    if (world_ != nullptr) {
      world_->Park(this);
      continue;  // Resumed: re-check for due events.
    }
    if (next == ~0ULL) {
      std::fprintf(stderr, "xok: machine %s idle with no pending events (hang)\n", config_.name);
      std::abort();
    }
    clock_->AdvanceTo(next);
  }
}

void Machine::PushEvent(uint64_t due_cycle, InterruptSource source, uint64_t payload) {
  events_.push(PendingEvent{due_cycle, source, payload, event_seq_++});
  if (world_ != nullptr) {
    world_->RecomputeParkedMin();
  }
}

bool Machine::DeliverDue() {
  bool delivered = false;
  const uint64_t now = clock_->now();
  if (slice_deadline_ != 0 && now >= slice_deadline_) {
    slice_deadline_ = 0;
    DeliverOne(PendingEvent{now, InterruptSource::kTimer, 0, 0});
    delivered = true;
  }
  while (!events_.empty() && events_.top().due_cycle <= clock_->now()) {
    const PendingEvent event = events_.top();
    events_.pop();
    DeliverOne(event);
    delivered = true;
  }
  return delivered;
}

void Machine::DeliverOne(const PendingEvent& event) {
  if (kernel_ == nullptr) {
    return;  // Events before kernel installation are dropped (power-on noise).
  }
  Charge(kExceptionRaise);
  ++trap_depth_;
  kernel_->OnInterrupt(event.source, event.payload);
  --trap_depth_;
  Charge(kExceptionReturn);
}

}  // namespace xok::hw
