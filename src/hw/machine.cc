#include "src/hw/machine.h"

#include <cstdio>
#include <cstdlib>

#include "src/hw/world.h"

namespace xok::hw {

// --- PrivPort ---

void PrivPort::TlbWriteRandom(const TlbEntry& entry) {
  machine_.Charge(kTlbWrite);
  machine_.active_->tlb_.WriteRandom(entry);
}

void PrivPort::TlbInvalidate(Vpn vpn, Asid asid) {
  machine_.Charge(kTlbWrite);
  machine_.active_->tlb_.Invalidate(vpn, asid);
}

void PrivPort::TlbFlushAsid(Asid asid) {
  machine_.Charge(kTlbWrite * 4);  // Indexed sweep.
  machine_.active_->tlb_.FlushAsid(asid);
}

void PrivPort::TlbFlushAll() {
  machine_.Charge(kTlbWrite * 4);
  machine_.active_->tlb_.FlushAll();
}

const TlbEntry* PrivPort::TlbProbe(Vpn vpn, Asid asid) {
  machine_.Charge(kTlbProbe);
  return machine_.active_->tlb_.Lookup(vpn, asid);
}

uint32_t PrivPort::TlbRemoteFlushPfn(uint32_t cpu, PageId pfn) {
  return machine_.cpus_[cpu]->tlb_.FlushPfn(pfn);
}

uint32_t PrivPort::TlbRemoteFlushAsid(uint32_t cpu, Asid asid) {
  return machine_.cpus_[cpu]->tlb_.FlushAsid(asid);
}

void PrivPort::SetAsid(Asid asid) {
  machine_.Charge(Instr(1));
  machine_.active_->asid_ = asid;
}

Asid PrivPort::asid() const { return machine_.active_->asid_; }

void PrivPort::SetSliceDeadline(uint64_t absolute_cycle) {
  machine_.Charge(Instr(1));
  // Written after the charge, as one atomic compare-register update: the
  // charge can only deliver the deadline being replaced. A new deadline at
  // or before the current cycle (including cycle 0) stays armed and fires
  // on the next charge boundary.
  Cpu& cpu = *machine_.active_;
  cpu.slice_deadline_ = absolute_cycle;
  cpu.slice_armed_ = true;
}

void PrivPort::ClearSliceDeadline() {
  machine_.Charge(Instr(1));
  Cpu& cpu = *machine_.active_;
  cpu.slice_deadline_ = 0;
  cpu.slice_armed_ = false;
}

uint64_t PrivPort::slice_deadline() const { return machine_.active_->slice_deadline_; }

bool PrivPort::slice_armed() const { return machine_.active_->slice_armed_; }

void PrivPort::SetCoprocEnabled(bool enabled) {
  machine_.Charge(Instr(1));
  machine_.active_->coproc_enabled_ = enabled;
}

void PrivPort::SetInterruptsEnabled(bool enabled) {
  machine_.Charge(Instr(1));
  machine_.active_->interrupts_enabled_ = enabled;
}

bool PrivPort::interrupts_enabled() const {
  return machine_.active_->interrupts_enabled_;
}

uint32_t PrivPort::PhysReadWord(Paddr pa) {
  machine_.Charge(kMemWordAccess);
  return machine_.mem_.ReadWord(pa);
}

void PrivPort::PhysWriteWord(Paddr pa, uint32_t value) {
  machine_.Charge(kMemWordAccess);
  machine_.mem_.WriteWord(pa, value);
}

void PrivPort::PhysCopy(Paddr dst, Paddr src, uint32_t bytes) {
  machine_.Charge(kMemWordCopy * ((bytes + 3) / 4));
  for (uint32_t i = 0; i < bytes; ++i) {
    machine_.mem_.WriteByte(dst + i, machine_.mem_.ReadByte(src + i));
  }
}

void PrivPort::ScheduleEvent(uint64_t delay, InterruptSource source, uint64_t payload) {
  Cpu& cpu = *machine_.active_;
  cpu.PushEvent(cpu.clock_->now() + delay, source, payload);
}

void PrivPort::SendIpi(uint32_t cpu, uint64_t payload) {
  if (cpu >= machine_.cpu_count()) {
    std::fprintf(stderr, "xok: machine %s IPI to nonexistent cpu %u\n", machine_.config_.name,
                 cpu);
    std::abort();
  }
  machine_.Charge(kIpiSend);
  const uint64_t due = machine_.active_->clock_->now() + kIpiLatency;
  machine_.cpus_[cpu]->PushEvent(due, InterruptSource::kIpi, payload);
}

uint32_t PrivPort::cpu_count() const { return machine_.cpu_count(); }

uint32_t PrivPort::current_cpu() const { return machine_.current_cpu(); }

int PrivPort::SwapTrapDepth(int depth) {
  const int old = machine_.active_->trap_depth_;
  machine_.active_->trap_depth_ = depth;
  return old;
}

// --- Cpu ---

Cpu::Cpu(Machine& machine, uint32_t index, std::shared_ptr<CycleClock> clock)
    : machine_(machine), index_(index), clock_(std::move(clock)) {}

void Cpu::Charge(uint64_t cycles) {
  clock_->Advance(cycles);
  if (trap_depth_ > 0) {
    return;  // Interrupts implicitly masked while handling a trap.
  }
  if (machine_.world_ != nullptr && machine_.world_->ParkedEventDue(clock_->now())) {
    machine_.world_->YieldForDueEvent(&machine_);
  }
  if (machine_.smp_running_ && machine_.SiblingBehind(*this)) {
    machine_.YieldCpu(*this);
  }
  if (interrupts_enabled_) {
    DeliverDue();
  }
}

void Cpu::WaitForInterrupt() {
  for (;;) {
    if (interrupts_enabled_ && DeliverDue()) {
      return;
    }
    if (machine_.smp_running_) {
      machine_.ParkCpu(*this);
      // Resumed: either the scheduler advanced our clock to a due event, or
      // this is a spurious wake so the kernel loop can re-check whether it
      // still has anything to run.
      if (interrupts_enabled_ && DeliverDue()) {
        return;
      }
      return;
    }
    const uint64_t next = NextDueCycle();
    if (machine_.world_ != nullptr) {
      machine_.world_->Park(&machine_);
      continue;  // Resumed: re-check for due events.
    }
    if (next == ~0ULL) {
      std::fprintf(stderr, "xok: machine %s idle with no pending events (hang)\n",
                   machine_.config_.name);
      std::abort();
    }
    clock_->AdvanceTo(next);
  }
}

void Cpu::PushEvent(uint64_t due_cycle, InterruptSource source, uint64_t payload) {
  events_.push(PendingEvent{due_cycle, source, payload, event_seq_++});
  if (machine_.world_ != nullptr) {
    machine_.world_->RecomputeParkedMin();
  }
}

bool Cpu::DeliverDue() {
  bool delivered = false;
  const uint64_t now = clock_->now();
  if (slice_armed_ && now >= slice_deadline_) {
    slice_armed_ = false;
    slice_deadline_ = 0;
    DeliverOne(PendingEvent{now, InterruptSource::kTimer, 0, 0});
    delivered = true;
  }
  while (!events_.empty() && events_.top().due_cycle <= clock_->now()) {
    const PendingEvent event = events_.top();
    events_.pop();
    DeliverOne(event);
    delivered = true;
  }
  return delivered;
}

void Cpu::DeliverOne(const PendingEvent& event) {
  if (machine_.kernel_ == nullptr) {
    return;  // Events before kernel installation are dropped (power-on noise).
  }
  Charge(kExceptionRaise);
  ++trap_depth_;
  machine_.kernel_->OnInterrupt(event.source, event.payload);
  // The handler may have suspended this fiber mid-trap and had it resumed
  // on a different CPU (SMP migration); the unwind must release the trap
  // depth of whichever CPU is executing it now — the kernel moved the
  // suspended context's depth there when it resumed the fiber. The
  // epilogue charge happens while the depth is still held: if it could
  // deliver, each queued event would deliver the next from its own
  // epilogue and a long backlog (e.g. accumulated across a masked
  // teardown) would nest one stack frame per event. Holding the depth
  // leaves the rest of the backlog to DeliverDue's loop — same cycles,
  // same order, flat stack.
  machine_.active_->Charge(kExceptionReturn);
  --machine_.active_->trap_depth_;
}

// --- Machine ---

Machine::Machine(const Config& config, World* world)
    : config_(config), mem_(config.phys_pages), priv_(*this), world_(world) {
  const uint32_t cpus = std::max(1u, config.cpus);
  if (cpus > 1 && world != nullptr) {
    std::fprintf(stderr,
                 "xok: machine %s: multi-CPU machines cannot join a World "
                 "(per-CPU clocks break cross-machine event ordering)\n",
                 config_.name);
    std::abort();
  }
  if (cpus > 64) {
    std::fprintf(stderr, "xok: machine %s: cpus=%u exceeds the 64-CPU limit\n", config_.name,
                 cpus);
    std::abort();
  }
  // CPU 0 runs on the machine clock (shared with the world if attached);
  // further CPUs keep local clocks so they can burn cycles independently.
  std::shared_ptr<CycleClock> clock =
      world != nullptr ? world->clock() : std::make_shared<CycleClock>();
  cpus_.reserve(cpus);
  cpus_.push_back(std::make_unique<Cpu>(*this, 0, std::move(clock)));
  for (uint32_t i = 1; i < cpus; ++i) {
    cpus_.push_back(std::make_unique<Cpu>(*this, i, std::make_shared<CycleClock>()));
  }
  active_ = cpus_[0].get();
  if (world_ != nullptr) {
    world_->Attach(this);
  }
}

Machine::~Machine() = default;

PrivPort& Machine::InstallKernel(TrapSink* kernel) {
  if (kernel_ != nullptr) {
    std::fprintf(stderr, "xok: machine %s already has a kernel\n", config_.name);
    std::abort();
  }
  kernel_ = kernel;
  return priv_;
}

uint64_t Machine::MaxCpuCycle() const {
  uint64_t max = 0;
  for (const std::unique_ptr<Cpu>& cpu : cpus_) {
    max = std::max(max, cpu->clock().now());
  }
  return max;
}

bool Machine::CpuParked(uint32_t index) const {
  return cpus_[index]->run_state_ == Cpu::RunState::kParked;
}

void Machine::Charge(uint64_t cycles) { active_->Charge(cycles); }

Result<Paddr> Machine::Translate(Vaddr va, bool store) {
  const Vpn vpn = VpnOf(va);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const TlbEntry* entry = active_->tlb_.Lookup(vpn, active_->asid_);
    if (entry == nullptr) {
      const ExceptionType type =
          store ? ExceptionType::kTlbMissStore : ExceptionType::kTlbMissLoad;
      if (RaiseException(type, va, store) == TrapOutcome::kSkip) {
        return Status::kErrAccessDenied;
      }
      continue;
    }
    if (store && !entry->writable) {
      if (RaiseException(ExceptionType::kTlbModify, va, store) == TrapOutcome::kSkip) {
        return Status::kErrAccessDenied;
      }
      continue;
    }
    const Paddr pa = (static_cast<Paddr>(entry->pfn) << kPageShift) | PageOffset(va);
    if (!mem_.ValidPaddr(pa)) {
      RaiseException(ExceptionType::kBusError, va, store);
      return Status::kErrOutOfRange;
    }
    return pa;
  }
  // The kernel kept claiming it fixed the fault but the TLB still misses:
  // a refill livelock. Surface it rather than spinning.
  return Status::kErrBadState;
}

TrapOutcome Machine::RaiseException(ExceptionType type, Vaddr bad_vaddr, bool store) {
  if (kernel_ == nullptr) {
    std::fprintf(stderr, "xok: exception with no kernel installed\n");
    std::abort();
  }
  Charge(kExceptionRaise);
  TrapFrame frame;
  frame.type = type;
  frame.bad_vaddr = bad_vaddr;
  frame.store = store;
  ++active_->trap_depth_;
  const TrapOutcome outcome = kernel_->OnException(frame);
  // As in Cpu::DeliverOne: unwind on the executing CPU, which may differ
  // from the raising CPU if the handler suspended and migrated this fiber.
  --active_->trap_depth_;
  Charge(kExceptionReturn);
  return outcome;
}

Result<uint32_t> Machine::LoadWord(Vaddr va) {
  if ((va & 3u) != 0) {
    RaiseException(ExceptionType::kAddressError, va, /*store=*/false);
    return Status::kErrInvalidArgs;
  }
  Result<Paddr> pa = Translate(va, /*store=*/false);
  if (!pa.ok()) {
    return pa.status();
  }
  Charge(kMemWordAccess);
  return mem_.ReadWord(*pa);
}

Status Machine::StoreWord(Vaddr va, uint32_t value) {
  if ((va & 3u) != 0) {
    RaiseException(ExceptionType::kAddressError, va, /*store=*/true);
    return Status::kErrInvalidArgs;
  }
  Result<Paddr> pa = Translate(va, /*store=*/true);
  if (!pa.ok()) {
    return pa.status();
  }
  Charge(kMemWordAccess);
  mem_.WriteWord(*pa, value);
  return Status::kOk;
}

Result<uint8_t> Machine::LoadByte(Vaddr va) {
  Result<Paddr> pa = Translate(va, /*store=*/false);
  if (!pa.ok()) {
    return pa.status();
  }
  Charge(kMemWordAccess);
  return mem_.ReadByte(*pa);
}

Status Machine::StoreByte(Vaddr va, uint8_t value) {
  Result<Paddr> pa = Translate(va, /*store=*/true);
  if (!pa.ok()) {
    return pa.status();
  }
  Charge(kMemWordAccess);
  mem_.WriteByte(*pa, value);
  return Status::kOk;
}

Status Machine::CopyIn(std::span<uint8_t> dst, Vaddr src) {
  size_t done = 0;
  while (done < dst.size()) {
    const Vaddr va = src + static_cast<Vaddr>(done);
    const uint32_t in_page = kPageBytes - PageOffset(va);
    const uint32_t chunk = static_cast<uint32_t>(std::min<size_t>(in_page, dst.size() - done));
    Result<Paddr> pa = Translate(va, /*store=*/false);
    if (!pa.ok()) {
      return pa.status();
    }
    Charge(kMemWordCopy * ((chunk + 3) / 4));
    for (uint32_t i = 0; i < chunk; ++i) {
      dst[done + i] = mem_.ReadByte(*pa + i);
    }
    done += chunk;
  }
  return Status::kOk;
}

Status Machine::CopyOut(Vaddr dst, std::span<const uint8_t> src) {
  size_t done = 0;
  while (done < src.size()) {
    const Vaddr va = dst + static_cast<Vaddr>(done);
    const uint32_t in_page = kPageBytes - PageOffset(va);
    const uint32_t chunk = static_cast<uint32_t>(std::min<size_t>(in_page, src.size() - done));
    Result<Paddr> pa = Translate(va, /*store=*/true);
    if (!pa.ok()) {
      return pa.status();
    }
    Charge(kMemWordCopy * ((chunk + 3) / 4));
    for (uint32_t i = 0; i < chunk; ++i) {
      mem_.WriteByte(*pa + i, src[done + i]);
    }
    done += chunk;
  }
  return Status::kOk;
}

Result<int32_t> Machine::AddOverflow(int32_t a, int32_t b) {
  Charge(Instr(1));
  int32_t sum = 0;
  if (__builtin_add_overflow(a, b, &sum)) {
    RaiseException(ExceptionType::kOverflow, 0, /*store=*/false);
    return Status::kErrOutOfRange;
  }
  return sum;
}

Status Machine::CoprocOp() {
  Charge(Instr(1));
  if (active_->coproc_enabled_) {
    return Status::kOk;
  }
  RaiseException(ExceptionType::kCoprocUnusable, 0, /*store=*/false);
  // Re-check: the handler may have enabled the coprocessor and asked for a
  // retry; otherwise the operation is abandoned.
  return active_->coproc_enabled_ ? Status::kOk : Status::kErrBadState;
}

void Machine::WaitForInterrupt() { active_->WaitForInterrupt(); }

void Machine::PushEvent(uint64_t due_cycle, InterruptSource source, uint64_t payload) {
  cpus_[0]->PushEvent(due_cycle, source, payload);
}

// --- SMP interleaver ---

bool Machine::SiblingBehind(const Cpu& cpu) const {
  const uint64_t now = cpu.clock().now();
  for (const std::unique_ptr<Cpu>& other : cpus_) {
    if (other.get() == &cpu) {
      continue;
    }
    if (other->run_state_ == Cpu::RunState::kReady && other->clock().now() < now) {
      return true;
    }
    if (other->run_state_ == Cpu::RunState::kParked && other->NextDueCycle() < now) {
      return true;
    }
  }
  return false;
}

void Machine::YieldCpu(Cpu& cpu) {
  cpu.run_state_ = Cpu::RunState::kReady;
  Fiber::Switch(*cpu.fiber_, scheduler_fiber_);
}

void Machine::ParkCpu(Cpu& cpu) {
  cpu.run_state_ = Cpu::RunState::kParked;
  Fiber::Switch(*cpu.fiber_, scheduler_fiber_);
}

void Machine::ResumeCpu(Cpu& cpu) {
  cpu.run_state_ = Cpu::RunState::kRunning;
  active_ = &cpu;
  Fiber::Switch(scheduler_fiber_, *cpu.fiber_);
}

void Machine::RunCpus(std::vector<std::function<void()>> bodies) {
  if (bodies.size() != cpus_.size()) {
    std::fprintf(stderr, "xok: machine %s RunCpus wants %zu bodies for %zu CPUs\n", config_.name,
                 bodies.size(), cpus_.size());
    std::abort();
  }
  if (smp_running_) {
    std::fprintf(stderr, "xok: machine %s RunCpus is not reentrant\n", config_.name);
    std::abort();
  }
  smp_running_ = true;
  for (size_t i = 0; i < cpus_.size(); ++i) {
    Cpu* cpu = cpus_[i].get();
    std::function<void()> body = std::move(bodies[i]);
    cpu->run_state_ = Cpu::RunState::kReady;
    cpu->fiber_ = std::make_unique<Fiber>([this, cpu, body = std::move(body)] {
      body();
      cpu->run_state_ = Cpu::RunState::kDone;
      for (;;) {
        Fiber::Switch(*cpu->fiber_, scheduler_fiber_);
      }
    });
  }
  ScheduleCpus();
  smp_running_ = false;
  for (const std::unique_ptr<Cpu>& cpu : cpus_) {
    cpu->fiber_.reset();
    cpu->run_state_ = Cpu::RunState::kIdle;
  }
  active_ = cpus_[0].get();
}

void Machine::ScheduleCpus() {
  // Lowest-local-time-first, the SMP analogue of World::Schedule: among
  // ready CPUs pick the one whose clock is furthest behind; wake a parked
  // CPU instead when its next event is due no later than every ready CPU's
  // present. When nothing is ready and nothing is due, sweep the parked
  // CPUs with spurious wakes so their kernel loops can observe a global
  // exit condition; if a full sweep changes nothing, the machine is hung.
  bool swept = false;
  for (;;) {
    Cpu* best_ready = nullptr;
    Cpu* best_parked = nullptr;
    uint64_t parked_due = ~0ULL;
    bool any_undone = false;
    for (const std::unique_ptr<Cpu>& cpu : cpus_) {
      switch (cpu->run_state_) {
        case Cpu::RunState::kReady:
          any_undone = true;
          if (best_ready == nullptr || cpu->clock().now() < best_ready->clock().now()) {
            best_ready = cpu.get();
          }
          break;
        case Cpu::RunState::kParked:
          any_undone = true;
          if (cpu->NextDueCycle() < parked_due) {
            parked_due = cpu->NextDueCycle();
            best_parked = cpu.get();
          }
          break;
        default:
          break;
      }
    }
    if (!any_undone) {
      return;  // Every body returned.
    }
    if (best_parked != nullptr && parked_due != ~0ULL &&
        (best_ready == nullptr || parked_due <= best_ready->clock().now())) {
      best_parked->clock().AdvanceTo(parked_due);
      swept = false;
      ResumeCpu(*best_parked);
      continue;
    }
    if (best_ready != nullptr) {
      swept = false;
      ResumeCpu(*best_ready);
      continue;
    }
    // Only parked CPUs remain and none has a due event.
    if (swept) {
      std::fprintf(stderr, "xok: machine %s: all CPUs idle with no pending events (hang)\n",
                   config_.name);
      std::abort();
    }
    swept = true;
    for (const std::unique_ptr<Cpu>& cpu : cpus_) {
      if (cpu->run_state_ == Cpu::RunState::kParked) {
        ResumeCpu(*cpu);
      }
    }
  }
}

}  // namespace xok::hw
