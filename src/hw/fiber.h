// Cooperative execution contexts ("fibers") built on ucontext. Each
// simulated processor environment, each Ultrix process, and each machine in
// a multi-machine world runs on its own fiber; kernels switch between them
// deterministically. This stands in for real hardware context switching —
// the *cost* of a switch is charged separately by the kernels, per register
// actually saved/restored in their model.
#ifndef XOK_SRC_HW_FIBER_H_
#define XOK_SRC_HW_FIBER_H_

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace xok::hw {

class Fiber {
 public:
  using Entry = std::function<void()>;

  // Wraps the currently-executing context. Switching away from and back to
  // this fiber resumes here. Used for kernel scheduler loops.
  Fiber();

  // Creates a suspended fiber that will run `entry` when first switched to.
  // `entry` must not return: when its work is done it must arrange a switch
  // elsewhere (kernels enforce this via their exit syscalls); a returning
  // entry aborts the process, because there is nowhere to go.
  explicit Fiber(Entry entry, size_t stack_bytes = kDefaultStackBytes);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Saves the current context into `from` and resumes `to`.
  static void Switch(Fiber& from, Fiber& to);

  static constexpr size_t kDefaultStackBytes = 256 * 1024;

 private:
  static void Trampoline(unsigned hi, unsigned lo);

  ucontext_t context_{};
  std::vector<uint8_t> stack_;  // Empty for the wrapping constructor.
  Entry entry_;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_FIBER_H_
