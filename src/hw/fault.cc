#include "src/hw/fault.h"

namespace xok::hw {

namespace {
// Channel salts keep the per-channel streams independent under one seed.
constexpr uint64_t kDiskSalt = 0xd15cULL;
constexpr uint64_t kTornSalt = 0x7093ULL;
constexpr uint64_t kDropSalt = 0xd809ULL;
constexpr uint64_t kCorruptSalt = 0xc087ULL;
}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan),
      disk_rng_(plan.seed ^ kDiskSalt),
      torn_rng_(plan.seed ^ kTornSalt),
      drop_rng_(plan.seed ^ kDropSalt),
      corrupt_rng_(plan.seed ^ kCorruptSalt) {}

bool FaultInjector::NextDiskError() {
  if (plan_.disk_error_per_mille == 0) {
    return false;
  }
  if (disk_rng_.NextBelow(1000) >= plan_.disk_error_per_mille) {
    return false;
  }
  ++disk_errors_injected_;
  return true;
}

uint32_t FaultInjector::NextTornWords(uint32_t words_per_block) {
  if (plan_.disk_torn_per_mille == 0 || words_per_block < 2) {
    return 0;
  }
  if (torn_rng_.NextBelow(1000) >= plan_.disk_torn_per_mille) {
    return 0;
  }
  ++blocks_torn_;
  return 1 + static_cast<uint32_t>(torn_rng_.NextBelow(words_per_block - 1));
}

bool FaultInjector::NextWireDrop() {
  if (plan_.wire_drop_per_mille == 0) {
    return false;
  }
  if (drop_rng_.NextBelow(1000) >= plan_.wire_drop_per_mille) {
    return false;
  }
  ++frames_dropped_;
  return true;
}

bool FaultInjector::MaybeCorruptFrame(std::span<uint8_t> frame) {
  if (plan_.wire_corrupt_per_mille == 0 || frame.empty()) {
    return false;
  }
  if (corrupt_rng_.NextBelow(1000) >= plan_.wire_corrupt_per_mille) {
    return false;
  }
  const uint64_t draw = corrupt_rng_.Next();
  const size_t index = draw % frame.size();
  uint8_t flip = static_cast<uint8_t>((draw >> 32) & 0xff);
  if (flip == 0) {
    flip = 0x01;  // Always change at least one bit.
  }
  frame[index] ^= flip;
  ++frames_corrupted_;
  return true;
}

}  // namespace xok::hw
