// Physical memory: a flat array of 4 KB page frames. The hardware knows
// nothing about ownership — secure bindings and capabilities live in the
// exokernel (src/core); the Ultrix baseline manages frames with its own
// internal free list. Out-of-range physical accesses are bus errors.
#ifndef XOK_SRC_HW_PHYS_MEM_H_
#define XOK_SRC_HW_PHYS_MEM_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/base/result.h"
#include "src/hw/trap.h"

namespace xok::hw {

class PhysMem {
 public:
  explicit PhysMem(uint32_t page_count)
      : page_count_(page_count), bytes_(static_cast<size_t>(page_count) * kPageBytes) {}

  uint32_t page_count() const { return page_count_; }

  bool ValidPage(PageId page) const { return page < page_count_; }
  bool ValidPaddr(Paddr pa) const { return (pa >> kPageShift) < page_count_; }

  // Word accessors. `pa` must be word-aligned and in range; callers
  // (the machine) enforce alignment and translate errors into exceptions.
  uint32_t ReadWord(Paddr pa) const {
    uint32_t word;
    std::memcpy(&word, &bytes_[pa], sizeof(word));
    return word;
  }
  void WriteWord(Paddr pa, uint32_t value) { std::memcpy(&bytes_[pa], &value, sizeof(value)); }

  uint8_t ReadByte(Paddr pa) const { return bytes_[pa]; }
  void WriteByte(Paddr pa, uint8_t value) { bytes_[pa] = value; }

  // Raw views of a page frame, used for bulk copies (DMA, kernel buffer
  // moves). Cycle charging is the caller's job.
  std::span<uint8_t> PageSpan(PageId page) {
    return std::span<uint8_t>(&bytes_[static_cast<size_t>(page) * kPageBytes], kPageBytes);
  }
  std::span<const uint8_t> PageSpan(PageId page) const {
    return std::span<const uint8_t>(&bytes_[static_cast<size_t>(page) * kPageBytes], kPageBytes);
  }

  // A contiguous run of page frames as one span (frames are physically
  // contiguous iff their page ids are consecutive). Used for DMA regions
  // and ASH pinned regions.
  std::span<uint8_t> RangeSpan(PageId first_page, uint32_t page_count) {
    return std::span<uint8_t>(&bytes_[static_cast<size_t>(first_page) * kPageBytes],
                              static_cast<size_t>(page_count) * kPageBytes);
  }

 private:
  uint32_t page_count_;
  std::vector<uint8_t> bytes_;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_PHYS_MEM_H_
