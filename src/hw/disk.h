// A fixed-latency block device. Requests complete asynchronously: the
// machine receives an InterruptSource::kDiskDone interrupt whose payload is
// the request id; the kernel then calls Complete() to retire it. Transfers
// move whole 4 KB blocks to/from physical page frames (DMA), charged per
// word like any other bulk copy.
//
// Durability model: the controller has a volatile write buffer. A write
// request is *acknowledged* at its completion interrupt but the block sits
// in the buffer until a barrier request (SubmitBarrier) drains it to the
// platter. Reads see the buffer (read-your-writes). At a power cut
// (PowerCut) the buffer dies: each buffered block is lost whole, except
// that with FaultPlan::disk_torn_per_mille a block caught mid-DMA retains
// a prefix of its new words on the platter — the torn-write hazard a
// crash-consistent library file system must survive. TakeImage /
// RestoreImage let a test boot a fresh Machine over the surviving platter
// contents.
#ifndef XOK_SRC_HW_DISK_H_
#define XOK_SRC_HW_DISK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/hw/fault.h"
#include "src/hw/machine.h"

namespace xok::hw {

class Disk {
 public:
  struct Completion {
    uint32_t block = 0;
    bool write = false;
    bool failed = false;   // Media/controller error: the DMA never happened.
    bool barrier = false;  // Write-buffer drain, not a block transfer.
  };

  Disk(Machine& machine, uint32_t block_count)
      : machine_(machine),
        block_count_(block_count),
        media_(static_cast<size_t>(block_count) * kPageBytes, 0) {}

  uint32_t block_count() const { return block_count_; }

  // Starts a read of `block` into physical frame `frame`. Returns the
  // request id whose completion interrupt will carry it as payload.
  Result<uint64_t> SubmitRead(uint32_t block, PageId frame) {
    return Submit(block, frame, Kind::kRead);
  }

  // Starts a write of physical frame `frame` to `block`.
  Result<uint64_t> SubmitWrite(uint32_t block, PageId frame) {
    return Submit(block, frame, Kind::kWrite);
  }

  // Starts a write barrier: when its completion interrupt fires, every
  // previously acknowledged write is durable on the platter.
  Result<uint64_t> SubmitBarrier() { return Submit(0, 0, Kind::kBarrier); }

  // Arms fault injection: transfers whose completion draws a disk error
  // finish with Completion::failed set and no DMA, and PowerCut draws
  // torn-write prefixes. Pass nullptr to disarm.
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }

  // Deterministic persistent media fault: every non-barrier transfer whose
  // completion lands in [from_cycle, until_cycle) fails. Unlike the
  // injector's per-transfer draws this defeats bounded retry loops
  // (BlockCache::kMaxIoAttempts) for the whole window, which is how tests
  // force a library file system into its degraded path — and then watch it
  // recover when the window closes. until_cycle = 0 disarms.
  void SetErrorWindow(uint64_t from_cycle, uint64_t until_cycle) {
    error_from_ = from_cycle;
    error_until_ = until_cycle;
  }
  bool InErrorWindow() const {
    const uint64_t now = machine_.clock().now();
    return error_until_ != 0 && now >= error_from_ && now < error_until_;
  }

  // Retires a completed request (called from the kDiskDone handler).
  Result<Completion> Complete(uint64_t request_id) {
    auto it = inflight_.find(request_id);
    if (it == inflight_.end()) {
      return Status::kErrNotFound;
    }
    Request req = it->second;
    inflight_.erase(it);
    if (req.kind == Kind::kBarrier) {
      for (auto& [block, bytes] : buffer_) {
        std::copy(bytes.begin(), bytes.end(), MediaOf(block));
        ++blocks_made_durable_;
      }
      buffer_.clear();
      ++barriers_completed_;
      return Completion{0, true, /*failed=*/false, /*barrier=*/true};
    }
    if (InErrorWindow()) {
      return Completion{req.block, req.kind == Kind::kWrite, /*failed=*/true};
    }
    if (fault_injector_ != nullptr && fault_injector_->NextDiskError()) {
      return Completion{req.block, req.kind == Kind::kWrite, /*failed=*/true};
    }
    // The DMA happens "during" the latency window; apply it at completion.
    auto frame_span = machine_.mem().PageSpan(req.frame);
    if (req.kind == Kind::kWrite) {
      // Acknowledged into the volatile buffer; durable only after a barrier.
      buffer_[req.block].assign(frame_span.begin(), frame_span.end());
    } else {
      auto buffered = buffer_.find(req.block);
      const uint8_t* src =
          buffered != buffer_.end() ? buffered->second.data() : MediaOf(req.block);
      std::copy(src, src + kPageBytes, frame_span.begin());
    }
    return Completion{req.block, req.kind == Kind::kWrite, /*failed=*/false};
  }

  // Cancels an in-flight request: the DMA will never land. The completion
  // interrupt may still fire; Complete() then reports kErrNotFound, which
  // the kernel treats as a retired/spurious completion.
  bool Cancel(uint64_t request_id) { return inflight_.erase(request_id) > 0; }

  // Cancels every in-flight transfer whose DMA frame satisfies `pred`.
  // Used by crash-safe environment teardown: a dying environment's frames
  // return to the free pool, so DMA into them must not land later (the
  // frame may have been reallocated to another environment by then).
  // Barriers have no DMA frame and are never cancelled here.
  std::vector<uint64_t> CancelIf(const std::function<bool(PageId frame)>& pred) {
    std::vector<uint64_t> cancelled;
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (it->second.kind != Kind::kBarrier && pred(it->second.frame)) {
        cancelled.push_back(it->first);
        it = inflight_.erase(it);
      } else {
        ++it;
      }
    }
    return cancelled;
  }

  // Power loss. In-flight requests never happen; the volatile write buffer
  // dies — each buffered block survives only if the torn-write channel
  // fires, and then only as a prefix of new words over the old block. The
  // device refuses all further requests.
  void PowerCut() {
    for (const auto& [block, bytes] : buffer_) {
      const uint32_t words =
          fault_injector_ != nullptr ? fault_injector_->NextTornWords(kPageBytes / 4) : 0;
      if (words > 0) {
        std::copy(bytes.begin(), bytes.begin() + words * 4, MediaOf(block));
      }
    }
    buffer_.clear();
    inflight_.clear();
    powered_off_ = true;
  }

  // Snapshot of the durable platter contents (the volatile buffer is
  // deliberately excluded — only barrier-ordered state survives a reboot).
  std::vector<uint8_t> TakeImage() const { return media_; }

  // Boots this (fresh) disk over a surviving platter image.
  Status RestoreImage(const std::vector<uint8_t>& image) {
    if (image.size() != media_.size()) {
      return Status::kErrInvalidArgs;
    }
    media_ = image;
    buffer_.clear();
    inflight_.clear();
    powered_off_ = false;
    return Status::kOk;
  }

  size_t inflight_requests() const { return inflight_.size(); }
  size_t buffered_blocks() const { return buffer_.size(); }
  bool powered_off() const { return powered_off_; }
  uint64_t barriers_completed() const { return barriers_completed_; }
  uint64_t blocks_made_durable() const { return blocks_made_durable_; }

 private:
  enum class Kind : uint8_t { kRead, kWrite, kBarrier };

  struct Request {
    uint32_t block = 0;
    PageId frame = 0;
    Kind kind = Kind::kRead;
  };

  uint8_t* MediaOf(uint32_t block) {
    return &media_[static_cast<size_t>(block) * kPageBytes];
  }

  Result<uint64_t> Submit(uint32_t block, PageId frame, Kind kind) {
    if (powered_off_) {
      return Status::kErrBadState;
    }
    if (kind != Kind::kBarrier &&
        (block >= block_count_ || !machine_.mem().ValidPage(frame))) {
      return Status::kErrOutOfRange;
    }
    machine_.Charge(Instr(50));  // Controller programming.
    const uint64_t id = next_id_++;
    inflight_.emplace(id, Request{block, frame, kind});
    // A barrier is a cache flush — cheaper than a seek, but it scales with
    // how much is buffered.
    const uint64_t latency =
        kind == Kind::kBarrier
            ? kDiskAccessCycles / 10 + buffer_.size() * (kDiskAccessCycles / 50)
            : kDiskAccessCycles;
    machine_.PushEvent(machine_.clock().now() + latency, InterruptSource::kDiskDone, id);
    return id;
  }

  Machine& machine_;
  uint32_t block_count_;
  std::vector<uint8_t> media_;  // Durable platter contents.
  // Volatile write buffer: acknowledged but not yet durable, keyed by block
  // (std::map so power-cut torn draws are deterministic per seed).
  std::map<uint32_t, std::vector<uint8_t>> buffer_;
  std::unordered_map<uint64_t, Request> inflight_;
  uint64_t next_id_ = 1;
  uint64_t error_from_ = 0;   // Persistent-fault window (0,0 = disarmed).
  uint64_t error_until_ = 0;
  bool powered_off_ = false;
  uint64_t barriers_completed_ = 0;
  uint64_t blocks_made_durable_ = 0;
  FaultInjector* fault_injector_ = nullptr;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_DISK_H_
