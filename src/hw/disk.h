// A fixed-latency block device. Requests complete asynchronously: the
// machine receives an InterruptSource::kDiskDone interrupt whose payload is
// the request id; the kernel then calls Complete() to retire it. Transfers
// move whole 4 KB blocks to/from physical page frames (DMA), charged per
// word like any other bulk copy.
#ifndef XOK_SRC_HW_DISK_H_
#define XOK_SRC_HW_DISK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/hw/fault.h"
#include "src/hw/machine.h"

namespace xok::hw {

class Disk {
 public:
  struct Completion {
    uint32_t block = 0;
    bool write = false;
    bool failed = false;  // Media/controller error: the DMA never happened.
  };

  Disk(Machine& machine, uint32_t block_count)
      : machine_(machine),
        block_count_(block_count),
        data_(static_cast<size_t>(block_count) * kPageBytes, 0) {}

  uint32_t block_count() const { return block_count_; }

  // Starts a read of `block` into physical frame `frame`. Returns the
  // request id whose completion interrupt will carry it as payload.
  Result<uint64_t> SubmitRead(uint32_t block, PageId frame) {
    return Submit(block, frame, /*write=*/false);
  }

  // Starts a write of physical frame `frame` to `block`.
  Result<uint64_t> SubmitWrite(uint32_t block, PageId frame) {
    return Submit(block, frame, /*write=*/true);
  }

  // Arms fault injection: transfers whose completion draws a disk error
  // finish with Completion::failed set and no DMA. Pass nullptr to disarm.
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }

  // Retires a completed request (called from the kDiskDone handler).
  Result<Completion> Complete(uint64_t request_id) {
    auto it = inflight_.find(request_id);
    if (it == inflight_.end()) {
      return Status::kErrNotFound;
    }
    Request req = it->second;
    inflight_.erase(it);
    if (fault_injector_ != nullptr && fault_injector_->NextDiskError()) {
      return Completion{req.block, req.write, /*failed=*/true};
    }
    // The DMA happens "during" the latency window; apply it at completion.
    uint8_t* media = &data_[static_cast<size_t>(req.block) * kPageBytes];
    auto frame_span = machine_.mem().PageSpan(req.frame);
    if (req.write) {
      std::copy(frame_span.begin(), frame_span.end(), media);
    } else {
      std::copy(media, media + kPageBytes, frame_span.begin());
    }
    return Completion{req.block, req.write, /*failed=*/false};
  }

  // Cancels an in-flight request: the DMA will never land. The completion
  // interrupt may still fire; Complete() then reports kErrNotFound, which
  // the kernel treats as a retired/spurious completion.
  bool Cancel(uint64_t request_id) { return inflight_.erase(request_id) > 0; }

  // Cancels every in-flight request whose DMA frame satisfies `pred`.
  // Used by crash-safe environment teardown: a dying environment's frames
  // return to the free pool, so DMA into them must not land later (the
  // frame may have been reallocated to another environment by then).
  std::vector<uint64_t> CancelIf(const std::function<bool(PageId frame)>& pred) {
    std::vector<uint64_t> cancelled;
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (pred(it->second.frame)) {
        cancelled.push_back(it->first);
        it = inflight_.erase(it);
      } else {
        ++it;
      }
    }
    return cancelled;
  }

  size_t inflight_requests() const { return inflight_.size(); }

 private:
  struct Request {
    uint32_t block = 0;
    PageId frame = 0;
    bool write = false;
  };

  Result<uint64_t> Submit(uint32_t block, PageId frame, bool write) {
    if (block >= block_count_ || !machine_.mem().ValidPage(frame)) {
      return Status::kErrOutOfRange;
    }
    machine_.Charge(Instr(50));  // Controller programming.
    const uint64_t id = next_id_++;
    inflight_.emplace(id, Request{block, frame, write});
    machine_.PushEvent(machine_.clock().now() + kDiskAccessCycles, InterruptSource::kDiskDone,
                       id);
    return id;
  }

  Machine& machine_;
  uint32_t block_count_;
  std::vector<uint8_t> data_;
  std::unordered_map<uint64_t, Request> inflight_;
  uint64_t next_id_ = 1;
  FaultInjector* fault_injector_ = nullptr;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_DISK_H_
