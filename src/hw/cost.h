// Cycle-cost model for the simulated machine.
//
// The simulated target is a DECstation 5000/125 (25 MHz MIPS R3000), the
// machine the paper reports most results on. Simulated time advances only
// when code charges cycles; both kernels (Aegis and the Ultrix-like
// baseline) run on this same model, so relative results reflect path length,
// which is what the paper measures.
//
// Calibration: one simulated instruction costs kCyclesPerInstruction = 2
// cycles (80 ns). This folds in average cache behaviour: the paper's
// 18-instruction Aegis exception dispatch measures 1.5 us on the 5000/125,
// i.e. ~2.1 cycles/instruction effective.
#ifndef XOK_SRC_HW_COST_H_
#define XOK_SRC_HW_COST_H_

#include <cstdint>

namespace xok::hw {

// Simulated CPU clock rate (DECstation 5000/125).
inline constexpr uint64_t kClockHz = 25'000'000;

// Effective cycles per simulated instruction (includes cache effects).
inline constexpr uint64_t kCyclesPerInstruction = 2;

// Cycles for `n` simulated instructions.
constexpr uint64_t Instr(uint64_t n) { return n * kCyclesPerInstruction; }

// Converts a cycle count to microseconds on the simulated clock.
constexpr double CyclesToMicros(uint64_t cycles) {
  return static_cast<double>(cycles) * 1e6 / static_cast<double>(kClockHz);
}

// --- Hardware-level costs (charged by the machine itself) ---

// A single 32-bit load/store that hits the TLB: one instruction.
inline constexpr uint64_t kMemWordAccess = Instr(1);

// Copying one 32-bit word in a tight loop (load + store + bookkeeping
// amortised): two instructions per word.
inline constexpr uint64_t kMemWordCopy = Instr(2);

// Raising an exception: pipeline flush plus vectoring to the handler.
inline constexpr uint64_t kExceptionRaise = Instr(4);

// Returning from an exception (rfe + pipeline refill).
inline constexpr uint64_t kExceptionReturn = Instr(2);

// Writing one TLB entry (privileged tlbwr/tlbwi sequence).
inline constexpr uint64_t kTlbWrite = Instr(3);

// Probing the TLB explicitly (tlbp + read).
inline constexpr uint64_t kTlbProbe = Instr(2);

// Saving or restoring one general-purpose register to/from memory.
inline constexpr uint64_t kSaveRegister = Instr(1);

// Writing the inter-processor interrupt mailbox register (uncached I/O).
inline constexpr uint64_t kIpiSend = Instr(2);

// Wire latency from the mailbox write until the target CPU observes the
// interrupt request pending.
inline constexpr uint64_t kIpiLatency = Instr(5);

// --- Network hardware (LANCE-style 10 Mb/s Ethernet controller) ---

// Cycles to put one byte on a 10 Mb/s wire: 0.8 us/byte = 20 cycles.
inline constexpr uint64_t kWireCyclesPerByte = 20;

// Fixed controller latency per packet (DMA setup, interrupt posting) on each
// of the send and receive sides.
inline constexpr uint64_t kNicControllerLatency = Instr(500);

// --- Disk (fixed-latency block device; generous 1995-era seek+rotate) ---

inline constexpr uint64_t kDiskAccessCycles = kClockHz / 100;  // 10 ms.

}  // namespace xok::hw

#endif  // XOK_SRC_HW_COST_H_
