// Simulated LANCE-style Ethernet controller and the shared wire.
//
// The wire is a broadcast medium: a transmitted frame is delivered to every
// other attached controller whose station address matches the frame's
// 6-byte destination (or the broadcast address). Delivery is a timed event:
// arrival = transmit time + serialisation at 10 Mb/s + fixed controller
// latency on each side. On arrival the frame lands in the controller's
// receive ring and an InterruptSource::kNicRx interrupt is posted; if the
// ring is full the frame is dropped (and counted), as real hardware does.
#ifndef XOK_SRC_HW_NIC_H_
#define XOK_SRC_HW_NIC_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "src/base/rand.h"
#include "src/hw/fault.h"
#include "src/hw/machine.h"

namespace xok::hw {

using MacAddr = uint64_t;  // Low 48 bits are the station address.

inline constexpr MacAddr kBroadcastMac = 0xffffffffffffULL;

// Reads the 6-byte big-endian destination/source fields of an Ethernet frame.
constexpr MacAddr ReadMac(std::span<const uint8_t> frame, size_t offset) {
  MacAddr mac = 0;
  for (size_t i = 0; i < 6; ++i) {
    mac = (mac << 8) | frame[offset + i];
  }
  return mac;
}

class Wire;

class Nic {
 public:
  static constexpr size_t kRxRingSlots = 64;
  static constexpr size_t kMaxFrameBytes = 1518;
  static constexpr size_t kMinFrameBytes = 14;  // Header only; no pad modelled.

  Nic(Machine& machine, MacAddr mac);

  MacAddr mac() const { return mac_; }
  Machine& machine() { return machine_; }

  // Transmits a frame. Charges the sender for the copy into the transmit
  // buffer and the controller setup — and, when the transmitter is still
  // serialising the previous frame onto the 10 Mb/s wire, for the stall
  // until it frees up (TX backpressure: back-to-back sends are wire-bound,
  // not free beyond the copy). Returns false for malformed frames.
  //
  // A frame addressed to the controller's own station address is
  // internally looped back into the receive ring (LANCE loopback mode)
  // without touching the wire — no serialisation stall, and it works with
  // the cable unplugged. This is how a single simulated machine hosts
  // client and server environments talking through the full demux path.
  bool Transmit(std::span<const uint8_t> frame);

  // Pops the next received frame, if any. Called by the kernel from the
  // kNicRx interrupt handler. The kernel is charged for examining the ring.
  std::optional<std::vector<uint8_t>> ReceiveNext();

  // Host/bench-side injection (charges nothing): lands `frame` in the
  // receive ring as if it had just arrived off the wire, posting the usual
  // kNicRx interrupt. Lets benches isolate receive-path software cost from
  // wire serialisation.
  void InjectRx(std::vector<uint8_t> frame);

  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t frames_transmitted() const { return frames_transmitted_; }
  uint64_t loopback_frames() const { return loopback_frames_; }
  uint64_t tx_stalls() const { return tx_stalls_; }
  uint64_t tx_stall_cycles() const { return tx_stall_cycles_; }

 private:
  friend class Wire;

  // Called by the wire: frame arrives at `arrival_cycle`.
  void DeliverAt(uint64_t arrival_cycle, std::vector<uint8_t> frame);

  Machine& machine_;
  MacAddr mac_;
  Wire* wire_ = nullptr;
  std::deque<std::vector<uint8_t>> rx_ring_;
  uint64_t frames_dropped_ = 0;
  uint64_t frames_received_ = 0;
  uint64_t frames_transmitted_ = 0;
  uint64_t loopback_frames_ = 0;
  uint64_t tx_free_at_ = 0;  // Cycle the transmitter finishes serialising.
  uint64_t tx_stalls_ = 0;
  uint64_t tx_stall_cycles_ = 0;
};

class Wire {
 public:
  Wire() = default;

  Wire(const Wire&) = delete;
  Wire& operator=(const Wire&) = delete;

  void Attach(Nic* nic);

  // Fault injection: drop roughly `per_mille`/1000 of delivered frames,
  // deterministically (seeded). 0 disables (default). Real Ethernet loses
  // frames under collisions and overruns; reliable protocols built above
  // (src/net) are tested against this.
  void SetLossRate(uint32_t per_mille, uint64_t seed = 0x10559) {
    loss_per_mille_ = per_mille;
    loss_rng_ = SplitMix64(seed);
  }

  // Richer fault injection (drop + byte corruption) from a shared seeded
  // plan; composes with SetLossRate. Pass nullptr to disarm.
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }

  uint64_t frames_lost() const { return frames_lost_; }
  uint64_t frames_corrupted() const { return frames_corrupted_; }

 private:
  friend class Nic;

  void Broadcast(Nic* sender, std::span<const uint8_t> frame);

  std::vector<Nic*> nics_;
  uint32_t loss_per_mille_ = 0;
  SplitMix64 loss_rng_{0x10559};
  uint64_t frames_lost_ = 0;
  uint64_t frames_corrupted_ = 0;
  FaultInjector* fault_injector_ = nullptr;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_NIC_H_
