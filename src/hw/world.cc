#include "src/hw/world.h"

#include <cstdio>
#include <cstdlib>

#include "src/hw/machine.h"

namespace xok::hw {

World::World() : clock_(std::make_shared<CycleClock>()) {}

World::~World() = default;

void World::Attach(Machine* machine) {
  machine->set_world_index(static_cast<uint32_t>(slots_.size()));
  slots_.push_back(Slot{machine, nullptr, MachineState::kReady});
}

void World::Run(std::vector<std::function<void()>> bodies) {
  if (bodies.size() != slots_.size()) {
    std::fprintf(stderr, "xok: World::Run needs one body per attached machine\n");
    std::abort();
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    slot.state = MachineState::kReady;
    auto body = std::move(bodies[i]);
    slot.fiber = std::make_unique<Fiber>([this, i, body = std::move(body)]() {
      body();
      slots_[i].state = MachineState::kDone;
      for (;;) {
        Fiber::Switch(*slots_[i].fiber, world_fiber_);
      }
    });
  }
  Schedule();
}

void World::Schedule() {
  for (;;) {
    size_t due_index = SIZE_MAX;
    const uint64_t due_cycle = ParkedMinDue(&due_index);

    size_t ready_index = SIZE_MAX;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].state == MachineState::kReady) {
        ready_index = i;
        break;
      }
    }

    if (due_index != SIZE_MAX &&
        (ready_index == SIZE_MAX || due_cycle <= clock_->now())) {
      clock_->AdvanceTo(due_cycle);
      ResumeMachine(due_index);
      continue;
    }
    if (ready_index != SIZE_MAX) {
      ResumeMachine(ready_index);
      continue;
    }
    return;  // All machines done, or parked with nothing pending (quiescent).
  }
}

void World::ResumeMachine(size_t index) {
  Slot& slot = slots_[index];
  slot.state = MachineState::kRunning;
  running_ = index;
  RecomputeParkedMin();
  Fiber::Switch(world_fiber_, *slot.fiber);
  running_ = SIZE_MAX;
}

void World::Park(Machine* machine) {
  Slot& slot = slots_[machine->world_index()];
  slot.state = MachineState::kParked;
  RecomputeParkedMin();
  Fiber::Switch(*slot.fiber, world_fiber_);
}

void World::YieldForDueEvent(Machine* machine) {
  Slot& slot = slots_[machine->world_index()];
  slot.state = MachineState::kReady;
  RecomputeParkedMin();
  Fiber::Switch(*slot.fiber, world_fiber_);
}

uint64_t World::ParkedMinDue(size_t* index_out) const {
  uint64_t best = kNever;
  size_t best_index = SIZE_MAX;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].state != MachineState::kParked) {
      continue;
    }
    const uint64_t due = slots_[i].machine->NextDueCycle();
    if (due < best) {
      best = due;
      best_index = i;
    }
  }
  if (index_out != nullptr) {
    *index_out = best_index;
  }
  return best;
}

void World::RecomputeParkedMin() { parked_min_due_ = ParkedMinDue(nullptr); }

}  // namespace xok::hw
