// A World co-simulates several machines on one shared cycle clock. At most
// one machine executes at a time (they run on fibers); the world hands
// control to whichever machine has the earliest due hardware event, and a
// running machine yields when some parked machine's event becomes due, so
// event delivery order is globally consistent with simulated time (with
// skew bounded by the distance between cycle-charge points).
#ifndef XOK_SRC_HW_WORLD_H_
#define XOK_SRC_HW_WORLD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/hw/clock.h"
#include "src/hw/fiber.h"

namespace xok::hw {

class Machine;

class World {
 public:
  World();
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  std::shared_ptr<CycleClock> clock() { return clock_; }

  // Runs `body` for each previously-attached machine (in attach order) on
  // its own fiber, interleaving by event time, until every body returns or
  // the world quiesces (all machines parked with no pending events).
  // `bodies[i]` is the kernel main loop for machine i.
  void Run(std::vector<std::function<void()>> bodies);

  // --- Used by Machine (not by kernels or applications) ---

  void Attach(Machine* machine);

  // Called from Machine::WaitForInterrupt: parks the caller until one of its
  // events is due. Control returns once the world decides it should run.
  void Park(Machine* machine);

  // Called from Machine::Charge when a parked machine's event is due: lets
  // that machine run; the caller resumes afterwards.
  void YieldForDueEvent(Machine* machine);

  // True if some *parked* machine has an event due at or before `now`.
  bool ParkedEventDue(uint64_t now) const {
    return parked_min_due_ <= now;
  }

  // Recomputes the cached earliest-due-event cycle over parked machines.
  void RecomputeParkedMin();

 private:
  enum class MachineState : uint8_t { kReady, kRunning, kParked, kDone };

  struct Slot {
    Machine* machine = nullptr;
    std::unique_ptr<Fiber> fiber;
    MachineState state = MachineState::kReady;
  };

  // Core scheduler loop; runs on the world fiber.
  void Schedule();
  void ResumeMachine(size_t index);

  // Earliest due cycle among parked machines' queues, or kNever.
  static constexpr uint64_t kNever = ~0ULL;
  uint64_t ParkedMinDue(size_t* index_out) const;

  std::shared_ptr<CycleClock> clock_;
  std::vector<Slot> slots_;
  Fiber world_fiber_;
  size_t running_ = SIZE_MAX;
  uint64_t parked_min_due_ = kNever;
};

}  // namespace xok::hw

#endif  // XOK_SRC_HW_WORLD_H_
