#include "src/cap/siphash.h"

namespace xok::cap {
namespace {

constexpr uint64_t Rotl(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

struct SipState {
  uint64_t v0, v1, v2, v3;

  void Round() {
    v0 += v1;
    v1 = Rotl(v1, 13);
    v1 ^= v0;
    v0 = Rotl(v0, 32);
    v2 += v3;
    v3 = Rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = Rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = Rotl(v1, 17);
    v1 ^= v2;
    v2 = Rotl(v2, 32);
  }
};

uint64_t ReadLe64(const uint8_t* p) {
  uint64_t x = 0;
  for (int i = 7; i >= 0; --i) {
    x = (x << 8) | p[i];
  }
  return x;
}

}  // namespace

uint64_t SipHash24(const SipKey& key, std::span<const uint8_t> data) {
  SipState s{
      key.k0 ^ 0x736f6d6570736575ULL,
      key.k1 ^ 0x646f72616e646f6dULL,
      key.k0 ^ 0x6c7967656e657261ULL,
      key.k1 ^ 0x7465646279746573ULL,
  };

  const size_t full = data.size() / 8;
  for (size_t i = 0; i < full; ++i) {
    const uint64_t m = ReadLe64(&data[i * 8]);
    s.v3 ^= m;
    s.Round();
    s.Round();
    s.v0 ^= m;
  }

  // Final block: remaining bytes plus the length in the top byte.
  uint64_t last = static_cast<uint64_t>(data.size() & 0xff) << 56;
  for (size_t i = 0; i < (data.size() & 7); ++i) {
    last |= static_cast<uint64_t>(data[full * 8 + i]) << (8 * i);
  }
  s.v3 ^= last;
  s.Round();
  s.Round();
  s.v0 ^= last;

  s.v2 ^= 0xff;
  s.Round();
  s.Round();
  s.Round();
  s.Round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

}  // namespace xok::cap
