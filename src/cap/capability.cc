#include "src/cap/capability.h"

#include <array>

namespace xok::cap {

uint64_t CapAuthority::MacOf(const Capability& c) const {
  std::array<uint8_t, 13> buf{};
  buf[0] = static_cast<uint8_t>(c.resource.kind);
  for (int i = 0; i < 4; ++i) {
    buf[1 + i] = static_cast<uint8_t>(c.resource.index >> (8 * i));
    buf[5 + i] = static_cast<uint8_t>(c.rights >> (8 * i));
    buf[9 + i] = static_cast<uint8_t>(c.epoch >> (8 * i));
  }
  return SipHash24(key_, buf);
}

Capability CapAuthority::Mint(ResourceId resource, uint32_t rights, uint32_t epoch) const {
  Capability c;
  c.resource = resource;
  c.rights = rights;
  c.epoch = epoch;
  c.mac = MacOf(c);
  return c;
}

bool CapAuthority::Authentic(const Capability& c) const { return c.mac == MacOf(c); }

bool CapAuthority::Check(const Capability& c, ResourceId resource, uint32_t required,
                         uint32_t epoch) const {
  if (!Authentic(c)) {
    return false;
  }
  if (!(c.resource == resource) || c.epoch != epoch) {
    return false;
  }
  return (c.rights & required) == required;
}

Result<Capability> CapAuthority::Derive(const Capability& c, uint32_t new_rights) const {
  if (!Authentic(c)) {
    return Status::kErrBadCapability;
  }
  if ((c.rights & kGrant) == 0) {
    return Status::kErrAccessDenied;
  }
  if ((new_rights & ~c.rights) != 0) {
    return Status::kErrAccessDenied;  // Rights can only shrink.
  }
  return Mint(c.resource, new_rights, c.epoch);
}

}  // namespace xok::cap
