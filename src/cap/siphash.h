// SipHash-2-4: a keyed pseudo-random function used to make capabilities
// self-authenticating (paper §3.1, following Chaum & Fabry [12]: protection
// via encryption rather than kernel-held tables). Implemented from the
// reference description; deterministic and dependency-free.
#ifndef XOK_SRC_CAP_SIPHASH_H_
#define XOK_SRC_CAP_SIPHASH_H_

#include <cstdint>
#include <span>

namespace xok::cap {

struct SipKey {
  uint64_t k0 = 0;
  uint64_t k1 = 0;
};

// 64-bit SipHash-2-4 of `data` under `key`.
uint64_t SipHash24(const SipKey& key, std::span<const uint8_t> data);

}  // namespace xok::cap

#endif  // XOK_SRC_CAP_SIPHASH_H_
