// Self-authenticating capabilities (paper §3.1).
//
// When a library operating system allocates a resource, the exokernel mints
// a capability naming that resource with a set of rights. The capability
// carries a MAC computed under a kernel-private key, so the kernel needs no
// per-capability storage: presentation of a capability is checked by
// recomputing the MAC ("self-authenticating", following Chaum & Fabry). A
// holder may ask the kernel to *derive* a capability with a subset of the
// rights, which is how a libOS grants a weaker view of its pages to another
// environment (e.g. read-only sharing for IPC buffers).
#ifndef XOK_SRC_CAP_CAPABILITY_H_
#define XOK_SRC_CAP_CAPABILITY_H_

#include <cstdint>

#include "src/base/result.h"
#include "src/cap/siphash.h"

namespace xok::cap {

// Rights bits. kGrant permits deriving sub-capabilities; kRevoke permits
// deallocating / rebinding the resource.
enum Rights : uint32_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kGrant = 1u << 2,
  kRevoke = 1u << 3,
  kAllRights = kRead | kWrite | kGrant | kRevoke,
};

// What kind of physical resource a capability names.
enum class ResourceKind : uint8_t {
  kPhysPage = 1,
  kEnvironment = 2,
  kFilterSlot = 3,   // A packet-filter binding slot.
  kFbTile = 4,       // A framebuffer tile.
  kDiskExtent = 5,   // A contiguous run of disk blocks.
  kTimeSlice = 6,    // A position in the CPU slice vector.
};

struct ResourceId {
  ResourceKind kind = ResourceKind::kPhysPage;
  uint32_t index = 0;

  friend bool operator==(const ResourceId&, const ResourceId&) = default;
};

struct Capability {
  ResourceId resource;
  uint32_t rights = 0;
  uint32_t epoch = 0;  // Bumped on revocation: stale capabilities die.
  uint64_t mac = 0;

  friend bool operator==(const Capability&, const Capability&) = default;
};

// The kernel-held minting/checking authority. Exactly one per kernel.
class CapAuthority {
 public:
  explicit CapAuthority(SipKey key) : key_(key) {}

  CapAuthority(const CapAuthority&) = delete;
  CapAuthority& operator=(const CapAuthority&) = delete;

  // Mints a fresh capability for `resource` with `rights` at `epoch`.
  Capability Mint(ResourceId resource, uint32_t rights, uint32_t epoch) const;

  // True iff `c` authenticates and carries every right in `required` for
  // `resource` at `epoch`.
  bool Check(const Capability& c, ResourceId resource, uint32_t required,
             uint32_t epoch) const;

  // Derives a capability with `new_rights` ⊆ c.rights for the same
  // resource. Requires kGrant on `c`. Fails closed on any mismatch.
  Result<Capability> Derive(const Capability& c, uint32_t new_rights) const;

  // Authenticates `c` without checking resource/epoch (used on syscall
  // entry before the kernel looks up the resource).
  bool Authentic(const Capability& c) const;

 private:
  uint64_t MacOf(const Capability& c) const;

  SipKey key_;
};

}  // namespace xok::cap

#endif  // XOK_SRC_CAP_CAPABILITY_H_
