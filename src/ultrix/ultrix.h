// The Ultrix-like monolithic baseline kernel, running on the same
// simulated machine as Aegis. It implements the traditional fixed
// abstractions in the kernel: processes with kernel-managed page tables,
// demand-zero heaps, signals, pipes with kernel buffering, and UDP
// sockets with in-kernel protocol processing. Its purpose is to be the
// structurally-honest comparison point for every table in the paper: the
// slowdowns come from the monolithic path lengths (full saves, kernel
// crossings, buffered copies, signal frames), not from inflated constants
// on identical code paths. See src/ultrix/costs.h.
#ifndef XOK_SRC_ULTRIX_ULTRIX_H_
#define XOK_SRC_ULTRIX_ULTRIX_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/hw/fiber.h"
#include "src/hw/machine.h"
#include "src/hw/nic.h"
#include "src/net/wire.h"
#include "src/ultrix/costs.h"

namespace xok::ultrix {

using Pid = uint32_t;
inline constexpr Pid kNoPid = 0;

enum Prot : uint8_t {
  kProtNone = 0,
  kProtRead = 1,
  kProtWrite = 2,
};

struct Datagram {
  uint32_t src_ip = 0;
  uint16_t src_port = 0;
  std::vector<uint8_t> payload;
};

class Ultrix final : public hw::TrapSink {
 public:
  struct NetConfig {
    uint64_t mac = 0;
    uint32_t ip = 0;
    std::function<uint64_t(uint32_t ip)> resolve;
  };

  explicit Ultrix(hw::Machine& machine);
  ~Ultrix() override;

  Ultrix(const Ultrix&) = delete;
  Ultrix& operator=(const Ultrix&) = delete;

  void AttachNic(hw::Nic* nic, NetConfig config);

  // Creates a process; `main` runs when first scheduled.
  Result<Pid> CreateProcess(std::function<void()> main);
  // Scheduler loop; returns when every process has exited.
  void Run();

  hw::Machine& machine() { return machine_; }

  // --- System calls (every one pays the full trap + syscall layer) ---

  void SysNull();
  Pid SysGetPid();
  uint64_t SysGetTime();
  void SysYield();  // Voluntary reschedule: full context switch.
  void SysSleep(uint64_t cycles);  // Sleep for at least `cycles`.
  [[noreturn]] void SysExit();

  // Memory. The heap is demand-zero; mprotect changes kernel PTEs. The
  // SIGSEGV-style handler (one per process) is invoked through full signal
  // delivery; returning true retries the access.
  using SignalHandler = std::function<bool(hw::Vaddr va, bool is_write)>;
  void SysSignal(SignalHandler handler);
  Status SysMprotect(hw::Vaddr va, uint32_t pages, Prot prot);
  // Dirty inspection requires asking the kernel (contrast: ExOS reads its
  // own page table).
  Result<bool> SysMincoreDirty(hw::Vaddr va);

  // Pipes: kernel-buffered, double copy, sleep/wakeup blocking.
  Result<std::pair<int, int>> SysPipe();  // {read fd, write fd}.
  Result<uint32_t> SysRead(int fd, std::span<uint8_t> buf);
  Status SysWrite(int fd, std::span<const uint8_t> data);
  Status SysClose(int fd);

  // UDP sockets: in-kernel protocol processing and socket buffers.
  Result<int> SysSocketUdp();
  Status SysBindPort(int fd, uint16_t port);
  Status SysSendTo(int fd, uint32_t dst_ip, uint16_t dst_port,
                   std::span<const uint8_t> payload);
  Result<Datagram> SysRecvFrom(int fd);  // Blocking.

  // --- hw::TrapSink ---
  hw::TrapOutcome OnException(hw::TrapFrame& frame) override;
  void OnInterrupt(hw::InterruptSource source, uint64_t payload) override;

 private:
  struct KernelPte {
    bool present = false;
    uint8_t prot = kProtNone;
    bool dirty = false;
    hw::PageId frame = 0;
  };

  struct PipeBuf {
    std::deque<uint8_t> data;
    Pid reader_waiting = kNoPid;
    Pid writer_waiting = kNoPid;
    int readers = 0;
    int writers = 0;
    static constexpr size_t kCapacity = 4096;
  };

  struct Socket {
    uint16_t port = 0;
    std::deque<Datagram> queue;
    Pid waiting = kNoPid;
  };

  struct OpenFile {
    enum class Kind : uint8_t { kPipeRead, kPipeWrite, kSocket } kind = Kind::kSocket;
    std::shared_ptr<PipeBuf> pipe;
    std::shared_ptr<Socket> socket;
  };

  enum class ProcState : uint8_t { kRunnable, kSleeping, kExited };

  struct Proc {
    Pid pid = kNoPid;
    hw::Asid asid = 0;
    ProcState state = ProcState::kRunnable;
    std::unique_ptr<hw::Fiber> fiber;
    int saved_trap_depth = 0;
    std::unordered_map<hw::Vpn, KernelPte> page_table;
    SignalHandler signal_handler;
  };

  Proc& Current();
  Proc* Find(Pid pid);
  void SwitchToKernel();
  void Sleep();          // Current process sleeps until Wakeup().
  void Wakeup(Pid pid);  // Charged wakeup path.

  // Trap-layer helpers.
  void ChargeSyscallEntry() { machine_.Charge(kTrapEntry + kSyscallLayer); }
  void ChargeSyscallExit() { machine_.Charge(kTrapExit); }

  // VM internals.
  hw::PageId AllocFrame();
  hw::TrapOutcome HandleVmFault(const hw::TrapFrame& frame);
  // Full signal delivery; returns the handler's verdict.
  bool DeliverSignal(hw::Vaddr va, bool is_write);

  // Network internals.
  void HandleRx();

  hw::Machine& machine_;
  hw::PrivPort& priv_;
  std::vector<std::unique_ptr<Proc>> procs_;
  Pid current_ = kNoPid;
  hw::Fiber kernel_fiber_;
  uint32_t live_ = 0;
  std::deque<Pid> runqueue_;

  std::vector<bool> frame_used_;
  uint32_t next_frame_hint_ = 0;

  // File descriptors are system-wide in this model: cooperating test
  // processes share pipe/socket objects the way fork-inherited
  // descriptors would be shared in real UNIX (we do not model fork).
  std::unordered_map<int, OpenFile> fds_;
  int next_fd_ = 3;

  hw::Nic* nic_ = nullptr;
  NetConfig net_config_;
  std::vector<std::shared_ptr<Socket>> sockets_;
};

}  // namespace xok::ultrix

#endif  // XOK_SRC_ULTRIX_ULTRIX_H_
