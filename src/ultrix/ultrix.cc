#include "src/ultrix/ultrix.h"

#include <cstdio>
#include <cstdlib>

namespace xok::ultrix {

using hw::Instr;

Ultrix::Ultrix(hw::Machine& machine)
    : machine_(machine),
      priv_(machine.InstallKernel(this)),
      frame_used_(machine.mem().page_count(), false) {}

Ultrix::~Ultrix() = default;

void Ultrix::AttachNic(hw::Nic* nic, NetConfig config) {
  nic_ = nic;
  net_config_ = std::move(config);
}

Ultrix::Proc& Ultrix::Current() {
  Proc* proc = Find(current_);
  if (proc == nullptr) {
    std::fprintf(stderr, "ultrix: syscall outside any process\n");
    std::abort();
  }
  return *proc;
}

Ultrix::Proc* Ultrix::Find(Pid pid) {
  if (pid == kNoPid || pid > procs_.size()) {
    return nullptr;
  }
  return procs_[pid - 1].get();
}

Result<Pid> Ultrix::CreateProcess(std::function<void()> main) {
  if (!main) {
    return Status::kErrInvalidArgs;
  }
  const Pid pid = static_cast<Pid>(procs_.size() + 1);
  auto proc = std::make_unique<Proc>();
  proc->pid = pid;
  proc->asid = static_cast<hw::Asid>(pid);
  proc->fiber = std::make_unique<hw::Fiber>([this, main = std::move(main)]() {
    main();
    SysExit();
  });
  procs_.push_back(std::move(proc));
  runqueue_.push_back(pid);
  ++live_;
  return pid;
}

void Ultrix::SwitchToKernel() {
  Proc& proc = Current();
  proc.saved_trap_depth = priv_.SwapTrapDepth(0);
  hw::Fiber::Switch(*proc.fiber, kernel_fiber_);
}

void Ultrix::Run() {
  while (live_ > 0) {
    Pid next = kNoPid;
    while (!runqueue_.empty()) {
      const Pid candidate = runqueue_.front();
      runqueue_.pop_front();
      Proc* proc = Find(candidate);
      if (proc != nullptr && proc->state == ProcState::kRunnable) {
        next = candidate;
        break;
      }
    }
    if (next == kNoPid) {
      priv_.ClearSliceDeadline();
      machine_.WaitForInterrupt();
      // Interrupt handlers may have woken someone; loop around.
      continue;
    }
    Proc& proc = *Find(next);
    priv_.SetAsid(proc.asid);
    priv_.SetSliceDeadline(machine_.clock().now() + kQuantumCycles);
    current_ = next;
    priv_.SwapTrapDepth(proc.saved_trap_depth);
    hw::Fiber::Switch(kernel_fiber_, *proc.fiber);
    priv_.SwapTrapDepth(0);
    current_ = kNoPid;
  }
  priv_.ClearSliceDeadline();
}

// --- Basic syscalls ---

void Ultrix::SysNull() {
  ChargeSyscallEntry();
  ChargeSyscallExit();
}

Pid Ultrix::SysGetPid() {
  ChargeSyscallEntry();
  const Pid pid = current_;
  ChargeSyscallExit();
  return pid;
}

uint64_t Ultrix::SysGetTime() {
  ChargeSyscallEntry();
  const uint64_t now = machine_.clock().now();
  ChargeSyscallExit();
  return now;
}

void Ultrix::SysYield() {
  ChargeSyscallEntry();
  machine_.Charge(kContextSwitch);
  runqueue_.push_back(current_);
  SwitchToKernel();
  ChargeSyscallExit();
}

void Ultrix::SysExit() {
  ChargeSyscallEntry();
  Proc& proc = Current();
  proc.state = ProcState::kExited;
  --live_;
  priv_.TlbFlushAsid(proc.asid);
  for (const auto& [vpn, pte] : proc.page_table) {
    if (pte.present) {
      frame_used_[pte.frame] = false;
    }
  }
  SwitchToKernel();
  std::fprintf(stderr, "ultrix: exited process resumed\n");
  std::abort();
}

void Ultrix::SysSleep(uint64_t cycles) {
  ChargeSyscallEntry();
  priv_.ScheduleEvent(cycles, hw::InterruptSource::kAlarm, current_);
  Sleep();
  ChargeSyscallExit();
}

void Ultrix::Sleep() {
  machine_.Charge(kSleepPath + kContextSwitch);
  Current().state = ProcState::kSleeping;
  priv_.ClearSliceDeadline();
  SwitchToKernel();
}

void Ultrix::Wakeup(Pid pid) {
  machine_.Charge(kWakeupPath);
  Proc* proc = Find(pid);
  if (proc != nullptr && proc->state == ProcState::kSleeping) {
    proc->state = ProcState::kRunnable;
    runqueue_.push_back(pid);
  }
}

// --- Memory ---

hw::PageId Ultrix::AllocFrame() {
  for (uint32_t i = 0; i < frame_used_.size(); ++i) {
    const uint32_t frame = (next_frame_hint_ + i) % frame_used_.size();
    if (!frame_used_[frame]) {
      frame_used_[frame] = true;
      next_frame_hint_ = frame + 1;
      return frame;
    }
  }
  std::fprintf(stderr, "ultrix: out of physical memory\n");
  std::abort();
}

void Ultrix::SysSignal(SignalHandler handler) {
  ChargeSyscallEntry();
  Current().signal_handler = std::move(handler);
  ChargeSyscallExit();
}

Status Ultrix::SysMprotect(hw::Vaddr va, uint32_t pages, Prot prot) {
  ChargeSyscallEntry();
  Proc& proc = Current();
  for (uint32_t i = 0; i < pages; ++i) {
    const hw::Vpn vpn = hw::VpnOf(va + i * hw::kPageBytes);
    machine_.Charge(kPtePage);
    auto it = proc.page_table.find(vpn);
    if (it == proc.page_table.end() || !it->second.present) {
      ChargeSyscallExit();
      return Status::kErrNotFound;
    }
    it->second.prot = prot;
    priv_.TlbInvalidate(vpn, proc.asid);
  }
  ChargeSyscallExit();
  return Status::kOk;
}

Result<bool> Ultrix::SysMincoreDirty(hw::Vaddr va) {
  ChargeSyscallEntry();
  machine_.Charge(kPtWalk);
  Proc& proc = Current();
  auto it = proc.page_table.find(hw::VpnOf(va));
  if (it == proc.page_table.end() || !it->second.present) {
    ChargeSyscallExit();
    return Status::kErrNotFound;
  }
  const bool dirty = it->second.dirty;
  ChargeSyscallExit();
  return dirty;
}

bool Ultrix::DeliverSignal(hw::Vaddr va, bool is_write) {
  Proc& proc = Current();
  if (!proc.signal_handler) {
    return false;
  }
  machine_.Charge(kSignalDeliver);
  const bool verdict = proc.signal_handler(va, is_write);
  machine_.Charge(kSigreturn);
  return verdict;
}

hw::TrapOutcome Ultrix::HandleVmFault(const hw::TrapFrame& frame) {
  machine_.Charge(kVmFaultPath);
  Proc& proc = Current();
  const hw::Vpn vpn = hw::VpnOf(frame.bad_vaddr);
  const bool is_store = frame.store || frame.type == hw::ExceptionType::kTlbModify;
  KernelPte& pte = proc.page_table[vpn];

  if (!pte.present) {
    // Demand-zero fill (the kernel policy every process gets).
    pte.present = true;
    pte.prot = kProtWrite;
    pte.dirty = false;
    pte.frame = AllocFrame();
    machine_.Charge(hw::kMemWordCopy * (hw::kPageBytes / 4));  // Zero fill.
    auto bytes = machine_.mem().PageSpan(pte.frame);
    std::fill(bytes.begin(), bytes.end(), uint8_t{0});
  }

  const bool denied = pte.prot == kProtNone || (is_store && pte.prot != kProtWrite);
  if (denied) {
    if (DeliverSignal(frame.bad_vaddr, is_store)) {
      return hw::TrapOutcome::kRetry;  // Handler repaired (e.g. mprotect).
    }
    return hw::TrapOutcome::kSkip;
  }
  if (is_store) {
    pte.dirty = true;
  }
  hw::TlbEntry entry;
  entry.vpn = vpn;
  entry.asid = proc.asid;
  entry.pfn = pte.frame;
  entry.valid = true;
  entry.writable = pte.prot == kProtWrite && pte.dirty;
  priv_.TlbWriteRandom(entry);
  return hw::TrapOutcome::kRetry;
}

hw::TrapOutcome Ultrix::OnException(hw::TrapFrame& frame) {
  machine_.Charge(kTrapEntry);
  hw::TrapOutcome outcome = hw::TrapOutcome::kSkip;
  switch (frame.type) {
    case hw::ExceptionType::kTlbMissLoad:
    case hw::ExceptionType::kTlbMissStore:
    case hw::ExceptionType::kTlbModify:
      outcome = HandleVmFault(frame);
      break;
    case hw::ExceptionType::kAddressError:
    case hw::ExceptionType::kOverflow:
    case hw::ExceptionType::kCoprocUnusable:
    case hw::ExceptionType::kBusError:
      // Applications see these only as signals.
      outcome = DeliverSignal(frame.bad_vaddr, frame.store) ? hw::TrapOutcome::kRetry
                                                            : hw::TrapOutcome::kSkip;
      break;
  }
  machine_.Charge(kTrapExit);
  return outcome;
}

void Ultrix::OnInterrupt(hw::InterruptSource source, uint64_t payload) {
  (void)payload;
  switch (source) {
    case hw::InterruptSource::kTimer: {
      if (current_ == kNoPid) {
        return;
      }
      machine_.Charge(kContextSwitch);
      runqueue_.push_back(current_);
      SwitchToKernel();
      break;
    }
    case hw::InterruptSource::kNicRx:
      HandleRx();
      break;
    case hw::InterruptSource::kAlarm:
      Wakeup(static_cast<Pid>(payload));
      break;
    case hw::InterruptSource::kDiskDone:
    case hw::InterruptSource::kFault:
    case hw::InterruptSource::kPowerFail:
    case hw::InterruptSource::kIpi:
      break;
  }
}

// --- Pipes ---

Result<std::pair<int, int>> Ultrix::SysPipe() {
  ChargeSyscallEntry();
  auto buf = std::make_shared<PipeBuf>();
  buf->readers = 1;
  buf->writers = 1;
  const int rfd = next_fd_++;
  const int wfd = next_fd_++;
  fds_[rfd] = OpenFile{OpenFile::Kind::kPipeRead, buf, nullptr};
  fds_[wfd] = OpenFile{OpenFile::Kind::kPipeWrite, buf, nullptr};
  ChargeSyscallExit();
  return std::make_pair(rfd, wfd);
}

Status Ultrix::SysWrite(int fd, std::span<const uint8_t> data) {
  ChargeSyscallEntry();
  machine_.Charge(kFdLayer);
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second.kind != OpenFile::Kind::kPipeWrite) {
    ChargeSyscallExit();
    return Status::kErrInvalidArgs;
  }
  std::shared_ptr<PipeBuf> pipe = it->second.pipe;
  size_t written = 0;
  while (written < data.size()) {
    if (pipe->data.size() >= PipeBuf::kCapacity) {
      pipe->writer_waiting = current_;
      Sleep();
      continue;
    }
    const size_t chunk =
        std::min(data.size() - written, PipeBuf::kCapacity - pipe->data.size());
    // Copy in to the kernel buffer (first of the pipe's two copies).
    machine_.Charge(hw::kMemWordCopy * ((chunk + 3) / 4));
    for (size_t i = 0; i < chunk; ++i) {
      pipe->data.push_back(data[written + i]);
    }
    written += chunk;
    if (pipe->reader_waiting != kNoPid) {
      const Pid reader = pipe->reader_waiting;
      pipe->reader_waiting = kNoPid;
      Wakeup(reader);
    }
  }
  ChargeSyscallExit();
  return Status::kOk;
}

Result<uint32_t> Ultrix::SysRead(int fd, std::span<uint8_t> buf) {
  ChargeSyscallEntry();
  machine_.Charge(kFdLayer);
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second.kind != OpenFile::Kind::kPipeRead) {
    ChargeSyscallExit();
    return Status::kErrInvalidArgs;
  }
  std::shared_ptr<PipeBuf> pipe = it->second.pipe;
  while (pipe->data.empty()) {
    if (pipe->writers == 0) {
      ChargeSyscallExit();
      return 0u;  // EOF.
    }
    pipe->reader_waiting = current_;
    Sleep();
  }
  const size_t chunk = std::min(buf.size(), pipe->data.size());
  machine_.Charge(hw::kMemWordCopy * ((chunk + 3) / 4));  // Copy out.
  for (size_t i = 0; i < chunk; ++i) {
    buf[i] = pipe->data.front();
    pipe->data.pop_front();
  }
  if (pipe->writer_waiting != kNoPid) {
    const Pid writer = pipe->writer_waiting;
    pipe->writer_waiting = kNoPid;
    Wakeup(writer);
  }
  ChargeSyscallExit();
  return static_cast<uint32_t>(chunk);
}

Status Ultrix::SysClose(int fd) {
  ChargeSyscallEntry();
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    ChargeSyscallExit();
    return Status::kErrInvalidArgs;
  }
  if (it->second.kind == OpenFile::Kind::kPipeWrite && it->second.pipe != nullptr) {
    if (--it->second.pipe->writers == 0 && it->second.pipe->reader_waiting != kNoPid) {
      const Pid reader = it->second.pipe->reader_waiting;
      it->second.pipe->reader_waiting = kNoPid;
      Wakeup(reader);  // Readers see EOF.
    }
  }
  if (it->second.kind == OpenFile::Kind::kPipeRead && it->second.pipe != nullptr) {
    --it->second.pipe->readers;
  }
  fds_.erase(it);
  ChargeSyscallExit();
  return Status::kOk;
}

// --- UDP sockets ---

Result<int> Ultrix::SysSocketUdp() {
  ChargeSyscallEntry();
  auto socket = std::make_shared<Socket>();
  const int fd = next_fd_++;
  fds_[fd] = OpenFile{OpenFile::Kind::kSocket, nullptr, socket};
  ChargeSyscallExit();
  return fd;
}

Status Ultrix::SysBindPort(int fd, uint16_t port) {
  ChargeSyscallEntry();
  machine_.Charge(kSocketLayer);
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second.kind != OpenFile::Kind::kSocket) {
    ChargeSyscallExit();
    return Status::kErrInvalidArgs;
  }
  for (const auto& socket : sockets_) {
    if (socket->port == port) {
      ChargeSyscallExit();
      return Status::kErrAlreadyExists;
    }
  }
  it->second.socket->port = port;
  sockets_.push_back(it->second.socket);
  ChargeSyscallExit();
  return Status::kOk;
}

Status Ultrix::SysSendTo(int fd, uint32_t dst_ip, uint16_t dst_port,
                         std::span<const uint8_t> payload) {
  ChargeSyscallEntry();
  machine_.Charge(kSocketLayer + kIpPath);
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second.kind != OpenFile::Kind::kSocket) {
    ChargeSyscallExit();
    return Status::kErrInvalidArgs;
  }
  if (nic_ == nullptr) {
    ChargeSyscallExit();
    return Status::kErrUnsupported;
  }
  // Copy from user space into an mbuf, checksum, transmit.
  machine_.Charge(hw::kMemWordCopy * ((payload.size() + 3) / 4));
  machine_.Charge(Instr((payload.size() + net::kUdpHeaderBytes + 1) / 2));  // UDP cksum.
  machine_.Charge(Instr(net::kIpHeaderBytes / 2));                          // IP cksum.
  const uint64_t dst_mac =
      net_config_.resolve ? net_config_.resolve(dst_ip) : hw::kBroadcastMac;
  std::vector<uint8_t> frame = net::BuildUdpFrame(
      dst_mac, net_config_.mac, net_config_.ip, dst_ip, it->second.socket->port, dst_port,
      payload);
  const bool ok = nic_->Transmit(frame);
  ChargeSyscallExit();
  return ok ? Status::kOk : Status::kErrInvalidArgs;
}

Result<Datagram> Ultrix::SysRecvFrom(int fd) {
  ChargeSyscallEntry();
  machine_.Charge(kSocketLayer);
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second.kind != OpenFile::Kind::kSocket) {
    ChargeSyscallExit();
    return Status::kErrInvalidArgs;
  }
  std::shared_ptr<Socket> socket = it->second.socket;
  while (socket->queue.empty()) {
    socket->waiting = current_;
    Sleep();
  }
  Datagram dgram = std::move(socket->queue.front());
  socket->queue.pop_front();
  // Copy out to user space.
  machine_.Charge(hw::kMemWordCopy * ((dgram.payload.size() + 3) / 4));
  ChargeSyscallExit();
  return dgram;
}

void Ultrix::HandleRx() {
  if (nic_ == nullptr) {
    return;
  }
  while (true) {
    auto frame = nic_->ReceiveNext();
    if (!frame.has_value()) {
      return;
    }
    // In-kernel protocol processing: validate, checksum, demultiplex by
    // well-known structure (the kernel understands exactly one stack).
    machine_.Charge(kIpPath);
    machine_.Charge(Instr((frame->size() + 1) / 2));  // Checksum pass.
    net::UdpView view;
    if (!net::ParseUdpFrame(*frame, &view)) {
      continue;
    }
    for (const auto& socket : sockets_) {
      if (socket->port != view.dst_port) {
        continue;
      }
      // Copy into the socket buffer (the kernel-buffer copy applications
      // cannot avoid under the fixed abstraction).
      machine_.Charge(hw::kMemWordCopy * ((view.payload.size() + 3) / 4));
      Datagram dgram;
      dgram.src_ip = view.src_ip;
      dgram.src_port = view.src_port;
      dgram.payload.assign(view.payload.begin(), view.payload.end());
      socket->queue.push_back(std::move(dgram));
      if (socket->waiting != kNoPid) {
        const Pid waiter = socket->waiting;
        socket->waiting = kNoPid;
        Wakeup(waiter);
      }
      break;
    }
  }
}

}  // namespace xok::ultrix
