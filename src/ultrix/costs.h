// Path-length constants for the Ultrix-like monolithic baseline, in
// simulated cycles. These model the structure the paper attributes
// Ultrix's costs to: every kernel entry saves/restores the full register
// file, faults run the kernel's general-purpose vm_fault path, exceptions
// reach applications only through full signal delivery (sigframe copyout,
// trampoline, sigreturn), and every blocking operation pays the in-kernel
// sleep/wakeup and context-switch machinery. We do not have Ultrix source;
// the aggregates are calibrated so the baseline lands in the bands the
// paper reports (null syscall ~a dozen microseconds; exception-to-handler
// hundreds of microseconds; pipe roundtrip hundreds of microseconds) —
// see DESIGN.md "Known deviations".
#ifndef XOK_SRC_ULTRIX_COSTS_H_
#define XOK_SRC_ULTRIX_COSTS_H_

#include "src/hw/cost.h"

namespace xok::ultrix {

using hw::Instr;

// Trap entry: save 32 GPRs + hi/lo/status/epc, switch to the kernel stack,
// canonicalise the frame.
inline constexpr uint64_t kTrapEntry = Instr(60);
// Trap exit: restore everything, check pending signals, rfe.
inline constexpr uint64_t kTrapExit = Instr(55);
// System call layer on top of the trap: dispatch table, argument copyin
// and validation, errno plumbing.
inline constexpr uint64_t kSyscallLayer = Instr(55);

// The general-purpose vm_fault path: map lookup through vm_map entries,
// object chain, page lookup.
inline constexpr uint64_t kVmFaultPath = Instr(220);

// Signal delivery to an application handler: psignal/issignal, sigframe
// construction and copyout to the user stack, trampoline entry; then
// sigreturn's syscall + sigcontext validation + full restore. The paper's
// Ultrix rows for exception benchmarks sit near 300 us on the 5000/125.
inline constexpr uint64_t kSignalDeliver = Instr(2600);
inline constexpr uint64_t kSigreturn = Instr(900);

// In-kernel context switch: runqueue manipulation, u-area switch, register
// file save/restore, address-space switch with TLB context change.
inline constexpr uint64_t kContextSwitch = Instr(320);

// sleep()/wakeup() machinery around blocking I/O.
inline constexpr uint64_t kSleepPath = Instr(120);
inline constexpr uint64_t kWakeupPath = Instr(100);

// Per-page PTE maintenance inside mprotect and friends.
inline constexpr uint64_t kPtePage = Instr(50);

// Kernel page-table walk for a single query (e.g. dirty inspection).
inline constexpr uint64_t kPtWalk = Instr(70);

// File-descriptor layer: fd lookup, locking, uio setup per read/write.
inline constexpr uint64_t kFdLayer = Instr(90);

// In-kernel network processing per packet (ip_input/udp_input or output
// equivalents), excluding checksums and copies which are charged by size.
inline constexpr uint64_t kIpPath = Instr(300);

// Socket layer wrapping (sockaddr copyin/out, sbappend bookkeeping).
inline constexpr uint64_t kSocketLayer = Instr(120);

// Scheduling quantum (same as Aegis for comparability).
inline constexpr uint64_t kQuantumCycles = 25'000;

}  // namespace xok::ultrix

#endif  // XOK_SRC_ULTRIX_COSTS_H_
