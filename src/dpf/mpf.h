// MPF-style baseline (paper ref [56]): a byte-coded, interpreted packet
// filter in the BPF/CSPF tradition, as used for the paper's Table 7
// comparison. Each bound filter is translated to a generic bytecode
// program; classification interprets every live filter's program in turn.
//
// Cost model: every interpreted bytecode operation pays decode + dispatch +
// execute, modelled as Instr(3) per operation — versus DPF's Instr(2) per
// *compiled* instruction over a single merged pass. The wall-clock gap
// measured by google-benchmark comes from the same structure: real operand
// decoding and one full program run per filter.
#ifndef XOK_SRC_DPF_MPF_H_
#define XOK_SRC_DPF_MPF_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/dpf/filter.h"
#include "src/hw/cost.h"

namespace xok::dpf {

class MpfEngine final : public ClassifierEngine {
 public:
  MpfEngine() = default;

  Result<FilterId> Insert(const FilterSpec& filter) override;
  Status Remove(FilterId id) override;
  std::optional<FilterId> Classify(std::span<const uint8_t> msg) override;
  uint64_t sim_cycles() const override { return sim_cycles_; }
  const char* name() const override { return "MPF"; }

 private:
  // Generic byte-coded instruction set (stack-free, accumulator style, but
  // with operands packed in the stream so the interpreter must decode).
  enum class ByteOp : uint8_t {
    kLoadByte,   // acc = msg[operand]
    kLoadHalf,   // acc = be16(msg + operand)
    kLoadWord,   // acc = be32(msg + operand)
    kAndLit,     // acc &= operand
    kJneFail,    // if (acc != operand) fail
    kRetMatch,   // matched
  };

  struct Bound {
    std::vector<uint8_t> bytecode;  // Packed op + 4-byte little-endian operand.
    FilterSpec spec;
    uint32_t atom_count = 0;
    bool live = false;
  };

  // Interprets `bytecode`; true on match. Counts ops into *ops.
  bool Interpret(const std::vector<uint8_t>& bytecode, std::span<const uint8_t> msg,
                 uint64_t* ops) const;

  std::vector<Bound> filters_;
  uint64_t sim_cycles_ = 0;
};

}  // namespace xok::dpf

#endif  // XOK_SRC_DPF_MPF_H_
