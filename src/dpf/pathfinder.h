// PATHFINDER-style baseline (paper ref [6]): a pattern-based classifier.
// Like DPF it merges filters into a prefix structure ("cells" of
// <offset, length, mask, value> lines), so it avoids MPF's one-run-per-
// filter cost — but cells are *interpreted*: each visited cell pays generic
// pattern-dispatch overhead and its alternative lines are scanned linearly,
// rather than being specialised into compiled code with hash dispatch.
// This is why the paper places PATHFINDER between MPF and DPF (Table 7).
//
// Cost model: Instr(20) per visited cell plus Instr(6) per line scanned.
#ifndef XOK_SRC_DPF_PATHFINDER_H_
#define XOK_SRC_DPF_PATHFINDER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/dpf/filter.h"
#include "src/hw/cost.h"

namespace xok::dpf {

class PathfinderEngine final : public ClassifierEngine {
 public:
  PathfinderEngine() = default;

  Result<FilterId> Insert(const FilterSpec& filter) override;
  Status Remove(FilterId id) override;
  std::optional<FilterId> Classify(std::span<const uint8_t> msg) override;
  uint64_t sim_cycles() const override { return sim_cycles_; }
  const char* name() const override { return "PATHFINDER"; }

 private:
  struct Line {
    uint32_t value = 0;
    int32_t next_cell = -1;  // -1: terminal.
    int32_t accept = -1;     // Filter accepting when this line terminates a path.
  };

  struct Cell {
    uint32_t offset = 0;
    uint8_t width = 1;
    uint32_t mask = 0;
    std::vector<Line> lines;  // Scanned linearly (interpreted structure).
  };

  struct Bound {
    FilterSpec spec;
    bool live = false;
  };

  void Rebuild();
  // Recursive descent over (cell, packet); records the deepest accept.
  void Walk(int32_t cell_index, std::span<const uint8_t> msg, uint32_t depth, int32_t* best,
            uint32_t* best_depth, uint64_t* cells, uint64_t* lines) const;

  std::vector<Cell> cells_;
  std::vector<int32_t> roots_;  // One pattern trie per atom-key signature.
  std::vector<Bound> filters_;
  uint64_t sim_cycles_ = 0;
};

}  // namespace xok::dpf

#endif  // XOK_SRC_DPF_PATHFINDER_H_
