#include "src/dpf/mpf.h"

namespace xok::dpf {

using hw::Instr;

namespace {

void PackOp(std::vector<uint8_t>* out, uint8_t op, uint32_t operand) {
  out->push_back(op);
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(operand >> (8 * i)));
  }
}

uint32_t UnpackOperand(const std::vector<uint8_t>& code, size_t pc) {
  uint32_t operand = 0;
  for (int i = 3; i >= 0; --i) {
    operand = (operand << 8) | code[pc + 1 + i];
  }
  return operand;
}

}  // namespace

Result<FilterId> MpfEngine::Insert(const FilterSpec& filter) {
  if (!filter.Valid()) {
    return Status::kErrInvalidArgs;
  }
  for (const Bound& bound : filters_) {
    if (bound.live && bound.spec.atoms == filter.atoms) {
      return Status::kErrAlreadyExists;
    }
  }
  Bound bound;
  bound.spec = filter;
  bound.atom_count = static_cast<uint32_t>(filter.atoms.size());
  for (const Atom& atom : filter.atoms) {
    const uint8_t load = atom.width == 1   ? static_cast<uint8_t>(ByteOp::kLoadByte)
                         : atom.width == 2 ? static_cast<uint8_t>(ByteOp::kLoadHalf)
                                           : static_cast<uint8_t>(ByteOp::kLoadWord);
    PackOp(&bound.bytecode, load, atom.offset);
    PackOp(&bound.bytecode, static_cast<uint8_t>(ByteOp::kAndLit), atom.mask);
    PackOp(&bound.bytecode, static_cast<uint8_t>(ByteOp::kJneFail), atom.value);
  }
  PackOp(&bound.bytecode, static_cast<uint8_t>(ByteOp::kRetMatch), 0);
  bound.live = true;
  filters_.push_back(std::move(bound));
  return static_cast<FilterId>(filters_.size() - 1);
}

Status MpfEngine::Remove(FilterId id) {
  if (id >= filters_.size() || !filters_[id].live) {
    return Status::kErrNotFound;
  }
  filters_[id].live = false;
  return Status::kOk;
}

bool MpfEngine::Interpret(const std::vector<uint8_t>& code, std::span<const uint8_t> msg,
                          uint64_t* ops) const {
  uint32_t acc = 0;
  size_t pc = 0;
  while (pc < code.size()) {
    ++*ops;
    const ByteOp op = static_cast<ByteOp>(code[pc]);
    const uint32_t operand = UnpackOperand(code, pc);
    pc += 5;
    switch (op) {
      case ByteOp::kLoadByte:
      case ByteOp::kLoadHalf:
      case ByteOp::kLoadWord: {
        const size_t width = op == ByteOp::kLoadByte ? 1 : op == ByteOp::kLoadHalf ? 2 : 4;
        if (static_cast<size_t>(operand) + width > msg.size()) {
          return false;
        }
        acc = 0;
        for (size_t i = 0; i < width; ++i) {
          acc = (acc << 8) | msg[operand + i];
        }
        break;
      }
      case ByteOp::kAndLit:
        acc &= operand;
        break;
      case ByteOp::kJneFail:
        if (acc != operand) {
          return false;
        }
        break;
      case ByteOp::kRetMatch:
        return true;
    }
  }
  return false;
}

std::optional<FilterId> MpfEngine::Classify(std::span<const uint8_t> msg) {
  // Every live filter's program is interpreted in sequence; most-specific
  // match wins, ties to the lowest id.
  int32_t best = -1;
  uint32_t best_depth = 0;
  uint64_t ops = 0;
  for (FilterId id = 0; id < filters_.size(); ++id) {
    const Bound& bound = filters_[id];
    if (!bound.live) {
      continue;
    }
    ops += 2;  // Per-filter interpreter setup.
    if (Interpret(bound.bytecode, msg, &ops) && bound.atom_count > best_depth) {
      best = static_cast<int32_t>(id);
      best_depth = bound.atom_count;
    }
  }
  sim_cycles_ += Instr(3) * ops + Instr(6);
  if (best < 0) {
    return std::nullopt;
  }
  return static_cast<FilterId>(best);
}

}  // namespace xok::dpf
