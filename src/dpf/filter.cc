#include "src/dpf/filter.h"

namespace xok::dpf {

bool Matches(const FilterSpec& filter, std::span<const uint8_t> msg) {
  for (const Atom& atom : filter.atoms) {
    if (static_cast<size_t>(atom.offset) + atom.width > msg.size()) {
      return false;
    }
    uint32_t field = 0;
    for (uint8_t i = 0; i < atom.width; ++i) {
      field = (field << 8) | msg[atom.offset + i];
    }
    if ((field & atom.mask) != atom.value) {
      return false;
    }
  }
  return true;
}

}  // namespace xok::dpf
