// The declarative packet-filter language (paper §3.2, §5.6).
//
// A filter is a conjunction of atoms, each testing a masked, fixed-width,
// big-endian field of the message against a constant. The language is
// deliberately high-level and declarative so that the kernel can *merge*
// filters (paper: "our packet-filter language is a high-level declarative
// language. As a result packet filters can be merged [56] in situations
// where merging a lower-level, imperative language would be infeasible").
//
// Match policy (shared by all three engines so they are comparable): the
// most specific filter (most atoms) whose atoms all hold wins; ties break
// toward the lowest filter id (earliest bound).
#ifndef XOK_SRC_DPF_FILTER_H_
#define XOK_SRC_DPF_FILTER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/base/result.h"

namespace xok::dpf {

using FilterId = uint32_t;

struct Atom {
  uint32_t offset = 0;  // Byte offset into the message.
  uint8_t width = 1;    // 1, 2, or 4 bytes, read big-endian.
  uint32_t mask = 0xffffffffu;
  uint32_t value = 0;

  friend bool operator==(const Atom&, const Atom&) = default;
};

struct FilterSpec {
  std::vector<Atom> atoms;  // Sorted by offset at construction time.

  bool Valid() const {
    if (atoms.empty()) {
      return false;
    }
    for (const Atom& atom : atoms) {
      if (atom.width != 1 && atom.width != 2 && atom.width != 4) {
        return false;
      }
      if ((atom.value & ~atom.mask) != 0) {
        return false;  // Value bits outside the mask can never match.
      }
    }
    return true;
  }
};

// Reference evaluation of one filter against a message; the ground truth
// all engines are tested against.
bool Matches(const FilterSpec& filter, std::span<const uint8_t> msg);

// The interface shared by DPF and the two baseline engines, so benchmarks
// and equivalence tests drive them identically.
class ClassifierEngine {
 public:
  virtual ~ClassifierEngine() = default;

  // Binds a filter; returns its id. Duplicate atom-for-atom filters are
  // rejected (the paper's ownership concern: a second process may not bind
  // a filter that steals another's packets).
  virtual Result<FilterId> Insert(const FilterSpec& filter) = 0;

  virtual Status Remove(FilterId id) = 0;

  // Classifies a message; nullopt if no filter matches.
  virtual std::optional<FilterId> Classify(std::span<const uint8_t> msg) = 0;

  // Simulated cycles consumed by all Classify calls so far (the engines
  // model their per-operation interpretation overheads; see each engine's
  // header). Callers running inside a simulated machine charge this.
  virtual uint64_t sim_cycles() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace xok::dpf

#endif  // XOK_SRC_DPF_FILTER_H_
