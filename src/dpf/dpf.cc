#include "src/dpf/dpf.h"

#include <algorithm>

namespace xok::dpf {

using hw::Instr;

namespace {

// Reads a big-endian field; false if out of bounds.
bool ReadField(std::span<const uint8_t> msg, uint32_t offset, uint8_t width, uint32_t* out) {
  if (static_cast<size_t>(offset) + width > msg.size()) {
    return false;
  }
  uint32_t value = 0;
  for (uint8_t i = 0; i < width; ++i) {
    value = (value << 8) | msg[offset + i];
  }
  *out = value;
  return true;
}

}  // namespace

vcode::Program DpfEngine::CompileOne(const FilterSpec& filter, FilterId id) {
  vcode::Emitter emitter;
  std::vector<vcode::Emitter::Label> reject_branches;
  for (const Atom& atom : filter.atoms) {
    const vcode::Op load = atom.width == 1   ? vcode::Op::kLoadMsgByte
                           : atom.width == 2 ? vcode::Op::kLoadMsgHalf
                                             : vcode::Op::kLoadMsgWord;
    emitter.Emit(load, /*a=*/0, /*b=*/1, atom.offset);  // r1 is always 0.
    emitter.Emit(vcode::Op::kAndImm, 0, 0, atom.mask);
    reject_branches.push_back(emitter.EmitBranch(vcode::Op::kBranchNeImm, 0, atom.value));
  }
  emitter.Emit(vcode::Op::kAccept, 0, 0, id);
  for (auto label : reject_branches) {
    emitter.Bind(label);
  }
  emitter.Emit(vcode::Op::kReject);
  return emitter.Finish();
}

Result<FilterId> DpfEngine::Insert(const FilterSpec& filter) {
  if (!filter.Valid()) {
    return Status::kErrInvalidArgs;
  }
  // Refuse exact duplicates: a later process may not bind a filter that
  // would steal packets already claimed by an earlier one.
  for (const Bound& bound : filters_) {
    if (bound.live && bound.spec.atoms == filter.atoms) {
      return Status::kErrAlreadyExists;
    }
  }
  const FilterId id = static_cast<FilterId>(filters_.size());
  Bound bound;
  bound.spec = filter;
  bound.program = CompileOne(filter, id);
  bound.live = true;
  filters_.push_back(std::move(bound));
  filters_.back().in_trie = TryTrieInsert(filter, id);
  return id;
}

Status DpfEngine::Remove(FilterId id) {
  if (id >= filters_.size() || !filters_[id].live) {
    return Status::kErrNotFound;
  }
  filters_[id].live = false;
  RebuildTrie();
  return Status::kOk;
}

bool DpfEngine::TryTrieInsert(const FilterSpec& filter, FilterId id) {
  if (!merging_enabled_) {
    return false;  // Ablation mode: everything goes to the overflow chain.
  }
  // First pass: check structural compatibility without mutating.
  uint32_t state = 0;
  for (const Atom& atom : filter.atoms) {
    const AtomKey key{atom.offset, atom.width, atom.mask};
    const State& s = states_[state];
    if (s.has_key && !(s.key == key)) {
      return false;  // Divergent structure; goes to the overflow chain.
    }
    if (!s.has_key) {
      break;  // Fresh tail from here on: always insertable.
    }
    auto it = s.next.find(atom.value);
    if (it == s.next.end()) {
      break;
    }
    state = it->second;
  }
  // Second pass: insert.
  state = 0;
  for (const Atom& atom : filter.atoms) {
    State& s = states_[state];
    const AtomKey key{atom.offset, atom.width, atom.mask};
    if (!s.has_key) {
      s.has_key = true;
      s.key = key;
    }
    auto it = s.next.find(atom.value);
    if (it != s.next.end()) {
      state = it->second;
    } else {
      State fresh;
      fresh.depth = s.depth + 1;
      states_.push_back(fresh);
      const uint32_t fresh_index = static_cast<uint32_t>(states_.size() - 1);
      states_[state].next.emplace(atom.value, fresh_index);
      state = fresh_index;
    }
  }
  if (states_[state].accept >= 0) {
    return false;  // Same atoms already accept elsewhere (shouldn't happen).
  }
  states_[state].accept = static_cast<int32_t>(id);
  return true;
}

void DpfEngine::RebuildTrie() {
  states_.assign(1, State{});
  for (FilterId id = 0; id < filters_.size(); ++id) {
    Bound& bound = filters_[id];
    if (bound.live) {
      bound.in_trie = TryTrieInsert(bound.spec, id);
    }
  }
}

size_t DpfEngine::overflow_filters() const {
  size_t n = 0;
  for (const Bound& bound : filters_) {
    n += (bound.live && !bound.in_trie) ? 1 : 0;
  }
  return n;
}

std::optional<FilterId> DpfEngine::Classify(std::span<const uint8_t> msg) {
  sim_cycles_ += Instr(4);  // Prologue of the generated classifier.

  // Walk the merged trie: one pass over the header, hash-dispatching at
  // each divergence point. Track the deepest accept passed.
  int32_t best = -1;
  uint32_t best_depth = 0;
  uint32_t state = 0;
  for (;;) {
    const State& s = states_[state];
    if (s.accept >= 0 && filters_[s.accept].live) {
      best = s.accept;
      best_depth = s.depth;
    }
    if (!s.has_key) {
      break;
    }
    uint32_t field = 0;
    sim_cycles_ += Instr(3);  // Load + mask + hash dispatch, compiled.
    if (!ReadField(msg, s.key.offset, s.key.width, &field)) {
      break;
    }
    auto it = s.next.find(field & s.key.mask);
    if (it == s.next.end()) {
      break;
    }
    state = it->second;
  }

  // Overflow chain: individually compiled straight-line programs.
  for (FilterId id = 0; id < filters_.size(); ++id) {
    const Bound& bound = filters_[id];
    if (!bound.live || bound.in_trie) {
      continue;
    }
    vcode::ExecEnv env{msg, {}, nullptr};
    const vcode::ExecResult run = vcode::Execute(bound.program, env);
    sim_cycles_ += Instr(2) * run.ops_executed;  // Compiled-code cost.
    if (run.value != vcode::kRejected) {
      const uint32_t depth = static_cast<uint32_t>(bound.spec.atoms.size());
      if (best < 0 || depth > best_depth ||
          (depth == best_depth && static_cast<int32_t>(id) < best)) {
        best = static_cast<int32_t>(id);
        best_depth = depth;
      }
    }
  }

  if (best < 0) {
    return std::nullopt;
  }
  return static_cast<FilterId>(best);
}

}  // namespace xok::dpf
