// DPF: the dynamic packet filter (paper §5.6, refs [20, 22]).
//
// Two ideas give DPF its order-of-magnitude win over interpreted engines:
//
//  1. *Dynamic code generation*: each bound filter is compiled (via the
//     vcode substrate) into straight-line code — fully decoded compare
//     instructions with pre-resolved offsets — instead of being interpreted
//     from a generic byte-coded representation on every packet.
//  2. *Filter merging*: filters testing the same (offset, width, mask) atom
//     sequence are merged into a prefix trie whose divergence points
//     dispatch through a hash table on the field value, so classifying
//     against N similar filters costs one pass over the header, not N.
//
// Filters whose atom structure does not align with the trie fall into an
// overflow chain of individually-compiled programs, evaluated after the
// trie; correctness never depends on mergeability.
//
// Cost model: each trie step costs Instr(6) (load + mask + hash dispatch in
// generated code) and each overflow-program instruction costs Instr(2),
// reflecting compiled-code execution. Compare mpf.h / pathfinder.h.
#ifndef XOK_SRC_DPF_DPF_H_
#define XOK_SRC_DPF_DPF_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/dpf/filter.h"
#include "src/hw/cost.h"
#include "src/vcode/vcode.h"

namespace xok::dpf {

class DpfEngine final : public ClassifierEngine {
 public:
  DpfEngine() = default;

  Result<FilterId> Insert(const FilterSpec& filter) override;
  Status Remove(FilterId id) override;
  std::optional<FilterId> Classify(std::span<const uint8_t> msg) override;
  uint64_t sim_cycles() const override { return sim_cycles_; }
  const char* name() const override { return "DPF"; }

  // Introspection for tests and the merge ablation.
  size_t trie_states() const { return states_.size(); }
  size_t overflow_filters() const;

  // Ablation control: with merging disabled every filter runs as its own
  // compiled straight-line program (no shared-prefix trie), isolating the
  // contribution of filter merging from that of code generation.
  void set_merging_enabled(bool enabled) {
    merging_enabled_ = enabled;
    RebuildTrie();
  }

  // Compiles a single filter to a straight-line vcode program (exposed so
  // tests can check the generated code and Aegis can reuse it).
  static vcode::Program CompileOne(const FilterSpec& filter, FilterId id);

 private:
  struct AtomKey {
    uint32_t offset = 0;
    uint8_t width = 1;
    uint32_t mask = 0;

    friend bool operator==(const AtomKey&, const AtomKey&) = default;
  };

  struct State {
    bool has_key = false;
    AtomKey key;
    std::unordered_map<uint32_t, uint32_t> next;  // Field value -> state index.
    int32_t accept = -1;                          // Filter ending at this state.
    uint32_t depth = 0;                           // Atoms consumed to get here.
  };

  struct Bound {
    FilterSpec spec;
    vcode::Program program;  // Straight-line compiled form.
    bool in_trie = false;
    bool live = false;
  };

  // Attempts trie insertion; returns false on structural mismatch.
  bool TryTrieInsert(const FilterSpec& filter, FilterId id);
  void RebuildTrie();

  std::vector<State> states_{State{}};  // states_[0] is the root.
  std::vector<Bound> filters_;
  bool merging_enabled_ = true;
  uint64_t sim_cycles_ = 0;
};

}  // namespace xok::dpf

#endif  // XOK_SRC_DPF_DPF_H_
