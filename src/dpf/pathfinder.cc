#include "src/dpf/pathfinder.h"

namespace xok::dpf {

using hw::Instr;

namespace {

bool ReadField(std::span<const uint8_t> msg, uint32_t offset, uint8_t width, uint32_t* out) {
  if (static_cast<size_t>(offset) + width > msg.size()) {
    return false;
  }
  uint32_t value = 0;
  for (uint8_t i = 0; i < width; ++i) {
    value = (value << 8) | msg[offset + i];
  }
  *out = value;
  return true;
}

}  // namespace

Result<FilterId> PathfinderEngine::Insert(const FilterSpec& filter) {
  if (!filter.Valid()) {
    return Status::kErrInvalidArgs;
  }
  for (const Bound& bound : filters_) {
    if (bound.live && bound.spec.atoms == filter.atoms) {
      return Status::kErrAlreadyExists;
    }
  }
  filters_.push_back(Bound{filter, true});
  Rebuild();
  return static_cast<FilterId>(filters_.size() - 1);
}

Status PathfinderEngine::Remove(FilterId id) {
  if (id >= filters_.size() || !filters_[id].live) {
    return Status::kErrNotFound;
  }
  filters_[id].live = false;
  Rebuild();
  return Status::kOk;
}

void PathfinderEngine::Rebuild() {
  cells_.clear();
  // Filters are grouped by "signature" (their sequence of atom keys); each
  // group forms one pattern trie; group tries hang off a synthetic root via
  // root-level alternatives. We represent the forest as a vector of root
  // cell indices encoded in the lines of a dispatch list; simplest correct
  // form: one trie per signature, all walked at classify time. The roots
  // are the cells whose index appears in `roots_` (rebuilt below).
  roots_.clear();
  for (FilterId id = 0; id < filters_.size(); ++id) {
    const Bound& bound = filters_[id];
    if (!bound.live) {
      continue;
    }
    // Find (or start) the trie whose root matches this filter's first key
    // and whose structure matches all the way down.
    int32_t cell = -1;
    for (int32_t root : roots_) {
      const Cell& c = cells_[root];
      if (c.offset == bound.spec.atoms[0].offset && c.width == bound.spec.atoms[0].width &&
          c.mask == bound.spec.atoms[0].mask) {
        // Check the full signature against this trie's spine.
        bool compatible = true;
        int32_t walk = root;
        for (size_t d = 1; d < bound.spec.atoms.size() && walk >= 0; ++d) {
          // Find any line with a next cell to inspect the next key.
          int32_t next = -1;
          for (const Line& line : cells_[walk].lines) {
            if (line.next_cell >= 0) {
              next = line.next_cell;
              break;
            }
          }
          if (next < 0) {
            break;  // Spine shorter than the filter so far: extend freely.
          }
          const Atom& atom = bound.spec.atoms[d];
          const Cell& nc = cells_[next];
          if (nc.offset != atom.offset || nc.width != atom.width || nc.mask != atom.mask) {
            compatible = false;
          }
          walk = next;
        }
        if (compatible) {
          cell = root;
          break;
        }
      }
    }
    if (cell < 0) {
      Cell fresh;
      fresh.offset = bound.spec.atoms[0].offset;
      fresh.width = bound.spec.atoms[0].width;
      fresh.mask = bound.spec.atoms[0].mask;
      cells_.push_back(fresh);
      cell = static_cast<int32_t>(cells_.size() - 1);
      roots_.push_back(cell);
    }
    // Thread the filter through the trie, creating lines/cells as needed.
    for (size_t d = 0; d < bound.spec.atoms.size(); ++d) {
      const Atom& atom = bound.spec.atoms[d];
      const bool last = d + 1 == bound.spec.atoms.size();
      Line* line = nullptr;
      for (Line& candidate : cells_[cell].lines) {
        if (candidate.value == atom.value) {
          line = &candidate;
          break;
        }
      }
      if (line == nullptr) {
        cells_[cell].lines.push_back(Line{atom.value, -1, -1});
        line = &cells_[cell].lines.back();
      }
      if (last) {
        line->accept = static_cast<int32_t>(id);
      } else {
        if (line->next_cell < 0) {
          const Atom& next_atom = bound.spec.atoms[d + 1];
          Cell fresh;
          fresh.offset = next_atom.offset;
          fresh.width = next_atom.width;
          fresh.mask = next_atom.mask;
          cells_.push_back(fresh);
          // cells_ may have reallocated: re-find the line.
          for (Line& candidate : cells_[cell].lines) {
            if (candidate.value == atom.value) {
              candidate.next_cell = static_cast<int32_t>(cells_.size() - 1);
              line = &candidate;
              break;
            }
          }
        }
        cell = line->next_cell;
      }
    }
  }
}

void PathfinderEngine::Walk(int32_t cell_index, std::span<const uint8_t> msg, uint32_t depth,
                            int32_t* best, uint32_t* best_depth, uint64_t* cells,
                            uint64_t* lines) const {
  const Cell& cell = cells_[cell_index];
  ++*cells;
  uint32_t field = 0;
  if (!ReadField(msg, cell.offset, cell.width, &field)) {
    return;
  }
  field &= cell.mask;
  for (const Line& line : cell.lines) {
    ++*lines;
    if (line.value != field) {
      continue;
    }
    if (line.accept >= 0 && filters_[line.accept].live) {
      const uint32_t d = depth + 1;
      if (d > *best_depth || (d == *best_depth && line.accept < *best)) {
        *best = line.accept;
        *best_depth = d;
      }
    }
    if (line.next_cell >= 0) {
      Walk(line.next_cell, msg, depth + 1, best, best_depth, cells, lines);
    }
    break;  // Values within a cell are disjoint under the shared mask.
  }
}

std::optional<FilterId> PathfinderEngine::Classify(std::span<const uint8_t> msg) {
  int32_t best = -1;
  uint32_t best_depth = 0;
  uint64_t cells = 0;
  uint64_t lines = 0;
  for (int32_t root : roots_) {
    Walk(root, msg, 0, &best, &best_depth, &cells, &lines);
  }
  sim_cycles_ += Instr(20) * cells + Instr(6) * lines + Instr(8);
  if (best < 0) {
    return std::nullopt;
  }
  return static_cast<FilterId>(best);
}

}  // namespace xok::dpf
