// Builders for the TCP/UDP-over-IP filters used throughout the paper's
// demultiplexing experiments (Table 7: "classify packets destined for one
// of ten TCP/IP filters").
#ifndef XOK_SRC_DPF_TCPIP_FILTERS_H_
#define XOK_SRC_DPF_TCPIP_FILTERS_H_

#include "src/dpf/filter.h"
#include "src/net/wire.h"

namespace xok::dpf {

// A connection-specific TCP/IP filter: ethertype, IP protocol, source and
// destination address, and both ports — six atoms, the classic shape.
inline FilterSpec TcpConnectionFilter(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                                      uint16_t dst_port) {
  FilterSpec spec;
  spec.atoms = {
      Atom{net::kEthTypeOff, 2, 0xffff, net::kEthTypeIpv4},
      Atom{net::kIpProtoOff, 1, 0xff, net::kIpProtoTcp},
      Atom{net::kIpSrcOff, 4, 0xffffffffu, src_ip},
      Atom{net::kIpDstOff, 4, 0xffffffffu, dst_ip},
      Atom{net::kTcpSrcPortOff, 2, 0xffff, src_port},
      Atom{net::kTcpDstPortOff, 2, 0xffff, dst_port},
  };
  return spec;
}

// A UDP port filter: accepts any UDP/IP packet to `dst_port`.
inline FilterSpec UdpPortFilter(uint16_t dst_port) {
  FilterSpec spec;
  spec.atoms = {
      Atom{net::kEthTypeOff, 2, 0xffff, net::kEthTypeIpv4},
      Atom{net::kIpProtoOff, 1, 0xff, net::kIpProtoUdp},
      Atom{net::kUdpDstPortOff, 2, 0xffff, dst_port},
  };
  return spec;
}

}  // namespace xok::dpf

#endif  // XOK_SRC_DPF_TCPIP_FILTERS_H_
