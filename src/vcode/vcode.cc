#include "src/vcode/vcode.h"

namespace xok::vcode {
namespace {

bool IsBranch(Op op) {
  return op == Op::kBranchEqImm || op == Op::kBranchNeImm || op == Op::kBranchLtImm;
}

bool IsTerminator(Op op) { return op == Op::kAccept || op == Op::kReject; }

uint32_t ReadBe(std::span<const uint8_t> data, size_t offset, size_t width) {
  uint32_t value = 0;
  for (size_t i = 0; i < width; ++i) {
    value = (value << 8) | data[offset + i];
  }
  return value;
}

// Ones-complement (Internet checksum style) accumulation over a byte range,
// matching src/net's reference implementation fold behaviour.
uint32_t OnesSum(std::span<const uint8_t> data) {
  uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  return sum;
}

}  // namespace

Status Verify(const Program& program, size_t max_len, size_t allowed_hooks) {
  const auto code = program.code();
  if (code.empty() || code.size() > max_len) {
    return Status::kErrUnsafeCode;
  }
  for (size_t pc = 0; pc < code.size(); ++pc) {
    const Insn& insn = code[pc];
    if (insn.a >= kRegisters || insn.b >= kRegisters) {
      // kHook uses `a` as a hook index; bound it separately below.
      if (insn.op != Op::kHook || insn.b >= kRegisters) {
        return Status::kErrUnsafeCode;
      }
    }
    if (IsBranch(insn.op)) {
      // Forward-only, in-range: this is what bounds the runtime.
      if (insn.target <= pc || insn.target > code.size()) {
        return Status::kErrUnsafeCode;
      }
    }
    if (insn.op == Op::kHook && insn.a >= allowed_hooks) {
      return Status::kErrUnsafeCode;
    }
  }
  // The program must not fall off the end: the last reachable instruction
  // along the straight line must terminate. (Branches only jump forward, so
  // the final instruction is always the last one executed on some path.)
  if (!IsTerminator(code.back().op)) {
    return Status::kErrUnsafeCode;
  }
  return Status::kOk;
}

ExecResult Execute(const Program& program, ExecEnv& env) {
  ExecResult result;
  uint32_t regs[kRegisters] = {};
  const auto code = program.code();
  size_t pc = 0;

  auto msg_in_bounds = [&](uint64_t offset, uint64_t width) {
    return offset + width <= env.msg.size();
  };
  auto region_in_bounds = [&](uint64_t offset, uint64_t width) {
    return offset + width <= env.region.size();
  };

  while (pc < code.size()) {
    const Insn& insn = code[pc];
    ++result.ops_executed;
    switch (insn.op) {
      case Op::kLoadImm:
        regs[insn.a] = insn.imm;
        break;
      case Op::kMov:
        regs[insn.a] = regs[insn.b];
        break;
      case Op::kAdd:
        regs[insn.a] += regs[insn.b];
        break;
      case Op::kAddImm:
        regs[insn.a] += insn.imm;
        break;
      case Op::kSub:
        regs[insn.a] -= regs[insn.b];
        break;
      case Op::kAnd:
        regs[insn.a] &= regs[insn.b];
        break;
      case Op::kAndImm:
        regs[insn.a] &= insn.imm;
        break;
      case Op::kOr:
        regs[insn.a] |= regs[insn.b];
        break;
      case Op::kXor:
        regs[insn.a] ^= regs[insn.b];
        break;
      case Op::kShl:
        regs[insn.a] <<= (insn.imm & 31);
        break;
      case Op::kShr:
        regs[insn.a] >>= (insn.imm & 31);
        break;
      case Op::kLoadMsgByte:
      case Op::kLoadMsgHalf:
      case Op::kLoadMsgWord: {
        const size_t width = insn.op == Op::kLoadMsgByte ? 1 : insn.op == Op::kLoadMsgHalf ? 2 : 4;
        const uint64_t offset = static_cast<uint64_t>(regs[insn.b]) + insn.imm;
        if (!msg_in_bounds(offset, width)) {
          result.value = kRejected;  // Sandbox: out-of-bounds rejects.
          return result;
        }
        regs[insn.a] = ReadBe(env.msg, offset, width);
        break;
      }
      case Op::kLoadMsgLen:
        regs[insn.a] = static_cast<uint32_t>(env.msg.size());
        break;
      case Op::kLoadRegionWord: {
        const uint64_t offset = static_cast<uint64_t>(regs[insn.b]) + insn.imm;
        if (!region_in_bounds(offset, 4)) {
          result.value = kRejected;
          return result;
        }
        uint32_t value = 0;
        for (int i = 3; i >= 0; --i) {
          value = (value << 8) | env.region[offset + i];
        }
        regs[insn.a] = value;
        break;
      }
      case Op::kStoreRegionWord:
      case Op::kStoreRegionWordBe: {
        const uint64_t offset = static_cast<uint64_t>(regs[insn.a]) + insn.imm;
        if (!region_in_bounds(offset, 4)) {
          result.value = kRejected;
          return result;
        }
        for (int i = 0; i < 4; ++i) {
          const int shift = insn.op == Op::kStoreRegionWord ? 8 * i : 8 * (3 - i);
          env.region[offset + i] = static_cast<uint8_t>(regs[insn.b] >> shift);
        }
        break;
      }
      case Op::kCopyRegion:
      case Op::kCopyCksum: {
        const uint64_t dst = regs[insn.a];
        const uint64_t src = regs[insn.b];
        const uint64_t len = insn.imm;
        if (!msg_in_bounds(src, len) || !region_in_bounds(dst, len)) {
          result.value = kRejected;
          return result;
        }
        auto bytes = env.msg.subspan(src, len);
        std::copy(bytes.begin(), bytes.end(), env.region.begin() + static_cast<size_t>(dst));
        if (insn.op == Op::kCopyCksum) {
          regs[15] += OnesSum(bytes);  // Integrated layer processing: one pass.
        }
        result.bytes_touched += len;
        break;
      }
      case Op::kCksum: {
        const uint64_t src = regs[insn.b];
        const uint64_t len = insn.imm;
        if (!msg_in_bounds(src, len)) {
          result.value = kRejected;
          return result;
        }
        regs[15] += OnesSum(env.msg.subspan(src, len));
        result.bytes_touched += len;  // A separate pass touches the data again.
        break;
      }
      case Op::kBranchEqImm:
        if (regs[insn.a] == insn.imm) {
          pc = insn.target;
          continue;
        }
        break;
      case Op::kBranchNeImm:
        if (regs[insn.a] != insn.imm) {
          pc = insn.target;
          continue;
        }
        break;
      case Op::kBranchLtImm:
        if (regs[insn.a] < insn.imm) {
          pc = insn.target;
          continue;
        }
        break;
      case Op::kHook:
        if (env.hooks != nullptr && insn.a < env.hooks->size()) {
          (*env.hooks)[insn.a](regs, insn.imm);
        }
        break;
      case Op::kAccept:
        result.value = insn.imm;
        return result;
      case Op::kReject:
        result.value = kRejected;
        return result;
    }
    ++pc;
  }
  result.value = kRejected;  // Fell off the end (verifier prevents this).
  return result;
}

}  // namespace xok::vcode
