// VCODE-style dynamic code generation substrate (paper ref [20]).
//
// The real VCODE emits native machine code at ~10 instructions per generated
// instruction. Generating x86 at runtime is outside this reproduction's
// scope, so vcode emits *flat threaded code*: a dense array of fully-decoded
// instructions executed by a tight loop with no operand decoding, no stack
// traffic, and pre-resolved offsets. That preserves the property DPF and
// ASHs rely on — per-operation cost close to compiled code — while the
// interpreted baselines (MPF-style, PATHFINDER-style in src/dpf) pay
// per-operation decode/dispatch overhead.
//
// The instruction set is a small load/ALU/branch register machine over:
//   * 16 general registers r0..r15,
//   * a read-only "message" region (the packet being processed),
//   * a read-write "region" (application-pinned memory a handler may write),
//   * host hooks (used by ASHs for message initiation etc.).
// Branches may only jump *forward*, so every program's runtime is trivially
// bounded by its length — the property Aegis's downloaded-code verifier
// depends on (paper §3.2.1: "the execution time of downloaded code can be
// readily bounded").
#ifndef XOK_SRC_VCODE_VCODE_H_
#define XOK_SRC_VCODE_VCODE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/base/result.h"

namespace xok::vcode {

enum class Op : uint8_t {
  kLoadImm,    // r[a] = imm
  kMov,        // r[a] = r[b]
  kAdd,        // r[a] = r[a] + r[b]
  kAddImm,     // r[a] = r[a] + imm
  kSub,        // r[a] = r[a] - r[b]
  kAnd,        // r[a] = r[a] & r[b]
  kAndImm,     // r[a] = r[a] & imm
  kOr,         // r[a] = r[a] | r[b]
  kXor,        // r[a] = r[a] ^ r[b]
  kShl,        // r[a] = r[a] << (imm & 31)
  kShr,        // r[a] = r[a] >> (imm & 31)
  kLoadMsgByte,   // r[a] = msg[r[b] + imm]        (bounds-checked)
  kLoadMsgHalf,   // r[a] = be16(msg[r[b] + imm])
  kLoadMsgWord,   // r[a] = be32(msg[r[b] + imm])
  kLoadMsgLen,    // r[a] = msg.size()
  kLoadRegionWord,     // r[a] = le32(region[r[b] + imm])
  kStoreRegionWord,    // le32(region[r[a] + imm]) = r[b]
  kStoreRegionWordBe,  // be32(region[r[a] + imm]) = r[b]  (network byte order)
  kCopyRegion,    // region[r[a]..] = msg[r[b]..r[b]+imm)   (bulk copy)
  kCopyCksum,     // as kCopyRegion, and r[15] += ones-complement sum (ILP)
  kCksum,         // r[15] += ones-complement sum of msg[r[b]..r[b]+imm)
  kBranchEqImm,   // if (r[a] == imm) jump forward to `target`
  kBranchNeImm,   // if (r[a] != imm) jump forward to `target`
  kBranchLtImm,   // if (r[a] <  imm) jump forward to `target` (unsigned)
  kHook,          // host_hooks[a](regs, imm)  — ASH services (send, wake)
  kAccept,        // terminate: return imm (filter id / handler verdict)
  kReject,        // terminate: return kRejected
};

struct Insn {
  Op op = Op::kReject;
  uint8_t a = 0;
  uint8_t b = 0;
  uint32_t imm = 0;
  uint32_t target = 0;  // Branches only: absolute instruction index (> pc).
};

inline constexpr uint32_t kRejected = 0xffffffffu;
inline constexpr int kRegisters = 16;

// Execution context. msg is read-only input; region is writable memory the
// owner pinned for this program; hooks are host services (checked by the
// verifier against what the binding allows).
struct ExecEnv {
  std::span<const uint8_t> msg;
  std::span<uint8_t> region;
  std::vector<std::function<void(uint32_t (&regs)[kRegisters], uint32_t imm)>>* hooks = nullptr;
};

struct ExecResult {
  uint32_t value = kRejected;       // kAccept's imm, or kRejected.
  uint64_t ops_executed = 0;        // For cycle charging by the caller.
  uint64_t bytes_touched = 0;       // Bulk-copy volume, charged per word.
};

// A program plus the static facts the verifier established about it.
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Insn> code) : code_(std::move(code)) {}

  std::span<const Insn> code() const { return code_; }
  bool empty() const { return code_.empty(); }
  size_t size() const { return code_.size(); }

 private:
  std::vector<Insn> code_;
};

// Emitter with forward-label support, used by filter compilers and by
// applications authoring ASHs.
class Emitter {
 public:
  using Label = size_t;

  void Emit(Op op, uint8_t a = 0, uint8_t b = 0, uint32_t imm = 0) {
    code_.push_back(Insn{op, a, b, imm});
  }

  // Emits a forward branch whose target is patched later by Bind().
  Label EmitBranch(Op op, uint8_t reg, uint32_t imm) {
    code_.push_back(Insn{op, reg, 0, imm, 0});
    return code_.size() - 1;
  }

  // Binds a previously-emitted branch to the current position.
  void Bind(Label label) { code_[label].target = static_cast<uint32_t>(code_.size()); }

  size_t position() const { return code_.size(); }

  Program Finish() { return Program(std::move(code_)); }

 private:
  std::vector<Insn> code_;
};

// Static safety verification (paper §3.2.1: code inspection + sandboxing).
// Rejects: backward or out-of-range branches, register indices out of
// range, hook ids >= allowed_hooks, fall-off-the-end programs, programs
// longer than max_len, and any memory-touching op whose *static* offset
// cannot possibly be in bounds given max region size (dynamic accesses are
// additionally bounds-checked at run time — that is the sandbox).
Status Verify(const Program& program, size_t max_len, size_t allowed_hooks);

// Runs a verified program. Dynamic bounds violations reject the execution
// (sandbox semantics: a bad handler can only hurt itself).
ExecResult Execute(const Program& program, ExecEnv& env);

}  // namespace xok::vcode

#endif  // XOK_SRC_VCODE_VCODE_H_
