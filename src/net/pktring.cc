#include "src/net/pktring.h"

#include <cstring>

namespace xok::net {

size_t PacketRingView::BytesNeeded(uint32_t rx_slots, uint32_t tx_slots) {
  return 2 * kHeaderBytes +
         (static_cast<size_t>(rx_slots) + tx_slots) * kSlotStride;
}

Result<PacketRingView> PacketRingView::Attach(std::span<uint8_t> region, uint32_t rx_slots,
                                              uint32_t tx_slots) {
  if (rx_slots == 0 || tx_slots == 0 || rx_slots > kMaxSlots || tx_slots > kMaxSlots) {
    return Status::kErrInvalidArgs;
  }
  if (region.size() < BytesNeeded(rx_slots, tx_slots)) {
    return Status::kErrOutOfRange;
  }
  return PacketRingView(region, rx_slots, tx_slots);
}

Result<PacketRingView> PacketRingView::Format(std::span<uint8_t> region, uint32_t rx_slots,
                                              uint32_t tx_slots) {
  Result<PacketRingView> view = Attach(region, rx_slots, tx_slots);
  if (!view.ok()) {
    return view;
  }
  std::memset(region.data(), 0, 2 * kHeaderBytes);
  view->StoreU32(kRxHeaderOff + kMagicOff, kMagic);
  view->StoreU32(kRxHeaderOff + kSlotsOff, rx_slots);
  view->StoreU32(kTxHeaderOff + kMagicOff, kMagic);
  view->StoreU32(kTxHeaderOff + kSlotsOff, tx_slots);
  return view;
}

uint32_t PacketRingView::LoadU32(size_t off) const {
  uint32_t v;
  std::memcpy(&v, base_ + off, sizeof(v));
  return v;
}

void PacketRingView::StoreU32(size_t off, uint32_t v) {
  std::memcpy(base_ + off, &v, sizeof(v));
}

void PacketRingView::WriteRxSlot(uint32_t index, std::span<const uint8_t> frame) {
  const size_t off = RxSlotOff(index);
  const uint32_t len =
      static_cast<uint32_t>(frame.size() < kSlotDataBytes ? frame.size() : kSlotDataBytes);
  StoreU32(off, len);
  StoreU32(off + 4, 0);
  std::memcpy(base_ + off + 8, frame.data(), len);
}

void PacketRingView::WriteTxSlot(uint32_t index, std::span<const uint8_t> frame) {
  const size_t off = TxSlotOff(index);
  const uint32_t len =
      static_cast<uint32_t>(frame.size() < kSlotDataBytes ? frame.size() : kSlotDataBytes);
  StoreU32(off, len);
  StoreU32(off + 4, 0);
  std::memcpy(base_ + off + 8, frame.data(), len);
}

std::span<const uint8_t> PacketRingView::ReadRxSlot(uint32_t index) const {
  const size_t off = RxSlotOff(index);
  uint32_t len = LoadU32(off);
  if (len > kSlotDataBytes) {
    len = kSlotDataBytes;  // Untrusted length: clamp to the slot.
  }
  return std::span<const uint8_t>(base_ + off + 8, len);
}

std::span<const uint8_t> PacketRingView::ReadTxSlot(uint32_t index) const {
  const size_t off = TxSlotOff(index);
  uint32_t len = LoadU32(off);
  if (len > kSlotDataBytes) {
    len = kSlotDataBytes;
  }
  return std::span<const uint8_t>(base_ + off + 8, len);
}

std::span<uint8_t> PacketRingView::TxSlotData(uint32_t index, uint32_t len) {
  const size_t off = TxSlotOff(index);
  if (len > kSlotDataBytes) {
    len = kSlotDataBytes;
  }
  StoreU32(off, len);
  StoreU32(off + 4, 0);
  return std::span<uint8_t>(base_ + off + 8, len);
}

std::span<const uint8_t> PacketRingView::RxFront() const {
  if (RxEmpty()) {
    return {};
  }
  return ReadRxSlot(rx_tail());
}

bool PacketRingView::TxPush(std::span<const uint8_t> frame) {
  if (TxFull() || frame.size() > kSlotDataBytes) {
    return false;
  }
  const uint32_t head = tx_head();
  WriteTxSlot(head, frame);
  set_tx_head(head + 1);
  return true;
}

}  // namespace xok::net
