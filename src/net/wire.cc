#include "src/net/wire.h"

#include <algorithm>

namespace xok::net {

size_t UdpFrameBytes(size_t payload_bytes) {
  // Ethernet minimum: 60 bytes.
  return std::max<size_t>(kUdpPayloadOff + payload_bytes, 60);
}

void BuildUdpFrameInto(std::span<uint8_t> frame, uint64_t dst_mac, uint64_t src_mac,
                       uint32_t src_ip, uint32_t dst_ip, uint16_t src_port, uint16_t dst_port,
                       std::span<const uint8_t> payload) {
  std::fill(frame.begin(), frame.end(), 0);
  PutMac(frame, kEthDstOff, dst_mac);
  PutMac(frame, kEthSrcOff, src_mac);
  PutBe16(frame, kEthTypeOff, kEthTypeIpv4);

  frame[kIpVersionIhlOff] = 0x45;  // IPv4, 20-byte header.
  PutBe16(frame, kIpTotalLenOff,
          static_cast<uint16_t>(kIpHeaderBytes + kUdpHeaderBytes + payload.size()));
  frame[kIpTtlOff] = 64;
  frame[kIpProtoOff] = kIpProtoUdp;
  PutBe32(frame, kIpSrcOff, src_ip);
  PutBe32(frame, kIpDstOff, dst_ip);
  const uint16_t ip_cksum =
      InternetChecksum(std::span<const uint8_t>(frame).subspan(kIpOff, kIpHeaderBytes));
  PutBe16(frame, kIpCksumOff, ip_cksum);

  PutBe16(frame, kUdpSrcPortOff, src_port);
  PutBe16(frame, kUdpDstPortOff, dst_port);
  PutBe16(frame, kUdpLenOff, static_cast<uint16_t>(kUdpHeaderBytes + payload.size()));
  std::copy(payload.begin(), payload.end(), frame.begin() + kUdpPayloadOff);
  const uint16_t udp_cksum = InternetChecksum(
      std::span<const uint8_t>(frame).subspan(kUdpOff, kUdpHeaderBytes + payload.size()));
  PutBe16(frame, kUdpCksumOff, udp_cksum);
}

std::vector<uint8_t> BuildUdpFrame(uint64_t dst_mac, uint64_t src_mac, uint32_t src_ip,
                                   uint32_t dst_ip, uint16_t src_port, uint16_t dst_port,
                                   std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame(UdpFrameBytes(payload.size()));
  BuildUdpFrameInto(frame, dst_mac, src_mac, src_ip, dst_ip, src_port, dst_port, payload);
  return frame;
}

bool ParseUdpFrame(std::span<const uint8_t> frame, UdpView* view) {
  if (frame.size() < kUdpPayloadOff) {
    return false;
  }
  if (GetBe16(frame, kEthTypeOff) != kEthTypeIpv4 || frame[kIpVersionIhlOff] != 0x45 ||
      frame[kIpProtoOff] != kIpProtoUdp) {
    return false;
  }
  // The IP header checksum must verify (sums to zero including the field).
  uint32_t sum = 0;
  for (uint32_t i = 0; i < kIpHeaderBytes; i += 2) {
    sum += static_cast<uint32_t>(frame[kIpOff + i]) << 8 | frame[kIpOff + i + 1];
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  if (sum != 0xffff) {
    return false;
  }
  const uint16_t udp_len = GetBe16(frame, kUdpLenOff);
  if (udp_len < kUdpHeaderBytes || kUdpOff + udp_len > frame.size()) {
    return false;
  }
  view->src_ip = GetBe32(frame, kIpSrcOff);
  view->dst_ip = GetBe32(frame, kIpDstOff);
  view->src_port = GetBe16(frame, kUdpSrcPortOff);
  view->dst_port = GetBe16(frame, kUdpDstPortOff);
  view->payload = frame.subspan(kUdpPayloadOff, udp_len - kUdpHeaderBytes);
  return true;
}

}  // namespace xok::net
