// Zero-copy packet rings (paper §3.2 taken to its modern conclusion; cf.
// Beadle et al., "Safe Sharing of Fast Kernel-Bypass I/O", and XOS).
//
// A packet ring is a pair of fixed-slot descriptor rings — RX and TX —
// living in *application-owned* pinned physical pages, registered with the
// kernel per packet-filter binding (Aegis::SysBindPacketRing). The DPF
// demux deposits matched frames directly into the owner's RX slots at
// interrupt level (one copy off the wire, no kernel-heap buffering); the
// application consumes them from its own memory without a receive syscall.
// The TX ring runs the other way: the application queues frames and one
// SysTxRing doorbell drains the whole batch.
//
// Layout of the shared region (all little-endian u32 fields, accessed
// through memcpy so the region is just bytes):
//
//   [RX header | TX header | rx_slots * slot | tx_slots * slot]
//
// Each header is 64 bytes: {magic, slots, head, tail, armed, ...pad}.
// Each slot is a 1536-byte stride: {len u32, reserved u32, data[1528]}.
// Indices are free-running u32 counters (slot = index % slots); the ring
// is empty when head == tail and full when head - tail == slots.
//
// Trust model: the region is application memory — the application may
// scribble anything into it at any time. The kernel therefore (a) keeps
// its own producer/consumer cursors in the trusted binding record and only
// *publishes* them to the shared header, (b) derives every byte offset
// from slot counts recorded at bind time (never from shared memory), and
// (c) clamps slot lengths read from shared memory to the slot capacity.
// With free-running index arithmetic every untrusted cursor value is safe:
// a corrupted header can at worst lose or scramble the owner's own frames.
//
// The `armed` word implements doorbell batching (interrupt mitigation, as
// in NAPI-style drivers): the consumer arms the ring just before blocking;
// the kernel posts a doorbell (wake + interrupt cost) only when the ring
// is armed, disarming it in the same step. While the consumer is awake and
// draining, deposits are silent.
#ifndef XOK_SRC_NET_PKTRING_H_
#define XOK_SRC_NET_PKTRING_H_

#include <cstdint>
#include <span>

#include "src/base/result.h"

namespace xok::net {

class PacketRingView {
 public:
  static constexpr uint32_t kMagic = 0x70724e47;  // "prNG"
  static constexpr uint32_t kHeaderBytes = 64;    // Per direction.
  static constexpr uint32_t kSlotStride = 1536;   // 8-byte slot header + data.
  static constexpr uint32_t kSlotDataBytes = kSlotStride - 8;
  static constexpr uint32_t kMaxSlots = 4096;     // Sanity bound per ring.

  PacketRingView() = default;

  // Region bytes needed for a ring pair with the given slot counts.
  static size_t BytesNeeded(uint32_t rx_slots, uint32_t tx_slots);

  // Interprets `region` as a ring pair. Fails if the slot counts are zero,
  // exceed kMaxSlots, or do not fit in the region.
  static Result<PacketRingView> Attach(std::span<uint8_t> region, uint32_t rx_slots,
                                       uint32_t tx_slots);

  // Attach + zero the headers (producer side of a fresh binding).
  static Result<PacketRingView> Format(std::span<uint8_t> region, uint32_t rx_slots,
                                       uint32_t tx_slots);

  uint32_t rx_slots() const { return rx_slots_; }
  uint32_t tx_slots() const { return tx_slots_; }

  // --- Shared-header cursor accessors (u32, memcpy'd) ---
  uint32_t rx_head() const { return LoadU32(kRxHeaderOff + kHeadOff); }
  uint32_t rx_tail() const { return LoadU32(kRxHeaderOff + kTailOff); }
  uint32_t tx_head() const { return LoadU32(kTxHeaderOff + kHeadOff); }
  uint32_t tx_tail() const { return LoadU32(kTxHeaderOff + kTailOff); }
  void set_rx_head(uint32_t v) { StoreU32(kRxHeaderOff + kHeadOff, v); }
  void set_rx_tail(uint32_t v) { StoreU32(kRxHeaderOff + kTailOff, v); }
  void set_tx_head(uint32_t v) { StoreU32(kTxHeaderOff + kHeadOff, v); }
  void set_tx_tail(uint32_t v) { StoreU32(kTxHeaderOff + kTailOff, v); }

  // Doorbell arming (consumer writes, kernel reads + clears).
  bool rx_armed() const { return LoadU32(kRxHeaderOff + kArmedOff) != 0; }
  void set_rx_armed(bool armed) { StoreU32(kRxHeaderOff + kArmedOff, armed ? 1 : 0); }

  // --- Raw slot access (index is free-running; reduced modulo slots) ---
  // Writes frame bytes + length into the slot. Caller checks occupancy.
  void WriteRxSlot(uint32_t index, std::span<const uint8_t> frame);
  void WriteTxSlot(uint32_t index, std::span<const uint8_t> frame);
  // Returns the slot's payload, length clamped to kSlotDataBytes.
  std::span<const uint8_t> ReadRxSlot(uint32_t index) const;
  std::span<const uint8_t> ReadTxSlot(uint32_t index) const;
  // Zero-copy build: the caller writes `len` bytes into the returned span
  // before publishing the slot (the length is recorded here).
  std::span<uint8_t> TxSlotData(uint32_t index, uint32_t len);

  // --- Application-side conveniences (trust the shared cursors) ---
  bool RxEmpty() const { return rx_head() == rx_tail(); }
  uint32_t RxPending() const { return rx_head() - rx_tail(); }
  // Oldest undelivered frame; empty span if the ring is empty.
  std::span<const uint8_t> RxFront() const;
  void RxPop() { set_rx_tail(rx_tail() + 1); }

  bool TxFull() const { return tx_head() - tx_tail() >= tx_slots_; }
  uint32_t TxPending() const { return tx_head() - tx_tail(); }
  // Queues a frame; false when full or oversized. No doorbell — the
  // producer batches and rings SysTxRing when it chooses.
  bool TxPush(std::span<const uint8_t> frame);

 private:
  // Header field byte offsets (within a direction's 64-byte header).
  static constexpr uint32_t kMagicOff = 0;
  static constexpr uint32_t kSlotsOff = 4;
  static constexpr uint32_t kHeadOff = 8;
  static constexpr uint32_t kTailOff = 12;
  static constexpr uint32_t kArmedOff = 16;
  static constexpr uint32_t kRxHeaderOff = 0;
  static constexpr uint32_t kTxHeaderOff = kHeaderBytes;

  PacketRingView(std::span<uint8_t> region, uint32_t rx_slots, uint32_t tx_slots)
      : base_(region.data()), rx_slots_(rx_slots), tx_slots_(tx_slots) {}

  uint32_t LoadU32(size_t off) const;
  void StoreU32(size_t off, uint32_t v);
  size_t RxSlotOff(uint32_t index) const {
    return 2 * kHeaderBytes + static_cast<size_t>(index % rx_slots_) * kSlotStride;
  }
  size_t TxSlotOff(uint32_t index) const {
    return 2 * kHeaderBytes + (static_cast<size_t>(rx_slots_) +
                               index % tx_slots_) * kSlotStride;
  }

  uint8_t* base_ = nullptr;
  uint32_t rx_slots_ = 0;
  uint32_t tx_slots_ = 0;
};

}  // namespace xok::net

#endif  // XOK_SRC_NET_PKTRING_H_
