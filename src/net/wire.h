// Wire formats: Ethernet II, IPv4, UDP — the formats the paper's networking
// experiments use (60-byte UDP/IP packets over 10 Mb/s Ethernet). Header-
// only so low-level modules (packet filters) can share the offsets without
// linking the full network stack.
#ifndef XOK_SRC_NET_WIRE_H_
#define XOK_SRC_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace xok::net {

// Byte offsets within an Ethernet frame.
inline constexpr uint32_t kEthDstOff = 0;
inline constexpr uint32_t kEthSrcOff = 6;
inline constexpr uint32_t kEthTypeOff = 12;
inline constexpr uint32_t kEthHeaderBytes = 14;
inline constexpr uint16_t kEthTypeIpv4 = 0x0800;

// IPv4 header (no options), offsets relative to frame start.
inline constexpr uint32_t kIpOff = kEthHeaderBytes;
inline constexpr uint32_t kIpVersionIhlOff = kIpOff + 0;
inline constexpr uint32_t kIpTotalLenOff = kIpOff + 2;
inline constexpr uint32_t kIpTtlOff = kIpOff + 8;
inline constexpr uint32_t kIpProtoOff = kIpOff + 9;
inline constexpr uint32_t kIpCksumOff = kIpOff + 10;
inline constexpr uint32_t kIpSrcOff = kIpOff + 12;
inline constexpr uint32_t kIpDstOff = kIpOff + 16;
inline constexpr uint32_t kIpHeaderBytes = 20;
inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;

// UDP header, offsets relative to frame start.
inline constexpr uint32_t kUdpOff = kIpOff + kIpHeaderBytes;
inline constexpr uint32_t kUdpSrcPortOff = kUdpOff + 0;
inline constexpr uint32_t kUdpDstPortOff = kUdpOff + 2;
inline constexpr uint32_t kUdpLenOff = kUdpOff + 4;
inline constexpr uint32_t kUdpCksumOff = kUdpOff + 6;
inline constexpr uint32_t kUdpHeaderBytes = 8;
inline constexpr uint32_t kUdpPayloadOff = kUdpOff + kUdpHeaderBytes;

// TCP uses the same port offsets as UDP for filtering purposes.
inline constexpr uint32_t kTcpSrcPortOff = kUdpOff + 0;
inline constexpr uint32_t kTcpDstPortOff = kUdpOff + 2;

inline void PutBe16(std::span<uint8_t> buf, uint32_t off, uint16_t v) {
  buf[off] = static_cast<uint8_t>(v >> 8);
  buf[off + 1] = static_cast<uint8_t>(v);
}

inline void PutBe32(std::span<uint8_t> buf, uint32_t off, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf[off + i] = static_cast<uint8_t>(v >> (8 * (3 - i)));
  }
}

inline uint16_t GetBe16(std::span<const uint8_t> buf, uint32_t off) {
  return static_cast<uint16_t>((buf[off] << 8) | buf[off + 1]);
}

inline uint32_t GetBe32(std::span<const uint8_t> buf, uint32_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | buf[off + i];
  }
  return v;
}

inline void PutMac(std::span<uint8_t> buf, uint32_t off, uint64_t mac) {
  for (int i = 0; i < 6; ++i) {
    buf[off + i] = static_cast<uint8_t>(mac >> (8 * (5 - i)));
  }
}

// Internet (ones-complement) checksum over `data`, folded to 16 bits.
inline uint16_t InternetChecksum(std::span<const uint8_t> data, uint32_t initial = 0) {
  uint32_t sum = initial;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xffff);
}

// Frame length for a UDP payload (respects the 60-byte Ethernet minimum).
size_t UdpFrameBytes(size_t payload_bytes);

// Builds a UDP/IPv4/Ethernet frame around `payload`.
std::vector<uint8_t> BuildUdpFrame(uint64_t dst_mac, uint64_t src_mac, uint32_t src_ip,
                                   uint32_t dst_ip, uint16_t src_port, uint16_t dst_port,
                                   std::span<const uint8_t> payload);

// Same, but assembled in place — `frame` must be exactly
// UdpFrameBytes(payload.size()) long. Used by the zero-copy TX-ring path
// to build the frame directly in a ring slot.
void BuildUdpFrameInto(std::span<uint8_t> frame, uint64_t dst_mac, uint64_t src_mac,
                       uint32_t src_ip, uint32_t dst_ip, uint16_t src_port, uint16_t dst_port,
                       std::span<const uint8_t> payload);

// Validates lengths, ethertype, protocol, and the IP header checksum.
// Returns the payload span on success.
struct UdpView {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  std::span<const uint8_t> payload;
};
bool ParseUdpFrame(std::span<const uint8_t> frame, UdpView* view);

}  // namespace xok::net

#endif  // XOK_SRC_NET_WIRE_H_
