#include "src/ash/ash.h"

namespace xok::ash {

using hw::Instr;
using vcode::Op;

Result<AshProgram> AshProgram::Make(vcode::Program program, const AshLimits& limits) {
  const Status verdict = vcode::Verify(program, limits.max_insns, kNumAshHooks);
  if (verdict != Status::kOk) {
    return verdict;
  }
  return AshProgram(std::move(program));
}

AshOutcome RunAsh(const AshProgram& handler, std::span<const uint8_t> msg,
                  std::span<uint8_t> region, AshServices& services) {
  AshOutcome outcome;
  std::vector<std::function<void(uint32_t(&)[vcode::kRegisters], uint32_t)>> hooks(kNumAshHooks);
  hooks[kHookSendReply] = [&](uint32_t(&regs)[vcode::kRegisters], uint32_t) {
    const uint64_t off = regs[4];
    const uint64_t len = regs[5];
    if (off + len <= region.size() && services.send_reply) {
      services.send_reply(std::span<const uint8_t>(region).subspan(off, len));
      outcome.sent_reply = true;
    }
  };
  hooks[kHookWakeOwner] = [&](uint32_t(&)[vcode::kRegisters], uint32_t) {
    if (services.wake_owner) {
      services.wake_owner();
      outcome.woke_owner = true;
    }
  };

  vcode::ExecEnv env{msg, region, &hooks};
  const vcode::ExecResult run = vcode::Execute(handler.program(), env);
  outcome.verdict = run.value;
  // Compiled-code cost per executed op, plus the copy loops per word.
  outcome.sim_cycles = Instr(2) * run.ops_executed + hw::kMemWordCopy * ((run.bytes_touched + 3) / 4);
  return outcome;
}

Result<AshProgram> BuildVectorAsh(const VectorAshSpec& spec) {
  vcode::Emitter e;
  e.Emit(Op::kLoadImm, 0, 0, spec.dst_off);  // r0 = dst.
  e.Emit(Op::kLoadImm, 1, 0, spec.src_off);  // r1 = src.
  e.Emit(spec.integrate_cksum ? Op::kCopyCksum : Op::kCopyRegion, 0, 1, spec.len);
  if (spec.integrate_cksum) {
    e.Emit(Op::kLoadImm, 2, 0, spec.cksum_off);
    e.Emit(Op::kStoreRegionWord, 2, 15, 0);  // Accumulated sum lives in r15.
  }
  // region[count_off] += 1 (message-arrival counter the owner polls).
  e.Emit(Op::kLoadImm, 3, 0, 0);
  e.Emit(Op::kLoadRegionWord, 6, 3, spec.count_off);
  e.Emit(Op::kAddImm, 6, 0, 1);
  e.Emit(Op::kLoadImm, 3, 0, spec.count_off);
  e.Emit(Op::kStoreRegionWord, 3, 6, 0);
  e.Emit(Op::kHook, kHookWakeOwner, 0, 0);
  e.Emit(Op::kAccept, 0, 0, 1);
  return AshProgram::Make(e.Finish());
}

Result<AshProgram> BuildEchoAsh(const EchoAshSpec& spec) {
  vcode::Emitter e;
  // r0 = counter from the message (big-endian), incremented.
  e.Emit(Op::kLoadImm, 1, 0, 0);
  e.Emit(Op::kLoadMsgWord, 0, 1, spec.counter_off);
  e.Emit(Op::kAddImm, 0, 0, 1);
  // Patch it into the prebuilt reply frame (network byte order).
  e.Emit(Op::kLoadImm, 2, 0, spec.reply_off + spec.reply_counter_off);
  e.Emit(Op::kStoreRegionWordBe, 2, 0, 0);
  // Bump the handled-message counter.
  e.Emit(Op::kLoadImm, 3, 0, 0);
  e.Emit(Op::kLoadRegionWord, 6, 3, spec.count_off);
  e.Emit(Op::kAddImm, 6, 0, 1);
  e.Emit(Op::kLoadImm, 3, 0, spec.count_off);
  e.Emit(Op::kStoreRegionWord, 3, 6, 0);
  // Message initiation: transmit the reply right now, from interrupt level.
  e.Emit(Op::kLoadImm, 4, 0, spec.reply_off);
  e.Emit(Op::kLoadImm, 5, 0, spec.reply_len);
  e.Emit(Op::kHook, kHookSendReply, 0, 0);
  e.Emit(Op::kAccept, 0, 0, 1);
  return AshProgram::Make(e.Finish());
}

Result<AshProgram> BuildKvReplyAsh(const KvReplyAshSpec& spec) {
  vcode::Emitter e;
  // r0 = request id from the message (big-endian word).
  e.Emit(Op::kLoadImm, 1, 0, 0);
  e.Emit(Op::kLoadMsgWord, 0, 1, spec.req_id_off);
  // Patch it into the prebuilt response frame (network byte order) so the
  // client can correlate the response without any worker involvement.
  e.Emit(Op::kLoadImm, 2, 0, spec.reply_off + spec.reply_req_id_off);
  e.Emit(Op::kStoreRegionWordBe, 2, 0, 0);
  if (spec.cksum_len > 0) {
    // Integrated layer processing: checksum the request bytes during this
    // single interrupt-level pass and publish the sum for the owner.
    e.Emit(Op::kLoadImm, 7, 0, spec.cksum_off);
    e.Emit(Op::kCksum, 0, 7, spec.cksum_len);
    e.Emit(Op::kLoadImm, 7, 0, spec.cksum_sum_off);
    e.Emit(Op::kStoreRegionWord, 7, 15, 0);
  }
  // Bump the fast-path hit counter.
  e.Emit(Op::kLoadImm, 3, 0, 0);
  e.Emit(Op::kLoadRegionWord, 6, 3, spec.count_off);
  e.Emit(Op::kAddImm, 6, 0, 1);
  e.Emit(Op::kLoadImm, 3, 0, spec.count_off);
  e.Emit(Op::kStoreRegionWord, 3, 6, 0);
  // Message initiation: the response leaves from interrupt level.
  e.Emit(Op::kLoadImm, 4, 0, spec.reply_off);
  e.Emit(Op::kLoadImm, 5, 0, spec.reply_len);
  e.Emit(Op::kHook, kHookSendReply, 0, 0);
  e.Emit(Op::kAccept, 0, 0, 1);
  return AshProgram::Make(e.Finish());
}

Result<AshProgram> BuildLockAsh(const LockAshSpec& spec) {
  vcode::Emitter e;
  e.Emit(Op::kLoadImm, 1, 0, 0);                       // r1 = 0 (base register).
  e.Emit(Op::kLoadRegionWord, 2, 1, spec.lock_off);    // r2 = lock word.
  auto denied = e.EmitBranch(Op::kBranchNeImm, 2, 0);  // Held -> denied.
  // Granted: lock = requester id; status = kLockGranted.
  e.Emit(Op::kLoadMsgWord, 6, 1, spec.requester_off);
  e.Emit(Op::kLoadImm, 3, 0, spec.lock_off);
  e.Emit(Op::kStoreRegionWord, 3, 6, 0);
  e.Emit(Op::kLoadImm, 7, 0, kLockGranted);
  e.Emit(Op::kLoadImm, 8, 0, 0);
  auto to_send = e.EmitBranch(Op::kBranchEqImm, 8, 0);  // Unconditional skip.
  e.Bind(denied);
  e.Emit(Op::kLoadImm, 7, 0, kLockDenied);
  e.Bind(to_send);
  // Patch the status into the reply template and transmit it.
  e.Emit(Op::kLoadImm, 3, 0, spec.reply_off + spec.reply_status_off);
  e.Emit(Op::kStoreRegionWordBe, 3, 7, 0);
  e.Emit(Op::kLoadImm, 4, 0, spec.reply_off);
  e.Emit(Op::kLoadImm, 5, 0, spec.reply_len);
  e.Emit(Op::kHook, kHookSendReply, 0, 0);
  e.Emit(Op::kAccept, 0, 0, 1);
  return AshProgram::Make(e.Finish());
}

}  // namespace xok::ash
