// Application-specific safe handlers (ASHs), paper §3.2.1 and §6.3.
//
// An ASH is untrusted application code downloaded into the kernel, made
// safe by code inspection (the vcode verifier: bounded length, forward-only
// branches, hook whitelist) and sandboxing (all memory references are
// bounds-checked against the message and the owner's pinned region), and
// executed at message arrival — *without* scheduling the owning
// application. ASHs provide four abilities:
//
//   1. Direct, dynamic message vectoring — the ASH decides where message
//      bytes land in owner memory, eliminating intermediate copies.
//   2. Dynamic integrated layer processing (ILP) — checksum during the
//      copy (vcode kCopyCksum), touching the data once instead of twice.
//   3. Message initiation — an ASH can transmit a reply immediately from
//      the interrupt path (kHookSendReply).
//   4. Control initiation — general computation at reception time (active
//      messages, remote lock acquisition) over the pinned region.
//
// Because a verified ASH's runtime is bounded by its instruction count, the
// kernel can run it "in situations where performing a full context switch
// to an unscheduled application is impractical" — this is what flattens the
// paper's Figure: roundtrip latency stays constant as receiver load grows.
#ifndef XOK_SRC_ASH_ASH_H_
#define XOK_SRC_ASH_ASH_H_

#include <cstdint>
#include <functional>
#include <span>

#include "src/base/result.h"
#include "src/hw/cost.h"
#include "src/vcode/vcode.h"

namespace xok::ash {

// Host services an ASH may invoke, in hook-table order.
enum AshHook : uint8_t {
  kHookSendReply = 0,  // Transmit region[r4 .. r4+r5) as an Ethernet frame.
  kHookWakeOwner = 1,  // Mark the owning environment runnable.
  kNumAshHooks = 2,
};

struct AshLimits {
  size_t max_insns = 256;
};

// A verified handler. Construction only via Make(), so possession of an
// AshProgram implies the verifier accepted it.
class AshProgram {
 public:
  static Result<AshProgram> Make(vcode::Program program, const AshLimits& limits = {});

  const vcode::Program& program() const { return program_; }

 private:
  explicit AshProgram(vcode::Program program) : program_(std::move(program)) {}

  vcode::Program program_;
};

// Outcome of one handler execution, including the simulated cycles the
// kernel must charge (compiled-code cost per op + per-word copy cost).
struct AshOutcome {
  uint32_t verdict = vcode::kRejected;  // kAccept imm, or kRejected on sandbox fault.
  uint64_t sim_cycles = 0;
  bool sent_reply = false;
  bool woke_owner = false;
};

struct AshServices {
  std::function<void(std::span<const uint8_t>)> send_reply;
  std::function<void()> wake_owner;
};

// Runs `handler` against `msg` with the owner's pinned `region`.
AshOutcome RunAsh(const AshProgram& handler, std::span<const uint8_t> msg,
                  std::span<uint8_t> region, AshServices& services);

// --- Builders for common handlers (used by ExOS, benches, and examples) ---

// Vectoring handler: copies `len` message bytes from msg[src_off] to
// region[dst_off], bumps the word counter at region[count_off], and wakes
// the owner. With `integrate_cksum`, checksums during the copy (ILP) and
// stores the accumulated sum at region[cksum_off].
struct VectorAshSpec {
  uint32_t src_off = 0;
  uint32_t dst_off = 0;
  uint32_t len = 0;
  uint32_t count_off = 0;
  bool integrate_cksum = false;
  uint32_t cksum_off = 0;
};
Result<AshProgram> BuildVectorAsh(const VectorAshSpec& spec);

// Echo/ping handler (the paper's Table 11 workload): reads the big-endian
// word at msg[counter_off], increments it, patches it into the prebuilt
// reply frame the application keeps at region[reply_off .. reply_off +
// reply_len), and transmits the reply immediately from the interrupt path.
struct EchoAshSpec {
  uint32_t counter_off = 0;     // Offset of the counter within the message.
  uint32_t reply_off = 0;       // Region offset of the prebuilt reply frame.
  uint32_t reply_len = 0;       // Frame length.
  uint32_t reply_counter_off = 0;  // Offset of the counter within the reply frame.
  uint32_t count_off = 0;       // Region word counting handled messages.
};
Result<AshProgram> BuildEchoAsh(const EchoAshSpec& spec);

// Control initiation (paper: "remote lock acquisition"): region[lock_off]
// is a lock word. On message arrival — at interrupt level, without
// scheduling the owner — the handler grants the lock to the requester
// (writing its id, read from msg[requester_off], into the lock word) if it
// is free, patches a granted/denied status word into the prebuilt reply
// frame at region[reply_off], and transmits the reply.
struct LockAshSpec {
  uint32_t lock_off = 0;        // Region offset of the lock word.
  uint32_t requester_off = 0;   // Message offset of the requester id (BE word).
  uint32_t reply_off = 0;       // Region offset of the prebuilt reply frame.
  uint32_t reply_len = 0;
  uint32_t reply_status_off = 0;  // Offset of the status word within the reply.
};
inline constexpr uint32_t kLockGranted = 1;
inline constexpr uint32_t kLockDenied = 0;
Result<AshProgram> BuildLockAsh(const LockAshSpec& spec);

// KV cache-hit handler (the server libOS's Cheetah-style fast path): for a
// request the filter already proved is a GET of one specific hot key, echo
// the request id from msg[req_id_off] into the prebuilt response frame at
// region[reply_off + reply_req_id_off] (network byte order), ILP-checksum
// `cksum_len` request bytes starting at msg[cksum_off] into
// region[cksum_sum_off] (the data is touched exactly once, at interrupt
// level), bump the hit counter at region[count_off], and transmit the
// response immediately — the worker environment is never scheduled.
struct KvReplyAshSpec {
  uint32_t req_id_off = 0;        // Message offset of the BE32 request id.
  uint32_t reply_off = 0;         // Region offset of the prebuilt response.
  uint32_t reply_len = 0;
  uint32_t reply_req_id_off = 0;  // Request-id offset within the response.
  uint32_t cksum_off = 0;         // Message offset checksummed (ILP).
  uint32_t cksum_len = 0;         // Bytes to checksum (0 disables).
  uint32_t cksum_sum_off = 0;     // Region word receiving the sum.
  uint32_t count_off = 0;         // Region word counting fast-path hits.
};
Result<AshProgram> BuildKvReplyAsh(const KvReplyAshSpec& spec);

}  // namespace xok::ash

#endif  // XOK_SRC_ASH_ASH_H_
