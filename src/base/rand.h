// Deterministic pseudo-random number generation. The simulator must be fully
// reproducible, so all randomness (TLB replacement, workload generation)
// flows through explicitly-seeded generators — never std::random_device.
#ifndef XOK_SRC_BASE_RAND_H_
#define XOK_SRC_BASE_RAND_H_

#include <cstdint>

namespace xok {

// SplitMix64: tiny, well-distributed, deterministic. Suitable for simulation
// workloads; not cryptographic.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  constexpr uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

 private:
  uint64_t state_;
};

}  // namespace xok

#endif  // XOK_SRC_BASE_RAND_H_
