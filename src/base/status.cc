#include "src/base/status.h"

namespace xok {

std::string_view StatusName(Status status) {
  switch (status) {
    case Status::kOk:
      return "OK";
    case Status::kErrInternal:
      return "ERR_INTERNAL";
    case Status::kErrInvalidArgs:
      return "ERR_INVALID_ARGS";
    case Status::kErrOutOfRange:
      return "ERR_OUT_OF_RANGE";
    case Status::kErrNoResources:
      return "ERR_NO_RESOURCES";
    case Status::kErrNotFound:
      return "ERR_NOT_FOUND";
    case Status::kErrAlreadyExists:
      return "ERR_ALREADY_EXISTS";
    case Status::kErrBadState:
      return "ERR_BAD_STATE";
    case Status::kErrUnsupported:
      return "ERR_UNSUPPORTED";
    case Status::kErrIo:
      return "ERR_IO";
    case Status::kErrAccessDenied:
      return "ERR_ACCESS_DENIED";
    case Status::kErrBadCapability:
      return "ERR_BAD_CAPABILITY";
    case Status::kErrRevoked:
      return "ERR_REVOKED";
    case Status::kErrWouldBlock:
      return "ERR_WOULD_BLOCK";
    case Status::kErrTimedOut:
      return "ERR_TIMED_OUT";
    case Status::kErrUnsafeCode:
      return "ERR_UNSAFE_CODE";
    case Status::kErrCodeLimit:
      return "ERR_CODE_LIMIT";
  }
  return "ERR_UNKNOWN";
}

}  // namespace xok
