// Result<T>: a value-or-Status return type for fallible kernel operations.
#ifndef XOK_SRC_BASE_RESULT_H_
#define XOK_SRC_BASE_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "src/base/status.h"

namespace xok {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit conversions keep call sites terse: `return Status::kErrNotFound;`
  // and `return value;` both work.
  Result(Status status) : repr_(status) { assert(status != Status::kOk); }
  Result(T value) : repr_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const { return ok() ? Status::kOk : std::get<Status>(repr_); }

  // Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` on error.
  T value_or(T fallback) const { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace xok

#endif  // XOK_SRC_BASE_RESULT_H_
