// Status codes used across the simulated machine, the Aegis exokernel, and the
// library operating systems. Kernel paths never throw; fallible operations
// return Status or Result<T> (see result.h), in the style of Zircon's
// zx_status_t.
#ifndef XOK_SRC_BASE_STATUS_H_
#define XOK_SRC_BASE_STATUS_H_

#include <cstdint>
#include <string_view>

namespace xok {

enum class Status : int32_t {
  kOk = 0,
  // Generic failures.
  kErrInternal = -1,
  kErrInvalidArgs = -2,
  kErrOutOfRange = -3,
  kErrNoResources = -4,
  kErrNotFound = -5,
  kErrAlreadyExists = -6,
  kErrBadState = -7,
  kErrUnsupported = -8,
  kErrIo = -9,  // Device-level transfer failure (media/controller error).
  // Protection failures.
  kErrAccessDenied = -20,   // Capability missing or insufficient rights.
  kErrBadCapability = -21,  // Capability failed self-authentication.
  // Resource-revocation protocol.
  kErrRevoked = -30,
  kErrWouldBlock = -31,
  kErrTimedOut = -32,
  // Downloaded-code safety.
  kErrUnsafeCode = -40,  // Verifier rejected the program.
  kErrCodeLimit = -41,   // Bounded-runtime budget exceeded.
};

// Human-readable name for diagnostics and test failure messages.
std::string_view StatusName(Status status);

constexpr bool IsOk(Status status) { return status == Status::kOk; }

}  // namespace xok

#endif  // XOK_SRC_BASE_STATUS_H_
