// Application-level stride scheduling (paper §7.3, refs [53, 54]).
//
// Aegis's only CPU abstraction is the slice vector plus directed yield.
// That is enough for an *application* to implement a deterministic
// proportional-share scheduler: this scheduler environment owns the time
// slices; on every slice wakeup it computes which client should run
// (minimum pass value) and yields to it directly, donating the slice.
#ifndef XOK_SRC_EXOS_STRIDE_H_
#define XOK_SRC_EXOS_STRIDE_H_

#include <cstdint>
#include <vector>

#include "src/exos/process.h"

namespace xok::exos {

class StrideScheduler {
 public:
  // Precision constant: stride1 in the stride-scheduling papers.
  static constexpr uint64_t kStride1 = 1u << 20;

  explicit StrideScheduler(Process& self) : self_(self) {}

  // Registers a client with `tickets` (relative share). Returns its index.
  size_t AddClient(aegis::EnvId env, uint32_t tickets);

  // Runs `slices` scheduling decisions: each picks the minimum-pass client
  // and donates the current slice via directed yield.
  void RunSlices(uint32_t slices);

  // Slices granted to each client so far (by AddClient index).
  const std::vector<uint64_t>& allocations() const { return allocations_; }

  // Chronological record of which client got each slice (for the
  // cumulative-allocation figure).
  const std::vector<size_t>& history() const { return history_; }

 private:
  struct Client {
    aegis::EnvId env = aegis::kNoEnv;
    uint64_t stride = 0;
    uint64_t pass = 0;
  };

  Process& self_;
  std::vector<Client> clients_;
  std::vector<uint64_t> allocations_;
  std::vector<size_t> history_;
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_STRIDE_H_
