// Application-level stride scheduling (paper §7.3, refs [53, 54]).
//
// Aegis's only CPU abstraction is the slice vector plus directed yield.
// That is enough for an *application* to implement a deterministic
// proportional-share scheduler: this scheduler environment owns the time
// slices; on every slice wakeup it computes which client should run
// (minimum pass value) and yields to it directly, donating the slice.
#ifndef XOK_SRC_EXOS_STRIDE_H_
#define XOK_SRC_EXOS_STRIDE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/exos/process.h"

namespace xok::exos {

class StrideScheduler {
 public:
  // Precision constant: stride1 in the stride-scheduling papers.
  static constexpr uint64_t kStride1 = 1u << 20;

  explicit StrideScheduler(Process& self) : self_(self) {}

  // Registers a client with `tickets` (relative share). Returns its index.
  size_t AddClient(aegis::EnvId env, uint32_t tickets);

  // Runs `slices` scheduling decisions: each picks the minimum-pass client
  // and donates the current slice via directed yield.
  void RunSlices(uint32_t slices);

  // Slices granted to each client so far (by AddClient index).
  const std::vector<uint64_t>& allocations() const { return allocations_; }

  // Chronological record of which client got each slice (for the
  // cumulative-allocation figure).
  const std::vector<size_t>& history() const { return history_; }

 private:
  struct Client {
    aegis::EnvId env = aegis::kNoEnv;
    uint64_t stride = 0;
    uint64_t pass = 0;
  };

  Process& self_;
  std::vector<Client> clients_;
  std::vector<uint64_t> allocations_;
  std::vector<size_t> history_;
};

// Multiprocessor stride scheduling, still entirely in application space.
//
// One scheduler environment is pinned per CPU (cpu_mask = 1 << k); all of
// them share one client table. Each client has a home CPU: the pinned
// scheduler for that CPU normally picks the minimum-pass client among its
// own, which keeps the hot path free of cross-CPU pass comparisons. When a
// CPU's local run list is empty the scheduler is work-conserving: it hands
// its slice to the global minimum-pass client instead of idling (counted
// in handoffs()). Pass/stride state is global, so proportions hold across
// the whole machine, not per CPU.
class SmpStrideScheduler {
 public:
  static constexpr uint64_t kStride1 = StrideScheduler::kStride1;

  explicit SmpStrideScheduler(aegis::Aegis& kernel) : kernel_(kernel) {}

  // Registers a client with `tickets` homed on `home_cpu` (which must be
  // < the machine's CPU count). Call before Start(). Returns its index.
  // The env may be kNoEnv as a placeholder: the slot accrues pass state
  // but its donated slices fall through (undirected yield) until
  // Retarget() points it at a real environment.
  size_t AddClient(aegis::EnvId env, uint32_t tickets, uint32_t home_cpu);

  // Re-points client slot `index` at `env`, keeping its pass/stride state.
  // Safe to call mid-run from any fiber (the fibers are cooperative):
  // this is how a supervised service re-registers a worker after the
  // Supervisor respawned it under a fresh environment id.
  void Retarget(size_t index, aegis::EnvId env);

  // Spawns one scheduler process pinned to each CPU; each runs
  // `slices_per_cpu` scheduling decisions once the kernel runs. Returns
  // false if any scheduler environment could not be created.
  bool Start(uint32_t slices_per_cpu);

  // Slices granted to each client so far (by AddClient index).
  const std::vector<uint64_t>& allocations() const { return allocations_; }
  // Slices a CPU granted to a client homed elsewhere (work conservation).
  uint64_t handoffs() const { return handoffs_; }

 private:
  struct Client {
    aegis::EnvId env = aegis::kNoEnv;
    uint64_t stride = 0;
    uint64_t pass = 0;
    uint32_t home_cpu = 0;
  };

  void RunCpu(Process& self, uint32_t cpu, uint32_t slices);

  aegis::Aegis& kernel_;
  std::vector<Client> clients_;
  std::vector<uint64_t> allocations_;
  std::vector<std::unique_ptr<Process>> schedulers_;
  uint64_t handoffs_ = 0;
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_STRIDE_H_
