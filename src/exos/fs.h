// LibFS: a library file system with application-controlled caching and
// application-owned crash consistency.
//
// The paper's §2 motivates exokernels with storage: "database implementors
// must struggle to emulate random-access record storage on top of file
// systems" (Stonebraker [47]) and "application-level control over file
// caching can reduce application running time by 45%" (Cao et al. [10]).
// Here the *entire* file system is library code on top of Aegis's
// capability-protected disk extents: layout, metadata, the block-cache
// replacement policy — and durability policy. The kernel exposes exactly
// one ordering primitive (SysDiskBarrier); everything built on it — the
// physical-redo journal, commit checksums, mount-time replay, fsck — is
// untrusted library code, so a different application could run with no
// journal at all (Options::journal_blocks = 0 reproduces the original
// write-back-only LibFS, and is the ablation baseline in
// bench_abl_journal).
//
// On-extent layout (4 KB blocks):
//   block 0 — superblock: magic, next free data block, journal geometry
//   block 1 — root directory: 128 entries of {28-byte name, inode index}
//   block 2 — inode table: 64 inodes of {used, size, 12 direct blocks}
//   blocks 3 .. 3+J-1 — journal (J = journal_blocks, 0 if unjournaled)
//   blocks 3+J .. — data
//
// Journal format (physical redo, one transaction per metadata mutation):
//   descriptor block {magic, txn id, count, target blocks, checksum}
//   `count` payload blocks (verbatim new contents of the targets)
//   commit block {magic, txn id, checksum over all payloads, checksum}
// A mutation stages the new metadata images, appends the transaction,
// issues a barrier (commit point), and only then lets the new images into
// the write-back cache — so a torn or lost home-location write is always
// covered by a committed, replayable journal record. Mount() replays every
// committed transaction (idempotent physical redo) and discards torn or
// uncommitted tails by checksum; Sync() checkpoints (flush + barrier) and
// resets the journal head.
#ifndef XOK_SRC_EXOS_FS_H_
#define XOK_SRC_EXOS_FS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/exos/process.h"

namespace xok::exos {

// A write-back block cache over one disk extent, with a pluggable
// replacement policy. Slots are frames the application owns.
class BlockCache {
 public:
  enum class Policy : uint8_t {
    kLru,     // The fixed policy a traditional kernel would impose.
    kMru,     // Evict most-recently-used: optimal-ish for looping scans.
    kCustom,  // Application-provided victim picker.
  };

  struct Slot {
    uint32_t block = 0;      // Extent-relative block number.
    bool valid = false;
    bool dirty = false;
    uint64_t last_use = 0;   // For LRU/MRU bookkeeping.
  };

  // Picks the victim slot index given the slot table.
  using VictimPicker = std::function<size_t(std::span<const Slot>)>;

  // Allocates `slots` cache frames inside `proc`'s environment.
  static Result<std::unique_ptr<BlockCache>> Create(Process& proc,
                                                    const aegis::Aegis::DiskExtentGrant& extent,
                                                    size_t slots);

  void set_policy(Policy policy) { policy_ = policy; }
  void set_victim_picker(VictimPicker picker) {
    picker_ = std::move(picker);
    policy_ = Policy::kCustom;
  }

  // Returns the cached bytes of `block`, reading it in (and evicting a
  // victim) on a miss. The span is valid until the next GetBlock call.
  // `for_write` marks the block dirty.
  Result<std::span<uint8_t>> GetBlock(uint32_t block, bool for_write);

  // Writes every dirty block back to the extent. Every slot is attempted
  // even after a failure — one bad block must not strand the rest — and
  // the first error is returned; dirty_remaining() says what is still at
  // risk afterwards.
  Status Flush();

  // Dirty blocks not yet written back (data at risk if the cache dies).
  size_t dirty_remaining() const;

  // Revocation support. ReleaseCleanFrames is the non-blocking half of the
  // repair contract (safe from a revoke handler, which can arrive at
  // interrupt level on an arbitrary fiber): it deallocates up to `n`
  // invalid or clean slots' frames, shrinking the cache but keeping at
  // least one slot. Returns the number released.
  uint32_t ReleaseCleanFrames(uint32_t n);
  // The blocking half, run on the owner's own fiber: slots whose frames
  // were taken by the abort protocol get replacement frames (contents
  // lost — the next GetBlock re-reads) or are dropped when no frame is
  // available. Returns the number of slots affected.
  uint32_t RepairAfterRepossession(std::span<const hw::PageId> taken);
  size_t slot_count() const { return slots_.size(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t io_retries() const { return io_retries_; }
  uint32_t extent_blocks() const { return extent_.blocks; }

 private:
  static constexpr int kMaxIoAttempts = 8;

  BlockCache(Process& proc, const aegis::Aegis::DiskExtentGrant& extent)
      : proc_(proc), extent_(extent) {}

  size_t PickVictim() const;
  Status WriteBack(size_t slot);
  // One block transfer, retried with exponential backoff on transient
  // media errors (kErrIo); any other failure is immediately fatal.
  Status Transfer(uint32_t block, size_t slot, bool write);

  Process& proc_;
  aegis::Aegis::DiskExtentGrant extent_;
  std::vector<Slot> slots_;
  std::vector<hw::PageId> frames_;
  std::vector<cap::Capability> frame_caps_;
  Policy policy_ = Policy::kLru;
  VictimPicker picker_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t io_retries_ = 0;
};

// A victim picker for scan-heavy workloads: metadata blocks (block id
// below `metadata_blocks`) are pinned while any data block is resident;
// data blocks are evicted most-recently-used first, which keeps a stable
// prefix of a looping scan resident (the Cao et al. pattern). Exactly the
// kind of policy a kernel could never guess and an application trivially
// knows.
BlockCache::VictimPicker MakeScanAwarePicker(uint32_t metadata_blocks);

// A file handle: the inode index.
using FileHandle = uint32_t;

class LibFs {
 public:
  static constexpr uint32_t kMagic = 0x1f51995;
  static constexpr uint32_t kMaxInodes = 64;
  static constexpr uint32_t kDirectBlocks = 12;
  static constexpr uint32_t kMaxFileBytes = kDirectBlocks * hw::kPageBytes;
  static constexpr uint32_t kMaxNameBytes = 27;  // NUL-terminated in 28.
  static constexpr uint32_t kDefaultJournalBlocks = 8;
  // Largest transaction: superblock + directory + inode table.
  static constexpr uint32_t kMaxTxnBlocks = 3;

  struct Options {
    size_t cache_slots = 8;
    // Journal region size in blocks; 0 disables journaling entirely (the
    // pre-journal write-back LibFS, kept as the ablation baseline). Must
    // leave room for at least one transaction (kMaxTxnBlocks + 2).
    uint32_t journal_blocks = kDefaultJournalBlocks;
  };

  // Formats a fresh file system on `extent` and returns it, with a cache
  // of `cache_slots` blocks.
  static Result<std::unique_ptr<LibFs>> Format(Process& proc,
                                               const aegis::Aegis::DiskExtentGrant& extent,
                                               size_t cache_slots);
  static Result<std::unique_ptr<LibFs>> Format(Process& proc,
                                               const aegis::Aegis::DiskExtentGrant& extent,
                                               const Options& options);
  // Mounts an existing file system: validates the superblock, then replays
  // every committed journal transaction and discards torn/uncommitted
  // tails by checksum (journal geometry comes from the superblock).
  static Result<std::unique_ptr<LibFs>> Mount(Process& proc,
                                              const aegis::Aegis::DiskExtentGrant& extent,
                                              size_t cache_slots);

  Result<FileHandle> Create(std::string_view name);
  Result<FileHandle> Open(std::string_view name);
  Result<uint32_t> FileSize(FileHandle file);

  // Positional read/write. Reads return the byte count actually read
  // (short at EOF); writes extend the file up to kMaxFileBytes.
  Result<uint32_t> Read(FileHandle file, uint32_t offset, std::span<uint8_t> out);
  Status Write(FileHandle file, uint32_t offset, std::span<const uint8_t> data);

  // Durability point: flushes the cache, issues a disk barrier, and (when
  // journaling) checkpoints — every committed transaction is now home and
  // durable, so the journal head rewinds to the start of the region.
  Status Sync();

  // Structural self-check: superblock sanity, allocator bounds, inode
  // sizes vs. direct blocks, no doubly-used data blocks, directory entries
  // referencing exactly the used inodes. Returns kErrBadState (and sets
  // fsck_error()) on the first violation.
  Status Fsck();
  const std::string& fsck_error() const { return fsck_error_; }

  // Repairs after an abort-protocol repossession: marks the journal's raw
  // DMA frame for lazy re-allocation if it was taken, and forwards to the
  // cache. Returns the number of frames/slots affected.
  uint32_t RepairAfterRepossession(std::span<const hw::PageId> taken);

  BlockCache& cache() { return *cache_; }

  bool journaled() const { return journal_blocks_ > 0; }
  uint32_t data_start() const { return data_start_; }
  uint64_t txns_committed() const { return txns_committed_; }
  uint64_t txns_replayed() const { return txns_replayed_; }
  uint64_t journal_block_writes() const { return journal_block_writes_; }
  uint64_t barriers_issued() const { return barriers_issued_; }
  uint64_t checkpoints() const { return checkpoints_; }

 private:
  LibFs(Process& proc, const aegis::Aegis::DiskExtentGrant& extent,
        std::unique_ptr<BlockCache> cache)
      : proc_(proc), extent_(extent), cache_(std::move(cache)) {}

  struct Inode {
    uint32_t used = 0;
    uint32_t size = 0;
    uint32_t direct[kDirectBlocks] = {};
  };

  // One staged metadata block: the image CommitTxn will journal and then
  // let into the cache. Staging keeps the write-ahead rule honest — the
  // cache (whose evictions write home locations) never sees uncommitted
  // metadata.
  struct TxnBlock {
    uint32_t block = 0;
    std::vector<uint8_t> bytes;
  };

  Result<Inode> LoadInode(FileHandle file);

  // --- Journal machinery ---
  // Stages `block` for the current transaction (copying its present
  // contents); returns the mutable image. Idempotent per block.
  Result<std::span<uint8_t>> TxnStage(uint32_t block);
  // Journals the staged images (descriptor + payloads + commit + barrier),
  // then applies them to the cache. With journaling off, just applies.
  Status CommitTxn();
  void AbortTxn() { txn_.clear(); }
  // Flush + barrier + journal-head rewind (all committed txns are home).
  Status Checkpoint();
  // Journal replay at mount: applies committed transactions in txn-id
  // order, stops at the first invalid/torn/uncommitted record.
  Status ReplayJournal();
  Status Barrier();
  // Raw block I/O through the dedicated journal frame, bypassing the
  // cache (journal blocks must never alias cache slots). Retries
  // transient kErrIo like BlockCache::Transfer.
  Status RawWrite(uint32_t block, std::span<const uint8_t> bytes);
  Status RawRead(uint32_t block, std::span<uint8_t> out);
  Status AllocRawFrame();

  static constexpr uint32_t kSuperBlock = 0;
  static constexpr uint32_t kDirBlock = 1;
  static constexpr uint32_t kInodeBlock = 2;
  static constexpr uint32_t kJournalStart = 3;

  Process& proc_;
  aegis::Aegis::DiskExtentGrant extent_;
  std::unique_ptr<BlockCache> cache_;

  uint32_t journal_blocks_ = 0;
  uint32_t data_start_ = kJournalStart;
  uint32_t journal_head_ = 0;  // Next free block, relative to kJournalStart.
  uint32_t next_txn_id_ = 1;
  std::vector<TxnBlock> txn_;          // Staged images of the open txn.
  std::vector<uint8_t> scratch_;       // One-block build buffer.
  hw::PageId raw_frame_ = 0;           // Journal DMA frame (cache-bypassing).
  bool raw_frame_ok_ = false;

  uint64_t txns_committed_ = 0;
  uint64_t txns_replayed_ = 0;
  uint64_t journal_block_writes_ = 0;
  uint64_t barriers_issued_ = 0;
  uint64_t checkpoints_ = 0;
  std::string fsck_error_;
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_FS_H_
