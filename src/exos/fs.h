// LibFS: a library file system with application-controlled caching.
//
// The paper's §2 motivates exokernels with storage: "database implementors
// must struggle to emulate random-access record storage on top of file
// systems" (Stonebraker [47]) and "application-level control over file
// caching can reduce application running time by 45%" (Cao et al. [10]).
// Here the *entire* file system is library code on top of Aegis's
// capability-protected disk extents: layout, metadata, and — crucially —
// the block-cache replacement policy are all application choices. The
// db_scan example and bench_abl_file_cache reproduce the Cao-style win by
// swapping LRU for an application-chosen policy, with zero kernel change.
//
// On-extent layout (4 KB blocks):
//   block 0 — superblock: magic, next free data block
//   block 1 — root directory: 128 entries of {28-byte name, inode index}
//   block 2 — inode table: 64 inodes of {used, size, 12 direct blocks}
//   block 3+ — data
#ifndef XOK_SRC_EXOS_FS_H_
#define XOK_SRC_EXOS_FS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "src/exos/process.h"

namespace xok::exos {

// A write-back block cache over one disk extent, with a pluggable
// replacement policy. Slots are frames the application owns.
class BlockCache {
 public:
  enum class Policy : uint8_t {
    kLru,     // The fixed policy a traditional kernel would impose.
    kMru,     // Evict most-recently-used: optimal-ish for looping scans.
    kCustom,  // Application-provided victim picker.
  };

  struct Slot {
    uint32_t block = 0;      // Extent-relative block number.
    bool valid = false;
    bool dirty = false;
    uint64_t last_use = 0;   // For LRU/MRU bookkeeping.
  };

  // Picks the victim slot index given the slot table.
  using VictimPicker = std::function<size_t(std::span<const Slot>)>;

  // Allocates `slots` cache frames inside `proc`'s environment.
  static Result<std::unique_ptr<BlockCache>> Create(Process& proc,
                                                    const aegis::Aegis::DiskExtentGrant& extent,
                                                    size_t slots);

  void set_policy(Policy policy) { policy_ = policy; }
  void set_victim_picker(VictimPicker picker) {
    picker_ = std::move(picker);
    policy_ = Policy::kCustom;
  }

  // Returns the cached bytes of `block`, reading it in (and evicting a
  // victim) on a miss. The span is valid until the next GetBlock call.
  // `for_write` marks the block dirty.
  Result<std::span<uint8_t>> GetBlock(uint32_t block, bool for_write);

  // Writes every dirty block back to the extent.
  Status Flush();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t io_retries() const { return io_retries_; }
  uint32_t extent_blocks() const { return extent_.blocks; }

 private:
  static constexpr int kMaxIoAttempts = 8;

  BlockCache(Process& proc, const aegis::Aegis::DiskExtentGrant& extent)
      : proc_(proc), extent_(extent) {}

  size_t PickVictim() const;
  Status WriteBack(size_t slot);
  // One block transfer, retried with exponential backoff on transient
  // media errors (kErrIo); any other failure is immediately fatal.
  Status Transfer(uint32_t block, size_t slot, bool write);

  Process& proc_;
  aegis::Aegis::DiskExtentGrant extent_;
  std::vector<Slot> slots_;
  std::vector<hw::PageId> frames_;
  std::vector<cap::Capability> frame_caps_;
  Policy policy_ = Policy::kLru;
  VictimPicker picker_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t io_retries_ = 0;
};

// A victim picker for scan-heavy workloads: metadata blocks (block id
// below `metadata_blocks`) are pinned while any data block is resident;
// data blocks are evicted most-recently-used first, which keeps a stable
// prefix of a looping scan resident (the Cao et al. pattern). Exactly the
// kind of policy a kernel could never guess and an application trivially
// knows.
BlockCache::VictimPicker MakeScanAwarePicker(uint32_t metadata_blocks);

// A file handle: the inode index.
using FileHandle = uint32_t;

class LibFs {
 public:
  static constexpr uint32_t kMagic = 0x1f51995;
  static constexpr uint32_t kMaxInodes = 64;
  static constexpr uint32_t kDirectBlocks = 12;
  static constexpr uint32_t kMaxFileBytes = kDirectBlocks * hw::kPageBytes;
  static constexpr uint32_t kMaxNameBytes = 27;  // NUL-terminated in 28.

  // Formats a fresh file system on `extent` and returns it, with a cache
  // of `cache_slots` blocks.
  static Result<std::unique_ptr<LibFs>> Format(Process& proc,
                                               const aegis::Aegis::DiskExtentGrant& extent,
                                               size_t cache_slots);
  // Mounts an existing file system (validates the superblock).
  static Result<std::unique_ptr<LibFs>> Mount(Process& proc,
                                              const aegis::Aegis::DiskExtentGrant& extent,
                                              size_t cache_slots);

  Result<FileHandle> Create(std::string_view name);
  Result<FileHandle> Open(std::string_view name);
  Result<uint32_t> FileSize(FileHandle file);

  // Positional read/write. Reads return the byte count actually read
  // (short at EOF); writes extend the file up to kMaxFileBytes.
  Result<uint32_t> Read(FileHandle file, uint32_t offset, std::span<uint8_t> out);
  Status Write(FileHandle file, uint32_t offset, std::span<const uint8_t> data);

  Status Sync() { return cache_->Flush(); }

  BlockCache& cache() { return *cache_; }

 private:
  LibFs(Process& proc, std::unique_ptr<BlockCache> cache)
      : proc_(proc), cache_(std::move(cache)) {}

  struct Inode {
    uint32_t used = 0;
    uint32_t size = 0;
    uint32_t direct[kDirectBlocks] = {};
  };

  Result<Inode> LoadInode(FileHandle file);
  Status StoreInode(FileHandle file, const Inode& inode);
  Result<uint32_t> AllocDataBlock();

  static constexpr uint32_t kSuperBlock = 0;
  static constexpr uint32_t kDirBlock = 1;
  static constexpr uint32_t kInodeBlock = 2;
  static constexpr uint32_t kDataStart = 3;

  Process& proc_;
  std::unique_ptr<BlockCache> cache_;
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_FS_H_
