#include "src/exos/vm.h"

#include <memory>

namespace xok::exos {

using aegis::ExcAction;
using hw::Instr;

namespace {
// Application-level path lengths (ExOS code, charged to the env).
constexpr uint64_t kPtLookup = Instr(8);    // Two indexed loads + checks.
constexpr uint64_t kPtUpdate = Instr(6);    // Flag updates.
constexpr uint64_t kHandlerGlue = Instr(10);  // Trampoline into user handler.
}  // namespace

Pte* Vm::TableLookup(hw::Vpn vpn) {
  return kind_ == PageTableKind::kInverted ? inverted_->Lookup(vpn) : table_.Lookup(vpn);
}

Pte& Vm::TableLookupOrCreate(hw::Vpn vpn) {
  return kind_ == PageTableKind::kInverted ? inverted_->LookupOrCreate(vpn)
                                           : table_.LookupOrCreate(vpn);
}

size_t Vm::table_footprint_bytes() const {
  if (kind_ == PageTableKind::kInverted) {
    return inverted_->footprint_bytes();
  }
  // Two-level: the L1 array plus every populated L2 block.
  size_t bytes = (1u << PageTable::kL1Bits) * sizeof(void*);
  // PageTable does not expose its internals; estimate via present walk.
  // Each populated L2 holds kL2Entries PTEs.
  std::vector<bool> l2_seen(1u << PageTable::kL1Bits, false);
  const_cast<Vm*>(this)->table_.ForEachPresent([&](hw::Vpn vpn, Pte&) {
    l2_seen[vpn >> PageTable::kL2Bits] = true;
  });
  for (bool seen : l2_seen) {
    if (seen) {
      bytes += PageTable::kL2Entries * sizeof(Pte);
    }
  }
  return bytes;
}

Status Vm::Map(hw::Vaddr va, Prot prot) {
  kernel_.machine().Charge(kPtLookup + kPtUpdate);
  Pte& pte = TableLookupOrCreate(hw::VpnOf(va));
  if (pte.present) {
    return Status::kErrAlreadyExists;
  }
  Result<aegis::PageGrant> grant = kernel_.SysAllocPage();
  if (!grant.ok()) {
    return grant.status();
  }
  // Zero-fill: the kernel hands out frames with their previous contents
  // (it implements no policy, including no scrubbing); the library OS
  // zeroes through its own write binding. Charged as a full-page store
  // loop; performed via the frame span for simulator efficiency.
  kernel_.machine().Charge(hw::kMemWordCopy * (hw::kPageBytes / 4));
  auto frame_bytes = kernel_.machine().mem().PageSpan(grant->page);
  std::fill(frame_bytes.begin(), frame_bytes.end(), uint8_t{0});
  pte.present = true;
  pte.prot = prot;
  pte.dirty = false;
  pte.frame = grant->page;
  pte.cap = grant->cap;
  return Status::kOk;
}

Status Vm::MapExternal(hw::Vaddr va, hw::PageId frame, const cap::Capability& frame_cap,
                       Prot prot) {
  kernel_.machine().Charge(kPtLookup + kPtUpdate);
  Pte& pte = TableLookupOrCreate(hw::VpnOf(va));
  if (pte.present) {
    return Status::kErrAlreadyExists;
  }
  pte.present = true;
  pte.prot = prot;
  pte.dirty = true;  // Shared buffers opt out of first-store dirty traps.
  pte.frame = frame;
  pte.cap = frame_cap;
  // Install eagerly; later TLB evictions refault through the page table.
  return InstallMapping(va, pte);
}

Status Vm::Unmap(hw::Vaddr va) {
  kernel_.machine().Charge(kPtLookup + kPtUpdate);
  Pte* pte = TableLookup(hw::VpnOf(va));
  if (pte == nullptr || !pte->present) {
    return Status::kErrNotFound;
  }
  const Status status = kernel_.SysDeallocPage(pte->frame, pte->cap);
  pte->present = false;
  (void)kernel_.SysTlbInvalidate(va);
  return status;
}

Status Vm::Protect(hw::Vaddr va, uint32_t pages, Prot prot) {
  // Update our own page table first (pure application work)...
  for (uint32_t i = 0; i < pages; ++i) {
    const hw::Vaddr page_va = va + i * hw::kPageBytes;
    kernel_.machine().Charge(kPtLookup + kPtUpdate);
    Pte* pte = TableLookup(hw::VpnOf(page_va));
    if (pte == nullptr || !pte->present) {
      return Status::kErrNotFound;
    }
    pte->prot = prot;
  }
  // ...then drop the cached hardware mappings in one batched kernel
  // crossing so the next access re-faults through the new protection.
  return kernel_.SysTlbInvalidateRange(va, pages);
}

Result<bool> Vm::Dirty(hw::Vaddr va) {
  kernel_.machine().Charge(kPtLookup);
  Pte* pte = TableLookup(hw::VpnOf(va));
  if (pte == nullptr || !pte->present) {
    return Status::kErrNotFound;
  }
  return pte->dirty;
}

Status Vm::Clean(hw::Vaddr va) {
  kernel_.machine().Charge(kPtLookup + kPtUpdate);
  Pte* pte = TableLookup(hw::VpnOf(va));
  if (pte == nullptr || !pte->present) {
    return Status::kErrNotFound;
  }
  pte->dirty = false;
  return kernel_.SysTlbInvalidate(va);  // Re-arm the first-store trap.
}

Status Vm::InstallMapping(hw::Vaddr va, Pte& pte) {
  const bool writable = pte.prot == kProtWrite && pte.dirty;
  return kernel_.SysTlbWrite(va, pte.frame, writable, pte.cap);
}

ExcAction Vm::HandleException(const hw::TrapFrame& frame) {
  const bool is_store = frame.store || frame.type == hw::ExceptionType::kTlbModify;
  kernel_.machine().Charge(kPtLookup);
  Pte* pte = TableLookup(hw::VpnOf(frame.bad_vaddr));

  if (pte == nullptr || !pte->present) {
    if (!demand_zero_) {
      return ExcAction::kSkip;
    }
    kernel_.machine().Charge(kPtUpdate);
    if (Map(frame.bad_vaddr, kProtWrite) != Status::kOk) {
      return ExcAction::kSkip;
    }
    pte = TableLookup(hw::VpnOf(frame.bad_vaddr));
    if (pte == nullptr) {
      return ExcAction::kSkip;
    }
  }

  // Application-chosen protection faults go to the user-level handler
  // (this is the Appel–Li "trap" path).
  const bool denied = pte->prot == kProtNone || (is_store && pte->prot != kProtWrite);
  if (denied) {
    if (!trap_handler_) {
      return ExcAction::kSkip;
    }
    ++user_traps_;
    kernel_.machine().Charge(kHandlerGlue);
    if (!trap_handler_(frame.bad_vaddr, is_store)) {
      return ExcAction::kSkip;
    }
    // The handler usually unprotected something; re-evaluate this fault.
    kernel_.machine().Charge(kPtLookup);
    pte = TableLookup(hw::VpnOf(frame.bad_vaddr));
    if (pte == nullptr || !pte->present || pte->prot == kProtNone ||
        (is_store && pte->prot != kProtWrite)) {
      return ExcAction::kSkip;
    }
  }

  if (is_store) {
    kernel_.machine().Charge(kPtUpdate);
    pte->dirty = true;  // Software dirty bit: set on the first store.
  }
  return InstallMapping(frame.bad_vaddr, *pte) == Status::kOk ? ExcAction::kRetry
                                                              : ExcAction::kSkip;
}

void Vm::ReleaseAll() {
  TableForEachPresent([&](hw::Vpn vpn, Pte& pte) {
    (void)kernel_.SysDeallocPage(pte.frame, pte.cap);
    (void)kernel_.SysTlbInvalidate(vpn << hw::kPageShift);
    pte.present = false;
  });
}

uint32_t Vm::ReleasePages(uint32_t n) {
  std::vector<hw::Vpn> clean;
  std::vector<hw::Vpn> dirty;
  TableForEachPresent([&](hw::Vpn vpn, Pte& pte) {
    (pte.dirty ? dirty : clean).push_back(vpn);
  });
  uint32_t released = 0;
  auto release_from = [&](const std::vector<hw::Vpn>& list) {
    for (const hw::Vpn vpn : list) {
      if (released == n) {
        return;
      }
      if (Unmap(vpn << hw::kPageShift) == Status::kOk) {
        ++released;
      }
    }
  };
  release_from(clean);
  release_from(dirty);
  return released;
}

void Vm::RepairAfterRepossession(std::span<const hw::PageId> taken) {
  TableForEachPresent([&](hw::Vpn vpn, Pte& pte) {
    (void)vpn;
    for (const hw::PageId page : taken) {
      if (pte.frame == page) {
        pte.present = false;  // The binding is gone; refault will re-map.
      }
    }
  });
}

}  // namespace xok::exos
