// Per-request critical-path tracing, built entirely in library space.
//
// The kernel's contribution is deliberately dumb: fixed-format xtrace
// records with cycle stamps (kDpfMatch carrying a library-programmed
// correlation tag in arg3, kDiskSubmit/kDiskComplete carrying request ids,
// kAppMark carrying whatever the app said). This library owns all the
// policy: which marks mean what, how records join into a request, where
// one stage ends and the next begins. That split is the exokernel story
// one more time — Dapper-style causal tracing without a tracing subsystem
// in the kernel.
//
// Join model. Every record that mentions a request carries the request id:
//   - the client's first-send mark        (kAppMark, phase kPhaseClientSend)
//   - the demux match                     (kDpfMatch, arg3 tag = req id)
//   - the worker's enter mark             (kAppMark, phase kPhaseEnter)
//   - the worker's stage marks            (kAppMark, phase kPhaseStage)
//   - the worker's exit mark              (kAppMark, phase kPhaseExit)
//   - the client's ack mark               (kAppMark, phase kPhaseClientAck)
// Disk records join indirectly: the worker env that holds a request open
// (enter seen, exit not yet) owns any kDiskSubmit it issues, and the disk
// request id (arg2/arg0) pairs submit with complete.
//
// Spans telescope between consecutive *observed* boundaries, so a missing
// mark (a shed request never parses; an ASH request never enters a worker)
// widens the neighboring span instead of losing time: the observed spans
// of a complete timeline always sum to exactly last-first boundary, which
// is what makes the >=90% attribution contract checkable against the
// client's own first-send->ack latency measurement.
#ifndef XOK_EXOS_REQTRACE_H_
#define XOK_EXOS_REQTRACE_H_

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/xtrace.h"

namespace xok::exos::reqtrace {

// --- The kAppMark convention (arg1 = phase) ---
// The kernel does not interpret these; they are the server/loadgen wire
// protocol for SysTraceMark, documented centrally here and in xtrace.h.
inline constexpr uint32_t kPhaseEnter = 0;       // arg2=shard, arg3=req bytes.
inline constexpr uint32_t kPhaseExit = 1;        // arg2=status,
                                                 // arg3=resp bytes|flags<<16.
inline constexpr uint32_t kPhaseStage = 2;       // arg2=stage id, arg3=depth.
inline constexpr uint32_t kPhaseClientSend = 3;  // First send only.
inline constexpr uint32_t kPhaseClientAck = 4;   // arg2=status.

// Stage ids carried in arg2 of a kPhaseStage mark.
inline constexpr uint32_t kStageParsed = 1;  // Envelope + HTTP parse done.
inline constexpr uint32_t kStageStored = 2;  // KV/journal (incl. disk) done.

// Request-class flag bits in the high half of an exit mark's arg3 (the low
// half is the response byte count).
inline constexpr uint32_t kFlagPut = 1u << 16;    // Parsed as a PUT.
inline constexpr uint32_t kFlagHot = 1u << 17;    // Key on the hot list.
inline constexpr uint32_t kFlagStale = 1u << 18;  // Served degraded/stale.

// --- Spans: the critical path in boundary order ---
enum class Span : uint8_t {
  kWire = 0,   // client send -> demux match (wire + NIC + classifier).
  kRingWait,   // demux match -> worker enter (ring residency + scheduling).
  kParse,      // enter -> parsed stage (admission + envelope + HTTP parse).
  kStore,      // parsed -> stored stage (KV/journal, including disk waits).
  kTx,         // stored -> exit (response build + TX queue).
  kAck,        // exit -> client ack (doorbell flush + wire + client poll).
  kCount,
};
inline constexpr uint32_t kSpanCount = static_cast<uint32_t>(Span::kCount);
const char* SpanName(Span s);

// --- Request classes for per-class aggregation ---
enum class Class : uint8_t {
  kAll = 0,
  kGet,    // Parsed GETs (excludes sheds).
  kPut,    // Parsed PUTs (excludes sheds).
  kHot,    // Hot-list keys, including ASH fast-path answers.
  kStale,  // Served degraded (stale snapshot under overload).
  kShed,   // 503s: admission/overload sheds.
  kCount,
};
inline constexpr uint32_t kClassCount = static_cast<uint32_t>(Class::kCount);
const char* ClassName(Class c);

// One assembled request: the joined, ordered view of every record that
// mentioned this request id.
struct RequestTimeline {
  uint32_t req_id = 0;
  uint16_t env = 0;      // Worker env (0 for pure-ASH timelines).
  uint32_t shard = 0;
  uint32_t status = 0;   // From the exit mark (or client ack for ASH).
  uint32_t flags = 0;    // kFlag* bits from the exit mark.
  uint8_t path = 0xff;   // Delivery path from kDpfMatch (0xff = unobserved).
  uint64_t span[kSpanCount] = {};   // Cycles; meaningful iff seen[i].
  bool seen[kSpanCount] = {};
  uint64_t disk_cycles = 0;  // Submit->complete waits inside kStore.
  uint64_t disk_ios = 0;
  uint64_t first_cycle = 0;  // Earliest observed boundary.
  uint64_t last_cycle = 0;   // Latest observed boundary.
  bool complete = false;     // Closed by an ack (or exit without a send).

  // Sum of observed spans == last_cycle - first_cycle by construction.
  uint64_t Total() const;
  bool Is(Class c) const;
};

// Nearest-rank percentile over an ascending-sorted sample vector:
// rank = ceil(per_mille * n / 1000), clamped to [1, n]; returns
// sorted[rank - 1], or 0 when empty. p50 -> per_mille 500, p999 -> 999.
uint64_t Percentile(std::span<const uint64_t> sorted, uint32_t per_mille);

// Assembles a stream of xtrace records into request timelines and
// per-(class, span) aggregates. Feed it records in ring order (Add), or a
// whole post-mortem region decode at once. Works the same whether the
// records came from a live TraceSession drain or DecodeRegion after a
// crash — that is the flight-recorder property: the last K complete
// timelines survive in the ring pages and reassemble after the fact.
class Collector {
 public:
  struct Options {
    size_t keep_last = 32;  // Flight-recorder depth (complete timelines).
    bool keep_all = false;  // Also retain every complete timeline.
  };

  Collector() : Collector(Options{}) {}
  explicit Collector(Options options) : options_(options) {}

  void Add(const xtrace::Record& record);
  void AddAll(std::span<const xtrace::Record> records);

  // Flight recorder: the last keep_last completed timelines, oldest first.
  const std::deque<RequestTimeline>& recent() const { return recent_; }
  // Every completed timeline (keep_all only).
  const std::vector<RequestTimeline>& all() const { return all_; }
  // Most recent completed timeline for `req_id` (nullptr if none). Only
  // timelines retained by the flight recorder / keep_all are searchable.
  const RequestTimeline* Find(uint32_t req_id) const;

  uint64_t completed(Class c) const {
    return completed_[static_cast<uint32_t>(c)];
  }
  // Requests observed but never closed (e.g. cut off by a crash).
  uint64_t incomplete() const { return pending_.size(); }

  const xtrace::LatencyHist& hist(Class c, Span s) const {
    return hist_[static_cast<uint32_t>(c)][static_cast<uint32_t>(s)];
  }
  // Raw samples (arrival order, NOT sorted): per-(class, span) cycles and
  // per-class covered totals (sum of observed spans per request).
  const std::vector<uint64_t>& samples(Class c, Span s) const {
    return samples_[static_cast<uint32_t>(c)][static_cast<uint32_t>(s)];
  }
  const std::vector<uint64_t>& covered(Class c) const {
    return covered_[static_cast<uint32_t>(c)];
  }

 private:
  // Boundary slots in path order; span i spans boundary i -> i+1.
  enum Boundary : uint32_t {
    kBSend = 0, kBDemux, kBEnter, kBParsed, kBStored, kBExit, kBAck,
    kBoundaryCount,
  };
  struct Pending {
    uint64_t at[kBoundaryCount] = {};
    bool has[kBoundaryCount] = {};
    uint16_t env = 0;
    uint32_t shard = 0;
    uint32_t status = 0;
    uint32_t flags = 0;
    uint8_t path = 0xff;
    uint64_t disk_cycles = 0;
    uint64_t disk_ios = 0;
  };

  void Finalize(uint32_t req_id, Pending& p);
  void Retain(RequestTimeline&& timeline);

  Options options_;
  std::unordered_map<uint32_t, Pending> pending_;
  // env -> request currently open in that worker (enter seen, exit not):
  // the join key for disk records, which carry no request id of their own.
  std::unordered_map<uint16_t, uint32_t> open_by_env_;
  struct DiskIo {
    uint32_t req_id = 0;
    uint64_t submit_cycle = 0;
  };
  std::unordered_map<uint32_t, DiskIo> disk_inflight_;  // By disk request id.

  std::deque<RequestTimeline> recent_;
  std::vector<RequestTimeline> all_;
  uint64_t completed_[kClassCount] = {};
  xtrace::LatencyHist hist_[kClassCount][kSpanCount];
  std::vector<uint64_t> samples_[kClassCount][kSpanCount];
  std::vector<uint64_t> covered_[kClassCount];
};

// One-shot post-mortem assembly: DecodeRegion output in, every complete
// timeline out (oldest first).
std::vector<RequestTimeline> AssembleTimelines(
    std::span<const xtrace::Record> records);

// Multi-line human rendering of one timeline (the flight-recorder print).
std::string FormatTimeline(const RequestTimeline& t);

}  // namespace xok::exos::reqtrace

#endif  // XOK_EXOS_REQTRACE_H_
