#include "src/exos/reqtrace.h"

#include <algorithm>
#include <cstdio>

namespace xok::exos::reqtrace {

const char* SpanName(Span s) {
  switch (s) {
    case Span::kWire:
      return "wire";
    case Span::kRingWait:
      return "ring-wait";
    case Span::kParse:
      return "parse";
    case Span::kStore:
      return "store";
    case Span::kTx:
      return "tx";
    case Span::kAck:
      return "ack";
    case Span::kCount:
      break;
  }
  return "?";
}

const char* ClassName(Class c) {
  switch (c) {
    case Class::kAll:
      return "all";
    case Class::kGet:
      return "get";
    case Class::kPut:
      return "put";
    case Class::kHot:
      return "hot";
    case Class::kStale:
      return "stale";
    case Class::kShed:
      return "shed";
    case Class::kCount:
      break;
  }
  return "?";
}

uint64_t RequestTimeline::Total() const {
  uint64_t total = 0;
  for (uint32_t i = 0; i < kSpanCount; ++i) {
    if (seen[i]) {
      total += span[i];
    }
  }
  return total;
}

bool RequestTimeline::Is(Class c) const {
  const bool shed = status == 503;
  switch (c) {
    case Class::kAll:
      return true;
    case Class::kGet:
      return !shed && (flags & kFlagPut) == 0;
    case Class::kPut:
      return !shed && (flags & kFlagPut) != 0;
    case Class::kHot:
      // ASH fast-path answers never reach a worker, so they carry no exit
      // flags — the delivery path itself is the hot-class witness.
      return (flags & kFlagHot) != 0 || path == 2;
    case Class::kStale:
      return (flags & kFlagStale) != 0;
    case Class::kShed:
      return shed;
    case Class::kCount:
      break;
  }
  return false;
}

uint64_t Percentile(std::span<const uint64_t> sorted, uint32_t per_mille) {
  if (sorted.empty()) {
    return 0;
  }
  const uint64_t n = sorted.size();
  uint64_t rank = (static_cast<uint64_t>(per_mille) * n + 999) / 1000;
  rank = std::max<uint64_t>(1, std::min(rank, n));
  return sorted[rank - 1];
}

void Collector::Add(const xtrace::Record& record) {
  const auto type = static_cast<xtrace::Event>(record.type);
  switch (type) {
    case xtrace::Event::kDpfMatch: {
      const uint32_t req_id = record.arg3;  // Library-programmed tag.
      if (req_id == 0) {
        return;  // Untagged binding (or a frame too short to tag).
      }
      Pending& p = pending_[req_id];
      // First accepted frame only: demux drops carry no tag, so the first
      // kDpfMatch we see is the copy the request was actually served from
      // (retransmit matches after worker pickup are duplicates — ignored).
      if (!p.has[kBDemux] && !p.has[kBEnter]) {
        p.at[kBDemux] = record.cycle;
        p.has[kBDemux] = true;
        p.path = static_cast<uint8_t>(record.arg2);
      }
      return;
    }
    case xtrace::Event::kAppMark: {
      const uint32_t req_id = record.arg0;
      switch (record.arg1) {
        case kPhaseEnter: {
          Pending& p = pending_[req_id];
          if (!p.has[kBEnter]) {
            p.at[kBEnter] = record.cycle;
            p.has[kBEnter] = true;
            p.env = record.env;
            p.shard = record.arg2;
            open_by_env_[record.env] = req_id;
          }
          return;
        }
        case kPhaseStage: {
          Pending& p = pending_[req_id];
          const uint32_t boundary = record.arg2 == kStageParsed  ? kBParsed
                                    : record.arg2 == kStageStored ? kBStored
                                                                  : kBoundaryCount;
          if (boundary != kBoundaryCount && !p.has[boundary]) {
            p.at[boundary] = record.cycle;
            p.has[boundary] = true;
          }
          return;
        }
        case kPhaseExit: {
          auto it = pending_.find(req_id);
          if (it == pending_.end()) {
            return;  // Enter lapped out of the ring: nothing to close.
          }
          Pending& p = it->second;
          if (!p.has[kBExit]) {
            p.at[kBExit] = record.cycle;
            p.has[kBExit] = true;
            p.status = record.arg2;
            p.flags = record.arg3 & 0xffff0000u;
          }
          auto open = open_by_env_.find(record.env);
          if (open != open_by_env_.end() && open->second == req_id) {
            open_by_env_.erase(open);
          }
          // No client send mark: nobody downstream will ack — close now.
          if (!p.has[kBSend]) {
            Finalize(req_id, p);
            pending_.erase(it);
          }
          return;
        }
        case kPhaseClientSend: {
          Pending& p = pending_[req_id];
          if (!p.has[kBSend]) {
            p.at[kBSend] = record.cycle;
            p.has[kBSend] = true;
          }
          return;
        }
        case kPhaseClientAck: {
          auto it = pending_.find(req_id);
          if (it == pending_.end()) {
            return;
          }
          Pending& p = it->second;
          if (!p.has[kBAck]) {
            p.at[kBAck] = record.cycle;
            p.has[kBAck] = true;
            if (!p.has[kBExit]) {
              p.status = record.arg2;  // ASH answers: no worker exit mark.
            }
          }
          Finalize(req_id, p);
          pending_.erase(it);
          return;
        }
        default:
          return;
      }
    }
    case xtrace::Event::kDiskSubmit: {
      // Disk records carry no request id; the worker env that has a
      // request open owns every IO it submits until the exit mark.
      auto open = open_by_env_.find(record.env);
      if (open != open_by_env_.end()) {
        disk_inflight_[record.arg2] = DiskIo{open->second, record.cycle};
      }
      return;
    }
    case xtrace::Event::kDiskComplete: {
      auto io = disk_inflight_.find(record.arg0);
      if (io == disk_inflight_.end()) {
        return;  // Journal-sync or preload IO outside any open request.
      }
      auto it = pending_.find(io->second.req_id);
      if (it != pending_.end() && record.cycle >= io->second.submit_cycle) {
        it->second.disk_cycles += record.cycle - io->second.submit_cycle;
        ++it->second.disk_ios;
      }
      disk_inflight_.erase(io);
      return;
    }
    default:
      return;
  }
}

void Collector::AddAll(std::span<const xtrace::Record> records) {
  for (const xtrace::Record& record : records) {
    Add(record);
  }
}

void Collector::Finalize(uint32_t req_id, Pending& p) {
  RequestTimeline t;
  t.req_id = req_id;
  t.env = p.env;
  t.shard = p.shard;
  t.status = p.status;
  t.flags = p.flags;
  t.path = p.path;
  t.disk_cycles = p.disk_cycles;
  t.disk_ios = p.disk_ios;
  t.complete = true;

  // Telescope spans between consecutive observed boundaries: a missing
  // boundary folds its time into the span that ends at the next observed
  // one, so observed spans always sum to exactly last - first.
  uint64_t prev = 0;
  bool have_prev = false;
  for (uint32_t b = 0; b < kBoundaryCount; ++b) {
    if (!p.has[b]) {
      continue;
    }
    if (!have_prev) {
      t.first_cycle = p.at[b];
      have_prev = true;
    } else {
      const uint32_t span_idx = b - 1;  // Span i runs boundary i -> i+1.
      t.span[span_idx] = p.at[b] >= prev ? p.at[b] - prev : 0;
      t.seen[span_idx] = true;
    }
    prev = p.at[b];
    t.last_cycle = p.at[b];
  }

  for (uint32_t c = 0; c < kClassCount; ++c) {
    const Class cls = static_cast<Class>(c);
    if (!t.Is(cls)) {
      continue;
    }
    ++completed_[c];
    covered_[c].push_back(t.Total());
    for (uint32_t s = 0; s < kSpanCount; ++s) {
      if (t.seen[s]) {
        samples_[c][s].push_back(t.span[s]);
        hist_[c][s].Add(t.span[s]);
      }
    }
  }
  Retain(std::move(t));
}

void Collector::Retain(RequestTimeline&& timeline) {
  if (options_.keep_all) {
    all_.push_back(timeline);
  }
  recent_.push_back(std::move(timeline));
  while (recent_.size() > options_.keep_last) {
    recent_.pop_front();
  }
}

const RequestTimeline* Collector::Find(uint32_t req_id) const {
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (it->req_id == req_id) {
      return &*it;
    }
  }
  for (auto it = all_.rbegin(); it != all_.rend(); ++it) {
    if (it->req_id == req_id) {
      return &*it;
    }
  }
  return nullptr;
}

std::vector<RequestTimeline> AssembleTimelines(
    std::span<const xtrace::Record> records) {
  Collector collector(Collector::Options{.keep_last = 0, .keep_all = true});
  collector.AddAll(records);
  return collector.all();
}

std::string FormatTimeline(const RequestTimeline& t) {
  const char* path = t.path == 0   ? "queue"
                     : t.path == 1 ? "ring"
                     : t.path == 2 ? "ash"
                                   : "?";
  char line[192];
  std::snprintf(line, sizeof(line),
                "req %u status=%u env=%u shard=%u path=%s%s%s%s: %llu cycles"
                " end-to-end\n",
                t.req_id, t.status, t.env, t.shard, path,
                (t.flags & kFlagPut) != 0 ? " put" : " get",
                (t.flags & kFlagHot) != 0 || t.path == 2 ? " hot" : "",
                (t.flags & kFlagStale) != 0 ? " stale" : "",
                static_cast<unsigned long long>(t.Total()));
  std::string out = line;
  for (uint32_t s = 0; s < kSpanCount; ++s) {
    if (!t.seen[s]) {
      continue;
    }
    std::snprintf(line, sizeof(line), "    %-9s %10llu",
                  SpanName(static_cast<Span>(s)),
                  static_cast<unsigned long long>(t.span[s]));
    out += line;
    if (static_cast<Span>(s) == Span::kStore && t.disk_ios > 0) {
      std::snprintf(line, sizeof(line), "  (disk %llu cycles / %llu ios)",
                    static_cast<unsigned long long>(t.disk_cycles),
                    static_cast<unsigned long long>(t.disk_ios));
      out += line;
    }
    out += '\n';
  }
  return out;
}

}  // namespace xok::exos::reqtrace
