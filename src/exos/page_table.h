// ExOS's application-level page table.
//
// This is the paper's central demonstration: the page-table structure is
// *application code*. ExOS keeps a two-level table in its own memory;
// Aegis only sees TLB-write requests guarded by capabilities. Because the
// structure is ours, we can put anything in it — here: protection bits,
// software dirty bits (maintained by write-protecting clean pages and
// catching the first store), and the capability for each frame.
#ifndef XOK_SRC_EXOS_PAGE_TABLE_H_
#define XOK_SRC_EXOS_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>

#include "src/cap/capability.h"
#include "src/hw/trap.h"

namespace xok::exos {

// Application-chosen protection, orthogonal to residency.
enum Prot : uint8_t {
  kProtNone = 0,
  kProtRead = 1,
  kProtWrite = 2,  // Implies read for our purposes.
};

struct Pte {
  bool present = false;   // A frame is bound.
  uint8_t prot = kProtNone;
  bool dirty = false;     // Set on first store after a Clean().
  hw::PageId frame = 0;
  cap::Capability cap;    // Capability for `frame`.
};

class PageTable {
 public:
  static constexpr uint32_t kL1Bits = 10;
  static constexpr uint32_t kL2Bits = 10;
  static constexpr uint32_t kL2Entries = 1u << kL2Bits;

  // Returns the PTE for `vpn`, or nullptr if the second-level table was
  // never populated. Lookup cost is two indexed loads — this is what the
  // paper's `dirty` benchmark measures.
  Pte* Lookup(hw::Vpn vpn) {
    const std::unique_ptr<Level2>& l2 = l1_[vpn >> kL2Bits];
    if (l2 == nullptr) {
      return nullptr;
    }
    Pte& pte = l2->entries[vpn & (kL2Entries - 1)];
    return &pte;
  }

  // Returns the PTE for `vpn`, creating intermediate structures.
  Pte& LookupOrCreate(hw::Vpn vpn) {
    std::unique_ptr<Level2>& l2 = l1_[vpn >> kL2Bits];
    if (l2 == nullptr) {
      l2 = std::make_unique<Level2>();
    }
    return l2->entries[vpn & (kL2Entries - 1)];
  }

  // Visits every present mapping (teardown, revocation repair).
  template <typename Fn>
  void ForEachPresent(Fn&& fn) {
    for (uint32_t hi = 0; hi < l1_.size(); ++hi) {
      if (l1_[hi] == nullptr) {
        continue;
      }
      for (uint32_t lo = 0; lo < kL2Entries; ++lo) {
        Pte& pte = l1_[hi]->entries[lo];
        if (pte.present) {
          fn((hi << kL2Bits) | lo, pte);
        }
      }
    }
  }

 private:
  struct Level2 {
    std::array<Pte, kL2Entries> entries{};
  };

  std::array<std::unique_ptr<Level2>, 1u << kL1Bits> l1_{};
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_PAGE_TABLE_H_
