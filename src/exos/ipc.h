// ExOS IPC abstractions (paper §6.1): pipes, shared memory, and LRPC —
// all implemented in application space on Aegis primitives. Pipes are a
// shared-memory circular buffer with directed yields and block/wake;
// LRPC rides protected control transfer. The paper's point: because these
// are *library* code, applications can trade compatibility for speed
// (FastPipe drops the POSIX-emulation layer; tlrpc trusts the server to
// preserve callee-saved registers — §7.1).
#ifndef XOK_SRC_EXOS_IPC_H_
#define XOK_SRC_EXOS_IPC_H_

#include <cstdint>
#include <span>

#include "src/exos/process.h"

namespace xok::exos {

// A frame shared between cooperating processes: the creator allocates it
// and derives a grantable read-write capability that travels (as plain
// data) to the peer.
struct SharedBufferDesc {
  hw::PageId frame = 0;
  cap::Capability cap;  // kRead|kWrite|kGrant, for mapping and re-derive.
};

// Allocates a shared frame. Must run inside `owner`'s environment.
Result<SharedBufferDesc> CreateSharedBuffer(Process& owner);

// Maps a shared frame at `va` in the calling process. Must run inside
// `self`'s environment.
Status MapSharedBuffer(Process& self, const SharedBufferDesc& desc, hw::Vaddr va);

// --- Pipes ---
//
// Ring layout (32-bit words within one 4 KB page):
//   word 0: head (next read slot)       word 1: tail (next write slot)
//   word 2: reader-waiting flag         word 3: writer-waiting flag
//   word 4..1023: data slots (1020 words)
//
// Endpoints are symmetric objects bound to one process each; cooperating
// processes exchange the SharedBufferDesc and each other's environment
// capabilities at setup (ExOS's equivalent of inheriting fds).

struct PipePeer {
  aegis::EnvId env = aegis::kNoEnv;
  cap::Capability env_cap;
};

class PipeEndpoint {
 public:
  // `posix_emulation` adds the fd-layer costs of a compatible pipe
  // implementation (argument validation, fd table, SIGPIPE checks). The
  // paper's `pipe` row is the emulated version; `pipe'` (FastPipe) is the
  // native ring. Functionality is identical.
  PipeEndpoint(Process& self, hw::Vaddr ring_va, PipePeer peer, bool posix_emulation);

  // Writes one word; yields to the peer while the ring is full. Returns
  // kErrBadState (EPIPE) if the ring is full and the peer is dead.
  Status WriteWord(uint32_t value);
  // Reads one word; blocks (directed-yields first) while empty. Returns
  // kErrBadState if the ring is empty and the peer is dead.
  Result<uint32_t> ReadWord();

  // Byte-stream convenience built on the word ring: a length-prefixed
  // message per call.
  Status WriteMessage(std::span<const uint8_t> bytes);
  Result<uint32_t> ReadMessage(std::span<uint8_t> bytes);  // Returns length.

 private:
  static constexpr uint32_t kHeadOff = 0;
  static constexpr uint32_t kTailOff = 4;
  static constexpr uint32_t kReaderWaitOff = 8;
  static constexpr uint32_t kWriterWaitOff = 12;
  static constexpr uint32_t kDataOff = 16;
  static constexpr uint32_t kSlots = (hw::kPageBytes - kDataOff) / 4;

  uint32_t Load(uint32_t off);
  void Store(uint32_t off, uint32_t value);
  bool PeerAlive();
  void WaitAsReader();
  void WaitAsWriter();
  void WakePeerIfWaiting(uint32_t wait_flag_off);

  Process& self_;
  hw::Vaddr base_;
  PipePeer peer_;
  bool posix_emulation_;
};

// --- LRPC over protected control transfer (§6.1, §7.1) ---

// Installs `fn` as the server's protected entry, with the standard lrpc
// prologue/epilogue (saves and restores all general-purpose callee-saved
// registers on behalf of callers).
void InstallLrpcServer(Process& server, std::function<aegis::PctArgs(const aegis::PctArgs&)> fn);
// Installs `fn` with the *trusted* stub: the client trusts the server to
// preserve callee-saved registers, so neither side saves them (tlrpc).
void InstallTlrpcServer(Process& server, std::function<aegis::PctArgs(const aegis::PctArgs&)> fn);

// Client-side call stubs.
Result<aegis::PctArgs> LrpcCall(Process& client, aegis::EnvId server, const aegis::PctArgs& args);
Result<aegis::PctArgs> TlrpcCall(Process& client, aegis::EnvId server, const aegis::PctArgs& args);

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_IPC_H_
