#include "src/exos/rdp.h"

#include <algorithm>
#include <deque>

namespace xok::exos {

using hw::Instr;

uint16_t RdpEndpoint::Checksum(uint8_t type, uint8_t seq, std::span<const uint8_t> payload) {
  // 16-bit ones'-complement sum (Internet checksum family) over the
  // protocol-relevant bytes; the header checksum field itself is excluded.
  uint32_t sum = static_cast<uint32_t>(type) | (static_cast<uint32_t>(seq) << 8);
  for (size_t i = 0; i < payload.size(); ++i) {
    sum += static_cast<uint32_t>(payload[i]) << (8 * (i & 1));
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

bool RdpEndpoint::FrameValid(const Datagram& dgram) {
  if (dgram.payload.size() < kHeaderBytes) {
    ++checksum_drops_;
    return false;
  }
  proc_.machine().Charge(Instr(4) + (dgram.payload.size() / 4) * Instr(1));
  const std::span<const uint8_t> body(dgram.payload.data() + kHeaderBytes,
                                      dgram.payload.size() - kHeaderBytes);
  const uint16_t expect = Checksum(dgram.payload[0], dgram.payload[1], body);
  const uint16_t got = static_cast<uint16_t>(dgram.payload[2]) |
                       (static_cast<uint16_t>(dgram.payload[3]) << 8);
  if (expect != got) {
    ++checksum_drops_;  // Bit-flipped in transit: drop, ARQ recovers.
    return false;
  }
  return true;
}

Status RdpEndpoint::Send(std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame(kHeaderBytes + payload.size());
  frame[0] = kTypeData;
  frame[1] = send_seq_;
  const uint16_t ck = Checksum(kTypeData, send_seq_, payload);
  frame[2] = static_cast<uint8_t>(ck & 0xff);
  frame[3] = static_cast<uint8_t>(ck >> 8);
  std::copy(payload.begin(), payload.end(), frame.begin() + kHeaderBytes);

  uint64_t rto = config_.retransmit_cycles;
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    proc_.machine().Charge(Instr(20));  // Protocol bookkeeping.
    const Status sent = socket_.SendTo(config_.peer_ip, config_.peer_port, frame);
    if (sent != Status::kOk) {
      return sent;
    }
    if (attempt > 0) {
      // Timed out: retransmit with the RTO doubled (capped). Backoff is
      // pure library policy — a latency-sensitive application could pick a
      // fixed beat instead; nothing in the kernel knows about timers here.
      ++retransmissions_;
      ++backoffs_;
      retransmit_log_.push_back(proc_.machine().clock().now());
      rto = std::min(rto * 2, std::max<uint64_t>(config_.retransmit_cap_cycles, 1));
    }
    // Await the ACK, polling with a short sleep so a lost ACK cannot
    // block us forever.
    const uint64_t wait_budget = JitteredWait(rto);
    uint64_t waited = 0;
    while (waited < wait_budget) {
      if (have_peer_ack_ && pending_ack_ == send_seq_) {
        have_peer_ack_ = false;
        send_seq_ ^= 1;
        return Status::kOk;
      }
      Result<Datagram> dgram = socket_.Recv(/*blocking=*/false);
      if (!dgram.ok()) {
        const uint64_t nap = rto / 8 + 1;
        proc_.kernel().SysSleep(nap);
        waited += nap;
        continue;
      }
      if (!FrameValid(*dgram)) {
        continue;
      }
      if (dgram->payload[0] == kTypeAck) {
        if (dgram->payload[1] == send_seq_) {
          send_seq_ ^= 1;
          return Status::kOk;
        }
        continue;  // Stale ACK for the previous message.
      }
      // DATA arrived while we were sending (full duplex): the peer may be
      // retransmitting because our earlier ACK was lost. Re-ACK
      // duplicates; stash fresh data for Recv().
      if (dgram->payload[1] != recv_seq_) {
        ++duplicates_dropped_;
        SendAck(dgram->payload[1]);
      } else {
        stashed_.push_back(std::move(*dgram));
      }
    }
  }
  return Status::kErrTimedOut;
}

Result<std::vector<uint8_t>> RdpEndpoint::Recv() {
  for (;;) {
    Datagram dgram;
    if (!stashed_.empty()) {
      dgram = std::move(stashed_.front());
      stashed_.pop_front();
    } else {
      Result<Datagram> received = socket_.Recv(/*blocking=*/true);
      if (!received.ok()) {
        return received.status();
      }
      dgram = std::move(*received);
    }
    proc_.machine().Charge(Instr(15));
    if (!FrameValid(dgram)) {
      continue;
    }
    if (dgram.payload[0] == kTypeAck) {
      have_peer_ack_ = true;  // Surfaced to a concurrent Send.
      pending_ack_ = dgram.payload[1];
      continue;
    }
    const uint8_t seq = dgram.payload[1];
    SendAck(seq);
    if (seq != recv_seq_) {
      ++duplicates_dropped_;  // Retransmission of already-delivered data.
      continue;
    }
    recv_seq_ ^= 1;
    return std::vector<uint8_t>(dgram.payload.begin() + kHeaderBytes, dgram.payload.end());
  }
}

void RdpEndpoint::PumpAcks() {
  // On a ring socket the ACKs are staged in the TX ring and drained with a
  // single doorbell at the end — a burst of retransmissions costs one
  // kernel crossing to answer instead of one per ACK.
  const bool batch = socket_.ring_bound();
  uint32_t staged = 0;
  for (;;) {
    Result<Datagram> dgram = socket_.Recv(/*blocking=*/false);
    if (!dgram.ok()) {
      break;
    }
    if (!FrameValid(*dgram) || dgram->payload[0] != kTypeData) {
      continue;
    }
    ++duplicates_dropped_;
    SendAck(dgram->payload[1], /*queue_only=*/batch);
    staged += batch ? 1 : 0;
  }
  if (staged > 0) {
    (void)socket_.FlushTx();
  }
}

uint64_t RdpEndpoint::JitteredWait(uint64_t rto) {
  if (config_.jitter_seed == 0 || rto < 2) {
    return rto;  // Disarmed: the exact deterministic schedule.
  }
  // SplitMix64 draw; "equal jitter" keeps at least half the backoff so the
  // ARQ still converges, while the top half decorrelates the fleet.
  uint64_t z = (jitter_state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const uint64_t half = rto / 2;
  return half + z % (rto - half + 1);
}

void RdpEndpoint::SendAck(uint8_t seq, bool queue_only) {
  proc_.machine().Charge(Instr(10));
  const uint16_t ck = Checksum(kTypeAck, seq, {});
  std::vector<uint8_t> ack = {kTypeAck, seq, static_cast<uint8_t>(ck & 0xff),
                              static_cast<uint8_t>(ck >> 8)};
  if (queue_only) {
    (void)socket_.QueueTo(config_.peer_ip, config_.peer_port, ack);
  } else {
    (void)socket_.SendTo(config_.peer_ip, config_.peer_port, ack);
  }
}

}  // namespace xok::exos
