// ExOS process: the library-OS process abstraction over an Aegis
// environment. Wires the environment's contexts (exception, timer, PCT,
// revocation) into library policy: VM faults go to exos::Vm, non-memory
// exceptions to an application handler, end-of-slice to a default context
// saver, repossession to page-table repair.
#ifndef XOK_SRC_EXOS_PROCESS_H_
#define XOK_SRC_EXOS_PROCESS_H_

#include <functional>
#include <memory>

#include "src/core/aegis.h"
#include "src/exos/vm.h"

namespace xok::exos {

class Process {
 public:
  struct Options {
    uint32_t slices = 1;
    bool demand_zero = true;
    PageTableKind page_table = PageTableKind::kTwoLevel;
    // CPUs this process may hold slices on (bit k = CPU k). The default
    // admits every CPU; Aegis places the environment on the least-loaded
    // admitted one.
    uint64_t cpu_mask = aegis::kAnyCpuMask;
  };

  // Creates the process and its environment; `main` runs when scheduled.
  // Check ok() before use (environment creation can fail).
  Process(aegis::Aegis& kernel, std::function<void(Process&)> main, const Options& options);
  Process(aegis::Aegis& kernel, std::function<void(Process&)> main)
      : Process(kernel, std::move(main), Options{}) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  bool ok() const { return id_ != aegis::kNoEnv; }
  aegis::EnvId id() const { return id_; }
  const cap::Capability& env_cap() const { return env_cap_; }
  aegis::Aegis& kernel() { return kernel_; }
  hw::Machine& machine() { return kernel_.machine(); }
  Vm& vm() { return vm_; }

  // Library-level handler registration (any time before the event).
  void set_raw_exception_handler(std::function<aegis::ExcAction(const hw::TrapFrame&)> handler) {
    raw_exception_ = std::move(handler);
  }
  void set_pct_server(std::function<aegis::PctArgs(const aegis::PctArgs&)> server) {
    pct_server_ = std::move(server);
  }
  void set_pct_async(std::function<void(const aegis::PctArgs&)> handler) {
    pct_async_ = std::move(handler);
  }
  void set_revoke_handler(std::function<void(uint32_t)> handler) {
    revoke_ = std::move(handler);
  }
  // Replaces the default end-of-slice epilogue (which just charges the
  // context save). Library schedulers (exos::ThreadGroup) hook preemption
  // here — the timer interrupt the exokernel exposes to applications.
  void set_timer_epilogue(std::function<void()> epilogue) {
    epilogue_ = std::move(epilogue);
  }

 private:
  aegis::ExcAction OnException(const hw::TrapFrame& frame);
  void OnRevoke(uint32_t pages);

  aegis::Aegis& kernel_;
  Vm vm_;
  aegis::EnvId id_ = aegis::kNoEnv;
  cap::Capability env_cap_;
  std::function<aegis::ExcAction(const hw::TrapFrame&)> raw_exception_;
  std::function<void()> epilogue_;
  std::function<aegis::PctArgs(const aegis::PctArgs&)> pct_server_;
  std::function<void(const aegis::PctArgs&)> pct_async_;
  std::function<void(uint32_t)> revoke_;
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_PROCESS_H_
