#include "src/exos/stride.h"

namespace xok::exos {

using hw::Instr;

size_t StrideScheduler::AddClient(aegis::EnvId env, uint32_t tickets) {
  Client client;
  client.env = env;
  client.stride = tickets == 0 ? kStride1 : kStride1 / tickets;
  // New clients start at the minimum pass currently in the system so they
  // neither starve nor monopolise.
  uint64_t min_pass = 0;
  bool first = true;
  for (const Client& existing : clients_) {
    if (first || existing.pass < min_pass) {
      min_pass = existing.pass;
      first = false;
    }
  }
  client.pass = min_pass + client.stride;
  clients_.push_back(client);
  allocations_.push_back(0);
  return clients_.size() - 1;
}

void StrideScheduler::RunSlices(uint32_t slices) {
  for (uint32_t i = 0; i < slices; ++i) {
    // Pick the client with the minimum pass value (deterministic
    // proportional share).
    self_.machine().Charge(Instr(10 + 4 * clients_.size()));  // Scan.
    size_t winner = 0;
    for (size_t c = 1; c < clients_.size(); ++c) {
      if (clients_[c].pass < clients_[winner].pass) {
        winner = c;
      }
    }
    clients_[winner].pass += clients_[winner].stride;
    ++allocations_[winner];
    history_.push_back(winner);
    // Donate this slice: directed yield straight to the chosen client.
    self_.kernel().SysYield(clients_[winner].env);
  }
}

}  // namespace xok::exos
