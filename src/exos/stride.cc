#include "src/exos/stride.h"

namespace xok::exos {

using hw::Instr;

size_t StrideScheduler::AddClient(aegis::EnvId env, uint32_t tickets) {
  Client client;
  client.env = env;
  client.stride = tickets == 0 ? kStride1 : kStride1 / tickets;
  // New clients start at the minimum pass currently in the system so they
  // neither starve nor monopolise.
  uint64_t min_pass = 0;
  bool first = true;
  for (const Client& existing : clients_) {
    if (first || existing.pass < min_pass) {
      min_pass = existing.pass;
      first = false;
    }
  }
  client.pass = min_pass + client.stride;
  clients_.push_back(client);
  allocations_.push_back(0);
  return clients_.size() - 1;
}

void StrideScheduler::RunSlices(uint32_t slices) {
  for (uint32_t i = 0; i < slices; ++i) {
    // Pick the client with the minimum pass value (deterministic
    // proportional share).
    self_.machine().Charge(Instr(10 + 4 * clients_.size()));  // Scan.
    size_t winner = 0;
    for (size_t c = 1; c < clients_.size(); ++c) {
      if (clients_[c].pass < clients_[winner].pass) {
        winner = c;
      }
    }
    clients_[winner].pass += clients_[winner].stride;
    ++allocations_[winner];
    history_.push_back(winner);
    // Donate this slice: directed yield straight to the chosen client.
    self_.kernel().SysYield(clients_[winner].env);
  }
}

size_t SmpStrideScheduler::AddClient(aegis::EnvId env, uint32_t tickets,
                                     uint32_t home_cpu) {
  Client client;
  client.env = env;
  client.stride = tickets == 0 ? kStride1 : kStride1 / tickets;
  client.home_cpu = home_cpu;
  uint64_t min_pass = 0;
  bool first = true;
  for (const Client& existing : clients_) {
    if (first || existing.pass < min_pass) {
      min_pass = existing.pass;
      first = false;
    }
  }
  client.pass = min_pass + client.stride;
  clients_.push_back(client);
  allocations_.push_back(0);
  return clients_.size() - 1;
}

void SmpStrideScheduler::Retarget(size_t index, aegis::EnvId env) {
  if (index < clients_.size()) {
    clients_[index].env = env;
  }
}

bool SmpStrideScheduler::Start(uint32_t slices_per_cpu) {
  const uint32_t cpus = kernel_.machine().cpu_count();
  for (uint32_t k = 0; k < cpus; ++k) {
    Process::Options options;
    options.cpu_mask = 1ULL << k;
    schedulers_.push_back(std::make_unique<Process>(
        kernel_,
        [this, k, slices_per_cpu](Process& self) {
          RunCpu(self, k, slices_per_cpu);
        },
        options));
    if (!schedulers_.back()->ok()) {
      return false;
    }
  }
  return true;
}

void SmpStrideScheduler::RunCpu(Process& self, uint32_t cpu, uint32_t slices) {
  for (uint32_t i = 0; i < slices; ++i) {
    // Scan the local run list first; fall back to a global scan only when
    // no client is homed here (work conservation).
    self.machine().Charge(Instr(10 + 4 * clients_.size()));
    size_t winner = clients_.size();
    for (size_t c = 0; c < clients_.size(); ++c) {
      if (clients_[c].home_cpu != cpu) {
        continue;
      }
      if (winner == clients_.size() || clients_[c].pass < clients_[winner].pass) {
        winner = c;
      }
    }
    const bool handoff = winner == clients_.size();
    if (handoff) {
      for (size_t c = 0; c < clients_.size(); ++c) {
        if (winner == clients_.size() || clients_[c].pass < clients_[winner].pass) {
          winner = c;
        }
      }
      if (winner == clients_.size()) {
        return;  // No clients at all.
      }
      ++handoffs_;
    }
    clients_[winner].pass += clients_[winner].stride;
    ++allocations_[winner];
    // Donate this slice straight to the chosen client, even one homed on
    // another CPU — the slice being donated is ours, not the client's.
    self.kernel().SysYield(clients_[winner].env);
  }
}

}  // namespace xok::exos
