#include "src/exos/udp.h"

#include "src/ash/ash.h"

namespace xok::exos {

using hw::Instr;

namespace {
// Application-level protocol costs.
constexpr uint64_t kHeaderBuild = Instr(45);   // Ethernet+IP+UDP assembly.
constexpr uint64_t kHeaderParse = Instr(35);   // Validation + field extraction.
// Internet checksum: one add per 16-bit word.
uint64_t CksumCost(size_t bytes) { return Instr((bytes + 1) / 2); }
}  // namespace

Status UdpSocket::Bind(uint16_t port) {
  if (binding_.has_value()) {
    return Status::kErrBadState;
  }
  aegis::FilterBindSpec spec;
  spec.filter = dpf::UdpPortFilter(port);
  Result<dpf::FilterId> id = proc_.kernel().SysBindFilter(std::move(spec), cap::Capability{});
  if (!id.ok()) {
    return id.status();
  }
  binding_ = *id;
  port_ = port;
  return Status::kOk;
}

Status UdpSocket::Close() {
  if (!binding_.has_value()) {
    return Status::kErrBadState;
  }
  const Status status = proc_.kernel().SysUnbindFilter(*binding_);
  binding_.reset();
  return status;
}

Status UdpSocket::SendTo(uint32_t dst_ip, uint16_t dst_port, std::span<const uint8_t> payload) {
  proc_.machine().Charge(kHeaderBuild + CksumCost(payload.size() + net::kUdpHeaderBytes) +
                         CksumCost(net::kIpHeaderBytes));
  const uint64_t dst_mac = iface_.resolve ? iface_.resolve(dst_ip) : hw::kBroadcastMac;
  std::vector<uint8_t> frame =
      net::BuildUdpFrame(dst_mac, iface_.mac, iface_.ip, dst_ip, port_, dst_port, payload);
  return proc_.kernel().SysNetSend(frame);
}

Result<Datagram> UdpSocket::Recv(bool blocking) {
  if (!binding_.has_value()) {
    return Status::kErrBadState;
  }
  for (;;) {
    Result<std::vector<uint8_t>> frame = proc_.kernel().SysRecvPacket(*binding_);
    if (frame.ok()) {
      proc_.machine().Charge(kHeaderParse);
      net::UdpView view;
      if (!net::ParseUdpFrame(*frame, &view)) {
        continue;  // Malformed; the library's policy is to drop.
      }
      Datagram dgram;
      dgram.src_ip = view.src_ip;
      dgram.src_port = view.src_port;
      dgram.payload.assign(view.payload.begin(), view.payload.end());
      return dgram;
    }
    if (frame.status() != Status::kErrWouldBlock) {
      return frame.status();
    }
    if (!blocking) {
      return Status::kErrWouldBlock;
    }
    proc_.kernel().SysBlock();  // The binding wakes us on arrival.
  }
}

Result<dpf::FilterId> BindEchoAsh(Process& proc, const AshEchoConfig& config) {
  // Pin a one-page region and prebuild the reply frame in it. The payload
  // is the 4-byte counter; the ASH patches it before each send.
  Result<aegis::PageGrant> region = proc.kernel().SysAllocPage();
  if (!region.ok()) {
    return region.status();
  }
  const std::vector<uint8_t> counter(4, 0);
  const uint64_t peer_mac =
      config.iface.resolve ? config.iface.resolve(config.peer_ip) : hw::kBroadcastMac;
  std::vector<uint8_t> reply = net::BuildUdpFrame(peer_mac, config.iface.mac, config.iface.ip,
                                                  config.peer_ip, config.port, config.peer_port,
                                                  counter);
  constexpr uint32_t kReplyOff = 64;  // Region offset of the template.
  auto region_bytes = proc.machine().mem().PageSpan(region->page);
  std::copy(reply.begin(), reply.end(), region_bytes.begin() + kReplyOff);

  Result<ash::AshProgram> handler = ash::BuildEchoAsh(ash::EchoAshSpec{
      .counter_off = net::kUdpPayloadOff,
      .reply_off = kReplyOff,
      .reply_len = static_cast<uint32_t>(reply.size()),
      .reply_counter_off = net::kUdpPayloadOff,
      .count_off = 0,
  });
  if (!handler.ok()) {
    return handler.status();
  }

  aegis::FilterBindSpec spec;
  spec.filter = dpf::UdpPortFilter(config.port);
  spec.handler = std::move(*handler);
  spec.region_first_page = region->page;
  spec.region_pages = 1;
  return proc.kernel().SysBindFilter(std::move(spec), region->cap);
}

}  // namespace xok::exos
