#include "src/exos/udp.h"

#include <algorithm>

#include "src/ash/ash.h"

namespace xok::exos {

using hw::Instr;

namespace {
// Application-level protocol costs.
constexpr uint64_t kHeaderBuild = Instr(45);   // Ethernet+IP+UDP assembly.
constexpr uint64_t kHeaderParse = Instr(35);   // Validation + field extraction.
// Internet checksum: one add per 16-bit word.
uint64_t CksumCost(size_t bytes) { return Instr((bytes + 1) / 2); }
}  // namespace

Status UdpSocket::Bind(uint16_t port, std::vector<dpf::Atom> extra) {
  if (binding_.has_value()) {
    return Status::kErrBadState;
  }
  if (!extra.empty()) {
    extra_atoms_ = std::move(extra);  // Remembered for repair rebinds.
  }
  aegis::FilterBindSpec spec;
  spec.filter = dpf::UdpPortFilter(port);
  spec.filter.atoms.insert(spec.filter.atoms.end(), extra_atoms_.begin(),
                           extra_atoms_.end());
  spec.trace_tag_off = trace_tag_off_;
  Result<dpf::FilterId> id = proc_.kernel().SysBindFilter(std::move(spec), cap::Capability{});
  if (!id.ok()) {
    return id.status();
  }
  binding_ = *id;
  port_ = port;
  return Status::kOk;
}

Status UdpSocket::BindRing(uint16_t port, const RingConfig& config,
                           std::vector<dpf::Atom> extra) {
  if (binding_.has_value()) {
    return Status::kErrBadState;
  }
  if (!extra.empty()) {
    extra_atoms_ = std::move(extra);
  }
  aegis::Aegis& kernel = proc_.kernel();
  const size_t bytes = net::PacketRingView::BytesNeeded(config.rx_slots, config.tx_slots);
  const uint32_t pages = static_cast<uint32_t>((bytes + hw::kPageBytes - 1) / hw::kPageBytes);
  // Hunt for a contiguous run of free frames. Physical names are exposed
  // to applications precisely so they can make placement decisions like
  // this (paper §3.1); the kernel only checks ownership at bind time.
  const uint32_t page_count = proc_.machine().mem().page_count();
  for (hw::PageId start = 0; start + pages <= page_count && ring_pages_.empty();) {
    std::vector<aegis::PageGrant> run;
    hw::PageId next_start = start + pages;
    for (uint32_t i = 0; i < pages; ++i) {
      Result<aegis::PageGrant> grant = kernel.SysAllocPage(start + i);
      if (!grant.ok()) {
        next_start = start + i + 1;
        break;
      }
      run.push_back(*grant);
    }
    if (run.size() == pages) {
      ring_pages_ = std::move(run);
      break;
    }
    for (const aegis::PageGrant& grant : run) {
      (void)kernel.SysDeallocPage(grant.page, grant.cap);
    }
    start = next_start;
  }
  if (ring_pages_.empty()) {
    return Status::kErrNoResources;
  }
  auto release_pages = [this, &kernel]() {
    for (const aegis::PageGrant& grant : ring_pages_) {
      (void)kernel.SysDeallocPage(grant.page, grant.cap);
    }
    ring_pages_.clear();
  };
  const Status bound = Bind(port);
  if (bound != Status::kOk) {
    release_pages();
    return bound;
  }
  aegis::PacketRingSpec spec;
  spec.first_page = ring_pages_.front().page;
  spec.pages = pages;
  spec.rx_slots = config.rx_slots;
  spec.tx_slots = config.tx_slots;
  spec.batch_doorbells = config.batch_doorbells;
  spec.shed_watermark = config.shed_watermark;
  const Status ring = kernel.SysBindPacketRing(*binding_, spec, ring_pages_.front().cap);
  if (ring != Status::kOk) {
    (void)kernel.SysUnbindFilter(*binding_);
    binding_.reset();
    release_pages();
    return ring;
  }
  std::span<uint8_t> region = proc_.machine().mem().RangeSpan(spec.first_page, pages);
  ring_ = *net::PacketRingView::Attach(region, config.rx_slots, config.tx_slots);
  ring_config_ = config;
  want_ring_ = true;
  return Status::kOk;
}

Status UdpSocket::RepairAfterRepossession(std::span<const hw::PageId> taken) {
  if (!binding_.has_value() && port_ == 0) {
    return Status::kOk;  // Never bound (or Close()d): nothing to repair.
  }
  const uint16_t port = port_;
  if (binding_.has_value()) {
    // Is the filter binding itself gone (reclaimed under pressure)?
    Result<aegis::PacketStats> stats = proc_.kernel().SysPacketStats(*binding_);
    const bool filter_dead = !stats.ok();
    // Was the ring severed (a region page repossessed out from under it)?
    const bool ring_severed = !filter_dead && ring_.has_value() && !stats->ring_bound;
    if (!filter_dead && !ring_severed) {
      return Status::kOk;
    }
    ++repairs_;
    ring_.reset();
    // Surviving region pages still belong to us; a repossessed page's
    // capability fails dealloc harmlessly on the epoch bump, so skip it.
    for (const aegis::PageGrant& grant : ring_pages_) {
      if (std::find(taken.begin(), taken.end(), grant.page) == taken.end()) {
        (void)proc_.kernel().SysDeallocPage(grant.page, grant.cap);
      }
    }
    ring_pages_.clear();
    if (!filter_dead) {
      // Ring severed but the filter survived: unbind it so the rebind below
      // rebuilds both halves (delivery already reverted to the queue).
      (void)proc_.kernel().SysUnbindFilter(*binding_);
    }
    binding_.reset();
  }
  // Rebind. On failure, port_ keeps the old port so the NEXT poll retries:
  // a rebind can fail transiently under the very pressure storm that
  // forced the repair, and one failed attempt must not deafen the socket
  // forever.
  if (want_ring_) {
    const Status ring = BindRing(port, ring_config_, extra_atoms_);
    if (ring == Status::kOk) {
      legacy_fallback_ = false;
      return Status::kOk;
    }
  }
  // Rebind-or-fallback: the legacy queue path needs no pages.
  const Status bound = Bind(port, extra_atoms_);
  legacy_fallback_ = bound == Status::kOk && want_ring_;
  return bound;
}

Status UdpSocket::Close() {
  if (!binding_.has_value()) {
    return Status::kErrBadState;
  }
  if (ring_.has_value()) {
    (void)proc_.kernel().SysUnbindPacketRing(*binding_);
    ring_.reset();
  }
  const Status status = proc_.kernel().SysUnbindFilter(*binding_);
  binding_.reset();
  for (const aegis::PageGrant& grant : ring_pages_) {
    (void)proc_.kernel().SysDeallocPage(grant.page, grant.cap);
  }
  ring_pages_.clear();
  port_ = 0;  // A closed socket must never be "repaired" back to life.
  want_ring_ = false;
  legacy_fallback_ = false;
  return status;
}

Status UdpSocket::SendTo(uint32_t dst_ip, uint16_t dst_port, std::span<const uint8_t> payload) {
  if (ring_.has_value()) {
    const Status queued = QueueTo(dst_ip, dst_port, payload);
    if (queued != Status::kOk) {
      return queued;
    }
    Result<uint32_t> sent = FlushTx();
    return sent.ok() ? Status::kOk : sent.status();
  }
  proc_.machine().Charge(kHeaderBuild + CksumCost(payload.size() + net::kUdpHeaderBytes) +
                         CksumCost(net::kIpHeaderBytes));
  const uint64_t dst_mac = iface_.resolve ? iface_.resolve(dst_ip) : hw::kBroadcastMac;
  std::vector<uint8_t> frame =
      net::BuildUdpFrame(dst_mac, iface_.mac, iface_.ip, dst_ip, port_, dst_port, payload);
  return proc_.kernel().SysNetSend(frame);
}

Status UdpSocket::QueueTo(uint32_t dst_ip, uint16_t dst_port, std::span<const uint8_t> payload) {
  if (!ring_.has_value()) {
    return Status::kErrBadState;
  }
  const size_t bytes = net::UdpFrameBytes(payload.size());
  if (bytes > net::PacketRingView::kSlotDataBytes) {
    return Status::kErrOutOfRange;
  }
  if (ring_->TxFull()) {
    // Make room by draining what is already queued (one doorbell).
    Result<uint32_t> flushed = FlushTx();
    if (!flushed.ok()) {
      return flushed.status();
    }
    if (ring_->TxFull()) {
      return Status::kErrWouldBlock;
    }
  }
  proc_.machine().Charge(kHeaderBuild + CksumCost(payload.size() + net::kUdpHeaderBytes) +
                         CksumCost(net::kIpHeaderBytes));
  const uint64_t dst_mac = iface_.resolve ? iface_.resolve(dst_ip) : hw::kBroadcastMac;
  // Zero-copy build: the frame is assembled directly in the TX slot.
  const uint32_t head = ring_->tx_head();
  std::span<uint8_t> slot = ring_->TxSlotData(head, static_cast<uint32_t>(bytes));
  net::BuildUdpFrameInto(slot, dst_mac, iface_.mac, iface_.ip, dst_ip, port_, dst_port, payload);
  ring_->set_tx_head(head + 1);
  return Status::kOk;
}

Result<uint32_t> UdpSocket::FlushTx() {
  if (!ring_.has_value() || !binding_.has_value()) {
    return Status::kErrBadState;
  }
  return proc_.kernel().SysTxRing(*binding_);
}

Result<Datagram> UdpSocket::PopRingFrame() {
  proc_.machine().Charge(kHeaderParse);
  net::UdpView view;
  const bool valid = net::ParseUdpFrame(ring_->RxFront(), &view);
  Datagram dgram;
  if (valid) {
    // Only the payload leaves the ring; the headers are parsed in place.
    proc_.machine().Charge(hw::kMemWordCopy * ((view.payload.size() + 3) / 4));
    dgram.src_ip = view.src_ip;
    dgram.src_port = view.src_port;
    dgram.payload.assign(view.payload.begin(), view.payload.end());
  }
  ring_->RxPop();
  if (!valid) {
    return Status::kErrInvalidArgs;  // Malformed; the library's policy is to drop.
  }
  return dgram;
}

Result<Datagram> UdpSocket::Recv(bool blocking) {
  if (!binding_.has_value()) {
    return Status::kErrBadState;
  }
  if (ring_.has_value()) {
    for (;;) {
      if (!ring_->RxEmpty()) {
        // The ring header lives in shared (and revocable) memory: if the
        // kernel repossessed a ring page and its next owner scribbled the
        // head word, RxEmpty() stays false forever and every "frame" is a
        // stale slot replayed from a page that is no longer ours. Bound
        // that trust: after a full ring's worth of pops without ever
        // observing emptiness, audit the binding and surface revocation.
        if (++ring_pops_since_check_ > ring_config_.rx_slots) {
          ring_pops_since_check_ = 0;
          Result<aegis::PacketStats> audit = proc_.kernel().SysPacketStats(*binding_);
          if (!audit.ok() || !audit->ring_bound) {
            return Status::kErrRevoked;
          }
        }
        Result<Datagram> dgram = PopRingFrame();
        if (dgram.ok()) {
          return dgram;
        }
        continue;  // Malformed frame dropped; try the next slot.
      }
      ring_pops_since_check_ = 0;  // Emptiness observed: header in sync.
      if (!blocking) {
        return Status::kErrWouldBlock;
      }
      // Arm the doorbell, then re-check before sleeping: a frame deposited
      // between the emptiness check and the arming would otherwise wait
      // for the next arrival. The kernel's wake-pending latch covers the
      // remaining arm-to-block window.
      ring_->set_rx_armed(true);
      if (!ring_->RxEmpty()) {
        ring_->set_rx_armed(false);
        continue;
      }
      // Verify the binding is alive before committing to sleep: a filter
      // reclaimed while this env was busy elsewhere (or while blocked —
      // the kernel wakes reclaim victims, which lands us back here) would
      // otherwise leave it blocked on a ring no frame can ever reach
      // again. Surface kErrRevoked so the caller's revocation handler can
      // rebind instead.
      Result<aegis::PacketStats> stats = proc_.kernel().SysPacketStats(*binding_);
      if (!stats.ok() || !stats->ring_bound) {
        ring_->set_rx_armed(false);
        return Status::kErrRevoked;
      }
      proc_.kernel().SysBlock();
    }
  }
  for (;;) {
    Result<std::vector<uint8_t>> frame = proc_.kernel().SysRecvPacket(*binding_);
    if (frame.ok()) {
      proc_.machine().Charge(kHeaderParse);
      net::UdpView view;
      if (!net::ParseUdpFrame(*frame, &view)) {
        continue;  // Malformed; the library's policy is to drop.
      }
      Datagram dgram;
      dgram.src_ip = view.src_ip;
      dgram.src_port = view.src_port;
      dgram.payload.assign(view.payload.begin(), view.payload.end());
      return dgram;
    }
    if (frame.status() != Status::kErrWouldBlock) {
      return frame.status();
    }
    if (!blocking) {
      return Status::kErrWouldBlock;
    }
    proc_.kernel().SysBlock();  // The binding wakes us on arrival.
  }
}

Result<dpf::FilterId> BindEchoAsh(Process& proc, const AshEchoConfig& config) {
  // Pin a one-page region and prebuild the reply frame in it. The payload
  // is the 4-byte counter; the ASH patches it before each send.
  Result<aegis::PageGrant> region = proc.kernel().SysAllocPage();
  if (!region.ok()) {
    return region.status();
  }
  const std::vector<uint8_t> counter(4, 0);
  const uint64_t peer_mac =
      config.iface.resolve ? config.iface.resolve(config.peer_ip) : hw::kBroadcastMac;
  std::vector<uint8_t> reply = net::BuildUdpFrame(peer_mac, config.iface.mac, config.iface.ip,
                                                  config.peer_ip, config.port, config.peer_port,
                                                  counter);
  constexpr uint32_t kReplyOff = 64;  // Region offset of the template.
  auto region_bytes = proc.machine().mem().PageSpan(region->page);
  std::copy(reply.begin(), reply.end(), region_bytes.begin() + kReplyOff);

  Result<ash::AshProgram> handler = ash::BuildEchoAsh(ash::EchoAshSpec{
      .counter_off = net::kUdpPayloadOff,
      .reply_off = kReplyOff,
      .reply_len = static_cast<uint32_t>(reply.size()),
      .reply_counter_off = net::kUdpPayloadOff,
      .count_off = 0,
  });
  if (!handler.ok()) {
    return handler.status();
  }

  aegis::FilterBindSpec spec;
  spec.filter = dpf::UdpPortFilter(config.port);
  spec.handler = std::move(*handler);
  spec.region_first_page = region->page;
  spec.region_pages = 1;
  return proc.kernel().SysBindFilter(std::move(spec), region->cap);
}

}  // namespace xok::exos
