// RDP: a reliable datagram protocol in application space (paper §6.3 /
// §7: protocol processing belongs to the application — "capturing the
// same expressiveness within a statically defined protocol is difficult").
//
// Stop-and-wait ARQ over the ExOS UDP socket: each message carries a
// 1-bit sequence number; the sender retransmits on timeout until the
// matching ACK arrives; the receiver acknowledges everything and
// suppresses duplicates. Trivial — and that is the point: it is a
// complete, application-chosen transport living entirely above the
// exokernel, tested against real injected frame loss (hw::Wire loss
// injection).
//
// Header (payload prefix, 4 bytes): [type, seq, ck_lo, ck_hi]
//   type 1 = DATA, type 2 = ACK; ck = 16-bit end-to-end checksum over
//   type, seq, and the payload. UDP validates only the IP header, so a
//   bit-flipped payload (hw::Wire corruption injection) reaches us; the
//   checksum turns corruption into a drop, and the ARQ turns the drop
//   into a retransmission.
#ifndef XOK_SRC_EXOS_RDP_H_
#define XOK_SRC_EXOS_RDP_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "src/exos/udp.h"

namespace xok::exos {

class RdpEndpoint {
 public:
  struct Config {
    uint32_t peer_ip = 0;
    uint16_t peer_port = 0;
    uint64_t retransmit_cycles = hw::kClockHz / 500;  // Initial RTO: 2 ms.
    // Each timeout doubles the RTO up to this cap (20 ms), then Send keeps
    // retrying at the cap: under a long loss burst the sender stops
    // hammering the wire instead of retransmitting at a fixed 2 ms beat.
    uint64_t retransmit_cap_cycles = hw::kClockHz / 50;
    int max_retries = 64;
    // Seeded retransmit jitter. A purely deterministic backoff means N
    // clients that lost frames to the same burst retry in lockstep and
    // re-collide forever; with a non-zero seed each wait is drawn from
    // [rto/2, rto] ("equal jitter"), so the schedules decorrelate. 0
    // disarms — the exact pre-jitter timing, for tests that depend on it.
    uint64_t jitter_seed = 0;
  };

  RdpEndpoint(Process& proc, UdpSocket& socket, const Config& config)
      : proc_(proc), socket_(socket), config_(config),
        jitter_state_(config.jitter_seed) {}

  // Reliably delivers `payload` (blocks until acknowledged).
  Status Send(std::span<const uint8_t> payload);

  // Receives the next in-order payload (blocks). ACKs are generated here,
  // so a receiver must be calling Recv (or Pump) for the peer to make
  // progress.
  Result<std::vector<uint8_t>> Recv();

  // Re-ACKs any retransmitted DATA sitting in the socket without blocking.
  // A receiver should pump for a grace period after its final Recv: if the
  // last ACK was lost on the wire, the peer is still retransmitting and
  // needs one more acknowledgement to finish (the two-generals tail).
  void PumpAcks();

  uint64_t retransmissions() const { return retransmissions_; }
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  uint64_t checksum_drops() const { return checksum_drops_; }
  // Timeouts that doubled the RTO (an RTO already at the cap still counts).
  uint64_t backoffs() const { return backoffs_; }
  // Cycle timestamps of every retransmission, in order. Lets tests check
  // that two endpoints' schedules decorrelate under seeded jitter.
  const std::vector<uint64_t>& retransmit_log() const { return retransmit_log_; }

 private:
  static constexpr uint8_t kTypeData = 1;
  static constexpr uint8_t kTypeAck = 2;
  static constexpr uint32_t kHeaderBytes = 4;

  static uint16_t Checksum(uint8_t type, uint8_t seq, std::span<const uint8_t> payload);
  // Length + checksum validation; counts and rejects damaged frames.
  bool FrameValid(const Datagram& dgram);
  // `queue_only` (ring sockets): stage the ACK in the TX ring without a
  // doorbell, so a burst of retransmissions is answered with one syscall.
  void SendAck(uint8_t seq, bool queue_only = false);
  // The wait this attempt actually sleeps: `rto` exactly when jitter is
  // disarmed, else a seeded draw from [rto/2, rto].
  uint64_t JitteredWait(uint64_t rto);

  Process& proc_;
  UdpSocket& socket_;
  Config config_;
  uint8_t send_seq_ = 0;
  uint8_t recv_seq_ = 0;       // Next expected.
  bool have_peer_ack_ = false;
  uint8_t pending_ack_ = 0;    // ACK seen while waiting for data.
  uint64_t retransmissions_ = 0;
  uint64_t duplicates_dropped_ = 0;
  uint64_t checksum_drops_ = 0;
  uint64_t backoffs_ = 0;
  uint64_t jitter_state_ = 0;  // SplitMix64 state (0 while disarmed).
  std::vector<uint64_t> retransmit_log_;
  std::deque<Datagram> stashed_;  // DATA that arrived during a Send wait.
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_RDP_H_
