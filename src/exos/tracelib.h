// ExOS trace library: reading the kernel event ring in application space.
//
// The kernel's whole contribution to tracing is mechanical — append
// fixed-format records to a ring the application owns, and keep raw
// counters (src/core/xtrace.h). Everything a profiler actually consists
// of is here, as untrusted library code: allocating and binding the ring,
// walking the cursor, recovering from drop-oldest overwrites, aggregating
// records into summaries, and formatting reports (see examples/xtop.cpp
// and the bench harness's --xok_trace mode for two different policies
// built on the same records).
#ifndef XOK_SRC_EXOS_TRACELIB_H_
#define XOK_SRC_EXOS_TRACELIB_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/xtrace.h"
#include "src/exos/process.h"

namespace xok::exos {

struct TraceConfig {
  uint32_t pages = 4;                    // Ring capacity: ~(pages*4096-64)/32 records.
  uint32_t mask = xtrace::kMaskAll;      // Event types to record (library policy).
};

// A bound trace ring plus the reader cursor. One per kernel: the ring is a
// global resource (it sees events from every environment), so a second
// Bind fails with kErrAlreadyExists.
class TraceSession {
 public:
  explicit TraceSession(Process& proc) : proc_(proc) {}

  // Allocates a contiguous run of frames (physical names exposed, same
  // placement hunt as the packet rings), formats the ring, and binds it.
  Status Bind(const TraceConfig& config = {});
  // Unbinds and releases the frames.
  Status Close();

  bool bound() const { return view_.has_value(); }

  // Physical placement of the bound ring. A clean exit retains the
  // binding and the frames, so a host-side reader can DecodeRegion the
  // same span post-mortem.
  hw::PageId first_page() const { return pages_.empty() ? 0 : pages_.front().page; }
  uint32_t page_count() const { return static_cast<uint32_t>(pages_.size()); }

  // Returns the next unread record and advances the shared tail cursor;
  // kErrWouldBlock once drained. If the producer lapped us (drop-oldest),
  // skips forward to the oldest retained record and counts the loss in
  // lapped().
  Result<xtrace::Record> Next();
  // Drains everything currently published; returns the number read.
  uint32_t Drain(std::vector<xtrace::Record>& out);

  // Kernel's cumulative overwrite counter (from the shared header).
  uint64_t dropped() const;
  // Records this reader lost to lapping (subset of dropped()).
  uint64_t lapped() const { return lapped_; }

  // Post-revocation repair: if any of the ring's pages was repossessed,
  // the kernel severed the whole binding; release the surviving pages and
  // rebind a fresh ring with the original geometry and mask (unread
  // records in the old ring are lost — drop-oldest semantics anyway).
  // `taken` is the vector from SysReadRepossessed.
  Status RepairAfterRepossession(std::span<const hw::PageId> taken);
  uint64_t repairs() const { return repairs_; }

 private:
  Process& proc_;
  std::optional<xtrace::TraceRingView> view_;
  std::vector<aegis::PageGrant> pages_;
  TraceConfig config_;   // Geometry/mask to rebuild with after a repair.
  uint32_t tail_ = 0;    // Free-running reader cursor (mirrors the header).
  uint64_t lapped_ = 0;
  uint64_t repairs_ = 0;
};

// --- Aggregation (pure functions over records) ---

struct TraceSummary {
  uint64_t records = 0;
  uint64_t dropped = 0;  // Fill from TraceSession::dropped() if available.
  uint64_t by_type[xtrace::kEventCount] = {};
  uint64_t syscall_enters[xtrace::kSysCount] = {};
  uint64_t first_cycle = 0;
  uint64_t last_cycle = 0;

  void Add(const xtrace::Record& record);
};

TraceSummary Summarize(const std::vector<xtrace::Record>& records);

// Renders a summary as a JSON object (event counts keyed by name; used by
// the bench harness's --xok_trace mode).
std::string SummaryToJson(const TraceSummary& summary);

// Host-side post-mortem decode: interprets a raw ring region (e.g. frames
// read out of simulated RAM after the owner died or the machine lost
// power) and returns every retained record, oldest first. No kernel
// involvement and no cursor update — the crash-dump reader.
Result<std::vector<xtrace::Record>> DecodeRegion(std::span<uint8_t> region);

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_TRACELIB_H_
